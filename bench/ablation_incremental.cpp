//===- ablation_incremental.cpp - encode once vs. fresh per K ---*- C++ -*-===//
//
// Ablation C: the incremental deepening engine against fresh per-K
// solving on the Table 3-5 protocols. Each row runs the paper's
// deepening workflow — sweep K = 0..SweepK with the SAT backend, then
// re-verify the same instance (the regression re-check every corpus
// replay and parameter sweep in this repo performs). "fresh" translates,
// encodes and solves from cold at every budget of every pass;
// "incremental" encodes once at SweepK, answers each budget by
// re-solving the same persistent solver under that budget's assumption
// literal, and answers the re-check pass from the Engine's encoding
// cache (learned clauses, VSIDS scores and saved phases carry across
// budgets and passes).
//
// Where the win comes from: the deepening pass seeds the solver —
// budget-k UNSAT proofs run at unit-propagation speed thanks to the
// monotonicity lemmas (docs/ALGORITHMS.md), the final SAT solve runs
// warm — and the re-check pass skips translate+encode+search entirely
// (cache hit + saved phases reconstruct the verdict in milliseconds,
// where fresh re-pays the full sweep). Where it loses: a row whose cold
// SAT solve happens to be lucky (peterson_2's trajectory) can favor
// fresh on the first pass by more than the cache saves; the row set
// reports that honestly.
//
// Verdict sanity is enforced: any pass disagreeing with the row's
// expected verdict/K, or the two sides disagreeing with each other,
// flags the row and fails the run.
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"
#include "support/Cli.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "vbmc/Engine.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace vbmc;
using namespace vbmc::protocols;

namespace {

struct SweepResult {
  driver::Verdict Outcome = driver::Verdict::Unknown;
  uint32_t KUsed = 0;
  double Seconds = 0; ///< Summed over all passes.
  bool PassesAgree = true;
};

SweepResult runWorkflow(driver::Engine &E, const ir::Program &P,
                        driver::EngineMode Mode, uint32_t SweepK,
                        uint32_t Cas, uint32_t Passes, double Budget) {
  driver::CheckRequest Req;
  Req.Mode = Mode;
  Req.MaxK = SweepK;
  Req.Opts.Backend = driver::BackendKind::Sat;
  Req.Opts.L = 2;
  Req.Opts.CasAllowance = Cas;
  SweepResult S;
  for (uint32_t Pass = 0; Pass < Passes; ++Pass) {
    CheckContext Ctx(Budget);
    Timer T;
    driver::CheckReport R = E.run(P, Req, Ctx);
    S.Seconds += T.elapsedSeconds();
    if (Pass == 0) {
      S.Outcome = R.Outcome;
      S.KUsed = R.KUsed;
    } else if (R.Outcome != S.Outcome || R.KUsed != S.KUsed) {
      S.PassesAgree = false;
    }
  }
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv, {"quick", "help"});
  if (CL.hasFlag("help")) {
    std::puts("usage: ablation_incremental [--budget SEC] [--passes N] "
              "[--quick]\n"
              "  --budget SEC  per-pass wall clock (default 900)\n"
              "  --passes N    sweep passes per row; pass 1 deepens, later\n"
              "                passes model the regression re-check every\n"
              "                corpus replay performs (default 2)\n"
              "  --quick       N=2 instances only (smoke test, seconds)");
    return 0;
  }
  double Budget = CL.getDouble("budget", 900);
  uint32_t Passes =
      static_cast<uint32_t>(CL.getInt("passes", 2));
  if (Passes < 1)
    Passes = 1;
  bool Quick = CL.hasFlag("quick");

  // Per-row CAS allowances pick the smallest stamp pool in which the
  // protocol's bug is expressible at K = 1 (the paper's stopping bound
  // for these instances), so every sweep ends in the bug being found
  // and both modes do the identical amount of deepening.
  struct Row {
    std::string Table;
    std::string Name;
    ir::Program Prog;
    uint32_t SweepK;
    uint32_t Cas;
  };
  std::vector<Row> Rows;
  if (Quick) {
    Rows.push_back({"Table 3", "peterson_2(2)",
                    makePeterson(MutexOptions::fencedBuggy(2, 0)), 1, 6});
    Rows.push_back({"Table 4", "peterson_3(2)",
                    makePeterson(MutexOptions::fencedBuggy(2, 1)), 1, 6});
    Rows.push_back({"Table 5", "szymanski_2(2)",
                    makeSzymanski(MutexOptions::fencedBuggy(2, 0)), 1, 6});
  } else {
    Rows.push_back({"Table 3", "peterson_2(3)",
                    makePeterson(MutexOptions::fencedBuggy(3, 0)), 1, 8});
    Rows.push_back({"Table 4", "peterson_3(3)",
                    makePeterson(MutexOptions::fencedBuggy(3, 2)), 1, 8});
    Rows.push_back({"Table 5", "szymanski_2(3)",
                    makeSzymanski(MutexOptions::fencedBuggy(3, 0)), 1, 6});
  }

  std::puts("== Ablation C: fresh per-K vs. incremental deepening ==");
  std::printf("per row: %u pass(es) of a K = 0..SweepK sweep (pass 1 "
              "deepens, later passes re-check), SAT backend, per-pass "
              "budget %.0fs\n\n",
              Passes, Budget);

  struct Totals {
    double Fresh = 0;
    double Inc = 0;
  };
  std::vector<std::pair<std::string, Totals>> PerTable = {
      {"Table 3", {}}, {"Table 4", {}}, {"Table 5", {}}};

  Table T({"Program", "sweep", "fresh (s)", "incremental (s)", "speedup",
           "k"});
  bool AnyFlag = false;
  for (Row &Rw : Rows) {
    driver::Engine E;
    SweepResult Fresh =
        runWorkflow(E, Rw.Prog, driver::EngineMode::Iterative, Rw.SweepK,
                    Rw.Cas, Passes, Budget);
    SweepResult Inc =
        runWorkflow(E, Rw.Prog, driver::EngineMode::Incremental, Rw.SweepK,
                    Rw.Cas, Passes, Budget);

    // Equivalence gate: same verdict, same minimal K, stable across
    // passes, and the expected bug actually found at the sweep depth.
    bool Flag = Fresh.Outcome != driver::Verdict::Unsafe ||
                Inc.Outcome != driver::Verdict::Unsafe ||
                Fresh.KUsed != Inc.KUsed || Inc.KUsed != Rw.SweepK ||
                !Fresh.PassesAgree || !Inc.PassesAgree;
    AnyFlag |= Flag;
    double Speedup = Inc.Seconds > 0 ? Fresh.Seconds / Inc.Seconds : 0;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2fx%s", Speedup, Flag ? "!" : "");
    T.addRow({Rw.Name, "0.." + std::to_string(Rw.SweepK),
              Table::formatSeconds(Fresh.Seconds, false),
              Table::formatSeconds(Inc.Seconds, false), Buf,
              std::to_string(Inc.KUsed)});
    for (auto &[Name, Tot] : PerTable)
      if (Name == Rw.Table) {
        Tot.Fresh += Fresh.Seconds;
        Tot.Inc += Inc.Seconds;
      }
  }
  std::fputs(T.str().c_str(), stdout);

  std::puts("\nper-table total sweep time:");
  uint32_t TablesAtTarget = 0;
  for (auto &[Name, Tot] : PerTable) {
    double Speedup = Tot.Inc > 0 ? Tot.Fresh / Tot.Inc : 0;
    TablesAtTarget += Speedup >= 1.5;
    std::printf("  %s: fresh %.2fs, incremental %.2fs -> %.2fx\n",
                Name.c_str(), Tot.Fresh, Tot.Inc, Speedup);
  }
  std::printf("\n%u of 3 tables at or above the 1.5x target%s\n",
              TablesAtTarget, AnyFlag ? " (! = verdict mismatch)" : "");
  return AnyFlag ? 1 : 0;
}
