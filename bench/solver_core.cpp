//===- solver_core.cpp - arena CDCL solver microbench ---------------------===//
//
// Exercises the SAT solver core directly (no BMC pipeline): pigeonhole
// refutations for conflict analysis and learnt-DB churn, fixed-seed
// random 3-SAT near the phase transition for the mixed Sat/Unsat path,
// long implication chains for the blocker-literal propagation fast path,
// and an assumption re-solve sweep with and without between-solve
// inprocessing. Every scenario checks its expected verdict, prints one
// paper-style row, and lands in the --json telemetry (vbmc-bench/v1) so
// CI can diff solver-core performance across commits.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sat/Solver.h"
#include "support/Timer.h"

#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace vbmc;
using namespace vbmc::sat;
using vbmc::bench::BenchConfig;
using vbmc::bench::CellResult;

namespace {

// Pigeonhole principle PHP(Holes+1, Holes): Unsat, resolution-hard.
void buildPigeonhole(Solver &S, uint32_t Pigeons, uint32_t Holes) {
  std::vector<std::vector<Var>> P(Pigeons);
  for (uint32_t I = 0; I < Pigeons; ++I)
    for (uint32_t H = 0; H < Holes; ++H)
      P[I].push_back(S.newVar());
  for (uint32_t I = 0; I < Pigeons; ++I) {
    std::vector<Lit> C;
    for (uint32_t H = 0; H < Holes; ++H)
      C.push_back(mkLit(P[I][H]));
    S.addClause(C);
  }
  for (uint32_t H = 0; H < Holes; ++H)
    for (uint32_t I = 0; I < Pigeons; ++I)
      for (uint32_t J = I + 1; J < Pigeons; ++J)
        S.addBinary(~mkLit(P[I][H]), ~mkLit(P[J][H]));
}

void addRandom3Sat(Solver &S, uint32_t NumVars, uint32_t NumClauses,
                   std::mt19937_64 &Rng) {
  std::vector<Var> Vs;
  for (uint32_t I = 0; I < NumVars; ++I)
    Vs.push_back(S.newVar());
  for (uint32_t C = 0; C < NumClauses; ++C) {
    std::vector<Lit> Cl;
    while (Cl.size() < 3) {
      Var V = Vs[Rng() % NumVars];
      bool Dup = false;
      for (Lit L : Cl)
        Dup |= L.var() == V;
      if (!Dup)
        Cl.push_back(Lit(V, Rng() & 1));
    }
    S.addClause(Cl);
  }
}

struct Scenario {
  const char *Name;
  const char *Expect; // "sat" | "unsat" | "mixed"
  CellResult (*Run)(double Budget);
};

CellResult finish(Timer &W, SolveResult R, const char *Expect) {
  CellResult C;
  C.Seconds = W.elapsedSeconds();
  C.TimedOut = R == SolveResult::Unknown;
  C.Verdict = R == SolveResult::Sat     ? "sat"
              : R == SolveResult::Unsat ? "unsat"
                                        : "unknown";
  if (!C.TimedOut && std::string(Expect) != "mixed")
    C.WrongVerdict = C.Verdict != Expect;
  return C;
}

CellResult runPigeonhole(double Budget) {
  Solver S;
  buildPigeonhole(S, 9, 8);
  Timer W;
  SolveResult R =
      S.solve(SolveSpec().withDeadline(Deadline(Budget)));
  return finish(W, R, "unsat");
}

// 40 fixed-seed instances at clause ratio ~4.26 (the hard mix of Sat
// and Unsat answers); the cell reports total time over all of them.
CellResult runRandom3Sat(double Budget) {
  std::mt19937_64 Rng(20260808);
  Timer W;
  Deadline DL = Deadline(Budget);
  CellResult C;
  C.Verdict = "mixed";
  for (int I = 0; I < 40; ++I) {
    Solver S;
    addRandom3Sat(S, 120, 511, Rng);
    SolveResult R = S.solve(SolveSpec().withDeadline(DL));
    if (R == SolveResult::Unknown) {
      C.TimedOut = true;
      break;
    }
  }
  C.Seconds = W.elapsedSeconds();
  return C;
}

// A 200k-literal implication chain re-propagated from alternating
// assumptions: almost all time is the two-watched propagation loop, so
// this cell isolates the blocker-literal fast path and arena locality.
CellResult runChainPropagation(double Budget) {
  Solver S;
  const uint32_t N = 200000;
  std::vector<Var> Vs;
  for (uint32_t I = 0; I < N; ++I)
    Vs.push_back(S.newVar());
  for (uint32_t I = 0; I + 1 < N; ++I)
    S.addBinary(~mkLit(Vs[I]), mkLit(Vs[I + 1]));
  Timer W;
  Deadline DL = Deadline(Budget);
  SolveResult Last = SolveResult::Unknown;
  for (int Round = 0; Round < 20; ++Round) {
    Lit A = Round & 1 ? ~mkLit(Vs[N - 1]) : mkLit(Vs[0]);
    Last = S.solve(SolveSpec::assuming({A}).withDeadline(DL));
    if (Last == SolveResult::Unknown)
      break;
  }
  return finish(W, Last, "sat");
}

// The incremental engine's workload shape: one formula, many assumption
// re-solves. Run twice from identical state — with inprocess() between
// solves and without — so the telemetry shows what the inprocessing
// pass buys (or costs) on this shape.
CellResult runAssumptionSweep(double Budget, bool Inprocess) {
  std::mt19937_64 Rng(4004);
  Solver S;
  addRandom3Sat(S, 140, 560, Rng);
  std::vector<Var> Sels;
  for (int I = 0; I < 12; ++I) {
    Var Sel = S.newVar();
    std::vector<Lit> C{Lit(Sel, true)};
    for (int J = 0; J < 3; ++J)
      C.push_back(Lit(Rng() % 140, Rng() & 1));
    S.addClause(C);
    Sels.push_back(Sel);
  }
  Timer W;
  Deadline DL = Deadline(Budget);
  SolveResult Last = SolveResult::Unknown;
  for (Var Sel : Sels) {
    if (Inprocess && !S.inprocess())
      break;
    Last = S.solve(SolveSpec::assuming({mkLit(Sel)}).withDeadline(DL));
    if (Last == SolveResult::Unknown)
      break;
  }
  CellResult C = finish(W, Last, "mixed");
  return C;
}

CellResult runSweepPlain(double Budget) {
  return runAssumptionSweep(Budget, false);
}
CellResult runSweepInprocess(double Budget) {
  return runAssumptionSweep(Budget, true);
}

// Learnt-clause churn with a tiny arena-collection threshold: reduceDb
// frees learnt clauses, every free crosses the ratio, and the solver
// spends the run relocating — an upper bound on GC overhead.
CellResult runGcChurn(double Budget) {
  Solver S;
  S.setGarbageFrac(0.01);
  buildPigeonhole(S, 8, 7);
  Timer W;
  SolveResult R =
      S.solve(SolveSpec().withDeadline(Deadline(Budget)));
  CellResult C = finish(W, R, "unsat");
  if (S.stats().GcRuns == 0 && !C.TimedOut)
    C.WrongVerdict = true; // The scenario exists to exercise GC.
  return C;
}

const Scenario Scenarios[] = {
    {"pigeonhole_9_8", "unsat", runPigeonhole},
    {"random3sat_40x", "mixed", runRandom3Sat},
    {"chain_propagation", "sat", runChainPropagation},
    {"assumption_sweep", "mixed", runSweepPlain},
    {"assumption_sweep_inprocess", "mixed", runSweepInprocess},
    {"gc_churn", "unsat", runGcChurn},
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  std::printf("== solver core ==\n");
  std::printf("arena CDCL scenarios (docs/ALGORITHMS.md, \"SAT solver "
              "internals\"); budget %.0fs per scenario\n\n",
              Cfg.VbmcBudget);
  Table T({"Scenario", "Expect", "Verdict", "Seconds"});
  bool AnyWrong = false;
  for (const Scenario &Sc : Scenarios) {
    CellResult C = Sc.Run(Cfg.VbmcBudget);
    AnyWrong |= C.WrongVerdict;
    T.addRow({Sc.Name, Sc.Expect, C.Verdict + (C.WrongVerdict ? "!" : ""),
              Table::formatSeconds(C.Seconds, C.TimedOut)});
    bench::recordCell(Cfg, Sc.Name, "solver", C, 0, 0);
  }
  std::printf("%s\n", T.str().c_str());
  Cfg.writeJson("solver_core");
  if (AnyWrong) {
    std::fprintf(stderr, "solver_core: verdict mismatch (see ! rows)\n");
    return 1;
  }
  return 0;
}
