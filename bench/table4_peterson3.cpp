//===- table4_peterson3.cpp - Table 4 ---------------------------*- C++ -*-===//
//
// Table 4: peterson_3(N) — the same one-line bug moved to the LAST
// thread. The paper shows RCMC losing its positional luck (it "is not
// resilient to positional change") while Tracer/CDSChecker improve; our
// ascending/descending stand-ins flip the same way.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  Cfg.L = 2;
  printPreamble("Table 4: peterson_3(N), bug in the last thread (UNSAFE)",
                "PLDI'19 Table 4 (K = 2, L = 2)", Cfg);

  std::vector<uint32_t> Threads = Cfg.Full
                                      ? std::vector<uint32_t>{3, 4, 5, 6, 7}
                                      : std::vector<uint32_t>{3, 4, 5};
  Table T(standardHeader());
  for (uint32_t N : Threads) {
    ir::Program P = makePeterson(MutexOptions::fencedBuggy(N, N - 1));
    T.addRow(toolRow("peterson_3(" + std::to_string(N) + ")", P, /*K=*/2,
                     Cfg.L, Cfg, /*ExpectBug=*/true));
  }
  std::fputs(T.str().c_str(), stdout);
  std::puts("\npaper shape: the bug's position flips which search order"
            "\nwins; VBMC is unaffected by the placement.");
  Cfg.writeJson("table4_peterson3");
  return 0;
}
