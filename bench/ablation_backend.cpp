//===- ablation_backend.cpp - explicit vs SAT backend ------------*- C++ -*-===//
//
// Ablation A (DESIGN.md): the same translated programs decided by the
// explicit-state context-bounded explorer versus the SAT/BMC pipeline.
// The paper's prototype only had the CBMC path; this quantifies what the
// symbolic backend buys as the instance grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/Parser.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

namespace {

driver::VbmcOptions makeOpts(driver::BackendKind B, uint32_t K, uint32_t L,
                             double Budget) {
  driver::VbmcOptions O;
  O.K = K;
  O.L = L;
  O.CasAllowance = 4;
  O.Backend = B;
  O.SwitchOnlyAfterWrite = true;
  O.BudgetSeconds = Budget;
  return O;
}

CellResult cellFor(const driver::CheckReport &R, double WallSeconds,
                   bool ExpectBug) {
  CellResult C;
  C.Seconds = WallSeconds;
  C.TimedOut = R.Outcome == driver::Verdict::Unknown;
  C.Verdict = driver::verdictName(R.Outcome);
  if (!C.TimedOut)
    C.WrongVerdict = R.unsafe() != ExpectBug;
  return C;
}

CellResult runBackend(const ir::Program &P, driver::BackendKind B,
                      uint32_t K, uint32_t L, double Budget,
                      bool ExpectBug) {
  driver::CheckRequest Req;
  Req.Opts = makeOpts(B, K, L, Budget);
  driver::CheckReport R = driver::Engine().run(P, Req);
  return cellFor(R, R.Seconds, ExpectBug);
}

/// Portfolio row: both backends race; report wall-clock time (which should
/// track the faster backend, never the slower one) and tag the winner.
std::string runPortfolio(const ir::Program &P, uint32_t K, uint32_t L,
                         double Budget, bool ExpectBug, CellResult &Cell) {
  Timer Watch;
  driver::CheckRequest Req;
  Req.Mode = driver::EngineMode::Portfolio;
  Req.Opts = makeOpts(driver::BackendKind::Explicit, K, L, Budget);
  driver::CheckReport R = driver::Engine().run(P, Req);
  Cell = cellFor(R, Watch.elapsedSeconds(), ExpectBug);
  std::string S = Cell.str();
  if (!R.WinningBackend.empty())
    S += " (" + R.WinningBackend.substr(0, 1) + ")";
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  printPreamble("Ablation A: explicit vs SAT backend on [[P]]_K",
                "design-choice ablation (not a paper table)", Cfg);

  struct Row {
    std::string Name;
    ir::Program Prog;
    uint32_t K;
    bool ExpectBug;
  };
  std::vector<Row> Rows;
  Rows.push_back({"MP (K=1)", *ir::parseProgram(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 1)); }
  )"), 1, true});
  Rows.push_back({"sim_dekker_0 (K=2)",
                  makeSimplifiedDekker(MutexOptions::unfenced(2)), 2, true});
  Rows.push_back({"peterson_0(2) (K=2)",
                  makePeterson(MutexOptions::unfenced(2)), 2, true});
  if (Cfg.Full)
    Rows.push_back({"szymanski_0(2) (K=2)",
                    makeSzymanski(MutexOptions::unfenced(2)), 2, true});

  Table T({"Program", "explicit", "sat", "portfolio"});
  for (Row &R : Rows) {
    CellResult Explicit = runBackend(R.Prog, driver::BackendKind::Explicit,
                                     R.K, 2, Cfg.VbmcBudget, R.ExpectBug);
    CellResult Sat = runBackend(R.Prog, driver::BackendKind::Sat, R.K, 2,
                                Cfg.VbmcBudget, R.ExpectBug);
    CellResult Portfolio;
    std::string PortfolioStr = runPortfolio(R.Prog, R.K, 2, Cfg.VbmcBudget,
                                            R.ExpectBug, Portfolio);
    recordCell(Cfg, R.Name, "explicit", Explicit, R.K, 2);
    recordCell(Cfg, R.Name, "sat", Sat, R.K, 2);
    recordCell(Cfg, R.Name, "portfolio", Portfolio, R.K, 2);
    T.addRow({R.Name, Explicit.str(), Sat.str(), PortfolioStr});
  }
  std::fputs(T.str().c_str(), stdout);
  Cfg.writeJson("ablation_backend");
  std::puts("\nthe explicit backend enumerates the translation's stamp "
            "guesses\nstate-by-state and collapses on small programs "
            "only; the paper's\nchoice of a BMC backend is what makes "
            "protocol-sized inputs feasible.\nthe portfolio column races "
            "both backends and reports the winner's\nwall-clock time "
            "(e = explicit, s = sat won the race).");
  return 0;
}
