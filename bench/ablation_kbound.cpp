//===- ablation_kbound.cpp - how many view switches bugs need ----*- C++ -*-===//
//
// Ablation B: sweep the view-switch budget K on the unfenced protocols
// and report the smallest K exposing each bug (the paper's thesis:
// "many bugs manifest themselves within a small number of view-switches"
// — Table 1 uses K = 2, peterson_1 needs K = 4). Ground truth comes from
// the exact RA explorer, independent of the translation.
//
//===----------------------------------------------------------------------===//

#include "ir/Flatten.h"
#include "protocols/Protocols.h"
#include "ra/RaExplorer.h"
#include "support/Cli.h"
#include "support/Table.h"

#include <cstdio>

using namespace vbmc;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);
  uint32_t MaxK = static_cast<uint32_t>(CL.getInt("max-k", 4));
  uint64_t MaxStates =
      static_cast<uint64_t>(CL.getInt("max-states", 500000));

  std::puts("== Ablation B: minimal view-switch budget per bug ==\n");
  struct Row {
    std::string Name;
    ir::Program Prog;
  };
  std::vector<Row> Rows;
  Rows.push_back(
      {"sim_dekker_0", makeSimplifiedDekker(MutexOptions::unfenced(2))});
  Rows.push_back({"peterson_0(2)", makePeterson(MutexOptions::unfenced(2))});
  Rows.push_back({"dekker_0", makeDekker(MutexOptions::unfenced(2))});
  Rows.push_back({"burns_0", makeBurns(MutexOptions::unfenced(2))});
  Rows.push_back({"bakery_0", makeBakery(MutexOptions::unfenced(2))});
  Rows.push_back(
      {"szymanski_0", makeSzymanski(MutexOptions::unfenced(2))});
  Rows.push_back({"peterson_1(3)",
                  makePeterson(MutexOptions::fencedExcept(3, 0))});

  Table T({"Program", "k=0", "k=1", "k=2", "k=3", "minimal K"});
  for (Row &Rw : Rows) {
    ir::FlatProgram FP = ir::flatten(Rw.Prog);
    std::vector<std::string> Cells = {Rw.Name};
    std::string MinK = ">" + std::to_string(MaxK - 1);
    for (uint32_t K = 0; K < MaxK; ++K) {
      ra::RaQuery Q;
      Q.Goal = ra::GoalKind::AnyError;
      Q.ViewSwitchBound = K;
      Q.MaxStates = MaxStates;
      ra::RaResult R = ra::exploreRa(FP, Q);
      Cells.push_back(R.reached()     ? "bug"
                      : R.exhausted() ? "safe"
                                      : "cap");
      if (R.reached() && MinK[0] == '>')
        MinK = std::to_string(K);
    }
    Cells.push_back(MinK);
    T.addRow(Cells);
  }
  std::fputs(T.str().c_str(), stdout);
  std::puts("\npaper shape: every Table 1 bug appears by K = 2; the"
            "\nfenced-except-one variants need slightly larger budgets.");
  return 0;
}
