//===- micro_components.cpp - component microbenchmarks ----------*- C++ -*-===//
//
// google-benchmark timings of the individual engines: RA step
// enumeration and canonicalization, SC stepping, the [[.]]_K translation,
// the BMC circuit encoder, and the CDCL solver on planted 3-SAT.
//
//===----------------------------------------------------------------------===//

#include "bmc/Encoder.h"
#include "ir/Parser.h"
#include "protocols/Protocols.h"
#include "ra/RaSemantics.h"
#include "sat/Solver.h"
#include "sc/ScSemantics.h"
#include "support/Rng.h"
#include "support/Sandbox.h"
#include "translation/Translate.h"
#include "vbmc/Engine.h"

#include <benchmark/benchmark.h>

using namespace vbmc;

namespace {

ir::FlatProgram petersonFlat() {
  static ir::FlatProgram FP = ir::flatten(
      protocols::makePeterson(protocols::MutexOptions::unfenced(2)));
  return FP;
}

void BM_RaStepEnumeration(benchmark::State &State) {
  ir::FlatProgram FP = petersonFlat();
  ra::RaConfig C = ra::initialConfig(FP);
  // Walk a few steps in so the message pool is non-trivial.
  std::vector<ra::RaStep> Steps;
  for (int I = 0; I < 6; ++I) {
    Steps.clear();
    ra::enumerateSteps(FP, C, Steps);
    if (Steps.empty())
      break;
    C = Steps.front().Next;
  }
  for (auto _ : State) {
    Steps.clear();
    ra::enumerateSteps(FP, C, Steps);
    benchmark::DoNotOptimize(Steps.size());
  }
}
BENCHMARK(BM_RaStepEnumeration);

void BM_RaConfigSerialize(benchmark::State &State) {
  ir::FlatProgram FP = petersonFlat();
  ra::RaConfig C = ra::initialConfig(FP);
  std::vector<uint32_t> Key;
  for (auto _ : State) {
    C.serialize(Key);
    benchmark::DoNotOptimize(Key.size());
  }
}
BENCHMARK(BM_RaConfigSerialize);

void BM_ScStepEnumeration(benchmark::State &State) {
  ir::FlatProgram FP = petersonFlat();
  sc::ScConfig C = sc::initialScConfig(FP);
  std::vector<sc::ScStep> Steps;
  for (auto _ : State) {
    Steps.clear();
    sc::enumerateScSteps(FP, C, Steps);
    benchmark::DoNotOptimize(Steps.size());
  }
}
BENCHMARK(BM_ScStepEnumeration);

void BM_Translation(benchmark::State &State) {
  ir::Program P =
      protocols::makePeterson(protocols::MutexOptions::fencedAll(2));
  for (auto _ : State) {
    translation::TranslationOptions TO;
    TO.K = 2;
    auto TR = translation::translateToSc(P, TO);
    benchmark::DoNotOptimize(TR.Prog.numVars());
  }
}
BENCHMARK(BM_Translation);

void BM_Parser(benchmark::State &State) {
  std::string Src = R"(
    var x y turn;
    proc p0 { reg r1 r2;
      x = 1; turn = 1; r1 = turn; while (r1 == 1) { r2 = y; r1 = turn; }
      assert(r2 >= 0); }
    proc p1 { reg s1; y = 1; turn = 0; s1 = x; }
  )";
  for (auto _ : State) {
    auto P = ir::parseProgram(Src);
    benchmark::DoNotOptimize(P ? P->numProcs() : 0u);
  }
}
BENCHMARK(BM_Parser);

void BM_BmcEncodeMp(benchmark::State &State) {
  auto P = ir::parseProgram(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 0)); }
  )");
  for (auto _ : State) {
    bmc::BmcOptions O;
    O.ContextBound = 3;
    O.UnrollBound = 1;
    auto R = bmc::checkBmc(*P, O);
    benchmark::DoNotOptimize(R.safe());
  }
}
BENCHMARK(BM_BmcEncodeMp);

void BM_SatPlanted3Sat(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Rng R(State.iterations());
    sat::Solver S;
    const uint32_t N = 150;
    std::vector<bool> Plant;
    for (uint32_t I = 0; I < N; ++I) {
      (void)S.newVar();
      Plant.push_back(R.nextChance(1, 2));
    }
    for (uint32_t I = 0; I < 4 * N; ++I) {
      std::vector<sat::Lit> C;
      for (int J = 0; J < 3; ++J)
        C.push_back(sat::Lit(static_cast<sat::Var>(R.nextBelow(N)),
                             R.nextChance(1, 2)));
      C[0] = sat::Lit(C[0].var(), !Plant[C[0].var()]);
      S.addClause(C);
    }
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPlanted3Sat);

// Raw cost of one sandboxed execution (fork + rlimits + pipe + waitpid)
// with a trivial payload: the floor --isolate adds to every attempt.
void BM_SandboxForkOverhead(benchmark::State &State) {
  if (!sandbox::available()) {
    State.SkipWithError("no process isolation on this platform");
    return;
  }
  sandbox::SandboxOptions SO;
  SO.MemLimitBytes = 256u << 20;
  SO.TimeoutSeconds = 10;
  for (auto _ : State) {
    sandbox::SandboxOutcome Out =
        sandbox::runInSandbox(SO, [] { return std::string("ok"); });
    benchmark::DoNotOptimize(Out.Completed);
  }
}
BENCHMARK(BM_SandboxForkOverhead);

// End-to-end --isolate overhead on a real (small) verification query:
// compare against BM_DriverCheckMpInProcess for the relative cost.
void driverCheckMp(benchmark::State &State, bool Isolate) {
  auto P = ir::parseProgram(R"(
    var x y;
    proc p0 { x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 0)); }
  )");
  driver::VbmcOptions O;
  O.K = 1;
  O.Isolate = Isolate;
  O.MemLimitBytes = 256u << 20;
  for (auto _ : State) {
    CheckContext Ctx(10);
    driver::CheckRequest Req;
    Req.Opts = O;
    driver::CheckReport R = driver::Engine().run(*P, Req, Ctx);
    benchmark::DoNotOptimize(R.Outcome);
  }
}

void BM_DriverCheckMpInProcess(benchmark::State &State) {
  driverCheckMp(State, false);
}
BENCHMARK(BM_DriverCheckMpInProcess);

void BM_DriverCheckMpIsolated(benchmark::State &State) {
  if (!sandbox::available()) {
    State.SkipWithError("no process isolation on this platform");
    return;
  }
  driverCheckMp(State, true);
}
BENCHMARK(BM_DriverCheckMpIsolated);

} // namespace

BENCHMARK_MAIN();
