//===- table1_unfenced.cpp - Table 1 ----------------------------*- C++ -*-===//
//
// Table 1 of the paper: time to find the RA bug in the original unfenced
// mutual-exclusion protocols (SV-COMP versions), loop unrolling L = 2,
// VBMC with K = 2, against the three stateless baselines. All rows are
// UNSAFE under RA.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  Cfg.K = 2;
  Cfg.L = 2;
  // The paper's headline table: give the prototype solver more room by
  // default so most rows complete (override with --budget).
  CommandLine CL = CommandLine::parse(Argc, Argv);
  if (!CL.hasFlag("budget"))
    Cfg.VbmcBudget = 45;
  printPreamble("Table 1: unfenced mutual-exclusion protocols (UNSAFE)",
                "PLDI'19 Table 1 (K = 2, L = 2)", Cfg);

  struct Row {
    const char *Name;
    ir::Program Prog;
  };
  std::vector<Row> Rows;
  Rows.push_back({"bakery", makeBakery(MutexOptions::unfenced(2))});
  Rows.push_back({"burns", makeBurns(MutexOptions::unfenced(2))});
  Rows.push_back({"dekker", makeDekker(MutexOptions::unfenced(2))});
  Rows.push_back({"lamport", makeLamportFast(MutexOptions::unfenced(2))});
  Rows.push_back({"peterson_0", makePeterson(MutexOptions::unfenced(2))});
  Rows.push_back(
      {"peterson_0(3)", makePeterson(MutexOptions::unfenced(3))});
  Rows.push_back(
      {"sim_dekker", makeSimplifiedDekker(MutexOptions::unfenced(2))});
  Rows.push_back({"szymanski_0", makeSzymanski(MutexOptions::unfenced(2))});

  Table T(standardHeader());
  for (Row &R : Rows)
    T.addRow(toolRow(R.Name, R.Prog, Cfg.K, Cfg.L, Cfg,
                     /*ExpectBug=*/true));
  std::fputs(T.str().c_str(), stdout);
  std::puts("\npaper shape: every tool finds each bug; the SMC baselines"
            "\nare much faster on these shallow bugs (buggy-execution"
            "\nratio 0.1-0.5), exactly as Section 7 discusses.");
  Cfg.writeJson("table1_unfenced");
  return 0;
}
