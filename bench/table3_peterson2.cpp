//===- table3_peterson2.cpp - Table 3 ---------------------------*- C++ -*-===//
//
// Table 3: peterson_2(N) — fully fenced Peterson with a one-line bug
// injected into a FIXED (first) thread, N = 3..7. All buggy executions
// must pass through that thread, so the buggy-execution probability is
// low and drops further with N. The paper observes Tracer and CDSChecker
// degrading with N while RCMC's search order happens to find this one
// fast — our stand-ins reproduce the order-dependence (ascending order
// suffers, descending order benefits when the bug is in thread 0 only
// because fewer competitors precede... see Table 4 for the flip).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  Cfg.L = 2;
  printPreamble("Table 3: peterson_2(N), bug in the first thread (UNSAFE)",
                "PLDI'19 Table 3 (K = 2, L = 2)", Cfg);

  std::vector<uint32_t> Threads = Cfg.Full
                                      ? std::vector<uint32_t>{3, 4, 5, 6, 7}
                                      : std::vector<uint32_t>{3, 4, 5};
  Table T(standardHeader());
  for (uint32_t N : Threads) {
    ir::Program P = makePeterson(MutexOptions::fencedBuggy(N, 0));
    T.addRow(toolRow("peterson_2(" + std::to_string(N) + ")", P, /*K=*/2,
                     Cfg.L, Cfg, /*ExpectBug=*/true));
  }
  std::fputs(T.str().c_str(), stdout);
  Cfg.writeJson("table3_peterson2");
  return 0;
}
