//===- table2_one_unfenced.cpp - Table 2 ------------------------*- C++ -*-===//
//
// Table 2: peterson_1(i) and szymanski_1(i) — all threads fenced except
// one, thread count i in {4, 6, 8, 10}. The probability of a random
// execution being buggy drops, and the paper reports the SMC tools
// blowing up / timing out with growing i while VBMC scales (peterson_1
// needs K = 4, szymanski_1 needs K = 2).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  Cfg.L = 2;
  printPreamble(
      "Table 2: one unfenced thread (UNSAFE)",
      "PLDI'19 Table 2 (peterson_1 K = 4, szymanski_1 K = 2, L = 2)", Cfg);

  std::vector<uint32_t> Threads =
      Cfg.Full ? std::vector<uint32_t>{4, 6, 8, 10}
               : std::vector<uint32_t>{4, 6};

  Table T(standardHeader());
  for (uint32_t N : Threads) {
    ir::Program P = makePeterson(MutexOptions::fencedExcept(N, 0));
    T.addRow(toolRow("peterson_1(" + std::to_string(N) + ")", P, /*K=*/4,
                     Cfg.L, Cfg, /*ExpectBug=*/true));
  }
  for (uint32_t N : Threads) {
    ir::Program P = makeSzymanski(MutexOptions::fencedExcept(N, 0));
    T.addRow(toolRow("szymanski_1(" + std::to_string(N) + ")", P, /*K=*/2,
                     Cfg.L, Cfg, /*ExpectBug=*/true));
  }
  std::fputs(T.str().c_str(), stdout);
  std::puts("\npaper shape: SMC baselines degrade sharply as i grows"
            "\n(Tracer/Cdsc time out from szymanski_1(8), Rcmc from"
            "\nszymanski_1(6)); the view-bounded search is less sensitive"
            "\nto the thread count.");
  Cfg.writeJson("table2_one_unfenced");
  return 0;
}
