//===- bench_lcs.cpp - lossy-channel coverability scaling --------*- C++ -*-===//
//
// The Theorem 4.3 substrate: backward coverability over the subword WQO.
// Measures how the minimal-element sets grow with system size — the
// non-primitive-recursive worst case is why RA-without-CAS reachability
// inherits the same lower bound.
//
//===----------------------------------------------------------------------===//

#include "lcs/Lcs.h"
#include "support/Cli.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>

using namespace vbmc;
using namespace vbmc::lcs;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);
  uint32_t Systems = static_cast<uint32_t>(CL.getInt("systems", 40));

  std::puts("== Theorem 4.3 substrate: LCS backward coverability ==\n");
  Table T({"states", "transitions", "systems", "coverable", "avg minimal "
           "sets", "avg iterations", "total seconds"});
  Rng R(42);
  for (uint32_t States : {4u, 6u, 8u, 10u}) {
    uint32_t Transitions = States * 2;
    uint64_t MinSets = 0, Iters = 0;
    uint32_t Coverable = 0;
    Timer W;
    for (uint32_t S = 0; S < Systems; ++S) {
      Lcs L = makeRandomLcs(R, States, 2, 3, Transitions);
      CoverResult CR = coverable(L, States - 1);
      MinSets += CR.MinimalSetsExplored;
      Iters += CR.Iterations;
      Coverable += CR.Coverable;
    }
    T.addRow({std::to_string(States), std::to_string(Transitions),
              std::to_string(Systems), std::to_string(Coverable),
              std::to_string(MinSets / Systems),
              std::to_string(Iters / Systems),
              Table::formatSeconds(W.elapsedSeconds(), false)});
  }
  std::fputs(T.str().c_str(), stdout);
  return 0;
}
