//===- litmus_sweep.cpp - the Section 7 litmus experiment --------*- C++ -*-===//
//
// "We first applied VBMC to a set of litmus benchmarks ... We were able
// to successfully run all 4004 of them, with K <= 5 ... The output result
// returned by VBMC matches the ones returned by the Herd tool together
// with the RA-axioms provided in [24]."
//
// Two sweeps:
//  1. operational-vs-axiomatic on a large generated family (the two
//     independent RA implementations must agree on every test);
//  2. the full VBMC pipeline (translate + SAT) against the axiomatic
//     oracle on the classic shapes plus a family subset.
//
// Flags: --family N (default 400; the paper had 4004 curated files),
//        --vbmc-tests N (default 6), --budget S.
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "support/Cli.h"
#include "support/Timer.h"

#include <cstdio>

using namespace vbmc;
using namespace vbmc::litmus;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);
  uint32_t FamilyCount = static_cast<uint32_t>(CL.getInt("family", 300));
  uint32_t VbmcTests = static_cast<uint32_t>(CL.getInt("vbmc-tests", 3));
  double Budget = CL.getDouble("budget", 45);

  std::puts("== litmus sweep (PLDI'19 Section 7, litmus paragraph) ==\n");

  Timer Watch;
  auto Classics = classicTests();
  Rng R(4004);
  FamilyOptions FO;
  FO.Count = FamilyCount;
  auto Family = generateFamily(R, FO);
  std::printf("generated %zu classic + %u random tests in %.1fs\n",
              Classics.size(), FamilyCount, Watch.elapsedSeconds());

  // Sweep 1: operational vs axiomatic on everything.
  Watch.restart();
  auto All = Classics;
  All.insert(All.end(), Family.begin(), Family.end());
  SweepResult Op = runOperationalSweep(All);
  std::printf("operational vs axiomatic: %u/%u agree (%.1fs)\n",
              Op.Agreements, Op.TestsRun, Watch.elapsedSeconds());
  for (const auto &M : Op.Mismatches)
    std::printf("  MISMATCH: %s\n", M.c_str());

  // Sweep 2: the full VBMC pipeline on the classics + family head.
  std::vector<LitmusTest> VbmcSet;
  for (auto &T : Classics)
    if (T.Prog.numProcs() <= 2 && VbmcSet.size() < VbmcTests)
      VbmcSet.push_back(T);
  for (auto &T : Family)
    if (T.Prog.numProcs() <= 2 && VbmcSet.size() < VbmcTests)
      VbmcSet.push_back(T);
  Watch.restart();
  SweepOptions SO;
  SO.BudgetSeconds = Budget;
  SO.MaxPositiveQueriesPerTest = 2;
  SweepResult Vb = runVbmcSweep(VbmcSet, SO);
  std::printf("VBMC (translate + SAT) vs axiomatic: %u agree, %u "
              "inconclusive (budget), %zu contradictions over %u queries "
              "(%.1fs)\n",
              Vb.Agreements, Vb.Inconclusive, Vb.Mismatches.size(),
              Vb.QueriesRun, Watch.elapsedSeconds());
  for (const auto &M : Vb.Mismatches)
    std::printf("  MISMATCH: %s\n", M.c_str());

  bool Ok = Op.allAgree() && Vb.allAgree();
  std::printf("\nresult: %s (paper: all 4004 matched Herd)\n",
              Ok ? "all verdicts agree" : "DISAGREEMENT FOUND");
  return Ok ? 0 : 1;
}
