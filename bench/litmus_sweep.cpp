//===- litmus_sweep.cpp - the Section 7 litmus experiment --------*- C++ -*-===//
//
// "We first applied VBMC to a set of litmus benchmarks ... We were able
// to successfully run all 4004 of them, with K <= 5 ... The output result
// returned by VBMC matches the ones returned by the Herd tool together
// with the RA-axioms provided in [24]."
//
// A farm client: the sweep runs through src/farm's sharded worker pool,
// so it is the same deterministic universe `vbmc-farm --universe litmus`
// runs — this binary just picks bench-sized defaults and prints the
// table-style summary. Two checks ride in one pass:
//  1. operational-vs-axiomatic on every universe index (the two
//     independent RA implementations must agree on every test);
//  2. the full VBMC pipeline (translate + SAT) against the axiomatic
//     oracle on every --vbmc-every'th index.
//
// Flags: --family N (default 400; the paper had 4004 curated files — use
//        --family 4004 or `vbmc-farm` for the full volume),
//        --vbmc-every N (default 100), --budget S (per VBMC query),
//        --workers N, --json FILE.
//
//===----------------------------------------------------------------------===//

#include "farm/Farm.h"
#include "support/Cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

using namespace vbmc;
using namespace vbmc::farm;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);

  FarmOptions O;
  O.Universe = UniverseKind::Litmus;
  O.Litmus.Seed = static_cast<uint64_t>(CL.getInt("seed", 4004));
  O.Litmus.Tests = static_cast<uint64_t>(CL.getInt("family", 400));
  O.Litmus.VbmcEvery = static_cast<uint64_t>(CL.getInt("vbmc-every", 100));
  O.Litmus.VbmcBudgetSeconds = CL.getDouble("budget", 45);
  O.Workers = static_cast<uint32_t>(CL.getInt("workers", 0));

  std::puts("== litmus sweep (PLDI'19 Section 7, litmus paragraph) ==\n");

  FarmSummary S = runFarm(O, &std::cout);

  std::printf("\noperational vs axiomatic + VBMC spot checks: %llu/%llu "
              "queries agree, %llu inconclusive (budget), %zu "
              "contradictions over %llu tests (%.1fs)\n",
              static_cast<unsigned long long>(S.Agreements),
              static_cast<unsigned long long>(S.Queries),
              static_cast<unsigned long long>(S.Inconclusive),
              S.Mismatches.size(),
              static_cast<unsigned long long>(S.Tests), S.Seconds);
  for (const MismatchRecord &M : S.Mismatches)
    std::printf("  MISMATCH: u%llu %s [%s]: %s\n",
                static_cast<unsigned long long>(M.Index), M.Name.c_str(),
                M.Check.c_str(), M.Detail.c_str());
  for (const WitnessRecord &W : S.Witnesses)
    std::printf("  WITNESS: u%llu [%s/%s]: %s\n",
                static_cast<unsigned long long>(W.Index), W.Check.c_str(),
                W.Failure.c_str(), W.Detail.c_str());

  std::string JsonPath = CL.getString("json", "");
  if (!JsonPath.empty()) {
    uint32_t Workers =
        O.Workers ? O.Workers : std::max(1u, std::thread::hardware_concurrency());
    std::ofstream Out(JsonPath);
    Out << formatFarmSummary(S, O, Workers) << '\n';
    if (!Out)
      std::fprintf(stderr, "litmus_sweep: cannot write '%s'\n",
                   JsonPath.c_str());
  }

  std::printf("\nresult: %s (paper: all 4004 matched Herd)\n",
              S.clean() ? "all verdicts agree" : "DISAGREEMENT FOUND");
  return S.clean() ? 0 : 1;
}
