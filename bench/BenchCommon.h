//===- BenchCommon.h - shared bench harness ----------------------*- C++ -*-===//
///
/// \file
/// Shared machinery for the table benches: runs one benchmark program
/// through VBMC (the paper pipeline: [[.]]_K + SAT-BMC) and the three
/// stateless baselines, with per-tool wall-clock budgets, and renders
/// paper-style rows. Every binary accepts:
///
///   --budget S      per-tool budget in seconds (default 20)
///   --smc-budget S  baseline budget (default = --budget)
///   --full          run the full row set of the paper's table (defaults
///                   keep a representative subset so the whole bench suite
///                   finishes in CI time)
///   --json FILE     also write the cells as machine-readable telemetry
///                   ("vbmc-bench/v1": one record per program x tool with
///                   verdict, seconds, timeout/wrong-verdict flags) so CI
///                   can archive and diff bench runs across commits
///
/// Timeouts are printed as T.O like the paper. Verdict sanity (UNSAFE
/// rows must not come back SAFE and vice versa) is checked and flagged.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_BENCH_BENCHCOMMON_H
#define VBMC_BENCH_BENCHCOMMON_H

#include "bmc/Unroll.h"
#include "ir/Flatten.h"
#include "protocols/Protocols.h"
#include "smc/Smc.h"
#include "support/Cli.h"
#include "support/Json.h"
#include "support/Table.h"
#include "vbmc/Engine.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace vbmc::bench {

/// One telemetry record: a single (program, tool) cell of a bench table.
struct BenchRecord {
  std::string Program;
  std::string Tool;
  std::string Verdict; // "safe" | "unsafe" | "unknown"
  uint32_t K = 0;
  uint32_t L = 0;
  double Seconds = 0;
  bool TimedOut = false;
  bool WrongVerdict = false;
};

struct BenchConfig {
  double VbmcBudget = 10;
  double SmcBudget = 10;
  bool Full = false;
  uint32_t K = 2;
  uint32_t L = 2;
  std::string JsonPath;
  /// Shared so that recording works through the const refs the row
  /// helpers take.
  std::shared_ptr<std::vector<BenchRecord>> Records =
      std::make_shared<std::vector<BenchRecord>>();

  static BenchConfig fromArgs(int Argc, char **Argv) {
    CommandLine CL = CommandLine::parse(Argc, Argv);
    BenchConfig C;
    C.VbmcBudget = CL.getDouble("budget", 10);
    C.SmcBudget = CL.getDouble("smc-budget", C.VbmcBudget);
    C.Full = CL.hasFlag("full");
    C.JsonPath = CL.getString("json", "");
    return C;
  }

  void record(BenchRecord R) const { Records->push_back(std::move(R)); }

  /// Writes the collected records as a "vbmc-bench/v1" document when
  /// --json was given; a no-op otherwise. Call once at the end of main.
  void writeJson(const char *BenchName) const {
    if (JsonPath.empty())
      return;
    json::JsonWriter W;
    W.beginObject();
    W.key("schema").value("vbmc-bench/v1");
    W.key("bench").value(BenchName);
    W.key("budget_vbmc").value(VbmcBudget);
    W.key("budget_smc").value(SmcBudget);
    W.key("full").value(Full);
    W.key("rows").beginArray();
    for (const BenchRecord &R : *Records) {
      W.beginObject();
      W.key("program").value(R.Program);
      W.key("tool").value(R.Tool);
      W.key("verdict").value(R.Verdict);
      W.key("k").value(static_cast<uint64_t>(R.K));
      W.key("l").value(static_cast<uint64_t>(R.L));
      W.key("seconds").value(R.Seconds);
      W.key("timed_out").value(R.TimedOut);
      W.key("wrong_verdict").value(R.WrongVerdict);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    std::ofstream Out(JsonPath);
    Out << W.str() << '\n';
    if (!Out)
      std::fprintf(stderr, "bench: cannot write telemetry to '%s'\n",
                   JsonPath.c_str());
  }
};

/// One cell: seconds or timeout, plus a verdict-sanity flag.
struct CellResult {
  double Seconds = 0;
  bool TimedOut = false;
  bool WrongVerdict = false;
  std::string Verdict = "unknown";

  std::string str() const {
    std::string S = Table::formatSeconds(Seconds, TimedOut);
    if (WrongVerdict)
      S += "!";
    return S;
  }
};

/// True when any statement of \p P is a CAS or fence (each executed one
/// consumes an abstract timestamp, so the stamp pool must be wider).
inline bool usesCasOrFence(const std::vector<ir::Stmt> &Body) {
  for (const ir::Stmt &S : Body)
    if (S.Kind == ir::StmtKind::Cas || S.Kind == ir::StmtKind::Fence ||
        usesCasOrFence(S.Then) || usesCasOrFence(S.Else))
      return true;
  return false;
}

/// Runs VBMC (translate + SAT backend) on \p P. \p ExpectBug drives the
/// sanity check: an UNSAFE table row answered SAFE (or vice versa) is a
/// reproduction failure, flagged with "!".
inline CellResult runVbmc(const ir::Program &P, uint32_t K, uint32_t L,
                          double Budget, bool ExpectBug) {
  bool NeedsCasStamps = false;
  for (const ir::Process &Proc : P.Procs)
    NeedsCasStamps |= usesCasOrFence(Proc.Body);
  driver::VbmcOptions O;
  O.K = K;
  O.L = L;
  O.CasAllowance = NeedsCasStamps ? 6 : 1;
  O.Backend = driver::BackendKind::Sat;
  O.BudgetSeconds = Budget;
  driver::CheckRequest Req;
  Req.Opts = O;
  driver::CheckReport R = driver::Engine().run(P, Req);
  CellResult C;
  C.Seconds = R.Seconds;
  C.TimedOut = R.Outcome == driver::Verdict::Unknown;
  C.Verdict = driver::verdictName(R.Outcome);
  if (!C.TimedOut)
    C.WrongVerdict = R.unsafe() != ExpectBug;
  return C;
}

/// Runs one stateless baseline on the L-unrolled program.
inline CellResult runSmc(const ir::Program &P, smc::SmcStrategy Strategy,
                         uint32_t L, double Budget, bool ExpectBug) {
  ir::FlatProgram FP = ir::flatten(bmc::unrollLoops(P, L));
  smc::SmcOptions O;
  O.Strategy = Strategy;
  O.B.Seconds = Budget;
  smc::SmcResult R = smc::exploreSmc(FP, O);
  CellResult C;
  C.Seconds = R.Seconds;
  C.TimedOut = R.TimedOut || (!R.FoundBug && !R.Complete);
  C.Verdict = R.FoundBug ? "unsafe" : R.Complete ? "safe" : "unknown";
  if (!C.TimedOut)
    C.WrongVerdict = R.FoundBug != ExpectBug;
  return C;
}

/// Folds one finished cell into the telemetry collector.
inline void recordCell(const BenchConfig &Cfg, const std::string &Program,
                       const char *Tool, const CellResult &C, uint32_t K,
                       uint32_t L) {
  BenchRecord R;
  R.Program = Program;
  R.Tool = Tool;
  R.Verdict = C.Verdict;
  R.K = K;
  R.L = L;
  R.Seconds = C.Seconds;
  R.TimedOut = C.TimedOut;
  R.WrongVerdict = C.WrongVerdict;
  Cfg.record(std::move(R));
}

/// Runs the standard four-tool row of the paper's tables.
inline std::vector<std::string> toolRow(const std::string &Name,
                                        const ir::Program &P, uint32_t K,
                                        uint32_t L, const BenchConfig &Cfg,
                                        bool ExpectBug) {
  CellResult Vbmc = runVbmc(P, K, L, Cfg.VbmcBudget, ExpectBug);
  CellResult Tracer =
      runSmc(P, smc::SmcStrategy::Dpor, L, Cfg.SmcBudget, ExpectBug);
  CellResult Cdsc =
      runSmc(P, smc::SmcStrategy::Naive, L, Cfg.SmcBudget, ExpectBug);
  CellResult Rcmc =
      runSmc(P, smc::SmcStrategy::Graph, L, Cfg.SmcBudget, ExpectBug);
  recordCell(Cfg, Name, "vbmc", Vbmc, K, L);
  recordCell(Cfg, Name, "tracer", Tracer, K, L);
  recordCell(Cfg, Name, "cdsc", Cdsc, K, L);
  recordCell(Cfg, Name, "rcmc", Rcmc, K, L);
  return {Name, Vbmc.str(), Tracer.str(), Cdsc.str(), Rcmc.str()};
}

inline std::vector<std::string> standardHeader() {
  return {"Program", "VBMC", "Tracer*", "Cdsc*", "Rcmc*"};
}

inline void printPreamble(const char *Title, const char *PaperRef,
                          const BenchConfig &Cfg) {
  std::printf("== %s ==\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("budgets: vbmc %.0fs, baselines %.0fs; rows: %s\n",
              Cfg.VbmcBudget, Cfg.SmcBudget,
              Cfg.Full ? "full paper set" : "default subset (--full for "
                                            "the complete table)");
  std::printf("baselines marked * are the in-repo stand-ins for "
              "Tracer/CDSChecker/RCMC (see DESIGN.md)\n\n");
}

} // namespace vbmc::bench

#endif // VBMC_BENCH_BENCHCOMMON_H
