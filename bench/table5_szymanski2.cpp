//===- table5_szymanski2.cpp - Table 5 --------------------------*- C++ -*-===//
//
// Table 5: szymanski_2(N) — fenced Szymanski with the one-line bug in a
// fixed thread, N = 3..7. The paper reports all three SMC tools timing
// out by N = 5..6 while VBMC stays in seconds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  Cfg.L = 2;
  printPreamble("Table 5: szymanski_2(N), bug in a fixed thread (UNSAFE)",
                "PLDI'19 Table 5 (K = 2, L = 2)", Cfg);

  std::vector<uint32_t> Threads = Cfg.Full
                                      ? std::vector<uint32_t>{3, 4, 5, 6, 7}
                                      : std::vector<uint32_t>{3, 4, 5};
  Table T(standardHeader());
  for (uint32_t N : Threads) {
    ir::Program P = makeSzymanski(MutexOptions::fencedBuggy(N, 0));
    T.addRow(toolRow("szymanski_2(" + std::to_string(N) + ")", P, /*K=*/2,
                     Cfg.L, Cfg, /*ExpectBug=*/true));
  }
  std::fputs(T.str().c_str(), stdout);
  Cfg.writeJson("table5_szymanski2");
  return 0;
}
