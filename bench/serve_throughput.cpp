//===- serve_throughput.cpp - warm daemon vs cold process -----------------===//
//
// The serving layer's reason to exist, measured: request throughput of a
// warm vbmc-serve worker pool (persistent processes, the Engine's LRU
// encoding cache hot across requests) against the cold-process baseline
// (one fresh sandboxed process and one fresh encoding per request — what
// a shell loop over `vbmc --isolate` does). Same request mix on both
// sides: the litmus classics as incremental-mode checks, round-robin.
//
//   --requests N   requests per side (default 30)
//   --budget S     per-request budget in seconds (default 10)
//   --json FILE    vbmc-bench/v1 telemetry
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/Parser.h"
#include "serve/Client.h"
#include "serve/Serve.h"
#include "support/Timer.h"
#include "vbmc/Isolation.h"

#include <cstdio>
#include <filesystem>
#include <thread>

using namespace vbmc;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Text;
};

// Message passing, its stale-read variant, and store buffering: small,
// fast to solve, distinct encodings — the cache must hold all three for
// the warm side to stop re-encoding after the first round.
const NamedProgram Programs[] = {
    {"mp",
     "var x f;\n"
     "proc p0 { x = 1; f = 1; }\n"
     "proc p1 { reg a1 b1; a1 = f; b1 = x;\n"
     "  assert(!((a1 == 1) && (b1 == 0))); }\n"},
    {"mp_stale",
     "var x f;\n"
     "proc p0 { x = 1; f = 1; }\n"
     "proc p1 { reg a1 b1; b1 = x; a1 = f;\n"
     "  assert(!((a1 == 1) && (b1 == 0))); }\n"},
    {"sb",
     "var x y;\n"
     "proc p0 { reg a0; x = 1; a0 = y; assert(!(a0 == 2)); }\n"
     "proc p1 { reg a1; y = 1; a1 = x; assert(!(a1 == 2)); }\n"},
};
constexpr size_t NumPrograms = sizeof(Programs) / sizeof(Programs[0]);

driver::CheckRequest benchRequest() {
  driver::CheckRequest Req;
  Req.Mode = driver::EngineMode::Incremental;
  Req.MaxK = 2;
  Req.Opts.Backend = driver::BackendKind::Sat;
  return Req;
}

/// One fresh sandboxed process + fresh Engine per request.
double runColdSide(uint64_t Requests, double Budget) {
  std::vector<ir::Program> Parsed;
  for (const NamedProgram &P : Programs)
    Parsed.push_back(*ir::parseProgram(P.Text));
  driver::CheckRequest Req = benchRequest();
  Timer Watch;
  for (uint64_t I = 0; I < Requests; ++I) {
    CheckContext Ctx(Budget);
    driver::CheckReport R =
        driver::runIsolatedRequest(Parsed[I % NumPrograms], Req, Ctx);
    if (R.failed())
      std::fprintf(stderr, "cold request %llu failed: %s\n",
                   static_cast<unsigned long long>(I), R.Note.c_str());
  }
  return Watch.elapsedSeconds();
}

/// One persistent worker serving the whole mix over the daemon protocol.
/// The supervisor's verdict cache is off: this side measures the warm
/// worker pool alone (the pre-verdict-cache daemon baseline).
double runWarmSide(uint64_t Requests, double Budget, bool &Ok) {
  Ok = false;
  serve::ServerOptions O;
  O.SocketPath = (std::filesystem::temp_directory_path() /
                  ("serve-bench." + std::to_string(::getpid()) + ".sock"))
                     .string();
  O.Workers = 1; // One Engine, so every program stays cache-resident.
  O.QueueCap = Requests + 8;
  O.DefaultDeadlineSeconds = Budget;
  O.VerdictCacheEntries = 0;
  serve::Server S(O);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "serve start failed: %s\n", Err.c_str());
    return 0;
  }
  std::thread Waiter([&] { S.wait(); });

  serve::Client C;
  if (!C.connect(O.SocketPath, 10, &Err)) {
    std::fprintf(stderr, "connect failed: %s\n", Err.c_str());
    S.requestDrain("bench-error");
    Waiter.join();
    return 0;
  }
  Timer Watch;
  serve::Request R;
  R.Check = benchRequest();
  for (uint64_t I = 0; I < Requests; ++I) {
    const NamedProgram &P = Programs[I % NumPrograms];
    R.Id = std::string(P.Name) + "#" + std::to_string(I);
    R.Program = P.Text;
    if (!C.send(R)) {
      std::fprintf(stderr, "send failed\n");
      break;
    }
  }
  uint64_t Answered = 0;
  serve::Response Resp;
  while (Answered < Requests && C.receive(Resp, Budget * 4 + 30, &Err))
    if (Resp.Status == "ok")
      ++Answered;
  double Seconds = Watch.elapsedSeconds();
  C.close();
  S.requestDrain("bench-done");
  Waiter.join();
  if (Answered != Requests) {
    std::fprintf(stderr, "warm side answered %llu/%llu (%s)\n",
                 static_cast<unsigned long long>(Answered),
                 static_cast<unsigned long long>(Requests), Err.c_str());
    return 0;
  }
  Ok = true;
  return Seconds;
}

/// The repeat-heavy side: the same three-program mix, but sent
/// SEQUENTIALLY (send, await the answer, send the next) so the
/// supervisor's verdict cache can answer repeats at admission. Run twice
/// — \p CacheEntries = 0 is the warm-daemon baseline, 256 the cached
/// daemon — and the two runs' per-request verdicts must be identical:
/// the cache may only make answers faster, never different.
double runRepeatHeavySide(uint64_t Requests, double Budget,
                          size_t CacheEntries, bool &Ok,
                          std::map<std::string, std::string> &Verdicts,
                          uint64_t &CachedAnswers) {
  Ok = false;
  CachedAnswers = 0;
  serve::ServerOptions O;
  O.SocketPath = (std::filesystem::temp_directory_path() /
                  ("serve-bench-rh." + std::to_string(::getpid()) + "." +
                   std::to_string(CacheEntries) + ".sock"))
                     .string();
  O.Workers = 1;
  O.QueueCap = Requests + 8;
  O.DefaultDeadlineSeconds = Budget;
  O.VerdictCacheEntries = CacheEntries;
  serve::Server S(O);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "serve start failed: %s\n", Err.c_str());
    return 0;
  }
  std::thread Waiter([&] { S.wait(); });

  serve::Client C;
  if (!C.connect(O.SocketPath, 10, &Err)) {
    std::fprintf(stderr, "connect failed: %s\n", Err.c_str());
    S.requestDrain("bench-error");
    Waiter.join();
    return 0;
  }
  Timer Watch;
  serve::Request R;
  R.Check = benchRequest();
  uint64_t Answered = 0;
  for (uint64_t I = 0; I < Requests; ++I) {
    const NamedProgram &P = Programs[I % NumPrograms];
    R.Id = std::string(P.Name) + "#" + std::to_string(I);
    R.Program = P.Text;
    if (!C.send(R)) {
      std::fprintf(stderr, "send failed\n");
      break;
    }
    serve::Response Resp;
    if (!C.receive(Resp, Budget * 4 + 30, &Err)) {
      std::fprintf(stderr, "receive failed: %s\n", Err.c_str());
      break;
    }
    if (Resp.Status != "ok")
      break;
    ++Answered;
    Verdicts[Resp.Id] = Resp.Verdict;
    if (Resp.Cached)
      ++CachedAnswers;
  }
  double Seconds = Watch.elapsedSeconds();
  C.close();
  S.requestDrain("bench-done");
  Waiter.join();
  if (Answered != Requests) {
    std::fprintf(stderr, "repeat-heavy side answered %llu/%llu\n",
                 static_cast<unsigned long long>(Answered),
                 static_cast<unsigned long long>(Requests));
    return 0;
  }
  Ok = true;
  return Seconds;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchConfig Cfg = bench::BenchConfig::fromArgs(Argc, Argv);
  CommandLine CL = CommandLine::parse(Argc, Argv);
  uint64_t Requests = static_cast<uint64_t>(CL.getInt("requests", 30));

  std::printf("== serve_throughput ==\n");
  std::printf("request mix: %zu litmus classics round-robin, incremental "
              "mode, %llu requests per side\n\n",
              NumPrograms, static_cast<unsigned long long>(Requests));

  double ColdSeconds = runColdSide(Requests, Cfg.VbmcBudget);
  bool WarmOk = false;
  double WarmSeconds = runWarmSide(Requests, Cfg.VbmcBudget, WarmOk);

  double ColdRps = ColdSeconds > 0 ? double(Requests) / ColdSeconds : 0;
  double WarmRps =
      WarmOk && WarmSeconds > 0 ? double(Requests) / WarmSeconds : 0;
  std::printf("cold-process: %6.2f req/s  (%.2fs total)\n", ColdRps,
              ColdSeconds);
  std::printf("serve-warm:   %6.2f req/s  (%.2fs total)\n", WarmRps,
              WarmSeconds);
  if (ColdRps > 0 && WarmRps > 0)
    std::printf("speedup:      %6.2fx\n", WarmRps / ColdRps);

  // The verdict-cache side: the same mix, sequential submissions, with
  // the supervisor cache off (the warm-daemon baseline) then on.
  std::printf("\n== repeat-heavy mix (verdict cache) ==\n");
  bool NoCacheOk = false, CacheOk = false;
  std::map<std::string, std::string> NoCacheVerdicts, CacheVerdicts;
  uint64_t NoCacheCached = 0, CacheCached = 0;
  double NoCacheSeconds = runRepeatHeavySide(
      Requests, Cfg.VbmcBudget, 0, NoCacheOk, NoCacheVerdicts, NoCacheCached);
  double CacheSeconds = runRepeatHeavySide(
      Requests, Cfg.VbmcBudget, 256, CacheOk, CacheVerdicts, CacheCached);
  double NoCacheRps =
      NoCacheOk && NoCacheSeconds > 0 ? double(Requests) / NoCacheSeconds : 0;
  double CacheRps =
      CacheOk && CacheSeconds > 0 ? double(Requests) / CacheSeconds : 0;
  std::printf("warm-nocache: %6.2f req/s  (%.2fs total)\n", NoCacheRps,
              NoCacheSeconds);
  std::printf("warm-cache:   %6.2f req/s  (%.2fs total, %llu/%llu answered "
              "from cache)\n",
              CacheRps, CacheSeconds,
              static_cast<unsigned long long>(CacheCached),
              static_cast<unsigned long long>(Requests));
  if (NoCacheRps > 0 && CacheRps > 0)
    std::printf("cache-speedup: %5.2fx\n", CacheRps / NoCacheRps);
  bool VerdictsMatch = NoCacheOk && CacheOk && NoCacheVerdicts == CacheVerdicts;
  std::printf("verdicts: %s\n",
              VerdictsMatch ? "identical across cache settings"
                            : "DIFFER (verdict cache changed an answer)");

  bench::BenchRecord Cold;
  Cold.Program = "litmus-mix";
  Cold.Tool = "cold-process";
  Cold.Verdict = "safe";
  Cold.K = 2;
  Cold.Seconds = ColdSeconds;
  Cfg.record(Cold);
  bench::BenchRecord Warm;
  Warm.Program = "litmus-mix";
  Warm.Tool = "serve-warm";
  Warm.Verdict = WarmOk ? "safe" : "unknown";
  Warm.K = 2;
  Warm.Seconds = WarmSeconds;
  Warm.TimedOut = !WarmOk;
  Cfg.record(Warm);
  bench::BenchRecord NoCache;
  NoCache.Program = "litmus-mix-repeat";
  NoCache.Tool = "serve-warm-nocache";
  NoCache.Verdict = NoCacheOk ? "safe" : "unknown";
  NoCache.K = 2;
  NoCache.Seconds = NoCacheSeconds;
  NoCache.TimedOut = !NoCacheOk;
  Cfg.record(NoCache);
  bench::BenchRecord Cache;
  Cache.Program = "litmus-mix-repeat";
  Cache.Tool = "serve-warm-cache";
  Cache.Verdict = CacheOk ? "safe" : "unknown";
  Cache.K = 2;
  Cache.Seconds = CacheSeconds;
  Cache.TimedOut = !CacheOk;
  Cfg.record(Cache);
  Cfg.writeJson("serve_throughput");
  return WarmOk && VerdictsMatch ? 0 : 1;
}
