//===- table678_safe.cpp - Tables 6, 7, 8 -----------------------*- C++ -*-===//
//
// Tables 6-8: the SAFE (fully fenced) protocols at growing loop bounds
// L = 1, 2, 4 with K = 2. These measure search-space coverage: the paper
// shows the SMC tools' running time exploding as L doubles (tbar(3) goes
// from sub-second at L = 1 to timeout at L = 2) while VBMC scales with
// the code size.
//
// One binary prints all three tables; --table 6|7|8 selects one.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace vbmc;
using namespace vbmc::bench;
using namespace vbmc::protocols;

namespace {

void runTable(uint32_t L, const BenchConfig &Cfg) {
  std::printf("-- Table %u: SAFE fenced protocols, K = 2, L = %u --\n",
              L == 1 ? 6u : L == 2 ? 7u : 8u, L);
  struct Row {
    std::string Name;
    ir::Program Prog;
  };
  std::vector<Row> Rows;
  Rows.push_back({"bakery", makeBakery(MutexOptions::fencedAll(2))});
  Rows.push_back({"lamport", makeLamportFast(MutexOptions::fencedAll(2))});
  Rows.push_back({"tbar(2)", makeTicketBarrier(MutexOptions::fencedAll(2))});
  Rows.push_back({"tbar(3)", makeTicketBarrier(MutexOptions::fencedAll(3))});
  Rows.push_back(
      {"peterson_4(2)", makePeterson(MutexOptions::fencedAll(2))});
  if (Cfg.Full)
    Rows.push_back(
        {"peterson_4(3)", makePeterson(MutexOptions::fencedAll(3))});

  Table T(standardHeader());
  for (Row &R : Rows)
    T.addRow(toolRow(R.Name, R.Prog, /*K=*/2, L, Cfg,
                     /*ExpectBug=*/false));
  std::fputs(T.str().c_str(), stdout);
  std::puts("");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = BenchConfig::fromArgs(Argc, Argv);
  CommandLine CL = CommandLine::parse(Argc, Argv);
  int64_t Only = CL.getInt("table", 0);
  printPreamble("Tables 6-8: SAFE cases at L = 1, 2, 4",
                "PLDI'19 Tables 6, 7, 8 (K = 2)", Cfg);
  if (Only == 0 || Only == 6)
    runTable(1, Cfg);
  if (Only == 0 || Only == 7)
    runTable(2, Cfg);
  if ((Only == 0 && Cfg.Full) || Only == 8)
    runTable(4, Cfg);
  else if (Only == 0)
    std::puts("(Table 8 at L = 4 skipped by default; pass --full or "
              "--table 8)");
  std::puts("paper shape: doubling L blows the SMC baselines up "
            "(exponentially more executions to enumerate); the symbolic "
            "backend degrades gracefully. SAFE verdicts from VBMC require "
            "an UNSAT proof, the hardest part for our from-scratch CDCL -- "
            "T.O entries here reflect the prototype solver, not the "
            "method (the paper used CBMC).");
  Cfg.writeJson("table678_safe");
  return 0;
}
