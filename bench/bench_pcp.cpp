//===- bench_pcp.cpp - the Theorem 4.1 construction bench --------*- C++ -*-===//
//
// Exercises the Fig. 3 reduction: encodes PCP instances, decides
// solvability with the brute-force solver and all-term reachability with
// the RA engines, and reports agreement plus the blow-up of the encoded
// state space (the construction is an undecidability proof; growth is
// the point).
//
//===----------------------------------------------------------------------===//

#include "ir/Flatten.h"
#include "pcp/Pcp.h"
#include "support/Cli.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>

using namespace vbmc;
using namespace vbmc::pcp;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);
  double Budget = CL.getDouble("budget", 40);

  std::puts("== Theorem 4.1 / Fig. 3: PCP reduction (bench) ==\n");

  struct Case {
    const char *Name;
    PcpInstance I;
    uint32_t MaxIdx;
  };
  std::vector<Case> Cases;
  {
    PcpInstance A;
    A.Pairs.push_back({{1}, {1}});
    Cases.push_back({"(a|a)", A, 1});
    PcpInstance C;
    C.Pairs.push_back({{1}, {2}});
    Cases.push_back({"(a|b)", C, 1});
    PcpInstance D;
    D.Pairs.push_back({{1, 2}, {1}});
    D.Pairs.push_back({{2}, {2, 2}});
    Cases.push_back({"(ab|a),(b|bb)", D, 2});
  }

  Table T({"Instance", "PCP solver", "RA all-term", "agree", "seconds"});
  bool AllAgree = true;
  for (Case &C : Cases) {
    Timer W;
    auto Hint = solvePcp(C.I, C.MaxIdx);
    bool Solvable = Hint.has_value();
    ir::Program P = encodePcp(C.I, C.MaxIdx, Hint ? &*Hint : nullptr);
    bool Reached = allTermReachable(P, 3000000, Budget);
    bool Agree = Solvable == Reached;
    AllAgree &= Agree;
    T.addRow({C.Name, Solvable ? "solvable" : "unsolvable",
              Reached ? "reachable" : "unreachable",
              Agree ? "yes" : "NO", Table::formatSeconds(W.elapsedSeconds(),
                                                         false)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nreduction agreement: %s\n",
              AllAgree ? "all instances" : "FAILURE");
  return AllAgree ? 0 : 1;
}
