//===- BitVec.h - bit-vector operations over circuits ------------*- C++ -*-===//
///
/// \file
/// Fixed-width two's-complement bit-vector arithmetic built from circuit
/// nodes (LSB first). Semantics mirror ir::applyBinary exactly, including
/// division/modulo by zero yielding 0, so the BMC encoder and the
/// interpreters agree bit-for-bit on the (wrap-around) value domain.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FORMULA_BITVEC_H
#define VBMC_FORMULA_BITVEC_H

#include "formula/Circuit.h"

#include <cstdint>
#include <vector>

namespace vbmc::formula {

/// A bit-vector: Bits[0] is the least-significant bit.
struct BitVec {
  std::vector<NodeRef> Bits;

  uint32_t width() const { return static_cast<uint32_t>(Bits.size()); }
  NodeRef sign() const { return Bits.back(); }
};

/// Constant of \p Width bits (two's complement truncation of \p V).
BitVec bvConst(Circuit &C, int64_t V, uint32_t Width);

/// Fresh symbolic vector of \p Width input bits.
BitVec bvFresh(Circuit &C, uint32_t Width);

/// \name Arithmetic
/// @{
BitVec bvAdd(Circuit &C, const BitVec &A, const BitVec &B);
BitVec bvSub(Circuit &C, const BitVec &A, const BitVec &B);
BitVec bvNeg(Circuit &C, const BitVec &A);
BitVec bvMul(Circuit &C, const BitVec &A, const BitVec &B);
/// C++-style truncating signed division; x/0 = 0 (matching applyBinary).
BitVec bvSdiv(Circuit &C, const BitVec &A, const BitVec &B);
/// C++-style signed remainder; x%0 = 0.
BitVec bvSrem(Circuit &C, const BitVec &A, const BitVec &B);
/// @}

/// \name Predicates (return a single node)
/// @{
NodeRef bvEq(Circuit &C, const BitVec &A, const BitVec &B);
NodeRef bvUlt(Circuit &C, const BitVec &A, const BitVec &B);
NodeRef bvSlt(Circuit &C, const BitVec &A, const BitVec &B);
NodeRef bvSle(Circuit &C, const BitVec &A, const BitVec &B);
/// True when any bit is set (the "nonzero = true" boolean reading).
NodeRef bvNonZero(Circuit &C, const BitVec &A);
/// @}

/// Bitwise if-then-else.
BitVec bvMux(Circuit &C, NodeRef Cond, const BitVec &T, const BitVec &E);

/// Converts a boolean node to the 0/1 bit-vector of \p Width.
BitVec bvFromBool(Circuit &C, NodeRef B, uint32_t Width);

/// Evaluates \p A in the solver model as a signed integer.
int64_t bvValueInModel(const Circuit &C, const sat::Solver &S,
                       const BitVec &A);

} // namespace vbmc::formula

#endif // VBMC_FORMULA_BITVEC_H
