//===- Circuit.cpp --------------------------------------------*- C++ -*-===//

#include "formula/Circuit.h"

#include <cassert>

using namespace vbmc;
using namespace vbmc::formula;

Circuit::Circuit() {
  // Node 0: constant TRUE.
  Nodes.push_back(Node{0, 0, true});
  SatVarOf.push_back(0);
}

NodeRef Circuit::mkInput() {
  uint32_t Idx = numNodes();
  Nodes.push_back(Node{2 * Idx, 2 * Idx, true});
  SatVarOf.push_back(0);
  return NodeRef::make(Idx, false);
}

NodeRef Circuit::mkAnd(NodeRef A, NodeRef B) {
  // Constant folding and trivial simplifications.
  if (isFalse(A) || isFalse(B))
    return falseRef();
  if (isTrue(A))
    return B;
  if (isTrue(B))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return falseRef();
  // Normalize operand order for structural hashing.
  uint32_t L = A.code(), R = B.code();
  if (L > R)
    std::swap(L, R);
  auto Key = std::make_pair(L, R);
  auto It = AndCache.find(Key);
  if (It != AndCache.end())
    return NodeRef::make(It->second, false);
  uint32_t Idx = numNodes();
  Nodes.push_back(Node{L, R, false});
  SatVarOf.push_back(0);
  AndCache.emplace(Key, Idx);
  return NodeRef::make(Idx, false);
}

sat::Var Circuit::varFor(sat::Solver &Solver, uint32_t NodeIdx) {
  if (SatVarOf[NodeIdx] != 0)
    return SatVarOf[NodeIdx] - 1;

  // Iterative DFS over the cone (children before parents).
  std::vector<uint32_t> Stack = {NodeIdx};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    if (SatVarOf[N] != 0) {
      Stack.pop_back();
      continue;
    }
    const Node &Nd = Nodes[N];
    if (N == 0) {
      // Constant TRUE: a variable pinned to true.
      sat::Var V = Solver.newVar();
      Solver.addUnit(sat::mkLit(V));
      SatVarOf[0] = V + 1;
      Stack.pop_back();
      continue;
    }
    if (Nd.IsInput) {
      SatVarOf[N] = Solver.newVar() + 1;
      Stack.pop_back();
      continue;
    }
    uint32_t LNode = Nd.Lhs >> 1, RNode = Nd.Rhs >> 1;
    bool ChildrenReady = true;
    if (SatVarOf[LNode] == 0) {
      Stack.push_back(LNode);
      ChildrenReady = false;
    }
    if (SatVarOf[RNode] == 0) {
      Stack.push_back(RNode);
      ChildrenReady = false;
    }
    if (!ChildrenReady)
      continue;
    // Tseitin for N = Lhs AND Rhs.
    sat::Var V = Solver.newVar();
    sat::Lit NV = sat::mkLit(V);
    sat::Lit LA(SatVarOf[LNode] - 1, Nd.Lhs & 1);
    sat::Lit LB(SatVarOf[RNode] - 1, Nd.Rhs & 1);
    Solver.addBinary(~NV, LA);
    Solver.addBinary(~NV, LB);
    Solver.addTernary(~LA, ~LB, NV);
    SatVarOf[N] = V + 1;
    Stack.pop_back();
  }
  return SatVarOf[NodeIdx] - 1;
}

sat::Lit Circuit::toLit(sat::Solver &Solver, NodeRef R) {
  assert((BoundSolver == nullptr || BoundSolver == &Solver) &&
         "a circuit's CNF mapping is tied to one solver");
  BoundSolver = &Solver;
  sat::Var V = varFor(Solver, R.node());
  return sat::Lit(V, R.complemented());
}

bool Circuit::evaluate(
    NodeRef R, const std::unordered_map<uint32_t, bool> &Inputs) const {
  // Iterative evaluation with memoization.
  std::vector<int8_t> Memo(Nodes.size(), -1);
  Memo[0] = 1;
  std::vector<uint32_t> Stack = {R.node()};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    if (Memo[N] >= 0) {
      Stack.pop_back();
      continue;
    }
    const Node &Nd = Nodes[N];
    if (Nd.IsInput) {
      auto It = Inputs.find(N);
      Memo[N] = It != Inputs.end() && It->second ? 1 : 0;
      Stack.pop_back();
      continue;
    }
    uint32_t LNode = Nd.Lhs >> 1, RNode = Nd.Rhs >> 1;
    if (Memo[LNode] < 0) {
      Stack.push_back(LNode);
      continue;
    }
    if (Memo[RNode] < 0) {
      Stack.push_back(RNode);
      continue;
    }
    bool LV = (Memo[LNode] == 1) != static_cast<bool>(Nd.Lhs & 1);
    bool RV = (Memo[RNode] == 1) != static_cast<bool>(Nd.Rhs & 1);
    Memo[N] = LV && RV ? 1 : 0;
    Stack.pop_back();
  }
  return (Memo[R.node()] == 1) != R.complemented();
}

bool Circuit::valueInModel(const sat::Solver &Solver, NodeRef R) const {
  assert(SatVarOf[R.node()] != 0 && "node was never encoded");
  bool V = Solver.modelValue(SatVarOf[R.node()] - 1);
  return V != R.complemented();
}
