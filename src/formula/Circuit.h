//===- Circuit.h - hash-consed AND-inverter circuits -------------*- C++ -*-===//
///
/// \file
/// A boolean circuit layer between the BMC encoder and the SAT solver: an
/// AND-inverter graph (AIG) with complemented edges, constant folding and
/// structural hashing, plus lazy Tseitin conversion into a sat::Solver.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FORMULA_CIRCUIT_H
#define VBMC_FORMULA_CIRCUIT_H

#include "sat/Solver.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vbmc::formula {

/// A reference to a circuit node with a complement bit. Code layout:
/// 2*node + (complemented ? 1 : 0). Node 0 is the constant TRUE.
class NodeRef {
public:
  NodeRef() = default;

  static NodeRef make(uint32_t Node, bool Complemented) {
    NodeRef R;
    R.Code = 2 * Node + (Complemented ? 1 : 0);
    return R;
  }

  uint32_t node() const { return Code >> 1; }
  bool complemented() const { return Code & 1; }
  uint32_t code() const { return Code; }

  NodeRef operator~() const {
    NodeRef R;
    R.Code = Code ^ 1;
    return R;
  }
  bool operator==(const NodeRef &O) const = default;

private:
  uint32_t Code = 0;
};

/// The circuit builder / CNF exporter.
class Circuit {
public:
  Circuit();

  NodeRef trueRef() const { return NodeRef::make(0, false); }
  NodeRef falseRef() const { return NodeRef::make(0, true); }

  bool isTrue(NodeRef R) const { return R == trueRef(); }
  bool isFalse(NodeRef R) const { return R == falseRef(); }
  bool isConst(NodeRef R) const { return R.node() == 0; }

  /// A fresh unconstrained input.
  NodeRef mkInput();

  /// Conjunction with folding and structural hashing.
  NodeRef mkAnd(NodeRef A, NodeRef B);

  NodeRef mkOr(NodeRef A, NodeRef B) { return ~mkAnd(~A, ~B); }
  NodeRef mkXor(NodeRef A, NodeRef B) {
    return mkAnd(mkOr(A, B), ~mkAnd(A, B));
  }
  NodeRef mkEq(NodeRef A, NodeRef B) { return ~mkXor(A, B); }
  NodeRef mkImplies(NodeRef A, NodeRef B) { return mkOr(~A, B); }
  NodeRef mkIte(NodeRef C, NodeRef T, NodeRef E) {
    if (T == E) // Both arms equal: the condition is irrelevant.
      return T;
    return mkOr(mkAnd(C, T), mkAnd(~C, E));
  }

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Estimated heap footprint of the circuit in bytes: node storage plus
  /// the amortized per-node cost of the structural-hashing cache and the
  /// solver-variable map. The encoder polls this against its configured
  /// memory ceiling so a blowing-up encoding aborts cleanly with an
  /// OutOfMemory classification instead of dying on std::bad_alloc.
  uint64_t estimatedBytes() const {
    // sizeof(Node) for the vector slot; ~48 bytes for an unordered_map
    // bucket+node of the AndCache; 4 for SatVarOf. Capacity (not size)
    // would be tighter but size keeps the estimate monotone per mkAnd.
    constexpr uint64_t BytesPerNode = sizeof(Node) + 48 + sizeof(uint32_t);
    return static_cast<uint64_t>(Nodes.size()) * BytesPerNode;
  }

  /// Returns (lazily creating) the SAT literal representing \p R in
  /// \p Solver, Tseitin-encoding the node's cone on first use. The circuit
  /// remembers the solver mapping, so all calls must use the same solver.
  sat::Lit toLit(sat::Solver &Solver, NodeRef R);

  /// Evaluates \p R under an assignment of input nodes (indexed by node
  /// id; missing inputs default to false). For tests and model readback.
  bool evaluate(NodeRef R,
                const std::unordered_map<uint32_t, bool> &Inputs) const;

  /// After a Sat answer, the value of \p R in the model.
  bool valueInModel(const sat::Solver &Solver, NodeRef R) const;

private:
  struct Node {
    // Inputs have Lhs == Rhs == self-code; AND nodes store operand codes.
    uint32_t Lhs = 0;
    uint32_t Rhs = 0;
    bool IsInput = false;
  };

  struct PairHash {
    size_t operator()(const std::pair<uint32_t, uint32_t> &P) const {
      return P.first * 0x9e3779b97f4a7c15ULL + P.second;
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<std::pair<uint32_t, uint32_t>, uint32_t, PairHash>
      AndCache;
  /// Node id -> SAT variable (+1; 0 = not yet encoded).
  std::vector<uint32_t> SatVarOf;
  /// The solver the mapping belongs to (checked on every toLit).
  sat::Solver *BoundSolver = nullptr;

  sat::Var varFor(sat::Solver &Solver, uint32_t NodeIdx);
};

} // namespace vbmc::formula

#endif // VBMC_FORMULA_CIRCUIT_H
