//===- BitVec.cpp ---------------------------------------------*- C++ -*-===//

#include "formula/BitVec.h"

#include <cassert>

using namespace vbmc;
using namespace vbmc::formula;

BitVec vbmc::formula::bvConst(Circuit &C, int64_t V, uint32_t Width) {
  BitVec R;
  R.Bits.reserve(Width);
  for (uint32_t I = 0; I < Width; ++I)
    R.Bits.push_back((V >> I) & 1 ? C.trueRef() : C.falseRef());
  return R;
}

BitVec vbmc::formula::bvFresh(Circuit &C, uint32_t Width) {
  BitVec R;
  R.Bits.reserve(Width);
  for (uint32_t I = 0; I < Width; ++I)
    R.Bits.push_back(C.mkInput());
  return R;
}

namespace {

/// Full adder: returns sum, sets \p Carry to the carry-out.
NodeRef fullAdder(Circuit &C, NodeRef A, NodeRef B, NodeRef &Carry) {
  NodeRef Sum = C.mkXor(C.mkXor(A, B), Carry);
  Carry = C.mkOr(C.mkAnd(A, B), C.mkAnd(Carry, C.mkOr(A, B)));
  return Sum;
}

BitVec addWithCarry(Circuit &C, const BitVec &A, const BitVec &B,
                    NodeRef CarryIn) {
  assert(A.width() == B.width() && "width mismatch");
  BitVec R;
  NodeRef Carry = CarryIn;
  for (uint32_t I = 0; I < A.width(); ++I)
    R.Bits.push_back(fullAdder(C, A.Bits[I], B.Bits[I], Carry));
  return R;
}

BitVec bvNot(Circuit &, const BitVec &A) {
  BitVec R;
  for (NodeRef N : A.Bits)
    R.Bits.push_back(~N);
  return R;
}

/// Unsigned divide/modulo by restoring division; quotient in \p Quot,
/// remainder returned. Division by zero handled by the callers.
BitVec udivmod(Circuit &C, const BitVec &A, const BitVec &B, BitVec &Quot) {
  uint32_t W = A.width();
  BitVec Rem = bvConst(C, 0, W);
  Quot.Bits.assign(W, C.falseRef());
  for (uint32_t I = W; I-- > 0;) {
    // Rem = (Rem << 1) | A[i].
    for (uint32_t J = W; J-- > 1;)
      Rem.Bits[J] = Rem.Bits[J - 1];
    Rem.Bits[0] = A.Bits[I];
    NodeRef Ge = ~bvUlt(C, Rem, B);
    BitVec Sub = bvSub(C, Rem, B);
    Rem = bvMux(C, Ge, Sub, Rem);
    Quot.Bits[I] = Ge;
  }
  return Rem;
}

BitVec bvAbs(Circuit &C, const BitVec &A) {
  return bvMux(C, A.sign(), bvNeg(C, A), A);
}

} // namespace

BitVec vbmc::formula::bvAdd(Circuit &C, const BitVec &A, const BitVec &B) {
  return addWithCarry(C, A, B, C.falseRef());
}

BitVec vbmc::formula::bvSub(Circuit &C, const BitVec &A, const BitVec &B) {
  return addWithCarry(C, A, bvNot(C, B), C.trueRef());
}

BitVec vbmc::formula::bvNeg(Circuit &C, const BitVec &A) {
  return bvSub(C, bvConst(C, 0, A.width()), A);
}

BitVec vbmc::formula::bvMul(Circuit &C, const BitVec &A, const BitVec &B) {
  assert(A.width() == B.width() && "width mismatch");
  uint32_t W = A.width();
  BitVec Acc = bvConst(C, 0, W);
  for (uint32_t I = 0; I < W; ++I) {
    // Acc += (A << I) masked by B[i]; truncating at W bits.
    BitVec Shifted = bvConst(C, 0, W);
    for (uint32_t J = I; J < W; ++J)
      Shifted.Bits[J] = A.Bits[J - I];
    BitVec Masked;
    for (uint32_t J = 0; J < W; ++J)
      Masked.Bits.push_back(C.mkAnd(Shifted.Bits[J], B.Bits[I]));
    Acc = bvAdd(C, Acc, Masked);
  }
  return Acc;
}

BitVec vbmc::formula::bvSdiv(Circuit &C, const BitVec &A, const BitVec &B) {
  BitVec AbsA = bvAbs(C, A), AbsB = bvAbs(C, B);
  BitVec Quot;
  udivmod(C, AbsA, AbsB, Quot);
  NodeRef NegResult = C.mkXor(A.sign(), B.sign());
  BitVec Signed = bvMux(C, NegResult, bvNeg(C, Quot), Quot);
  // x / 0 = 0 per the IR's total semantics.
  NodeRef DivByZero = ~bvNonZero(C, B);
  return bvMux(C, DivByZero, bvConst(C, 0, A.width()), Signed);
}

BitVec vbmc::formula::bvSrem(Circuit &C, const BitVec &A, const BitVec &B) {
  BitVec AbsA = bvAbs(C, A), AbsB = bvAbs(C, B);
  BitVec Quot;
  BitVec Rem = udivmod(C, AbsA, AbsB, Quot);
  // C++: remainder takes the dividend's sign.
  BitVec Signed = bvMux(C, A.sign(), bvNeg(C, Rem), Rem);
  NodeRef DivByZero = ~bvNonZero(C, B);
  return bvMux(C, DivByZero, bvConst(C, 0, A.width()), Signed);
}

NodeRef vbmc::formula::bvEq(Circuit &C, const BitVec &A, const BitVec &B) {
  assert(A.width() == B.width() && "width mismatch");
  NodeRef R = C.trueRef();
  for (uint32_t I = 0; I < A.width(); ++I)
    R = C.mkAnd(R, C.mkEq(A.Bits[I], B.Bits[I]));
  return R;
}

NodeRef vbmc::formula::bvUlt(Circuit &C, const BitVec &A, const BitVec &B) {
  // Borrow-out of A - B.
  NodeRef Borrow = C.falseRef();
  for (uint32_t I = 0; I < A.width(); ++I) {
    NodeRef AI = A.Bits[I], BI = B.Bits[I];
    Borrow = C.mkOr(C.mkAnd(~AI, BI),
                    C.mkAnd(C.mkOr(~AI, BI), Borrow));
  }
  return Borrow;
}

NodeRef vbmc::formula::bvSlt(Circuit &C, const BitVec &A, const BitVec &B) {
  NodeRef SA = A.sign(), SB = B.sign();
  NodeRef DiffSign = C.mkXor(SA, SB);
  return C.mkIte(DiffSign, SA, bvUlt(C, A, B));
}

NodeRef vbmc::formula::bvSle(Circuit &C, const BitVec &A, const BitVec &B) {
  return ~bvSlt(C, B, A);
}

NodeRef vbmc::formula::bvNonZero(Circuit &C, const BitVec &A) {
  NodeRef R = C.falseRef();
  for (NodeRef N : A.Bits)
    R = C.mkOr(R, N);
  return R;
}

BitVec vbmc::formula::bvMux(Circuit &C, NodeRef Cond, const BitVec &T,
                            const BitVec &E) {
  assert(T.width() == E.width() && "width mismatch");
  BitVec R;
  for (uint32_t I = 0; I < T.width(); ++I)
    R.Bits.push_back(C.mkIte(Cond, T.Bits[I], E.Bits[I]));
  return R;
}

BitVec vbmc::formula::bvFromBool(Circuit &C, NodeRef B, uint32_t Width) {
  BitVec R = bvConst(C, 0, Width);
  R.Bits[0] = B;
  return R;
}

int64_t vbmc::formula::bvValueInModel(const Circuit &C, const sat::Solver &S,
                                      const BitVec &A) {
  uint64_t V = 0;
  for (uint32_t I = 0; I < A.width(); ++I)
    if (C.valueInModel(S, A.Bits[I]))
      V |= 1ULL << I;
  // Sign-extend.
  if (A.width() < 64 && (V >> (A.width() - 1)) & 1)
    V |= ~0ULL << A.width();
  return static_cast<int64_t>(V);
}
