//===- Protocols.cpp - mutual-exclusion benchmark builders ------*- C++ -*-===//

#include "protocols/Protocols.h"

#include <cctype>

using namespace vbmc;
using namespace vbmc::ir;
using namespace vbmc::protocols;

namespace {

/// Structured-statement emitter for one thread, with optional fencing
/// after stores and nested control-flow construction.
class ThreadEmitter {
public:
  ThreadEmitter(Program &P, uint32_t Proc, bool Fenced)
      : P(P), Proc(Proc), Fenced(Fenced) {
    Blocks.emplace_back();
  }

  RegId reg(const std::string &Name) { return P.addReg(Proc, Name); }

  void read(RegId R, VarId X) { cur().push_back(Stmt::read(R, X)); }

  void write(VarId X, ExprRef E) {
    cur().push_back(Stmt::write(X, std::move(E)));
    if (Fenced)
      cur().push_back(Stmt::fence());
  }

  void cas(VarId X, ExprRef Expected, ExprRef New) {
    // A CAS is already a synchronizing RMW; no extra fence needed.
    cur().push_back(Stmt::cas(X, std::move(Expected), std::move(New)));
  }

  void assign(RegId R, ExprRef E) {
    cur().push_back(Stmt::assign(R, std::move(E)));
  }

  void assertThat(ExprRef E) {
    cur().push_back(Stmt::assertThat(std::move(E)));
  }

  void beginWhile(ExprRef Cond) {
    Pending.push_back(Frame{FrameKind::While, std::move(Cond), {}, false});
    Blocks.emplace_back();
  }

  void endWhile() {
    Frame F = std::move(Pending.back());
    Pending.pop_back();
    assert(F.Kind == FrameKind::While && "mismatched endWhile");
    std::vector<Stmt> Body = std::move(Blocks.back());
    Blocks.pop_back();
    cur().push_back(Stmt::whileLoop(std::move(F.Cond), std::move(Body)));
  }

  void beginIf(ExprRef Cond) {
    Pending.push_back(Frame{FrameKind::If, std::move(Cond), {}, false});
    Blocks.emplace_back();
  }

  void beginElse() {
    Frame &F = Pending.back();
    assert(F.Kind == FrameKind::If && !F.InElse && "mismatched beginElse");
    F.Then = std::move(Blocks.back());
    Blocks.pop_back();
    F.InElse = true;
    Blocks.emplace_back();
  }

  void endIf() {
    Frame F = std::move(Pending.back());
    Pending.pop_back();
    assert(F.Kind == FrameKind::If && "mismatched endIf");
    std::vector<Stmt> Last = std::move(Blocks.back());
    Blocks.pop_back();
    if (F.InElse)
      cur().push_back(Stmt::ifThen(std::move(F.Cond), std::move(F.Then),
                                   std::move(Last)));
    else
      cur().push_back(Stmt::ifThen(std::move(F.Cond), std::move(Last)));
  }

  /// The standard counter-based critical section:
  ///   cnt++; assert(cnt == 1); cnt--;
  void criticalSection(VarId Cnt) {
    RegId A = reg("cs_a");
    RegId B = reg("cs_b");
    read(A, Cnt);
    write(Cnt, addE(regE(A), constE(1)));
    read(B, Cnt);
    assertThat(eqE(regE(B), constE(1)));
    write(Cnt, binE(BinaryOp::Sub, regE(B), constE(1)));
  }

  void finish() {
    assert(Pending.empty() && Blocks.size() == 1 && "unbalanced blocks");
    P.Procs[Proc].Body = std::move(Blocks.front());
  }

private:
  enum class FrameKind { While, If };
  struct Frame {
    FrameKind Kind;
    ExprRef Cond;
    std::vector<Stmt> Then;
    bool InElse;
  };

  std::vector<Stmt> &cur() { return Blocks.back(); }

  Program &P;
  uint32_t Proc;
  bool Fenced;
  std::vector<std::vector<Stmt>> Blocks;
  std::vector<Frame> Pending;
};

std::string thrName(uint32_t I) { return "t" + std::to_string(I); }

} // namespace

Program vbmc::protocols::makePeterson(const MutexOptions &O) {
  // Peterson's filter lock: levels 1..N-1, one victim slot per level.
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  std::vector<VarId> Level;
  for (uint32_t I = 0; I < N; ++I)
    Level.push_back(P.addVar("level" + std::to_string(I)));
  std::vector<VarId> Last(1, 0); // Index 0 unused.
  for (uint32_t L = 1; L < N; ++L)
    Last.push_back(P.addVar("last" + std::to_string(L)));
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Ok = E.reg("ok");
    RegId T = E.reg("t");
    RegId Any = E.reg("any");
    RegId Lk = E.reg("lk");

    for (uint32_t L = 1; L < N; ++L) {
      E.write(Level[I], constE(static_cast<Value>(L)));
      E.write(Last[L], constE(static_cast<Value>(I)));
      // The injected bug: the buggy thread never waits at any level (the
      // writes stay, so the code shape is a minimal mutation of the
      // original).
      if (O.buggy(I))
        continue;
      // Wait until last[L] != i or every other thread sits below L.
      E.assign(Ok, constE(0));
      E.beginWhile(eqE(regE(Ok), constE(0)));
      E.read(T, Last[L]);
      E.beginIf(neE(regE(T), constE(static_cast<Value>(I))));
      E.assign(Ok, constE(1));
      E.beginElse();
      E.assign(Any, constE(0));
      for (uint32_t K = 0; K < N; ++K) {
        if (K == I)
          continue;
        E.read(Lk, Level[K]);
        E.assign(Any, orE(regE(Any),
                          binE(BinaryOp::Ge, regE(Lk),
                               constE(static_cast<Value>(L)))));
      }
      E.beginIf(eqE(regE(Any), constE(0)));
      E.assign(Ok, constE(1));
      E.endIf();
      E.endIf();
      E.endWhile();
    }
    E.criticalSection(Cnt);
    E.write(Level[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeSzymanski(const MutexOptions &O) {
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  std::vector<VarId> Flag;
  for (uint32_t I = 0; I < N; ++I)
    Flag.push_back(P.addVar("flag" + std::to_string(I)));
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Ok = E.reg("ok");
    RegId Any = E.reg("any");
    RegId F = E.reg("f");

    // Intention to enter.
    E.write(Flag[I], constE(1));
    // Wait until nobody is in the doorway or beyond (flag < 3). The
    // injected bug removes every entry wait of the buggy thread.
    if (!O.buggy(I)) {
    E.assign(Ok, constE(0));
    E.beginWhile(eqE(regE(Ok), constE(0)));
    E.assign(Any, constE(0));
    for (uint32_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), binE(BinaryOp::Ge, regE(F), constE(3))));
    }
    E.assign(Ok, notE(regE(Any)));
    E.endWhile();
    }
    // Doorway.
    E.write(Flag[I], constE(3));
    // If someone else still intends to enter, step back and wait for a
    // thread that already committed (flag == 4).
    if (!O.buggy(I)) {
    E.assign(Any, constE(0));
    for (uint32_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), eqE(regE(F), constE(1))));
    }
    E.beginIf(neE(regE(Any), constE(0)));
    E.write(Flag[I], constE(2));
    E.assign(Ok, constE(0));
    E.beginWhile(eqE(regE(Ok), constE(0)));
    E.assign(Any, constE(0));
    for (uint32_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), eqE(regE(F), constE(4))));
    }
    E.assign(Ok, regE(Any));
    E.endWhile();
    E.endIf();
    }
    E.write(Flag[I], constE(4));
    // Wait for all lower-id threads to leave the waiting room.
    if (!O.buggy(I)) {
      E.assign(Ok, constE(0));
      E.beginWhile(eqE(regE(Ok), constE(0)));
      E.assign(Any, constE(0));
      for (uint32_t J = 0; J < I; ++J) {
        E.read(F, Flag[J]);
        E.assign(Any,
                 orE(regE(Any), binE(BinaryOp::Ge, regE(F), constE(2))));
      }
      E.assign(Ok, notE(regE(Any)));
      E.endWhile();
    }
    E.criticalSection(Cnt);
    // Exit: wait for higher-id threads not to be mid-doorway.
    E.assign(Ok, constE(0));
    E.beginWhile(eqE(regE(Ok), constE(0)));
    E.assign(Any, constE(0));
    for (uint32_t J = I + 1; J < N; ++J) {
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), andE(binE(BinaryOp::Ge, regE(F),
                                             constE(2)),
                                        binE(BinaryOp::Le, regE(F),
                                             constE(3)))));
    }
    E.assign(Ok, notE(regE(Any)));
    E.endWhile();
    E.write(Flag[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeDekker(const MutexOptions &O) {
  Program P;
  VarId Flag[2] = {P.addVar("flag0"), P.addVar("flag1")};
  VarId Turn = P.addVar("turn");
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < 2; ++I) {
    uint32_t J = 1 - I;
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Fj = E.reg("fj");
    RegId T = E.reg("t");

    E.write(Flag[I], constE(1));
    if (O.buggy(I)) {
      // One-line change: enter without checking the peer's flag.
    } else {
      E.read(Fj, Flag[J]);
      E.beginWhile(eqE(regE(Fj), constE(1)));
      E.read(T, Turn);
      E.beginIf(neE(regE(T), constE(static_cast<Value>(I))));
      E.write(Flag[I], constE(0));
      E.read(T, Turn);
      E.beginWhile(neE(regE(T), constE(static_cast<Value>(I))));
      E.read(T, Turn);
      E.endWhile();
      E.write(Flag[I], constE(1));
      E.endIf();
      E.read(Fj, Flag[J]);
      E.endWhile();
    }
    E.criticalSection(Cnt);
    E.write(Turn, constE(static_cast<Value>(J)));
    E.write(Flag[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeSimplifiedDekker(const MutexOptions &O) {
  Program P;
  VarId Flag[2] = {P.addVar("flag0"), P.addVar("flag1")};
  VarId Cnt = P.addVar("cnt");
  for (uint32_t I = 0; I < 2; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Fj = E.reg("fj");
    E.write(Flag[I], constE(1));
    if (O.buggy(I))
      E.assign(Fj, constE(0)); // One-line change: pretend the peer is out.
    else
      E.read(Fj, Flag[1 - I]);
    E.beginIf(eqE(regE(Fj), constE(0)));
    E.criticalSection(Cnt);
    E.endIf();
    E.write(Flag[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeBurns(const MutexOptions &O) {
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  std::vector<VarId> Flag;
  for (uint32_t I = 0; I < N; ++I)
    Flag.push_back(P.addVar("flag" + std::to_string(I)));
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Done = E.reg("done");
    RegId Any = E.reg("any");
    RegId F = E.reg("f");

    // Phase A: raise the flag without a lower-id thread contending. The
    // injected bug raises the flag and enters without any check.
    if (O.buggy(I)) {
      E.write(Flag[I], constE(1));
    } else {
    E.assign(Done, constE(0));
    E.beginWhile(eqE(regE(Done), constE(0)));
    E.write(Flag[I], constE(0));
    E.assign(Any, constE(0));
    for (uint32_t J = 0; J < I; ++J) {
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), eqE(regE(F), constE(1))));
    }
    E.beginIf(eqE(regE(Any), constE(0)));
    E.write(Flag[I], constE(1));
    E.assign(Any, constE(0));
    for (uint32_t J = 0; J < I; ++J) {
      E.read(F, Flag[J]);
      E.assign(Any, orE(regE(Any), eqE(regE(F), constE(1))));
    }
    E.beginIf(eqE(regE(Any), constE(0)));
    E.assign(Done, constE(1));
    E.endIf();
    E.endIf();
    E.endWhile();
    }
    // Phase B: wait for all higher-id threads to lower their flags.
    if (!O.buggy(I)) {
      E.assign(Done, constE(0));
      E.beginWhile(eqE(regE(Done), constE(0)));
      E.assign(Any, constE(0));
      for (uint32_t J = I + 1; J < N; ++J) {
        E.read(F, Flag[J]);
        E.assign(Any, orE(regE(Any), eqE(regE(F), constE(1))));
      }
      E.assign(Done, notE(regE(Any)));
      E.endWhile();
    }
    E.criticalSection(Cnt);
    E.write(Flag[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeBakery(const MutexOptions &O) {
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  std::vector<VarId> Choosing, Num;
  for (uint32_t I = 0; I < N; ++I) {
    Choosing.push_back(P.addVar("choosing" + std::to_string(I)));
    Num.push_back(P.addVar("num" + std::to_string(I)));
  }
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId M = E.reg("m");
    RegId Nj = E.reg("nj");
    RegId Cj = E.reg("cj");
    RegId Ok = E.reg("ok");

    E.write(Choosing[I], constE(1));
    // Take a ticket one above the maximum visible ticket.
    E.assign(M, constE(0));
    for (uint32_t J = 0; J < N; ++J) {
      E.read(Nj, Num[J]);
      E.beginIf(binE(BinaryOp::Gt, regE(Nj), regE(M)));
      E.assign(M, regE(Nj));
      E.endIf();
    }
    E.assign(M, addE(regE(M), constE(1)));
    E.write(Num[I], regE(M));
    E.write(Choosing[I], constE(0));

    for (uint32_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      if (O.buggy(I))
        break; // One-line change: skip the ticket comparison loop.
      // Wait until J is not choosing.
      E.read(Cj, Choosing[J]);
      E.beginWhile(eqE(regE(Cj), constE(1)));
      E.read(Cj, Choosing[J]);
      E.endWhile();
      // Wait until J's ticket is 0 or ordered after ours.
      E.assign(Ok, constE(0));
      E.beginWhile(eqE(regE(Ok), constE(0)));
      E.read(Nj, Num[J]);
      ExprRef After = orE(
          eqE(regE(Nj), constE(0)),
          orE(binE(BinaryOp::Gt, regE(Nj), regE(M)),
              andE(eqE(regE(Nj), regE(M)),
                   constE(J > I ? 1 : 0))));
      E.assign(Ok, std::move(After));
      E.endWhile();
    }
    E.criticalSection(Cnt);
    E.write(Num[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeLamportFast(const MutexOptions &O) {
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  std::vector<VarId> B;
  for (uint32_t I = 0; I < N; ++I)
    B.push_back(P.addVar("b" + std::to_string(I)));
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    Value Me = static_cast<Value>(I) + 1; // 0 means "unset".
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId Done = E.reg("done");
    RegId Ry = E.reg("ry");
    RegId Rx = E.reg("rx");
    RegId Bj = E.reg("bj");

    E.assign(Done, constE(0));
    E.beginWhile(eqE(regE(Done), constE(0)));
    E.write(B[I], constE(1));
    E.write(X, constE(Me));
    E.read(Ry, Y);
    E.beginIf(neE(regE(Ry), constE(0)));
    // Contention on y: back off and retry once y clears.
    E.write(B[I], constE(0));
    E.read(Ry, Y);
    E.beginWhile(neE(regE(Ry), constE(0)));
    E.read(Ry, Y);
    E.endWhile();
    E.beginElse();
    E.write(Y, constE(Me));
    if (O.buggy(I)) {
      // One-line change: always take the fast path.
      E.assign(Rx, constE(Me));
    } else {
      E.read(Rx, X);
    }
    E.beginIf(eqE(regE(Rx), constE(Me)));
    E.assign(Done, constE(1)); // Fast path.
    E.beginElse();
    E.write(B[I], constE(0));
    for (uint32_t J = 0; J < N; ++J) {
      E.read(Bj, B[J]);
      E.beginWhile(eqE(regE(Bj), constE(1)));
      E.read(Bj, B[J]);
      E.endWhile();
    }
    E.read(Ry, Y);
    E.beginIf(eqE(regE(Ry), constE(Me)));
    E.assign(Done, constE(1)); // Slow path success.
    E.beginElse();
    E.read(Ry, Y);
    E.beginWhile(neE(regE(Ry), constE(0)));
    E.read(Ry, Y);
    E.endWhile();
    E.endIf();
    E.endIf();
    E.endIf();
    E.endWhile();

    E.criticalSection(Cnt);
    E.write(Y, constE(0));
    E.write(B[I], constE(0));
    E.finish();
  }
  return P;
}

Program vbmc::protocols::makeTicketBarrier(const MutexOptions &O) {
  uint32_t N = std::max(2u, O.Threads);
  Program P;
  VarId Next = P.addVar("next");
  VarId Serving = P.addVar("serving");
  VarId Cnt = P.addVar("cnt");

  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Proc = P.addProcess(thrName(I));
    ThreadEmitter E(P, Proc, O.fenced(I));
    RegId T = E.reg("t");
    RegId S = E.reg("s");

    // Grab a ticket atomically (the CAS blocks on a stale read; runs
    // where the read was current proceed).
    E.read(T, Next);
    E.cas(Next, regE(T), addE(regE(T), constE(1)));
    // Wait to be served.
    if (!O.buggy(I)) {
      E.read(S, Serving);
      E.beginWhile(neE(regE(S), regE(T)));
      E.read(S, Serving);
      E.endWhile();
    }
    E.criticalSection(Cnt);
    E.write(Serving, addE(regE(T), constE(1)));
    E.finish();
  }
  return P;
}

ErrorOr<Program> vbmc::protocols::makeByPaperName(const std::string &Name,
                                                  uint32_t Threads) {
  // Split an optional numeric version suffix: "peterson_2" -> base
  // "peterson", version 2. "sim_dekker" has no version digit.
  std::string Base = Name;
  int Version = 0;
  auto Pos = Name.find_last_of('_');
  if (Pos != std::string::npos && Pos + 2 == Name.size() &&
      std::isdigit(static_cast<unsigned char>(Name[Pos + 1]))) {
    Base = Name.substr(0, Pos);
    Version = Name[Pos + 1] - '0';
  }

  uint32_t N = std::max(2u, Threads);
  MutexOptions O;
  switch (Version) {
  case 0:
    O = MutexOptions::unfenced(N);
    break;
  case 1:
    O = MutexOptions::fencedExcept(N, 0);
    break;
  case 2:
    O = MutexOptions::fencedBuggy(N, 0);
    break;
  case 3:
    O = MutexOptions::fencedBuggy(N, N - 1);
    break;
  case 4:
    O = MutexOptions::fencedAll(N);
    break;
  default:
    return Diagnostic("unknown protocol version in '" + Name + "'");
  }

  if (Base == "peterson")
    return makePeterson(O);
  if (Base == "szymanski")
    return makeSzymanski(O);
  if (Base == "dekker")
    return makeDekker(O);
  if (Base == "sim_dekker")
    return makeSimplifiedDekker(O);
  if (Base == "burns")
    return makeBurns(O);
  if (Base == "bakery")
    return makeBakery(O);
  if (Base == "lamport")
    return makeLamportFast(O);
  if (Base == "tbar") {
    // tbar appears only in the SAFE tables; it is fenced by construction.
    if (Version == 0)
      O = MutexOptions::fencedAll(N);
    return makeTicketBarrier(O);
  }
  return Diagnostic("unknown protocol '" + Name + "'");
}
