//===- Protocols.h - the paper's mutual-exclusion benchmarks -----*- C++ -*-===//
///
/// \file
/// Programmatic builders for the benchmark programs of Section 7: the
/// SV-COMP-style mutual-exclusion protocols (Peterson's filter lock,
/// Szymanski, Dekker, simplified Dekker, Burns, Lamport's bakery,
/// Lamport's fast mutex) and the ticket barrier (tbar), parameterized by
///
///  * the number of threads,
///  * a per-thread fencing mask (a fenced thread issues a fence after
///    every shared store, the standard store-load fix these protocols
///    need under weak memory),
///  * an optional "one-line change" bug injection: the designated thread
///    skips its final entry-wait, exactly the kind of single-line
///    mutation Tables 3-5 describe.
///
/// Every protocol guards its critical section with the standard counter
/// check: `cnt++; assert(cnt == 1); cnt--;` (lowered to reads/writes over
/// registers). A mutual-exclusion violation makes the assert failable;
/// causality of RA makes the fenced versions safe.
///
/// The paper's benchmark names map to builder calls as:
///
///   name_0(N)  unfenced, no bug               (UNSAFE under RA)
///   name_1(N)  all threads fenced except 0    (UNSAFE; Table 2)
///   name_2(N)  fenced + bug in thread 0       (UNSAFE; Tables 3, 5)
///   name_3(N)  fenced + bug in thread N-1     (UNSAFE; Table 4)
///   name_4(N)  fully fenced                   (SAFE; Tables 6-8)
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_PROTOCOLS_PROTOCOLS_H
#define VBMC_PROTOCOLS_PROTOCOLS_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace vbmc::protocols {

struct MutexOptions {
  uint32_t Threads = 2;
  /// Bit i set = thread i issues a fence after every shared store.
  uint64_t FencedMask = 0;
  /// Thread whose final entry-wait is removed (the "one line change"), or
  /// -1 for no injected bug.
  int32_t BuggyThread = -1;

  bool fenced(uint32_t I) const { return (FencedMask >> I) & 1; }
  bool buggy(uint32_t I) const {
    return BuggyThread == static_cast<int32_t>(I);
  }

  static MutexOptions unfenced(uint32_t N) { return MutexOptions{N, 0, -1}; }
  static MutexOptions fencedAll(uint32_t N) {
    return MutexOptions{N, (1ULL << N) - 1, -1};
  }
  /// All threads fenced except \p Unfenced (the paper's version _1).
  static MutexOptions fencedExcept(uint32_t N, uint32_t Unfenced) {
    return MutexOptions{N, ((1ULL << N) - 1) & ~(1ULL << Unfenced), -1};
  }
  /// Fenced with a bug in \p Buggy (versions _2 and _3).
  static MutexOptions fencedBuggy(uint32_t N, uint32_t Buggy) {
    return MutexOptions{N, (1ULL << N) - 1, static_cast<int32_t>(Buggy)};
  }
};

/// Peterson's filter lock (the N-thread generalization of Peterson).
ir::Program makePeterson(const MutexOptions &O);

/// Szymanski's flag-based algorithm.
ir::Program makeSzymanski(const MutexOptions &O);

/// Dekker's algorithm (exactly 2 threads; Threads is clamped).
ir::Program makeDekker(const MutexOptions &O);

/// The try-lock-style simplified Dekker (safe under SC, broken under RA).
ir::Program makeSimplifiedDekker(const MutexOptions &O);

/// Burns' one-bit algorithm.
ir::Program makeBurns(const MutexOptions &O);

/// Lamport's bakery (tickets bounded by the loop bound).
ir::Program makeBakery(const MutexOptions &O);

/// Lamport's fast mutex.
ir::Program makeLamportFast(const MutexOptions &O);

/// Ticket lock / barrier built on CAS ("tbar" in the tables).
ir::Program makeTicketBarrier(const MutexOptions &O);

/// Builds a benchmark by its paper name, e.g. "peterson_2" with N = 5 for
/// peterson_2(5), "bakery" (version suffix defaults to _0 semantics for
/// the unfenced Table 1 entries, except tbar which is version _4 = fenced).
ErrorOr<ir::Program> makeByPaperName(const std::string &Name,
                                     uint32_t Threads);

} // namespace vbmc::protocols

#endif // VBMC_PROTOCOLS_PROTOCOLS_H
