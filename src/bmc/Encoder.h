//===- Encoder.h - Lal-Reps bounded model checking ----------------*- C++ -*-===//
///
/// \file
/// Bounded model checking of concurrent SC programs via the Lal-Reps
/// round-based sequentialization, playing the role CBMC plays in the
/// paper's prototype:
///
///  * loops are unrolled L times (see Unroll.h);
///  * executions are restricted to R = ContextBound+1 round-robin rounds;
///    every shared variable gets R copies, round r's initial copy is a
///    free guess, and a chain constraint equates round r's final store
///    with round r+1's guess;
///  * each process is symbolically executed once: registers are bit-vector
///    SSA values, its current round is a monotonically non-decreasing
///    guessed counter that may only advance at visible points (before a
///    shared access outside an atomic section, or at an atomic_begin);
///  * `assume` conjoins into the process's execution guard, so a blocked
///    process simply freezes (matching the explicit SC semantics where
///    other processes keep running);
///  * `assert` records an error bit under the current guard;
///  * the query "some error bit set" goes to the built-in CDCL solver.
///
/// SAT means UNSAFE with a witness; UNSAT means SAFE for every execution
/// within the L/R bounds.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_BMC_ENCODER_H
#define VBMC_BMC_ENCODER_H

#include "ir/Program.h"
#include "sat/Solver.h"
#include "support/Budget.h"
#include "support/CheckContext.h"
#include "support/Sandbox.h"
#include "support/Timer.h"

#include <cstdint>
#include <memory>
#include <string>

namespace vbmc::bmc {

struct BmcOptions {
  /// Loop unrolling bound L.
  uint32_t UnrollBound = 2;
  /// Maximum number of context switches (rounds = ContextBound + 1).
  uint32_t ContextBound = 4;
  /// Bit width of the value domain (two's complement). Must be wide
  /// enough for every value the program can compute; see the width audit
  /// in BmcBackend.
  uint32_t ValueWidth = 12;
  /// Resource budget: B.Seconds is the wall clock for the whole check
  /// (0 = unlimited), B.Conflicts / B.Propagations bound each solver
  /// call. See support/Budget.h for the shared vocabulary.
  support::Budget B;
  /// Memory ceiling for the encoding in bytes (0 = unlimited): when the
  /// circuit's estimated footprint exceeds it, encoding aborts cleanly
  /// with Unknown + FailureKind::OutOfMemory instead of risking a
  /// std::bad_alloc death on huge instances.
  uint64_t MemLimitBytes = 0;
  /// Optional engine context. Its *remaining* deadline governs every
  /// stage (unroll, encode, solve) — unlike B.Seconds, whose clock
  /// starts inside checkBmc — its token cancels them cooperatively, and
  /// sat.* stage stats are recorded into its registry.
  const CheckContext *Ctx = nullptr;
  /// Shared variables the CALLER guarantees are never written with a
  /// value below their current one (monotone counters / 0 -> 1 flags).
  /// The encoder asserts a redundant `old <= new` + `0 <= new` lemma at
  /// every write site for them, turning final-value bounds (the
  /// incremental selectors) into unit propagation across the whole
  /// unrolling. Unsound if the guarantee is violated — leave empty
  /// unless the program is instrumented (the [[.]]_K translation's
  /// `s_ra` and stamp markers qualify).
  std::vector<ir::VarId> MonotoneVars;
  /// Decision-polarity policy for every solver call this check issues.
  /// Forwarded verbatim into each SolveSpec; an IncrementalBmc captures
  /// it at construction like the rest of these options.
  sat::PhaseMode Phase = sat::PhaseMode::Saved;
  /// Seed for PhaseMode::Random (ignored otherwise).
  uint64_t PhaseSeed = 0;
};

enum class BmcStatus {
  Unsafe, ///< Some assertion fails within the bounds (SAT).
  Safe,   ///< No assertion fails within the bounds (UNSAT).
  Unknown,
};

struct BmcResult {
  BmcStatus Status = BmcStatus::Unknown;
  /// For Unknown: the classified resource fault, when there is one
  /// (OutOfMemory for the byte/node ceilings); None for cooperative
  /// causes (deadline, cancellation, solver conflict budget).
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  double Seconds = 0;
  uint64_t CircuitNodes = 0;
  uint64_t SolverConflicts = 0;
  uint64_t SolverDecisions = 0;
  std::string Note;
  /// When Unsafe: which assertions fail in the satisfying assignment,
  /// e.g. "p1: assert #0". Multiple entries mean the model violates
  /// several assertions at once.
  std::vector<std::string> FailedAssertions;

  bool unsafe() const { return Status == BmcStatus::Unsafe; }
  bool safe() const { return Status == BmcStatus::Safe; }
};

/// Runs BMC on \p P (any SC program in the IR; atomic sections honored).
BmcResult checkBmc(const ir::Program &P, const BmcOptions &Opts);

/// What makes an encoding budget-deepenable: the shared variable whose
/// final value counts the consumed budget units, and the budget range the
/// one-time encoding must answer. For the paper's [[.]]_K translation the
/// budget variable is `s_ra` (every view-altering read increments it), so
/// budget k corresponds exactly to the fresh K=k translation's verdict.
struct IncrementalSpec {
  /// Shared variable (in the program handed to IncrementalBmc) counting
  /// consumed budget units; monotonically non-decreasing along every
  /// execution.
  ir::VarId BudgetVar = 0;
  /// Largest budget the encoding must answer; solveBudget accepts
  /// K = 0..MaxBudget.
  uint32_t MaxBudget = 0;
  /// Context switches available at budget 0 (the translation's process
  /// count n): budget k is checked under k + BaseContexts contexts, the
  /// paper's K+n bound. Opts.ContextBound must equal
  /// MaxBudget + BaseContexts.
  uint32_t BaseContexts = 0;
  /// ZeroFinalAtBudget[k] (when non-empty) lists shared variables whose
  /// FINAL value must be zero for an execution to count as a budget-k
  /// run. The translation uses this to shrink its abstract timestamp
  /// domain per budget: stamp markers above the pool a fresh budget-k
  /// encoding would have must stay untaken, otherwise the MaxBudget
  /// encoding (whose domain grows with K) admits runs no fresh budget-k
  /// encoding can represent and verdicts diverge. Size must be 0 or
  /// MaxBudget + 1.
  std::vector<std::vector<ir::VarId>> ZeroFinalAtBudget;
  /// Shared instrumentation variables that never decrease along any
  /// execution (the budget counter, the 0 -> 1 stamp markers). The
  /// encoder asserts redundant per-round monotonicity lemmas
  /// (cell(r-1) <= cell(r)) for them at root level: true in every model,
  /// so they change nothing semantically, but they let a selector's
  /// final-value bound propagate backward through the round chain
  /// instead of being rediscovered by conflict analysis at every budget.
  std::vector<ir::VarId> MonotoneVars;
};

/// Incremental budget deepening over ONE persistent encoding: unrolls,
/// symbolically executes and bit-blasts the program once at the MaxBudget
/// bounds, then answers each budget k <= MaxBudget by re-solving the same
/// CDCL solver under a per-k assumption literal
///
///   Sel_k  =  (final BudgetVar <= k)
///          /\ (every round guess < k + BaseContexts + 1)
///          /\ (every var in ZeroFinalAtBudget[k] ends at 0)
///
/// so learned clauses, VSIDS activities and saved phases carry across
/// budgets instead of being rebuilt per K. Verdicts match fresh-per-K
/// runs: the selector restricts the MaxBudget encoding exactly to the
/// executions the budget-k encoding admits (see docs/ALGORITHMS.md,
/// "Incremental deepening").
class IncrementalBmc {
public:
  /// Builds the one-time encoding. \p Opts is captured by value;
  /// Opts.Ctx (deadline/cancellation/stats) governs construction only —
  /// each solveBudget call takes its own context. On failure (budget,
  /// memory or node ceiling during encoding) usable() is false and
  /// encodeResult() carries the classified failure.
  IncrementalBmc(const ir::Program &P, const BmcOptions &Opts,
                 const IncrementalSpec &Spec);
  ~IncrementalBmc();
  IncrementalBmc(const IncrementalBmc &) = delete;
  IncrementalBmc &operator=(const IncrementalBmc &) = delete;

  /// True when the one-time encoding succeeded and solveBudget may be
  /// called. False: encodeResult() explains why.
  bool usable() const;

  /// Outcome of the construction-time encoding phase. When the program is
  /// trivially safe (no reachable assert), Status is already Safe here and
  /// every solveBudget returns it unchanged.
  const BmcResult &encodeResult() const;

  /// Solves the persistent formula under budget \p K's selector literal.
  /// \p Ctx, when non-null, bounds the solve (remaining deadline), cancels
  /// it cooperatively, and receives per-solve *delta* statistics under
  /// sat.k<K>.{conflicts,decisions,seconds} plus the running
  /// sat.solve.* totals. The returned SolverConflicts/SolverDecisions are
  /// this solve's deltas, not solver-lifetime totals.
  BmcResult solveBudget(uint32_t K, const CheckContext *Ctx);

  class Impl;

private:
  std::unique_ptr<Impl> I;
};

} // namespace vbmc::bmc

#endif // VBMC_BMC_ENCODER_H
