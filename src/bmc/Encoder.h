//===- Encoder.h - Lal-Reps bounded model checking ----------------*- C++ -*-===//
///
/// \file
/// Bounded model checking of concurrent SC programs via the Lal-Reps
/// round-based sequentialization, playing the role CBMC plays in the
/// paper's prototype:
///
///  * loops are unrolled L times (see Unroll.h);
///  * executions are restricted to R = ContextBound+1 round-robin rounds;
///    every shared variable gets R copies, round r's initial copy is a
///    free guess, and a chain constraint equates round r's final store
///    with round r+1's guess;
///  * each process is symbolically executed once: registers are bit-vector
///    SSA values, its current round is a monotonically non-decreasing
///    guessed counter that may only advance at visible points (before a
///    shared access outside an atomic section, or at an atomic_begin);
///  * `assume` conjoins into the process's execution guard, so a blocked
///    process simply freezes (matching the explicit SC semantics where
///    other processes keep running);
///  * `assert` records an error bit under the current guard;
///  * the query "some error bit set" goes to the built-in CDCL solver.
///
/// SAT means UNSAFE with a witness; UNSAT means SAFE for every execution
/// within the L/R bounds.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_BMC_ENCODER_H
#define VBMC_BMC_ENCODER_H

#include "ir/Program.h"
#include "support/CheckContext.h"
#include "support/Sandbox.h"
#include "support/Timer.h"

#include <cstdint>
#include <string>

namespace vbmc::bmc {

struct BmcOptions {
  /// Loop unrolling bound L.
  uint32_t UnrollBound = 2;
  /// Maximum number of context switches (rounds = ContextBound + 1).
  uint32_t ContextBound = 4;
  /// Bit width of the value domain (two's complement). Must be wide
  /// enough for every value the program can compute; see the width audit
  /// in BmcBackend.
  uint32_t ValueWidth = 12;
  /// Wall-clock budget (0 = unlimited).
  double BudgetSeconds = 0;
  /// Conflict budget for the solver (0 = unlimited).
  uint64_t MaxConflicts = 0;
  /// Memory ceiling for the encoding in bytes (0 = unlimited): when the
  /// circuit's estimated footprint exceeds it, encoding aborts cleanly
  /// with Unknown + FailureKind::OutOfMemory instead of risking a
  /// std::bad_alloc death on huge instances.
  uint64_t MemLimitBytes = 0;
  /// Optional engine context. Its *remaining* deadline governs every
  /// stage (unroll, encode, solve) — unlike BudgetSeconds, whose clock
  /// starts inside checkBmc — its token cancels them cooperatively, and
  /// sat.* stage stats are recorded into its registry.
  const CheckContext *Ctx = nullptr;
};

enum class BmcStatus {
  Unsafe, ///< Some assertion fails within the bounds (SAT).
  Safe,   ///< No assertion fails within the bounds (UNSAT).
  Unknown,
};

struct BmcResult {
  BmcStatus Status = BmcStatus::Unknown;
  /// For Unknown: the classified resource fault, when there is one
  /// (OutOfMemory for the byte/node ceilings); None for cooperative
  /// causes (deadline, cancellation, solver conflict budget).
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  double Seconds = 0;
  uint64_t CircuitNodes = 0;
  uint64_t SolverConflicts = 0;
  uint64_t SolverDecisions = 0;
  std::string Note;
  /// When Unsafe: which assertions fail in the satisfying assignment,
  /// e.g. "p1: assert #0". Multiple entries mean the model violates
  /// several assertions at once.
  std::vector<std::string> FailedAssertions;

  bool unsafe() const { return Status == BmcStatus::Unsafe; }
  bool safe() const { return Status == BmcStatus::Safe; }
};

/// Runs BMC on \p P (any SC program in the IR; atomic sections honored).
BmcResult checkBmc(const ir::Program &P, const BmcOptions &Opts);

} // namespace vbmc::bmc

#endif // VBMC_BMC_ENCODER_H
