//===- Encoder.cpp - round-based symbolic execution -------------*- C++ -*-===//

#include "bmc/Encoder.h"

#include "bmc/Unroll.h"
#include "formula/BitVec.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

using namespace vbmc;
using namespace vbmc::bmc;
using namespace vbmc::formula;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;

namespace {

/// Symbolic execution of one (unrolled, loop-free) program.
///
/// The encoding and the solving halves are split so the incremental
/// deepening engine can build the circuit/CNF once (encode()) and then
/// re-solve the same persistent solver many times under different
/// assumption sets (solveUnder()); the classic one-shot path is run() =
/// encode() + a single unassumed solveUnder().
class Encoder {
public:
  Encoder(const Program &P, const BmcOptions &Opts)
      : P(P), Opts(Opts), W(Opts.ValueWidth),
        Rounds(Opts.ContextBound + 1) {
    RoundW = 1;
    while ((1u << RoundW) < Rounds)
      ++RoundW;
    ++RoundW; // Headroom so unsigned compares against Rounds are exact.
    Monotone.assign(P.numVars(), false);
    for (ir::VarId V : Opts.MonotoneVars)
      if (V < Monotone.size())
        Monotone[V] = true;
  }

  /// Builds the circuit and bit-blasts it into the solver. Returns true
  /// when a final verdict was already reached during encoding — budget /
  /// resource abort (Unknown) or no reachable assert (trivially Safe) —
  /// with the verdict in encodeOutcome(). Returns false when the formula
  /// is ready to solve.
  bool encode() {
    Timer EncodeWatch;
    DL = Opts.B.startDeadline();
    buildStores();
    for (uint32_t PI = 0; PI < P.numProcs(); ++PI) {
      walkProcess(PI);
      // Encoding can dwarf solving on big instances; honor the budget,
      // a node cap, and the configured byte ceiling during construction
      // too (graceful degradation instead of std::bad_alloc death).
      if (outOfBudget() || resourceExceeded()) {
        EncodeOutcome.Status = BmcStatus::Unknown;
        if (wasCancelled()) {
          EncodeOutcome.Note = "cancelled";
        } else if (outOfBudget()) {
          EncodeOutcome.Note = "encoding budget exhausted";
        } else {
          EncodeOutcome.Failure = sandbox::FailureKind::OutOfMemory;
          EncodeOutcome.Note =
              memExceeded()
                  ? "encoding memory ceiling exceeded (" +
                        std::to_string(C.estimatedBytes() >> 10) +
                        " KiB estimated, limit " +
                        std::to_string(Opts.MemLimitBytes >> 10) + " KiB)"
                  : "circuit size cap exceeded";
        }
        EncodeOutcome.CircuitNodes = C.numNodes();
        recordEncodeStats(EncodeWatch.elapsedSeconds());
        return true;
      }
    }
    addChainConstraints();

    NodeRef AnyError = C.falseRef();
    for (NodeRef E : Errors)
      AnyError = C.mkOr(AnyError, E);

    EncodeOutcome.CircuitNodes = C.numNodes();
    if (C.isFalse(AnyError)) {
      // No assert is even reachable: trivially safe within bounds.
      EncodeOutcome.Status = BmcStatus::Safe;
      recordEncodeStats(EncodeWatch.elapsedSeconds());
      return true;
    }

    // Tseitin conversion (bit-blast to CNF) counts as encoding time.
    Solver.addUnit(C.toLit(Solver, AnyError));
    for (NodeRef G : SideConstraints)
      Solver.addUnit(C.toLit(Solver, G));
    recordEncodeStats(EncodeWatch.elapsedSeconds());
    return false;
  }

  const BmcResult &encodeOutcome() const { return EncodeOutcome; }

  /// The persistent solver's lifetime-cumulative statistics.
  const sat::SolverStats &solverStats() const { return Solver.stats(); }

  /// Top-level inprocessing pass on the persistent solver (between
  /// incremental solves). False when it derived unsatisfiability.
  bool inprocess() { return Solver.inprocess(); }

  /// One solver call under \p Spec's assumptions and budgets. Records
  /// per-solve *deltas* (SolverStats are solver-lifetime-cumulative) into
  /// \p Ctx's registry and returns them in the result, so repeated calls
  /// on this persistent solver report what each solve actually cost.
  /// R.Seconds covers just this solve.
  BmcResult solveUnder(sat::SolveSpec Spec, const CheckContext *Ctx) {
    BmcResult R;
    R.CircuitNodes = C.numNodes();
    Timer SolveWatch;
    if (Ctx && !Spec.Cancel)
      Spec.Cancel = &Ctx->token();
    sat::SolverStats Before = Solver.stats();
    sat::SolveResult SR = Solver.solve(Spec);
    double Seconds = SolveWatch.elapsedSeconds();
    sat::SolverStats Delta = Solver.stats() - Before;
    if (Ctx) {
      StatsRegistry &St = Ctx->stats();
      St.addSeconds("sat.solve.seconds", Seconds);
      St.addCount("sat.solve.conflicts", Delta.Conflicts);
      St.addCount("sat.solve.decisions", Delta.Decisions);
      St.addCount("sat.solve.propagations", Delta.Propagations);
      if (Delta.GcRuns) {
        St.addCount("sat.gc.runs", Delta.GcRuns);
        St.addCount("sat.gc.bytes_reclaimed", Delta.GcBytesReclaimed);
      }
      if (Delta.Interrupts)
        St.addCount("sat.interrupts", Delta.Interrupts);
      Ctx->trace().recordElapsed("sat.solve", "sat", Seconds);
    }
    R.SolverConflicts = Delta.Conflicts;
    R.SolverDecisions = Delta.Decisions;
    switch (SR) {
    case sat::SolveResult::Sat:
      R.Status = BmcStatus::Unsafe;
      // Read the model back: every error bit that is set names a failing
      // assertion (folded-to-constant bits are reported unconditionally
      // when true).
      for (size_t I = 0; I < Errors.size(); ++I) {
        NodeRef E = Errors[I];
        bool Fails = C.isConst(E) ? C.isTrue(E)
                                  : C.valueInModel(Solver, E);
        if (Fails)
          R.FailedAssertions.push_back(ErrorLabels[I]);
      }
      break;
    case sat::SolveResult::Unsat:
      R.Status = BmcStatus::Safe;
      break;
    case sat::SolveResult::Unknown:
      R.Status = BmcStatus::Unknown;
      R.Note = (Ctx && Ctx->cancelled()) ? "cancelled"
                                         : "solver budget exhausted";
      break;
    }
    R.Seconds = Seconds;
    return R;
  }

  /// The one-shot path: encode, then a single unassumed solve under the
  /// tighter of the local budget and the context deadline.
  BmcResult run() {
    Timer Watch;
    if (encode()) {
      BmcResult R = EncodeOutcome;
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }

    // The solver gets whatever wall clock is left after encoding: the
    // tighter of the local budget and the engine context's deadline.
    double Remaining = DL.remainingSeconds();
    if (Opts.Ctx)
      Remaining =
          std::min(Remaining, Opts.Ctx->deadline().remainingSeconds());
    if (Remaining <= 0 || wasCancelled()) {
      BmcResult R;
      R.Status = BmcStatus::Unknown;
      R.Note = wasCancelled() ? "cancelled" : "encoding budget exhausted";
      R.CircuitNodes = C.numNodes();
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    Deadline SolveDL =
        std::isinf(Remaining) ? Deadline() : Deadline(Remaining);
    sat::SolveSpec Spec;
    Spec.MaxConflicts = Opts.B.Conflicts;
    Spec.MaxPropagations = Opts.B.Propagations;
    Spec.Phase = Opts.Phase;
    Spec.PhaseSeed = Opts.PhaseSeed;
    Spec.DL = SolveDL;
    BmcResult R = solveUnder(std::move(Spec), Opts.Ctx);
    R.Seconds = Watch.elapsedSeconds();
    return R;
  }

  /// Assumption literal selecting exactly the executions a fresh
  /// budget-\p K encoding admits: the final value of \p BudgetVar (the
  /// monotone consumed-budget counter) is at most K, every guessed round
  /// counter stays below K + BaseContexts + 1 rounds — the fresh
  /// encoding's K + n context bound — and every variable in
  /// \p MustEndZero finishes at 0 (the translation passes the stamp
  /// markers above the fresh budget-K timestamp pool, which grows with
  /// K). Tseitin clauses for the selector are root-level additions, so
  /// all selectors must be built before the first solve; only the
  /// returned literal is per-K.
  sat::Lit selectorFor(uint32_t K, ir::VarId BudgetVar,
                       uint32_t BaseContexts,
                       const std::vector<ir::VarId> &MustEndZero) {
    // The chain constraints thread each round's final store into the next
    // round's guess, so the last round's cell holds the execution's final
    // budget count even when upper rounds are inert. Values are small and
    // non-negative (W has headroom), so the signed compare is exact.
    BitVec Final = storeCell(Rounds - 1, BudgetVar);
    NodeRef Sel = bvSle(C, Final, bvConst(C, K, W));
    BitVec RoundCap = bvConst(C, K + BaseContexts + 1, RoundW);
    for (const BitVec &G : RoundGuesses)
      Sel = C.mkAnd(Sel, bvUlt(C, G, RoundCap));
    BitVec Zero = bvConst(C, 0, W);
    for (ir::VarId V : MustEndZero)
      Sel = C.mkAnd(Sel, bvEq(C, storeCell(Rounds - 1, V), Zero));
    return C.toLit(Solver, Sel);
  }

  /// Root-asserts cell(r-1, v) <= cell(r, v) for every monotone
  /// instrumentation variable: redundant (implied by the transition
  /// constraints, since these variables are only ever incremented or
  /// set 0 -> 1), but they turn a selector's final-value bound into unit
  /// propagation across all rounds. Must run before the first solve.
  void assertMonotoneLemmas(const std::vector<ir::VarId> &Vars) {
    for (ir::VarId V : Vars)
      for (uint32_t R = 1; R < Rounds; ++R)
        Solver.addUnit(C.toLit(
            Solver, bvSle(C, storeCell(R - 1, V), storeCell(R, V))));
  }

  uint64_t numNodes() const { return C.numNodes(); }

private:
  /// Store[r * numVars + x]: current symbolic value of x on round r's
  /// timeline, threaded through the processes in order.
  std::vector<BitVec> Store;
  /// The free guesses for each round's initial store (round 0 = zeros).
  std::vector<BitVec> StoreInit;

  struct ProcState {
    std::vector<BitVec> Regs; ///< Indexed by global RegId.
    BitVec Round;
    NodeRef Guard;
    uint32_t AtomicDepth = 0;
  };

  BitVec &storeCell(uint32_t Round, ir::VarId X) {
    return Store[Round * P.numVars() + X];
  }

  void buildStores() {
    Store.reserve(static_cast<size_t>(Rounds) * P.numVars());
    StoreInit.reserve(Store.capacity());
    for (uint32_t R = 0; R < Rounds; ++R) {
      for (ir::VarId X = 0; X < P.numVars(); ++X) {
        BitVec Init = R == 0 ? bvConst(C, 0, W) : bvFresh(C, W);
        StoreInit.push_back(Init);
        Store.push_back(Init);
      }
    }
  }

  void addChainConstraints() {
    for (uint32_t R = 0; R + 1 < Rounds; ++R)
      for (ir::VarId X = 0; X < P.numVars(); ++X)
        SideConstraints.push_back(
            bvEq(C, storeCell(R, X), StoreInit[(R + 1) * P.numVars() + X]));
  }

  /// A fresh round value constrained to [Current, Rounds). Every guess is
  /// also remembered so selectorFor can cap rounds per budget.
  BitVec advanceRound(const BitVec &Current) {
    BitVec Next = bvFresh(C, RoundW);
    SideConstraints.push_back(~bvUlt(C, Next, Current));
    SideConstraints.push_back(bvUlt(C, Next, bvConst(C, Rounds, RoundW)));
    RoundGuesses.push_back(Next);
    return Next;
  }

  void walkProcess(uint32_t PI) {
    CurrentProc = PI;
    AssertCounter = 0;
    ProcState S;
    S.Regs.assign(P.numRegs(), bvConst(C, 0, W));
    // The first visible action may happen in any round, or never (halt).
    S.Round = advanceRound(bvConst(C, 0, RoundW));
    S.Guard = ~C.mkInput();
    walkBody(P.Procs[PI].Body, S);
    assert(S.AtomicDepth == 0 && "unbalanced atomic section");
  }

  /// True when encoding should stop: the local budget ran out, or the
  /// engine context's (remaining) deadline expired, or it was cancelled.
  bool outOfBudget() const {
    return DL.expired() || (Opts.Ctx && Opts.Ctx->interrupted());
  }

  bool wasCancelled() const { return Opts.Ctx && Opts.Ctx->cancelled(); }

  /// Byte ceiling (configurable) exceeded by the circuit's footprint.
  bool memExceeded() const {
    return Opts.MemLimitBytes > 0 &&
           C.estimatedBytes() > Opts.MemLimitBytes;
  }

  /// Any construction-side resource cap exceeded (nodes or bytes).
  bool resourceExceeded() const {
    return C.numNodes() > MaxCircuitNodes || memExceeded();
  }

  void recordEncodeStats(double Seconds) {
    if (!Opts.Ctx)
      return;
    StatsRegistry &St = Opts.Ctx->stats();
    St.addSeconds("sat.encode.seconds", Seconds);
    St.addCount("sat.encode.nodes", C.numNodes());
    St.addCount("sat.encode.bytes", C.estimatedBytes());
    Opts.Ctx->trace().recordElapsed("sat.encode", "sat", Seconds);
  }

  void walkBody(const std::vector<Stmt> &Body, ProcState &S) {
    for (const Stmt &St : Body) {
      if (resourceExceeded() || outOfBudget()) {
        // Kill the walk cheaply; run() reports Unknown.
        S.Guard = C.falseRef();
        return;
      }
      walkStmt(St, S);
    }
  }

  /// Selects the current-round copy of \p X.
  BitVec loadVar(const ProcState &S, ir::VarId X) {
    BitVec V = storeCell(0, X);
    for (uint32_t R = 1; R < Rounds; ++R) {
      NodeRef IsR = bvEq(C, S.Round, bvConst(C, R, RoundW));
      V = bvMux(C, IsR, storeCell(R, X), V);
    }
    return V;
  }

  /// Writes \p V into the current-round copy of \p X under the guard.
  void writeVar(const ProcState &S, ir::VarId X, const BitVec &V) {
    for (uint32_t R = 0; R < Rounds; ++R) {
      NodeRef Here =
          C.mkAnd(S.Guard, bvEq(C, S.Round, bvConst(C, R, RoundW)));
      BitVec Old = storeCell(R, X);
      storeCell(R, X) = bvMux(C, Here, V, Old);
      if (Monotone[X]) {
        // Redundant per-write lemmas for caller-declared monotone
        // counters (see BmcOptions::MonotoneVars): true in every model,
        // but they let an assumed final-value bound zero out the whole
        // write chain by unit propagation instead of conflict analysis.
        SideConstraints.push_back(bvSle(C, Old, storeCell(R, X)));
        SideConstraints.push_back(
            bvSle(C, bvConst(C, 0, W), storeCell(R, X)));
      }
    }
  }

  /// A visible point outside an atomic section: the round may advance,
  /// and the process may halt (a free guess), modelling executions in
  /// which the scheduler never runs it again. Without the halt choice the
  /// encoding would force every process to completion and miss prefix
  /// runs (e.g. "p1 acts before p0 ever moves" in a single round).
  void maybeAdvance(ProcState &S) {
    if (S.AtomicDepth != 0)
      return;
    S.Round = advanceRound(S.Round);
    S.Guard = C.mkAnd(S.Guard, ~C.mkInput());
  }

  BitVec evalExpr(const Expr &E, const ProcState &S) {
    switch (E.kind()) {
    case ExprKind::Const:
      return bvConst(C, E.constValue(), W);
    case ExprKind::Reg:
      return S.Regs[E.reg()];
    case ExprKind::Nondet:
      reportFatalError("nondet must be the whole right-hand side of an "
                       "assignment (validate() enforces this)");
    case ExprKind::Unary:
      switch (E.unaryOp()) {
      case ir::UnaryOp::Not:
        return bvFromBool(C, ~bvNonZero(C, evalExpr(*E.lhs(), S)), W);
      case ir::UnaryOp::Neg:
        return bvNeg(C, evalExpr(*E.lhs(), S));
      }
      break;
    case ExprKind::Binary: {
      BitVec A = evalExpr(*E.lhs(), S);
      BitVec B = evalExpr(*E.rhs(), S);
      switch (E.binaryOp()) {
      case ir::BinaryOp::Add:
        return bvAdd(C, A, B);
      case ir::BinaryOp::Sub:
        return bvSub(C, A, B);
      case ir::BinaryOp::Mul:
        return bvMul(C, A, B);
      case ir::BinaryOp::Div:
        return bvSdiv(C, A, B);
      case ir::BinaryOp::Mod:
        return bvSrem(C, A, B);
      case ir::BinaryOp::Eq:
        return bvFromBool(C, bvEq(C, A, B), W);
      case ir::BinaryOp::Ne:
        return bvFromBool(C, ~bvEq(C, A, B), W);
      case ir::BinaryOp::Lt:
        return bvFromBool(C, bvSlt(C, A, B), W);
      case ir::BinaryOp::Le:
        return bvFromBool(C, bvSle(C, A, B), W);
      case ir::BinaryOp::Gt:
        return bvFromBool(C, bvSlt(C, B, A), W);
      case ir::BinaryOp::Ge:
        return bvFromBool(C, bvSle(C, B, A), W);
      case ir::BinaryOp::And:
        return bvFromBool(
            C, C.mkAnd(bvNonZero(C, A), bvNonZero(C, B)), W);
      case ir::BinaryOp::Or:
        return bvFromBool(C, C.mkOr(bvNonZero(C, A), bvNonZero(C, B)), W);
      }
      break;
    }
    }
    reportFatalError("unhandled expression kind in BMC encoder");
  }

  NodeRef evalBool(const Expr &E, const ProcState &S) {
    return bvNonZero(C, evalExpr(E, S));
  }

  void walkStmt(const Stmt &St, ProcState &S) {
    switch (St.Kind) {
    case StmtKind::Read: {
      maybeAdvance(S);
      BitVec V = loadVar(S, St.Var);
      // The register keeps its old value when the guard is dead; dead
      // values feed only dead uses, but the mux keeps models readable.
      S.Regs[St.Reg] = bvMux(C, S.Guard, V, S.Regs[St.Reg]);
      return;
    }
    case StmtKind::Write: {
      maybeAdvance(S);
      writeVar(S, St.Var, evalExpr(*St.E, S));
      return;
    }
    case StmtKind::Cas: {
      maybeAdvance(S);
      BitVec Loaded = loadVar(S, St.Var);
      NodeRef Success = bvEq(C, Loaded, evalExpr(*St.E, S));
      // A CAS that never sees its expected value blocks forever: the
      // guard freezes this process, others continue.
      S.Guard = C.mkAnd(S.Guard, Success);
      writeVar(S, St.Var, evalExpr(*St.E2, S));
      return;
    }
    case StmtKind::Assign: {
      BitVec V = St.E->kind() == ExprKind::Nondet
                     ? freshInRange(St.E->nondetLo(), St.E->nondetHi())
                     : evalExpr(*St.E, S);
      S.Regs[St.Reg] = bvMux(C, S.Guard, V, S.Regs[St.Reg]);
      return;
    }
    case StmtKind::Assume:
      S.Guard = C.mkAnd(S.Guard, evalBool(*St.E, S));
      return;
    case StmtKind::Assert: {
      NodeRef Cond = evalBool(*St.E, S);
      Errors.push_back(C.mkAnd(S.Guard, ~Cond));
      ErrorLabels.push_back(P.Procs[CurrentProc].Name + ": assert #" +
                            std::to_string(AssertCounter++));
      S.Guard = C.mkAnd(S.Guard, Cond);
      return;
    }
    case StmtKind::If: {
      NodeRef Cond = evalBool(*St.E, S);
      ProcState Then = S;
      Then.Guard = C.mkAnd(S.Guard, Cond);
      walkBody(St.Then, Then);
      ProcState Else = std::move(S);
      Else.Guard = C.mkAnd(Else.Guard, ~Cond);
      // Store must be walked under the else guard from the state the
      // then-branch left behind: branch effects are guard-muxed into the
      // shared store, so the else branch sees then-branch writes only
      // under the then guard, which is disjoint from its own. Registers
      // and round are process-local and merged explicitly below.
      walkBody(St.Else, Else);
      S = mergeStates(Cond, std::move(Then), std::move(Else));
      return;
    }
    case StmtKind::While:
      reportFatalError("loops must be unrolled before encoding");
    case StmtKind::Term:
      S.Guard = C.falseRef();
      return;
    case StmtKind::Fence:
      reportFatalError("fences must be desugared before encoding");
    case StmtKind::AtomicBegin:
      maybeAdvance(S);
      ++S.AtomicDepth;
      return;
    case StmtKind::AtomicEnd:
      assert(S.AtomicDepth > 0 && "unbalanced atomic_end");
      --S.AtomicDepth;
      return;
    }
  }

  /// Merges branch-local state after an If. The shared store needs no
  /// merge: writes are guard-muxed at write time, and the two branch
  /// guards are disjoint refinements of the incoming guard.
  ProcState mergeStates(NodeRef Cond, ProcState Then, ProcState Else) {
    assert(Then.AtomicDepth == Else.AtomicDepth &&
           "branches disagree on atomic nesting");
    ProcState Out;
    Out.AtomicDepth = Then.AtomicDepth;
    Out.Guard = C.mkOr(Then.Guard, Else.Guard);
    Out.Round = bvMux(C, Cond, Then.Round, Else.Round);
    Out.Regs.reserve(Then.Regs.size());
    for (size_t I = 0; I < Then.Regs.size(); ++I)
      Out.Regs.push_back(bvMux(C, Cond, Then.Regs[I], Else.Regs[I]));
    return Out;
  }

  BitVec freshInRange(int64_t Lo, int64_t Hi) {
    BitVec V = bvFresh(C, W);
    SideConstraints.push_back(bvSle(C, bvConst(C, Lo, W), V));
    SideConstraints.push_back(bvSle(C, V, bvConst(C, Hi, W)));
    return V;
  }

  static constexpr uint32_t MaxCircuitNodes = 30u * 1000 * 1000;

  const Program &P;
  const BmcOptions &Opts;
  Deadline DL;
  uint32_t W;
  uint32_t Rounds;
  uint32_t RoundW;
  Circuit C;
  sat::Solver Solver;
  std::vector<NodeRef> Errors;
  std::vector<std::string> ErrorLabels;
  std::vector<NodeRef> SideConstraints;
  /// Monotone[x]: writes to x get the redundant monotonicity lemmas.
  std::vector<bool> Monotone;
  std::vector<BitVec> RoundGuesses;
  BmcResult EncodeOutcome;
  uint32_t CurrentProc = 0;
  uint32_t AssertCounter = 0;
};

} // namespace

BmcResult vbmc::bmc::checkBmc(const Program &P, const BmcOptions &Opts) {
  Timer UnrollWatch;
  Program Unrolled = unrollLoops(P, Opts.UnrollBound);
  if (Opts.Ctx) {
    double UnrollSeconds = UnrollWatch.elapsedSeconds();
    Opts.Ctx->stats().addSeconds("sat.unroll.seconds", UnrollSeconds);
    Opts.Ctx->trace().recordElapsed("sat.unroll", "sat", UnrollSeconds);
  }
  if (Opts.Ctx && Opts.Ctx->interrupted()) {
    BmcResult R;
    R.Status = BmcStatus::Unknown;
    R.Note = Opts.Ctx->cancelled() ? "cancelled" : "budget exhausted";
    R.Seconds = UnrollWatch.elapsedSeconds();
    return R;
  }
  auto Valid = Unrolled.validate();
  if (!Valid)
    reportFatalError("checkBmc: invalid program: " + Valid.error().str());
  Encoder E(Unrolled, Opts);
  return E.run();
}

//===----------------------------------------------------------------------===//
// IncrementalBmc
//===----------------------------------------------------------------------===//

/// Owns the persistent pieces: the unrolled program and options the
/// Encoder references, the Encoder itself (circuit + solver), and one
/// precomputed selector literal per budget. Defined here so it can hold
/// the internal-linkage Encoder.
class vbmc::bmc::IncrementalBmc::Impl {
public:
  Impl(const Program &P, const BmcOptions &InOpts,
       const IncrementalSpec &Spec)
      : Opts(InOpts), Spec(Spec) {
    Timer Watch;
    Timer UnrollWatch;
    Unrolled = unrollLoops(P, Opts.UnrollBound);
    if (Opts.Ctx) {
      double UnrollSeconds = UnrollWatch.elapsedSeconds();
      Opts.Ctx->stats().addSeconds("sat.unroll.seconds", UnrollSeconds);
      Opts.Ctx->trace().recordElapsed("sat.unroll", "sat", UnrollSeconds);
    }
    if (Opts.Ctx && Opts.Ctx->interrupted()) {
      Outcome.Status = BmcStatus::Unknown;
      Outcome.Note = Opts.Ctx->cancelled() ? "cancelled" : "budget exhausted";
      Outcome.Seconds = Watch.elapsedSeconds();
      Done = true;
      Opts.Ctx = nullptr;
      return;
    }
    auto Valid = Unrolled.validate();
    if (!Valid)
      reportFatalError("IncrementalBmc: invalid program: " +
                       Valid.error().str());
    // Per-write monotonicity lemmas (BmcOptions::MonotoneVars) come from
    // the spec: shared VarIds survive unrolling, so the translation's
    // counters name the same cells in the unrolled program.
    Opts.MonotoneVars = Spec.MonotoneVars;
    Enc.emplace(Unrolled, Opts);
    Done = Enc->encode();
    Outcome = Enc->encodeOutcome();
    if (!Done) {
      // All selectors are Tseitin'd before the first solve: clause
      // additions are root-level, so interleaving them with solves would
      // be fragile; building them up front keeps the solver's life simple
      // (only the assumption set varies between solves).
      Enc->assertMonotoneLemmas(Spec.MonotoneVars);
      Selectors.reserve(Spec.MaxBudget + 1);
      static const std::vector<ir::VarId> NoZeros;
      for (uint32_t K = 0; K <= Spec.MaxBudget; ++K)
        Selectors.push_back(Enc->selectorFor(
            K, Spec.BudgetVar, Spec.BaseContexts,
            K < Spec.ZeroFinalAtBudget.size() ? Spec.ZeroFinalAtBudget[K]
                                              : NoZeros));
      Outcome.CircuitNodes = Enc->numNodes();
    }
    Outcome.Seconds = Watch.elapsedSeconds();
    // The construction context may die before the next solveBudget call;
    // each solve brings its own.
    Opts.Ctx = nullptr;
  }

  bool usable() const {
    return !Done || Outcome.Status == BmcStatus::Safe;
  }

  BmcResult solveBudget(uint32_t K, const CheckContext *Ctx) {
    if (Done)
      return Outcome; // Trivially safe (or the encode failure, verbatim).
    if (K > Spec.MaxBudget) {
      BmcResult R;
      R.Status = BmcStatus::Unknown;
      R.Note = "budget " + std::to_string(K) +
               " exceeds encoded maximum " + std::to_string(Spec.MaxBudget);
      return R;
    }
    if (Ctx && Ctx->interrupted()) {
      BmcResult R;
      R.Status = BmcStatus::Unknown;
      R.Note = Ctx->cancelled() ? "cancelled" : "budget exhausted";
      return R;
    }
    double Remaining =
        Ctx ? Ctx->deadline().remainingSeconds()
            : std::numeric_limits<double>::infinity();
    Deadline SolveDL =
        std::isinf(Remaining) ? Deadline() : Deadline(Remaining);
    // Inprocess between deepening solves: subsumption / self-subsuming
    // resolution over the problem clauses is equivalence-preserving, so
    // every later selector verdict is unchanged while propagation gets
    // cheaper. The first solve runs on the pristine encoding.
    if (SolvesDone++ > 0) {
      Timer InprocWatch;
      sat::SolverStats Before = Enc->solverStats();
      bool Consistent = Enc->inprocess();
      if (Ctx) {
        sat::SolverStats Delta = Enc->solverStats() - Before;
        StatsRegistry &St = Ctx->stats();
        St.addSeconds("sat.inprocess.seconds", InprocWatch.elapsedSeconds());
        St.addCount("sat.subsumed", Delta.SubsumedClauses);
        St.addCount("sat.strengthened", Delta.StrengthenedLiterals);
      }
      if (!Consistent) {
        // The formula itself is unsatisfiable: every budget is Safe.
        BmcResult R;
        R.Status = BmcStatus::Safe;
        R.CircuitNodes = Outcome.CircuitNodes;
        return R;
      }
    }
    sat::SolveSpec SolveSpec = sat::SolveSpec::assuming({Selectors[K]});
    SolveSpec.MaxConflicts = Opts.B.Conflicts;
    SolveSpec.MaxPropagations = Opts.B.Propagations;
    SolveSpec.Phase = Opts.Phase;
    SolveSpec.PhaseSeed = Opts.PhaseSeed;
    SolveSpec.DL = SolveDL;
    BmcResult R = Enc->solveUnder(std::move(SolveSpec), Ctx);
    if (Ctx) {
      StatsRegistry &St = Ctx->stats();
      std::string Prefix = "sat.k" + std::to_string(K) + ".";
      St.addCount(Prefix + "conflicts", R.SolverConflicts);
      St.addCount(Prefix + "decisions", R.SolverDecisions);
      St.addSeconds(Prefix + "seconds", R.Seconds);
      St.addCount("sat.incremental.solves", 1);
    }
    return R;
  }

  BmcOptions Opts;
  IncrementalSpec Spec;
  Program Unrolled;
  std::optional<Encoder> Enc;
  std::vector<sat::Lit> Selectors;
  BmcResult Outcome;
  bool Done = false;
  uint64_t SolvesDone = 0;
};

IncrementalBmc::IncrementalBmc(const Program &P, const BmcOptions &Opts,
                               const IncrementalSpec &Spec)
    : I(std::make_unique<Impl>(P, Opts, Spec)) {}

IncrementalBmc::~IncrementalBmc() = default;

bool IncrementalBmc::usable() const { return I->usable(); }

const BmcResult &IncrementalBmc::encodeResult() const { return I->Outcome; }

BmcResult IncrementalBmc::solveBudget(uint32_t K, const CheckContext *Ctx) {
  return I->solveBudget(K, Ctx);
}
