//===- Encoder.cpp - round-based symbolic execution -------------*- C++ -*-===//

#include "bmc/Encoder.h"

#include "bmc/Unroll.h"
#include "formula/BitVec.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cmath>

using namespace vbmc;
using namespace vbmc::bmc;
using namespace vbmc::formula;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;

namespace {

/// Symbolic execution of one (unrolled, loop-free) program.
class Encoder {
public:
  Encoder(const Program &P, const BmcOptions &Opts)
      : P(P), Opts(Opts), W(Opts.ValueWidth),
        Rounds(Opts.ContextBound + 1) {
    RoundW = 1;
    while ((1u << RoundW) < Rounds)
      ++RoundW;
    ++RoundW; // Headroom so unsigned compares against Rounds are exact.
  }

  BmcResult run() {
    Timer Watch;
    Timer EncodeWatch;
    DL = Deadline(Opts.BudgetSeconds);
    buildStores();
    for (uint32_t PI = 0; PI < P.numProcs(); ++PI) {
      walkProcess(PI);
      // Encoding can dwarf solving on big instances; honor the budget,
      // a node cap, and the configured byte ceiling during construction
      // too (graceful degradation instead of std::bad_alloc death).
      if (outOfBudget() || resourceExceeded()) {
        BmcResult R;
        R.Status = BmcStatus::Unknown;
        if (wasCancelled()) {
          R.Note = "cancelled";
        } else if (outOfBudget()) {
          R.Note = "encoding budget exhausted";
        } else {
          R.Failure = sandbox::FailureKind::OutOfMemory;
          R.Note = memExceeded()
                       ? "encoding memory ceiling exceeded (" +
                             std::to_string(C.estimatedBytes() >> 10) +
                             " KiB estimated, limit " +
                             std::to_string(Opts.MemLimitBytes >> 10) +
                             " KiB)"
                       : "circuit size cap exceeded";
        }
        R.CircuitNodes = C.numNodes();
        R.Seconds = Watch.elapsedSeconds();
        recordEncodeStats(EncodeWatch.elapsedSeconds());
        return R;
      }
    }
    addChainConstraints();

    NodeRef AnyError = C.falseRef();
    for (NodeRef E : Errors)
      AnyError = C.mkOr(AnyError, E);

    BmcResult R;
    R.CircuitNodes = C.numNodes();
    if (C.isFalse(AnyError)) {
      // No assert is even reachable: trivially safe within bounds.
      R.Status = BmcStatus::Safe;
      R.Seconds = Watch.elapsedSeconds();
      recordEncodeStats(EncodeWatch.elapsedSeconds());
      return R;
    }

    // Tseitin conversion (bit-blast to CNF) counts as encoding time.
    Solver.addUnit(C.toLit(Solver, AnyError));
    for (NodeRef G : SideConstraints)
      Solver.addUnit(C.toLit(Solver, G));
    recordEncodeStats(EncodeWatch.elapsedSeconds());

    // The solver gets whatever wall clock is left after encoding: the
    // tighter of the local budget and the engine context's deadline.
    double Remaining = DL.remainingSeconds();
    if (Opts.Ctx)
      Remaining =
          std::min(Remaining, Opts.Ctx->deadline().remainingSeconds());
    if (Remaining <= 0 || wasCancelled()) {
      R.Status = BmcStatus::Unknown;
      R.Note = wasCancelled() ? "cancelled" : "encoding budget exhausted";
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    Deadline SolveDL =
        std::isinf(Remaining) ? Deadline() : Deadline(Remaining);
    Timer SolveWatch;
    sat::SolveResult SR =
        Solver.solve({}, Opts.MaxConflicts, SolveDL,
                     Opts.Ctx ? &Opts.Ctx->token() : nullptr);
    recordSolveStats(SolveWatch.elapsedSeconds());
    R.SolverConflicts = Solver.stats().Conflicts;
    R.SolverDecisions = Solver.stats().Decisions;
    switch (SR) {
    case sat::SolveResult::Sat:
      R.Status = BmcStatus::Unsafe;
      // Read the model back: every error bit that is set names a failing
      // assertion (folded-to-constant bits are reported unconditionally
      // when true).
      for (size_t I = 0; I < Errors.size(); ++I) {
        NodeRef E = Errors[I];
        bool Fails = C.isConst(E) ? C.isTrue(E)
                                  : C.valueInModel(Solver, E);
        if (Fails)
          R.FailedAssertions.push_back(ErrorLabels[I]);
      }
      break;
    case sat::SolveResult::Unsat:
      R.Status = BmcStatus::Safe;
      break;
    case sat::SolveResult::Unknown:
      R.Status = BmcStatus::Unknown;
      R.Note = wasCancelled() ? "cancelled" : "solver budget exhausted";
      break;
    }
    R.Seconds = Watch.elapsedSeconds();
    return R;
  }

private:
  /// Store[r * numVars + x]: current symbolic value of x on round r's
  /// timeline, threaded through the processes in order.
  std::vector<BitVec> Store;
  /// The free guesses for each round's initial store (round 0 = zeros).
  std::vector<BitVec> StoreInit;

  struct ProcState {
    std::vector<BitVec> Regs; ///< Indexed by global RegId.
    BitVec Round;
    NodeRef Guard;
    uint32_t AtomicDepth = 0;
  };

  BitVec &storeCell(uint32_t Round, ir::VarId X) {
    return Store[Round * P.numVars() + X];
  }

  void buildStores() {
    Store.reserve(static_cast<size_t>(Rounds) * P.numVars());
    StoreInit.reserve(Store.capacity());
    for (uint32_t R = 0; R < Rounds; ++R) {
      for (ir::VarId X = 0; X < P.numVars(); ++X) {
        BitVec Init = R == 0 ? bvConst(C, 0, W) : bvFresh(C, W);
        StoreInit.push_back(Init);
        Store.push_back(Init);
      }
    }
  }

  void addChainConstraints() {
    for (uint32_t R = 0; R + 1 < Rounds; ++R)
      for (ir::VarId X = 0; X < P.numVars(); ++X)
        SideConstraints.push_back(
            bvEq(C, storeCell(R, X), StoreInit[(R + 1) * P.numVars() + X]));
  }

  /// A fresh round value constrained to [Current, Rounds).
  BitVec advanceRound(const BitVec &Current) {
    BitVec Next = bvFresh(C, RoundW);
    SideConstraints.push_back(~bvUlt(C, Next, Current));
    SideConstraints.push_back(bvUlt(C, Next, bvConst(C, Rounds, RoundW)));
    return Next;
  }

  void walkProcess(uint32_t PI) {
    CurrentProc = PI;
    AssertCounter = 0;
    ProcState S;
    S.Regs.assign(P.numRegs(), bvConst(C, 0, W));
    // The first visible action may happen in any round, or never (halt).
    S.Round = advanceRound(bvConst(C, 0, RoundW));
    S.Guard = ~C.mkInput();
    walkBody(P.Procs[PI].Body, S);
    assert(S.AtomicDepth == 0 && "unbalanced atomic section");
  }

  /// True when encoding should stop: the local budget ran out, or the
  /// engine context's (remaining) deadline expired, or it was cancelled.
  bool outOfBudget() const {
    return DL.expired() || (Opts.Ctx && Opts.Ctx->interrupted());
  }

  bool wasCancelled() const { return Opts.Ctx && Opts.Ctx->cancelled(); }

  /// Byte ceiling (configurable) exceeded by the circuit's footprint.
  bool memExceeded() const {
    return Opts.MemLimitBytes > 0 &&
           C.estimatedBytes() > Opts.MemLimitBytes;
  }

  /// Any construction-side resource cap exceeded (nodes or bytes).
  bool resourceExceeded() const {
    return C.numNodes() > MaxCircuitNodes || memExceeded();
  }

  void recordEncodeStats(double Seconds) {
    if (!Opts.Ctx)
      return;
    StatsRegistry &St = Opts.Ctx->stats();
    St.addSeconds("sat.encode.seconds", Seconds);
    St.addCount("sat.encode.nodes", C.numNodes());
    St.addCount("sat.encode.bytes", C.estimatedBytes());
  }

  void recordSolveStats(double Seconds) {
    if (!Opts.Ctx)
      return;
    StatsRegistry &St = Opts.Ctx->stats();
    St.addSeconds("sat.solve.seconds", Seconds);
    St.addCount("sat.solve.conflicts", Solver.stats().Conflicts);
    St.addCount("sat.solve.decisions", Solver.stats().Decisions);
  }

  void walkBody(const std::vector<Stmt> &Body, ProcState &S) {
    for (const Stmt &St : Body) {
      if (resourceExceeded() || outOfBudget()) {
        // Kill the walk cheaply; run() reports Unknown.
        S.Guard = C.falseRef();
        return;
      }
      walkStmt(St, S);
    }
  }

  /// Selects the current-round copy of \p X.
  BitVec loadVar(const ProcState &S, ir::VarId X) {
    BitVec V = storeCell(0, X);
    for (uint32_t R = 1; R < Rounds; ++R) {
      NodeRef IsR = bvEq(C, S.Round, bvConst(C, R, RoundW));
      V = bvMux(C, IsR, storeCell(R, X), V);
    }
    return V;
  }

  /// Writes \p V into the current-round copy of \p X under the guard.
  void writeVar(const ProcState &S, ir::VarId X, const BitVec &V) {
    for (uint32_t R = 0; R < Rounds; ++R) {
      NodeRef Here =
          C.mkAnd(S.Guard, bvEq(C, S.Round, bvConst(C, R, RoundW)));
      storeCell(R, X) = bvMux(C, Here, V, storeCell(R, X));
    }
  }

  /// A visible point outside an atomic section: the round may advance,
  /// and the process may halt (a free guess), modelling executions in
  /// which the scheduler never runs it again. Without the halt choice the
  /// encoding would force every process to completion and miss prefix
  /// runs (e.g. "p1 acts before p0 ever moves" in a single round).
  void maybeAdvance(ProcState &S) {
    if (S.AtomicDepth != 0)
      return;
    S.Round = advanceRound(S.Round);
    S.Guard = C.mkAnd(S.Guard, ~C.mkInput());
  }

  BitVec evalExpr(const Expr &E, const ProcState &S) {
    switch (E.kind()) {
    case ExprKind::Const:
      return bvConst(C, E.constValue(), W);
    case ExprKind::Reg:
      return S.Regs[E.reg()];
    case ExprKind::Nondet:
      reportFatalError("nondet must be the whole right-hand side of an "
                       "assignment (validate() enforces this)");
    case ExprKind::Unary:
      switch (E.unaryOp()) {
      case ir::UnaryOp::Not:
        return bvFromBool(C, ~bvNonZero(C, evalExpr(*E.lhs(), S)), W);
      case ir::UnaryOp::Neg:
        return bvNeg(C, evalExpr(*E.lhs(), S));
      }
      break;
    case ExprKind::Binary: {
      BitVec A = evalExpr(*E.lhs(), S);
      BitVec B = evalExpr(*E.rhs(), S);
      switch (E.binaryOp()) {
      case ir::BinaryOp::Add:
        return bvAdd(C, A, B);
      case ir::BinaryOp::Sub:
        return bvSub(C, A, B);
      case ir::BinaryOp::Mul:
        return bvMul(C, A, B);
      case ir::BinaryOp::Div:
        return bvSdiv(C, A, B);
      case ir::BinaryOp::Mod:
        return bvSrem(C, A, B);
      case ir::BinaryOp::Eq:
        return bvFromBool(C, bvEq(C, A, B), W);
      case ir::BinaryOp::Ne:
        return bvFromBool(C, ~bvEq(C, A, B), W);
      case ir::BinaryOp::Lt:
        return bvFromBool(C, bvSlt(C, A, B), W);
      case ir::BinaryOp::Le:
        return bvFromBool(C, bvSle(C, A, B), W);
      case ir::BinaryOp::Gt:
        return bvFromBool(C, bvSlt(C, B, A), W);
      case ir::BinaryOp::Ge:
        return bvFromBool(C, bvSle(C, B, A), W);
      case ir::BinaryOp::And:
        return bvFromBool(
            C, C.mkAnd(bvNonZero(C, A), bvNonZero(C, B)), W);
      case ir::BinaryOp::Or:
        return bvFromBool(C, C.mkOr(bvNonZero(C, A), bvNonZero(C, B)), W);
      }
      break;
    }
    }
    reportFatalError("unhandled expression kind in BMC encoder");
  }

  NodeRef evalBool(const Expr &E, const ProcState &S) {
    return bvNonZero(C, evalExpr(E, S));
  }

  void walkStmt(const Stmt &St, ProcState &S) {
    switch (St.Kind) {
    case StmtKind::Read: {
      maybeAdvance(S);
      BitVec V = loadVar(S, St.Var);
      // The register keeps its old value when the guard is dead; dead
      // values feed only dead uses, but the mux keeps models readable.
      S.Regs[St.Reg] = bvMux(C, S.Guard, V, S.Regs[St.Reg]);
      return;
    }
    case StmtKind::Write: {
      maybeAdvance(S);
      writeVar(S, St.Var, evalExpr(*St.E, S));
      return;
    }
    case StmtKind::Cas: {
      maybeAdvance(S);
      BitVec Loaded = loadVar(S, St.Var);
      NodeRef Success = bvEq(C, Loaded, evalExpr(*St.E, S));
      // A CAS that never sees its expected value blocks forever: the
      // guard freezes this process, others continue.
      S.Guard = C.mkAnd(S.Guard, Success);
      writeVar(S, St.Var, evalExpr(*St.E2, S));
      return;
    }
    case StmtKind::Assign: {
      BitVec V = St.E->kind() == ExprKind::Nondet
                     ? freshInRange(St.E->nondetLo(), St.E->nondetHi())
                     : evalExpr(*St.E, S);
      S.Regs[St.Reg] = bvMux(C, S.Guard, V, S.Regs[St.Reg]);
      return;
    }
    case StmtKind::Assume:
      S.Guard = C.mkAnd(S.Guard, evalBool(*St.E, S));
      return;
    case StmtKind::Assert: {
      NodeRef Cond = evalBool(*St.E, S);
      Errors.push_back(C.mkAnd(S.Guard, ~Cond));
      ErrorLabels.push_back(P.Procs[CurrentProc].Name + ": assert #" +
                            std::to_string(AssertCounter++));
      S.Guard = C.mkAnd(S.Guard, Cond);
      return;
    }
    case StmtKind::If: {
      NodeRef Cond = evalBool(*St.E, S);
      ProcState Then = S;
      Then.Guard = C.mkAnd(S.Guard, Cond);
      walkBody(St.Then, Then);
      ProcState Else = std::move(S);
      Else.Guard = C.mkAnd(Else.Guard, ~Cond);
      // Store must be walked under the else guard from the state the
      // then-branch left behind: branch effects are guard-muxed into the
      // shared store, so the else branch sees then-branch writes only
      // under the then guard, which is disjoint from its own. Registers
      // and round are process-local and merged explicitly below.
      walkBody(St.Else, Else);
      S = mergeStates(Cond, std::move(Then), std::move(Else));
      return;
    }
    case StmtKind::While:
      reportFatalError("loops must be unrolled before encoding");
    case StmtKind::Term:
      S.Guard = C.falseRef();
      return;
    case StmtKind::Fence:
      reportFatalError("fences must be desugared before encoding");
    case StmtKind::AtomicBegin:
      maybeAdvance(S);
      ++S.AtomicDepth;
      return;
    case StmtKind::AtomicEnd:
      assert(S.AtomicDepth > 0 && "unbalanced atomic_end");
      --S.AtomicDepth;
      return;
    }
  }

  /// Merges branch-local state after an If. The shared store needs no
  /// merge: writes are guard-muxed at write time, and the two branch
  /// guards are disjoint refinements of the incoming guard.
  ProcState mergeStates(NodeRef Cond, ProcState Then, ProcState Else) {
    assert(Then.AtomicDepth == Else.AtomicDepth &&
           "branches disagree on atomic nesting");
    ProcState Out;
    Out.AtomicDepth = Then.AtomicDepth;
    Out.Guard = C.mkOr(Then.Guard, Else.Guard);
    Out.Round = bvMux(C, Cond, Then.Round, Else.Round);
    Out.Regs.reserve(Then.Regs.size());
    for (size_t I = 0; I < Then.Regs.size(); ++I)
      Out.Regs.push_back(bvMux(C, Cond, Then.Regs[I], Else.Regs[I]));
    return Out;
  }

  BitVec freshInRange(int64_t Lo, int64_t Hi) {
    BitVec V = bvFresh(C, W);
    SideConstraints.push_back(bvSle(C, bvConst(C, Lo, W), V));
    SideConstraints.push_back(bvSle(C, V, bvConst(C, Hi, W)));
    return V;
  }

  static constexpr uint32_t MaxCircuitNodes = 30u * 1000 * 1000;

  const Program &P;
  const BmcOptions &Opts;
  Deadline DL;
  uint32_t W;
  uint32_t Rounds;
  uint32_t RoundW;
  Circuit C;
  sat::Solver Solver;
  std::vector<NodeRef> Errors;
  std::vector<std::string> ErrorLabels;
  std::vector<NodeRef> SideConstraints;
  uint32_t CurrentProc = 0;
  uint32_t AssertCounter = 0;
};

} // namespace

BmcResult vbmc::bmc::checkBmc(const Program &P, const BmcOptions &Opts) {
  Timer UnrollWatch;
  Program Unrolled = unrollLoops(P, Opts.UnrollBound);
  if (Opts.Ctx)
    Opts.Ctx->stats().addSeconds("sat.unroll.seconds",
                                 UnrollWatch.elapsedSeconds());
  if (Opts.Ctx && Opts.Ctx->interrupted()) {
    BmcResult R;
    R.Status = BmcStatus::Unknown;
    R.Note = Opts.Ctx->cancelled() ? "cancelled" : "budget exhausted";
    R.Seconds = UnrollWatch.elapsedSeconds();
    return R;
  }
  auto Valid = Unrolled.validate();
  if (!Valid)
    reportFatalError("checkBmc: invalid program: " + Valid.error().str());
  Encoder E(Unrolled, Opts);
  return E.run();
}
