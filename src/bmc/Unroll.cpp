//===- Unroll.cpp ---------------------------------------------*- C++ -*-===//

#include "bmc/Unroll.h"

using namespace vbmc;
using namespace vbmc::ir;

namespace {

std::vector<Stmt> unrollBody(const std::vector<Stmt> &Body, uint32_t L);

/// U(0)      = assume(!c)
/// U(i)      = if (c) { B; U(i-1) }
Stmt unrollWhile(const Stmt &Loop, uint32_t L, uint32_t Remaining) {
  if (Remaining == 0)
    return Stmt::assume(notE(Loop.E));
  std::vector<Stmt> Then = unrollBody(Loop.Then, L);
  Then.push_back(unrollWhile(Loop, L, Remaining - 1));
  return Stmt::ifThen(Loop.E, std::move(Then));
}

std::vector<Stmt> unrollBody(const std::vector<Stmt> &Body, uint32_t L) {
  std::vector<Stmt> Out;
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::While:
      Out.push_back(unrollWhile(S, L, L));
      break;
    case StmtKind::If: {
      Stmt Copy = S;
      Copy.Then = unrollBody(S.Then, L);
      Copy.Else = unrollBody(S.Else, L);
      Out.push_back(std::move(Copy));
      break;
    }
    default:
      Out.push_back(S);
      break;
    }
  }
  return Out;
}

} // namespace

Program vbmc::bmc::unrollLoops(const Program &P, uint32_t L) {
  Program Out = P;
  for (Process &Proc : Out.Procs)
    Proc.Body = unrollBody(Proc.Body, L);
  return Out;
}
