//===- Unroll.h - bounded loop unrolling -------------------------*- C++ -*-===//
///
/// \file
/// Replaces every `while (c) { B }` by L nested `if (c) { B ... }` copies
/// terminated by an unwinding *assumption* `assume(!c)`, exactly as CBMC
/// does when told to treat deeper iterations as unreachable. Executions
/// needing more than L iterations are pruned, keeping BMC an
/// under-approximation (matching the paper's use of the L parameter).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_BMC_UNROLL_H
#define VBMC_BMC_UNROLL_H

#include "ir/Program.h"

namespace vbmc::bmc {

/// Unrolls every loop in \p P exactly \p L times. The result is loop-free.
ir::Program unrollLoops(const ir::Program &P, uint32_t L);

} // namespace vbmc::bmc

#endif // VBMC_BMC_UNROLL_H
