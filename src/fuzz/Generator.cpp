//===- Generator.cpp ------------------------------------------*- C++ -*-===//

#include "fuzz/Generator.h"

using namespace vbmc;
using namespace vbmc::fuzz;
using namespace vbmc::ir;

Program vbmc::fuzz::makeRandomProgram(Rng &R, const GeneratorOptions &O,
                                      GeneratorStats *Stats) {
  GeneratorStats Local;
  GeneratorStats &St = Stats ? *Stats : Local;

  Program P;
  for (uint32_t X = 0; X < O.NumVars; ++X)
    P.addVar("x" + std::to_string(X));
  for (uint32_t PI = 0; PI < O.NumProcs; ++PI) {
    uint32_t Proc = P.addProcess("p" + std::to_string(PI));
    RegId A = P.addReg(Proc, "a" + std::to_string(PI));
    RegId B = P.addReg(Proc, "b" + std::to_string(PI));
    // The loop counter is a dedicated register never touched by body
    // statements, so every generated loop provably runs at most
    // LoopTripMax iterations (the engines need loop-bounded input).
    RegId Ctr = O.usesLoops() ? P.addReg(Proc, "c" + std::to_string(PI)) : 0;

    // One memory/compute statement in the legacy draw order (variable,
    // destination, CAS?, read-vs-write). Used both at the top level and
    // inside loop bodies.
    auto emitMemStmt = [&](std::vector<Stmt> &Body) {
      VarId X = static_cast<VarId>(R.nextBelow(O.NumVars));
      RegId Dst = R.nextChance(1, 2) ? A : B;
      if (R.nextChance(O.CasPermille, 1000)) {
        Value From = static_cast<Value>(R.nextInRange(0, O.MaxValue));
        Value To = static_cast<Value>(R.nextInRange(1, O.MaxValue));
        Body.push_back(Stmt::cas(X, constE(From), constE(To)));
        ++St.Cas;
        return;
      }
      if (R.nextChance(1, 2)) {
        Body.push_back(Stmt::read(Dst, X));
        ++St.Reads;
      } else {
        Body.push_back(Stmt::write(
            X, constE(static_cast<Value>(R.nextInRange(1, O.MaxValue)))));
        ++St.Writes;
      }
    };

    std::vector<Stmt> Body;
    for (uint32_t S = 0; S < O.StmtsPerProc; ++S) {
      // Extension draws happen only when the corresponding permille is
      // nonzero: the `&&` short-circuit keeps the legacy Rng sequence
      // untouched when the features are off.
      if (O.FencePermille > 0 && R.nextChance(O.FencePermille, 1000)) {
        Body.push_back(Stmt::fence());
        ++St.Fences;
        continue;
      }
      if (O.NondetPermille > 0 && R.nextChance(O.NondetPermille, 1000)) {
        RegId Dst = R.nextChance(1, 2) ? A : B;
        Body.push_back(Stmt::assign(Dst, nondetE(0, O.MaxValue)));
        ++St.Nondets;
        continue;
      }
      if (O.AssumePermille > 0 && R.nextChance(O.AssumePermille, 1000)) {
        RegId Src = R.nextChance(1, 2) ? A : B;
        Value C = static_cast<Value>(R.nextInRange(0, O.MaxValue));
        Body.push_back(Stmt::assume(leE(regE(Src), constE(C))));
        ++St.Assumes;
        continue;
      }
      if (O.LoopPermille > 0 && R.nextChance(O.LoopPermille, 1000)) {
        uint32_t TripMax = O.LoopTripMax < 1 ? 1 : O.LoopTripMax;
        Value Trip = static_cast<Value>(R.nextInRange(1, TripMax));
        std::vector<Stmt> LoopBody;
        for (uint32_t LB = 0; LB < (O.LoopBodyStmts ? O.LoopBodyStmts : 1);
             ++LB)
          emitMemStmt(LoopBody);
        LoopBody.push_back(Stmt::assign(Ctr, addE(regE(Ctr), constE(1))));
        Body.push_back(Stmt::assign(Ctr, constE(0)));
        Body.push_back(
            Stmt::whileLoop(ltE(regE(Ctr), constE(Trip)), std::move(LoopBody)));
        ++St.Loops;
        continue;
      }
      emitMemStmt(Body);
    }
    if (PI + 1 == O.NumProcs && R.nextChance(O.AssertPermille, 1000)) {
      // Assert some random relation between the two registers; both
      // outcomes (holds / fails) are interesting for the differential
      // comparison.
      Value C = static_cast<Value>(R.nextInRange(0, O.MaxValue));
      ExprRef Cond = R.nextChance(1, 2)
                         ? neE(regE(A), constE(C))
                         : notE(andE(eqE(regE(A), constE(C)),
                                     eqE(regE(B), constE(C))));
      Body.push_back(Stmt::assertThat(std::move(Cond)));
      ++St.Asserts;
    }
    P.Procs[Proc].Body = std::move(Body);
  }
  return P;
}
