//===- Differ.cpp ---------------------------------------------*- C++ -*-===//

#include "fuzz/Differ.h"

#include "axiomatic/ExecutionGraph.h"
#include "ir/Flatten.h"
#include "ra/RaExplorer.h"
#include "sc/ScExplorer.h"
#include "smc/Smc.h"
#include "translation/Translate.h"
#include "vbmc/Engine.h"

#include <algorithm>
#include <limits>

using namespace vbmc;
using namespace vbmc::fuzz;
using namespace vbmc::ir;

const char *vbmc::fuzz::checkStatusName(CheckStatus S) {
  switch (S) {
  case CheckStatus::Pass:
    return "pass";
  case CheckStatus::Mismatch:
    return "MISMATCH";
  case CheckStatus::Skipped:
    return "skipped";
  case CheckStatus::Timeout:
    return "timeout";
  }
  return "?";
}

bool DiffReport::mismatch() const { return firstMismatch() != nullptr; }

const CheckOutcome *DiffReport::firstMismatch() const {
  for (const CheckOutcome &O : Outcomes)
    if (O.Status == CheckStatus::Mismatch)
      return &O;
  return nullptr;
}

std::string DiffReport::summary() const {
  std::string Out;
  for (const CheckOutcome &O : Outcomes) {
    Out += O.Check + ": " + checkStatusName(O.Status);
    if (!O.Detail.empty())
      Out += " (" + O.Detail + ")";
    Out += "\n";
  }
  return Out;
}

const std::vector<std::string> &vbmc::fuzz::allCheckNames() {
  static const std::vector<std::string> Names = {
      "sc-subset-ra", "ra-vs-translation", "explicit-vs-sat",
      "operational-vs-axiomatic", "smc-vs-ra", "incremental-vs-fresh"};
  return Names;
}

namespace {

/// Remaining budget formatted for the engines' BudgetSeconds fields,
/// where 0 means unlimited.
double budgetLeft(const CheckContext &Ctx) {
  double R = Ctx.deadline().remainingSeconds();
  if (R == std::numeric_limits<double>::infinity())
    return 0;
  return R > 0 ? R : 1e-9;
}

/// Timeout when the context ran dry (the honest cause), Skipped when an
/// engine bailed on a state cap with time to spare.
CheckOutcome inconclusive(const std::string &Check, const CheckContext &Ctx,
                          const std::string &What) {
  CheckOutcome O;
  O.Check = Check;
  O.Status = Ctx.interrupted() ? CheckStatus::Timeout : CheckStatus::Skipped;
  O.Detail = What;
  return O;
}

CheckOutcome pass(const std::string &Check, std::string Detail = "") {
  return CheckOutcome{Check, CheckStatus::Pass, std::move(Detail)};
}

CheckOutcome mismatch(const std::string &Check, std::string Detail) {
  return CheckOutcome{Check, CheckStatus::Mismatch, std::move(Detail)};
}

std::string formatValuation(const std::vector<Value> &V) {
  std::string S = "[";
  for (size_t I = 0; I < V.size(); ++I)
    S += (I ? " " : "") + std::to_string(V[I]);
  return S + "]";
}

/// First element of A not in B, if any.
const std::vector<Value> *firstNotIn(const std::set<std::vector<Value>> &A,
                                     const std::set<std::vector<Value>> &B) {
  for (const std::vector<Value> &V : A)
    if (!B.count(V))
      return &V;
  return nullptr;
}

/// Counts CAS/fence statements; LoopDepth tracks whether any sits inside
/// a while (where it may execute more than once).
void countCasFence(const std::vector<Stmt> &Body, bool InLoop, uint32_t &N,
                   bool &AnyInLoop) {
  for (const Stmt &S : Body) {
    if (S.Kind == StmtKind::Cas || S.Kind == StmtKind::Fence) {
      ++N;
      AnyInLoop |= InLoop;
    }
    countCasFence(S.Then, InLoop || S.Kind == StmtKind::While, N, AnyInLoop);
    countCasFence(S.Else, InLoop, N, AnyInLoop);
  }
}

CheckOutcome checkScSubsetRa(const Program &P, const DiffOptions &O,
                             const CheckContext &Ctx) {
  const std::string Name = "sc-subset-ra";
  FlatProgram FP = flatten(P);
  auto Ra = ra::collectTerminalRegsBounded(FP, std::nullopt, O.MaxStates, &Ctx);
  if (!Ra.Complete)
    return inconclusive(Name, Ctx, "RA enumeration truncated");
  auto Sc = sc::collectScTerminalRegsBounded(FP, std::nullopt, O.MaxStates,
                                             &Ctx);
  if (!Sc.Complete)
    return inconclusive(Name, Ctx, "SC enumeration truncated");
  if (const std::vector<Value> *V = firstNotIn(Sc.Regs, Ra.Regs))
    return mismatch(Name, "SC terminal valuation " + formatValuation(*V) +
                              " is not RA-reachable");
  return pass(Name, std::to_string(Sc.Regs.size()) + " sc / " +
                        std::to_string(Ra.Regs.size()) + " ra behaviours");
}

CheckOutcome checkRaVsTranslation(const Program &P, const DiffOptions &O,
                                  const CheckContext &Ctx) {
  const std::string Name = "ra-vs-translation";
  FlatProgram FP = flatten(P);
  if (!FP.hasAsserts())
    return pass(Name, "no asserts; both sides vacuously safe");

  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AnyError;
  Q.ViewSwitchBound = O.K;
  Q.MaxStates = O.MaxStates;
  Q.BudgetSeconds = budgetLeft(Ctx);
  ra::RaResult RaR = ra::exploreRa(FP, Q);
  if (RaR.Status == ra::SearchStatus::StateLimit ||
      RaR.Status == ra::SearchStatus::Timeout)
    return inconclusive(Name, Ctx, "RA exploration truncated");

  driver::VbmcOptions VO;
  VO.K = O.K;
  VO.L = O.L;
  VO.CasAllowance = casAllowanceFor(P, O);
  VO.Backend = driver::BackendKind::Explicit;
  VO.MaxStates = O.MaxStates;
  VO.MemLimitBytes = O.MemLimitBytes;
  CheckContext Child = Ctx.child();
  driver::CheckRequest Req;
  Req.Opts = VO;
  driver::CheckReport VR = driver::Engine().run(P, Req, Child);
  if (VR.Outcome == driver::Verdict::Unknown)
    return inconclusive(Name, Ctx, "vbmc explicit inconclusive: " + VR.Note);

  if (RaR.reached() != VR.unsafe())
    return mismatch(Name,
                    std::string("RA@K says ") +
                        (RaR.reached() ? "unsafe" : "safe") +
                        ", translation+SC says " +
                        (VR.unsafe() ? "unsafe" : "safe") +
                        " at K=" + std::to_string(O.K));
  return pass(Name, RaR.reached() ? "both unsafe" : "both safe");
}

CheckOutcome checkExplicitVsSat(const Program &P, const DiffOptions &O,
                                const CheckContext &Ctx) {
  const std::string Name = "explicit-vs-sat";
  FlatProgram FP = flatten(P);
  if (!FP.hasAsserts())
    return pass(Name, "no asserts; both sides vacuously safe");

  driver::VbmcOptions VO;
  VO.K = O.K;
  VO.L = O.L;
  VO.CasAllowance = casAllowanceFor(P, O);
  VO.MaxStates = O.MaxStates;
  VO.MemLimitBytes = O.MemLimitBytes;

  VO.Backend = driver::BackendKind::Explicit;
  CheckContext C1 = Ctx.child();
  driver::CheckRequest Req;
  Req.Opts = VO;
  driver::CheckReport Ex = driver::Engine().run(P, Req, C1);
  if (Ex.Outcome == driver::Verdict::Unknown)
    return inconclusive(Name, Ctx, "explicit inconclusive: " + Ex.Note);

  VO.Backend = driver::BackendKind::Sat;
  CheckContext C2 = Ctx.child();
  Req.Opts = VO;
  driver::CheckReport Sat = driver::Engine().run(P, Req, C2);
  if (Sat.Outcome == driver::Verdict::Unknown)
    return inconclusive(Name, Ctx, "sat inconclusive: " + Sat.Note);

  if (Ex.unsafe() != Sat.unsafe())
    return mismatch(Name, std::string("explicit says ") +
                              (Ex.unsafe() ? "unsafe" : "safe") +
                              ", sat says " +
                              (Sat.unsafe() ? "unsafe" : "safe") +
                              " at K=" + std::to_string(O.K) +
                              " L=" + std::to_string(O.L));
  return pass(Name, Ex.unsafe() ? "both unsafe" : "both safe");
}

CheckOutcome checkOperationalVsAxiomatic(const Program &P,
                                         const DiffOptions &O,
                                         const CheckContext &Ctx) {
  const std::string Name = "operational-vs-axiomatic";
  // The axiomatic oracle accepts the straight-line fragment only; desugar
  // fences first (it handles the resulting CAS) and let it reject the
  // rest — a rejection is "not applicable", not a failure.
  Program D = translation::desugarFences(P);
  auto Ax = axiomatic::enumerateRaOutcomes(D, &Ctx);
  if (!Ax) {
    if (Ax.error().str().find("interrupted") != std::string::npos)
      return inconclusive(Name, Ctx, "axiomatic enumeration interrupted");
    return CheckOutcome{Name, CheckStatus::Skipped, Ax.error().str()};
  }
  FlatProgram FP = flatten(D);
  auto Op = ra::collectTerminalRegsBounded(FP, std::nullopt, O.MaxStates, &Ctx);
  if (!Op.Complete)
    return inconclusive(Name, Ctx, "operational enumeration truncated");
  if (const std::vector<Value> *V = firstNotIn(Op.Regs, *Ax))
    return mismatch(Name, "operational valuation " + formatValuation(*V) +
                              " missing from axiomatic outcomes");
  if (const std::vector<Value> *V = firstNotIn(*Ax, Op.Regs))
    return mismatch(Name, "axiomatic valuation " + formatValuation(*V) +
                              " not operationally reachable");
  return pass(Name, std::to_string(Op.Regs.size()) + " behaviours agree");
}

CheckOutcome checkSmcVsRa(const Program &P, const DiffOptions &O,
                          const CheckContext &Ctx) {
  const std::string Name = "smc-vs-ra";
  FlatProgram FP = flatten(P);
  if (!FP.hasAsserts())
    return pass(Name, "no asserts; nothing to find");

  smc::SmcOptions SO;
  SO.Strategy = smc::SmcStrategy::Dpor;
  SO.B.Seconds = budgetLeft(Ctx);
  SO.B.Work = O.MaxStates;
  smc::SmcResult SR = smc::exploreSmc(FP, SO);
  if (!SR.FoundBug && !SR.Complete)
    return inconclusive(Name, Ctx, "smc exploration truncated");

  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AnyError;
  Q.MaxStates = O.MaxStates;
  Q.BudgetSeconds = budgetLeft(Ctx);
  ra::RaResult RaR = ra::exploreRa(FP, Q);
  if (RaR.Status == ra::SearchStatus::StateLimit ||
      RaR.Status == ra::SearchStatus::Timeout)
    return inconclusive(Name, Ctx, "RA exploration truncated");

  if (SR.FoundBug != RaR.reached())
    return mismatch(Name, std::string("smc(dpor) says ") +
                              (SR.FoundBug ? "bug" : "no bug") +
                              ", RA explorer says " +
                              (RaR.reached() ? "bug" : "no bug"));
  return pass(Name, SR.FoundBug ? "both find the bug" : "both find none");
}

CheckOutcome checkIncrementalVsFresh(const Program &P, const DiffOptions &O,
                                     const CheckContext &Ctx) {
  const std::string Name = "incremental-vs-fresh";
  FlatProgram FP = flatten(P);
  if (!FP.hasAsserts())
    return pass(Name, "no asserts; both sweeps vacuously safe");

  driver::CheckRequest Req;
  Req.MaxK = O.K;
  Req.Opts.L = O.L;
  Req.Opts.CasAllowance = casAllowanceFor(P, O);
  Req.Opts.Backend = driver::BackendKind::Sat;
  Req.Opts.MaxStates = O.MaxStates;
  Req.Opts.MemLimitBytes = O.MemLimitBytes;

  driver::Engine E;

  Req.Mode = driver::EngineMode::Iterative;
  CheckContext C1 = Ctx.child();
  driver::CheckReport Fresh = E.run(P, Req, C1);
  if (Fresh.Outcome == driver::Verdict::Unknown)
    return inconclusive(Name, Ctx, "fresh sweep inconclusive: " + Fresh.Note);

  Req.Mode = driver::EngineMode::Incremental;
  CheckContext C2 = Ctx.child();
  driver::CheckReport Inc = E.run(P, Req, C2);
  if (Inc.Outcome == driver::Verdict::Unknown)
    return inconclusive(Name, Ctx,
                        "incremental sweep inconclusive: " + Inc.Note);

  if (Fresh.unsafe() != Inc.unsafe())
    return mismatch(Name, std::string("fresh per-K says ") +
                              (Fresh.unsafe() ? "unsafe" : "safe") +
                              ", incremental says " +
                              (Inc.unsafe() ? "unsafe" : "safe") +
                              " at MaxK=" + std::to_string(O.K));
  if (Fresh.unsafe() && Fresh.KUsed != Inc.KUsed)
    return mismatch(Name, "both unsafe but minimal K differs: fresh k=" +
                              std::to_string(Fresh.KUsed) +
                              ", incremental k=" + std::to_string(Inc.KUsed));
  return pass(Name, Fresh.unsafe()
                        ? "both unsafe at k=" + std::to_string(Fresh.KUsed)
                        : "both safe to MaxK=" + std::to_string(O.K));
}

} // namespace

uint32_t vbmc::fuzz::casAllowanceFor(const Program &P, const DiffOptions &O) {
  if (O.CasAllowance > 0)
    return O.CasAllowance;
  uint32_t N = 0;
  bool AnyInLoop = false;
  for (const Process &Proc : P.Procs)
    countCasFence(Proc.Body, false, N, AnyInLoop);
  if (AnyInLoop)
    return 8; // Trip counts are not syntactically evident; stay generous.
  return N + 1; // +1: the guessed-stamp arm needs a nonempty domain.
}

CheckOutcome vbmc::fuzz::runCheck(const Program &P, const std::string &Check,
                                  const DiffOptions &O,
                                  const CheckContext &Ctx) {
  if (Ctx.interrupted())
    return CheckOutcome{Check, CheckStatus::Timeout, "budget exhausted"};
  if (Check == "sc-subset-ra")
    return checkScSubsetRa(P, O, Ctx);
  if (Check == "ra-vs-translation")
    return checkRaVsTranslation(P, O, Ctx);
  if (Check == "explicit-vs-sat")
    return checkExplicitVsSat(P, O, Ctx);
  if (Check == "operational-vs-axiomatic")
    return checkOperationalVsAxiomatic(P, O, Ctx);
  if (Check == "smc-vs-ra")
    return checkSmcVsRa(P, O, Ctx);
  if (Check == "incremental-vs-fresh")
    return checkIncrementalVsFresh(P, O, Ctx);
  return CheckOutcome{Check, CheckStatus::Skipped, "unknown check"};
}

DiffReport vbmc::fuzz::runDifferential(const Program &P, const DiffOptions &O,
                                       const CheckContext &Ctx) {
  DiffReport Report;
  for (const std::string &Check : allCheckNames()) {
    if ((Check == "ra-vs-translation" && !O.WithTranslation) ||
        (Check == "explicit-vs-sat" && !(O.WithTranslation && O.WithSat)) ||
        (Check == "incremental-vs-fresh" &&
         !(O.WithTranslation && O.WithSat)) ||
        (Check == "operational-vs-axiomatic" && !O.WithAxiomatic) ||
        (Check == "smc-vs-ra" && !O.WithSmc))
      continue;
    Report.Outcomes.push_back(runCheck(P, Check, O, Ctx));
  }
  return Report;
}
