//===- FuzzMain.cpp - the vbmc-fuzz command-line tool ----------*- C++ -*-===//
//
// Usage:
//   vbmc-fuzz [options]                      run a fuzzing campaign
//   vbmc-fuzz [options] FILE|DIR...          replay corpus files
//   vbmc-fuzz --seed N --index I --repro F   regenerate one program into F
//
// Campaign mode generates random programs from --seed, cross-checks every
// applicable backend pair on each, and on discrepancy minimizes the
// witness and (with --corpus DIR) writes a reproducer. Every generated
// program runs under its own slice of the campaign budget, so a program
// whose state space explodes is reported as a timeout and skipped, never
// hangs the campaign.
//
// With --isolate every per-program differential runs in a forked,
// resource-governed child: a program that crashes or OOMs its check
// process becomes a minimized, "crash"-tagged corpus witness and the
// campaign keeps going.
//
// Exit codes: 0 = no discrepancies, 1 = discrepancy (or replay failure),
// 2 = usage error, 3 = internal failure (out of memory / escaped
// exception in the harness itself).
//
//===----------------------------------------------------------------------===//

#include "farm/FarmClient.h"
#include "fuzz/Fuzzer.h"
#include "ir/Printer.h"
#include "support/Cli.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Signals.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <new>

using namespace vbmc;

namespace {

void printUsage() {
  std::puts(
      "usage: vbmc-fuzz [options] [FILE|DIR...]\n"
      "campaign (no positional args):\n"
      "  --seed N           campaign seed (default 1); program #i is\n"
      "                     reproducible from (seed, i) alone\n"
      "  --count N          stop after N programs (default: until budget)\n"
      "  --start-index N    first program index (default 0); a campaign\n"
      "                     over [N, N+count) is exactly that slice of\n"
      "                     the full seed universe (farm shard slicing)\n"
      "  --budget SEC       campaign wall-clock budget (default 60)\n"
      "  --per-program SEC  budget slice per generated program (default 2)\n"
      "  --max-k N          view-switch budget K for bounded checks "
      "(default 1)\n"
      "  --procs N          processes per program (default 2)\n"
      "  --stmts N          statements per process (default 3)\n"
      "  --vars N           shared variables (default 2)\n"
      "  --cas-permille N   CAS statement rate (default 150)\n"
      "  --fence-permille N fence statement rate (default 50)\n"
      "  --nondet-permille N  bounded-nondet rate (default 50)\n"
      "  --loop-permille N  bounded-loop rate (default 30)\n"
      "  --heavy-every N    run translation/SAT checks on every N-th\n"
      "                     program only (default 1 = always)\n"
      "  --corpus DIR       write minimized reproducers into DIR\n"
      "  --no-minimize      report raw discrepancies unminimized\n"
      "  --no-sat           skip the SAT cross-check\n"
      "  --isolate          fork each per-program check; a crashing or\n"
      "                     OOMing program becomes a 'crash'-tagged\n"
      "                     witness instead of killing the campaign\n"
      "  --mem-limit-mb N   per-program memory ceiling (with --isolate\n"
      "                     also the child's address-space headroom)\n"
      "  --json FILE        write a machine-readable campaign summary\n"
      "                     (\"vbmc-fuzz/v1\": counts, sandbox verdicts,\n"
      "                     one record per discrepancy) to FILE\n"
      "  --quiet            summary line only\n"
      "daemon mode:\n"
      "  --connect SOCK     run the campaign's index shards on the\n"
      "                     vbmc-serve daemon at SOCK (needs --count;\n"
      "                     generator/diff knobs ride at their defaults;\n"
      "                     results are bit-identical to a local farm\n"
      "                     sweep of the same fuzz universe)\n"
      "  --connect-timeout S  wait up to S seconds for the daemon\n"
      "                     (default 10)\n"
      "  --shards N         shards the universe is cut into (default auto)\n"
      "replay (positional args are files or directories of .ra files):\n"
      "  each file is cross-checked and any '// expect: safe|unsafe k=N'\n"
      "  directives are verified against both backends\n"
      "  --incremental      additionally require the incremental deepening\n"
      "                     engine to match fresh per-K solving (verdict\n"
      "                     and minimal buggy K) at each expect directive\n"
      "reproduce:\n"
      "  --index I --repro FILE   regenerate program #I of --seed into "
      "FILE");
}

int runMain(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(
      Argc, Argv,
      {"no-minimize", "no-sat", "isolate", "incremental", "quiet", "help"});
  if (CL.hasFlag("help")) {
    printUsage();
    return 0;
  }
  // A typo like --budgett would otherwise be silently ignored and the
  // campaign would run with defaults; reject unknown flags up front.
  std::vector<std::string> Unknown = CL.unknownFlags(
      {"seed", "count", "start-index", "budget", "per-program", "max-k",
       "l", "procs",
       "stmts", "vars", "cas-permille", "fence-permille", "nondet-permille",
       "loop-permille", "assert-permille", "max-value", "heavy-every",
       "max-states", "cas-allowance", "corpus", "index", "repro",
       "inject-fault", "no-minimize", "no-sat", "isolate", "incremental",
       "mem-limit-mb", "json", "quiet", "help", "connect",
       "connect-timeout", "shards", "shard-timeout"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "vbmc-fuzz: unknown flag '--%s'\n", F.c_str());
    printUsage();
    return 2;
  }

  // Hidden hook for the self-test: suppress one axiom / instrumentation
  // step so the harness can prove it detects a broken backend.
  if (CL.hasFlag("inject-fault"))
    fault::enable(CL.getString("inject-fault"));

  fuzz::FuzzOptions O;
  O.Seed = static_cast<uint64_t>(CL.getInt("seed", 1));
  O.Count = static_cast<uint64_t>(CL.getInt("count", 0));
  O.StartIndex = static_cast<uint64_t>(CL.getInt("start-index", 0));
  O.BudgetSeconds = CL.getDouble("budget", 60);
  O.PerProgramSeconds = CL.getDouble("per-program", 2);
  O.HeavyEvery = static_cast<uint64_t>(CL.getInt("heavy-every", 1));
  O.CorpusDir = CL.getString("corpus");
  O.Minimize = !CL.hasFlag("no-minimize");
  O.Isolate = CL.hasFlag("isolate");
  O.IncrementalReplay = CL.hasFlag("incremental");
  O.MemLimitMb = static_cast<uint64_t>(CL.getInt("mem-limit-mb", 0));

  O.Gen.NumProcs = static_cast<uint32_t>(CL.getInt("procs", 2));
  O.Gen.StmtsPerProc = static_cast<uint32_t>(CL.getInt("stmts", 3));
  O.Gen.NumVars = static_cast<uint32_t>(CL.getInt("vars", 2));
  O.Gen.CasPermille = static_cast<uint32_t>(CL.getInt("cas-permille", 150));
  O.Gen.AssertPermille =
      static_cast<uint32_t>(CL.getInt("assert-permille", 700));
  O.Gen.MaxValue = static_cast<ir::Value>(CL.getInt("max-value", 2));
  O.Gen.FencePermille =
      static_cast<uint32_t>(CL.getInt("fence-permille", 50));
  O.Gen.NondetPermille =
      static_cast<uint32_t>(CL.getInt("nondet-permille", 50));
  O.Gen.LoopPermille = static_cast<uint32_t>(CL.getInt("loop-permille", 30));

  O.Diff.K = static_cast<uint32_t>(CL.getInt("max-k", 1));
  // The SAT unroll bound must cover the largest generated loop trip or
  // explicit-vs-sat would flag the unroll under-approximation itself.
  O.Diff.L = static_cast<uint32_t>(
      CL.getInt("l", std::max(3u, O.Gen.LoopTripMax + 1)));
  O.Diff.MaxStates = static_cast<uint64_t>(CL.getInt("max-states", 400000));
  // 0 = auto-size from the program's CAS/fence count (see DiffOptions).
  O.Diff.CasAllowance =
      static_cast<uint32_t>(CL.getInt("cas-allowance", 0));
  O.Diff.WithSat = !CL.hasFlag("no-sat");

  const bool Quiet = CL.hasFlag("quiet");
  std::ostream *Log = Quiet ? nullptr : &std::cout;

  // Replay mode.
  if (!CL.positionals().empty()) {
    fuzz::ReplayResult R =
        fuzz::replayCorpus(CL.positionals(), O, Quiet ? nullptr : &std::cout);
    if (Quiet)
      std::printf("corpus: %zu files, %llu failures\n", R.Files.size(),
                  static_cast<unsigned long long>(R.Failures));
    return R.clean() ? 0 : 1;
  }

  // Reproduce mode.
  if (CL.hasFlag("repro")) {
    uint64_t Index = static_cast<uint64_t>(CL.getInt("index", 0));
    ir::Program P = fuzz::regenerateProgram(O, Index);
    std::string Out = "// vbmc-fuzz --seed " + std::to_string(O.Seed) +
                      " --index " + std::to_string(Index) + "\n" +
                      ir::printProgram(P);
    std::string Path = CL.getString("repro");
    if (Path == "-") {
      std::fputs(Out.c_str(), stdout);
    } else {
      std::ofstream File(Path);
      if (!File) {
        std::fprintf(stderr, "vbmc-fuzz: cannot write '%s'\n", Path.c_str());
        return 2;
      }
      File << Out;
    }
    return 0;
  }

  if (O.Count == 0 && O.BudgetSeconds <= 0) {
    std::fprintf(stderr,
                 "vbmc-fuzz: need --count or a positive --budget\n");
    return 2;
  }

  // SIGTERM/SIGINT stop the campaign at the next program boundary and
  // still write the --json summary and corpus files; never die mid-write.
  signals::installDrainHandlers();

  // Daemon-client mode: ship the campaign's index shards to a running
  // vbmc-serve daemon (farm::runFarmConnected) and fold the merged farm
  // summary back into the vbmc-fuzz/v1 shape.
  std::string Connect = CL.getString("connect", "");
  if (!Connect.empty()) {
    if (O.Count == 0) {
      std::fprintf(stderr, "vbmc-fuzz: --connect needs --count\n");
      return 2;
    }
    if (O.StartIndex != 0) {
      std::fprintf(stderr,
                   "vbmc-fuzz: --start-index is not supported with "
                   "--connect (the universe covers [0, count))\n");
      return 2;
    }
    farm::FarmOptions FO;
    FO.Universe = farm::UniverseKind::Fuzz;
    FO.Shards = static_cast<uint32_t>(CL.getInt("shards", 0));
    FO.Fuzz.Seed = O.Seed;
    FO.Fuzz.Count = O.Count;
    FO.Fuzz.PerProgramSeconds = O.PerProgramSeconds;
    FO.Fuzz.MemLimitMb = O.MemLimitMb;
    // Generator/diff knobs stay at the universe defaults (which mirror
    // this CLI's defaults); Isolate stays on so a crashing program is
    // witnessed inside its shard instead of killing a daemon worker.
    FO.BudgetSeconds = O.BudgetSeconds;
    FO.ShardTimeoutSeconds = CL.getDouble("shard-timeout", 600);
    FO.CorpusDir = O.CorpusDir;
    farm::ConnectOptions CO;
    CO.SocketPath = Connect;
    CO.ConnectTimeoutSeconds = CL.getDouble("connect-timeout", 10);
    std::string Err;
    farm::FarmSummary S = farm::runFarmConnected(FO, CO, Log, &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "vbmc-fuzz: %s\n", Err.c_str());
      return 3;
    }
    if (Quiet)
      std::printf("fuzz: %llu programs, %zu discrepancies\n",
                  static_cast<unsigned long long>(S.Checked),
                  S.Witnesses.size());
    std::string JsonPath = CL.getString("json", "");
    if (!JsonPath.empty()) {
      auto Stat = [&](const char *Name) {
        auto It = S.StatCounts.find(Name);
        return It == S.StatCounts.end() ? uint64_t(0) : It->second;
      };
      json::JsonWriter W;
      W.beginObject();
      W.key("schema").value("vbmc-fuzz/v1");
      W.key("seed").value(FO.Fuzz.Seed);
      W.key("checked").value(S.Checked);
      W.key("passed").value(S.Passed);
      W.key("skipped").value(S.Skipped);
      W.key("timeouts").value(S.Timeouts);
      W.key("sandbox").beginObject();
      W.key("crashes").value(Stat("sandbox.crash"));
      W.key("ooms").value(Stat("sandbox.oom"));
      W.key("timeouts").value(Stat("sandbox.timeout"));
      W.key("retries").value(Stat("sandbox.retries"));
      W.endObject();
      W.key("discrepancies").beginArray();
      for (const farm::WitnessRecord &D : S.Witnesses) {
        W.beginObject();
        W.key("seed").value(FO.Fuzz.Seed);
        W.key("index").value(D.Index);
        W.key("check").value(D.Check);
        W.key("detail").value(D.Detail);
        W.key("stmts").value(D.Stmts);
        W.key("path").value(D.Path);
        W.endObject();
      }
      W.endArray();
      W.endObject();
      std::ofstream Out(JsonPath);
      Out << W.str() << '\n';
      if (!Out)
        std::fprintf(stderr, "vbmc-fuzz: cannot write summary to '%s'\n",
                     JsonPath.c_str());
    }
    return S.clean() ? 0 : 1;
  }

  fuzz::FuzzCampaignResult R = fuzz::runFuzzCampaign(O, Log);
  if (Quiet)
    std::printf("fuzz: %llu programs, %zu discrepancies\n",
                static_cast<unsigned long long>(R.Checked),
                R.Discrepancies.size());

  // Machine-readable campaign summary for CI artifacts.
  std::string JsonPath = CL.getString("json", "");
  if (!JsonPath.empty()) {
    json::JsonWriter W;
    W.beginObject();
    W.key("schema").value("vbmc-fuzz/v1");
    W.key("seed").value(O.Seed);
    W.key("checked").value(R.Checked);
    W.key("passed").value(R.Passed);
    W.key("skipped").value(R.Skipped);
    W.key("timeouts").value(R.Timeouts);
    W.key("sandbox").beginObject();
    W.key("crashes").value(R.SandboxCrashes);
    W.key("ooms").value(R.SandboxOoms);
    W.key("timeouts").value(R.SandboxTimeouts);
    W.key("retries").value(R.SandboxRetries);
    W.endObject();
    W.key("discrepancies").beginArray();
    for (const fuzz::FuzzDiscrepancy &D : R.Discrepancies) {
      W.beginObject();
      W.key("seed").value(D.Seed);
      W.key("index").value(D.Index);
      W.key("check").value(D.Check);
      W.key("detail").value(D.Detail);
      W.key("stmts").value(D.Stmts);
      W.key("path").value(D.Path);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    std::ofstream Out(JsonPath);
    Out << W.str() << '\n';
    if (!Out)
      std::fprintf(stderr, "vbmc-fuzz: cannot write summary to '%s'\n",
                   JsonPath.c_str());
  }
  return R.clean() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  // The campaign harness itself must never die with an unexplained abort:
  // anything a sandboxed child can't absorb is classified here.
  try {
    return runMain(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "vbmc-fuzz: error: out of memory (failure=oom)\n");
    return 3;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "vbmc-fuzz: error: internal failure: %s\n",
                 E.what());
    return 3;
  }
}
