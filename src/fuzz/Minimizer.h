//===- Minimizer.h - delta-debugging witness minimization -------*- C++ -*-===//
///
/// \file
/// Shrinks a discrepancy-producing program to a minimal reproducer by
/// greedy delta debugging: repeatedly apply structural reductions (drop a
/// statement, unwrap an if/while, drop a whole process, drop unused
/// variables and registers, shrink constants and nondet ranges) and keep
/// a reduction iff the caller's predicate still observes the *same*
/// failure on the reduced program. Every kept candidate is structurally
/// validated first, so the result is always a well-formed program the
/// corpus can check in.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FUZZ_MINIMIZER_H
#define VBMC_FUZZ_MINIMIZER_H

#include "ir/Program.h"
#include "support/CheckContext.h"

#include <functional>

namespace vbmc::fuzz {

/// Returns true when the candidate still exhibits the original failure.
/// The minimizer only keeps reductions this accepts.
using MinimizePredicate = std::function<bool(const ir::Program &)>;

struct MinimizeResult {
  ir::Program Prog;
  /// Candidate programs evaluated (predicate calls).
  uint64_t CandidatesTried = 0;
  /// Reductions accepted.
  uint64_t Reductions = 0;
  /// True when minimization stopped early (deadline or candidate cap).
  bool Truncated = false;
};

/// Number of statements in \p P, counting nested bodies.
uint64_t countStmts(const ir::Program &P);

/// Minimizes \p P with respect to \p StillFails. \p Ctx bounds the whole
/// minimization (each predicate call should impose its own per-run
/// budget); \p MaxCandidates caps predicate calls as a safety net.
MinimizeResult minimizeProgram(const ir::Program &P,
                               const MinimizePredicate &StillFails,
                               const CheckContext &Ctx,
                               uint64_t MaxCandidates = 20000);

} // namespace vbmc::fuzz

#endif // VBMC_FUZZ_MINIMIZER_H
