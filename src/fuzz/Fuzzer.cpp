//===- Fuzzer.cpp ---------------------------------------------*- C++ -*-===//

#include "fuzz/Fuzzer.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vbmc/Vbmc.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace vbmc;
using namespace vbmc::fuzz;
using namespace vbmc::ir;

namespace {

DiffOptions lightweightOnly(DiffOptions O) {
  // The translation-based checks explore the instrumented program's SC
  // state space — orders of magnitude more states than the input. When
  // HeavyEvery > 1 the off-cycle programs run the direct semantic
  // checks only.
  O.WithTranslation = false;
  O.WithSat = false;
  return O;
}

void tallyReport(const DiffReport &Rep, FuzzCampaignResult &R) {
  for (const CheckOutcome &O : Rep.Outcomes) {
    if (O.Status == CheckStatus::Skipped)
      ++R.Skipped;
    else if (O.Status == CheckStatus::Timeout)
      ++R.Timeouts;
  }
}

std::string reproducerText(const FuzzDiscrepancy &D, const FuzzOptions &O) {
  std::ostringstream Out;
  Out << "// vbmc-fuzz reproducer (minimized witness)\n";
  Out << "// seed: " << D.Seed << " index: " << D.Index << "\n";
  Out << "// check: " << D.Check << "\n";
  Out << "// detail: " << D.Detail << "\n";
  Out << "// replay: vbmc-fuzz --seed " << D.Seed << " --index " << D.Index
      << " --max-k " << O.Diff.K << "\n";
  Out << D.ProgramText;
  return Out.str();
}

/// Runs one check under a fresh per-run budget; the minimizer predicate.
bool stillFails(const Program &Candidate, const std::string &Check,
                const DiffOptions &O, double PerRunSeconds) {
  CheckContext Ctx(PerRunSeconds);
  return runCheck(Candidate, Check, O, Ctx).Status == CheckStatus::Mismatch;
}

} // namespace

Program vbmc::fuzz::regenerateProgram(const FuzzOptions &O, uint64_t Index) {
  Rng R = Rng::derived(O.Seed, Index);
  return makeRandomProgram(R, O.Gen);
}

FuzzCampaignResult vbmc::fuzz::runFuzzCampaign(const FuzzOptions &O,
                                               std::ostream *Log) {
  FuzzCampaignResult R;
  CheckContext Campaign(O.BudgetSeconds);
  DiffOptions Light = lightweightOnly(O.Diff);

  for (uint64_t I = 0;; ++I) {
    if (O.Count && I >= O.Count)
      break;
    if (Campaign.interrupted())
      break;
    if (!O.Count && O.BudgetSeconds <= 0)
      break; // No stopping criterion at all; refuse to loop forever.

    Rng Rand = Rng::derived(O.Seed, I);
    Program P = makeRandomProgram(Rand, O.Gen);
    bool Heavy = O.HeavyEvery <= 1 || (I % O.HeavyEvery) == 0;
    const DiffOptions &DO = Heavy ? O.Diff : Light;

    CheckContext PerProg = Campaign.childWithBudget(O.PerProgramSeconds);
    DiffReport Rep = runDifferential(P, DO, PerProg);
    ++R.Checked;
    tallyReport(Rep, R);
    if (!Rep.mismatch()) {
      ++R.Passed;
      continue;
    }

    const CheckOutcome &Bad = *Rep.firstMismatch();
    FuzzDiscrepancy D;
    D.Seed = O.Seed;
    D.Index = I;
    D.Check = Bad.Check;
    D.Detail = Bad.Detail;

    Program Witness = P;
    if (O.Minimize) {
      CheckContext MinCtx(O.MinimizeSeconds);
      MinimizeResult MR = minimizeProgram(
          P,
          [&](const Program &Cand) {
            return stillFails(Cand, Bad.Check, DO, O.PerProgramSeconds);
          },
          MinCtx);
      Witness = std::move(MR.Prog);
    }
    D.ProgramText = printProgram(Witness);
    D.Stmts = countStmts(Witness);

    if (!O.CorpusDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(O.CorpusDir, Ec);
      std::string Name = "repro_seed" + std::to_string(O.Seed) + "_i" +
                         std::to_string(I) + "_" + Bad.Check + ".ra";
      std::filesystem::path Path = std::filesystem::path(O.CorpusDir) / Name;
      std::ofstream File(Path);
      File << reproducerText(D, O);
      D.Path = Path.string();
    }

    if (Log)
      *Log << "DISCREPANCY seed=" << O.Seed << " index=" << I << " check="
           << D.Check << " stmts=" << D.Stmts << "\n  " << D.Detail << "\n"
           << (D.Path.empty() ? "" : "  written to " + D.Path + "\n");
    R.Discrepancies.push_back(std::move(D));
  }

  if (Log)
    *Log << "fuzz: " << R.Checked << " programs, " << R.Passed << " passed, "
         << R.Discrepancies.size() << " discrepancies, " << R.Skipped
         << " checks skipped, " << R.Timeouts << " checks timed out\n";
  return R;
}

//===----------------------------------------------------------------------===//
// Corpus replay
//===----------------------------------------------------------------------===//

namespace {

struct ExpectDirective {
  bool Unsafe = false;
  uint32_t K = 0;
};

/// Scans `// expect: safe|unsafe k=<n>` lines. Also honors
/// `// no-sat` (disable the SAT check for this file, e.g. loops whose
/// trip count exceeds the default unroll bound).
struct FileDirectives {
  std::vector<ExpectDirective> Expects;
  bool NoSat = false;
  bool Malformed = false;
  std::string Error;
};

FileDirectives parseDirectives(const std::string &Text) {
  FileDirectives D;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t C = Line.find("//");
    if (C == std::string::npos)
      continue;
    std::istringstream Toks(Line.substr(C + 2));
    std::string Word;
    Toks >> Word;
    if (Word == "no-sat") {
      D.NoSat = true;
      continue;
    }
    if (Word != "expect:")
      continue;
    ExpectDirective E;
    std::string Verdict, KTok;
    Toks >> Verdict >> KTok;
    if (Verdict == "unsafe")
      E.Unsafe = true;
    else if (Verdict != "safe") {
      D.Malformed = true;
      D.Error = "bad expect verdict '" + Verdict + "'";
      return D;
    }
    if (KTok.rfind("k=", 0) != 0) {
      D.Malformed = true;
      D.Error = "expect directive needs k=<n>, got '" + KTok + "'";
      return D;
    }
    E.K = static_cast<uint32_t>(std::stoul(KTok.substr(2)));
    D.Expects.push_back(E);
  }
  return D;
}

ReplayFileResult replayFile(const std::string &Path, const FuzzOptions &O) {
  ReplayFileResult R;
  R.Path = Path;

  std::ifstream In(Path);
  if (!In) {
    R.Message = "cannot open file";
    return R;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  FileDirectives Dir = parseDirectives(Text);
  if (Dir.Malformed) {
    R.Message = Dir.Error;
    return R;
  }

  auto Parsed = parseProgram(Text);
  if (!Parsed) {
    R.Message = "parse error: " + Parsed.error().str();
    return R;
  }
  Program P = Parsed.take();

  // Cross-backend agreement on the file itself.
  DiffOptions DO = O.Diff;
  if (Dir.NoSat)
    DO.WithSat = false;
  CheckContext Ctx(O.PerProgramSeconds > 0 ? O.PerProgramSeconds * 10 : 0);
  DiffReport Rep = runDifferential(P, DO, Ctx);
  if (const CheckOutcome *Bad = Rep.firstMismatch()) {
    R.Message = Bad->Check + ": " + Bad->Detail;
    return R;
  }

  // Pinned verdicts at specific K. Every backend that completes must
  // reproduce the verdict; a backend hitting its state cap or deadline is
  // inconclusive (not a disagreement) and skipped, but at least one must
  // confirm (heavy litmus files like IRIW exceed the explicit backend's
  // state cap while the SAT backend answers instantly).
  for (const ExpectDirective &E : Dir.Expects) {
    driver::VbmcOptions VO;
    VO.K = E.K;
    VO.L = DO.L;
    VO.CasAllowance = casAllowanceFor(P, DO);
    VO.MaxStates = DO.MaxStates;
    bool Confirmed = false;
    std::string LastInconclusive;
    for (driver::BackendKind B :
         {driver::BackendKind::Explicit, driver::BackendKind::Sat}) {
      if (B == driver::BackendKind::Sat && Dir.NoSat)
        continue;
      VO.Backend = B;
      CheckContext C(O.PerProgramSeconds > 0 ? O.PerProgramSeconds * 10 : 0);
      driver::VbmcResult VR = driver::checkProgram(P, VO, C);
      bool Want = E.Unsafe;
      const char *Backend =
          B == driver::BackendKind::Explicit ? "explicit" : "sat";
      if (VR.Outcome == driver::Verdict::Unknown) {
        LastInconclusive = std::string(Backend) + ": " + VR.Note;
        continue;
      }
      if (VR.unsafe() != Want) {
        R.Message = std::string("expected ") +
                    (Want ? "unsafe" : "safe") + " at k=" +
                    std::to_string(E.K) + ", " + Backend + " backend says " +
                    (VR.unsafe() ? "unsafe" : "safe");
        return R;
      }
      Confirmed = true;
    }
    if (!Confirmed) {
      R.Message = std::string("expect k=") + std::to_string(E.K) +
                  ": no backend conclusive (" + LastInconclusive + ")";
      return R;
    }
  }

  R.Passed = true;
  R.Message = "ok (" + std::to_string(Dir.Expects.size()) + " expects)";
  return R;
}

} // namespace

ReplayResult vbmc::fuzz::replayCorpus(const std::vector<std::string> &Paths,
                                      const FuzzOptions &O,
                                      std::ostream *Log) {
  // Expand directories into their .ra files, deterministically sorted.
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code Ec;
    if (std::filesystem::is_directory(P, Ec)) {
      std::vector<std::string> Dir;
      for (const auto &Entry : std::filesystem::directory_iterator(P, Ec))
        if (Entry.path().extension() == ".ra")
          Dir.push_back(Entry.path().string());
      std::sort(Dir.begin(), Dir.end());
      Files.insert(Files.end(), Dir.begin(), Dir.end());
    } else {
      Files.push_back(P);
    }
  }

  ReplayResult R;
  for (const std::string &F : Files) {
    ReplayFileResult FR = replayFile(F, O);
    if (!FR.Passed)
      ++R.Failures;
    if (Log)
      *Log << (FR.Passed ? "PASS " : "FAIL ") << F << ": " << FR.Message
           << "\n";
    R.Files.push_back(std::move(FR));
  }
  if (Log)
    *Log << "corpus: " << R.Files.size() << " files, " << R.Failures
         << " failures\n";
  return R;
}
