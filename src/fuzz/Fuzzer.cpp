//===- Fuzzer.cpp ---------------------------------------------*- C++ -*-===//

#include "fuzz/Fuzzer.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Sandbox.h"
#include "support/Signals.h"
#include "vbmc/Engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

using namespace vbmc;
using namespace vbmc::fuzz;
using namespace vbmc::ir;

namespace {

DiffOptions lightweightOnly(DiffOptions O) {
  // The translation-based checks explore the instrumented program's SC
  // state space — orders of magnitude more states than the input. When
  // HeavyEvery > 1 the off-cycle programs run the direct semantic
  // checks only.
  O.WithTranslation = false;
  O.WithSat = false;
  return O;
}

//===----------------------------------------------------------------------===//
// Sandboxed ("governed") differentials
//
// With FuzzOptions::Isolate, every per-program differential runs in a
// forked child under an RLIMIT_AS headroom and the program's budget slice
// (support/Sandbox.h). The child serializes its DiffReport and stats over
// the report pipe in the same line-based protocol the driver's Isolation
// layer uses; the parent classifies child death instead of sharing it.
//===----------------------------------------------------------------------===//

std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char N = S[++I];
    Out += N == 't' ? '\t' : N == 'n' ? '\n' : N;
  }
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Tab = Line.find('\t', Pos);
    if (Tab == std::string::npos)
      Tab = Line.size();
    Fields.push_back(Line.substr(Pos, Tab - Pos));
    Pos = Tab + 1;
  }
  return Fields;
}

CheckStatus statusFromName(const std::string &Name) {
  if (Name == "pass")
    return CheckStatus::Pass;
  if (Name == "MISMATCH")
    return CheckStatus::Mismatch;
  if (Name == "timeout")
    return CheckStatus::Timeout;
  return CheckStatus::Skipped;
}

std::string serializeDiffReport(const DiffReport &Rep,
                                const StatsRegistry &Stats) {
  std::ostringstream Out;
  Out.precision(17);
  for (const CheckOutcome &O : Rep.Outcomes)
    Out << "outcome\t" << escape(O.Check) << "\t" << checkStatusName(O.Status)
        << "\t" << escape(O.Detail) << "\n";
  for (const StatsRegistry::Entry &E : Stats.snapshot()) {
    if (E.IsCounter)
      Out << "stat.count\t" << escape(E.Name) << "\t" << E.Count << "\n";
    else
      Out << "stat.seconds\t" << escape(E.Name) << "\t" << E.Seconds << "\n";
  }
  Out << "end\t\n"; // Truncation sentinel: a cut-off pipe lacks it.
  return Out.str();
}

/// Parses a child report; \p Truncated is set when the end sentinel is
/// missing (child died mid-write — treat as a crash, not a clean report).
DiffReport parseDiffReport(const std::string &Payload,
                           StatsRegistry *MergeInto, bool &Truncated) {
  DiffReport Rep;
  std::istringstream In(Payload);
  std::string Line;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    std::vector<std::string> F = splitTabs(Line);
    if (F.empty())
      continue;
    auto Field = [&](size_t I) -> std::string {
      return I < F.size() ? F[I] : std::string();
    };
    if (F[0] == "outcome") {
      CheckOutcome O;
      O.Check = unescape(Field(1));
      O.Status = statusFromName(Field(2));
      O.Detail = unescape(Field(3));
      Rep.Outcomes.push_back(std::move(O));
    } else if (F[0] == "stat.count" && MergeInto) {
      MergeInto->addCount(unescape(Field(1)),
                          std::strtoull(Field(2).c_str(), nullptr, 10));
    } else if (F[0] == "stat.seconds" && MergeInto) {
      MergeInto->addSeconds(unescape(Field(1)),
                            std::strtod(Field(2).c_str(), nullptr));
    } else if (F[0] == "end") {
      SawEnd = true;
    }
  }
  Truncated = !SawEnd;
  return Rep;
}

/// Result of one resource-governed per-program differential.
struct GovernedDiff {
  DiffReport Rep;
  /// Non-None when the check process died (signal / OOM / bad exit);
  /// the campaign turns this into a "crash"-tagged witness.
  sandbox::FailureKind Fatal = sandbox::FailureKind::None;
  std::string FatalDetail;
  /// The campaign deadline (not the per-program slice) cut the run.
  bool Cancelled = false;
};

bool isolating(const FuzzOptions &O) {
  return O.Isolate && sandbox::available();
}

/// Runs the differential for one program, forked and resource-governed
/// when \p O.Isolate is set. \p CampaignStats (may be null) receives the
/// surviving child's stats and the parent-side sandbox.* counters.
GovernedDiff runGovernedDifferential(const Program &P, const DiffOptions &DO,
                                     const FuzzOptions &O,
                                     const CheckContext &Ctx,
                                     StatsRegistry *CampaignStats) {
  GovernedDiff G;
  if (!isolating(O)) {
    G.Rep = runDifferential(P, DO, Ctx);
    return G;
  }

  sandbox::SandboxOptions SO;
  SO.MemLimitBytes = O.MemLimitMb << 20;
  double Remaining = Ctx.deadline().remainingSeconds();
  if (Remaining != std::numeric_limits<double>::infinity())
    SO.TimeoutSeconds = Remaining > 0 ? Remaining : 1e-3;
  SO.Cancel = &Ctx.token();

  sandbox::SandboxOutcome Out = sandbox::runInSandbox(SO, [&]() {
    // Fresh context: recording into the inherited parent registry would
    // be invisible across the fork, and serializing it would double-count
    // the parent's pre-fork entries.
    CheckContext ChildCtx(SO.TimeoutSeconds);
    DiffReport Rep = runDifferential(P, DO, ChildCtx);
    return serializeDiffReport(Rep, ChildCtx.stats());
  });

  if (Out.Completed) {
    bool Truncated = false;
    G.Rep = parseDiffReport(Out.Payload, CampaignStats, Truncated);
    if (Truncated) {
      G.Fatal = sandbox::FailureKind::ExitFailure;
      G.FatalDetail = "truncated report from check process";
      if (CampaignStats)
        CampaignStats->addCount("sandbox.crash");
    }
    return G;
  }
  if (Out.Cancelled) {
    G.Cancelled = true;
    return G;
  }
  if (Out.Failure == sandbox::FailureKind::Timeout) {
    // The program's own budget slice expired — same bucket as an
    // in-process check deadline, not a bug witness.
    CheckOutcome TO;
    TO.Check = "sandbox";
    TO.Status = CheckStatus::Timeout;
    TO.Detail = Out.Detail;
    G.Rep.Outcomes.push_back(std::move(TO));
    if (CampaignStats)
      CampaignStats->addCount("sandbox.timeout");
    return G;
  }
  G.Fatal = Out.Failure;
  G.FatalDetail = Out.Detail;
  if (CampaignStats)
    CampaignStats->addCount(Out.Failure == sandbox::FailureKind::OutOfMemory
                                ? "sandbox.oom"
                                : "sandbox.crash");
  return G;
}

/// Minimizer predicate for crash witnesses: the candidate must still kill
/// a fresh sandboxed check process the same way (minimizing a SIGSEGV
/// into an OOM would change the bug being witnessed).
bool stillDies(const Program &Candidate, const DiffOptions &DO,
               const FuzzOptions &O, sandbox::FailureKind Kind) {
  sandbox::SandboxOptions SO;
  SO.MemLimitBytes = O.MemLimitMb << 20;
  SO.TimeoutSeconds = O.PerProgramSeconds;
  sandbox::SandboxOutcome Out = sandbox::runInSandbox(SO, [&]() {
    CheckContext Ctx(SO.TimeoutSeconds);
    runDifferential(Candidate, DO, Ctx);
    return std::string("ok");
  });
  return !Out.Completed && Out.Failure == Kind;
}

void tallyReport(const DiffReport &Rep, FuzzCampaignResult &R) {
  for (const CheckOutcome &O : Rep.Outcomes) {
    if (O.Status == CheckStatus::Skipped)
      ++R.Skipped;
    else if (O.Status == CheckStatus::Timeout)
      ++R.Timeouts;
  }
}

std::string reproducerText(const FuzzDiscrepancy &D, const FuzzOptions &O) {
  std::ostringstream Out;
  Out << "// vbmc-fuzz reproducer (minimized witness)\n";
  Out << "// seed: " << D.Seed << " index: " << D.Index << "\n";
  Out << "// check: " << D.Check << "\n";
  Out << "// detail: " << D.Detail << "\n";
  Out << "// replay: vbmc-fuzz --seed " << D.Seed << " --index " << D.Index
      << " --max-k " << O.Diff.K << "\n";
  Out << D.ProgramText;
  return Out.str();
}

/// Runs one check under a fresh per-run budget; the minimizer predicate.
bool stillFails(const Program &Candidate, const std::string &Check,
                const DiffOptions &O, double PerRunSeconds) {
  CheckContext Ctx(PerRunSeconds);
  return runCheck(Candidate, Check, O, Ctx).Status == CheckStatus::Mismatch;
}

} // namespace

Program vbmc::fuzz::regenerateProgram(const FuzzOptions &O, uint64_t Index) {
  Rng R = Rng::derived(O.Seed, Index);
  return makeRandomProgram(R, O.Gen);
}

FuzzCampaignResult vbmc::fuzz::runFuzzCampaign(const FuzzOptions &O,
                                               std::ostream *Log) {
  FuzzCampaignResult R;
  CheckContext Campaign(O.BudgetSeconds);
  DiffOptions Heavy = O.Diff;
  if (O.MemLimitMb && Heavy.MemLimitBytes == 0)
    Heavy.MemLimitBytes = O.MemLimitMb << 20;
  DiffOptions Light = lightweightOnly(Heavy);

  for (uint64_t I = O.StartIndex;; ++I) {
    if (O.Count && I >= O.StartIndex + O.Count)
      break;
    if (Campaign.interrupted())
      break;
    // SIGTERM/SIGINT: stop generating, keep everything already found, and
    // let the campaign exit through the normal artifact-writing path.
    if (signals::drainRequested())
      break;
    if (!O.Count && O.BudgetSeconds <= 0)
      break; // No stopping criterion at all; refuse to loop forever.

    Rng Rand = Rng::derived(O.Seed, I);
    Program P = makeRandomProgram(Rand, O.Gen);
    bool IsHeavy = O.HeavyEvery <= 1 || (I % O.HeavyEvery) == 0;
    const DiffOptions &DO = IsHeavy ? Heavy : Light;

    CheckContext PerProg = Campaign.childWithBudget(O.PerProgramSeconds);
    GovernedDiff G =
        runGovernedDifferential(P, DO, O, PerProg, &Campaign.stats());
    if (G.Cancelled)
      break; // Campaign deadline, not this program's fault.
    ++R.Checked;
    tallyReport(G.Rep, R);

    FuzzDiscrepancy D;
    D.Seed = O.Seed;
    D.Index = I;
    Program Witness = P;

    if (sandbox::isFailure(G.Fatal)) {
      // The check process died under this program: that is a bug in the
      // engine regardless of what any backend would have answered. Tag
      // the witness "crash" and carry the classified kind in the detail.
      D.Check = "crash";
      D.Detail = std::string(sandbox::failureKindName(G.Fatal)) +
                 (G.FatalDetail.empty() ? "" : ": " + G.FatalDetail);
      if (O.Minimize) {
        CheckContext MinCtx(O.MinimizeSeconds);
        MinimizeResult MR = minimizeProgram(
            P,
            [&](const Program &Cand) {
              return stillDies(Cand, DO, O, G.Fatal);
            },
            MinCtx);
        Witness = std::move(MR.Prog);
      }
    } else if (G.Rep.mismatch()) {
      const CheckOutcome &Bad = *G.Rep.firstMismatch();
      D.Check = Bad.Check;
      D.Detail = Bad.Detail;
      if (O.Minimize) {
        CheckContext MinCtx(O.MinimizeSeconds);
        MinimizeResult MR = minimizeProgram(
            P,
            [&](const Program &Cand) {
              return stillFails(Cand, Bad.Check, DO, O.PerProgramSeconds);
            },
            MinCtx);
        Witness = std::move(MR.Prog);
      }
    } else {
      ++R.Passed;
      continue;
    }

    D.ProgramText = printProgram(Witness);
    D.Stmts = countStmts(Witness);

    if (!O.CorpusDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(O.CorpusDir, Ec);
      std::string Name = "repro_seed" + std::to_string(O.Seed) + "_i" +
                         std::to_string(I) + "_" + D.Check + ".ra";
      std::filesystem::path Path = std::filesystem::path(O.CorpusDir) / Name;
      std::ofstream File(Path);
      File << reproducerText(D, O);
      D.Path = Path.string();
    }

    if (Log)
      *Log << "DISCREPANCY seed=" << O.Seed << " index=" << I << " check="
           << D.Check << " stmts=" << D.Stmts << "\n  " << D.Detail << "\n"
           << (D.Path.empty() ? "" : "  written to " + D.Path + "\n");
    R.Discrepancies.push_back(std::move(D));
  }

  const StatsRegistry &St = Campaign.stats();
  R.SandboxCrashes = St.count("sandbox.crash");
  R.SandboxOoms = St.count("sandbox.oom");
  R.SandboxTimeouts = St.count("sandbox.timeout");
  R.SandboxRetries = St.count("sandbox.retries");

  if (Log) {
    *Log << "fuzz: " << R.Checked << " programs, " << R.Passed << " passed, "
         << R.Discrepancies.size() << " discrepancies, " << R.Skipped
         << " checks skipped, " << R.Timeouts << " checks timed out\n";
    if (isolating(O))
      *Log << "sandbox: " << R.SandboxCrashes << " crashes, " << R.SandboxOoms
           << " oom kills, " << R.SandboxTimeouts << " timeouts, "
           << R.SandboxRetries << " reduced-bound retries\n";
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Corpus replay
//===----------------------------------------------------------------------===//

namespace {

struct ExpectDirective {
  bool Unsafe = false;
  uint32_t K = 0;
};

/// Scans `// expect: safe|unsafe k=<n>` lines. Also honors
/// `// no-sat` (disable the SAT check for this file, e.g. loops whose
/// trip count exceeds the default unroll bound).
struct FileDirectives {
  std::vector<ExpectDirective> Expects;
  bool NoSat = false;
  bool Malformed = false;
  std::string Error;
};

FileDirectives parseDirectives(const std::string &Text) {
  FileDirectives D;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t C = Line.find("//");
    if (C == std::string::npos)
      continue;
    std::istringstream Toks(Line.substr(C + 2));
    std::string Word;
    Toks >> Word;
    if (Word == "no-sat") {
      D.NoSat = true;
      continue;
    }
    if (Word != "expect:")
      continue;
    ExpectDirective E;
    std::string Verdict, KTok;
    Toks >> Verdict >> KTok;
    if (Verdict == "unsafe")
      E.Unsafe = true;
    else if (Verdict != "safe") {
      D.Malformed = true;
      D.Error = "bad expect verdict '" + Verdict + "'";
      return D;
    }
    if (KTok.rfind("k=", 0) != 0) {
      D.Malformed = true;
      D.Error = "expect directive needs k=<n>, got '" + KTok + "'";
      return D;
    }
    E.K = static_cast<uint32_t>(std::stoul(KTok.substr(2)));
    D.Expects.push_back(E);
  }
  return D;
}

ReplayFileResult replayFile(const std::string &Path, const FuzzOptions &O) {
  ReplayFileResult R;
  R.Path = Path;

  std::ifstream In(Path);
  if (!In) {
    R.Message = "cannot open file";
    return R;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  FileDirectives Dir = parseDirectives(Text);
  if (Dir.Malformed) {
    R.Message = Dir.Error;
    return R;
  }

  auto Parsed = parseProgram(Text);
  if (!Parsed) {
    R.Message = "parse error: " + Parsed.error().str();
    return R;
  }
  Program P = Parsed.take();

  // Cross-backend agreement on the file itself, sandboxed when isolating
  // so a crashing corpus file fails its own replay instead of killing the
  // whole replay run.
  DiffOptions DO = O.Diff;
  if (O.MemLimitMb && DO.MemLimitBytes == 0)
    DO.MemLimitBytes = O.MemLimitMb << 20;
  if (Dir.NoSat)
    DO.WithSat = false;
  CheckContext Ctx(O.PerProgramSeconds > 0 ? O.PerProgramSeconds * 10 : 0);
  GovernedDiff G = runGovernedDifferential(P, DO, O, Ctx, nullptr);
  if (sandbox::isFailure(G.Fatal)) {
    R.Message = std::string("check process died: ") +
                sandbox::failureKindName(G.Fatal) +
                (G.FatalDetail.empty() ? "" : " (" + G.FatalDetail + ")");
    return R;
  }
  if (const CheckOutcome *Bad = G.Rep.firstMismatch()) {
    R.Message = Bad->Check + ": " + Bad->Detail;
    return R;
  }

  // Pinned verdicts at specific K. Every backend that completes must
  // reproduce the verdict; a backend hitting its state cap or deadline is
  // inconclusive (not a disagreement) and skipped, but at least one must
  // confirm (heavy litmus files like IRIW exceed the explicit backend's
  // state cap while the SAT backend answers instantly).
  for (const ExpectDirective &E : Dir.Expects) {
    driver::VbmcOptions VO;
    VO.K = E.K;
    VO.L = DO.L;
    VO.CasAllowance = casAllowanceFor(P, DO);
    VO.MaxStates = DO.MaxStates;
    VO.Isolate = O.Isolate;
    VO.MemLimitBytes = DO.MemLimitBytes;
    bool Confirmed = false;
    std::string LastInconclusive;
    for (driver::BackendKind B :
         {driver::BackendKind::Explicit, driver::BackendKind::Sat}) {
      if (B == driver::BackendKind::Sat && Dir.NoSat)
        continue;
      VO.Backend = B;
      CheckContext C(O.PerProgramSeconds > 0 ? O.PerProgramSeconds * 10 : 0);
      driver::CheckRequest Req;
      Req.Opts = VO;
      driver::CheckReport VR = driver::Engine().run(P, Req, C);
      bool Want = E.Unsafe;
      const char *Backend =
          B == driver::BackendKind::Explicit ? "explicit" : "sat";
      if (VR.Outcome == driver::Verdict::Unknown) {
        LastInconclusive = std::string(Backend) + ": " + VR.Note;
        continue;
      }
      if (VR.unsafe() != Want) {
        R.Message = std::string("expected ") +
                    (Want ? "unsafe" : "safe") + " at k=" +
                    std::to_string(E.K) + ", " + Backend + " backend says " +
                    (VR.unsafe() ? "unsafe" : "safe");
        return R;
      }
      Confirmed = true;
    }
    if (!Confirmed) {
      R.Message = std::string("expect k=") + std::to_string(E.K) +
                  ": no backend conclusive (" + LastInconclusive + ")";
      return R;
    }

    // Equivalence of the incremental deepening engine with fresh per-K
    // solving at this directive's budget. An inconclusive sweep (budget,
    // state cap) skips the comparison; a conclusive disagreement on the
    // verdict or the minimal buggy K fails the file.
    if (O.IncrementalReplay && !Dir.NoSat) {
      DiffOptions IncDO = DO;
      IncDO.K = E.K;
      CheckContext IncCtx(O.PerProgramSeconds > 0 ? O.PerProgramSeconds * 10
                                                  : 0);
      CheckOutcome IncOut =
          runCheck(P, "incremental-vs-fresh", IncDO, IncCtx);
      if (IncOut.Status == CheckStatus::Mismatch) {
        R.Message = "incremental-vs-fresh at k=" + std::to_string(E.K) +
                    ": " + IncOut.Detail;
        return R;
      }
    }
  }

  R.Passed = true;
  R.Message = "ok (" + std::to_string(Dir.Expects.size()) + " expects)";
  return R;
}

} // namespace

ReplayResult vbmc::fuzz::replayCorpus(const std::vector<std::string> &Paths,
                                      const FuzzOptions &O,
                                      std::ostream *Log) {
  // Expand directories into their .ra files, deterministically sorted.
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code Ec;
    if (std::filesystem::is_directory(P, Ec)) {
      std::vector<std::string> Dir;
      for (const auto &Entry : std::filesystem::directory_iterator(P, Ec))
        if (Entry.path().extension() == ".ra")
          Dir.push_back(Entry.path().string());
      std::sort(Dir.begin(), Dir.end());
      Files.insert(Files.end(), Dir.begin(), Dir.end());
    } else {
      Files.push_back(P);
    }
  }

  ReplayResult R;
  for (const std::string &F : Files) {
    ReplayFileResult FR = replayFile(F, O);
    if (!FR.Passed)
      ++R.Failures;
    if (Log)
      *Log << (FR.Passed ? "PASS " : "FAIL ") << F << ": " << FR.Message
           << "\n";
    R.Files.push_back(std::move(FR));
  }
  if (Log)
    *Log << "corpus: " << R.Files.size() << " files, " << R.Failures
         << " failures\n";
  return R;
}
