//===- Minimizer.cpp ------------------------------------------*- C++ -*-===//

#include "fuzz/Minimizer.h"

#include <set>

using namespace vbmc;
using namespace vbmc::fuzz;
using namespace vbmc::ir;

namespace {

//===----------------------------------------------------------------------===//
// Statement traversal
//===----------------------------------------------------------------------===//

uint64_t countStmtsIn(const std::vector<Stmt> &Body) {
  uint64_t N = 0;
  for (const Stmt &S : Body)
    N += 1 + countStmtsIn(S.Then) + countStmtsIn(S.Else);
  return N;
}

/// Removes the \p N-th statement (preorder) from \p Body, counting nested
/// bodies. Returns true once removed; otherwise decrements \p N by the
/// number of positions passed.
bool removeNth(std::vector<Stmt> &Body, uint64_t &N) {
  for (size_t I = 0; I < Body.size(); ++I) {
    if (N == 0) {
      Body.erase(Body.begin() + static_cast<ptrdiff_t>(I));
      return true;
    }
    --N;
    if (removeNth(Body[I].Then, N) || removeNth(Body[I].Else, N))
      return true;
  }
  return false;
}

/// Replaces the \p N-th compound statement (preorder over If/While only)
/// with one of its bodies: Mode 0 = Then (While body), Mode 1 = Else.
bool unwrapNth(std::vector<Stmt> &Body, uint64_t &N, int Mode) {
  for (size_t I = 0; I < Body.size(); ++I) {
    Stmt &S = Body[I];
    bool Compound = S.Kind == StmtKind::If || S.Kind == StmtKind::While;
    if (Compound && N == 0) {
      std::vector<Stmt> Repl =
          Mode == 0 ? std::move(S.Then) : std::move(S.Else);
      Body.erase(Body.begin() + static_cast<ptrdiff_t>(I));
      Body.insert(Body.begin() + static_cast<ptrdiff_t>(I),
                  std::make_move_iterator(Repl.begin()),
                  std::make_move_iterator(Repl.end()));
      return true;
    }
    if (Compound)
      --N;
    if (unwrapNth(S.Then, N, Mode) || unwrapNth(S.Else, N, Mode))
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expression rewriting (expressions are immutable; rewrites rebuild)
//===----------------------------------------------------------------------===//

using ExprFn = std::function<ExprRef(const Expr &)>; // may return null

ExprRef rewriteExpr(const ExprRef &E, const ExprFn &F) {
  if (!E)
    return E;
  if (ExprRef R = F(*E))
    return R;
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Reg:
  case ExprKind::Nondet:
    return E;
  case ExprKind::Unary: {
    ExprRef L = rewriteExpr(E->lhs(), F);
    return L == E->lhs() ? E : Expr::makeUnary(E->unaryOp(), std::move(L));
  }
  case ExprKind::Binary: {
    ExprRef L = rewriteExpr(E->lhs(), F);
    ExprRef R = rewriteExpr(E->rhs(), F);
    return (L == E->lhs() && R == E->rhs())
               ? E
               : Expr::makeBinary(E->binaryOp(), std::move(L), std::move(R));
  }
  }
  return E;
}

void rewriteStmts(std::vector<Stmt> &Body, const ExprFn &F) {
  for (Stmt &S : Body) {
    S.E = rewriteExpr(S.E, F);
    S.E2 = rewriteExpr(S.E2, F);
    rewriteStmts(S.Then, F);
    rewriteStmts(S.Else, F);
  }
}

void rewriteProgram(Program &P, const ExprFn &F) {
  for (Process &Proc : P.Procs)
    rewriteStmts(Proc.Body, F);
}

void collectExprRegs(const ExprRef &E, std::set<RegId> &Out) {
  if (!E)
    return;
  std::vector<RegId> Regs;
  E->collectRegs(Regs);
  Out.insert(Regs.begin(), Regs.end());
}

void collectStmtUses(const std::vector<Stmt> &Body, std::set<VarId> &Vars,
                     std::set<RegId> &Regs) {
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Read:
      Vars.insert(S.Var);
      Regs.insert(S.Reg);
      break;
    case StmtKind::Write:
    case StmtKind::Cas:
      Vars.insert(S.Var);
      break;
    case StmtKind::Assign:
      Regs.insert(S.Reg);
      break;
    default:
      break;
    }
    collectExprRegs(S.E, Regs);
    collectExprRegs(S.E2, Regs);
    collectStmtUses(S.Then, Vars, Regs);
    collectStmtUses(S.Else, Vars, Regs);
  }
}

//===----------------------------------------------------------------------===//
// Index remapping (dropping a variable/register/process shifts ids)
//===----------------------------------------------------------------------===//

void remapVarsIn(std::vector<Stmt> &Body, VarId Removed) {
  for (Stmt &S : Body) {
    if ((S.Kind == StmtKind::Read || S.Kind == StmtKind::Write ||
         S.Kind == StmtKind::Cas) &&
        S.Var > Removed)
      --S.Var;
    remapVarsIn(S.Then, Removed);
    remapVarsIn(S.Else, Removed);
  }
}

void remapRegField(std::vector<Stmt> &Body, RegId Removed) {
  for (Stmt &S : Body) {
    if ((S.Kind == StmtKind::Read || S.Kind == StmtKind::Assign) &&
        S.Reg > Removed)
      --S.Reg;
    remapRegField(S.Then, Removed);
    remapRegField(S.Else, Removed);
  }
}

/// Removes register \p R (which must be unused in expressions *and*
/// statement destinations) from \p P, shifting higher ids down.
void dropReg(Program &P, RegId R) {
  P.Regs.erase(P.Regs.begin() + R);
  for (Process &Proc : P.Procs)
    remapRegField(Proc.Body, R);
  rewriteProgram(P, [&](const Expr &E) -> ExprRef {
    if (E.kind() == ExprKind::Reg && E.reg() > R)
      return Expr::makeReg(E.reg() - 1);
    return nullptr;
  });
}

/// Removes unused shared variables and registers; always a semantic
/// no-op, so no predicate call is needed.
void dropUnusedDecls(Program &P) {
  std::set<VarId> UsedVars;
  std::set<RegId> UsedRegs;
  for (const Process &Proc : P.Procs)
    collectStmtUses(Proc.Body, UsedVars, UsedRegs);
  for (VarId X = P.numVars(); X-- > 0;) {
    if (UsedVars.count(X))
      continue;
    P.Vars.erase(P.Vars.begin() + X);
    for (Process &Proc : P.Procs)
      remapVarsIn(Proc.Body, X);
  }
  for (RegId R = P.numRegs(); R-- > 0;)
    if (!UsedRegs.count(R))
      dropReg(P, R);
}

/// Removes process \p PI and its registers.
Program withoutProc(const Program &P, uint32_t PI) {
  Program Q = P;
  Q.Procs.erase(Q.Procs.begin() + PI);
  for (RegDecl &R : Q.Regs)
    if (R.Process > PI)
      --R.Process;
  // Registers owned by the removed process are now unused (their
  // statements went with the process body).
  dropUnusedDecls(Q);
  return Q;
}

} // namespace

uint64_t vbmc::fuzz::countStmts(const Program &P) {
  uint64_t N = 0;
  for (const Process &Proc : P.Procs)
    N += countStmtsIn(Proc.Body);
  return N;
}

MinimizeResult vbmc::fuzz::minimizeProgram(const Program &P,
                                           const MinimizePredicate &StillFails,
                                           const CheckContext &Ctx,
                                           uint64_t MaxCandidates) {
  MinimizeResult Result;
  Result.Prog = P;

  auto tryAccept = [&](Program Candidate) -> bool {
    if (Result.CandidatesTried >= MaxCandidates || Ctx.interrupted()) {
      Result.Truncated = true;
      return false;
    }
    if (!Candidate.validate())
      return false;
    ++Result.CandidatesTried;
    if (!StillFails(Candidate))
      return false;
    Result.Prog = std::move(Candidate);
    ++Result.Reductions;
    return true;
  };

  bool Progress = true;
  while (Progress && !Result.Truncated) {
    Progress = false;

    // Pass 1: drop whole processes (the coarsest cut first).
    for (uint32_t PI = 0; PI < Result.Prog.numProcs();) {
      if (Result.Prog.numProcs() > 1 &&
          tryAccept(withoutProc(Result.Prog, PI)))
        Progress = true; // Same index now names the next process.
      else
        ++PI;
      if (Result.Truncated)
        break;
    }

    // Pass 2: drop single statements, preorder.
    for (uint64_t N = 0; N < countStmts(Result.Prog);) {
      Program Candidate = Result.Prog;
      uint64_t Cursor = N;
      bool Removed = false;
      for (Process &Proc : Candidate.Procs)
        if ((Removed = removeNth(Proc.Body, Cursor)))
          break;
      if (Removed && tryAccept(std::move(Candidate)))
        Progress = true; // Position N now names the next statement.
      else
        ++N;
      if (Result.Truncated)
        break;
    }

    // Pass 3: unwrap if/while into their bodies.
    for (int Mode = 0; Mode <= 1; ++Mode) {
      for (uint64_t N = 0;;) {
        Program Candidate = Result.Prog;
        uint64_t Cursor = N;
        bool Unwrapped = false;
        for (Process &Proc : Candidate.Procs)
          if ((Unwrapped = unwrapNth(Proc.Body, Cursor, Mode)))
            break;
        if (!Unwrapped)
          break;
        if (tryAccept(std::move(Candidate)))
          Progress = true;
        else
          ++N;
        if (Result.Truncated)
          break;
      }
    }

    // Pass 4: shrink constants toward 0 / 1 and nondets to their lower
    // bound. Enumerate by rewrite position; stop when no node is hit.
    // Shrinking must be monotone: the Target=1 pass only applies to
    // constants that are neither 0 nor 1, otherwise a predicate that
    // ignores values accepts 0->1 after 1->0 and the two passes
    // oscillate forever (burning the candidate cap).
    for (Value Target : {Value(0), Value(1)}) {
      for (uint64_t N = 0;;) {
        uint64_t Seen = 0;
        bool Hit = false;
        Program Candidate = Result.Prog;
        rewriteProgram(Candidate, [&](const Expr &E) -> ExprRef {
          if (Hit)
            return nullptr;
          bool Shrinkable =
              (E.kind() == ExprKind::Const && E.constValue() != Target &&
               (Target == Value(0) || E.constValue() != Value(0))) ||
              (Target == Value(0) && E.kind() == ExprKind::Nondet &&
               E.nondetLo() != E.nondetHi());
          if (!Shrinkable)
            return nullptr;
          if (Seen++ != N)
            return nullptr;
          Hit = true;
          if (E.kind() == ExprKind::Nondet)
            return Expr::makeNondet(E.nondetLo(), E.nondetLo());
          return Expr::makeConst(Target);
        });
        if (!Hit)
          break;
        if (tryAccept(std::move(Candidate)))
          Progress = true; // The node at N changed; re-examine it.
        else
          ++N;
        if (Result.Truncated)
          break;
      }
    }

    // Pass 5: garbage-collect declarations orphaned by the cuts above.
    // Semantics-preserving, so applied unconditionally (no predicate
    // call), but only counts as progress via the passes that ran.
    dropUnusedDecls(Result.Prog);
  }
  return Result;
}
