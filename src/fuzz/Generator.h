//===- Generator.h - random program generation for fuzzing ------*- C++ -*-===//
///
/// \file
/// Generates small random concurrent programs spanning the paper's Fig. 1
/// grammar (reads, writes, CAS, fences, bounded nondet, short loops,
/// assume, assert). Promoted from the test-only helper so both the
/// differential property tests and the vbmc-fuzz campaign driver share one
/// generator; programs are deliberately tiny so every engine can exhaust
/// the state space.
///
/// Determinism contract: a program is a pure function of the Rng state and
/// the options. With every extension permille at zero the draw sequence is
/// bit-identical to the original test generator, so the seeded property
/// tests that predate the fuzzing subsystem keep seeing the exact same
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FUZZ_GENERATOR_H
#define VBMC_FUZZ_GENERATOR_H

#include "ir/Program.h"
#include "support/Rng.h"

namespace vbmc::fuzz {

struct GeneratorOptions {
  uint32_t NumVars = 2;
  uint32_t NumProcs = 2;
  uint32_t StmtsPerProc = 3;
  /// Permille chance a memory statement is a CAS.
  uint32_t CasPermille = 150;
  /// Permille chance of a trailing assert over the registers.
  uint32_t AssertPermille = 700;
  /// Value domain for written constants: {1 .. MaxValue}.
  ir::Value MaxValue = 2;

  /// \name Grammar extensions (all off by default; see the determinism
  /// contract in the file comment).
  /// @{
  /// Permille chance a statement slot is a fence.
  uint32_t FencePermille = 0;
  /// Permille chance a statement slot is `$r = nondet(0, MaxValue)`.
  uint32_t NondetPermille = 0;
  /// Permille chance a statement slot is a bounded while loop running a
  /// dedicated counter register from 0 to a random trip count.
  uint32_t LoopPermille = 0;
  /// Permille chance a statement slot is `assume($r <= MaxValue)`-style
  /// register constraint.
  uint32_t AssumePermille = 0;
  /// Largest loop trip count (loops run 1..LoopTripMax iterations). The
  /// SAT cross-check requires the unroll bound L >= LoopTripMax.
  uint32_t LoopTripMax = 2;
  /// Statements inside a generated loop body.
  uint32_t LoopBodyStmts = 1;
  /// @}

  bool usesLoops() const { return LoopPermille > 0; }
};

/// How many of each statement form one (or many) generator calls emitted;
/// the distribution unit tests pin option permilles against these.
struct GeneratorStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cas = 0;
  uint64_t Fences = 0;
  uint64_t Nondets = 0;
  uint64_t Loops = 0;
  uint64_t Assumes = 0;
  uint64_t Asserts = 0;

  /// Statement slots drawn (a loop counts as one slot).
  uint64_t slots() const {
    return Reads + Writes + Cas + Fences + Nondets + Loops + Assumes;
  }
};

/// Generates one random program. Each process gets two general registers
/// (plus a loop counter when loops are enabled); memory statements are
/// reads, constant writes, and (optionally) CAS; one process may end with
/// an assert relating its registers. When \p Stats is given, emitted
/// statement kinds are accumulated into it.
ir::Program makeRandomProgram(Rng &R, const GeneratorOptions &O = {},
                              GeneratorStats *Stats = nullptr);

} // namespace vbmc::fuzz

#endif // VBMC_FUZZ_GENERATOR_H
