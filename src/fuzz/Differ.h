//===- Differ.h - cross-backend differential checking -----------*- C++ -*-===//
///
/// \file
/// The oracle of the differential fuzzing subsystem: runs one program
/// through every *pair* of backends whose results are related by a theorem
/// and reports any disagreement. The checks, each sound for the program
/// shapes it accepts (inapplicable programs are Skipped, never force-fit):
///
///  * sc-subset-ra           SC terminal behaviours are a subset of RA
///                           terminal behaviours (weakening only adds).
///  * ra-vs-translation      K-view-bounded RA assertion reachability
///                           equals reachability of [[P]]_K under
///                           (K+n)-context-bounded SC (the paper's main
///                           theorem), explicit backend.
///  * explicit-vs-sat        The explicit and SAT backends agree on the
///                           translated program. Sound only when every
///                           loop runs at most L iterations (the unroll
///                           is an under-approximation); the generator
///                           guarantees this by construction.
///  * operational-vs-axiomatic  Terminal behaviours of the operational
///                           (Fig. 2) semantics equal the outcomes of the
///                           axiomatic (Herd-style) enumeration, on the
///                           straight-line fragment the oracle supports.
///  * smc-vs-ra              The stateless (DPOR-style) checker finds a
///                           bug iff unbounded RA exploration does.
///  * incremental-vs-fresh   The incremental deepening engine (one MaxK
///                           encoding, assumption-guarded budgets, one
///                           persistent solver) reports the same verdict
///                           AND the same minimal buggy K as solving each
///                           budget with a fresh encoder.
///
/// Every check honors the caller's CheckContext: a program whose state
/// space explodes is reported as Timeout (deadline) or Skipped (state
/// cap), never hangs, and never counts as a discrepancy.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FUZZ_DIFFER_H
#define VBMC_FUZZ_DIFFER_H

#include "ir/Program.h"
#include "support/CheckContext.h"

#include <string>
#include <vector>

namespace vbmc::fuzz {

enum class CheckStatus {
  Pass,     ///< Both sides conclusive and in agreement.
  Mismatch, ///< Both sides conclusive and in DISAGREEMENT — a real bug.
  Skipped,  ///< Check not applicable or a state cap was hit.
  Timeout,  ///< The per-program deadline expired mid-check.
};

const char *checkStatusName(CheckStatus S);

struct CheckOutcome {
  std::string Check;
  CheckStatus Status = CheckStatus::Skipped;
  /// Human-readable explanation (the disagreement for Mismatch, the
  /// reason for Skipped/Timeout).
  std::string Detail;
};

struct DiffOptions {
  /// View-switch budget K for the bounded checks.
  uint32_t K = 1;
  /// Unroll bound for the SAT backend; must be >= the largest loop trip
  /// count the program can take or explicit-vs-sat is unsound (the
  /// fuzzer driver derives it from GeneratorOptions::LoopTripMax).
  uint32_t L = 3;
  /// Timestamp allowance for CAS/fence chains in the translation. Must
  /// be generous: the translation *prunes* runs needing more stamps, so
  /// an undersized allowance shows up as a (false) discrepancy. 0 = auto:
  /// one stamp per CAS/fence statement of the program (each executes at
  /// most once outside loops, and every executed CAS consumes exactly one
  /// stamp), falling back to 8 when a CAS/fence sits inside a loop.
  uint32_t CasAllowance = 0;
  /// Per-engine state/execution cap; exceeding it Skips the check.
  uint64_t MaxStates = 400000;
  /// Memory ceiling in bytes threaded into the vbmc driver's attempts
  /// (the BMC encoder aborts cleanly at this ceiling and the driver may
  /// retry at reduced bounds). 0 = unlimited.
  uint64_t MemLimitBytes = 0;
  /// Enable the translation-based checks (ra-vs-translation and
  /// explicit-vs-sat). These explore the instrumented program's SC state
  /// space — orders of magnitude above the direct semantic checks.
  bool WithTranslation = true;
  /// Enable the SAT cross-check (the most expensive one).
  bool WithSat = true;
  bool WithAxiomatic = true;
  bool WithSmc = true;
};

struct DiffReport {
  std::vector<CheckOutcome> Outcomes;

  bool mismatch() const;
  /// First mismatching outcome, or nullptr.
  const CheckOutcome *firstMismatch() const;
  /// One line per outcome: "check: status (detail)".
  std::string summary() const;
};

/// Names of all checks, in the order runDifferential runs them.
const std::vector<std::string> &allCheckNames();

/// Resolves DiffOptions::CasAllowance for \p P: the explicit value if
/// nonzero, otherwise one stamp per CAS/fence statement (+1), falling
/// back to 8 when a CAS/fence sits inside a loop.
uint32_t casAllowanceFor(const ir::Program &P, const DiffOptions &O);

/// Runs every enabled check on \p P under \p Ctx.
DiffReport runDifferential(const ir::Program &P, const DiffOptions &O,
                           const CheckContext &Ctx);

/// Runs the single check named \p Check (one of allCheckNames()). The
/// minimizer uses this as its replay predicate: a candidate reproducer
/// must still fail the *same* check.
CheckOutcome runCheck(const ir::Program &P, const std::string &Check,
                      const DiffOptions &O, const CheckContext &Ctx);

} // namespace vbmc::fuzz

#endif // VBMC_FUZZ_DIFFER_H
