//===- Fuzzer.h - differential fuzzing campaigns ----------------*- C++ -*-===//
///
/// \file
/// The campaign layer of the fuzzing subsystem: generate program #i from
/// Rng::derived(seed, i) — reproducible from (seed, i) alone — run the
/// differential checks under a per-program slice of the campaign budget,
/// and on discrepancy minimize the witness (Minimizer.h) and write a
/// reproducer file into the corpus directory. Also the replay side: re-run
/// checked-in corpus files (with optional `// expect:` verdict directives)
/// against all backends, which is what the corpus_replay ctest job does.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FUZZ_FUZZER_H
#define VBMC_FUZZ_FUZZER_H

#include "fuzz/Differ.h"
#include "fuzz/Generator.h"
#include "fuzz/Minimizer.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace vbmc::fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// First program index to check. Program #i is a pure function of
  /// (Seed, i), so a campaign over [StartIndex, StartIndex + Count) is
  /// exactly that slice of the full campaign — the farm shards one seed's
  /// universe across workers by handing each a disjoint index range.
  uint64_t StartIndex = 0;
  /// Number of programs to check; 0 = run until the budget expires.
  uint64_t Count = 0;
  /// Campaign wall-clock budget in seconds (0 = unlimited; then Count
  /// must be nonzero).
  double BudgetSeconds = 60;
  /// Budget slice for one generated program, clipped against what is
  /// left of the campaign. Keeps one exploding program from starving
  /// the rest of the run.
  double PerProgramSeconds = 2;
  /// Budget for minimizing one discrepancy (runs on its own clock so a
  /// late find still gets minimized).
  double MinimizeSeconds = 120;
  /// Run the heavyweight checks (translation-based: ra-vs-translation,
  /// explicit-vs-sat) only on every N-th program; 1 = always. The
  /// lightweight semantic checks run on every program.
  uint64_t HeavyEvery = 1;
  /// Directory reproducers are written to; empty = don't write.
  std::string CorpusDir;
  /// Minimize discrepancies before reporting.
  bool Minimize = true;
  /// Run every per-program differential in a forked, resource-governed
  /// child (support/Sandbox.h): a check that segfaults or eats all RAM
  /// becomes a crash-classified, minimized corpus witness and the
  /// campaign continues instead of dying with it.
  bool Isolate = false;
  /// Sandbox memory headroom per program in MB (0 = unlimited).
  uint64_t MemLimitMb = 0;
  /// During corpus replay, additionally run the incremental-vs-fresh
  /// equivalence check at every `// expect:` directive's K: the
  /// incremental deepening engine must report the same verdict and the
  /// same minimal buggy K as fresh per-K solving. Skipped for files
  /// marked `// no-sat`.
  bool IncrementalReplay = false;

  GeneratorOptions Gen;
  DiffOptions Diff;
};

struct FuzzDiscrepancy {
  uint64_t Seed = 0;
  uint64_t Index = 0;
  /// The differential check that mismatched, or "crash" when the program
  /// killed its sandboxed check process (Detail then carries the
  /// classified FailureKind: signal, oom, nonzero exit).
  std::string Check;
  std::string Detail;
  /// Minimized (or original, when minimization is off) reproducer text.
  std::string ProgramText;
  /// Statement count of the reproducer.
  uint64_t Stmts = 0;
  /// Path the reproducer was written to ("" when CorpusDir is empty).
  std::string Path;
};

struct FuzzCampaignResult {
  uint64_t Checked = 0;   ///< Programs generated and run.
  uint64_t Passed = 0;    ///< Programs with no mismatched check.
  uint64_t Skipped = 0;   ///< Check outcomes skipped (inapplicable/caps).
  uint64_t Timeouts = 0;  ///< Check outcomes cut by the deadline.
  /// Sandbox verdicts (only populated when FuzzOptions::Isolate): child
  /// processes that died on a signal / ran out of memory / were killed on
  /// their budget slice, plus reduced-bound retries inside surviving
  /// children. Mirrored from the campaign's sandbox.* stats counters.
  uint64_t SandboxCrashes = 0;
  uint64_t SandboxOoms = 0;
  uint64_t SandboxTimeouts = 0;
  uint64_t SandboxRetries = 0;
  std::vector<FuzzDiscrepancy> Discrepancies;

  bool clean() const { return Discrepancies.empty(); }
};

/// Runs a fuzzing campaign per \p O, logging one line per discrepancy
/// (and a final summary) to \p Log when non-null.
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &O, std::ostream *Log);

/// Regenerates program #\p Index of \p Seed exactly as the campaign
/// would (for reproducing a logged discrepancy offline).
ir::Program regenerateProgram(const FuzzOptions &O, uint64_t Index);

struct ReplayFileResult {
  std::string Path;
  bool Passed = false;
  std::string Message;
};

struct ReplayResult {
  std::vector<ReplayFileResult> Files;
  uint64_t Failures = 0;

  bool clean() const { return Failures == 0; }
};

/// Replays corpus files: each is parsed, run through the differential
/// checks (a mismatch fails the file), and checked against any
/// `// expect: safe|unsafe k=<n>` directives via the vbmc driver.
/// Directories are expanded to their *.ra files, sorted.
ReplayResult replayCorpus(const std::vector<std::string> &Paths,
                          const FuzzOptions &O, std::ostream *Log);

} // namespace vbmc::fuzz

#endif // VBMC_FUZZ_FUZZER_H
