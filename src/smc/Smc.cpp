//===- Smc.cpp - stateless exploration engines ------------------*- C++ -*-===//

#include "smc/Smc.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::smc;
using namespace vbmc::ra;
using ir::FlatProgram;
using ir::Op;

namespace {

class StatelessExplorer {
public:
  StatelessExplorer(const FlatProgram &FP, const SmcOptions &Opts)
      : FP(FP), Opts(Opts), DL(Opts.B.startDeadline()) {}

  SmcResult run() {
    Timer Watch;
    Result.Complete = dfs(initialConfig(FP), 0, 0);
    // A found bug terminates the DFS early; that does not count as an
    // incomplete exploration in the usual SMC sense.
    if (Result.FoundBug)
      Result.Complete = true;
    Result.Seconds = Watch.elapsedSeconds();
    return Result;
  }

private:
  bool anyError(const RaConfig &C) const {
    if (Opts.Goal == SmcGoal::AllDone) {
      for (uint32_t P = 0; P < FP.numProcs(); ++P)
        if (!FP.Procs[P].isDone(C.Pc[P]))
          return false;
      return true;
    }
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      if (FP.Procs[P].isError(C.Pc[P]))
        return true;
    return false;
  }

  /// True when \p P's next instruction is internal (deterministic control
  /// or register work with a unique successor).
  bool nextIsInternal(const RaConfig &C, uint32_t P) const {
    ir::Label L = C.Pc[P];
    const ir::FlatProcess &Proc = FP.Procs[P];
    if (Proc.isFinal(L))
      return false;
    switch (Proc.Instrs[L].K) {
    case Op::Read:
    case Op::Write:
    case Op::Cas:
      return false;
    case Op::Assign:
      // A nondet assignment is a branching choice point, not internal.
      return Proc.Instrs[L].E->kind() != ir::ExprKind::Nondet;
    default:
      return true;
    }
  }

  /// Eagerly executes internal steps of \p P (visible-op granularity).
  /// Returns false when the error label was reached (bug found).
  bool fastForward(RaConfig &C, uint32_t P, uint64_t &Depth) {
    // Internal steps never read messages, so the switch count is
    // unaffected here.
    std::vector<RaStep> Steps;
    while (nextIsInternal(C, P)) {
      Steps.clear();
      enumerateStepsOf(FP, C, P, Steps);
      if (Steps.empty())
        return true; // Blocked assume: nothing to do.
      assert(Steps.size() == 1 && "internal step must be deterministic");
      C = std::move(Steps[0].Next);
      ++Depth;
      ++Result.Steps;
      if (anyError(C)) {
        Result.FoundBug = true;
        return false;
      }
    }
    return true;
  }

  /// Depth-first stateless search. Returns false when exploration was cut
  /// short (budget) — bubbles up to mark the result incomplete.
  bool dfs(RaConfig C, uint64_t Depth, uint32_t Switches) {
    if (Result.FoundBug)
      return true;
    if (DL.expired()) {
      Result.TimedOut = true;
      return false;
    }
    if (Opts.B.Work && Result.Executions >= Opts.B.Work)
      return false;
    if (Depth > Opts.MaxStepsPerRun)
      return false;
    if (anyError(C)) {
      Result.FoundBug = true;
      return true;
    }

    std::vector<RaStep> Steps;
    bool VisibleGranularity = Opts.Strategy != SmcStrategy::Naive;

    if (VisibleGranularity) {
      // Execute internal steps of each runnable process eagerly; the
      // choice points are only the visible operations. Internal runs of
      // distinct processes commute, so fast-forwarding all of them first
      // is a sound reduction.
      for (uint32_t P = 0; P < FP.numProcs(); ++P) {
        if (!fastForward(C, P, Depth))
          return true; // Bug found during fast-forwarding.
      }
      enumerateSteps(FP, C, Steps);
    } else {
      enumerateSteps(FP, C, Steps);
    }

    if (Steps.empty()) {
      ++Result.Executions;
      return true;
    }

    if (Opts.Strategy == SmcStrategy::Graph) {
      // RCMC-like order: last process first, newest messages first.
      std::reverse(Steps.begin(), Steps.end());
    }

    bool Complete = true;
    for (RaStep &S : Steps) {
      uint32_t NewSwitches = Switches + (S.ViewSwitch ? 1 : 0);
      if (Opts.BoundViewSwitches && NewSwitches > Opts.ViewSwitchBound)
        continue; // Pruned, not incompleteness: the bound is the query.
      ++Result.Steps;
      Complete &= dfs(std::move(S.Next), Depth + 1, NewSwitches);
      if (Result.FoundBug)
        return true;
      if (Result.TimedOut)
        return false;
    }
    return Complete;
  }

  const FlatProgram &FP;
  const SmcOptions &Opts;
  Deadline DL;
  SmcResult Result;
};

} // namespace

SmcResult vbmc::smc::exploreSmc(const FlatProgram &FP,
                                const SmcOptions &Opts) {
  StatelessExplorer E(FP, Opts);
  return E.run();
}
