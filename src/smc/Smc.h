//===- Smc.h - stateless model checking baselines -----------------*- C++ -*-===//
///
/// \file
/// The comparison baselines of Section 7: stateless model checkers that
/// explore executions of the RA semantics by depth-first search without a
/// visited set, stopping at the first assertion violation. Three
/// strategies mirror the three tools of the paper's evaluation:
///
///  * Naive ("CDSChecker-like"): instruction-granularity DFS, processes
///    in ascending order, message choices oldest-first. Explores the raw
///    interleaving tree.
///  * Dpor ("Tracer-like"): visible-operation granularity — internal
///    steps of the running process are executed eagerly, so scheduling
///    choice points only occur at reads/writes/CAS. This collapses the
///    interleavings of local computations, the bulk of the reduction a
///    reads-from DPOR achieves on these benchmarks; processes ascending,
///    messages oldest-first.
///  * Graph ("RCMC-like"): visible-operation granularity with the
///    opposite exploration order (processes descending, messages
///    newest-first), standing in for RCMC's structurally different
///    search; the paper observes exactly this order-dependence when the
///    injected bug moves between the first and last thread (Tables 3/4).
///
/// These engines are honest baselines, not reimplementations of the
/// tools; DESIGN.md discusses the substitution.
///
/// All engines require loop-bounded input (unroll first, as the paper
/// does by "engineering the benchmarks so that all the tools consider L
/// iterations as the upper bound for the loops").
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SMC_SMC_H
#define VBMC_SMC_SMC_H

#include "ra/RaSemantics.h"
#include "support/Budget.h"
#include "support/Timer.h"

#include <cstdint>

namespace vbmc::smc {

enum class SmcStrategy {
  Naive,
  Dpor,
  Graph,
};

/// What the stateless search looks for.
enum class SmcGoal {
  AnyError, ///< Some process at its error label.
  AllDone,  ///< All processes terminated (used by the PCP reduction).
};

struct SmcOptions {
  SmcStrategy Strategy = SmcStrategy::Dpor;
  SmcGoal Goal = SmcGoal::AnyError;
  /// Optional view-switch budget: runs using more switches are pruned
  /// (goal-directed analogue of the paper's K bound). 0 = unbounded.
  uint32_t ViewSwitchBound = 0;
  bool BoundViewSwitches = false;
  /// Resource budget: B.Seconds is the wall clock (0 = unlimited),
  /// B.Work caps completed executions. See support/Budget.h for the
  /// shared vocabulary.
  support::Budget B;
  /// Cap on the length of a single execution (guards against unbounded
  /// loops slipping through).
  uint64_t MaxStepsPerRun = 1u << 20;
};

struct SmcResult {
  /// True when an assertion violation was found.
  bool FoundBug = false;
  /// True when the whole (bounded) execution space was explored.
  bool Complete = false;
  bool TimedOut = false;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
  double Seconds = 0;
};

/// Runs the selected stateless exploration on \p FP under RA.
SmcResult exploreSmc(const ir::FlatProgram &FP, const SmcOptions &Opts);

} // namespace vbmc::smc

#endif // VBMC_SMC_SMC_H
