//===- Translate.cpp - implementation of [[.]]_K ----------------*- C++ -*-===//

#include "translation/Translate.h"

#include "support/Diagnostics.h"
#include "support/FaultInjection.h"

using namespace vbmc;
using namespace vbmc::ir;
using namespace vbmc::translation;

namespace {

bool bodyHasFence(const std::vector<Stmt> &Body) {
  for (const Stmt &S : Body)
    if (S.Kind == StmtKind::Fence || bodyHasFence(S.Then) ||
        bodyHasFence(S.Else))
      return true;
  return false;
}

void rewriteFences(std::vector<Stmt> &Body, VarId FenceVar) {
  for (Stmt &S : Body) {
    if (S.Kind == StmtKind::Fence)
      S = Stmt::cas(FenceVar, constE(0), constE(0));
    rewriteFences(S.Then, FenceVar);
    rewriteFences(S.Else, FenceVar);
  }
}

/// Builds [[Prog]]_K. One instance per call; members cache the ids of the
/// instrumentation variables/registers.
class Translator {
public:
  Translator(const Program &In, const TranslationOptions &Opts)
      : In(In), Opts(Opts), K(Opts.K), T(Opts.timeBound()),
        NV(In.numVars()) {}

  TranslationResult run() {
    declareSharedState();
    declareProcesses();
    for (uint32_t P = 0; P < In.numProcs(); ++P)
      translateProcess(P);
    TranslationResult R;
    R.Prog = std::move(Out);
    R.ContextBound = K + In.numProcs();
    R.InputVars = NV;
    R.SRaVar = SRa;
    R.UsedStampVars = UsedStamp;
    return R;
  }

private:
  /// \name Output shared-state ids
  /// @{
  std::vector<VarId> MsVar;              ///< [slot] -> ms<i>_var
  std::vector<std::vector<VarId>> MsT;   ///< [slot][x]
  std::vector<std::vector<VarId>> MsV;   ///< [slot][x]
  std::vector<std::vector<VarId>> MsL;   ///< [slot][x]
  VarId MessagesUsed = 0;
  VarId SRa = 0;
  std::vector<std::vector<VarId>> UsedStamp; ///< [x][t-1], t in 1..T
  /// @}

  /// \name Per-process register ids (filled by translateProcess)
  /// @{
  std::vector<RegId> VwT, VwV, VwL; ///< [x]
  RegId GChoice = 0, GMsg = 0, GStamp = 0, GA = 0, GB = 0;
  /// @}

  void declareSharedState() {
    // Keep the input variables (Fig. 4 keeps `var x*`); the instrumented
    // code never touches them, they only stabilize naming.
    for (const std::string &V : In.Vars)
      Out.addVar(V);

    MsVar.resize(K);
    MsT.assign(K, std::vector<VarId>(NV));
    MsV.assign(K, std::vector<VarId>(NV));
    MsL.assign(K, std::vector<VarId>(NV));
    for (uint32_t I = 0; I < K; ++I) {
      std::string Prefix = "ms" + std::to_string(I) + "_";
      MsVar[I] = Out.addVar(Prefix + "var");
      for (VarId X = 0; X < NV; ++X) {
        MsT[I][X] = Out.addVar(Prefix + In.Vars[X] + "_t");
        MsV[I][X] = Out.addVar(Prefix + In.Vars[X] + "_v");
        MsL[I][X] = Out.addVar(Prefix + In.Vars[X] + "_l");
      }
    }
    MessagesUsed = Out.addVar("msgs_used");
    SRa = Out.addVar("s_ra");
    UsedStamp.assign(NV, {});
    for (VarId X = 0; X < NV; ++X)
      for (uint32_t S = 1; S <= T; ++S)
        UsedStamp[X].push_back(
            Out.addVar("used_" + In.Vars[X] + "_" + std::to_string(S)));
  }

  void declareProcesses() {
    // Processes and original registers keep their indices so statement
    // expressions can be reused verbatim.
    for (const Process &P : In.Procs)
      Out.addProcess(P.Name);
    for (const RegDecl &R : In.Regs)
      Out.addReg(R.Process, R.Name);
  }

  void translateProcess(uint32_t P) {
    VwT.resize(NV);
    VwV.resize(NV);
    VwL.resize(NV);
    for (VarId X = 0; X < NV; ++X) {
      VwT[X] = Out.addReg(P, "vw_" + In.Vars[X] + "_t");
      VwV[X] = Out.addReg(P, "vw_" + In.Vars[X] + "_v");
      VwL[X] = Out.addReg(P, "vw_" + In.Vars[X] + "_l");
    }
    GChoice = Out.addReg(P, "g_choice");
    GMsg = Out.addReg(P, "g_msg");
    GStamp = Out.addReg(P, "g_stamp");
    GA = Out.addReg(P, "g_a");
    GB = Out.addReg(P, "g_b");

    // init_proc(): the initial view maps every variable to the initial
    // message (timestamp 0, value 0), and that timestamp is exact.
    std::vector<Stmt> Body;
    for (VarId X = 0; X < NV; ++X)
      Body.push_back(Stmt::assign(VwL[X], constE(1)));
    translateStmts(In.Procs[P].Body, Body);
    Out.Procs[P].Body = std::move(Body);
  }

  void translateStmts(const std::vector<Stmt> &InBody,
                      std::vector<Stmt> &OutBody) {
    for (const Stmt &S : InBody)
      translateStmt(S, OutBody);
  }

  void translateStmt(const Stmt &S, std::vector<Stmt> &OutBody) {
    switch (S.Kind) {
    case StmtKind::Read:
      emitRead(S.Var, S.Reg, OutBody);
      return;
    case StmtKind::Write:
      emitWrite(S.Var, S.E, OutBody);
      return;
    case StmtKind::Cas:
      emitCas(S.Var, S.E, S.E2, OutBody);
      return;
    case StmtKind::Assign:
    case StmtKind::Assume:
    case StmtKind::Assert:
    case StmtKind::Term:
      OutBody.push_back(S);
      return;
    case StmtKind::If: {
      Stmt Copy = S;
      Copy.Then.clear();
      Copy.Else.clear();
      translateStmts(S.Then, Copy.Then);
      translateStmts(S.Else, Copy.Else);
      OutBody.push_back(std::move(Copy));
      return;
    }
    case StmtKind::While: {
      Stmt Copy = S;
      Copy.Then.clear();
      translateStmts(S.Then, Copy.Then);
      OutBody.push_back(std::move(Copy));
      return;
    }
    case StmtKind::Fence:
      reportFatalError("fence reached the translator; call desugarFences");
      return;
    case StmtKind::AtomicBegin:
    case StmtKind::AtomicEnd:
      // Input atomic sections nest inside the per-access sections the
      // translation emits; the SC semantics supports re-entrancy.
      OutBody.push_back(S);
      return;
    }
  }

  /// \name Emission helpers (all append to the given statement list)
  /// @{

  /// assume(<reg> == <v>) without clobbering any scratch register.
  static Stmt assumeRegEq(RegId R, Value V) {
    return Stmt::assume(eqE(regE(R), constE(V)));
  }

  /// Algorithm 5, update_view(x, g_msg), inlined as an if-chain over the
  /// K message slots. Clobbers GB.
  void emitUpdateView(VarId X, std::vector<Stmt> &OutBody) {
    for (uint32_t I = 0; I < K; ++I) {
      std::vector<Stmt> Slot;
      // assume(m_var == &x)
      Slot.push_back(Stmt::read(GB, MsVar[I]));
      Slot.push_back(assumeRegEq(GB, static_cast<Value>(X) + 1));
      // assume(view_x_l)
      Slot.push_back(assumeRegEq(VwL[X], 1));
      // assume(view_x_t <= m_view_x_t)
      Slot.push_back(Stmt::read(GB, MsT[I][X]));
      Slot.push_back(Stmt::assume(leE(regE(VwT[X]), regE(GB))));
      // for all y: assume(view_y_l)
      for (VarId Y = 0; Y < NV; ++Y)
        Slot.push_back(assumeRegEq(VwL[Y], 1));
      // for all y: if (view_y_t <= m_view_y_t) update t and v.
      for (VarId Y = 0; Y < NV; ++Y) {
        Slot.push_back(Stmt::read(GB, MsT[I][Y]));
        std::vector<Stmt> Upd;
        Upd.push_back(Stmt::assign(VwT[Y], regE(GB)));
        Upd.push_back(Stmt::read(GB, MsV[I][Y]));
        Upd.push_back(Stmt::assign(VwV[Y], regE(GB)));
        // Published views are fully legit (Algorithm 3 asserts every
        // view_y_l before publishing), so the merged stamp is exact.
        Upd.push_back(Stmt::assign(VwL[Y], constE(1)));
        Slot.push_back(Stmt::ifThen(leE(regE(VwT[Y]), regE(GB)),
                                    std::move(Upd)));
      }
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GMsg), constE(static_cast<Value>(I))),
                       std::move(Slot)));
    }
  }

  /// The view-altering prologue shared by reads and CAS: guess a published
  /// message, check the budget, merge. Emitted only when K > 0. Clobbers
  /// GA, GB, GMsg.
  void emitViewAlteringRead(VarId X, std::vector<Stmt> &OutBody) {
    // assume(s_RA < K); s_RA++ (budget accounting first frees GA).
    OutBody.push_back(Stmt::read(GA, SRa));
    OutBody.push_back(
        Stmt::assume(ltE(regE(GA), constE(static_cast<Value>(K)))));
    OutBody.push_back(Stmt::write(SRa, addE(regE(GA), constE(1))));
    // message_num <- nondet(0, messages_used - 1)
    OutBody.push_back(
        Stmt::assign(GMsg, nondetE(0, static_cast<Value>(K) - 1)));
    OutBody.push_back(Stmt::read(GB, MessagesUsed));
    OutBody.push_back(Stmt::assume(ltE(regE(GMsg), regE(GB))));
    emitUpdateView(X, OutBody);
  }

  /// Takes abstract timestamp GStamp from variable \p X's pool: it must be
  /// unused, and becomes used. Clobbers GA.
  void emitTakeStamp(VarId X, std::vector<Stmt> &OutBody) {
    for (uint32_t S = 1; S <= T; ++S) {
      std::vector<Stmt> Arm;
      Arm.push_back(Stmt::read(GA, UsedStamp[X][S - 1]));
      Arm.push_back(assumeRegEq(GA, 0));
      Arm.push_back(Stmt::write(UsedStamp[X][S - 1], constE(1)));
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GStamp), constE(static_cast<Value>(S))),
                       std::move(Arm)));
    }
  }

  /// Algorithm 3, publish(x): requires every view entry legit, appends the
  /// current view to message_store. Clobbers GB.
  void emitPublish(VarId X, std::vector<Stmt> &OutBody) {
    for (VarId Y = 0; Y < NV; ++Y)
      OutBody.push_back(assumeRegEq(VwL[Y], 1));
    OutBody.push_back(Stmt::read(GB, MessagesUsed));
    OutBody.push_back(
        Stmt::assume(ltE(regE(GB), constE(static_cast<Value>(K)))));
    for (uint32_t I = 0; I < K; ++I) {
      std::vector<Stmt> Slot;
      Slot.push_back(Stmt::write(MsVar[I], constE(static_cast<Value>(X) + 1)));
      for (VarId Y = 0; Y < NV; ++Y) {
        Slot.push_back(Stmt::write(MsT[I][Y], regE(VwT[Y])));
        Slot.push_back(Stmt::write(MsV[I][Y], regE(VwV[Y])));
        Slot.push_back(Stmt::write(MsL[I][Y], regE(VwL[Y])));
      }
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GB), constE(static_cast<Value>(I))),
                       std::move(Slot)));
    }
    OutBody.push_back(Stmt::write(MessagesUsed, addE(regE(GB), constE(1))));
  }

  /// Algorithm 4: [[ $r = x ]].
  void emitRead(VarId X, RegId Dst, std::vector<Stmt> &OutBody) {
    OutBody.push_back(Stmt::atomicBegin());
    if (K > 0) {
      OutBody.push_back(Stmt::assign(GChoice, nondetE(0, 1)));
      std::vector<Stmt> Altering;
      emitViewAlteringRead(X, Altering);
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GChoice), constE(1)), std::move(Altering)));
    }
    // val($r) = view_x_v (line 7).
    OutBody.push_back(Stmt::assign(Dst, regE(VwV[X])));
    OutBody.push_back(Stmt::atomicEnd());
  }

  /// Algorithm 2: [[ x = e ]].
  void emitWrite(VarId X, const ExprRef &E, std::vector<Stmt> &OutBody) {
    OutBody.push_back(Stmt::atomicBegin());
    OutBody.push_back(Stmt::assign(GChoice, nondetE(0, 1)));

    // Guessed-stamp arm (lines 2-10).
    std::vector<Stmt> Stamped;
    Stamped.push_back(
        Stmt::assign(GStamp, nondetE(1, static_cast<Value>(T))));
    Stamped.push_back(Stmt::assume(ltE(regE(VwT[X]), regE(GStamp))));
    emitTakeStamp(X, Stamped);
    Stamped.push_back(Stmt::assign(VwT[X], regE(GStamp)));
    Stamped.push_back(Stmt::assign(VwL[X], constE(1)));
    Stamped.push_back(Stmt::assign(VwV[X], E));
    if (K > 0 && !fault::enabled("translation.drop-publish")) {
      Stamped.push_back(Stmt::assign(GChoice, nondetE(0, 1)));
      std::vector<Stmt> Pub;
      emitPublish(X, Pub);
      Stamped.push_back(
          Stmt::ifThen(eqE(regE(GChoice), constE(1)), std::move(Pub)));
    }

    // Unstamped arm (lines 12-13).
    std::vector<Stmt> Unstamped;
    Unstamped.push_back(Stmt::assign(VwV[X], E));
    Unstamped.push_back(Stmt::assign(VwL[X], constE(0)));

    OutBody.push_back(Stmt::ifThen(eqE(regE(GChoice), constE(1)),
                                   std::move(Stamped), std::move(Unstamped)));
    OutBody.push_back(Stmt::atomicEnd());
  }

  /// [[ cas(x, e1, e2) ]] (derived; see the file comment).
  void emitCas(VarId X, const ExprRef &Expected, const ExprRef &New,
               std::vector<Stmt> &OutBody) {
    OutBody.push_back(Stmt::atomicBegin());
    if (K > 0) {
      OutBody.push_back(Stmt::assign(GChoice, nondetE(0, 1)));
      std::vector<Stmt> Altering;
      emitViewAlteringRead(X, Altering);
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GChoice), constE(1)), std::move(Altering)));
    }
    // The read part must see the expected value at an exact stamp.
    OutBody.push_back(assumeRegEq(VwL[X], 1));
    OutBody.push_back(Stmt::assume(eqE(regE(VwV[X]), Expected)));
    // The write part takes exactly stamp t+1 (Fig. 2 CAS rule).
    OutBody.push_back(Stmt::assign(GStamp, addE(regE(VwT[X]), constE(1))));
    OutBody.push_back(
        Stmt::assume(leE(regE(GStamp), constE(static_cast<Value>(T)))));
    emitTakeStamp(X, OutBody);
    OutBody.push_back(Stmt::assign(VwT[X], regE(GStamp)));
    OutBody.push_back(Stmt::assign(VwV[X], New));
    OutBody.push_back(Stmt::assign(VwL[X], constE(1)));
    if (K > 0 && !fault::enabled("translation.drop-publish")) {
      OutBody.push_back(Stmt::assign(GChoice, nondetE(0, 1)));
      std::vector<Stmt> Pub;
      emitPublish(X, Pub);
      OutBody.push_back(
          Stmt::ifThen(eqE(regE(GChoice), constE(1)), std::move(Pub)));
    }
    OutBody.push_back(Stmt::atomicEnd());
  }
  /// @}

  const Program &In;
  [[maybe_unused]] const TranslationOptions &Opts;
  uint32_t K;
  uint32_t T;
  uint32_t NV;
  Program Out;
};

} // namespace

Program vbmc::translation::desugarFences(const Program &P) {
  Program Out = P;
  bool Any = false;
  for (const Process &Proc : Out.Procs)
    Any |= bodyHasFence(Proc.Body);
  if (!Any)
    return Out;
  VarId FenceVar = Out.addVar("__fence");
  for (Process &Proc : Out.Procs)
    rewriteFences(Proc.Body, FenceVar);
  return Out;
}

TranslationResult
vbmc::translation::translateToSc(const Program &P,
                                 const TranslationOptions &Opts,
                                 StatsRegistry *Stats) {
  Timer Watch;
  Program Desugared = desugarFences(P);
  auto Valid = Desugared.validate();
  if (!Valid)
    reportFatalError("translateToSc: invalid input program: " +
                     Valid.error().str());
  TranslationResult TR = Translator(Desugared, Opts).run();
  if (Stats) {
    Stats->addSeconds("translate.seconds", Watch.elapsedSeconds());
    Stats->addCount("translate.runs");
    Stats->addCount("translate.out_vars", TR.Prog.numVars());
  }
  return TR;
}
