//===- Translate.h - the view-bounded RA-to-SC translation -------*- C++ -*-===//
///
/// \file
/// The paper's core contribution: the code-to-code map [[.]]_K (Fig. 4,
/// Algorithms 1-5) taking an RA program and a view-switch budget K to an SC
/// program whose (K+n)-context-bounded reachability coincides with the
/// K-bounded-view-switching reachability of the input.
///
/// Data-structure lowering (our language has scalars only, so the paper's
/// records/arrays become families of shared variables; all families are
/// statically sized by K and the timestamp domain, keeping the translation
/// polynomial exactly as Theorem-level claims require):
///
///  * `View` (one per process) -> registers `vw_<x>_t`, `vw_<x>_v`,
///    `vw_<x>_l` of that process (timestamp, value, and the "legit" bit
///    saying the timestamp is exact);
///  * `message_store[K]` -> shared `ms<i>_var` (holding VarId+1; 0 = slot
///    empty) and `ms<i>_<x>_{t,v,l}`;
///  * `messages_used`, `s_RA` -> shared scalars;
///  * `avail_x[Time]` -> shared `used_<x>_<t>` for t in 1..T with *negated*
///    polarity (0 = available), which makes the all-zero initial store the
///    correct initial state and removes the need for the paper's Main
///    initializer process (Algorithm 1): with nothing to initialize, no
///    extra context is spent, and the K+n context bound is exact.
///
/// Statement mapping:
///  * reads follow Algorithm 4 + Algorithm 5 (update_view);
///  * writes follow Algorithm 2 + Algorithm 3 (publish);
///  * cas (omitted in the paper "for ease of presentation") is derived
///    here: an optional view-altering read exactly like Algorithm 4's
///    lines 1-6, then `assume(vw_x_l && vw_x_v == expected)`, then a write
///    whose timestamp is *forced* to `vw_x_t + 1` (the Fig. 2 CAS rule
///    writes at exactly t+1), checked against the used-pool so no other
///    guessed stamp ever collides with it, then an optional publish;
///  * fences are desugared to `cas(__fence, 0, 0)` first (Section 6);
///  * every other statement maps to itself (Fig. 4).
///
/// Each simulated memory access is wrapped in an atomic section: the
/// instrumentation block corresponds to one indivisible RA transition, so
/// the SC scheduler may only preempt between simulated events (this is
/// what Lazy-CSeq's is_init_round/is_end_round brackets achieve in the
/// paper's prototype).
///
/// **Timestamp domain.** The paper shows 2K abstract stamps per variable
/// suffice without CAS. Every executed CAS additionally consumes the stamp
/// adjacent to the message it reads, so the domain is widened by a
/// configurable CasAllowance (runs needing more stamps are pruned, keeping
/// the analysis an under-approximation, never unsound).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_TRANSLATION_TRANSLATE_H
#define VBMC_TRANSLATION_TRANSLATE_H

#include "ir/Program.h"
#include "support/CheckContext.h"

#include <cstdint>

namespace vbmc::translation {

struct TranslationOptions {
  /// The view-switch budget K.
  uint32_t K = 2;
  /// Extra abstract timestamps per variable for CAS/fence chains; the
  /// timestamp domain is {1 .. 2K + max(CasAllowance, 1)} (at least one
  /// stamp always exists so the guessed-stamp arm of Algorithm 2 is
  /// well-formed even at K = 0).
  uint32_t CasAllowance = 8;

  uint32_t timeBound() const {
    return 2 * K + (CasAllowance < 1 ? 1 : CasAllowance);
  }
};

struct TranslationResult {
  /// The SC program [[Prog]]_K.
  ir::Program Prog;
  /// The context-switch budget K + n to hand to the SC backend.
  uint32_t ContextBound = 0;
  /// Number of shared variables of the *input* (after fence desugaring);
  /// useful for diagnostics.
  uint32_t InputVars = 0;
  /// VarId (in Prog) of the translation's `s_ra` view-switch counter:
  /// every view-altering read increments it under assume(s_ra < K), so
  /// its final value counts exactly the view switches an execution
  /// consumed. The incremental deepening engine keys its per-budget
  /// assumption literals on this variable.
  ir::VarId SRaVar = 0;
  /// VarIds (in Prog) of the `used<x>_t<t>` stamp markers, indexed
  /// [x][t-1] for input variable x and abstract timestamp t in
  /// 1..timeBound(). Each is a monotone 0 -> 1 flag set exactly when
  /// stamp t is consumed for x, so "final value 0" means the execution
  /// never drew that stamp. The incremental deepening engine uses them
  /// to shrink the timestamp domain per budget: a budget-k run may only
  /// consume stamps <= 2k + max(CasAllowance, 1), matching the pool a
  /// fresh budget-k translation would have.
  std::vector<std::vector<ir::VarId>> UsedStampVars;
};

/// Replaces every `fence` statement by `cas(__fence, 0, 0)` on a fresh
/// shared variable (no-op if the program has no fences). Applied by
/// translateToSc, exposed for tests.
ir::Program desugarFences(const ir::Program &P);

/// Applies [[.]]_K to \p P. \p P must validate. When \p Stats is given,
/// records translate.* stage statistics into it.
TranslationResult translateToSc(const ir::Program &P,
                                const TranslationOptions &Opts,
                                StatsRegistry *Stats = nullptr);

} // namespace vbmc::translation

#endif // VBMC_TRANSLATION_TRANSLATE_H
