//===- Batch.cpp - shed-aware request batch over a serve client -----------===//

#include "serve/Batch.h"

#include <chrono>
#include <map>
#include <thread>

using namespace vbmc;
using namespace vbmc::serve;

namespace {

using Clock = std::chrono::steady_clock;

/// Per-request client-side state, erased on the terminal response.
struct Tracked {
  Request Req;
  /// When the request first went out: the anchor the original deadline
  /// is measured from, across every resubmit.
  Clock::time_point FirstSent;
};

} // namespace

BatchResult vbmc::serve::runBatch(Client &C,
                                  const std::vector<Request> &Requests,
                                  const BatchOptions &O) {
  BatchResult Out;
  std::map<std::string, Tracked> Pending;
  std::map<std::string, uint64_t> ShedRetries;
  std::vector<std::pair<Clock::time_point, std::string>> Resubmit;

  const auto Start = Clock::now();
  auto secondsLeft = [&] {
    return O.TimeoutSeconds -
           std::chrono::duration<double>(Clock::now() - Start).count();
  };
  auto finish = [&](const Response &R) {
    ++Out.Answered;
    if (R.Status != "ok")
      ++Out.NotOk;
    // Terminal: every per-request record dies with the answer, so the
    // batch's footprint tracks the in-flight set.
    Pending.erase(R.Id);
    ShedRetries.erase(R.Id);
    if (O.OnResponse)
      O.OnResponse(R);
  };

  for (const Request &R : Requests) {
    if (!C.send(R)) {
      Out.LastError = "daemon went away mid-send";
      return Out;
    }
    ++Out.Sent;
    Pending.emplace(R.Id, Tracked{R, Clock::now()});
  }

  Response R;
  std::string Err;
  while (Out.Answered < Out.Sent) {
    // Fire every resubmit that has come due.
    const auto Now = Clock::now();
    bool SendFailed = false;
    for (size_t I = 0; I < Resubmit.size();) {
      if (Resubmit[I].first > Now) {
        ++I;
        continue;
      }
      auto It = Pending.find(Resubmit[I].second);
      if (It == Pending.end()) {
        SendFailed = true;
      } else {
        // The deadline the daemon sees shrinks by the time already spent
        // since the FIRST send: re-admission must not restart the
        // request's clock. (0 means "server default", which has no
        // budget to preserve.)
        Request Wire = It->second.Req;
        if (Wire.DeadlineSeconds > 0) {
          double Spent = std::chrono::duration<double>(
                             Now - It->second.FirstSent)
                             .count();
          Wire.DeadlineSeconds =
              std::max(0.001, Wire.DeadlineSeconds - Spent);
          Out.LastResubmitDeadline = Wire.DeadlineSeconds;
        }
        if (!C.send(Wire))
          SendFailed = true;
        else
          ++Out.Resubmits;
      }
      Resubmit[I] = Resubmit.back();
      Resubmit.pop_back();
    }
    double Left = secondsLeft();
    if (Left <= 0) {
      Out.LastError = "batch timeout";
      break;
    }
    if (SendFailed) {
      Out.LastError = "daemon went away mid-resubmit";
      break;
    }
    double Poll = std::min(Left, 0.25);
    if (!C.receive(R, Poll, &Err)) {
      if (Err == "timeout")
        continue;
      if (!Resubmit.empty()) {
        // Connection is unhealthy but resubmits are queued; give them a
        // chance to fire (their send failing ends the loop).
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      Out.LastError = Err;
      break;
    }
    auto It = Pending.find(R.Id);
    if (It == Pending.end())
      continue; // Duplicate or unknown id; already answered.
    if (R.Status == "shed") {
      // A shed is terminal once the retry budget — or the request's own
      // deadline — is exhausted; otherwise honor the hint and resubmit.
      bool BudgetLeft =
          It->second.Req.DeadlineSeconds <= 0 ||
          std::chrono::duration<double>(Clock::now() - It->second.FirstSent)
                  .count() < It->second.Req.DeadlineSeconds;
      if (BudgetLeft && ShedRetries[R.Id]++ < O.MaxShedRetries) {
        Out.RetryMapPeak =
            std::max<uint64_t>(Out.RetryMapPeak, ShedRetries.size());
        double Wait = std::min(std::max(R.RetryAfterSeconds, 0.01), 5.0);
        Resubmit.emplace_back(
            Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(Wait)),
            R.Id);
        continue;
      }
      Out.RetryMapPeak =
          std::max<uint64_t>(Out.RetryMapPeak, ShedRetries.size());
      finish(R);
      continue;
    }
    finish(R);
  }
  Out.RetryMapLeft = ShedRetries.size();
  if (!Out.complete() && Out.LastError.empty())
    Out.LastError = "responses missing";
  return Out;
}
