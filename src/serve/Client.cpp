//===- Client.cpp - talking to a running vbmc-serve daemon ----------------===//

#include "serve/Client.h"

namespace vbmc::serve {

bool Client::connect(const std::string &SocketPath, double TimeoutSeconds,
                     std::string *Err) {
  sockets::Fd F = sockets::connectUnix(SocketPath, TimeoutSeconds, Err);
  if (!F.valid())
    return false;
  Chan = sockets::LineChannel(std::move(F));
  return true;
}

bool Client::send(const Request &R) {
  return Chan.writeLine(formatRequestLine(R));
}

bool Client::sendLine(const std::string &Line) {
  return Chan.writeLine(Line);
}

bool Client::finishSending() { return Chan.shutdownWrite(); }

bool Client::receive(Response &Out, double TimeoutSeconds, std::string *Err) {
  std::string Line;
  // Responses are run reports plus framing; allow generous lines.
  sockets::ReadStatus St = Chan.readLine(Line, 16u << 20, TimeoutSeconds);
  if (St != sockets::ReadStatus::Line) {
    if (Err)
      *Err = sockets::readStatusName(St);
    return false;
  }
  std::string PErr;
  if (!parseResponseLine(Line, Out, PErr)) {
    if (Err)
      *Err = "malformed response: " + PErr;
    return false;
  }
  return true;
}

} // namespace vbmc::serve
