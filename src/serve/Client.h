//===- Client.h - talking to a running vbmc-serve daemon ---------*- C++ -*-===//
///
/// \file
/// A thin client for the vbmc-serve line protocol: connect, send request
/// lines, receive response lines. Backs `vbmc-serve --connect` and the
/// serve tests/benches.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SERVE_CLIENT_H
#define VBMC_SERVE_CLIENT_H

#include "serve/Serve.h"
#include "support/Socket.h"

#include <string>

namespace vbmc::serve {

class Client {
public:
  Client() = default;

  /// Connects to the daemon at \p SocketPath, waiting up to
  /// \p TimeoutSeconds for it to come up. False with \p Err on failure.
  bool connect(const std::string &SocketPath, double TimeoutSeconds,
               std::string *Err);

  bool connected() const { return Chan.valid(); }

  /// Sends one request. False on a write error (daemon gone).
  bool send(const Request &R);

  /// Sends a raw line verbatim (tests exercising malformed input).
  bool sendLine(const std::string &Line);

  /// Half-closes the write side: "no more requests", keep reading.
  bool finishSending();

  /// Receives the next response line, waiting up to \p TimeoutSeconds
  /// (<= 0 = forever). False on EOF/timeout/error or a malformed line,
  /// with the reason in \p Err.
  bool receive(Response &Out, double TimeoutSeconds, std::string *Err);

  void close() { Chan.close(); }

private:
  sockets::LineChannel Chan;
};

} // namespace vbmc::serve

#endif // VBMC_SERVE_CLIENT_H
