//===- Serve.cpp - the crash-tolerant verification daemon -----------------===//
//
// Process shape: the daemon parent never runs a check itself. It forks
// one persistent worker process per pool slot at startup; each worker
// owns a driver::Engine whose LRU encoding cache warms across the
// requests that worker serves, and talks to its slot thread over an
// anonymous socketpair speaking the same newline-delimited JSON as the
// client protocol. The parent supervises: it enforces per-request
// deadlines with SIGKILL, classifies worker death from the wait status
// (mirroring support/Sandbox.h), retries the victim request once at
// halved bounds after an exponential backoff, and respawns the worker —
// unless the slot keeps dying without serving anything, in which case a
// circuit breaker disables it instead of fork-bombing the host.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "ir/Parser.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Signals.h"
#include "support/Socket.h"
#include "vbmc/Report.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define VBMC_SERVE_POSIX 1
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VBMC_SERVE_POSIX 0
#endif

using namespace vbmc;
using namespace vbmc::serve;

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

namespace {

const std::set<std::string> &knownRequestKeys() {
  static const std::set<std::string> Keys = {
      "schema",        "id",          "program",       "mode",
      "backend",       "k",           "l",             "max_k",
      "threads",       "cas_allowance", "mem_limit_mb", "max_states",
      "deadline_seconds", "priority",  "max_conflicts",
      "max_propagations", "phase",     "phase_seed",
      "monotone_lemmas",  "shard"};
  return Keys;
}

bool readUint(const json::Value &V, const char *Key, uint64_t Max,
              uint64_t &Out, std::string &Err) {
  if (!V.isNumber() || V.asNumber() < 0 ||
      V.asNumber() != static_cast<double>(static_cast<uint64_t>(V.asNumber())) ||
      static_cast<uint64_t>(V.asNumber()) > Max) {
    Err = std::string("field '") + Key +
          "' must be a non-negative integer <= " + std::to_string(Max);
    return false;
  }
  Out = static_cast<uint64_t>(V.asNumber());
  return true;
}

} // namespace

std::string vbmc::serve::formatRequestLine(const Request &R) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value(RequestSchema);
  W.key("id").value(R.Id);
  W.key("mode").value(driver::engineModeName(R.Check.Mode));
  W.key("backend").value(
      R.Check.Opts.Backend == driver::BackendKind::Sat ? "sat" : "explicit");
  W.key("k").value(R.Check.Opts.K);
  W.key("l").value(R.Check.Opts.L);
  W.key("max_k").value(R.Check.MaxK);
  W.key("threads").value(R.Check.Threads);
  W.key("cas_allowance").value(R.Check.Opts.CasAllowance);
  W.key("mem_limit_mb").value(R.Check.Opts.MemLimitBytes >> 20);
  W.key("max_states").value(R.Check.Opts.MaxStates);
  W.key("max_conflicts").value(R.Check.Opts.MaxConflicts);
  W.key("max_propagations").value(R.Check.Opts.MaxPropagations);
  W.key("phase").value(driver::phasePolicyName(R.Check.Opts.Phase));
  W.key("phase_seed").value(R.Check.Opts.PhaseSeed);
  W.key("monotone_lemmas").value(R.Check.Opts.MonotoneLemmas);
  W.key("deadline_seconds").value(R.DeadlineSeconds);
  W.key("priority").value(static_cast<int64_t>(R.Priority));
  if (R.isShard())
    W.key("shard").value(R.ShardJson);
  else
    W.key("program").value(R.Program);
  W.endObject();
  return W.str();
}

bool vbmc::serve::parseRequestLine(const std::string &Line, Request &R,
                                   std::string &Err, std::string *IdOut) {
  json::Value V;
  std::string JErr;
  if (!json::parse(Line, V, &JErr)) {
    Err = "bad JSON: " + JErr;
    return false;
  }
  if (!V.isObject()) {
    Err = "request must be a JSON object";
    return false;
  }
  if (const json::Value *Id = V.get("id"); Id && Id->isString() && IdOut)
    *IdOut = Id->asString();
  // Reject unknown keys outright: a typoed "deadine_seconds" silently
  // ignored would run the request with no deadline at all.
  for (const auto &KV : V.members())
    if (!knownRequestKeys().count(KV.first)) {
      Err = "unknown key '" + KV.first + "'";
      return false;
    }

  Request Out;
  Out.Check.Mode = driver::EngineMode::Incremental;
  Out.Check.Opts.Backend = driver::BackendKind::Sat;

  if (const json::Value *S = V.get("schema")) {
    if (!S->isString() || S->asString() != RequestSchema) {
      Err = std::string("schema must be \"") + RequestSchema + "\"";
      return false;
    }
  }
  const json::Value *Id = V.get("id");
  if (!Id || !Id->isString() || Id->asString().empty()) {
    Err = "missing or empty 'id' (required string)";
    return false;
  }
  Out.Id = Id->asString();
  const json::Value *Prog = V.get("program");
  const json::Value *Shard = V.get("shard");
  if (Shard) {
    if (!Shard->isString() || Shard->asString().empty()) {
      Err = "'shard' must be a non-empty string (a shard-spec document)";
      return false;
    }
    if (Prog) {
      Err = "'program' and 'shard' are mutually exclusive";
      return false;
    }
    Out.ShardJson = Shard->asString();
  } else {
    if (!Prog || !Prog->isString() || Prog->asString().empty()) {
      Err = "missing or empty 'program' (required string)";
      return false;
    }
    Out.Program = Prog->asString();
  }

  if (const json::Value *M = V.get("mode")) {
    if (!M->isString() ||
        !driver::engineModeFromName(M->asString(), Out.Check.Mode)) {
      Err = "unknown mode '" + (M->isString() ? M->asString() : "") + "'";
      return false;
    }
  }
  if (const json::Value *B = V.get("backend")) {
    if (!B->isString() ||
        (B->asString() != "sat" && B->asString() != "explicit")) {
      Err = "backend must be \"explicit\" or \"sat\"";
      return false;
    }
    Out.Check.Opts.Backend = B->asString() == "sat"
                                 ? driver::BackendKind::Sat
                                 : driver::BackendKind::Explicit;
  }

  uint64_t N = 0;
  if (const json::Value *F = V.get("k")) {
    if (!readUint(*F, "k", 64, N, Err))
      return false;
    Out.Check.Opts.K = static_cast<uint32_t>(N);
  }
  if (const json::Value *F = V.get("l")) {
    if (!readUint(*F, "l", 64, N, Err))
      return false;
    Out.Check.Opts.L = static_cast<uint32_t>(N);
  }
  if (const json::Value *F = V.get("max_k")) {
    if (!readUint(*F, "max_k", 64, N, Err))
      return false;
    Out.Check.MaxK = static_cast<uint32_t>(N);
  }
  if (const json::Value *F = V.get("threads")) {
    if (!readUint(*F, "threads", 64, N, Err))
      return false;
    Out.Check.Threads = static_cast<uint32_t>(N ? N : 1);
  }
  if (const json::Value *F = V.get("cas_allowance")) {
    if (!readUint(*F, "cas_allowance", 1024, N, Err))
      return false;
    Out.Check.Opts.CasAllowance = static_cast<uint32_t>(N);
  }
  if (const json::Value *F = V.get("mem_limit_mb")) {
    if (!readUint(*F, "mem_limit_mb", 1u << 20, N, Err))
      return false;
    Out.Check.Opts.MemLimitBytes = N << 20;
  }
  if (const json::Value *F = V.get("max_states")) {
    if (!readUint(*F, "max_states", std::numeric_limits<int64_t>::max(), N,
                  Err))
      return false;
    Out.Check.Opts.MaxStates = N;
  }
  if (const json::Value *F = V.get("deadline_seconds")) {
    if (!F->isNumber() || F->asNumber() < 0) {
      Err = "deadline_seconds must be a non-negative number";
      return false;
    }
    Out.DeadlineSeconds = F->asNumber();
  }
  if (const json::Value *F = V.get("priority")) {
    if (!F->isNumber()) {
      Err = "priority must be a number";
      return false;
    }
    Out.Priority = static_cast<int64_t>(F->asNumber());
  }
  if (const json::Value *F = V.get("max_conflicts")) {
    if (!readUint(*F, "max_conflicts",
                  std::numeric_limits<int64_t>::max(), N, Err))
      return false;
    Out.Check.Opts.MaxConflicts = N;
  }
  if (const json::Value *F = V.get("max_propagations")) {
    if (!readUint(*F, "max_propagations",
                  std::numeric_limits<int64_t>::max(), N, Err))
      return false;
    Out.Check.Opts.MaxPropagations = N;
  }
  if (const json::Value *F = V.get("phase")) {
    if (!F->isString() || !driver::phasePolicyFromName(
                              F->asString(), Out.Check.Opts.Phase)) {
      Err = "phase must be \"saved\", \"positive\", \"negative\" or "
            "\"random\"";
      return false;
    }
  }
  if (const json::Value *F = V.get("phase_seed")) {
    if (!readUint(*F, "phase_seed", std::numeric_limits<int64_t>::max(), N,
                  Err))
      return false;
    Out.Check.Opts.PhaseSeed = N;
  }
  if (const json::Value *F = V.get("monotone_lemmas")) {
    if (!F->isBool()) {
      Err = "monotone_lemmas must be a boolean";
      return false;
    }
    Out.Check.Opts.MonotoneLemmas = F->asBool();
  }
  R = std::move(Out);
  return true;
}

bool vbmc::serve::parseResponseLine(const std::string &Line, Response &Out,
                                    std::string &Err) {
  json::Value V;
  if (!json::parse(Line, V, &Err))
    return false;
  if (!V.isObject()) {
    Err = "response must be a JSON object";
    return false;
  }
  Response R;
  if (const json::Value *F = V.get("id"); F && F->isString())
    R.Id = F->asString();
  if (const json::Value *F = V.get("status"); F && F->isString())
    R.Status = F->asString();
  if (R.Status.empty()) {
    Err = "response carries no status";
    return false;
  }
  if (const json::Value *F = V.get("error"); F && F->isString())
    R.Error = F->asString();
  if (const json::Value *F = V.get("retry_after_seconds");
      F && F->isNumber())
    R.RetryAfterSeconds = F->asNumber();
  if (const json::Value *F = V.get("retries"); F && F->isNumber())
    R.Retries = static_cast<uint64_t>(F->asNumber());
  if (const json::Value *F = V.get("cached"); F && F->isBool())
    R.Cached = F->asBool();
  if (const json::Value *Rep = V.get("report"); Rep && Rep->isObject()) {
    R.ReportJson = json::format(*Rep);
    if (const json::Value *F = Rep->get("verdict"); F && F->isString())
      R.Verdict = F->asString();
    if (const json::Value *F = Rep->get("failure"); F && F->isString())
      R.Failure = F->asString();
  }
  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

namespace {

std::string formatResponseLine(const std::string &Id,
                               const std::string &Status,
                               const std::string &Error, double RetryAfter,
                               uint64_t Retries,
                               const std::string *ReportJson,
                               bool Cached = false) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value(ResponseSchema);
  W.key("id").value(Id);
  W.key("status").value(Status);
  if (!Error.empty())
    W.key("error").value(Error);
  if (Status == "shed")
    W.key("retry_after_seconds").value(RetryAfter);
  if (Cached)
    W.key("cached").value(true);
  if (ReportJson) {
    W.key("retries").value(Retries);
    W.key("report").raw(*ReportJson);
  }
  W.endObject();
  return W.str();
}

void sleepSeconds(double S) {
  std::this_thread::sleep_for(std::chrono::duration<double>(S));
}

} // namespace

#if VBMC_SERVE_POSIX

namespace {

/// The "died mid-write never happens" invariant does not extend to
/// inherited descriptors: a forked worker holding copies of the listener
/// and of client connections would keep those sockets alive after the
/// parent closes them, so clients would never see EOF. Close everything
/// except the worker's own channel.
void closeInheritedFds(int Keep) {
  std::vector<int> ToClose;
  if (DIR *D = opendir("/proc/self/fd")) {
    while (dirent *E = readdir(D)) {
      int F = std::atoi(E->d_name);
      if (F > 2 && F != Keep && F != dirfd(D) &&
          E->d_name[0] >= '0' && E->d_name[0] <= '9')
        ToClose.push_back(F);
    }
    closedir(D);
  } else {
    for (int F = 3; F < 4096; ++F)
      if (F != Keep)
        ToClose.push_back(F);
  }
  for (int F : ToClose)
    ::close(F);
}

/// serve.hog-memory: allocate until bad_alloc, capped so an un-limited
/// host is never eaten (mirrors the engine's backend.hog-memory fault).
void hogMemoryFault() {
  constexpr size_t Chunk = 1 << 20;
  constexpr size_t Cap = 256u << 20;
  std::vector<std::unique_ptr<char[]>> Hog;
  for (size_t Total = 0;; Total += Chunk) {
    if (Total >= Cap)
      throw std::bad_alloc();
    Hog.push_back(std::make_unique<char[]>(Chunk));
    std::memset(Hog.back().get(), 0xAB, Chunk);
  }
}

/// Builds a run-report document for a request the worker could not (or
/// did not) answer: classified failures the supervisor synthesizes, and
/// worker-side parse errors.
std::string failureReportLine(const Request &R, driver::Verdict V,
                              sandbox::FailureKind Kind,
                              const std::string &Note) {
  driver::CheckReport Rep;
  Rep.Outcome = V;
  Rep.Failure = Kind;
  Rep.Note = Note;
  Rep.ModeRan = R.Check.Mode;
  driver::ReportInfo Info;
  Info.File = "<serve:" + R.Id + ">";
  Info.RequestedMode = R.Check.Mode;
  Info.K = R.Check.Opts.K;
  Info.L = R.Check.Opts.L;
  Info.MaxK = R.Check.MaxK;
  Info.Threads = R.Check.Threads;
  Info.Backend = R.Check.Opts.Backend;
  StatsRegistry Empty;
  return driver::formatRunReport(Rep, Info, Empty);
}

/// The worker process: one Engine, one request at a time over the
/// socketpair, EOF = clean shutdown. Never returns.
[[noreturn]] void workerMain(sockets::Fd Sock, const ServerOptions &O) {
  // Drain is parent-driven (channel EOF); a group-delivered SIGTERM or
  // Ctrl-C must not kill a worker mid-solve and surface as a spurious
  // classified crash.
  std::signal(SIGTERM, SIG_IGN);
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGPIPE, SIG_IGN);

  sockets::LineChannel Chan(std::move(Sock));
  driver::Engine Eng;
  Eng.setEncodingCacheCapacity(O.CacheEntries);
  uint64_t Served = 0;
  std::string Line;
  for (;;) {
    sockets::ReadStatus St =
        Chan.readLine(Line, O.MaxLineBytes * 2, /*TimeoutSeconds=*/-1);
    if (St != sockets::ReadStatus::Line)
      ::_exit(0);
    ++Served;
    try {
      if (fault::enabled("serve.worker-crash") && Served == 3)
        std::raise(SIGSEGV);
      if (fault::enabled("serve.hog-memory"))
        hogMemoryFault();
      if (fault::enabled("serve.slow-request"))
        sleepSeconds(1.5);

      Request R;
      std::string Err, Out;
      if (!parseRequestLine(Line, R, Err)) {
        // The supervisor validates before queueing; reaching this means
        // the parent/worker wire itself is damaged. Still answer.
        R.Id = "?";
        Out = failureReportLine(R, driver::Verdict::Unknown,
                                sandbox::FailureKind::None,
                                "malformed worker wire request: " + Err);
      } else if (R.isShard()) {
        // Farm-client mode: run the whole shard in this worker. A crash
        // anywhere inside it is this process dying — the supervisor
        // classifies it and the farm client splits the shard.
        Out = O.ShardRunner ? O.ShardRunner(R.ShardJson, R.DeadlineSeconds)
                            : std::string();
        if (Out.empty())
          Out = failureReportLine(
              R, driver::Verdict::Unknown, sandbox::FailureKind::None,
              O.ShardRunner ? "shard runner returned no document"
                            : "shard requests are not enabled on this "
                              "daemon");
      } else {
        auto Parsed = ir::parseProgram(R.Program);
        if (!Parsed) {
          Out = failureReportLine(R, driver::Verdict::Unknown,
                                  sandbox::FailureKind::None,
                                  "program parse error: " +
                                      Parsed.error().str());
        } else {
          CheckContext Ctx(R.DeadlineSeconds);
          driver::CheckReport Rep = Eng.run(*Parsed, R.Check, Ctx);
          driver::ReportInfo Info;
          Info.File = "<serve:" + R.Id + ">";
          Info.RequestedMode = R.Check.Mode;
          Info.K = R.Check.Opts.K;
          Info.L = R.Check.Opts.L;
          Info.MaxK = R.Check.MaxK;
          Info.Threads = R.Check.Threads;
          Info.Backend = R.Check.Opts.Backend;
          Out = driver::formatRunReport(Rep, Info, Ctx.stats());
        }
      }
      if (!Chan.writeLine(Out))
        ::_exit(0);
    } catch (const std::bad_alloc &) {
      ::_exit(sandbox::OomExitCode);
    } catch (...) {
      ::_exit(sandbox::ExceptionExitCode);
    }
  }
}

} // namespace

/// One client connection: the channel plus a write lock (slot threads
/// and the reader thread interleave responses) and the count of accepted
/// requests still owed a response.
struct Connection {
  sockets::LineChannel Chan;
  std::mutex WriteM;
  std::atomic<uint64_t> Pending{0};

  bool write(const std::string &Line) {
    std::lock_guard<std::mutex> L(WriteM);
    return Chan.writeLine(Line);
  }
};

class vbmc::serve::Server::Impl {
public:
  explicit Impl(ServerOptions Opts) : O(std::move(Opts)) {
    if (O.Workers < 1)
      O.Workers = 1;
    if (O.EnableTrace)
      Tr.enable();
  }

  struct Job {
    uint64_t Seq = 0;
    Request Req;
    Deadline DL;
    std::shared_ptr<Connection> Client;
    /// driver::verdictCacheKey of the parsed program; empty when the
    /// request is not cacheable (shards, cache disabled). The success
    /// path inserts the report under this key.
    std::string CacheKey;
    /// Hash of driver::encodingCacheKey — the affinity handle matching
    /// what a worker Engine's encoding LRU would hold. 0 = no affinity
    /// (shards, non-incremental modes).
    uint64_t AKey = 0;
  };

  /// Max-heap order: priority, then least remaining deadline, then FIFO.
  struct JobOrder {
    bool operator()(const Job &A, const Job &B) const {
      if (A.Req.Priority != B.Req.Priority)
        return A.Req.Priority < B.Req.Priority;
      double Ra = A.DL.remainingSeconds(), Rb = B.DL.remainingSeconds();
      if (Ra != Rb)
        return Ra > Rb;
      return A.Seq > B.Seq;
    }
  };

  struct Slot {
    pid_t Pid = -1;
    sockets::LineChannel Chan;
    uint64_t ServedSinceSpawn = 0;
    unsigned ConsecutiveDeaths = 0;
    bool Broken = false;
    /// Affinity model of the worker's Engine encoding-LRU: the AKeys of
    /// the incremental jobs this slot ran since its last (re)spawn,
    /// MRU-first, bounded by O.CacheEntries. Guarded by QueueM (it is
    /// read by every slot's scheduling decision).
    std::vector<uint64_t> Warm;
  };

  ServerOptions O;
  StatsRegistry Stats;
  TraceRecorder Tr;
  Timer Uptime;
  sockets::UnixListener Listener;

  std::atomic<bool> Started{false};
  std::atomic<bool> Draining{false};
  std::atomic<bool> DrainComplete{false};
  std::mutex DrainM;
  std::string DrainReason;

  std::mutex QueueM;
  std::condition_variable QueueCv;
  std::vector<Job> Queue; // heap under JobOrder
  uint64_t NextSeq = 0;
  uint64_t QueuePeak = 0;

  std::atomic<uint64_t> Received{0}, Accepted{0}, Answered{0}, Rejected{0},
      Shed{0}, Retries{0}, Restarts{0}, BreakerTrips{0};
  std::atomic<uint64_t> InFlight{0};
  std::mutex PeakM;
  uint64_t InFlightPeak = 0;

  /// The cross-request verdict cache: an LRU over verdictCacheKey whose
  /// values are the worker's full report documents, answered from the
  /// accept path without touching the queue. Only conclusive,
  /// failure-free, first-attempt, non-reduced-bounds verdicts enter, so
  /// a hit never replays a budget- or luck-dependent answer.
  struct VerdictEntry {
    std::string Key;
    std::string ReportJson;
    std::string Verdict;
  };
  std::mutex VCacheM;
  std::list<VerdictEntry> VCache; ///< MRU first.
  std::unordered_map<std::string, std::list<VerdictEntry>::iterator>
      VCacheIndex;
  std::atomic<uint64_t> CacheHits{0}, CacheMisses{0}, CacheEvictions{0};
  std::atomic<uint64_t> AffinityHits{0}, AffinityMisses{0};

  /// Looks up \p Key, touching the entry MRU on a hit. The report is
  /// copied out (entries can be evicted by other threads the moment the
  /// lock drops).
  bool verdictCacheLookup(const std::string &Key, VerdictEntry &Out) {
    std::lock_guard<std::mutex> L(VCacheM);
    auto It = VCacheIndex.find(Key);
    if (It == VCacheIndex.end())
      return false;
    VCache.splice(VCache.begin(), VCache, It->second);
    Out = *It->second;
    return true;
  }

  void verdictCacheInsert(VerdictEntry E) {
    if (O.VerdictCacheEntries == 0)
      return;
    std::lock_guard<std::mutex> L(VCacheM);
    if (VCacheIndex.count(E.Key))
      return; // A racing identical request already inserted it.
    while (VCache.size() >= O.VerdictCacheEntries) {
      VCacheIndex.erase(VCache.back().Key);
      VCache.pop_back();
      CacheEvictions.fetch_add(1);
      Stats.addCount("serve.cache.evictions");
    }
    VCache.push_front(std::move(E));
    VCacheIndex.emplace(VCache.front().Key, VCache.begin());
  }

  std::mutex TallyM;
  std::map<std::string, uint64_t> Verdicts, Failures;

  std::vector<Slot> Slots;
  std::thread AcceptThread;
  std::vector<std::thread> SlotThreads;
  std::mutex ConnM;
  std::vector<std::shared_ptr<Connection>> Conns;
  std::vector<std::thread> ReaderThreads;

  ServerSummary Sum;
  bool SummaryReady = false;

  //===--------------------------------------------------------------------===//

  bool spawnWorker(Slot &S, std::string *Err) {
    sockets::Fd ParentEnd, ChildEnd;
    if (!sockets::socketPair(ParentEnd, ChildEnd, Err))
      return false;
    pid_t Pid = ::fork();
    if (Pid < 0) {
      if (Err)
        *Err = std::string("fork: ") + std::strerror(errno);
      return false;
    }
    if (Pid == 0) {
      ParentEnd.reset();
      closeInheritedFds(ChildEnd.get());
      workerMain(std::move(ChildEnd), O); // never returns
    }
    S.Pid = Pid;
    S.Chan = sockets::LineChannel(std::move(ParentEnd));
    S.ServedSinceSpawn = 0;
    {
      // A fresh worker starts with a cold Engine: forget the affinity
      // model or repeat keys would keep routing to a slot that lost its
      // encodings with the old process.
      std::lock_guard<std::mutex> L(QueueM);
      S.Warm.clear();
    }
    return true;
  }

  /// Reaps a dead worker and classifies the death, mirroring the
  /// sandbox: signal = crash (unexplained SIGKILL = the kernel's OOM
  /// killer), exit 77 = oom, exit 78 = crash, any other exit without a
  /// response = exit failure.
  sandbox::FailureKind reapWorker(Slot &S, bool DeadlineKill) {
    S.Chan.close();
    int Status = 0;
    if (S.Pid > 0)
      while (::waitpid(S.Pid, &Status, 0) < 0 && errno == EINTR) {
      }
    S.Pid = -1;
    Restarts.fetch_add(1);
    Stats.addCount("serve.worker_restarts");
    if (DeadlineKill)
      return sandbox::FailureKind::Timeout;
    // Breaker accounting: a slot that keeps dying without ever serving a
    // request is not going to heal by forking harder.
    if (S.ServedSinceSpawn == 0) {
      if (++S.ConsecutiveDeaths >= O.BreakerThreshold && !S.Broken) {
        S.Broken = true;
        BreakerTrips.fetch_add(1);
        Stats.addCount("serve.breaker_trips");
      }
    } else {
      S.ConsecutiveDeaths = 1;
    }
    if (WIFSIGNALED(Status))
      return WTERMSIG(Status) == SIGKILL ? sandbox::FailureKind::OutOfMemory
                                         : sandbox::FailureKind::Crash;
    if (WIFEXITED(Status)) {
      if (WEXITSTATUS(Status) == sandbox::OomExitCode)
        return sandbox::FailureKind::OutOfMemory;
      if (WEXITSTATUS(Status) == sandbox::ExceptionExitCode)
        return sandbox::FailureKind::Crash;
    }
    return sandbox::FailureKind::ExitFailure;
  }

  void killWorker(Slot &S) {
    if (S.Pid > 0)
      ::kill(S.Pid, SIGKILL);
  }

  //===--------------------------------------------------------------------===//

  void tally(const std::string &Verdict, const std::string &Failure) {
    std::lock_guard<std::mutex> L(TallyM);
    if (!Verdict.empty())
      ++Verdicts[Verdict];
    if (!Failure.empty() && Failure != "none")
      ++Failures[Failure];
  }

  /// Final answer for an accepted job; counts toward drain completion
  /// even when the client already hung up (the write failure is theirs).
  void answer(Job &J, const std::string &Line) {
    J.Client->write(Line);
    J.Client->Pending.fetch_sub(1);
    Answered.fetch_add(1);
    Stats.addCount("serve.answered");
  }

  void answerFailure(Job &J, sandbox::FailureKind Kind,
                     const std::string &Note, uint64_t RetriesUsed) {
    std::string Report = failureReportLine(J.Req, driver::Verdict::Unknown,
                                           Kind, Note);
    tally("unknown", sandbox::failureKindName(Kind));
    answer(J, formatResponseLine(J.Req.Id, "ok", "", 0, RetriesUsed,
                                 &Report));
  }

  void runJob(Slot &S, Job &J) {
    const unsigned MaxAttempts = O.Retry ? 2 : 1;
    for (unsigned Attempt = 0;; ++Attempt) {
      if (S.Broken) {
        answerFailure(J, sandbox::FailureKind::Crash,
                      "worker slot disabled by the restart-storm circuit "
                      "breaker",
                      Attempt);
        return;
      }
      double Remaining = J.DL.remainingSeconds();
      if (Remaining <= 0) {
        answerFailure(J, sandbox::FailureKind::Timeout,
                      "deadline expired before the check could run",
                      Attempt);
        return;
      }
      if (!S.Chan.valid()) {
        if (S.ConsecutiveDeaths > 0) {
          unsigned Shift = std::min(S.ConsecutiveDeaths - 1, 6u);
          sleepSeconds(std::min(O.BackoffSeconds * double(1u << Shift),
                                std::min(2.0, Remaining)));
        }
        std::string Err;
        if (!spawnWorker(S, &Err)) {
          answerFailure(J, sandbox::FailureKind::ExitFailure,
                        "cannot spawn worker: " + Err, Attempt);
          return;
        }
      }
      Request Wire = J.Req;
      Wire.DeadlineSeconds =
          Remaining == std::numeric_limits<double>::infinity() ? 0
                                                               : Remaining;
      std::string Out;
      sockets::ReadStatus St = sockets::ReadStatus::Error;
      if (S.Chan.writeLine(formatRequestLine(Wire)))
        St = S.Chan.readLine(
            Out, O.MaxLineBytes * 4,
            Wire.DeadlineSeconds > 0 ? Wire.DeadlineSeconds + 0.5 : -1);

      if (St == sockets::ReadStatus::Line) {
        ++S.ServedSinceSpawn;
        S.ConsecutiveDeaths = 0;
        json::Value Rep;
        std::string JErr;
        if (!json::parse(Out, Rep, &JErr) || !Rep.isObject()) {
          answerFailure(J, sandbox::FailureKind::ExitFailure,
                        "malformed worker report: " + JErr, Attempt);
          return;
        }
        std::string Verdict, Failure;
        if (const json::Value *F = Rep.get("verdict"); F && F->isString())
          Verdict = F->asString();
        if (const json::Value *F = Rep.get("failure"); F && F->isString())
          Failure = F->asString();
        tally(Verdict, Failure);
        // Feed the cross-request verdict cache — but only with answers a
        // repeat request is guaranteed to reproduce: a conclusive
        // verdict, from the first attempt (retries run at halved
        // bounds), with no classified failure and not recovered at
        // reduced bounds after a memory kill.
        if (!J.CacheKey.empty() && Attempt == 0 &&
            (Verdict == "safe" || Verdict == "unsafe") &&
            (Failure.empty() || Failure == "none") &&
            Out.find("recovered at reduced bounds") == std::string::npos)
          verdictCacheInsert(VerdictEntry{J.CacheKey, Out, Verdict});
        answer(J, formatResponseLine(J.Req.Id, "ok", "", 0, Attempt, &Out));
        return;
      }
      if (St == sockets::ReadStatus::Timeout) {
        // The worker outlived the request's deadline: kill, classify,
        // respawn lazily. No retry — the budget is gone.
        killWorker(S);
        reapWorker(S, /*DeadlineKill=*/true);
        answerFailure(J, sandbox::FailureKind::Timeout,
                      "killed on the request deadline", Attempt);
        return;
      }
      // EOF / error: the worker died underneath the request. Shard
      // requests are never retried at halved bounds — the classified
      // failure goes straight back so the farm client can split the
      // shard and requeue the halves (its fault-isolation contract).
      sandbox::FailureKind Kind = reapWorker(S, /*DeadlineKill=*/false);
      if (!J.Req.isShard() && Attempt + 1 < MaxAttempts &&
          J.DL.remainingSeconds() > 0 && !S.Broken) {
        Retries.fetch_add(1);
        Stats.addCount("serve.retries");
        // Halved bounds: the retry must be cheaper than the attempt that
        // killed the worker, or it just kills the next one.
        J.Req.Check.Opts.K = std::max(1u, J.Req.Check.Opts.K / 2);
        J.Req.Check.Opts.L = std::max(1u, J.Req.Check.Opts.L / 2);
        J.Req.Check.MaxK = std::max(1u, J.Req.Check.MaxK / 2);
        continue;
      }
      answerFailure(J,
                    Kind,
                    std::string("worker died (") +
                        sandbox::failureKindName(Kind) + ")",
                    Attempt);
      return;
    }
  }

  /// Affinity classes for one job as seen from slot \p Idx: 2 = warm
  /// here (the worker's Engine likely still holds the encoding), 1 = no
  /// affinity anywhere (fresh key, shard, non-incremental), 0 = warm on
  /// some *other* live slot. Called under QueueM; returns the
  /// JobOrder-best job of the best class.
  size_t pickJobIndex(unsigned Idx, int &BestClass) {
    auto warmOn = [&](uint64_t AKey, unsigned SlotIdx) {
      const Slot &T = Slots[SlotIdx];
      return !T.Broken &&
             std::find(T.Warm.begin(), T.Warm.end(), AKey) != T.Warm.end();
    };
    auto classify = [&](const Job &J) {
      if (J.AKey == 0)
        return 1;
      if (warmOn(J.AKey, Idx))
        return 2;
      for (unsigned T = 0; T < Slots.size(); ++T)
        if (T != Idx && warmOn(J.AKey, T))
          return 0;
      return 1;
    };
    size_t Best = 0;
    BestClass = classify(Queue[0]);
    for (size_t I = 1; I < Queue.size(); ++I) {
      int C = classify(Queue[I]);
      if (C > BestClass ||
          (C == BestClass && JobOrder()(Queue[Best], Queue[I]))) {
        Best = I;
        BestClass = C;
      }
    }
    return Best;
  }

  void slotLoop(unsigned Idx) {
    Slot &S = Slots[Idx];
    unsigned DeferRounds = 0;
    for (;;) {
      Job J;
      bool AffinityHit = false;
      bool AffinityRelevant = false;
      {
        std::unique_lock<std::mutex> L(QueueM);
        QueueCv.wait(L, [&] {
          return !Queue.empty() || DrainComplete.load();
        });
        if (Queue.empty())
          return;
        int BestClass = 0;
        size_t Pick = pickJobIndex(Idx, BestClass);
        if (BestClass == 0 && DeferRounds < 2 && !DrainComplete.load()) {
          // Everything runnable is warm on another slot: give the warm
          // owner a beat to claim its key before stealing. Bounded, so
          // a busy (or broken-and-cleared) owner cannot starve the
          // queue; draining skips the courtesy entirely.
          ++DeferRounds;
          QueueCv.wait_for(L, std::chrono::milliseconds(25));
          continue;
        }
        DeferRounds = 0;
        J = std::move(Queue[Pick]);
        Queue[Pick] = std::move(Queue.back());
        Queue.pop_back();
        std::make_heap(Queue.begin(), Queue.end(), JobOrder());
        if (J.AKey != 0) {
          AffinityRelevant = true;
          AffinityHit = BestClass == 2;
          // Update the affinity model at dispatch, MRU-first, bounded by
          // the worker Engine's own LRU capacity so the model evicts
          // when the real cache would.
          auto It = std::find(S.Warm.begin(), S.Warm.end(), J.AKey);
          if (It != S.Warm.end())
            S.Warm.erase(It);
          S.Warm.insert(S.Warm.begin(), J.AKey);
          // The Engine clamps its capacity to >= 1; mirror that here.
          size_t WarmCap = O.CacheEntries ? O.CacheEntries : 1;
          if (S.Warm.size() > WarmCap)
            S.Warm.resize(WarmCap);
        }
      }
      if (AffinityRelevant) {
        if (AffinityHit) {
          AffinityHits.fetch_add(1);
          Stats.addCount("serve.affinity.hits");
        } else {
          AffinityMisses.fetch_add(1);
          Stats.addCount("serve.affinity.misses");
        }
      }
      InFlight.fetch_add(1);
      {
        std::lock_guard<std::mutex> L(PeakM);
        InFlightPeak = std::max(InFlightPeak, InFlight.load());
      }
      {
        ScopedSpan Span(Tr, "serve.request:" + J.Req.Id, "serve");
        runJob(S, J);
      }
      InFlight.fetch_sub(1);
    }
  }

  //===--------------------------------------------------------------------===//

  void handleRequestLine(const std::shared_ptr<Connection> &C,
                         const std::string &Line) {
    Received.fetch_add(1);
    Stats.addCount("serve.requests");
    Request R;
    std::string Err, Id;
    if (!parseRequestLine(Line, R, Err, &Id)) {
      Rejected.fetch_add(1);
      Stats.addCount("serve.rejected");
      C->write(formatResponseLine(Id, "rejected", Err, 0, 0, nullptr));
      return;
    }
    std::string CacheKey;
    uint64_t AKey = 0;
    if (R.isShard()) {
      if (!O.ShardRunner) {
        Rejected.fetch_add(1);
        Stats.addCount("serve.rejected");
        C->write(formatResponseLine(
            R.Id, "rejected",
            "shard requests are not enabled on this daemon", 0, 0,
            nullptr));
        return;
      }
    } else {
      auto Parsed = ir::parseProgram(R.Program);
      if (!Parsed) {
        Rejected.fetch_add(1);
        Stats.addCount("serve.rejected");
        C->write(formatResponseLine(R.Id, "rejected",
                                    "program parse error: " +
                                        Parsed.error().str(),
                                    0, 0, nullptr));
        return;
      }
      if (O.VerdictCacheEntries > 0)
        CacheKey = driver::verdictCacheKey(*Parsed, R.Check);
      if (R.Check.Mode == driver::EngineMode::Incremental)
        AKey = std::hash<std::string>{}(
            driver::encodingCacheKey(*Parsed, R.Check));
    }
    if (Draining.load()) {
      Shed.fetch_add(1);
      Stats.addCount("serve.shed");
      C->write(
          formatResponseLine(R.Id, "shed", "draining", 1.0, 0, nullptr));
      return;
    }
    if (!CacheKey.empty()) {
      VerdictEntry Hit;
      if (verdictCacheLookup(CacheKey, Hit)) {
        // Answer from the accept path: the request is accounted as
        // accepted-and-answered without ever touching the queue or a
        // worker, and the response says so with "cached":true.
        CacheHits.fetch_add(1);
        Stats.addCount("serve.cache.hits");
        Accepted.fetch_add(1);
        Stats.addCount("serve.accepted");
        tally(Hit.Verdict, "");
        C->write(formatResponseLine(R.Id, "ok", "", 0, 0, &Hit.ReportJson,
                                    /*Cached=*/true));
        Answered.fetch_add(1);
        Stats.addCount("serve.answered");
        return;
      }
      CacheMisses.fetch_add(1);
      Stats.addCount("serve.cache.misses");
    }
    {
      std::lock_guard<std::mutex> L(QueueM);
      if (Queue.size() >= O.QueueCap) {
        Shed.fetch_add(1);
        Stats.addCount("serve.shed");
        // Retry-after: how long the backlog takes to clear if every
        // queued request used ~a quarter second — a hint, not a promise.
        double Hint =
            0.1 + 0.25 * double(Queue.size()) / double(O.Workers);
        C->write(formatResponseLine(R.Id, "shed", "queue full", Hint, 0,
                                    nullptr));
        return;
      }
      Job J;
      J.Seq = NextSeq++;
      J.DL = Deadline(R.DeadlineSeconds > 0 ? R.DeadlineSeconds
                                            : O.DefaultDeadlineSeconds);
      J.Req = std::move(R);
      J.Client = C;
      J.CacheKey = std::move(CacheKey);
      J.AKey = AKey;
      C->Pending.fetch_add(1);
      Accepted.fetch_add(1);
      Stats.addCount("serve.accepted");
      Queue.push_back(std::move(J));
      std::push_heap(Queue.begin(), Queue.end(), JobOrder());
      QueuePeak = std::max(QueuePeak, (uint64_t)Queue.size());
    }
    // All slots wake: affinity selection wants the *warm* slot to see
    // the job, and a notify_one could rouse only a cold one.
    QueueCv.notify_all();
  }

  void readerLoop(std::shared_ptr<Connection> C) {
    std::string Line;
    for (;;) {
      sockets::ReadStatus St =
          C->Chan.readLine(Line, O.MaxLineBytes, 0.25);
      switch (St) {
      case sockets::ReadStatus::Line:
        handleRequestLine(C, Line);
        break;
      case sockets::ReadStatus::Timeout:
        if (DrainComplete.load())
          return;
        break;
      case sockets::ReadStatus::Oversize:
        Received.fetch_add(1);
        Rejected.fetch_add(1);
        Stats.addCount("serve.requests");
        Stats.addCount("serve.rejected");
        C->write(formatResponseLine(
            "", "rejected",
            "request line exceeds " + std::to_string(O.MaxLineBytes) +
                " bytes",
            0, 0, nullptr));
        break;
      case sockets::ReadStatus::Eof:
      case sockets::ReadStatus::Error:
        return; // Pending responses still flow from the slot threads.
      }
    }
  }

  void adoptConnection(sockets::Fd F) {
    auto C = std::make_shared<Connection>();
    C->Chan = sockets::LineChannel(std::move(F));
    std::lock_guard<std::mutex> L(ConnM);
    Conns.push_back(C);
    ReaderThreads.emplace_back([this, C] { readerLoop(C); });
  }

  void acceptLoop() {
    for (;;) {
      bool TimedOut = false;
      sockets::Fd F = Listener.accept(0.2, TimedOut);
      if (F.valid())
        adoptConnection(std::move(F));
      else if (!TimedOut)
        sleepSeconds(0.05); // Transient accept error; don't spin.
      if (Draining.load()) {
        // Sweep the backlog before closing the listener: a connection
        // the kernel completed just before the drain deserves shed
        // responses from a reader, not a reset.
        for (;;) {
          bool BacklogEmpty = false;
          sockets::Fd G = Listener.accept(0.05, BacklogEmpty);
          if (!G.valid())
            break;
          adoptConnection(std::move(G));
        }
        return;
      }
    }
  }

  //===--------------------------------------------------------------------===//

  bool start(std::string *Err) {
    if (!sockets::available()) {
      if (Err)
        *Err = "unix sockets are not supported on this platform";
      return false;
    }
    if (!Listener.listen(O.SocketPath, Err))
      return false;
    Slots.resize(O.Workers);
    for (Slot &S : Slots)
      if (!spawnWorker(S, Err)) {
        for (Slot &T : Slots)
          if (T.Pid > 0) {
            killWorker(T);
            reapWorker(T, true);
          }
        Listener.close();
        return false;
      }
    Restarts.store(0); // Initial spawns are not restarts.
    Stats.addCount("serve.worker_restarts", 0);
    AcceptThread = std::thread([this] { acceptLoop(); });
    for (unsigned I = 0; I < O.Workers; ++I)
      SlotThreads.emplace_back([this, I] { slotLoop(I); });
    Started.store(true);
    return true;
  }

  void requestDrain(const std::string &Reason) {
    {
      std::lock_guard<std::mutex> L(DrainM);
      if (Draining.load())
        return;
      DrainReason = Reason;
    }
    Draining.store(true);
    QueueCv.notify_all();
  }

  int wait() {
    if (!Started.load())
      return 1;
    // This thread is the drain monitor: watch for the process-wide
    // signal flag and the drain-after trigger until a drain starts.
    while (!Draining.load()) {
      if (signals::drainRequested())
        requestDrain(signals::drainSignal() == SIGINT ? "sigint"
                                                      : "sigterm");
      else if (O.DrainAfterRequests &&
               Answered.load() >= O.DrainAfterRequests)
        requestDrain("drain-after");
      else
        sleepSeconds(0.03);
    }
    AcceptThread.join();
    Listener.close(); // Unlink the path; further connects fail fast.
    // Every accepted request is answered — finished or deadline-outed by
    // the slot threads — before anything is torn down. Requests already
    // in a connection's kernel buffer when the drain fired deserve their
    // shed response too, so teardown additionally waits for the readers
    // to go quiet (no new request line for a full grace round), bounded
    // so a client that never stops sending cannot wedge the drain.
    Timer Grace;
    uint64_t LastReceived = ~0ull;
    for (;;) {
      uint64_t Rv = Received.load();
      bool Quiet = Rv == LastReceived;
      LastReceived = Rv;
      if (Quiet && Answered.load() >= Accepted.load())
        break;
      if (Grace.elapsedSeconds() > 5.0 &&
          Answered.load() >= Accepted.load())
        break;
      sleepSeconds(0.15);
    }
    DrainComplete.store(true);
    QueueCv.notify_all();
    for (std::thread &T : SlotThreads)
      T.join();
    {
      // Readers poll DrainComplete at their read timeout; join before
      // closing channels so no close races a concurrent read.
      std::lock_guard<std::mutex> L(ConnM);
      for (std::thread &T : ReaderThreads)
        T.join();
      for (auto &C : Conns)
        C->Chan.close();
    }
    // EOF tells each worker to exit cleanly; reap with a short grace,
    // then escalate.
    for (Slot &S : Slots)
      S.Chan.close();
    for (Slot &S : Slots) {
      if (S.Pid <= 0)
        continue;
      bool Reaped = false;
      for (int I = 0; I < 100 && !Reaped; ++I) {
        int Status = 0;
        pid_t R = ::waitpid(S.Pid, &Status, WNOHANG);
        if (R == S.Pid || (R < 0 && errno != EINTR))
          Reaped = true;
        else
          sleepSeconds(0.01);
      }
      if (!Reaped) {
        ::kill(S.Pid, SIGKILL);
        int Status = 0;
        while (::waitpid(S.Pid, &Status, 0) < 0 && errno == EINTR) {
        }
      }
      S.Pid = -1;
    }
    buildSummary();
    return Sum.Answered == Sum.Accepted ? 0 : 1;
  }

  void buildSummary() {
    Sum.Received = Received.load();
    Sum.Accepted = Accepted.load();
    Sum.Answered = Answered.load();
    Sum.Rejected = Rejected.load();
    Sum.Shed = Shed.load();
    Sum.Retries = Retries.load();
    Sum.WorkerRestarts = Restarts.load();
    Sum.BreakerTrips = BreakerTrips.load();
    Sum.CacheHits = CacheHits.load();
    Sum.CacheMisses = CacheMisses.load();
    Sum.CacheEvictions = CacheEvictions.load();
    Sum.CacheCapacity = O.VerdictCacheEntries;
    {
      std::lock_guard<std::mutex> L(VCacheM);
      Sum.CacheEntriesUsed = VCache.size();
    }
    Sum.AffinityHits = AffinityHits.load();
    Sum.AffinityMisses = AffinityMisses.load();
    {
      std::lock_guard<std::mutex> L(QueueM);
      Sum.QueuePeak = QueuePeak;
    }
    {
      std::lock_guard<std::mutex> L(PeakM);
      Sum.InFlightPeak = InFlightPeak;
    }
    {
      std::lock_guard<std::mutex> L(TallyM);
      Sum.Verdicts = Verdicts;
      Sum.Failures = Failures;
    }
    Sum.DrainRequested = Draining.load();
    {
      std::lock_guard<std::mutex> L(DrainM);
      Sum.DrainReason = DrainReason;
    }
    Sum.UptimeSeconds = Uptime.elapsedSeconds();
    Stats.addCount("serve.queue_depth_peak", Sum.QueuePeak);
    Stats.addCount("serve.in_flight_peak", Sum.InFlightPeak);
    SummaryReady = true;
  }

  std::string formatSummaryJson() const {
    json::JsonWriter W;
    W.beginObject();
    W.key("schema").value(SummarySchema);
    W.key("socket").value(O.SocketPath);
    W.key("workers").value(static_cast<uint64_t>(O.Workers));
    W.key("queue_cap").value(static_cast<uint64_t>(O.QueueCap));
    W.key("received").value(Sum.Received);
    W.key("accepted").value(Sum.Accepted);
    W.key("answered").value(Sum.Answered);
    W.key("rejected").value(Sum.Rejected);
    W.key("shed").value(Sum.Shed);
    W.key("retries").value(Sum.Retries);
    W.key("worker_restarts").value(Sum.WorkerRestarts);
    W.key("breaker_trips").value(Sum.BreakerTrips);
    W.key("queue_depth_peak").value(Sum.QueuePeak);
    W.key("in_flight_peak").value(Sum.InFlightPeak);
    W.key("cache").beginObject();
    W.key("capacity").value(Sum.CacheCapacity);
    W.key("entries").value(Sum.CacheEntriesUsed);
    W.key("hits").value(Sum.CacheHits);
    W.key("misses").value(Sum.CacheMisses);
    W.key("evictions").value(Sum.CacheEvictions);
    W.endObject();
    W.key("affinity").beginObject();
    W.key("hits").value(Sum.AffinityHits);
    W.key("misses").value(Sum.AffinityMisses);
    W.endObject();
    W.key("drain").beginObject();
    W.key("requested").value(Sum.DrainRequested);
    W.key("reason").value(Sum.DrainReason);
    W.endObject();
    W.key("uptime_seconds").value(Sum.UptimeSeconds);
    W.key("verdicts").beginObject();
    for (const auto &KV : Sum.Verdicts)
      W.key(KV.first).value(KV.second);
    W.endObject();
    W.key("failures").beginObject();
    for (const auto &KV : Sum.Failures)
      W.key(KV.first).value(KV.second);
    W.endObject();
    W.key("stats").beginObject();
    for (const StatsRegistry::Entry &E : Stats.snapshot()) {
      W.key(E.Name);
      if (E.IsCounter)
        W.value(E.Count);
      else
        W.value(E.Seconds);
    }
    W.endObject();
    W.endObject();
    return W.str();
  }
};

#else // !VBMC_SERVE_POSIX

class vbmc::serve::Server::Impl {
public:
  explicit Impl(ServerOptions Opts) : O(std::move(Opts)) {}
  ServerOptions O;
  StatsRegistry Stats;
  TraceRecorder Tr;
  ServerSummary Sum;
  bool start(std::string *Err) {
    if (Err)
      *Err = "vbmc-serve requires POSIX process and socket support";
    return false;
  }
  void requestDrain(const std::string &) {}
  int wait() { return 1; }
  std::string formatSummaryJson() const { return "{}"; }
};

#endif // VBMC_SERVE_POSIX

Server::Server(ServerOptions O) : I(std::make_unique<Impl>(std::move(O))) {}
Server::~Server() = default;

bool Server::start(std::string *Err) { return I->start(Err); }
void Server::requestDrain(const std::string &Reason) {
  I->requestDrain(Reason);
}
int Server::wait() { return I->wait(); }
const ServerSummary &Server::summary() const { return I->Sum; }
std::string Server::formatSummaryJson() const {
  return I->formatSummaryJson();
}
StatsRegistry &Server::stats() { return I->Stats; }
TraceRecorder &Server::trace() { return I->Tr; }
