//===- Batch.h - shed-aware request batch over a serve client ----*- C++ -*-===//
///
/// \file
/// The client-side batch driver shared by `vbmc-serve --connect`, the
/// farm/fuzz daemon-client mode and the serve throughput bench: submit a
/// set of requests, stream responses, and resubmit shed requests after
/// the daemon's retry-after hint — with two contracts the ad-hoc client
/// loop used to violate:
///
///  * bookkeeping for a request (the shed-retry counter, the pending
///    copy) is erased the moment its terminal response arrives, so a
///    long batch holds memory proportional to its *in-flight* set, not
///    its history (BatchResult::RetryMapPeak / RetryMapLeft pin this);
///  * a resubmitted request carries its ORIGINAL deadline minus the time
///    already spent since its first send, so shed-and-retry can never
///    extend a request's wall-clock budget past what the caller asked
///    for (a request whose budget is exhausted treats the next shed as
///    terminal instead of resubmitting).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SERVE_BATCH_H
#define VBMC_SERVE_BATCH_H

#include "serve/Client.h"
#include "serve/Serve.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vbmc::serve {

struct BatchOptions {
  /// Overall wall clock for the whole batch.
  double TimeoutSeconds = 300;
  /// Resubmits per shed request; past it the shed response is terminal.
  uint64_t MaxShedRetries = 32;
  /// Called once per terminal response (ok / rejected / exhausted shed).
  std::function<void(const Response &)> OnResponse;
};

struct BatchResult {
  uint64_t Sent = 0;      ///< Distinct requests submitted.
  uint64_t Answered = 0;  ///< Terminal responses received.
  uint64_t NotOk = 0;     ///< Terminal responses with status != "ok".
  uint64_t Resubmits = 0; ///< Shed requests re-sent.
  /// Peak entry count of the shed-retry map: stays bounded by the
  /// number of distinct requests shed at least once, never by batch
  /// length (the memory-stability pin).
  uint64_t RetryMapPeak = 0;
  /// Shed-retry entries still resident after the batch; 0 after a batch
  /// whose every request got a terminal answer (the leak pin).
  uint64_t RetryMapLeft = 0;
  /// DeadlineSeconds carried by the most recent resubmit (-1 = none):
  /// for a request submitted with deadline D and resubmitted after E
  /// seconds this is max(epsilon, D - E), never D again.
  double LastResubmitDeadline = -1;
  std::string LastError;

  bool complete() const { return Answered == Sent; }
};

/// Sends every request in \p Requests over \p C and drives the receive /
/// shed-resubmit loop until every request is terminally answered, the
/// timeout expires, or the connection dies. Requests must carry unique
/// ids.
BatchResult runBatch(Client &C, const std::vector<Request> &Requests,
                     const BatchOptions &O);

} // namespace vbmc::serve

#endif // VBMC_SERVE_BATCH_H
