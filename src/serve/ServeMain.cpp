//===- ServeMain.cpp - the vbmc-serve command-line tool ---------*- C++ -*-===//
//
// Usage:
//   vbmc-serve --socket PATH [options]      run the daemon
//   vbmc-serve --connect PATH FILE...       submit checks to a daemon
//
// The daemon accepts newline-delimited vbmc-serve-request/v1 objects over
// a unix-domain socket, schedules them over a pool of persistent worker
// processes and streams vbmc-serve-response/v1 lines back; SIGTERM/SIGINT
// drain gracefully (see docs/SERVING.md). The client mode submits each
// FILE as one request and prints every response line.
//
// Daemon exit codes: 0 = clean drain (every accepted request answered),
// 1 = unclean shutdown, 2 = usage/startup error.
// Client exit codes: 0 = every submitted request answered, 1 = responses
// missing (daemon died mid-batch), 2 = usage/connect error.
//
//===----------------------------------------------------------------------===//

#include "farm/FarmClient.h"
#include "serve/Batch.h"
#include "serve/Client.h"
#include "serve/Serve.h"
#include "support/Cli.h"
#include "support/FaultInjection.h"
#include "support/Signals.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace vbmc;
using namespace vbmc::serve;

namespace {

void printUsage() {
  std::puts(
      "usage: vbmc-serve --socket PATH [options]     run the daemon\n"
      "       vbmc-serve --connect PATH FILE...      submit checks\n"
      "daemon:\n"
      "  --socket PATH       unix-domain socket to listen on (required)\n"
      "  --workers N         persistent worker processes (default 2)\n"
      "  --queue-cap N       admission queue bound; beyond it requests\n"
      "                      are shed with a retry-after hint (default 64)\n"
      "  --default-deadline S  deadline for requests without one\n"
      "                      (default 30; 0 = unlimited)\n"
      "  --max-line-bytes N  request line ceiling (default 1048576)\n"
      "  --no-retry          do not retry after a worker death\n"
      "  --backoff S         respawn backoff base (default 0.05)\n"
      "  --breaker N         consecutive no-progress deaths before a\n"
      "                      slot's circuit breaker trips (default 5)\n"
      "  --cache-entries N   per-worker Engine encoding-cache capacity\n"
      "                      (default 16)\n"
      "  --verdict-cache N   supervisor cross-request verdict cache\n"
      "                      capacity (default 256; 0 disables)\n"
      "  --drain-after N     drain once N requests were answered\n"
      "                      (default 0 = only on signal; for tests)\n"
      "  --report-json FILE|-  write the vbmc-serve-summary/v1 document\n"
      "                      on shutdown\n"
      "  --trace-out FILE    record serve.request spans (Chrome trace)\n"
      "  --quiet             no startup/shutdown chatter on stderr\n"
      "client:\n"
      "  --connect PATH      daemon socket to connect to\n"
      "  --connect-timeout S wait for the daemon to come up (default 10)\n"
      "  --mode M            engine mode for every request (default\n"
      "                      incremental)\n"
      "  --k N --l N --max-k N --threads N   bounds (vbmc defaults)\n"
      "  --deadline S        per-request deadline (default 0 = server's)\n"
      "  --priority N        scheduling priority (default 0)\n"
      "  --repeat N          submit each FILE N times (default 1)\n"
      "  --timeout S         wait for responses (default 300)\n"
      "  --max-shed-retries N  resubmits per shed request, honoring the\n"
      "                      daemon's retry-after hint (default 32)");
}

int runDaemon(const CommandLine &CL) {
  ServerOptions O;
  O.SocketPath = CL.getString("socket");
  O.Workers = static_cast<unsigned>(CL.getInt("workers", 2));
  O.QueueCap = static_cast<size_t>(CL.getInt("queue-cap", 64));
  O.MaxLineBytes =
      static_cast<size_t>(CL.getInt("max-line-bytes", 1 << 20));
  O.DefaultDeadlineSeconds = CL.getDouble("default-deadline", 30);
  O.Retry = !CL.hasFlag("no-retry");
  O.BackoffSeconds = CL.getDouble("backoff", 0.05);
  O.BreakerThreshold = static_cast<unsigned>(CL.getInt("breaker", 5));
  O.CacheEntries = static_cast<size_t>(CL.getInt("cache-entries", 16));
  O.VerdictCacheEntries =
      static_cast<size_t>(CL.getInt("verdict-cache", 256));
  O.DrainAfterRequests =
      static_cast<uint64_t>(CL.getInt("drain-after", 0));
  // Shard requests (vbmc-farm/vbmc-fuzz --connect) run whole universe
  // shards inside the workers; the tool wires the farm runner in, the
  // library stays farm-agnostic.
  O.ShardRunner = [](const std::string &Spec, double DeadlineSeconds) {
    return farm::runShardSpec(Spec, DeadlineSeconds);
  };
  std::string TracePath = CL.getString("trace-out");
  O.EnableTrace = !TracePath.empty();
  const bool Quiet = CL.hasFlag("quiet");

  signals::installDrainHandlers();
  Server S(O);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "vbmc-serve: %s\n", Err.c_str());
    return 2;
  }
  if (!Quiet)
    std::fprintf(stderr, "vbmc-serve: listening on %s (%u workers)\n",
                 O.SocketPath.c_str(), O.Workers);
  int Rc = S.wait();
  if (!Quiet) {
    const ServerSummary &Sum = S.summary();
    std::fprintf(stderr,
                 "vbmc-serve: drained (%s): %llu accepted, %llu answered, "
                 "%llu shed, %llu restarts\n",
                 Sum.DrainReason.c_str(),
                 static_cast<unsigned long long>(Sum.Accepted),
                 static_cast<unsigned long long>(Sum.Answered),
                 static_cast<unsigned long long>(Sum.Shed),
                 static_cast<unsigned long long>(Sum.WorkerRestarts));
  }

  std::string JsonPath = CL.getString("report-json");
  if (!JsonPath.empty()) {
    std::string Doc = S.formatSummaryJson();
    if (JsonPath == "-") {
      std::printf("%s\n", Doc.c_str());
    } else {
      std::ofstream Out(JsonPath);
      Out << Doc << '\n';
      if (!Out) {
        std::fprintf(stderr, "vbmc-serve: cannot write summary to '%s'\n",
                     JsonPath.c_str());
        return Rc ? Rc : 1;
      }
    }
  }
  if (!TracePath.empty()) {
    std::ofstream Out(TracePath);
    Out << S.trace().formatChromeTrace() << '\n';
  }
  return Rc;
}

int runClient(const CommandLine &CL) {
  std::string Sock = CL.getString("connect");
  const std::vector<std::string> &Files = CL.positionals();
  if (Files.empty()) {
    std::fprintf(stderr, "vbmc-serve: --connect needs FILE arguments\n");
    return 2;
  }

  Request Base;
  Base.Check.Mode = driver::EngineMode::Incremental;
  std::string Mode = CL.getString("mode", "incremental");
  if (!driver::engineModeFromName(Mode, Base.Check.Mode)) {
    std::fprintf(stderr, "vbmc-serve: unknown mode '%s'\n", Mode.c_str());
    return 2;
  }
  Base.Check.Opts.K = static_cast<uint32_t>(CL.getInt("k", Base.Check.Opts.K));
  Base.Check.Opts.L = static_cast<uint32_t>(CL.getInt("l", Base.Check.Opts.L));
  Base.Check.MaxK = static_cast<uint32_t>(CL.getInt("max-k", Base.Check.MaxK));
  Base.Check.Threads =
      static_cast<uint32_t>(CL.getInt("threads", Base.Check.Threads));
  Base.DeadlineSeconds = CL.getDouble("deadline", 0);
  Base.Priority = CL.getInt("priority", 0);
  uint64_t Repeat = static_cast<uint64_t>(CL.getInt("repeat", 1));
  if (Repeat < 1)
    Repeat = 1;
  double RecvTimeout = CL.getDouble("timeout", 300);

  Client C;
  std::string Err;
  if (!C.connect(Sock, CL.getDouble("connect-timeout", 10), &Err)) {
    std::fprintf(stderr, "vbmc-serve: %s\n", Err.c_str());
    return 2;
  }

  std::vector<Request> Batch;
  for (uint64_t Round = 0; Round < Repeat; ++Round) {
    for (size_t F = 0; F < Files.size(); ++F) {
      const std::string &File = Files[F];
      std::ifstream In(File);
      if (!In) {
        std::fprintf(stderr, "vbmc-serve: cannot read '%s'\n", File.c_str());
        return 2;
      }
      std::ostringstream Text;
      Text << In.rdbuf();
      Request R = Base;
      R.Program = Text.str();
      R.Id = File + "#" + std::to_string(Round) + "." + std::to_string(F);
      Batch.push_back(std::move(R));
    }
  }

  // The shed-resubmit / deadline bookkeeping lives in serve::runBatch
  // (shared with the farm/fuzz client mode); this loop just prints.
  BatchOptions BO;
  BO.TimeoutSeconds = RecvTimeout;
  BO.MaxShedRetries =
      static_cast<uint64_t>(CL.getInt("max-shed-retries", 32));
  BO.OnResponse = [](const Response &R) {
    std::printf("%s\t%s\t%s%s%s%s\n", R.Id.c_str(), R.Status.c_str(),
                R.Status == "ok" ? R.Verdict.c_str() : R.Error.c_str(),
                R.Failure.empty() || R.Failure == "none" ? "" : "\tfailure=",
                R.Failure.empty() || R.Failure == "none" ? ""
                                                         : R.Failure.c_str(),
                R.Cached ? "\tcached" : "");
  };
  BatchResult BR = runBatch(C, Batch, BO);
  if (!BR.complete()) {
    std::fprintf(stderr,
                 "vbmc-serve: %llu of %llu responses missing (last: %s)\n",
                 static_cast<unsigned long long>(BR.Sent - BR.Answered),
                 static_cast<unsigned long long>(BR.Sent),
                 BR.LastError.c_str());
    return 1;
  }
  std::fprintf(stderr, "vbmc-serve: %llu responses (%llu not ok)\n",
               static_cast<unsigned long long>(BR.Answered),
               static_cast<unsigned long long>(BR.NotOk));
  return 0;
}

int runMain(int Argc, char **Argv) {
  CommandLine CL =
      CommandLine::parse(Argc, Argv, {"no-retry", "quiet", "help"});
  if (CL.hasFlag("help")) {
    printUsage();
    return 0;
  }
  std::vector<std::string> Unknown = CL.unknownFlags(
      {"socket", "workers", "queue-cap", "max-line-bytes",
       "default-deadline", "no-retry", "backoff", "breaker", "cache-entries",
       "verdict-cache", "drain-after", "report-json", "trace-out", "quiet",
       "connect",
       "connect-timeout", "mode", "k", "l", "max-k", "threads", "deadline",
       "priority", "repeat", "timeout", "max-shed-retries", "inject-fault",
       "help"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "vbmc-serve: unknown flag '--%s'\n", F.c_str());
    printUsage();
    return 2;
  }

  // Hidden self-test hook (see support/FaultInjection.h): workers inherit
  // the programmatic fault state across fork, so CI can prove the pool
  // self-heals around a crashing worker.
  if (CL.hasFlag("inject-fault"))
    fault::enable(CL.getString("inject-fault"));

  if (CL.hasFlag("connect"))
    return runClient(CL);
  if (!CL.hasFlag("socket") || CL.getString("socket").empty()) {
    std::fprintf(stderr, "vbmc-serve: --socket PATH is required\n");
    printUsage();
    return 2;
  }
  if (!CL.positionals().empty()) {
    std::fprintf(stderr, "vbmc-serve: unexpected argument '%s'\n",
                 CL.positionals().front().c_str());
    return 2;
  }
  return runDaemon(CL);
}

} // namespace

int main(int Argc, char **Argv) {
  try {
    return runMain(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "vbmc-serve: error: out of memory (failure=oom)\n");
    return 2;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "vbmc-serve: error: internal failure: %s\n",
                 E.what());
    return 2;
  }
}
