//===- Serve.h - the crash-tolerant verification daemon ----------*- C++ -*-===//
///
/// \file
/// `vbmc-serve`: a long-running verification service. Clients connect to
/// a unix-domain socket and exchange newline-delimited JSON — one
/// `vbmc-serve-request/v1` object per line in, one
/// `vbmc-serve-response/v1` object per line out (responses stream back as
/// they complete, matched by id, possibly out of order). See
/// docs/SERVING.md for the full protocol.
///
/// Robustness model:
///
///  * requests pass admission control: malformed lines (bad JSON,
///    unknown keys, oversize) are rejected per-line without poisoning
///    the connection; a full queue sheds with a retry-after hint
///    instead of queueing unboundedly;
///  * accepted requests carry a deadline and a priority; the scheduler
///    serves highest priority first (earliest deadline breaking ties)
///    and deadline-outs work it can no longer finish in time;
///  * checks run on a pool of persistent sandboxed worker *processes*
///    (one Engine each, its LRU encoding cache warming across the
///    requests it serves); a worker crash/OOM/kill is classified via the
///    sandbox::FailureKind taxonomy, the request is retried once at
///    halved bounds after an exponential backoff, and the supervisor
///    respawns the worker — a restart-storm circuit breaker stops
///    respawning a slot that dies repeatedly without serving anything;
///  * SIGTERM/SIGINT drain gracefully: stop admitting, answer every
///    accepted request (finishing or deadline-outing it), flush, exit 0.
///    Every accepted request is answered — with a verdict or a
///    classified failure — never dropped.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SERVE_SERVE_H
#define VBMC_SERVE_SERVE_H

#include "support/CheckContext.h"
#include "vbmc/Engine.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace vbmc::serve {

inline constexpr const char *RequestSchema = "vbmc-serve-request/v1";
inline constexpr const char *ResponseSchema = "vbmc-serve-response/v1";
inline constexpr const char *SummarySchema = "vbmc-serve-summary/v1";

/// One check request as it crosses the wire. Defaults mirror the vbmc
/// CLI's; Id and Program are the only required fields.
struct Request {
  std::string Id;
  std::string Program; ///< Program text in the Fig. 1 concrete syntax.
  driver::CheckRequest Check;
  /// Wall-clock budget for this request, measured from admission
  /// (0 = the server's default). Covers queueing AND solving: a request
  /// that waits too long is answered with a classified timeout.
  double DeadlineSeconds = 0;
  /// Higher runs first; ties go to the earlier deadline, then FIFO.
  int64_t Priority = 0;
  /// Farm-client mode: an opaque shard spec (vbmc-farm-shard-spec/v1
  /// JSON) executed by the daemon's ShardRunner instead of a single
  /// program check. Mutually exclusive with Program. Shard requests
  /// bypass the verdict cache, affinity and the halved-bounds retry — a
  /// worker death is classified and reported so the client can
  /// split-and-requeue.
  std::string ShardJson;

  bool isShard() const { return !ShardJson.empty(); }
};

/// Renders \p R as one normalized request line (every field explicit).
std::string formatRequestLine(const Request &R);

/// Parses and validates one request line. False on bad JSON, a non-object,
/// a wrong schema value, an unknown key, a missing/empty id or program, or
/// an ill-typed field — with a one-line reason in \p Err. \p IdOut (when
/// non-null) receives the id if one was readable, so rejections can still
/// be matched by the client. Does NOT parse the program text; the server
/// does that at admission so parse errors reject before queueing.
bool parseRequestLine(const std::string &Line, Request &R, std::string &Err,
                      std::string *IdOut = nullptr);

/// A parsed response line (the client-side view).
struct Response {
  std::string Id;
  /// "ok" (report present), "rejected" (bad request; Error says why), or
  /// "shed" (admission refused; RetryAfterSeconds hints when to retry).
  std::string Status;
  std::string Error;
  double RetryAfterSeconds = 0;
  uint64_t Retries = 0;
  /// From the embedded report: "safe" | "unsafe" | "unknown" ("" unless ok).
  std::string Verdict;
  /// From the embedded report: "none" | "crash" | "oom" | "timeout" | "exit".
  std::string Failure;
  /// The embedded vbmc-run-report/v1 document, verbatim ("" unless ok).
  /// Shard requests embed a vbmc-farm-shard/v1 document instead.
  std::string ReportJson;
  /// True when the answer came from the supervisor's cross-request
  /// verdict cache (no worker touched it; Retries is 0).
  bool Cached = false;
};

/// Parses one response line; false with \p Err on malformed input.
bool parseResponseLine(const std::string &Line, Response &Out,
                       std::string &Err);

struct ServerOptions {
  std::string SocketPath;
  /// Persistent worker processes (= max in-flight checks).
  unsigned Workers = 2;
  /// Bounded admission queue; a request arriving with the queue full is
  /// shed with a retry-after hint.
  size_t QueueCap = 64;
  /// Per-line byte ceiling; longer request lines are rejected.
  size_t MaxLineBytes = 1u << 20;
  /// Deadline for requests that do not bring one (0 = unlimited).
  double DefaultDeadlineSeconds = 30;
  /// Retry a worker-death-classified request once at halved bounds.
  bool Retry = true;
  /// Base of the exponential respawn/retry backoff.
  double BackoffSeconds = 0.05;
  /// Circuit breaker: consecutive worker deaths on one slot with no
  /// request served in between before the slot stops respawning.
  unsigned BreakerThreshold = 5;
  /// Encoding-cache capacity of each worker's Engine.
  size_t CacheEntries = 16;
  /// Capacity of the supervisor's cross-request verdict cache (0 =
  /// disabled). Keys are driver::verdictCacheKey over the parsed program
  /// and the full solve-relevant option tuple; only conclusive
  /// (safe/unsafe, failure-free, non-reduced-bounds) first-attempt
  /// verdicts are inserted, so a hit is sound regardless of the budget
  /// the repeat request brings.
  size_t VerdictCacheEntries = 256;
  /// Executes a shard request's spec inside a worker and returns the
  /// vbmc-farm-shard/v1 result document (empty string = internal error).
  /// Left empty, shard requests are rejected at admission. Wired up by
  /// tool mains that link the farm library (farm::runShardSpec).
  std::function<std::string(const std::string &ShardJson,
                            double DeadlineSeconds)>
      ShardRunner;
  /// Drain automatically once this many accepted requests were answered
  /// (0 = only on request; used by tests and benches).
  uint64_t DrainAfterRequests = 0;
  /// Record serve.request spans (the daemon's --trace-out).
  bool EnableTrace = false;
};

/// Counters the summary document reports (the StatsRegistry carries the
/// same values under serve.*).
struct ServerSummary {
  uint64_t Received = 0;    ///< Parseable or not, every request line.
  uint64_t Accepted = 0;    ///< Admitted to the queue.
  uint64_t Answered = 0;    ///< Accepted requests answered (== Accepted
                            ///< after a clean drain).
  uint64_t Rejected = 0;    ///< Malformed / invalid requests.
  uint64_t Shed = 0;        ///< Refused by admission control.
  uint64_t Retries = 0;     ///< Halved-bounds re-runs after worker death.
  uint64_t WorkerRestarts = 0;
  uint64_t BreakerTrips = 0;
  uint64_t QueuePeak = 0;
  uint64_t InFlightPeak = 0;
  uint64_t CacheHits = 0;      ///< Answered from the verdict cache.
  uint64_t CacheMisses = 0;    ///< Cacheable lookups that missed.
  uint64_t CacheEvictions = 0; ///< Capacity-pressure evictions.
  uint64_t CacheEntriesUsed = 0; ///< Entries resident at drain.
  uint64_t CacheCapacity = 0;    ///< Configured capacity.
  uint64_t AffinityHits = 0;   ///< Dispatches to a slot already warm
                               ///< for the job's encoding key.
  uint64_t AffinityMisses = 0; ///< Dispatches that had to cold-start.
  std::map<std::string, uint64_t> Verdicts; ///< verdict name -> count.
  std::map<std::string, uint64_t> Failures; ///< failure name -> count (faults only).
  bool DrainRequested = false;
  std::string DrainReason; ///< "sigterm", "sigint", "api", "drain-after".
  double UptimeSeconds = 0;
};

/// The daemon. start() binds the socket and spawns the pool; wait()
/// blocks until a drain completes. Drains come from requestDrain() (the
/// test path), from the process-wide signals::drainRequested() flag (the
/// SIGTERM/SIGINT path), or from DrainAfterRequests.
class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and brings up workers and service threads. False
  /// with \p Err on failure (no partial daemon is left behind).
  bool start(std::string *Err);

  /// Stops admission; accepted work is finished or deadline-outed,
  /// responses flush, then wait() returns. Idempotent, thread-safe.
  void requestDrain(const std::string &Reason = "api");

  /// Blocks until drained and torn down. 0 on a clean drain (every
  /// accepted request answered).
  int wait();

  /// Valid after wait() returned.
  const ServerSummary &summary() const;

  /// The vbmc-serve-summary/v1 document (valid after wait()).
  std::string formatSummaryJson() const;

  /// The server-global registry (serve.* counters). Thread-safe.
  StatsRegistry &stats();

  /// The server's span recorder (serve.request spans when EnableTrace).
  TraceRecorder &trace();

  class Impl;

private:
  std::unique_ptr<Impl> I;
};

} // namespace vbmc::serve

#endif // VBMC_SERVE_SERVE_H
