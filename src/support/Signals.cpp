//===- Signals.cpp - cooperative drain on SIGTERM/SIGINT --------*- C++ -*-===//

#include "support/Signals.h"

#include <atomic>
#include <csignal>

namespace {

// Plain atomics only: everything the handler touches must be
// async-signal-safe. sig_atomic_t would do for the flag; std::atomic<int>
// carries the signal number too and is lock-free on every platform we
// build for.
std::atomic<int> DrainSig{0};
std::atomic<bool> Installed{false};

extern "C" void drainHandler(int Sig) {
  int Expected = 0;
  if (!DrainSig.compare_exchange_strong(Expected, Sig)) {
    // Second delivery: the drain is taking too long for the caller's
    // taste. Restore the default disposition and re-raise so the process
    // dies with the conventional signal status. std::signal and raise
    // are async-signal-safe.
    std::signal(Sig, SIG_DFL);
    std::raise(Sig);
  }
}

} // namespace

void vbmc::signals::installDrainHandlers() {
  if (Installed.exchange(true))
    return;
  std::signal(SIGTERM, drainHandler);
  std::signal(SIGINT, drainHandler);
}

bool vbmc::signals::drainRequested() {
  return DrainSig.load(std::memory_order_acquire) != 0;
}

int vbmc::signals::drainSignal() {
  return DrainSig.load(std::memory_order_acquire);
}

void vbmc::signals::requestDrain() {
  int Expected = 0;
  DrainSig.compare_exchange_strong(Expected, SIGTERM);
}

void vbmc::signals::resetForTesting() { DrainSig.store(0); }
