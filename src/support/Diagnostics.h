//===- Diagnostics.h - error reporting without exceptions ------*- C++ -*-===//
//
// Part of the VBMC reproduction of "Verification of Programs under the
// Release-Acquire Semantics" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error-propagation utilities. The code base does not use C++
/// exceptions; fallible operations return an ErrorOr<T> whose failure arm
/// carries a human-readable message (lower-case first word, no trailing
/// period, in the style of compiler diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_DIAGNOSTICS_H
#define VBMC_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vbmc {

/// A source position inside a program text (1-based line and column).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// A diagnostic message, optionally anchored to a source location.
class Diagnostic {
public:
  Diagnostic() = default;
  Diagnostic(std::string Message, SourceLoc Loc = SourceLoc())
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc location() const { return Loc; }

  /// Renders "line:col: message" (or just the message when unanchored).
  std::string str() const;

private:
  std::string Message;
  SourceLoc Loc;
};

/// Either a value of type T or a Diagnostic explaining why no value could be
/// produced. Modeled after llvm::ErrorOr but carrying a message instead of a
/// std::error_code.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Diagnostic Diag) : Storage(std::move(Diag)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Diagnostic &error() const {
    assert(!*this && "accessing error of successful ErrorOr");
    return std::get<Diagnostic>(Storage);
  }

  /// Moves the contained value out. Only valid on success.
  T take() {
    assert(*this && "taking value of failed ErrorOr");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Diagnostic> Storage;
};

/// Aborts with a message. Used for invariant violations that indicate a bug
/// in VBMC itself rather than in the analyzed program.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace vbmc

#endif // VBMC_SUPPORT_DIAGNOSTICS_H
