//===- Budget.h - unified resource budget vocabulary ------------*- C++ -*-===//
///
/// \file
/// One budget vocabulary for every backend. Before this header existed the
/// same four ideas — wall clock, solver conflicts, solver propagations,
/// backend work units — were spelled as near-identical positional
/// parameters and option fields in five places (`sat::Solver::solve`,
/// `bmc::BmcOptions`, `sc::ScQuery`, `smc::SmcOptions`, and the
/// CheckContext plumbing). A Budget names them once:
///
///  * `Seconds`      wall-clock budget (0 = unlimited), turned into a
///                   `Deadline` at the point the work starts;
///  * `Conflicts`    CDCL conflict cap (0 = unlimited);
///  * `Propagations` CDCL propagation cap (0 = unlimited) — a
///                   deterministic work measure, unlike wall clock;
///  * `Work`         backend-specific work units: explicit-state visits
///                   for the SC explorer, executions for the statistical
///                   checker (0 = unlimited).
///
/// Budgets are plain data with fluent builders so call sites read as
/// `Budget::seconds(5).withConflicts(10000)`.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_BUDGET_H
#define VBMC_SUPPORT_BUDGET_H

#include "support/Timer.h"

#include <cstdint>

namespace vbmc::support {

struct Budget {
  /// Wall-clock budget in seconds; non-positive = unlimited.
  double Seconds = 0;
  /// CDCL conflict cap; 0 = unlimited.
  uint64_t Conflicts = 0;
  /// CDCL propagation cap; 0 = unlimited.
  uint64_t Propagations = 0;
  /// Backend-specific work units (states, executions); 0 = unlimited.
  uint64_t Work = 0;

  constexpr Budget() = default;

  /// True when no dimension is bounded.
  bool unlimited() const {
    return Seconds <= 0 && Conflicts == 0 && Propagations == 0 && Work == 0;
  }

  /// A Deadline whose clock starts now; default-constructed (no expiry)
  /// when Seconds is unlimited.
  Deadline startDeadline() const {
    return Seconds > 0 ? Deadline(Seconds) : Deadline();
  }

  static Budget seconds(double S) {
    Budget B;
    B.Seconds = S;
    return B;
  }

  Budget &withSeconds(double S) {
    Seconds = S;
    return *this;
  }
  Budget &withConflicts(uint64_t N) {
    Conflicts = N;
    return *this;
  }
  Budget &withPropagations(uint64_t N) {
    Propagations = N;
    return *this;
  }
  Budget &withWork(uint64_t N) {
    Work = N;
    return *this;
  }
};

} // namespace vbmc::support

#endif // VBMC_SUPPORT_BUDGET_H
