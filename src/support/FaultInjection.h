//===- FaultInjection.h - named fault hooks for the fuzz harness -*- C++ -*-===//
///
/// \file
/// A registry of named, deliberately-introduced bugs used to validate the
/// differential fuzzing harness: enabling a fault makes exactly one
/// backend subtly wrong, and the harness must detect the resulting
/// cross-backend disagreement and minimize it to a small witness. Faults
/// are disabled by default and cost a single branch on a cold path when
/// queried, so production behaviour is unchanged.
///
/// Faults are enabled programmatically (tests) or through the
/// `VBMC_FAULTS` environment variable (comma-separated names), which the
/// hidden `--inject-fault` flag of `vbmc-fuzz` sets up. Known names:
///
///   axiomatic.drop-coherence   checkRaConsistent skips the hb;eco
///                              coherence axiom, admitting executions the
///                              operational semantics forbids (e.g. the
///                              stale-read outcome of message passing);
///   axiomatic.drop-atomicity   checkRaConsistent skips the CAS
///                              mo-adjacency axiom;
///   translation.drop-publish   [[.]]_K never emits the optional publish
///                              step after a write, so the translated
///                              program misses every cross-thread
///                              behaviour that needs a message (direct RA
///                              exploration disagrees at K >= 1).
///
/// A second family validates the fault-tolerance layer (support/Sandbox.h)
/// instead of the differential harness: these kill or bloat the backend
/// stage so tests can prove the sandbox classifies every death mode.
///
///   backend.crash              the backend stage raises SIGSEGV before
///                              solving;
///   backend.hog-memory         the backend stage allocates until the
///                              memory ceiling (or a 256 MB safety cap)
///                              kills it with bad_alloc;
///   backend.crash-odd          backend.crash, but only when the
///                              translated program has an odd statement
///                              count;
///   backend.hog-even           backend.hog-memory for even counts — one
///                              fixed-seed fuzz campaign then contains
///                              both death modes deterministically.
///   farm.worker-crash          a farm shard worker (src/farm) raises
///                              SIGSEGV when it reaches universe index 3,
///                              so tests can prove the farm's split-and-
///                              requeue descent converges on the killing
///                              index and witnesses it while the run
///                              completes.
///
/// A third family targets the serving layer (src/serve); serve workers
/// inherit programmatically enabled faults across fork, so enabling one
/// in the daemon process arms every worker.
///
///   serve.worker-crash         a serve worker raises SIGSEGV on the 3rd
///                              request it serves, so tests can prove the
///                              supervisor classifies the death, retries
///                              the victim request and respawns the slot;
///   serve.hog-memory           a serve worker allocates until bad_alloc
///                              (256 MB cap) before solving, exiting with
///                              the OOM marker code — the oom
///                              classification path;
///   serve.slow-request         a serve worker sleeps ~1.5s before
///                              solving, so short-deadline requests
///                              deterministically deadline-out and the
///                              supervisor's kill-on-deadline path runs.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_FAULTINJECTION_H
#define VBMC_SUPPORT_FAULTINJECTION_H

#include <string>
#include <vector>

namespace vbmc::fault {

/// True when fault \p Name was enabled via enable() or VBMC_FAULTS.
bool enabled(const std::string &Name);

void enable(const std::string &Name);
void disable(const std::string &Name);

/// Disables every programmatically enabled fault (VBMC_FAULTS re-applies
/// on the next query).
void clearAll();

/// Names of the currently enabled faults, sorted.
std::vector<std::string> active();

/// RAII enabling of one fault for the duration of a scope (tests).
class ScopedFault {
public:
  explicit ScopedFault(std::string Name) : Name(std::move(Name)) {
    enable(this->Name);
  }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
  ~ScopedFault() { disable(Name); }

private:
  std::string Name;
};

} // namespace vbmc::fault

#endif // VBMC_SUPPORT_FAULTINJECTION_H
