//===- Sandbox.h - process-isolated execution with resource caps -*- C++ -*-===//
///
/// \file
/// Fault tolerance for verification attempts: run a unit of work in a
/// forked child under kernel-enforced resource limits, and classify every
/// way the child can die instead of letting it take the engine down.
///
/// The protocol is deliberately small:
///
///  * the parent forks; the child applies `setrlimit` caps (RLIMIT_AS for
///    address space above the fork-time baseline, RLIMIT_CPU as a kernel
///    backstop for runaway computation), runs the payload function, writes
///    the payload's string result into a pipe, and `_exit(0)`s;
///  * the parent drains the pipe while polling `waitpid`, enforcing the
///    wall-clock deadline (and the caller's CancellationToken) itself with
///    SIGKILL — a child stuck in a non-cooperative loop cannot outlive its
///    budget;
///  * child death is classified into a FailureKind: a signal is a Crash,
///    an allocation failure (rlimit hit, `std::bad_alloc`, new-handler) is
///    OutOfMemory, a parent- or kernel-delivered kill on budget is a
///    Timeout, and a nonzero exit without a report is an ExitFailure.
///
/// FailureKind is also the engine-wide taxonomy for *in-process* graceful
/// degradation: the BMC encoder reports OutOfMemory when its circuit
/// exceeds the configured byte ceiling, without any fork involved. The
/// verdict layer carries the kind alongside Verdict::Unknown so callers
/// (CLI exit codes, the fuzz campaign, retry policies) can branch on the
/// cause of an inconclusive answer.
///
/// Not related to src/vbmc/Robustness.h, which checks RA-vs-SC
/// *robustness* of the input program — an unfortunate terminology clash;
/// this file is about the tool surviving its own backends.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_SANDBOX_H
#define VBMC_SUPPORT_SANDBOX_H

#include <cstdint>
#include <functional>
#include <string>

namespace vbmc {
class CancellationToken;
}

namespace vbmc::sandbox {

/// Why a verification attempt failed to produce a verdict. Carried next
/// to Verdict::Unknown; None means the Unknown has a cooperative cause
/// (deadline polled, state cap, cancellation) rather than a fault.
enum class FailureKind {
  None,        ///< No fault: completed, or cooperatively inconclusive.
  Crash,       ///< Died on a signal (SIGSEGV, SIGABRT, ...).
  OutOfMemory, ///< Allocation failure: rlimit, bad_alloc, byte ceiling.
  Timeout,     ///< Killed on the wall-clock or CPU budget without a verdict.
  ExitFailure, ///< Exited with a nonzero code and no report.
};

/// Short stable name: "none", "crash", "oom", "timeout", "exit".
const char *failureKindName(FailureKind K);

/// True for the kinds that count as faults (everything but None).
inline bool isFailure(FailureKind K) { return K != FailureKind::None; }

struct SandboxOptions {
  /// Address-space headroom for the child in bytes, enforced with
  /// RLIMIT_AS *above* the fork-time baseline (the child inherits the
  /// parent's mappings, so an absolute cap below the baseline would fail
  /// every allocation instantly). 0 = unlimited.
  uint64_t MemLimitBytes = 0;
  /// Wall-clock budget enforced by the parent via SIGKILL; also installs
  /// an RLIMIT_CPU backstop slightly above it. 0/infinity = unlimited.
  double TimeoutSeconds = 0;
  /// Optional cooperative cancellation: when the token reports cancelled
  /// the parent kills the child and the outcome is marked Cancelled (not
  /// a failure).
  const CancellationToken *Cancel = nullptr;
};

struct SandboxOutcome {
  /// True when the child ran to completion and delivered its report.
  bool Completed = false;
  /// True when the child was killed because Options.Cancel fired; never
  /// counted as a failure.
  bool Cancelled = false;
  FailureKind Failure = FailureKind::None;
  /// Child exit code when it exited; the killing signal when it died on
  /// one (see Failure for the classification).
  int ExitCode = 0;
  int Signal = 0;
  /// The payload function's return value (complete only when Completed).
  std::string Payload;
  /// One-line human-readable classification of the failure.
  std::string Detail;
};

/// True when process isolation is supported on this platform (POSIX).
/// When false, runInSandbox degrades to calling the payload in-process
/// with no resource governance (callers keep working, unprotected).
bool available();

/// Runs \p Fn in a forked child under \p O and returns the classified
/// outcome. The payload's string return value is piped back verbatim;
/// payloads larger than the pipe capacity are streamed (the parent drains
/// while waiting). Thread-safe: concurrent callers fork independent
/// children. The child never returns from this function.
SandboxOutcome runInSandbox(const SandboxOptions &O,
                            const std::function<std::string()> &Fn);

/// Exit code the child uses to report an allocation failure (so the
/// parent can classify OutOfMemory even when bad_alloc was thrown before
/// the rlimit was reached). Also documented in docs/FAULT_TOLERANCE.md.
constexpr int OomExitCode = 77;
/// Exit code for a payload that died on an uncaught non-OOM exception.
constexpr int ExceptionExitCode = 78;

} // namespace vbmc::sandbox

#endif // VBMC_SUPPORT_SANDBOX_H
