//===- Json.h - minimal JSON emission and parsing ----------------*- C++ -*-===//
///
/// \file
/// The observability layer's JSON substrate: locale-independent number
/// formatting/parsing (std::to_chars / std::from_chars — the global C or
/// C++ locale never leaks into machine-readable output, see the Isolation
/// wire-format bug this fixed), a small streaming writer used by the run
/// report, the Chrome trace export and the bench telemetry, and a tiny
/// recursive-descent parser used by the schema-check tests and by anything
/// consuming the reports.
///
/// Deliberately not a general-purpose JSON library: no comments, no
/// NaN/Infinity extensions (non-finite doubles serialize as null), object
/// keys keep insertion order on parse.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_JSON_H
#define VBMC_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vbmc::json {

/// Shortest round-trippable decimal form of \p V, always with a '.' or
/// exponent decimal syntax independent of any locale ("1.5", never "1,5").
/// Non-finite values render as "null" (JSON has no NaN/Infinity).
std::string formatDouble(double V);

/// Locale-independent strict parses: the whole string must be consumed.
/// Return false (leaving \p Out untouched) on empty, trailing garbage, or
/// out-of-range input — the silent-zero failure mode of strtod("") is
/// exactly what these exist to prevent.
bool parseDouble(const std::string &S, double &Out);
bool parseUint(const std::string &S, uint64_t &Out);

/// JSON string escaping (quotes not included): ", \, control characters.
std::string escape(const std::string &S);

/// A streaming JSON writer with just enough state to place commas. Usage:
///   JsonWriter W;
///   W.beginObject().key("verdict").value("safe").endObject();
///   file << W.str();
/// Keys and values must alternate correctly inside objects; the writer
/// does not validate, it only punctuates.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();
  JsonWriter &key(const std::string &K);
  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  JsonWriter &value(double V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint32_t V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// Emits \p Json verbatim in value position (punctuation still handled
  /// by the writer). The caller vouches that the text is one well-formed
  /// JSON value — the report merger uses this to embed a pre-rendered
  /// section (e.g. the farm's deterministic results object) without
  /// round-tripping it through the parser.
  JsonWriter &raw(const std::string &Json);

  const std::string &str() const { return Out; }

private:
  void separate();
  std::string Out;
  /// One entry per open container: whether the next element needs a comma.
  std::vector<bool> NeedComma;
  bool AfterKey = false;
};

/// A parsed JSON value tree.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  /// Members in source order (duplicate keys kept verbatim).
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// First member named \p Key, or nullptr. Only meaningful on objects.
  const Value *get(const std::string &Key) const;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text into \p Out. The whole input (modulo trailing
/// whitespace) must be one JSON value. On failure returns false and, when
/// \p Err is non-null, a one-line diagnostic with the byte offset.
bool parse(const std::string &Text, Value &Out, std::string *Err = nullptr);

/// Re-serializes a parsed \p V (member order preserved). parse(format(V))
/// is the identity on the tree; the report merger uses this to carry
/// records from input documents into the merged artifact verbatim.
std::string format(const Value &V);

} // namespace vbmc::json

#endif // VBMC_SUPPORT_JSON_H
