//===- Diagnostics.cpp ----------------------------------------*- C++ -*-===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace vbmc;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::str() const {
  if (!Loc.isValid())
    return Message;
  return Loc.str() + ": " + Message;
}

void vbmc::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "vbmc fatal error: %s\n", Message.c_str());
  std::abort();
}
