//===- CheckContext.h - shared state of one verification run ----*- C++ -*-===//
///
/// \file
/// The engine-wide context threaded through every stage of a verification
/// run (translation, flatten, unroll, encode, SAT solve, explicit
/// exploration). It bundles the three concerns each layer used to solve on
/// its own with ad-hoc `BudgetSeconds`/`Seconds`/`Work` fields:
///
///  * a monotonic Deadline shared by all stages, so later stages see the
///    *remaining* budget instead of restarting the clock;
///  * a cooperative CancellationToken that concurrent drivers (portfolio
///    racing, parallel K-deepening) use to stop a computation whose result
///    is no longer needed — tokens chain to a parent, so cancelling a whole
///    run also cancels every child;
///  * a thread-safe StatsRegistry of named counters and stage timers that
///    every layer records into, giving `--stats` a per-stage cost
///    breakdown without widening each result struct.
///
/// Contexts are cheap to copy (the token and registry are shared); use
/// child() to create a context that can be cancelled individually while
/// still honoring the parent's deadline, cancellation, and registry.
///
/// Stat naming convention (dotted stage paths, lowercase):
///   translate.seconds / translate.runs      the [[.]]_K translation
///   flatten.seconds                         IR flattening (explicit path)
///   explicit.{seconds,states,transitions}   explicit SC exploration
///   sat.unroll.seconds                      loop unrolling
///   sat.encode.{seconds,nodes}              symbolic execution + circuit
///   sat.solve.{seconds,conflicts,decisions} the CDCL solver
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_CHECKCONTEXT_H
#define VBMC_SUPPORT_CHECKCONTEXT_H

#include "support/Budget.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vbmc {

/// A cooperative cancellation flag. Thread-safe; cancellation is sticky.
/// A token constructed with a parent reports cancelled when either itself
/// or any ancestor was cancelled.
class CancellationToken {
public:
  CancellationToken() = default;
  explicit CancellationToken(std::shared_ptr<const CancellationToken> Parent)
      : Parent(std::move(Parent)) {}

  void cancel() { Flag.store(true, std::memory_order_release); }

  bool cancelled() const {
    if (Flag.load(std::memory_order_acquire))
      return true;
    return Parent && Parent->cancelled();
  }

private:
  std::atomic<bool> Flag{false};
  std::shared_ptr<const CancellationToken> Parent;
};

/// A registry of named counters and accumulated stage times. All methods
/// are thread-safe: portfolio backends on separate threads record into one
/// shared registry.
class StatsRegistry {
public:
  /// Adds \p Delta to counter \p Name (created at zero on first use).
  void addCount(const std::string &Name, uint64_t Delta = 1);

  /// Adds \p S seconds to stage timer \p Name.
  void addSeconds(const std::string &Name, double S);

  /// Current value of a counter (0 when never recorded).
  uint64_t count(const std::string &Name) const;

  /// Accumulated seconds of a stage timer (0 when never recorded).
  double seconds(const std::string &Name) const;

  struct Entry {
    std::string Name;
    bool IsCounter = false; ///< Counter vs. seconds entry.
    uint64_t Count = 0;
    double Seconds = 0;
  };

  /// All entries, sorted by name (counters and timers interleaved). A
  /// name registered as BOTH a counter and a timer would otherwise yield
  /// two indistinguishable entries (and an ambiguous key in serialized
  /// reports), so on collision the timer's serialized name is
  /// disambiguated with a ".seconds" suffix; the counter keeps the plain
  /// name. count()/seconds() lookups are unaffected.
  std::vector<Entry> snapshot() const;

  /// Human-readable dump, one "name = value" line per entry.
  std::string format() const;

  void clear();

private:
  mutable std::mutex M;
  std::map<std::string, uint64_t> Counts;
  std::map<std::string, double> Times;
};

/// RAII timer adding its elapsed time to a StatsRegistry stage on scope
/// exit (accumulating across multiple scopes of the same name).
class ScopedStageTimer {
public:
  ScopedStageTimer(StatsRegistry &Registry, std::string Name)
      : Registry(Registry), Name(std::move(Name)) {}
  ScopedStageTimer(const ScopedStageTimer &) = delete;
  ScopedStageTimer &operator=(const ScopedStageTimer &) = delete;
  ~ScopedStageTimer() { Registry.addSeconds(Name, Watch.elapsedSeconds()); }

private:
  StatsRegistry &Registry;
  std::string Name;
  Timer Watch;
};

/// The shared per-run state: deadline + cancellation + statistics.
class CheckContext {
public:
  /// Unlimited context: no deadline, fresh token, registry and tracer.
  CheckContext()
      : Tok(std::make_shared<CancellationToken>()),
        Stats(std::make_shared<StatsRegistry>()),
        Tr(std::make_shared<TraceRecorder>()) {}

  /// Context whose deadline starts now and expires after \p BudgetSeconds
  /// (non-positive = unlimited).
  explicit CheckContext(double BudgetSeconds) : CheckContext() {
    DL = Deadline(BudgetSeconds);
  }

  /// Context whose deadline starts now per \p B.Seconds (the other budget
  /// dimensions are enforced by whichever backend consumes them).
  explicit CheckContext(const support::Budget &B)
      : CheckContext(B.Seconds) {}

  /// The run-wide monotonic deadline. Copies of this context (and
  /// children) share its start time, so every stage observes the
  /// remaining budget.
  const Deadline &deadline() const { return DL; }

  CancellationToken &token() const { return *Tok; }
  StatsRegistry &stats() const { return *Stats; }

  /// The shared span tracer. Disabled (and near-free) unless something —
  /// `vbmc --trace-out` — calls trace().enable() before the run.
  TraceRecorder &trace() const { return *Tr; }

  /// True when the computation should stop: cancelled or out of budget.
  bool interrupted() const { return Tok->cancelled() || DL.expired(); }

  /// True specifically because of cancellation (distinguishes the
  /// "cancelled" from the "timeout" exit in result notes).
  bool cancelled() const { return Tok->cancelled(); }

  void cancel() const { Tok->cancel(); }

  /// A child context sharing this deadline and registry but carrying its
  /// own token (parented here): cancelling the child does not affect the
  /// parent, cancelling the parent cancels the child.
  CheckContext child() const {
    CheckContext C;
    C.DL = DL;
    C.Tok = std::make_shared<CancellationToken>(
        std::shared_ptr<const CancellationToken>(Tok));
    C.Stats = Stats;
    C.Tr = Tr;
    return C;
  }

  /// Like child(), but with a deadline of at most \p BudgetSeconds from
  /// now (clipped against whatever this context has left). The fuzz
  /// harness uses this to give every generated program its own slice of
  /// the campaign budget, so one pathological program cannot starve the
  /// rest of the run.
  CheckContext childWithBudget(double BudgetSeconds) const {
    CheckContext C = child();
    double Remaining = DL.remainingSeconds();
    double Budget = BudgetSeconds > 0 ? BudgetSeconds : Remaining;
    if (Remaining < Budget)
      Budget = Remaining;
    if (Budget != std::numeric_limits<double>::infinity())
      C.DL = Deadline(Budget > 0 ? Budget : 1e-9); // 1e-9: expire instantly.
    return C;
  }

  /// childWithBudget over the shared budget vocabulary (\p B.Seconds).
  CheckContext childWithBudget(const support::Budget &B) const {
    return childWithBudget(B.Seconds);
  }

private:
  Deadline DL;
  std::shared_ptr<CancellationToken> Tok;
  std::shared_ptr<StatsRegistry> Stats;
  std::shared_ptr<TraceRecorder> Tr;
};

} // namespace vbmc

#endif // VBMC_SUPPORT_CHECKCONTEXT_H
