//===- Trace.h - nestable span tracing ---------------------------*- C++ -*-===//
///
/// \file
/// The engine's span tracer: a thread-safe recorder of named, nested time
/// spans hung off CheckContext next to the StatsRegistry. Every engine
/// stage (translate, flatten, unroll, encode, per-budget solves, portfolio
/// arms, sandboxed children) opens a ScopedSpan; the recorder stays
/// disabled (near-zero cost: one relaxed atomic load per span site) until
/// something asks for a trace — `vbmc --trace-out f.json` — and the
/// collected spans export as Chrome trace_event JSON ("X" complete
/// events), which loads directly in Perfetto (ui.perfetto.dev) or
/// chrome://tracing.
///
/// Timestamps are microseconds relative to the recorder's construction.
/// Thread ids are small dense integers assigned in first-record order, not
/// OS tids — stable across runs, and sandboxed children's spans merge into
/// the parent recorder under fresh ids (shifted by the fork time) so one
/// trace shows the whole process tree.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_TRACE_H
#define VBMC_SUPPORT_TRACE_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vbmc {

/// One completed span. Start/Duration are microseconds relative to the
/// owning recorder's epoch (its construction time).
struct TraceSpan {
  std::string Name;
  std::string Category;
  double StartMicros = 0;
  double DurationMicros = 0;
  uint32_t ThreadId = 0;
};

/// Thread-safe span collector. Recording is off until enable(); span
/// sites are expected to exist unconditionally (ScopedSpan no-ops when
/// the recorder is disabled). The span buffer is capped so a long-lived
/// context (a fuzz campaign tracing thousands of programs) cannot grow
/// without bound; droppedSpans() reports the overflow.
class TraceRecorder {
public:
  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Microseconds elapsed since this recorder's construction.
  double nowMicros() const { return Epoch.elapsedSeconds() * 1e6; }

  /// Records one completed span on the calling thread. No-op while
  /// disabled.
  void record(std::string Name, std::string Category, double StartMicros,
              double DurationMicros);

  /// Records a span of \p Seconds that ends now — for call sites that
  /// already hold a measured duration (the stage-timer pattern) instead
  /// of a ScopedSpan. No-op while disabled.
  void recordElapsed(std::string Name, std::string Category, double Seconds) {
    if (!enabled())
      return;
    double Micros = Seconds * 1e6;
    record(std::move(Name), std::move(Category), nowMicros() - Micros,
           Micros);
  }

  /// Merges spans exported by a sandboxed child's recorder: every span is
  /// shifted by \p OffsetMicros (the parent-clock time the child started)
  /// and each distinct child thread id is remapped to a fresh id here, so
  /// child and parent timelines interleave without colliding.
  void merge(const std::vector<TraceSpan> &Spans, double OffsetMicros);

  std::vector<TraceSpan> snapshot() const;
  uint64_t droppedSpans() const;
  size_t spanCount() const;

  /// Chrome trace_event JSON: a top-level array of "X" (complete) events
  /// with ts/dur in microseconds, sorted by ts (duration-descending on
  /// ties, so parents precede their children). Loads in Perfetto.
  std::string formatChromeTrace() const;

  /// Span-buffer cap; further records bump droppedSpans() instead.
  static constexpr size_t MaxSpans = 1u << 20;

private:
  std::atomic<bool> Enabled{false};
  Timer Epoch;
  mutable std::mutex M;
  std::vector<TraceSpan> Spans;
  std::map<std::thread::id, uint32_t> ThreadIds;
  uint32_t NextThreadId = 0;
  uint64_t Dropped = 0;
};

/// RAII span: opens at construction, records into the recorder at scope
/// exit. All cost is skipped while the recorder is disabled.
class ScopedSpan {
public:
  ScopedSpan(TraceRecorder &Recorder, std::string Name, std::string Category)
      : R(Recorder.enabled() ? &Recorder : nullptr) {
    if (R) {
      this->Name = std::move(Name);
      this->Category = std::move(Category);
      StartMicros = R->nowMicros();
    }
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (R)
      R->record(std::move(Name), std::move(Category), StartMicros,
                R->nowMicros() - StartMicros);
  }

private:
  TraceRecorder *R;
  std::string Name;
  std::string Category;
  double StartMicros = 0;
};

} // namespace vbmc

#endif // VBMC_SUPPORT_TRACE_H
