//===- Sandbox.cpp - fork/rlimit/pipe process isolation ---------*- C++ -*-===//

#include "support/Sandbox.h"

#include "support/CheckContext.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define VBMC_SANDBOX_POSIX 1
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VBMC_SANDBOX_POSIX 0
#endif

using namespace vbmc;
using namespace vbmc::sandbox;

const char *vbmc::sandbox::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::Crash:
    return "crash";
  case FailureKind::OutOfMemory:
    return "oom";
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::ExitFailure:
    return "exit";
  }
  return "?";
}

#if VBMC_SANDBOX_POSIX

namespace {

/// Current address-space size in bytes (VmSize), or 0 when unreadable.
/// The child's RLIMIT_AS is set to baseline + headroom: the fork inherits
/// every parent mapping, so an absolute cap could be dead on arrival.
uint64_t addressSpaceBytes() {
  FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Pages = 0;
  int Got = std::fscanf(F, "%llu", &Pages);
  std::fclose(F);
  if (Got != 1)
    return 0;
  return static_cast<uint64_t>(Pages) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

void applyChildLimits(const SandboxOptions &O, uint64_t Baseline) {
  // No core dumps: a SIGSEGV child should die fast, not write gigabytes.
  struct rlimit NoCore = {0, 0};
  setrlimit(RLIMIT_CORE, &NoCore);

  if (O.MemLimitBytes > 0) {
    rlim_t Cap = static_cast<rlim_t>(Baseline + O.MemLimitBytes);
    struct rlimit Mem = {Cap, Cap};
    setrlimit(RLIMIT_AS, &Mem);
  }

  if (O.TimeoutSeconds > 0 && std::isfinite(O.TimeoutSeconds)) {
    // Kernel backstop for a child spinning while the parent itself is
    // wedged; the parent's SIGKILL on the wall clock is the primary
    // enforcement, so leave generous slack.
    rlim_t Cpu = static_cast<rlim_t>(O.TimeoutSeconds) + 10;
    struct rlimit Lim = {Cpu, Cpu + 5};
    setrlimit(RLIMIT_CPU, &Lim);
  }
}

/// Writes the whole payload; the parent drains concurrently, so a write
/// larger than the pipe buffer makes progress instead of deadlocking.
void writeAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = write(Fd, S.data() + Off, S.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      _exit(ExceptionExitCode); // Parent vanished; nothing to report to.
    }
    Off += static_cast<size_t>(N);
  }
}

[[noreturn]] void runChild(int WriteFd, const SandboxOptions &O,
                           uint64_t Baseline,
                           const std::function<std::string()> &Fn) {
  // An allocation failure anywhere (including inside operator new's
  // internals, where no bad_alloc propagates) becomes the OOM exit code.
  std::set_new_handler([] { _exit(OomExitCode); });
  applyChildLimits(O, Baseline);
  std::string Payload;
  try {
    Payload = Fn();
  } catch (const std::bad_alloc &) {
    _exit(OomExitCode);
  } catch (...) {
    _exit(ExceptionExitCode);
  }
  writeAll(WriteFd, Payload);
  close(WriteFd);
  _exit(0);
}

void drainPipe(int Fd, std::string &Out) {
  char Buf[16384];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return; // EOF, EAGAIN, or error: nothing more right now.
  }
}

SandboxOutcome classify(int Status, bool KilledForTimeout,
                        bool KilledForCancel, const SandboxOptions &O,
                        std::string Payload) {
  SandboxOutcome R;
  R.Payload = std::move(Payload);
  if (WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
    if (R.ExitCode == 0) {
      R.Completed = true;
      return R;
    }
    if (R.ExitCode == OomExitCode) {
      R.Failure = FailureKind::OutOfMemory;
      R.Detail = "out of memory";
      if (O.MemLimitBytes > 0)
        R.Detail +=
            " (mem limit " + std::to_string(O.MemLimitBytes >> 20) + " MB)";
      return R;
    }
    if (R.ExitCode == ExceptionExitCode) {
      R.Failure = FailureKind::Crash;
      R.Detail = "uncaught exception in child";
      return R;
    }
    R.Failure = FailureKind::ExitFailure;
    R.Detail = "child exited with code " + std::to_string(R.ExitCode) +
               " without a report";
    return R;
  }
  if (WIFSIGNALED(Status)) {
    R.Signal = WTERMSIG(Status);
    if (KilledForCancel) {
      R.Cancelled = true;
      R.Detail = "cancelled";
      return R;
    }
    if (KilledForTimeout || R.Signal == SIGXCPU) {
      R.Failure = FailureKind::Timeout;
      R.Detail = "killed on budget";
      if (O.TimeoutSeconds > 0 && std::isfinite(O.TimeoutSeconds)) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), " (%.1fs)", O.TimeoutSeconds);
        R.Detail += Buf;
      }
      return R;
    }
    if (R.Signal == SIGKILL) {
      // We did not send it and no deadline passed: almost certainly the
      // kernel OOM killer.
      R.Failure = FailureKind::OutOfMemory;
      R.Detail = "killed by SIGKILL (likely the kernel OOM killer)";
      return R;
    }
    R.Failure = FailureKind::Crash;
    const char *Name = strsignal(R.Signal);
    R.Detail = "child killed by signal " + std::to_string(R.Signal) +
               (Name ? std::string(" (") + Name + ")" : "");
    return R;
  }
  R.Failure = FailureKind::ExitFailure;
  R.Detail = "child ended in an unrecognized wait status";
  return R;
}

} // namespace

bool vbmc::sandbox::available() { return true; }

SandboxOutcome
vbmc::sandbox::runInSandbox(const SandboxOptions &O,
                            const std::function<std::string()> &Fn) {
  int Fds[2];
  if (pipe(Fds) != 0) {
    SandboxOutcome R;
    R.Failure = FailureKind::ExitFailure;
    R.Detail = std::string("pipe: ") + std::strerror(errno);
    return R;
  }

  // Buffered stdio would otherwise be flushed twice (once per process).
  std::fflush(nullptr);
  uint64_t Baseline = addressSpaceBytes();
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    SandboxOutcome R;
    R.Failure = FailureKind::ExitFailure;
    R.Detail = std::string("fork: ") + std::strerror(errno);
    return R;
  }
  if (Pid == 0) {
    close(Fds[0]);
    runChild(Fds[1], O, Baseline, Fn); // Never returns.
  }

  close(Fds[1]);
  fcntl(Fds[0], F_SETFL, O_NONBLOCK);

  const bool HasDeadline =
      O.TimeoutSeconds > 0 && std::isfinite(O.TimeoutSeconds);
  Deadline DL = HasDeadline ? Deadline(O.TimeoutSeconds) : Deadline();
  std::string Payload;
  bool KilledForTimeout = false;
  bool KilledForCancel = false;
  int Status = 0;
  for (;;) {
    drainPipe(Fds[0], Payload);
    pid_t Done = waitpid(Pid, &Status, WNOHANG);
    if (Done == Pid)
      break;
    if (Done < 0 && errno != EINTR) {
      // Should not happen; treat as a protocol failure.
      Status = 0;
      break;
    }
    bool Cancel = O.Cancel && O.Cancel->cancelled();
    if ((HasDeadline && DL.expired()) || Cancel) {
      KilledForTimeout = !Cancel;
      KilledForCancel = Cancel;
      kill(Pid, SIGKILL);
      // Blocking wait: SIGKILL cannot be ignored, the child is gone soon.
      while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
      }
      break;
    }
    struct timespec Ts = {0, 1000000}; // 1 ms.
    nanosleep(&Ts, nullptr);
  }
  drainPipe(Fds[0], Payload);
  close(Fds[0]);

  SandboxOutcome R =
      classify(Status, KilledForTimeout, KilledForCancel, O,
               std::move(Payload));
  if (R.Completed && R.Payload.empty()) {
    // Exit 0 with no report is a broken protocol, not a success.
    R.Completed = false;
    R.Failure = FailureKind::ExitFailure;
    R.Detail = "child exited cleanly but delivered no report";
  }
  return R;
}

#else // !VBMC_SANDBOX_POSIX

bool vbmc::sandbox::available() { return false; }

SandboxOutcome
vbmc::sandbox::runInSandbox(const SandboxOptions &,
                            const std::function<std::string()> &Fn) {
  // No process isolation on this platform: run unprotected so callers
  // still get an answer (they can check available() to warn).
  SandboxOutcome R;
  try {
    R.Payload = Fn();
    R.Completed = true;
  } catch (const std::bad_alloc &) {
    R.Failure = FailureKind::OutOfMemory;
    R.Detail = "out of memory (in-process)";
  } catch (const std::exception &E) {
    R.Failure = FailureKind::ExitFailure;
    R.Detail = std::string("exception: ") + E.what();
  }
  return R;
}

#endif // VBMC_SANDBOX_POSIX
