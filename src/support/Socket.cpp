//===- Socket.cpp - unix sockets and the newline-delimited protocol -------===//

#include "support/Socket.h"

#if defined(__unix__) || defined(__APPLE__)
#define VBMC_SOCKETS_POSIX 1
#else
#define VBMC_SOCKETS_POSIX 0
#endif

#if VBMC_SOCKETS_POSIX
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace vbmc::sockets {

const char *readStatusName(ReadStatus S) {
  switch (S) {
  case ReadStatus::Line:
    return "line";
  case ReadStatus::Eof:
    return "eof";
  case ReadStatus::Timeout:
    return "timeout";
  case ReadStatus::Oversize:
    return "oversize";
  case ReadStatus::Error:
    return "error";
  }
  return "unknown";
}

#if VBMC_SOCKETS_POSIX

bool available() { return true; }

void Fd::reset() {
  if (Raw >= 0)
    ::close(Raw);
  Raw = -1;
}

namespace {

double monotonicNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Waits until the fd is ready for the given poll events or the deadline
// passes. Returns 1 ready, 0 timeout, -1 error. DeadlineAt <= 0 waits
// forever.
int waitReady(int RawFd, short Events, double DeadlineAt) {
  for (;;) {
    int TimeoutMs = -1;
    if (DeadlineAt > 0) {
      double Left = DeadlineAt - monotonicNow();
      if (Left <= 0)
        return 0;
      // Round up so a sub-millisecond remainder does not spin.
      TimeoutMs = static_cast<int>(Left * 1000.0) + 1;
    }
    struct pollfd P;
    P.fd = RawFd;
    P.events = Events;
    P.revents = 0;
    int R = ::poll(&P, 1, TimeoutMs);
    if (R > 0)
      return 1;
    if (R == 0)
      return 0;
    if (errno == EINTR)
      continue;
    return -1;
  }
}

double deadlineFromTimeout(double TimeoutSeconds) {
  return TimeoutSeconds > 0 ? monotonicNow() + TimeoutSeconds : 0.0;
}

} // namespace

ReadStatus LineChannel::readLine(std::string &Out, size_t MaxBytes,
                                 double TimeoutSeconds) {
  Out.clear();
  if (!Sock.valid())
    return ReadStatus::Error;
  double DeadlineAt = deadlineFromTimeout(TimeoutSeconds);
  for (;;) {
    // Drain whatever is buffered first: a previous recv may have
    // delivered several lines at once.
    while (!Buf.empty()) {
      size_t Nl = Buf.find('\n');
      if (Discard > 0) {
        // Oversize mode: throw bytes away until the newline resyncs us.
        if (Nl == std::string::npos) {
          Discard += Buf.size();
          Buf.clear();
          break;
        }
        Buf.erase(0, Nl + 1);
        Discard = 0;
        return ReadStatus::Oversize;
      }
      if (Nl != std::string::npos) {
        if (Nl > MaxBytes) {
          Buf.erase(0, Nl + 1);
          return ReadStatus::Oversize;
        }
        Out.assign(Buf, 0, Nl);
        Buf.erase(0, Nl + 1);
        return ReadStatus::Line;
      }
      if (Buf.size() > MaxBytes) {
        Discard = Buf.size();
        Buf.clear();
        break;
      }
      break;
    }
    if (SawEof)
      return ReadStatus::Eof;

    int Ready = waitReady(Sock.get(), POLLIN, DeadlineAt);
    if (Ready == 0)
      return ReadStatus::Timeout;
    if (Ready < 0)
      return ReadStatus::Error;

    char Chunk[4096];
    ssize_t N = ::recv(Sock.get(), Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      SawEof = true;
      continue;
    }
    if (errno == EINTR)
      continue;
    return ReadStatus::Error;
  }
}

bool LineChannel::writeLine(const std::string &Line) {
  if (!Sock.valid())
    return false;
  std::string Frame = Line;
  Frame.push_back('\n');
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t N = ::send(Sock.get(), Frame.data() + Off, Frame.size() - Off,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    return false;
  }
  return true;
}

bool LineChannel::shutdownWrite() {
  return Sock.valid() && ::shutdown(Sock.get(), SHUT_WR) == 0;
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (Sock.valid())
    Sock.reset();
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

bool UnixListener::listen(const std::string &SockPath, std::string *Err) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  if (SockPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long (" + std::to_string(SockPath.size()) +
             " bytes; limit is " + std::to_string(sizeof(Addr.sun_path) - 1) +
             "): " + SockPath;
    return false;
  }
  int Raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Raw < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Fd Owned(Raw);
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SockPath.c_str(), SockPath.size() + 1);
  // A stale file from a crashed daemon would make bind fail forever.
  ::unlink(SockPath.c_str());
  if (::bind(Raw, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = "bind " + SockPath + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(Raw, 64) < 0) {
    if (Err)
      *Err = "listen " + SockPath + ": " + std::strerror(errno);
    ::unlink(SockPath.c_str());
    return false;
  }
  Sock = std::move(Owned);
  Path = SockPath;
  return true;
}

Fd UnixListener::accept(double TimeoutSeconds, bool &TimedOut) {
  TimedOut = false;
  if (!Sock.valid())
    return Fd();
  double DeadlineAt = deadlineFromTimeout(TimeoutSeconds);
  for (;;) {
    int Ready = waitReady(Sock.get(), POLLIN, DeadlineAt);
    if (Ready == 0) {
      TimedOut = true;
      return Fd();
    }
    if (Ready < 0)
      return Fd();
    int Conn = ::accept(Sock.get(), nullptr, nullptr);
    if (Conn >= 0)
      return Fd(Conn);
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED)
      continue;
    return Fd();
  }
}

Fd connectUnix(const std::string &Path, double TimeoutSeconds,
               std::string *Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return Fd();
  }
  double DeadlineAt = deadlineFromTimeout(TimeoutSeconds);
  for (;;) {
    int Raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Raw < 0) {
      if (Err)
        *Err = std::string("socket: ") + std::strerror(errno);
      return Fd();
    }
    Fd Owned(Raw);
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    if (::connect(Raw, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Owned;
    // The daemon may still be binding its socket; retry until the
    // caller's deadline instead of failing the first connect.
    bool Retryable = errno == ENOENT || errno == ECONNREFUSED ||
                     errno == EINTR || errno == EAGAIN;
    if (!Retryable || (DeadlineAt > 0 && monotonicNow() >= DeadlineAt)) {
      if (Err)
        *Err = "connect " + Path + ": " + std::strerror(errno);
      return Fd();
    }
    ::usleep(20 * 1000);
  }
}

bool socketPair(Fd &A, Fd &B, std::string *Err) {
  int Raw[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Raw) < 0) {
    if (Err)
      *Err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  A = Fd(Raw[0]);
  B = Fd(Raw[1]);
  return true;
}

#else // !VBMC_SOCKETS_POSIX

bool available() { return false; }

void Fd::reset() { Raw = -1; }

ReadStatus LineChannel::readLine(std::string &, size_t, double) {
  return ReadStatus::Error;
}

bool LineChannel::writeLine(const std::string &) { return false; }

bool LineChannel::shutdownWrite() { return false; }

UnixListener::~UnixListener() {}
void UnixListener::close() {}
bool UnixListener::listen(const std::string &, std::string *Err) {
  if (Err)
    *Err = "unix sockets are not supported on this platform";
  return false;
}
Fd UnixListener::accept(double, bool &TimedOut) {
  TimedOut = false;
  return Fd();
}

Fd connectUnix(const std::string &, double, std::string *Err) {
  if (Err)
    *Err = "unix sockets are not supported on this platform";
  return Fd();
}

bool socketPair(Fd &, Fd &, std::string *Err) {
  if (Err)
    *Err = "unix sockets are not supported on this platform";
  return false;
}

#endif // VBMC_SOCKETS_POSIX

} // namespace vbmc::sockets
