//===- Json.cpp - minimal JSON emission and parsing --------------*- C++ -*-===//

#include "support/Json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace vbmc;
using namespace vbmc::json;

std::string vbmc::json::formatDouble(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  auto R = std::to_chars(Buf, Buf + sizeof(Buf), V);
  std::string S(Buf, R.ptr);
  // to_chars emits integral doubles without a decimal point ("3"); that
  // is valid JSON, but keeping ".0" preserves the number's double-ness
  // for schema checks and human readers.
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

bool vbmc::json::parseDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  double V = 0;
  auto R = std::from_chars(S.data(), S.data() + S.size(), V);
  if (R.ec != std::errc() || R.ptr != S.data() + S.size())
    return false;
  Out = V;
  return true;
}

bool vbmc::json::parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  auto R = std::from_chars(S.data(), S.data() + S.size(), V);
  if (R.ec != std::errc() || R.ptr != S.data() + S.size())
    return false;
  Out = V;
  return true;
}

std::string vbmc::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  separate();
  Out += '"';
  Out += escape(K);
  Out += "\":";
  AfterKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  separate();
  Out += '"';
  Out += escape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V));
}

JsonWriter &JsonWriter::value(double V) {
  separate();
  Out += formatDouble(V);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  separate();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  separate();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Json) {
  separate();
  Out += Json;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const Value *Value::get(const std::string &Key) const {
  for (const auto &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Err) : T(Text), Err(Err) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != T.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Why) {
    if (Err)
      *Err = Why + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (T.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= T.size() || T[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < T.size() && T[Pos] != '"') {
      char C = T[Pos];
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (Pos + 1 >= T.size())
        return fail("unterminated escape");
      char E = T[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > T.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        auto R = std::from_chars(T.data() + Pos, T.data() + Pos + 4, Code, 16);
        if (R.ec != std::errc() || R.ptr != T.data() + Pos + 4)
          return fail("bad \\u escape");
        Pos += 4;
        // Minimal UTF-8 encoding; surrogate pairs are not recombined
        // (the writer never emits them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= T.size())
      return fail("unterminated string");
    ++Pos; // Closing quote.
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= T.size())
      return fail("unexpected end of input");
    char C = T[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWs();
      if (Pos < T.size() && T[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= T.size() || T[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Value V;
        if (!parseValue(V))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < T.size() && T[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWs();
      if (Pos < T.size() && T[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        Value V;
        if (!parseValue(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < T.size() && T[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = Value::Kind::Null;
      return literal("null");
    }
    // Number.
    size_t End = Pos;
    while (End < T.size() &&
           (std::isdigit(static_cast<unsigned char>(T[End])) ||
            T[End] == '-' || T[End] == '+' || T[End] == '.' ||
            T[End] == 'e' || T[End] == 'E'))
      ++End;
    double V = 0;
    auto R = std::from_chars(T.data() + Pos, T.data() + End, V);
    if (R.ec != std::errc() || R.ptr != T.data() + End || End == Pos)
      return fail("bad number");
    Out.K = Value::Kind::Number;
    Out.Num = V;
    Pos = End;
    return true;
  }

  const std::string &T;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

bool vbmc::json::parse(const std::string &Text, Value &Out,
                       std::string *Err) {
  return Parser(Text, Err).run(Out);
}

namespace {

void writeValue(JsonWriter &W, const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Null:
    W.null();
    break;
  case Value::Kind::Bool:
    W.value(V.asBool());
    break;
  case Value::Kind::Number: {
    // Integral numbers round-trip without the ".0" formatDouble appends;
    // uint64 covers every counter the reports emit.
    double N = V.asNumber();
    if (N >= 0 && N == static_cast<double>(static_cast<uint64_t>(N)))
      W.value(static_cast<uint64_t>(N));
    else
      W.value(N);
    break;
  }
  case Value::Kind::String:
    W.value(V.asString());
    break;
  case Value::Kind::Array:
    W.beginArray();
    for (const Value &E : V.array())
      writeValue(W, E);
    W.endArray();
    break;
  case Value::Kind::Object:
    W.beginObject();
    for (const auto &[K, E] : V.members()) {
      W.key(K);
      writeValue(W, E);
    }
    W.endObject();
    break;
  }
}

} // namespace

std::string vbmc::json::format(const Value &V) {
  JsonWriter W;
  writeValue(W, V);
  return W.str();
}
