//===- Rng.h - deterministic pseudo-random numbers --------------*- C++ -*-===//
///
/// \file
/// A small, fast, reproducible PRNG (splitmix64 seeded xoshiro256**). All
/// randomized components (random-walk simulation, random program generation
/// for property tests, litmus family expansion) draw from this generator so
/// test runs are bit-for-bit reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_RNG_H
#define VBMC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace vbmc {

/// Deterministic 64-bit PRNG.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using splitmix64 so that nearby
  /// seeds produce unrelated streams.
  void reseed(uint64_t Seed) {
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next 64 random bits (xoshiro256**).
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool nextChance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

  /// Derives an independent generator for stream \p Stream of seed
  /// \p Seed, without consuming state: program #i of a fuzzing campaign
  /// is reproducible from (seed, i) alone, no replay of programs 0..i-1
  /// required. The two words are mixed through splitmix64 inside
  /// reseed(), so nearby (seed, stream) pairs give unrelated sequences.
  static Rng derived(uint64_t Seed, uint64_t Stream) {
    return Rng(Seed ^ (0x9e3779b97f4a7c15ULL + Stream * 0xbf58476d1ce4e5b9ULL));
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace vbmc

#endif // VBMC_SUPPORT_RNG_H
