//===- Timer.h - wall-clock measurement -------------------------*- C++ -*-===//
///
/// \file
/// Wall-clock stopwatch and a soft deadline used by every engine to honor a
/// per-query time budget (the bench harness maps the paper's 3600 s timeout
/// to a smaller budget so tables finish in CI time).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_TIMER_H
#define VBMC_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>
#include <limits>

namespace vbmc {

/// A stopwatch started at construction time.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  /// Elapsed time in seconds.
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A soft deadline that engines poll periodically. A non-positive budget
/// means "no deadline".
class Deadline {
public:
  Deadline() = default;
  explicit Deadline(double BudgetSeconds) : BudgetSeconds(BudgetSeconds) {}

  bool expired() const {
    return BudgetSeconds > 0 && Watch.elapsedSeconds() >= BudgetSeconds;
  }

  /// Seconds left before expiry; +infinity when unlimited, clamped at 0
  /// once expired. Lets a stage hand the *remaining* budget to a
  /// sub-engine that takes a fresh Deadline.
  double remainingSeconds() const {
    if (BudgetSeconds <= 0)
      return std::numeric_limits<double>::infinity();
    double Left = BudgetSeconds - Watch.elapsedSeconds();
    return Left > 0 ? Left : 0;
  }

  double budgetSeconds() const { return BudgetSeconds; }

private:
  double BudgetSeconds = 0;
  Timer Watch;
};

} // namespace vbmc

#endif // VBMC_SUPPORT_TIMER_H
