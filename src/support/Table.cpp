//===- Table.cpp ----------------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace vbmc;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string Table::str() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += Row[I];
      if (I + 1 < Row.size())
        Out.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out += '\n';
  };
  Emit(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

std::string Table::formatSeconds(double Seconds, bool TimedOut) {
  if (TimedOut)
    return "T.O";
  char Buffer[64];
  if (Seconds < 10)
    std::snprintf(Buffer, sizeof(Buffer), "%.3f", Seconds);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.1f", Seconds);
  return Buffer;
}
