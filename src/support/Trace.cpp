//===- Trace.cpp - nestable span tracing -------------------------*- C++ -*-===//

#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>

using namespace vbmc;

void TraceRecorder::record(std::string Name, std::string Category,
                           double StartMicros, double DurationMicros) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> L(M);
  if (Spans.size() >= MaxSpans) {
    ++Dropped;
    return;
  }
  auto It = ThreadIds.find(std::this_thread::get_id());
  if (It == ThreadIds.end())
    It = ThreadIds.emplace(std::this_thread::get_id(), NextThreadId++).first;
  Spans.push_back(TraceSpan{std::move(Name), std::move(Category),
                            StartMicros, DurationMicros, It->second});
}

void TraceRecorder::merge(const std::vector<TraceSpan> &InSpans,
                          double OffsetMicros) {
  if (!enabled() || InSpans.empty())
    return;
  std::lock_guard<std::mutex> L(M);
  // Remap each distinct child thread id to a fresh id in this recorder;
  // the child's ids are only unique within its own recorder.
  std::map<uint32_t, uint32_t> Remap;
  for (const TraceSpan &S : InSpans) {
    if (Spans.size() >= MaxSpans) {
      ++Dropped;
      continue;
    }
    auto It = Remap.find(S.ThreadId);
    if (It == Remap.end())
      It = Remap.emplace(S.ThreadId, NextThreadId++).first;
    TraceSpan Copy = S;
    Copy.StartMicros += OffsetMicros;
    Copy.ThreadId = It->second;
    Spans.push_back(std::move(Copy));
  }
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  return Spans;
}

uint64_t TraceRecorder::droppedSpans() const {
  std::lock_guard<std::mutex> L(M);
  return Dropped;
}

size_t TraceRecorder::spanCount() const {
  std::lock_guard<std::mutex> L(M);
  return Spans.size();
}

std::string TraceRecorder::formatChromeTrace() const {
  std::vector<TraceSpan> Sorted = snapshot();
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TraceSpan &A, const TraceSpan &B) {
              if (A.StartMicros != B.StartMicros)
                return A.StartMicros < B.StartMicros;
              return A.DurationMicros > B.DurationMicros;
            });
  json::JsonWriter W;
  W.beginArray();
  for (const TraceSpan &S : Sorted) {
    W.beginObject();
    W.key("name").value(S.Name);
    W.key("cat").value(S.Category);
    W.key("ph").value("X");
    W.key("ts").value(S.StartMicros);
    W.key("dur").value(S.DurationMicros);
    W.key("pid").value(uint64_t{0});
    W.key("tid").value(static_cast<uint64_t>(S.ThreadId));
    W.endObject();
  }
  W.endArray();
  return W.str();
}
