//===- Socket.h - unix sockets and the newline-delimited protocol -*- C++ -*-===//
///
/// \file
/// The transport substrate of the serving layer (`src/serve`): RAII file
/// descriptors, unix-domain stream sockets (listener + connect), anonymous
/// socket pairs for parent/worker links, and a buffered line reader for
/// the newline-delimited JSON protocol.
///
/// Design points the serve layer leans on:
///
///  * every read path takes a wall-clock timeout (poll + monotonic
///    Deadline), so a stalled peer can never wedge a server thread — the
///    caller classifies the timeout itself;
///  * the line reader enforces a caller-chosen byte ceiling and reports
///    oversize lines as a distinct outcome (the admission layer's
///    oversize-request rejection), resynchronizing at the next newline so
///    one hostile line does not poison the connection;
///  * writes use MSG_NOSIGNAL (no SIGPIPE: a client that disconnects
///    mid-response must surface as an error return, not kill the daemon).
///
/// POSIX-only, like support/Sandbox.h; sockets::available() reports
/// support, and the serve layer degrades to a clear startup error where
/// it is absent.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_SOCKET_H
#define VBMC_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>
#include <utility>

namespace vbmc::sockets {

/// True when unix-domain sockets are supported on this platform.
bool available();

/// An owned file descriptor (closed on destruction, move-only).
class Fd {
public:
  Fd() = default;
  explicit Fd(int RawFd) : Raw(RawFd) {}
  Fd(Fd &&O) noexcept : Raw(O.Raw) { O.Raw = -1; }
  Fd &operator=(Fd &&O) noexcept {
    if (this != &O) {
      reset();
      Raw = O.Raw;
      O.Raw = -1;
    }
    return *this;
  }
  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;
  ~Fd() { reset(); }

  int get() const { return Raw; }
  bool valid() const { return Raw >= 0; }
  /// Closes the descriptor now (no-op when invalid).
  void reset();
  /// Releases ownership without closing.
  int release() {
    int R = Raw;
    Raw = -1;
    return R;
  }

private:
  int Raw = -1;
};

/// Outcome of one timed line read.
enum class ReadStatus {
  Line,     ///< A complete line was delivered (without the newline).
  Eof,      ///< Orderly shutdown from the peer; no partial line pending.
  Timeout,  ///< The deadline passed before a full line arrived.
  Oversize, ///< The line exceeded the byte ceiling; it was discarded and
            ///< the stream resynchronized at the next newline.
  Error,    ///< Socket error (peer reset, bad fd, ...).
};

const char *readStatusName(ReadStatus S);

/// A buffered reader/writer for newline-delimited protocols over one
/// stream socket. Not thread-safe; the serve layer guards each
/// connection's writer with its own mutex.
class LineChannel {
public:
  LineChannel() = default;
  explicit LineChannel(Fd Sock) : Sock(std::move(Sock)) {}

  int fd() const { return Sock.get(); }
  bool valid() const { return Sock.valid(); }
  void close() { Sock.reset(); }

  /// Reads the next line into \p Out (newline stripped). Waits at most
  /// \p TimeoutSeconds (<= 0 = wait forever). \p MaxBytes bounds the line
  /// length; longer lines are consumed and reported as Oversize.
  ReadStatus readLine(std::string &Out, size_t MaxBytes,
                      double TimeoutSeconds);

  /// Writes \p Line plus a trailing newline, retrying partial writes.
  /// False on any socket error (EPIPE included — never a signal).
  bool writeLine(const std::string &Line);

  /// Half-closes the write side (a client saying "no more requests"
  /// while still reading responses). False on error.
  bool shutdownWrite();

private:
  Fd Sock;
  std::string Buf;      ///< Bytes received but not yet returned.
  size_t Discard = 0;   ///< Oversize mode: bytes to drop until newline.
  bool SawEof = false;
};

/// A bound, listening unix-domain socket. The path is unlinked first
/// (stale socket files from a crashed daemon would otherwise block every
/// restart) and again on destruction.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(UnixListener &&) = default;
  UnixListener &operator=(UnixListener &&) = default;

  /// Binds and listens on \p Path. False (with \p Err) on failure —
  /// including a path longer than sockaddr_un::sun_path allows.
  bool listen(const std::string &Path, std::string *Err);

  /// Accepts one connection, waiting at most \p TimeoutSeconds (<= 0 =
  /// forever). An invalid Fd on timeout or error; \p TimedOut
  /// distinguishes the two.
  Fd accept(double TimeoutSeconds, bool &TimedOut);

  bool listening() const { return Sock.valid(); }
  const std::string &path() const { return Path; }
  void close();

private:
  Fd Sock;
  std::string Path;
};

/// Connects to the unix-domain socket at \p Path, waiting up to
/// \p TimeoutSeconds for the connect to complete. Invalid Fd + \p Err on
/// failure.
Fd connectUnix(const std::string &Path, double TimeoutSeconds,
               std::string *Err);

/// An anonymous, connected socket pair (the parent/worker link). False on
/// failure.
bool socketPair(Fd &A, Fd &B, std::string *Err);

} // namespace vbmc::sockets

#endif // VBMC_SUPPORT_SOCKET_H
