//===- CheckContext.cpp - StatsRegistry implementation ----------*- C++ -*-===//

#include "support/CheckContext.h"

#include <cstdio>

using namespace vbmc;

void StatsRegistry::addCount(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> L(M);
  Counts[Name] += Delta;
}

void StatsRegistry::addSeconds(const std::string &Name, double S) {
  std::lock_guard<std::mutex> L(M);
  Times[Name] += S;
}

uint64_t StatsRegistry::count(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Counts.find(Name);
  return It == Counts.end() ? 0 : It->second;
}

double StatsRegistry::seconds(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Times.find(Name);
  return It == Times.end() ? 0 : It->second;
}

std::vector<StatsRegistry::Entry> StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  std::vector<Entry> Out;
  Out.reserve(Counts.size() + Times.size());
  // Both maps are name-ordered; merge to keep the snapshot sorted.
  auto CI = Counts.begin();
  auto TI = Times.begin();
  while (CI != Counts.end() || TI != Times.end()) {
    // A name registered as both a counter and a timer would emit two
    // entries with the same key; disambiguate the timer's serialized
    // name (".seconds" suffix) and advance past both.
    if (CI != Counts.end() && TI != Times.end() && CI->first == TI->first) {
      Entry C;
      C.Name = CI->first;
      C.IsCounter = true;
      C.Count = CI->second;
      Out.push_back(std::move(C));
      Entry S;
      S.Name = TI->first + ".seconds";
      S.Seconds = TI->second;
      Out.push_back(std::move(S));
      ++CI;
      ++TI;
      continue;
    }
    bool TakeCount = TI == Times.end() ||
                     (CI != Counts.end() && CI->first < TI->first);
    Entry E;
    if (TakeCount) {
      E.Name = CI->first;
      E.IsCounter = true;
      E.Count = CI->second;
      ++CI;
    } else {
      E.Name = TI->first;
      E.Seconds = TI->second;
      ++TI;
    }
    Out.push_back(std::move(E));
  }
  return Out;
}

std::string StatsRegistry::format() const {
  std::string Out;
  char Buf[160];
  for (const Entry &E : snapshot()) {
    if (E.IsCounter)
      std::snprintf(Buf, sizeof(Buf), "%-28s = %llu\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Count));
    else
      std::snprintf(Buf, sizeof(Buf), "%-28s = %.6fs\n", E.Name.c_str(),
                    E.Seconds);
    Out += Buf;
  }
  return Out;
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> L(M);
  Counts.clear();
  Times.clear();
}
