//===- Cli.h - minimal command-line flag parsing -----------------*- C++ -*-===//
///
/// \file
/// A tiny declarative flag parser used by the example binaries and the vbmc
/// driver. Flags look like "--name value" or "--name=value"; bare arguments
/// are collected as positionals.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_CLI_H
#define VBMC_SUPPORT_CLI_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vbmc {

/// Parsed command line: named flags plus positional arguments.
class CommandLine {
public:
  /// Parses argv. Unknown flags are retained; validation is the caller's
  /// concern (the binaries document their flags in --help text).
  /// Names listed in \p BooleanFlags never consume the following token as
  /// a value, so "--stats FILE" keeps FILE positional.
  static CommandLine parse(int Argc, const char *const *Argv,
                           const std::set<std::string> &BooleanFlags = {});

  bool hasFlag(const std::string &Name) const;

  /// Returns the flag value or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default = "") const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;

  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Flags present on the command line but absent from \p Known, sorted.
  /// Binaries that must not misinterpret a typo (a fuzzer ignoring
  /// "--budgett 60" would run forever) reject these up front.
  std::vector<std::string>
  unknownFlags(const std::set<std::string> &Known) const;

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positionals;
};

} // namespace vbmc

#endif // VBMC_SUPPORT_CLI_H
