//===- FaultInjection.cpp -------------------------------------*- C++ -*-===//

#include "support/FaultInjection.h"

#include <cstdlib>
#include <mutex>
#include <set>

using namespace vbmc;

namespace {

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::set<std::string> &registry() {
  static std::set<std::string> Faults = [] {
    std::set<std::string> Initial;
    if (const char *Env = std::getenv("VBMC_FAULTS")) {
      std::string S(Env);
      size_t Pos = 0;
      while (Pos <= S.size()) {
        size_t Comma = S.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = S.size();
        if (Comma > Pos)
          Initial.insert(S.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    }
    return Initial;
  }();
  return Faults;
}

} // namespace

bool fault::enabled(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return registry().count(Name) != 0;
}

void fault::enable(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().insert(Name);
}

void fault::disable(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().erase(Name);
}

void fault::clearAll() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().clear();
}

std::vector<std::string> fault::active() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return {registry().begin(), registry().end()};
}
