//===- Cli.cpp ------------------------------------------------*- C++ -*-===//

#include "support/Cli.h"

#include <cstdlib>

using namespace vbmc;

CommandLine CommandLine::parse(int Argc, const char *const *Argv,
                               const std::set<std::string> &BooleanFlags) {
  CommandLine CL;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      CL.Positionals.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    auto Eq = Body.find('=');
    if (Eq != std::string::npos) {
      CL.Flags[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag and the name
    // is not a declared boolean; otherwise a bare boolean flag.
    if (!BooleanFlags.count(Body) && I + 1 < Argc &&
        std::string(Argv[I + 1]).rfind("--", 0) != 0) {
      CL.Flags[Body] = Argv[++I];
    } else {
      CL.Flags[Body] = "";
    }
  }
  return CL;
}

bool CommandLine::hasFlag(const std::string &Name) const {
  return Flags.count(Name) != 0;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

std::vector<std::string>
CommandLine::unknownFlags(const std::set<std::string> &Known) const {
  std::vector<std::string> Unknown;
  for (const auto &[Name, Value] : Flags)
    if (!Known.count(Name))
      Unknown.push_back(Name);
  return Unknown;
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}
