//===- Table.h - aligned text tables for bench output ------------*- C++ -*-===//
///
/// \file
/// Renders the paper-style comparison tables (Tables 1-8) as aligned plain
/// text. Cells are strings; numeric helpers format seconds the way the paper
/// does and render timeouts as "T.O".
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_TABLE_H
#define VBMC_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace vbmc {

/// A simple column-aligned table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with a separator under the header.
  std::string str() const;

  /// Formats a duration in seconds with the paper's precision (two to three
  /// significant decimals), or "T.O" when \p TimedOut is set.
  static std::string formatSeconds(double Seconds, bool TimedOut);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace vbmc

#endif // VBMC_SUPPORT_TABLE_H
