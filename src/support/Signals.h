//===- Signals.h - cooperative drain on SIGTERM/SIGINT ----------*- C++ -*-===//
///
/// \file
/// Shared graceful-shutdown plumbing for the long-running drivers
/// (`vbmc-serve`, `vbmc-farm`, `vbmc-fuzz`). A termination signal must
/// never kill a driver mid-write — truncated JSON artifacts and corpus
/// files are worse than no artifact — so the handler only sets a sticky
/// process-wide flag; the drivers poll it at their loop boundaries, stop
/// admitting new work, finish (or deadline-out) what is in flight, flush
/// their artifacts, and exit through the normal path.
///
/// A second delivery of the same signal restores the default disposition
/// and re-raises it: a wedged drain can always be escaped by signalling
/// twice.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SUPPORT_SIGNALS_H
#define VBMC_SUPPORT_SIGNALS_H

namespace vbmc::signals {

/// Installs the SIGTERM/SIGINT drain handlers. Idempotent; call once at
/// tool startup, before any worker threads or children exist (forked
/// children inherit the handler, which is harmless — a group-delivered
/// signal makes them drain too).
void installDrainHandlers();

/// True once SIGTERM or SIGINT was delivered. Sticky; async-signal-safe
/// to query from any thread.
bool drainRequested();

/// The signal that requested the drain (SIGTERM/SIGINT), or 0.
int drainSignal();

/// Programmatic drain request (the serve daemon's tests use this instead
/// of raising a real signal in a multi-threaded gtest binary).
void requestDrain();

/// Clears the flag (tests only — real drains are one-way).
void resetForTesting();

} // namespace vbmc::signals

#endif // VBMC_SUPPORT_SIGNALS_H
