//===- Program.h - concurrent programs (Fig. 1) ------------------*- C++ -*-===//
///
/// \file
/// The structured form of concurrent programs following the paper's grammar
/// (Fig. 1):
///
/// \code
///   Prog ::= var x* (proc p reg $r* i*)*
///   s    ::= $r = x | x = $r | cas(x,$r1,$r2) | assume(e) | $r = e | term
///          | if e then i* else i* end | while e do i* done
/// \endcode
///
/// Extensions needed by the tool (Section 6 of the paper):
///  * `assert(e)` — reachability queries are phrased as assertion failures;
///  * `fence` — treated as a CAS on a distinguished variable (per [24]);
///  * `atomic { ... }` — instrumentation blocks emitted by the translation
///    that must not be interrupted under SC;
///  * writes may carry a full register expression (`x = e` desugars the
///    paper's `$r' = e; x = $r'` pair), and CAS operands may be expressions.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_PROGRAM_H
#define VBMC_IR_PROGRAM_H

#include "ir/Expr.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace vbmc::ir {

enum class StmtKind : uint8_t {
  Read,        ///< $r = x
  Write,       ///< x = e
  Cas,         ///< cas(x, eExpected, eNew)
  Assign,      ///< $r = e
  Assume,      ///< assume(e): blocks forever when e is false
  Assert,      ///< assert(e): moves the process to the error label when false
  If,          ///< if e then ... else ... end if
  While,       ///< while e do ... done
  Term,        ///< terminate the process
  Fence,       ///< memory fence (sugar for CAS on a distinguished variable)
  AtomicBegin, ///< begin an uninterruptible section (SC backends only)
  AtomicEnd,   ///< end an uninterruptible section
};

/// A structured statement. Sub-statement vectors are only populated for If
/// (Then/Else) and While (Then reused as the body).
struct Stmt {
  StmtKind Kind;
  VarId Var = 0;       ///< Shared variable of Read/Write/Cas.
  RegId Reg = 0;       ///< Destination register of Read/Assign.
  ExprRef E;           ///< Value/condition operand.
  ExprRef E2;          ///< Second CAS operand (new value).
  std::vector<Stmt> Then;
  std::vector<Stmt> Else;

  /// \name Constructors for each statement form
  /// @{
  static Stmt read(RegId R, VarId X);
  static Stmt write(VarId X, ExprRef E);
  static Stmt cas(VarId X, ExprRef Expected, ExprRef New);
  static Stmt assign(RegId R, ExprRef E);
  static Stmt assume(ExprRef E);
  static Stmt assertThat(ExprRef E);
  static Stmt ifThen(ExprRef Cond, std::vector<Stmt> Then,
                     std::vector<Stmt> Else = {});
  static Stmt whileLoop(ExprRef Cond, std::vector<Stmt> Body);
  static Stmt term();
  static Stmt fence();
  static Stmt atomicBegin();
  static Stmt atomicEnd();
  /// @}
};

/// A register declaration; registers of different processes are disjoint.
struct RegDecl {
  std::string Name;
  uint32_t Process; ///< Owning process index.
};

/// One process: a name plus a structured statement list.
struct Process {
  std::string Name;
  std::vector<Stmt> Body;
};

/// A whole concurrent program.
class Program {
public:
  /// Shared-variable names; VarId indexes this vector.
  std::vector<std::string> Vars;
  /// All registers of all processes; RegId indexes this vector.
  std::vector<RegDecl> Regs;
  std::vector<Process> Procs;

  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }
  uint32_t numRegs() const { return static_cast<uint32_t>(Regs.size()); }
  uint32_t numProcs() const { return static_cast<uint32_t>(Procs.size()); }

  VarId addVar(std::string Name);
  uint32_t addProcess(std::string Name);
  RegId addReg(uint32_t Process, std::string Name);

  /// Looks up a variable by name; returns numVars() when absent.
  VarId findVar(const std::string &Name) const;

  /// Checks structural well-formedness: every register used by a process
  /// belongs to it, every Var/Reg index is in range, atomic sections nest
  /// properly, and `term`/top-level placement rules hold.
  ErrorOr<bool> validate() const;
};

/// Convenience expression factories (shorter call sites for builders).
inline ExprRef constE(Value V) { return Expr::makeConst(V); }
inline ExprRef regE(RegId R) { return Expr::makeReg(R); }
inline ExprRef nondetE(Value Lo, Value Hi) { return Expr::makeNondet(Lo, Hi); }
inline ExprRef notE(ExprRef A) {
  return Expr::makeUnary(UnaryOp::Not, std::move(A));
}
inline ExprRef binE(BinaryOp Op, ExprRef A, ExprRef B) {
  return Expr::makeBinary(Op, std::move(A), std::move(B));
}
inline ExprRef eqE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Eq, std::move(A), std::move(B));
}
inline ExprRef neE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Ne, std::move(A), std::move(B));
}
inline ExprRef ltE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Lt, std::move(A), std::move(B));
}
inline ExprRef leE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Le, std::move(A), std::move(B));
}
inline ExprRef andE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::And, std::move(A), std::move(B));
}
inline ExprRef orE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Or, std::move(A), std::move(B));
}
inline ExprRef addE(ExprRef A, ExprRef B) {
  return binE(BinaryOp::Add, std::move(A), std::move(B));
}

} // namespace vbmc::ir

#endif // VBMC_IR_PROGRAM_H
