//===- Parser.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Parser.h"

#include <cctype>
#include <map>

using namespace vbmc;
using namespace vbmc::ir;

namespace {

enum class TokKind : uint8_t {
  Ident,
  Number,
  Punct, ///< One of the multi/single-char operators and separators.
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  Value Num = 0;
  SourceLoc Loc;
};

/// Tokenizes the whole input up front (programs are small).
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  ErrorOr<std::vector<Token>> run() {
    std::vector<Token> Toks;
    while (true) {
      skipTrivia();
      if (Pos >= Src.size()) {
        Toks.push_back(Token{TokKind::Eof, "", 0, loc()});
        return Toks;
      }
      SourceLoc L = loc();
      char C = Src[Pos];
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        std::string Text;
        while (Pos < Src.size() &&
               (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
                Src[Pos] == '_'))
          Text += advance();
        Toks.push_back(Token{TokKind::Ident, std::move(Text), 0, L});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        Value V = 0;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          V = V * 10 + (advance() - '0');
        Toks.push_back(Token{TokKind::Number, "", V, L});
        continue;
      }
      static const char *TwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
      bool Matched = false;
      for (const char *Op : TwoChar) {
        if (Src.compare(Pos, 2, Op) == 0) {
          Toks.push_back(Token{TokKind::Punct, Op, 0, L});
          advance();
          advance();
          Matched = true;
          break;
        }
      }
      if (Matched)
        continue;
      if (std::string("=;{}(),+-*/%<>!").find(C) != std::string::npos) {
        Toks.push_back(Token{TokKind::Punct, std::string(1, C), 0, L});
        advance();
        continue;
      }
      return Diagnostic(std::string("unexpected character '") + C + "'", L);
    }
  }

private:
  SourceLoc loc() const { return SourceLoc{Line, Col}; }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          advance();
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
        advance();
        advance();
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/'))
          advance();
        if (Pos + 1 < Src.size()) {
          advance();
          advance();
        } else {
          // Unterminated comment: swallow the tail instead of lexing it.
          while (Pos < Src.size())
            advance();
        }
        continue;
      }
      return;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  ErrorOr<Program> run() {
    while (!at(TokKind::Eof)) {
      if (atKeyword("var")) {
        if (auto Err = parseVarDecl())
          return *Err;
        continue;
      }
      if (atKeyword("proc")) {
        if (auto Err = parseProc())
          return *Err;
        continue;
      }
      return err("expected 'var' or 'proc' at top level");
    }
    if (auto Check = P.validate(); !Check)
      return Check.error();
    return std::move(P);
  }

private:
  using MaybeError = std::optional<Diagnostic>;

  const Token &cur() const { return Toks[Idx]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atPunct(const char *S) const {
    return cur().Kind == TokKind::Punct && cur().Text == S;
  }
  bool atKeyword(const char *S) const {
    return cur().Kind == TokKind::Ident && cur().Text == S;
  }
  void consume() { ++Idx; }

  Diagnostic err(const std::string &Message) const {
    return Diagnostic(Message, cur().Loc);
  }

  MaybeError expectPunct(const char *S) {
    if (!atPunct(S))
      return err(std::string("expected '") + S + "'");
    consume();
    return std::nullopt;
  }

  ErrorOr<std::string> expectIdent() {
    if (!at(TokKind::Ident))
      return err("expected identifier");
    std::string Name = cur().Text;
    consume();
    return Name;
  }

  MaybeError parseVarDecl() {
    consume(); // var
    bool Any = false;
    while (at(TokKind::Ident)) {
      if (P.findVar(cur().Text) != P.numVars())
        return err("redeclared shared variable '" + cur().Text + "'");
      P.addVar(cur().Text);
      consume();
      Any = true;
    }
    if (!Any)
      return err("expected variable name after 'var'");
    return expectPunct(";");
  }

  /// Resolves \p Name inside the current process: registers shadow nothing
  /// (a name may not denote both a register and a variable).
  std::optional<RegId> lookupReg(const std::string &Name) const {
    auto It = CurRegs.find(Name);
    if (It == CurRegs.end())
      return std::nullopt;
    return It->second;
  }

  MaybeError parseProc() {
    consume(); // proc
    auto Name = expectIdent();
    if (!Name)
      return Name.error();
    CurProc = P.addProcess(*Name);
    CurRegs.clear();
    if (auto Err = expectPunct("{"))
      return Err;
    while (atKeyword("reg")) {
      consume();
      bool Any = false;
      while (at(TokKind::Ident)) {
        const std::string &RName = cur().Text;
        if (P.findVar(RName) != P.numVars())
          return err("register '" + RName + "' shadows a shared variable");
        if (CurRegs.count(RName))
          return err("redeclared register '" + RName + "'");
        CurRegs[RName] = P.addReg(CurProc, RName);
        consume();
        Any = true;
      }
      if (!Any)
        return err("expected register name after 'reg'");
      if (auto Err = expectPunct(";"))
        return Err;
    }
    auto Body = parseBlockBody();
    if (!Body)
      return Body.error();
    if (auto Err = expectPunct("}"))
      return Err;
    P.Procs[CurProc].Body = Body.take();
    return std::nullopt;
  }

  /// Parses statements until the closing '}' (not consumed).
  ErrorOr<std::vector<Stmt>> parseBlockBody() {
    std::vector<Stmt> Body;
    while (!atPunct("}") && !at(TokKind::Eof)) {
      auto S = parseStmt();
      if (!S)
        return S.error();
      Body.push_back(S.take());
    }
    return Body;
  }

  ErrorOr<std::vector<Stmt>> parseBracedBlock() {
    if (auto Err = expectPunct("{"))
      return *Err;
    auto Body = parseBlockBody();
    if (!Body)
      return Body.error();
    if (auto Err = expectPunct("}"))
      return *Err;
    return Body;
  }

  ErrorOr<Stmt> parseStmt() {
    if (atKeyword("if"))
      return parseIf();
    if (atKeyword("while"))
      return parseWhile();
    if (atKeyword("atomic"))
      return parseAtomic();
    if (atKeyword("cas"))
      return parseCas();
    if (atKeyword("assume") || atKeyword("assert"))
      return parseAssumeAssert();
    if (atKeyword("term")) {
      consume();
      if (auto Err = expectPunct(";"))
        return *Err;
      return Stmt::term();
    }
    if (atKeyword("fence")) {
      consume();
      if (auto Err = expectPunct(";"))
        return *Err;
      return Stmt::fence();
    }
    if (at(TokKind::Ident))
      return parseAssignLike();
    return err("expected statement");
  }

  ErrorOr<Stmt> parseIf() {
    consume(); // if
    if (auto Err = expectPunct("("))
      return *Err;
    auto Cond = parseExpr();
    if (!Cond)
      return Cond.error();
    if (auto Err = expectPunct(")"))
      return *Err;
    auto Then = parseBracedBlock();
    if (!Then)
      return Then.error();
    std::vector<Stmt> Else;
    if (atKeyword("else")) {
      consume();
      auto E = parseBracedBlock();
      if (!E)
        return E.error();
      Else = E.take();
    }
    return Stmt::ifThen(Cond.take(), Then.take(), std::move(Else));
  }

  ErrorOr<Stmt> parseWhile() {
    consume(); // while
    if (auto Err = expectPunct("("))
      return *Err;
    auto Cond = parseExpr();
    if (!Cond)
      return Cond.error();
    if (auto Err = expectPunct(")"))
      return *Err;
    auto Body = parseBracedBlock();
    if (!Body)
      return Body.error();
    return Stmt::whileLoop(Cond.take(), Body.take());
  }

  ErrorOr<Stmt> parseAtomic() {
    consume(); // atomic
    auto Body = parseBracedBlock();
    if (!Body)
      return Body.error();
    // Desugar `atomic { B }` into `atomic_begin; B; atomic_end` by nesting
    // the markers around the block inside an If(true) wrapper-free splice:
    // we return a synthetic If with constant condition to keep Stmt a tree.
    std::vector<Stmt> Spliced;
    Spliced.push_back(Stmt::atomicBegin());
    for (Stmt &S : *Body)
      Spliced.push_back(std::move(S));
    Spliced.push_back(Stmt::atomicEnd());
    return Stmt::ifThen(constE(1), std::move(Spliced));
  }

  ErrorOr<Stmt> parseCas() {
    consume(); // cas
    if (auto Err = expectPunct("("))
      return *Err;
    auto VarName = expectIdent();
    if (!VarName)
      return VarName.error();
    VarId X = P.findVar(*VarName);
    if (X == P.numVars())
      return err("cas on undeclared shared variable '" + *VarName + "'");
    if (auto Err = expectPunct(","))
      return *Err;
    auto Expected = parseExpr();
    if (!Expected)
      return Expected.error();
    if (auto Err = expectPunct(","))
      return *Err;
    auto New = parseExpr();
    if (!New)
      return New.error();
    if (auto Err = expectPunct(")"))
      return *Err;
    if (auto Err = expectPunct(";"))
      return *Err;
    return Stmt::cas(X, Expected.take(), New.take());
  }

  ErrorOr<Stmt> parseAssumeAssert() {
    bool IsAssert = cur().Text == "assert";
    consume();
    if (auto Err = expectPunct("("))
      return *Err;
    auto Cond = parseExpr();
    if (!Cond)
      return Cond.error();
    if (auto Err = expectPunct(")"))
      return *Err;
    if (auto Err = expectPunct(";"))
      return *Err;
    return IsAssert ? Stmt::assertThat(Cond.take()) : Stmt::assume(Cond.take());
  }

  /// Statements of the form `name = ...;` — write, read, or assignment
  /// depending on what `name` and the right-hand side denote.
  ErrorOr<Stmt> parseAssignLike() {
    SourceLoc L = cur().Loc;
    std::string Lhs = cur().Text;
    consume();
    if (auto Err = expectPunct("="))
      return *Err;

    VarId LhsVar = P.findVar(Lhs);
    std::optional<RegId> LhsReg = lookupReg(Lhs);

    if (LhsVar != P.numVars()) {
      // Write: x = e.
      auto E = parseExpr();
      if (!E)
        return E.error();
      if (auto Err = expectPunct(";"))
        return *Err;
      return Stmt::write(LhsVar, E.take());
    }
    if (!LhsReg)
      return Diagnostic("unknown name '" + Lhs + "' on left-hand side", L);

    // Read when the right-hand side is exactly one shared-variable name.
    if (at(TokKind::Ident) && Toks[Idx + 1].Kind == TokKind::Punct &&
        Toks[Idx + 1].Text == ";") {
      VarId X = P.findVar(cur().Text);
      if (X != P.numVars()) {
        consume();
        consume(); // ';'
        return Stmt::read(*LhsReg, X);
      }
    }
    auto E = parseExpr();
    if (!E)
      return E.error();
    if (auto Err = expectPunct(";"))
      return *Err;
    return Stmt::assign(*LhsReg, E.take());
  }

  /// \name Expression parsing (precedence climbing)
  /// @{
  ErrorOr<ExprRef> parseExpr() { return parseOr(); }

  ErrorOr<ExprRef> parseOr() {
    auto L = parseAnd();
    if (!L)
      return L;
    while (atPunct("||")) {
      consume();
      auto R = parseAnd();
      if (!R)
        return R;
      L = orE(L.take(), R.take());
    }
    return L;
  }

  ErrorOr<ExprRef> parseAnd() {
    auto L = parseCompare();
    if (!L)
      return L;
    while (atPunct("&&")) {
      consume();
      auto R = parseCompare();
      if (!R)
        return R;
      L = andE(L.take(), R.take());
    }
    return L;
  }

  ErrorOr<ExprRef> parseCompare() {
    auto L = parseAdd();
    if (!L)
      return L;
    static const std::pair<const char *, BinaryOp> Ops[] = {
        {"==", BinaryOp::Eq}, {"!=", BinaryOp::Ne}, {"<=", BinaryOp::Le},
        {">=", BinaryOp::Ge}, {"<", BinaryOp::Lt},  {">", BinaryOp::Gt}};
    for (const auto &[Spelling, Op] : Ops) {
      if (atPunct(Spelling)) {
        consume();
        auto R = parseAdd();
        if (!R)
          return R;
        return ExprRef(binE(Op, L.take(), R.take()));
      }
    }
    return L;
  }

  ErrorOr<ExprRef> parseAdd() {
    auto L = parseMul();
    if (!L)
      return L;
    while (atPunct("+") || atPunct("-")) {
      BinaryOp Op = atPunct("+") ? BinaryOp::Add : BinaryOp::Sub;
      consume();
      auto R = parseMul();
      if (!R)
        return R;
      L = binE(Op, L.take(), R.take());
    }
    return L;
  }

  ErrorOr<ExprRef> parseMul() {
    auto L = parseUnary();
    if (!L)
      return L;
    while (atPunct("*") || atPunct("/") || atPunct("%")) {
      BinaryOp Op = atPunct("*")   ? BinaryOp::Mul
                    : atPunct("/") ? BinaryOp::Div
                                   : BinaryOp::Mod;
      consume();
      auto R = parseUnary();
      if (!R)
        return R;
      L = binE(Op, L.take(), R.take());
    }
    return L;
  }

  ErrorOr<ExprRef> parseUnary() {
    if (atPunct("!")) {
      consume();
      auto E = parseUnary();
      if (!E)
        return E;
      return ExprRef(notE(E.take()));
    }
    if (atPunct("-")) {
      consume();
      auto E = parseUnary();
      if (!E)
        return E;
      return ExprRef(Expr::makeUnary(UnaryOp::Neg, E.take()));
    }
    return parsePrimary();
  }

  ErrorOr<ExprRef> parsePrimary() {
    if (at(TokKind::Number)) {
      Value V = cur().Num;
      consume();
      return constE(V);
    }
    if (atPunct("(")) {
      consume();
      auto E = parseExpr();
      if (!E)
        return E;
      if (auto Err = expectPunct(")"))
        return *Err;
      return E;
    }
    if (atKeyword("nondet")) {
      consume();
      if (auto Err = expectPunct("("))
        return *Err;
      auto Lo = parseSignedNumber();
      if (!Lo)
        return Lo.error();
      if (auto Err = expectPunct(","))
        return *Err;
      auto Hi = parseSignedNumber();
      if (!Hi)
        return Hi.error();
      if (auto Err = expectPunct(")"))
        return *Err;
      if (*Lo > *Hi)
        return err("empty nondet range");
      return nondetE(*Lo, *Hi);
    }
    if (at(TokKind::Ident)) {
      if (auto R = lookupReg(cur().Text)) {
        consume();
        return regE(*R);
      }
      if (P.findVar(cur().Text) != P.numVars())
        return err("shared variable '" + cur().Text +
                   "' may not appear inside an expression");
      return err("unknown name '" + cur().Text + "' in expression");
    }
    return err("expected expression");
  }

  ErrorOr<Value> parseSignedNumber() {
    bool Negate = false;
    if (atPunct("-")) {
      consume();
      Negate = true;
    }
    if (!at(TokKind::Number))
      return err("expected number");
    Value V = cur().Num;
    consume();
    return Negate ? -V : V;
  }
  /// @}

  std::vector<Token> Toks;
  size_t Idx = 0;
  Program P;
  uint32_t CurProc = 0;
  std::map<std::string, RegId> CurRegs;
};

} // namespace

ErrorOr<Program> vbmc::ir::parseProgram(const std::string &Source) {
  Lexer L(Source);
  auto Toks = L.run();
  if (!Toks)
    return Toks.error();
  Parser Psr(Toks.take());
  return Psr.run();
}
