//===- Flatten.h - labeled-instruction form of programs ----------*- C++ -*-===//
///
/// \file
/// The paper's semantics (Fig. 2) is defined over labeled instructions with
/// successor maps next / Tnext / Fnext. This file lowers the structured
/// Program into that form: each process becomes a vector of FlatInstr whose
/// indices are the labels. Two sentinel labels exist per process:
/// FlatProcess::doneLabel() (reached by `term`) and
/// FlatProcess::errorLabel() (reached by a failed `assert`).
///
/// `fence` is desugared here into `cas(fence_var, 0, 0)` on a distinguished
/// shared variable, following Section 6 of the paper ("Fences in the input
/// programs are treated as CAS operations to a special variable [24]").
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_FLATTEN_H
#define VBMC_IR_FLATTEN_H

#include "ir/Program.h"

#include <limits>

namespace vbmc::ir {

/// Instruction label (index into FlatProcess::Instrs, or a sentinel).
using Label = uint32_t;

enum class Op : uint8_t {
  Read,        ///< Reg = Var
  Write,       ///< Var = E
  Cas,         ///< cas(Var, E, E2)
  Assign,      ///< Reg = E
  Assume,      ///< blocks at this label while E is false (Fnext = self)
  Assert,      ///< jumps to errorLabel() when E is false
  Branch,      ///< pc = E ? TNext : FNext (internal step)
  Goto,        ///< pc = Next (internal step)
  Term,        ///< pc = doneLabel()
  AtomicBegin, ///< enter uninterruptible section
  AtomicEnd,   ///< leave uninterruptible section
};

/// One labeled instruction.
struct FlatInstr {
  Op K = Op::Goto;
  VarId Var = 0;
  RegId Reg = 0;
  ExprRef E;
  ExprRef E2;
  Label Next = 0;  ///< Successor of straight-line instructions.
  Label TNext = 0; ///< Branch target when E evaluates to nonzero.
  Label FNext = 0; ///< Branch target when E evaluates to zero.
};

/// A process lowered to labeled instructions. Entry label is 0.
struct FlatProcess {
  std::string Name;
  std::vector<FlatInstr> Instrs;

  /// Label denoting normal termination.
  Label doneLabel() const { return static_cast<Label>(Instrs.size()); }
  /// Label denoting an assertion failure.
  Label errorLabel() const { return static_cast<Label>(Instrs.size()) + 1; }

  bool isDone(Label L) const { return L == doneLabel(); }
  bool isError(Label L) const { return L == errorLabel(); }
  bool isFinal(Label L) const { return isDone(L) || isError(L); }
};

/// A whole program in labeled-instruction form, plus the symbol tables the
/// engines need to report traces.
struct FlatProgram {
  std::vector<std::string> VarNames;
  std::vector<RegDecl> Regs;
  std::vector<FlatProcess> Procs;

  /// Index of the distinguished fence variable, or numVars() when the
  /// program contains no fences.
  VarId FenceVar = std::numeric_limits<VarId>::max();

  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }
  uint32_t numRegs() const { return static_cast<uint32_t>(Regs.size()); }
  uint32_t numProcs() const { return static_cast<uint32_t>(Procs.size()); }

  bool hasFenceVar() const {
    return FenceVar != std::numeric_limits<VarId>::max();
  }

  /// True when some process mentions an error label (i.e. contains assert);
  /// reachability engines can skip error tracking otherwise.
  bool hasAsserts() const;
};

/// Lowers \p P (which must validate) into labeled-instruction form.
FlatProgram flatten(const Program &P);

} // namespace vbmc::ir

#endif // VBMC_IR_FLATTEN_H
