//===- Parser.h - concrete syntax for concurrent programs --------*- C++ -*-===//
///
/// \file
/// A hand-written lexer and recursive-descent parser for the assembly-like
/// concrete syntax of the paper's language (Fig. 1), used by the vbmc driver
/// and the example programs. The syntax:
///
/// \code
///   var x y;
///   proc p0 {
///     reg r1 r2;
///     r1 = x;                 // read  ($r = x)
///     x = r1 + 1;             // write (x = e over registers)
///     r2 = r1 * 2;            // assignment ($r = e)
///     r1 = nondet(0, 5);      // bounded nondeterministic choice
///     cas(x, r1, r2);         // compare-and-swap
///     assume(r1 == 0);
///     assert(r1 != 2);
///     fence;
///     if (r1 == 1) { ... } else { ... }
///     while (r1 != 0) { ... }
///     atomic { ... }
///     term;
///   }
/// \endcode
///
/// Expressions may mention registers and constants only — naming a shared
/// variable inside an expression is a parse-time error, matching the
/// grammar's separation of memory accesses from computation.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_PARSER_H
#define VBMC_IR_PARSER_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <string>

namespace vbmc::ir {

/// Parses \p Source into a Program. On failure the diagnostic carries the
/// 1-based line:column of the offending token.
ErrorOr<Program> parseProgram(const std::string &Source);

} // namespace vbmc::ir

#endif // VBMC_IR_PARSER_H
