//===- Eval.h - expression evaluation ----------------------------*- C++ -*-===//
///
/// \file
/// The Val(exp, R) function of the paper: evaluates a (nondet-free)
/// expression against a register valuation. Every interpreter (RA, SC,
/// SMC baselines) shares this.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_EVAL_H
#define VBMC_IR_EVAL_H

#include "ir/Expr.h"

#include <cassert>
#include <vector>

namespace vbmc::ir {

/// Evaluates \p E over the register file \p Regs. \p E must not contain a
/// Nondet node (callers enumerate nondet assignments statement-wise).
inline Value evalExpr(const Expr &E, const std::vector<Value> &Regs) {
  switch (E.kind()) {
  case ExprKind::Const:
    return E.constValue();
  case ExprKind::Reg:
    assert(E.reg() < Regs.size() && "register out of range");
    return Regs[E.reg()];
  case ExprKind::Nondet:
    assert(false && "nondet reached evaluation; enumerate it at the "
                    "statement level");
    return 0;
  case ExprKind::Unary:
    return applyUnary(E.unaryOp(), evalExpr(*E.lhs(), Regs));
  case ExprKind::Binary:
    return applyBinary(E.binaryOp(), evalExpr(*E.lhs(), Regs),
                       evalExpr(*E.rhs(), Regs));
  }
  return 0;
}

} // namespace vbmc::ir

#endif // VBMC_IR_EVAL_H
