//===- Printer.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

using namespace vbmc::ir;

namespace {

/// Renders an expression; non-leaf operands are parenthesized so the output
/// re-parses to the same tree regardless of precedence subtleties. The
/// output is a *string* fixpoint of print . parse, not a tree fixpoint: a
/// negative constant prints as `-5`, which re-parses as Neg(5), which
/// prints as `-5` again.
std::string printExprImpl(const Expr &E, const std::vector<RegDecl> &Regs) {
  auto Operand = [&](const Expr &Op) {
    std::string S = printExprImpl(Op, Regs);
    if (Op.kind() == ExprKind::Unary || Op.kind() == ExprKind::Binary ||
        (Op.kind() == ExprKind::Const && Op.constValue() < 0))
      return "(" + S + ")";
    return S;
  };
  switch (E.kind()) {
  case ExprKind::Const:
    if (E.constValue() < 0)
      return "-" + std::to_string(-static_cast<int64_t>(E.constValue()));
    return std::to_string(E.constValue());
  case ExprKind::Reg:
    return Regs[E.reg()].Name;
  case ExprKind::Nondet:
    return "nondet(" + std::to_string(E.nondetLo()) + ", " +
           std::to_string(E.nondetHi()) + ")";
  case ExprKind::Unary:
    return std::string(unaryOpSpelling(E.unaryOp())) + Operand(*E.lhs());
  case ExprKind::Binary:
    return Operand(*E.lhs()) + " " + binaryOpSpelling(E.binaryOp()) + " " +
           Operand(*E.rhs());
  }
  return "?";
}

/// True iff \p S is the parser's encoding of `atomic { ... }`: an If with
/// constant-true condition, no else, whose body is a balanced
/// AtomicBegin ... AtomicEnd bracket pair.
bool isAtomicSugar(const Stmt &S) {
  if (S.Kind != StmtKind::If || !S.Else.empty() ||
      S.E->kind() != ExprKind::Const || S.E->constValue() != 1 ||
      S.Then.size() < 2 || S.Then.front().Kind != StmtKind::AtomicBegin ||
      S.Then.back().Kind != StmtKind::AtomicEnd)
    return false;
  // The opening begin must not be closed before the final element; an
  // early close means the markers are not one bracket pair.
  int Depth = 0;
  for (size_t I = 0; I < S.Then.size(); ++I) {
    if (S.Then[I].Kind == StmtKind::AtomicBegin)
      ++Depth;
    else if (S.Then[I].Kind == StmtKind::AtomicEnd)
      --Depth;
    if (Depth == 0 && I + 1 != S.Then.size())
      return false;
  }
  return Depth == 0;
}

void printStmts(const Stmt *B, const Stmt *E, const Program &P,
                const std::vector<RegDecl> &Regs, int Indent,
                std::string &Out) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  for (const Stmt *SP = B; SP != E; ++SP) {
    const Stmt &S = *SP;
    if (isAtomicSugar(S)) {
      Out += Pad + "atomic {\n";
      printStmts(S.Then.data() + 1, S.Then.data() + S.Then.size() - 1, P,
                 Regs, Indent + 1, Out);
      Out += Pad + "}\n";
      continue;
    }
    switch (S.Kind) {
    case StmtKind::Read:
      Out += Pad + Regs[S.Reg].Name + " = " + P.Vars[S.Var] + ";\n";
      break;
    case StmtKind::Write:
      Out += Pad + P.Vars[S.Var] + " = " + printExprImpl(*S.E, Regs) + ";\n";
      break;
    case StmtKind::Cas:
      Out += Pad + "cas(" + P.Vars[S.Var] + ", " + printExprImpl(*S.E, Regs) +
             ", " + printExprImpl(*S.E2, Regs) + ");\n";
      break;
    case StmtKind::Assign:
      Out += Pad + Regs[S.Reg].Name + " = " + printExprImpl(*S.E, Regs) +
             ";\n";
      break;
    case StmtKind::Assume:
      Out += Pad + "assume(" + printExprImpl(*S.E, Regs) + ");\n";
      break;
    case StmtKind::Assert:
      Out += Pad + "assert(" + printExprImpl(*S.E, Regs) + ");\n";
      break;
    case StmtKind::If:
      Out += Pad + "if (" + printExprImpl(*S.E, Regs) + ") {\n";
      printStmts(S.Then.data(), S.Then.data() + S.Then.size(), P, Regs,
                 Indent + 1, Out);
      if (!S.Else.empty()) {
        Out += Pad + "} else {\n";
        printStmts(S.Else.data(), S.Else.data() + S.Else.size(), P, Regs,
                   Indent + 1, Out);
      }
      Out += Pad + "}\n";
      break;
    case StmtKind::While:
      Out += Pad + "while (" + printExprImpl(*S.E, Regs) + ") {\n";
      printStmts(S.Then.data(), S.Then.data() + S.Then.size(), P, Regs,
                 Indent + 1, Out);
      Out += Pad + "}\n";
      break;
    case StmtKind::Term:
      Out += Pad + "term;\n";
      break;
    case StmtKind::Fence:
      Out += Pad + "fence;\n";
      break;
    case StmtKind::AtomicBegin: {
      // Pair raw markers (as produced by the translation) back into an
      // `atomic { ... }` block so the output re-parses.
      const Stmt *M = SP + 1;
      for (unsigned Depth = 1; M != E && Depth != 0; ++M) {
        if (M->Kind == StmtKind::AtomicBegin)
          ++Depth;
        else if (M->Kind == StmtKind::AtomicEnd && --Depth == 0)
          break;
      }
      if (M != E) {
        Out += Pad + "atomic {\n";
        printStmts(SP + 1, M, P, Regs, Indent + 1, Out);
        Out += Pad + "}\n";
        SP = M;
        break;
      }
      // Unmatched marker: the program is invalid; keep a diagnostic marker.
      Out += Pad + "/* atomic_begin */\n";
      break;
    }
    case StmtKind::AtomicEnd:
      Out += Pad + "/* atomic_end */\n";
      break;
    }
  }
}

void printStmts(const std::vector<Stmt> &Body, const Program &P,
                const std::vector<RegDecl> &Regs, int Indent,
                std::string &Out) {
  printStmts(Body.data(), Body.data() + Body.size(), P, Regs, Indent, Out);
}

} // namespace

std::string vbmc::ir::printExpr(const Expr &E, const Program &P) {
  return printExprImpl(E, P.Regs);
}

std::string vbmc::ir::printProgram(const Program &P) {
  std::string Out;
  if (!P.Vars.empty()) {
    Out += "var";
    for (const std::string &V : P.Vars)
      Out += " " + V;
    Out += ";\n\n";
  }
  for (uint32_t PI = 0; PI < P.numProcs(); ++PI) {
    const Process &Proc = P.Procs[PI];
    Out += "proc " + Proc.Name + " {\n";
    std::string RegLine;
    for (RegId R = 0; R < P.numRegs(); ++R)
      if (P.Regs[R].Process == PI)
        RegLine += " " + P.Regs[R].Name;
    if (!RegLine.empty())
      Out += "  reg" + RegLine + ";\n";
    printStmts(Proc.Body, P, P.Regs, 1, Out);
    Out += "}\n\n";
  }
  return Out;
}

std::string vbmc::ir::printFlatProgram(const FlatProgram &FP) {
  std::string Out;
  for (const FlatProcess &Proc : FP.Procs) {
    Out += "proc " + Proc.Name + ":\n";
    for (Label L = 0; L < Proc.Instrs.size(); ++L) {
      const FlatInstr &I = Proc.Instrs[L];
      Out += "  " + std::to_string(L) + ": ";
      auto Ex = [&](const ExprRef &E) { return printExprImpl(*E, FP.Regs); };
      switch (I.K) {
      case Op::Read:
        Out += FP.Regs[I.Reg].Name + " = " + FP.VarNames[I.Var];
        break;
      case Op::Write:
        Out += FP.VarNames[I.Var] + " = " + Ex(I.E);
        break;
      case Op::Cas:
        Out += "cas(" + FP.VarNames[I.Var] + ", " + Ex(I.E) + ", " + Ex(I.E2) +
               ")";
        break;
      case Op::Assign:
        Out += FP.Regs[I.Reg].Name + " = " + Ex(I.E);
        break;
      case Op::Assume:
        Out += "assume(" + Ex(I.E) + ")";
        break;
      case Op::Assert:
        Out += "assert(" + Ex(I.E) + ")";
        break;
      case Op::Branch:
        Out += "branch " + Ex(I.E) + " ? " + std::to_string(I.TNext) + " : " +
               std::to_string(I.FNext);
        break;
      case Op::Goto:
        Out += "goto " + std::to_string(I.Next);
        break;
      case Op::Term:
        Out += "term";
        break;
      case Op::AtomicBegin:
        Out += "atomic_begin";
        break;
      case Op::AtomicEnd:
        Out += "atomic_end";
        break;
      }
      if (I.K != Op::Branch && I.K != Op::Goto && I.K != Op::Term)
        Out += "  -> " + std::to_string(I.Next);
      Out += "\n";
    }
    Out += "  " + std::to_string(Proc.doneLabel()) + ": <done>\n";
    Out += "  " + std::to_string(Proc.errorLabel()) + ": <error>\n";
  }
  return Out;
}
