//===- Printer.h - pretty printing -------------------------------*- C++ -*-===//
///
/// \file
/// Renders programs and expressions back into the concrete syntax accepted
/// by the parser (the printer/parser pair round-trips, which the tests
/// check). Also renders the labeled-instruction form for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_PRINTER_H
#define VBMC_IR_PRINTER_H

#include "ir/Flatten.h"
#include "ir/Program.h"

#include <string>

namespace vbmc::ir {

/// Renders \p E using register names from \p P.
std::string printExpr(const Expr &E, const Program &P);

/// Renders \p P in parseable concrete syntax.
std::string printProgram(const Program &P);

/// Renders the labeled-instruction form with explicit label numbers and
/// successor labels (diagnostic output, not parseable).
std::string printFlatProgram(const FlatProgram &FP);

} // namespace vbmc::ir

#endif // VBMC_IR_PRINTER_H
