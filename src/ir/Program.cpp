//===- Program.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Program.h"

using namespace vbmc;
using namespace vbmc::ir;

Stmt Stmt::read(RegId R, VarId X) {
  Stmt S;
  S.Kind = StmtKind::Read;
  S.Reg = R;
  S.Var = X;
  return S;
}

Stmt Stmt::write(VarId X, ExprRef E) {
  Stmt S;
  S.Kind = StmtKind::Write;
  S.Var = X;
  S.E = std::move(E);
  return S;
}

Stmt Stmt::cas(VarId X, ExprRef Expected, ExprRef New) {
  Stmt S;
  S.Kind = StmtKind::Cas;
  S.Var = X;
  S.E = std::move(Expected);
  S.E2 = std::move(New);
  return S;
}

Stmt Stmt::assign(RegId R, ExprRef E) {
  Stmt S;
  S.Kind = StmtKind::Assign;
  S.Reg = R;
  S.E = std::move(E);
  return S;
}

Stmt Stmt::assume(ExprRef E) {
  Stmt S;
  S.Kind = StmtKind::Assume;
  S.E = std::move(E);
  return S;
}

Stmt Stmt::assertThat(ExprRef E) {
  Stmt S;
  S.Kind = StmtKind::Assert;
  S.E = std::move(E);
  return S;
}

Stmt Stmt::ifThen(ExprRef Cond, std::vector<Stmt> Then,
                  std::vector<Stmt> Else) {
  Stmt S;
  S.Kind = StmtKind::If;
  S.E = std::move(Cond);
  S.Then = std::move(Then);
  S.Else = std::move(Else);
  return S;
}

Stmt Stmt::whileLoop(ExprRef Cond, std::vector<Stmt> Body) {
  Stmt S;
  S.Kind = StmtKind::While;
  S.E = std::move(Cond);
  S.Then = std::move(Body);
  return S;
}

Stmt Stmt::term() {
  Stmt S;
  S.Kind = StmtKind::Term;
  return S;
}

Stmt Stmt::fence() {
  Stmt S;
  S.Kind = StmtKind::Fence;
  return S;
}

Stmt Stmt::atomicBegin() {
  Stmt S;
  S.Kind = StmtKind::AtomicBegin;
  return S;
}

Stmt Stmt::atomicEnd() {
  Stmt S;
  S.Kind = StmtKind::AtomicEnd;
  return S;
}

VarId Program::addVar(std::string Name) {
  Vars.push_back(std::move(Name));
  return static_cast<VarId>(Vars.size() - 1);
}

uint32_t Program::addProcess(std::string Name) {
  Procs.push_back(Process{std::move(Name), {}});
  return static_cast<uint32_t>(Procs.size() - 1);
}

RegId Program::addReg(uint32_t ProcessIdx, std::string Name) {
  assert(ProcessIdx < Procs.size() && "bad process index");
  Regs.push_back(RegDecl{std::move(Name), ProcessIdx});
  return static_cast<RegId>(Regs.size() - 1);
}

VarId Program::findVar(const std::string &Name) const {
  for (VarId I = 0; I < Vars.size(); ++I)
    if (Vars[I] == Name)
      return I;
  return numVars();
}

namespace {

/// Recursive well-formedness walker for one process body.
class Validator {
public:
  Validator(const Program &P, uint32_t ProcIdx) : P(P), ProcIdx(ProcIdx) {}

  std::optional<std::string> check(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body)
      if (auto Err = checkStmt(S))
        return Err;
    return std::nullopt;
  }

private:
  std::optional<std::string> checkExpr(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Const:
      return std::nullopt;
    case ExprKind::Nondet:
      // Engines enumerate nondet choices statement-by-statement, so a
      // nondet must be the entire right-hand side of an assignment (the
      // Assign case handles that form before recursing here).
      return "nondet(lo, hi) is only allowed as the full right-hand side "
             "of a register assignment";
    case ExprKind::Reg:
      if (E.reg() >= P.numRegs())
        return "register index out of range";
      if (P.Regs[E.reg()].Process != ProcIdx)
        return "process '" + P.Procs[ProcIdx].Name + "' uses register '" +
               P.Regs[E.reg()].Name + "' of another process";
      return std::nullopt;
    case ExprKind::Unary:
      return checkExpr(*E.lhs());
    case ExprKind::Binary:
      if (auto Err = checkExpr(*E.lhs()))
        return Err;
      return checkExpr(*E.rhs());
    }
    return std::nullopt;
  }

  std::optional<std::string> checkReg(RegId R) {
    if (R >= P.numRegs())
      return "register index out of range";
    if (P.Regs[R].Process != ProcIdx)
      return "process '" + P.Procs[ProcIdx].Name + "' writes register '" +
             P.Regs[R].Name + "' of another process";
    return std::nullopt;
  }

  std::optional<std::string> checkVar(VarId X) {
    if (X >= P.numVars())
      return "shared-variable index out of range";
    return std::nullopt;
  }

  std::optional<std::string> checkStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Read:
      if (auto Err = checkVar(S.Var))
        return Err;
      return checkReg(S.Reg);
    case StmtKind::Write:
      if (auto Err = checkVar(S.Var))
        return Err;
      return checkExpr(*S.E);
    case StmtKind::Cas:
      if (auto Err = checkVar(S.Var))
        return Err;
      if (auto Err = checkExpr(*S.E))
        return Err;
      return checkExpr(*S.E2);
    case StmtKind::Assign:
      if (auto Err = checkReg(S.Reg))
        return Err;
      if (S.E->kind() == ExprKind::Nondet) {
        if (S.E->nondetLo() > S.E->nondetHi())
          return "nondet range is empty";
        return std::nullopt;
      }
      return checkExpr(*S.E);
    case StmtKind::Assume:
    case StmtKind::Assert:
      return checkExpr(*S.E);
    case StmtKind::If:
      if (auto Err = checkExpr(*S.E))
        return Err;
      if (auto Err = check(S.Then))
        return Err;
      return check(S.Else);
    case StmtKind::While:
      if (auto Err = checkExpr(*S.E))
        return Err;
      return check(S.Then);
    case StmtKind::Term:
    case StmtKind::Fence:
      return std::nullopt;
    case StmtKind::AtomicBegin:
      ++AtomicDepth;
      return std::nullopt;
    case StmtKind::AtomicEnd:
      if (AtomicDepth == 0)
        return "atomic_end without matching atomic_begin";
      --AtomicDepth;
      return std::nullopt;
    }
    return std::nullopt;
  }

  const Program &P;
  uint32_t ProcIdx;
  int AtomicDepth = 0;
};

} // namespace

ErrorOr<bool> Program::validate() const {
  if (Procs.empty())
    return Diagnostic("program declares no processes");
  for (uint32_t I = 0; I < numProcs(); ++I) {
    Validator V(*this, I);
    if (auto Err = V.check(Procs[I].Body))
      return Diagnostic("in process '" + Procs[I].Name + "': " + *Err);
  }
  return true;
}
