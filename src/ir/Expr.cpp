//===- Expr.cpp -----------------------------------------------*- C++ -*-===//

#include "ir/Expr.h"

using namespace vbmc::ir;

bool Expr::hasNondet() const {
  switch (Kind) {
  case ExprKind::Const:
  case ExprKind::Reg:
    return false;
  case ExprKind::Nondet:
    return true;
  case ExprKind::Unary:
    return Left->hasNondet();
  case ExprKind::Binary:
    return Left->hasNondet() || Right->hasNondet();
  }
  return false;
}

void Expr::collectRegs(std::vector<RegId> &Regs) const {
  switch (Kind) {
  case ExprKind::Const:
  case ExprKind::Nondet:
    return;
  case ExprKind::Reg:
    Regs.push_back(Register);
    return;
  case ExprKind::Unary:
    Left->collectRegs(Regs);
    return;
  case ExprKind::Binary:
    Left->collectRegs(Regs);
    Right->collectRegs(Regs);
    return;
  }
}

ExprRef Expr::makeConst(Value V) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Const;
  E->ConstVal = V;
  return E;
}

ExprRef Expr::makeReg(RegId R) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Reg;
  E->Register = R;
  return E;
}

ExprRef Expr::makeNondet(Value Lo, Value Hi) {
  assert(Lo <= Hi && "empty nondet range");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Nondet;
  E->Lo = Lo;
  E->Hi = Hi;
  return E;
}

ExprRef Expr::makeUnary(UnaryOp Op, ExprRef Operand) {
  assert(Operand && "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Left = std::move(Operand);
  return E;
}

ExprRef Expr::makeBinary(BinaryOp Op, ExprRef Lhs, ExprRef Rhs) {
  assert(Lhs && Rhs && "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Left = std::move(Lhs);
  E->Right = std::move(Rhs);
  return E;
}

Value vbmc::ir::applyUnary(UnaryOp Op, Value A) {
  switch (Op) {
  case UnaryOp::Not:
    return A == 0 ? 1 : 0;
  case UnaryOp::Neg:
    return -A;
  }
  return 0;
}

Value vbmc::ir::applyBinary(BinaryOp Op, Value A, Value B) {
  switch (Op) {
  case BinaryOp::Add:
    return A + B;
  case BinaryOp::Sub:
    return A - B;
  case BinaryOp::Mul:
    return A * B;
  case BinaryOp::Div:
    return B == 0 ? 0 : A / B;
  case BinaryOp::Mod:
    return B == 0 ? 0 : A % B;
  case BinaryOp::Eq:
    return A == B;
  case BinaryOp::Ne:
    return A != B;
  case BinaryOp::Lt:
    return A < B;
  case BinaryOp::Le:
    return A <= B;
  case BinaryOp::Gt:
    return A > B;
  case BinaryOp::Ge:
    return A >= B;
  case BinaryOp::And:
    return (A != 0 && B != 0) ? 1 : 0;
  case BinaryOp::Or:
    return (A != 0 || B != 0) ? 1 : 0;
  }
  return 0;
}

const char *vbmc::ir::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "!";
  case UnaryOp::Neg:
    return "-";
  }
  return "?";
}

const char *vbmc::ir::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}
