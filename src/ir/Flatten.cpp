//===- Flatten.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Flatten.h"

using namespace vbmc::ir;

namespace {

/// Emits the labeled instructions of one process body.
class Lowering {
public:
  Lowering(FlatProcess &Out, VarId FenceVar) : Out(Out), FenceVar(FenceVar) {}

  /// Emits \p Body; afterwards control continues at whatever label is
  /// emitted next.
  void emitBody(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body)
      emitStmt(S);
  }

  /// Finalizes the process: control falling off the end terminates.
  void finish() {
    // Implicit `term` at the end of the body keeps the label space closed.
    emit(make(Op::Term));
  }

private:
  struct PatchSite {
    Label Instr;
    int Slot; ///< 0 = Next, 1 = TNext, 2 = FNext.
  };

  static FlatInstr make(Op K) {
    FlatInstr I;
    I.K = K;
    return I;
  }

  Label here() const { return static_cast<Label>(Out.Instrs.size()); }

  Label emit(FlatInstr I) {
    Label L = here();
    I.Next = L + 1; // Default straight-line successor; branches overwrite.
    Out.Instrs.push_back(std::move(I));
    return L;
  }

  void patchLabel(PatchSite Site, Label Target) {
    FlatInstr &I = Out.Instrs[Site.Instr];
    (Site.Slot == 0 ? I.Next : Site.Slot == 1 ? I.TNext : I.FNext) = Target;
  }

  void emitStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Read: {
      FlatInstr I = make(Op::Read);
      I.Reg = S.Reg;
      I.Var = S.Var;
      emit(std::move(I));
      return;
    }
    case StmtKind::Write: {
      FlatInstr I = make(Op::Write);
      I.Var = S.Var;
      I.E = S.E;
      emit(std::move(I));
      return;
    }
    case StmtKind::Cas: {
      FlatInstr I = make(Op::Cas);
      I.Var = S.Var;
      I.E = S.E;
      I.E2 = S.E2;
      emit(std::move(I));
      return;
    }
    case StmtKind::Assign: {
      FlatInstr I = make(Op::Assign);
      I.Reg = S.Reg;
      I.E = S.E;
      emit(std::move(I));
      return;
    }
    case StmtKind::Assume: {
      FlatInstr I = make(Op::Assume);
      I.E = S.E;
      emit(std::move(I));
      return;
    }
    case StmtKind::Assert: {
      FlatInstr I = make(Op::Assert);
      I.E = S.E;
      emit(std::move(I));
      return;
    }
    case StmtKind::If: {
      FlatInstr Br = make(Op::Branch);
      Br.E = S.E;
      Label BrL = emit(std::move(Br));
      patchLabel({BrL, 1}, here()); // TNext = start of then-branch.
      emitBody(S.Then);
      if (S.Else.empty()) {
        patchLabel({BrL, 2}, here()); // FNext = after the if.
        return;
      }
      FlatInstr Skip = make(Op::Goto);
      Label SkipL = emit(std::move(Skip));
      patchLabel({BrL, 2}, here()); // FNext = start of else-branch.
      emitBody(S.Else);
      patchLabel({SkipL, 0}, here()); // Goto jumps past the else-branch.
      return;
    }
    case StmtKind::While: {
      Label Head = here();
      FlatInstr Br = make(Op::Branch);
      Br.E = S.E;
      Label BrL = emit(std::move(Br));
      patchLabel({BrL, 1}, here()); // TNext = loop body.
      emitBody(S.Then);
      FlatInstr Back = make(Op::Goto);
      Label BackL = emit(std::move(Back));
      patchLabel({BackL, 0}, Head);
      patchLabel({BrL, 2}, here()); // FNext = after the loop.
      return;
    }
    case StmtKind::Term:
      emit(make(Op::Term));
      return;
    case StmtKind::Fence: {
      // Section 6: a fence is a CAS on the distinguished fence variable,
      // whose value is always 0.
      assert(FenceVar != std::numeric_limits<VarId>::max() &&
             "fence without fence variable");
      FlatInstr I = make(Op::Cas);
      I.Var = FenceVar;
      I.E = Expr::makeConst(0);
      I.E2 = Expr::makeConst(0);
      emit(std::move(I));
      return;
    }
    case StmtKind::AtomicBegin:
      emit(make(Op::AtomicBegin));
      return;
    case StmtKind::AtomicEnd:
      emit(make(Op::AtomicEnd));
      return;
    }
  }

  FlatProcess &Out;
  VarId FenceVar;
};

bool bodyHasFence(const std::vector<Stmt> &Body) {
  for (const Stmt &S : Body) {
    if (S.Kind == StmtKind::Fence)
      return true;
    if (bodyHasFence(S.Then) || bodyHasFence(S.Else))
      return true;
  }
  return false;
}

} // namespace

bool FlatProgram::hasAsserts() const {
  for (const FlatProcess &P : Procs)
    for (const FlatInstr &I : P.Instrs)
      if (I.K == Op::Assert)
        return true;
  return false;
}

FlatProgram vbmc::ir::flatten(const Program &P) {
  FlatProgram FP;
  FP.VarNames = P.Vars;
  FP.Regs = P.Regs;

  bool NeedsFenceVar = false;
  for (const Process &Proc : P.Procs)
    NeedsFenceVar |= bodyHasFence(Proc.Body);
  if (NeedsFenceVar) {
    FP.FenceVar = static_cast<VarId>(FP.VarNames.size());
    FP.VarNames.push_back("__fence");
  }

  for (const Process &Proc : P.Procs) {
    FlatProcess FProc;
    FProc.Name = Proc.Name;
    Lowering L(FProc, FP.FenceVar);
    L.emitBody(Proc.Body);
    L.finish();
    FP.Procs.push_back(std::move(FProc));
  }
  return FP;
}
