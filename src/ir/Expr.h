//===- Expr.h - register expressions -----------------------------*- C++ -*-===//
///
/// \file
/// Expressions over registers and constants, exactly as in the paper's
/// grammar (Fig. 1): expressions never mention shared variables. We extend
/// the grammar with a bounded nondeterministic choice `nondet(lo, hi)`,
/// which the paper writes as "$r = v in D" and desugars through an auxiliary
/// process; having it first-class keeps programs small and is required by
/// the translation's guesses (Algorithms 2 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_IR_EXPR_H
#define VBMC_IR_EXPR_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vbmc::ir {

/// The data domain D. The paper's D is a finite set; int32_t comfortably
/// contains every domain used by the benchmarks and the translation's
/// timestamp range {0..2K}.
using Value = int32_t;

/// Program-wide register index (register sets of distinct processes are
/// disjoint, so a flat index space is unambiguous).
using RegId = uint32_t;

/// Shared-variable index.
using VarId = uint32_t;

enum class ExprKind : uint8_t {
  Const,  ///< Integer literal.
  Reg,    ///< Register read.
  Nondet, ///< Nondeterministic value in an inclusive range.
  Unary,  ///< Unary operator application.
  Binary, ///< Binary operator application.
};

enum class UnaryOp : uint8_t {
  Not, ///< Logical negation (0 -> 1, nonzero -> 0).
  Neg, ///< Arithmetic negation.
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, ///< Division; division by zero yields 0 (total semantics).
  Mod, ///< Remainder; modulo by zero yields 0.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, ///< Logical conjunction on the zero/nonzero reading.
  Or,  ///< Logical disjunction.
};

class Expr;

/// Shared immutable expression handle. Expressions are freely shared between
/// statements, the translation output, and the BMC encoder.
using ExprRef = std::shared_ptr<const Expr>;

/// An immutable expression tree node.
class Expr {
public:
  ExprKind kind() const { return Kind; }

  Value constValue() const {
    assert(Kind == ExprKind::Const && "not a constant");
    return ConstVal;
  }
  RegId reg() const {
    assert(Kind == ExprKind::Reg && "not a register");
    return Register;
  }
  Value nondetLo() const {
    assert(Kind == ExprKind::Nondet && "not a nondet");
    return Lo;
  }
  Value nondetHi() const {
    assert(Kind == ExprKind::Nondet && "not a nondet");
    return Hi;
  }
  UnaryOp unaryOp() const {
    assert(Kind == ExprKind::Unary && "not unary");
    return UOp;
  }
  BinaryOp binaryOp() const {
    assert(Kind == ExprKind::Binary && "not binary");
    return BOp;
  }
  const ExprRef &lhs() const {
    assert(Kind != ExprKind::Const && Kind != ExprKind::Reg &&
           Kind != ExprKind::Nondet && "leaf expression has no operands");
    return Left;
  }
  const ExprRef &rhs() const {
    assert(Kind == ExprKind::Binary && "not binary");
    return Right;
  }

  /// True when the expression contains a Nondet node.
  bool hasNondet() const;

  /// Collects the registers read by this expression into \p Regs
  /// (duplicates possible).
  void collectRegs(std::vector<RegId> &Regs) const;

  /// \name Factories
  /// @{
  static ExprRef makeConst(Value V);
  static ExprRef makeReg(RegId R);
  static ExprRef makeNondet(Value Lo, Value Hi);
  static ExprRef makeUnary(UnaryOp Op, ExprRef Operand);
  static ExprRef makeBinary(BinaryOp Op, ExprRef Lhs, ExprRef Rhs);
  /// @}

private:
  Expr() = default;

  ExprKind Kind = ExprKind::Const;
  Value ConstVal = 0;
  RegId Register = 0;
  Value Lo = 0, Hi = 0;
  UnaryOp UOp = UnaryOp::Not;
  BinaryOp BOp = BinaryOp::Add;
  ExprRef Left, Right;
};

/// Applies \p Op to \p A (on the total semantics: logical ops use the
/// zero/nonzero reading and produce 0/1).
Value applyUnary(UnaryOp Op, Value A);

/// Applies \p Op to \p A and \p B; division/modulo by zero yield 0.
Value applyBinary(BinaryOp Op, Value A, Value B);

/// Spelled operator for diagnostics and the pretty printer.
const char *unaryOpSpelling(UnaryOp Op);
const char *binaryOpSpelling(BinaryOp Op);

} // namespace vbmc::ir

#endif // VBMC_IR_EXPR_H
