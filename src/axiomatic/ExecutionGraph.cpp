//===- ExecutionGraph.cpp - RA axioms and enumeration -----------*- C++ -*-===//

#include "axiomatic/ExecutionGraph.h"

#include "ir/Eval.h"
#include "support/FaultInjection.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::axiomatic;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;

namespace {

/// Dense boolean relation over events with transitive closure.
class Relation {
public:
  explicit Relation(uint32_t N) : N(N), Bits(N * N, 0) {}

  void add(uint32_t A, uint32_t B) { Bits[A * N + B] = 1; }
  bool has(uint32_t A, uint32_t B) const { return Bits[A * N + B]; }

  void closeTransitively() {
    for (uint32_t K = 0; K < N; ++K)
      for (uint32_t I = 0; I < N; ++I) {
        if (!Bits[I * N + K])
          continue;
        for (uint32_t J = 0; J < N; ++J)
          if (Bits[K * N + J])
            Bits[I * N + J] = 1;
      }
  }

  bool irreflexive() const {
    for (uint32_t I = 0; I < N; ++I)
      if (Bits[I * N + I])
        return false;
    return true;
  }

private:
  uint32_t N;
  std::vector<uint8_t> Bits;
};

/// Adds po and rf edges of \p G into \p R (Init events before all).
void addHbBase(const ExecutionGraph &G, Relation &R) {
  // po: consecutive events of the same process; Init -> first events.
  std::vector<int64_t> LastOf; // Proc -> last event seen.
  for (uint32_t E = 0; E < G.numEvents(); ++E) {
    const Event &Ev = G.Events[E];
    if (Ev.Kind == EventKind::Init) {
      // Init precedes every non-init event (added lazily below).
      continue;
    }
    if (Ev.Proc >= LastOf.size())
      LastOf.resize(Ev.Proc + 1, -1);
    if (LastOf[Ev.Proc] >= 0)
      R.add(static_cast<uint32_t>(LastOf[Ev.Proc]), E);
    LastOf[Ev.Proc] = E;
  }
  for (uint32_t I = 0; I < G.numEvents(); ++I) {
    if (G.Events[I].Kind != EventKind::Init)
      continue;
    for (uint32_t E = 0; E < G.numEvents(); ++E)
      if (G.Events[E].Kind != EventKind::Init)
        R.add(I, E);
  }
  // rf.
  for (uint32_t E = 0; E < G.numEvents(); ++E)
    if (G.Events[E].reads())
      R.add(G.Rf[E], E);
}

} // namespace

bool vbmc::axiomatic::checkRaConsistent(const ExecutionGraph &G) {
  uint32_t N = G.numEvents();
  Relation Hb(N);
  addHbBase(G, Hb);
  Hb.closeTransitively();
  if (!Hb.irreflexive())
    return false;

  // eco = (rf U mo U fr)+ with fr = rf^-1 ; mo.
  Relation Eco(N);
  for (uint32_t E = 0; E < N; ++E)
    if (G.Events[E].reads())
      Eco.add(G.Rf[E], E);
  // mo: Init(x) first, then Mo[x] in order.
  for (VarId X = 0; X < G.Mo.size(); ++X) {
    const auto &Seq = G.Mo[X];
    // Find Init(x).
    uint32_t InitE = ~0u;
    for (uint32_t E = 0; E < N; ++E)
      if (G.Events[E].Kind == EventKind::Init && G.Events[E].Var == X)
        InitE = E;
    for (size_t I = 0; I < Seq.size(); ++I) {
      if (InitE != ~0u)
        Eco.add(InitE, Seq[I]);
      for (size_t J = I + 1; J < Seq.size(); ++J)
        Eco.add(Seq[I], Seq[J]);
    }
    // fr: for each read r of x from w, r is eco-before every write
    // mo-after w.
    for (uint32_t E = 0; E < N; ++E) {
      if (!G.Events[E].reads() || G.Events[E].Var != X)
        continue;
      uint32_t W = G.Rf[E];
      bool Passed = W == InitE;
      for (uint32_t WAfter : Seq) {
        if (Passed && WAfter != E)
          Eco.add(E, WAfter);
        if (WAfter == W)
          Passed = true;
      }
    }
  }
  Eco.closeTransitively();

  // Coherence: no hb edge opposed by eco (together with hb irreflexivity
  // this is irreflexive(hb ; eco^?)). The drop-coherence fault hook lets
  // the fuzzing harness verify that a checker missing this axiom is
  // caught by the operational/axiomatic differential.
  if (!fault::enabled("axiomatic.drop-coherence")) {
    for (uint32_t A = 0; A < N; ++A)
      for (uint32_t B = 0; B < N; ++B)
        if (Hb.has(A, B) && Eco.has(B, A))
          return false;
    if (!Eco.irreflexive())
      return false;
  }

  // Atomicity: an update is mo-adjacent to the write it reads.
  const bool DropAtomicity = fault::enabled("axiomatic.drop-atomicity");
  for (uint32_t E = 0; E < N && !DropAtomicity; ++E) {
    if (G.Events[E].Kind != EventKind::Update)
      continue;
    uint32_t W = G.Rf[E];
    const auto &Seq = G.Mo[G.Events[E].Var];
    if (G.Events[W].Kind == EventKind::Init) {
      if (Seq.empty() || Seq.front() != E)
        return false;
      continue;
    }
    auto It = std::find(Seq.begin(), Seq.end(), W);
    if (It == Seq.end() || It + 1 == Seq.end() || *(It + 1) != E)
      return false;
  }
  return true;
}

namespace {

/// One shared operation of a thread plus the local statements that
/// precede it (or trail the thread for the final marker).
struct ThreadOp {
  const Stmt *S = nullptr; ///< Read/Write/Cas, or null for "end of thread".
  std::vector<const Stmt *> LocalsBefore; ///< Assign/Assume/Assert.
  uint32_t EventIdx = ~0u;
};

/// Enumeration state for enumerateRaOutcomes.
class OutcomeEnumerator {
public:
  OutcomeEnumerator(const Program &P, const CheckContext *Ctx)
      : P(P), Ctx(Ctx) {}

  ErrorOr<std::set<std::vector<Value>>> run() {
    if (auto Err = buildSkeleton())
      return *Err;
    enumerateRf(0);
    if (Interrupted)
      return Diagnostic("interrupted");
    return std::move(Outcomes);
  }

private:
  std::optional<Diagnostic> buildSkeleton() {
    // Init events, one per variable.
    for (VarId X = 0; X < P.numVars(); ++X) {
      Event E;
      E.Kind = EventKind::Init;
      E.Var = X;
      G.Events.push_back(E);
    }
    Threads.resize(P.numProcs());
    for (uint32_t PI = 0; PI < P.numProcs(); ++PI) {
      std::vector<const Stmt *> Pending;
      uint32_t Index = 0;
      for (const Stmt &S : P.Procs[PI].Body) {
        switch (S.Kind) {
        case StmtKind::Assign:
          if (S.E->kind() == ir::ExprKind::Nondet)
            return Diagnostic("axiomatic oracle does not support nondet");
          [[fallthrough]];
        case StmtKind::Assume:
        case StmtKind::Assert:
          Pending.push_back(&S);
          break;
        case StmtKind::Term:
          break; // Trailing locals after term never run; keep simple.
        case StmtKind::Read:
        case StmtKind::Write:
        case StmtKind::Cas: {
          ThreadOp Op;
          Op.S = &S;
          Op.LocalsBefore = std::move(Pending);
          Pending.clear();
          Event E;
          E.Proc = PI;
          E.IndexInProc = Index++;
          E.Var = S.Var;
          E.Kind = S.Kind == StmtKind::Read    ? EventKind::Read
                   : S.Kind == StmtKind::Write ? EventKind::Write
                                               : EventKind::Update;
          Op.EventIdx = G.numEvents();
          G.Events.push_back(E);
          Threads[PI].push_back(std::move(Op));
          break;
        }
        default:
          return Diagnostic("axiomatic oracle requires straight-line "
                            "programs (no if/while/fence/atomic)");
        }
      }
      // Trailing local statements run after the last shared op.
      ThreadOp End;
      End.LocalsBefore = std::move(Pending);
      Threads[PI].push_back(std::move(End));
    }
    G.Rf.assign(G.numEvents(), ~0u);
    // Collect read events and same-variable write candidates.
    for (uint32_t E = 0; E < G.numEvents(); ++E)
      if (G.Events[E].reads())
        ReadEvents.push_back(E);
    return std::nullopt;
  }

  /// Depth-first choice of a writer for each read event.
  void enumerateRf(size_t ReadIdx) {
    if (Interrupted)
      return;
    if (Ctx && (++PollCounter & 0xff) == 0 && Ctx->interrupted()) {
      Interrupted = true;
      return;
    }
    if (ReadIdx == ReadEvents.size()) {
      evaluateCandidate();
      return;
    }
    uint32_t R = ReadEvents[ReadIdx];
    for (uint32_t W = 0; W < G.numEvents(); ++W) {
      if (!G.Events[W].writes() || G.Events[W].Var != G.Events[R].Var ||
          W == R)
        continue;
      G.Rf[R] = W;
      enumerateRf(ReadIdx + 1);
    }
    G.Rf[R] = ~0u;
  }

  /// With rf fixed: check po U rf acyclicity, compute values, check
  /// completion, then search for a consistent mo.
  void evaluateCandidate() {
    // Acyclicity of po U rf.
    uint32_t N = G.numEvents();
    Relation HbBase(N);
    addHbBase(G, HbBase);
    HbBase.closeTransitively();
    if (!HbBase.irreflexive())
      return;

    // Evaluate all threads sequentially; read values come from the rf
    // sources, whose written values are computed on demand. Since po U rf
    // is acyclic, a simple per-thread evaluation ordered by a topological
    // pass terminates; we realize it as memoized recursion.
    WrittenValue.assign(N, std::nullopt);
    std::vector<Value> FinalRegs(P.numRegs(), 0);
    for (uint32_t PI = 0; PI < P.numProcs(); ++PI) {
      std::vector<Value> Regs(P.numRegs(), 0);
      if (!evalThread(PI, Threads[PI].size(), Regs))
        return; // Incomplete execution (assume/assert/CAS mismatch).
      for (uint32_t R = 0; R < P.numRegs(); ++R)
        if (P.Regs[R].Process == PI)
          FinalRegs[R] = Regs[R];
    }

    // rf value sanity (a read observes exactly the written value).
    for (uint32_t E : ReadEvents)
      G.Events[E].ValueRead = writtenValueOf(G.Rf[E]);

    if (findConsistentMo())
      Outcomes.insert(FinalRegs);
  }

  Value writtenValueOf(uint32_t W) {
    if (G.Events[W].Kind == EventKind::Init)
      return 0;
    if (!WrittenValue[W]) {
      std::vector<Value> Regs(P.numRegs(), 0);
      // Evaluate the owning thread until the event is computed.
      evalThreadUntilEvent(G.Events[W].Proc, W, Regs);
    }
    assert(WrittenValue[W] && "write value not computed (rf cycle?)");
    return *WrittenValue[W];
  }

  /// Runs thread \p PI up to (and including) the op producing event \p W.
  void evalThreadUntilEvent(uint32_t PI, uint32_t W,
                            std::vector<Value> &Regs) {
    for (const ThreadOp &Op : Threads[PI]) {
      for (const Stmt *L : Op.LocalsBefore)
        if (L->Kind == StmtKind::Assign)
          Regs[L->Reg] = ir::evalExpr(*L->E, Regs);
      if (!Op.S)
        return;
      applySharedOp(Op, Regs);
      if (Op.EventIdx == W)
        return;
    }
  }

  void applySharedOp(const ThreadOp &Op, std::vector<Value> &Regs) {
    const Stmt &S = *Op.S;
    if (S.Kind == StmtKind::Read) {
      Regs[S.Reg] = writtenValueOf(G.Rf[Op.EventIdx]);
      return;
    }
    if (S.Kind == StmtKind::Write) {
      WrittenValue[Op.EventIdx] = ir::evalExpr(*S.E, Regs);
      return;
    }
    // CAS: the new value is written; the expected-value check happens in
    // evalThread (it decides completion, not the value).
    WrittenValue[Op.EventIdx] = ir::evalExpr(*S.E2, Regs);
  }

  /// Full evaluation of thread \p PI (first \p Ops ops); returns false
  /// when an assume/assert fails or a CAS does not see its expectation.
  bool evalThread(uint32_t PI, size_t Ops, std::vector<Value> &Regs) {
    for (size_t I = 0; I < Ops; ++I) {
      const ThreadOp &Op = Threads[PI][I];
      for (const Stmt *L : Op.LocalsBefore) {
        if (L->Kind == StmtKind::Assign) {
          Regs[L->Reg] = ir::evalExpr(*L->E, Regs);
          continue;
        }
        // Assume or assert: false means the thread never completes.
        if (ir::evalExpr(*L->E, Regs) == 0)
          return false;
      }
      if (!Op.S)
        continue;
      if (Op.S->Kind == StmtKind::Cas) {
        Value Expected = ir::evalExpr(*Op.S->E, Regs);
        if (writtenValueOf(G.Rf[Op.EventIdx]) != Expected)
          return false;
      }
      applySharedOp(Op, Regs);
    }
    return true;
  }

  /// Enumerates per-variable write permutations until one satisfies the
  /// RA axioms.
  bool findConsistentMo() {
    std::vector<std::vector<uint32_t>> WritesPerVar(P.numVars());
    for (uint32_t E = 0; E < G.numEvents(); ++E)
      if (G.Events[E].writes() && G.Events[E].Kind != EventKind::Init)
        WritesPerVar[G.Events[E].Var].push_back(E);
    G.Mo.assign(P.numVars(), {});
    return tryMoFor(0, WritesPerVar);
  }

  bool tryMoFor(VarId X, std::vector<std::vector<uint32_t>> &Writes) {
    if (X == P.numVars())
      return checkRaConsistent(G);
    std::vector<uint32_t> Perm = Writes[X];
    std::sort(Perm.begin(), Perm.end());
    do {
      G.Mo[X] = Perm;
      if (tryMoFor(X + 1, Writes))
        return true;
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    return false;
  }

  const Program &P;
  const CheckContext *Ctx;
  ExecutionGraph G;
  std::vector<std::vector<ThreadOp>> Threads;
  std::vector<uint32_t> ReadEvents;
  std::vector<std::optional<Value>> WrittenValue;
  std::set<std::vector<Value>> Outcomes;
  uint64_t PollCounter = 0;
  bool Interrupted = false;
};

} // namespace

ErrorOr<std::set<std::vector<Value>>>
vbmc::axiomatic::enumerateRaOutcomes(const Program &P,
                                     const CheckContext *Ctx) {
  auto Valid = P.validate();
  if (!Valid)
    return Valid.error();
  OutcomeEnumerator E(P, Ctx);
  return E.run();
}
