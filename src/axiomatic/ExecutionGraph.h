//===- ExecutionGraph.h - axiomatic RA consistency ----------------*- C++ -*-===//
///
/// \file
/// The axiomatic side of the RA model, standing in for Herd with the RA
/// axioms of [24] (Lahav-Giannarakis-Vafeiadis): executions are graphs of
/// read/write/update events related by program order (po), reads-from
/// (rf) and per-location modification order (mo). An execution is
/// RA-consistent iff
///
///   * hb = (po U rf)+ is irreflexive,
///   * coherence: hb ; eco is irreflexive, where
///     eco = (rf U mo U fr)+ and fr = rf^-1 ; mo,
///   * atomicity: for an update (CAS) u reading from w, no write to the
///     same location is mo-between w and u.
///
/// enumerateRaOutcomes exhaustively enumerates the consistent complete
/// executions of a straight-line program and returns the reachable final
/// register valuations — the litmus-test oracle. The operational (Fig. 2)
/// and axiomatic semantics are proved equivalent in the literature; the
/// test suite checks the equivalence *on this implementation* by
/// comparing against ra::collectTerminalRegs.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_AXIOMATIC_EXECUTIONGRAPH_H
#define VBMC_AXIOMATIC_EXECUTIONGRAPH_H

#include "ir/Program.h"
#include "support/CheckContext.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <set>
#include <vector>

namespace vbmc::axiomatic {

using ir::Value;
using ir::VarId;

enum class EventKind : uint8_t {
  Init,  ///< The initial write of every variable (value 0).
  Read,  ///< An acquire read.
  Write, ///< A release write.
  Update ///< A CAS (acquire-read + release-write, atomic).
};

struct Event {
  EventKind Kind;
  uint32_t Proc = ~0u;   ///< Owning process (~0 for Init).
  uint32_t IndexInProc = 0;
  VarId Var = 0;
  Value ValueRead = 0;   ///< Read / Update.
  Value ValueWritten = 0; ///< Init / Write / Update.

  bool reads() const {
    return Kind == EventKind::Read || Kind == EventKind::Update;
  }
  bool writes() const { return Kind != EventKind::Read; }
};

/// A candidate execution: events plus the rf and mo relations. po is
/// implicit in (Proc, IndexInProc); the Init event precedes everything.
struct ExecutionGraph {
  std::vector<Event> Events;
  /// Rf[e]: index of the write event that read event e reads from
  /// (meaningful when Events[e].reads()).
  std::vector<uint32_t> Rf;
  /// Mo[x]: the modification order of variable x as a sequence of event
  /// indices (excluding the Init event, which is first implicitly).
  std::vector<std::vector<uint32_t>> Mo;

  uint32_t numEvents() const { return static_cast<uint32_t>(Events.size()); }
};

/// Checks the RA axioms on \p G. The fault-injection hooks
/// `axiomatic.drop-coherence` and `axiomatic.drop-atomicity` (see
/// support/FaultInjection.h) suppress one axiom each; they exist solely
/// so the differential fuzzing harness can prove it detects a broken
/// checker.
bool checkRaConsistent(const ExecutionGraph &G);

/// Exhaustively enumerates consistent complete executions of the
/// straight-line program \p P (no if/while; fences must be desugared by
/// the caller or absent) and returns all final register valuations.
/// Executions where an assume fails or a CAS never sees its expected
/// value are incomplete and excluded, matching the operational
/// AllDone-collection semantics. When \p Ctx is given its deadline and
/// cancellation are polled; an interrupted enumeration fails with the
/// diagnostic "interrupted".
ErrorOr<std::set<std::vector<Value>>>
enumerateRaOutcomes(const ir::Program &P, const CheckContext *Ctx = nullptr);

} // namespace vbmc::axiomatic

#endif // VBMC_AXIOMATIC_EXECUTIONGRAPH_H
