//===- RaExplorer.cpp -----------------------------------------*- C++ -*-===//

#include "ra/RaExplorer.h"

#include <deque>
#include <unordered_set>

using namespace vbmc;
using namespace vbmc::ra;

namespace {

/// FNV-1a over a word vector.
struct KeyHash {
  size_t operator()(const std::vector<uint32_t> &Key) const {
    uint64_t H = 1469598103934665603ULL;
    for (uint32_t W : Key) {
      H ^= W;
      H *= 1099511628211ULL;
    }
    return static_cast<size_t>(H);
  }
};

bool goalHolds(const FlatProgram &FP, const RaQuery &Q, const RaConfig &C) {
  switch (Q.Goal) {
  case GoalKind::AnyError:
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      if (FP.Procs[P].isError(C.Pc[P]))
        return true;
    return false;
  case GoalKind::AllDone:
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      if (!FP.Procs[P].isDone(C.Pc[P]))
        return false;
    return true;
  case GoalKind::Custom:
    return Q.GoalPredicate(C.Pc);
  }
  return false;
}

/// BFS node: configuration + switches used + back-pointer for traces.
struct Node {
  RaConfig Config;
  uint32_t Switches;
  int64_t Parent; ///< Index into the arena, -1 for the root.
  TraceStep Via;  ///< Step that produced this node (unused for the root).
};

} // namespace

RaResult vbmc::ra::exploreRa(const FlatProgram &FP, const RaQuery &Q) {
  Timer Watch;
  Deadline DL(Q.BudgetSeconds);
  RaResult Result;

  std::vector<Node> Arena;
  std::deque<size_t> Frontier;
  std::unordered_set<std::vector<uint32_t>, KeyHash> Visited;

  auto tryEnqueue = [&](RaConfig C, uint32_t Switches, int64_t Parent,
                        TraceStep Via) {
    std::vector<uint32_t> Key;
    C.serialize(Key);
    // The switch budget already spent is part of the state: a config seen
    // with fewer switches dominates one seen with more, and BFS layers do
    // not guarantee monotone switch counts, so the count is in the key.
    if (Q.ViewSwitchBound)
      Key.push_back(Switches);
    if (!Visited.insert(std::move(Key)).second)
      return;
    Arena.push_back(Node{std::move(C), Switches, Parent, Via});
    Frontier.push_back(Arena.size() - 1);
  };

  tryEnqueue(initialConfig(FP), 0, -1, TraceStep{0, 0, false});

  auto buildTrace = [&](size_t NodeIdx) {
    std::vector<TraceStep> Trace;
    for (int64_t I = static_cast<int64_t>(NodeIdx); Arena[I].Parent >= 0;
         I = Arena[I].Parent)
      Trace.push_back(Arena[I].Via);
    std::reverse(Trace.begin(), Trace.end());
    return Trace;
  };

  std::vector<RaStep> Steps;
  while (!Frontier.empty()) {
    if (Q.MaxStates && Result.StatesVisited >= Q.MaxStates) {
      Result.Status = SearchStatus::StateLimit;
      Result.Seconds = Watch.elapsedSeconds();
      return Result;
    }
    if ((Result.StatesVisited & 0x3f) == 0 && DL.expired()) {
      Result.Status = SearchStatus::Timeout;
      Result.Seconds = Watch.elapsedSeconds();
      return Result;
    }

    size_t Idx = Frontier.front();
    Frontier.pop_front();
    ++Result.StatesVisited;

    if (goalHolds(FP, Q, Arena[Idx].Config)) {
      Result.Status = SearchStatus::Reached;
      Result.SwitchesUsed = Arena[Idx].Switches;
      Result.Trace = buildTrace(Idx);
      Result.Seconds = Watch.elapsedSeconds();
      return Result;
    }

    Steps.clear();
    enumerateSteps(FP, Arena[Idx].Config, Steps);
    Result.TransitionsExplored += Steps.size();
    uint32_t BaseSwitches = Arena[Idx].Switches;
    for (RaStep &S : Steps) {
      uint32_t Switches = BaseSwitches + (S.ViewSwitch ? 1 : 0);
      if (Q.ViewSwitchBound && Switches > *Q.ViewSwitchBound)
        continue;
      tryEnqueue(std::move(S.Next), Switches, static_cast<int64_t>(Idx),
                 TraceStep{S.Proc, S.Instr, S.ViewSwitch});
    }
  }

  Result.Status = SearchStatus::Exhausted;
  Result.Seconds = Watch.elapsedSeconds();
  return Result;
}

uint64_t vbmc::ra::randomWalks(const FlatProgram &FP, const RaQuery &Q, Rng &R,
                               uint64_t Walks, uint64_t MaxSteps) {
  uint64_t Hits = 0;
  std::vector<RaStep> Steps;
  for (uint64_t W = 0; W < Walks; ++W) {
    RaConfig C = initialConfig(FP);
    uint32_t Switches = 0;
    for (uint64_t S = 0; S < MaxSteps; ++S) {
      if (goalHolds(FP, Q, C)) {
        ++Hits;
        break;
      }
      Steps.clear();
      enumerateSteps(FP, C, Steps);
      if (Q.ViewSwitchBound) {
        std::erase_if(Steps, [&](const RaStep &St) {
          return Switches + (St.ViewSwitch ? 1 : 0) > *Q.ViewSwitchBound;
        });
      }
      if (Steps.empty())
        break;
      RaStep &Pick = Steps[R.nextBelow(Steps.size())];
      Switches += Pick.ViewSwitch ? 1 : 0;
      C = std::move(Pick.Next);
    }
  }
  return Hits;
}

std::set<std::vector<Value>>
vbmc::ra::collectTerminalRegs(const FlatProgram &FP,
                              std::optional<uint32_t> ViewSwitchBound,
                              uint64_t MaxStates) {
  return collectTerminalRegsBounded(FP, ViewSwitchBound, MaxStates, nullptr)
      .Regs;
}

TerminalBehaviours
vbmc::ra::collectTerminalRegsBounded(const FlatProgram &FP,
                                     std::optional<uint32_t> ViewSwitchBound,
                                     uint64_t MaxStates,
                                     const CheckContext *Ctx) {
  TerminalBehaviours Result;
  std::deque<std::pair<RaConfig, uint32_t>> Frontier;
  std::unordered_set<std::vector<uint32_t>, KeyHash> Visited;
  uint64_t Expanded = 0;

  auto tryEnqueue = [&](RaConfig C, uint32_t Switches) {
    std::vector<uint32_t> Key;
    C.serialize(Key);
    if (ViewSwitchBound)
      Key.push_back(Switches);
    if (!Visited.insert(std::move(Key)).second)
      return;
    Frontier.emplace_back(std::move(C), Switches);
  };

  tryEnqueue(initialConfig(FP), 0);
  std::vector<RaStep> Steps;
  while (!Frontier.empty()) {
    ++Expanded;
    if (MaxStates && Expanded > MaxStates) {
      Result.Complete = false;
      break;
    }
    if (Ctx && (Expanded & 0x3ff) == 0 && Ctx->interrupted()) {
      Result.Complete = false;
      break;
    }
    auto [C, Switches] = std::move(Frontier.front());
    Frontier.pop_front();

    bool AllDone = true;
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      AllDone &= FP.Procs[P].isDone(C.Pc[P]);
    if (AllDone)
      Result.Regs.insert(C.Regs);

    Steps.clear();
    enumerateSteps(FP, C, Steps);
    for (RaStep &S : Steps) {
      uint32_t NewSwitches = Switches + (S.ViewSwitch ? 1 : 0);
      if (ViewSwitchBound && NewSwitches > *ViewSwitchBound)
        continue;
      tryEnqueue(std::move(S.Next), NewSwitches);
    }
  }
  return Result;
}

std::string vbmc::ra::formatTrace(const FlatProgram &FP,
                                  const std::vector<TraceStep> &Trace) {
  std::string Out;
  for (const TraceStep &S : Trace) {
    RaStep Fake;
    Fake.Proc = S.Proc;
    Fake.Instr = S.Instr;
    Fake.ViewSwitch = S.ViewSwitch;
    Out += describeStep(FP, Fake) + "\n";
  }
  return Out;
}
