//===- RaExplorer.h - explicit-state reachability under RA -------*- C++ -*-===//
///
/// \file
/// Breadth-first explicit-state reachability for the RA semantics, with
/// optional view-switch bounding (the paper's k-bounded runs, Section 5).
/// Thanks to timestamp canonicalization (see RaSemantics.h) the visited set
/// is exact, so exploration terminates on loop-bounded programs.
///
/// Also provides a random-walk simulator used by the "stochastic simulation
/// of the RA model" discussion in Section 7 and by the property tests.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_RA_RAEXPLORER_H
#define VBMC_RA_RAEXPLORER_H

#include "ra/RaSemantics.h"
#include "support/CheckContext.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <functional>
#include <optional>
#include <set>

namespace vbmc::ra {

/// What the exploration is looking for.
enum class GoalKind {
  AnyError, ///< Some process at its error label (assertion failure).
  AllDone,  ///< Every process at its done label (used by the PCP encoder).
  Custom,   ///< A user predicate over the program counters.
};

/// Exploration parameters.
struct RaQuery {
  GoalKind Goal = GoalKind::AnyError;
  /// Predicate for GoalKind::Custom.
  std::function<bool(const std::vector<Label> &)> GoalPredicate;
  /// Bound k on view-switches; unset = unbounded.
  std::optional<uint32_t> ViewSwitchBound;
  /// Hard cap on visited configurations (0 = unlimited).
  uint64_t MaxStates = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double BudgetSeconds = 0;
};

enum class SearchStatus {
  Reached,    ///< Goal configuration found.
  Exhausted,  ///< Full (bounded) state space explored; goal unreachable.
  StateLimit, ///< Gave up: MaxStates exceeded.
  Timeout,    ///< Gave up: budget exceeded.
};

/// One step of a counterexample run.
struct TraceStep {
  uint32_t Proc;
  Label Instr;
  bool ViewSwitch;
};

struct RaResult {
  SearchStatus Status = SearchStatus::Exhausted;
  uint64_t StatesVisited = 0;
  uint64_t TransitionsExplored = 0;
  /// Number of view-switches along the witness run (when reached).
  uint32_t SwitchesUsed = 0;
  /// Witness run from the initial configuration (when reached).
  std::vector<TraceStep> Trace;
  double Seconds = 0;

  bool reached() const { return Status == SearchStatus::Reached; }
  bool exhausted() const { return Status == SearchStatus::Exhausted; }
};

/// Runs BFS reachability on \p FP under RA per \p Q.
RaResult exploreRa(const FlatProgram &FP, const RaQuery &Q);

/// Performs up to \p Walks random walks of at most \p MaxSteps transitions
/// each; returns the number of walks that hit the goal.
uint64_t randomWalks(const FlatProgram &FP, const RaQuery &Q, Rng &R,
                     uint64_t Walks, uint64_t MaxSteps);

/// Renders a trace using instruction text, one line per step.
std::string formatTrace(const FlatProgram &FP,
                        const std::vector<TraceStep> &Trace);

/// Exhaustively enumerates the (bounded) RA state space and returns every
/// register valuation reachable in a configuration where all processes
/// terminated. This is the behaviour oracle used for litmus tests and the
/// differential tests against the axiomatic checker. Exploration stops
/// early (and asserts in debug builds) only if \p MaxStates is exceeded.
std::set<std::vector<Value>>
collectTerminalRegs(const FlatProgram &FP,
                    std::optional<uint32_t> ViewSwitchBound = std::nullopt,
                    uint64_t MaxStates = 0);

/// A terminal-behaviour set together with whether the enumeration ran to
/// completion. When Complete is false (state cap hit, deadline expired,
/// or cancellation) the set is a lower approximation and must not be
/// used for equality or subset verdicts.
struct TerminalBehaviours {
  std::set<std::vector<Value>> Regs;
  bool Complete = true;
};

/// Deadline-aware variant of collectTerminalRegs: polls \p Ctx (deadline
/// and cancellation) when given, never asserts on truncation, and
/// reports truncation in the result. The differential fuzzing harness
/// runs every generated program through this under a per-program budget.
TerminalBehaviours
collectTerminalRegsBounded(const FlatProgram &FP,
                           std::optional<uint32_t> ViewSwitchBound,
                           uint64_t MaxStates, const CheckContext *Ctx);

} // namespace vbmc::ra

#endif // VBMC_RA_RAEXPLORER_H
