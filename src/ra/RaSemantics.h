//===- RaSemantics.h - the RA operational semantics (Fig. 2) -----*- C++ -*-===//
///
/// \file
/// Configurations and the transition relation of the release-acquire
/// semantics, following Fig. 2 of the paper ([17, 34]'s operational model):
/// the shared memory is a pool of messages (x, v, t, V), each process keeps
/// a view X -> Time, reads pick any message at or above the process's view,
/// writes pick a fresh timestamp above the view, and CAS reads a message
/// whose successor timestamp t+1 is unoccupied and writes at exactly t+1.
///
/// **Timestamp canonicalization.** Concrete timestamps range over all of N,
/// so configurations are infinite even for finite-state programs. This
/// implementation uses the canonical representation where the timestamp of
/// a message is its *position* in the modification order of its variable,
/// plus one bit per message ("GluedNext") recording that the successor
/// integer t+1 is occupied. The two representations induce the same
/// reachable control states:
///
///  * only CAS ever *requires* adjacency (it writes at exactly t+1), so the
///    only glued pairs come from a CAS and its read message;
///  * a plain write may always pick its timestamp with arbitrarily large
///    gaps, so inserting "between" two non-glued messages is always
///    realizable over the integers (scale all later stamps up);
///  * conversely a plain write could *choose* to occupy some t+1 and block
///    a later CAS, but blocking a CAS only removes behaviours, so skipping
///    those choices loses no reachable states.
///
/// Insertion renumbers later positions; views (process views and the views
/// carried inside messages) are patched accordingly, keeping every
/// configuration finitely representable and hashable.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_RA_RASEMANTICS_H
#define VBMC_RA_RASEMANTICS_H

#include "ir/Flatten.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vbmc::ra {

using ir::FlatInstr;
using ir::FlatProgram;
using ir::Label;
using ir::Value;
using ir::VarId;

/// Canonical timestamp: position in the per-variable modification order.
using Pos = uint32_t;

/// Sentinel writer id of the initial messages.
inline constexpr uint32_t InitialWriter = ~0u;

/// One message in the pool, in canonical form. Its timestamp is implicit
/// (its index in the per-variable sequence).
struct RaMessage {
  Value Val = 0;
  /// The view V carried by the message, as positions per variable.
  std::vector<Pos> View;
  /// True when integer timestamp t+1 is occupied (by a CAS that read this
  /// message); no write may ever be inserted directly after this message
  /// and no CAS may read it.
  bool GluedNext = false;
  /// Writing process, or InitialWriter.
  uint32_t Writer = InitialWriter;

  bool operator==(const RaMessage &) const = default;
};

/// A configuration (M, P, J, R) of the RA transition system, canonicalized.
struct RaConfig {
  /// Mem[x] is the modification-order sequence of messages to x; index =
  /// canonical timestamp. Mem[x][0] is the initial message.
  std::vector<std::vector<RaMessage>> Mem;
  /// Views[p][x]: position of the most recent message of x observed by p.
  std::vector<std::vector<Pos>> Views;
  /// Instruction label of each process (may be a done/error sentinel).
  std::vector<Label> Pc;
  /// Current register valuation (flat across processes).
  std::vector<Value> Regs;

  bool operator==(const RaConfig &) const = default;

  /// Serializes into a flat word vector for hashing / visited sets.
  void serialize(std::vector<uint32_t> &Out) const;
};

/// One enabled transition out of a configuration.
struct RaStep {
  RaConfig Next;
  uint32_t Proc = 0;
  Label Instr = 0;
  /// True when this step read a message that changed the process's view
  /// (the paper's "view-altering event"; writes never count).
  bool ViewSwitch = false;
};

/// Returns the initial configuration of \p FP: one initial message per
/// variable (value 0, timestamp 0, zero view), all views and registers 0.
RaConfig initialConfig(const FlatProgram &FP);

/// Appends all successors of \p C under the Fig. 2 rules to \p Out.
/// Internal instructions (assign, branch, goto, assume, assert, term,
/// atomic markers) produce at most one successor per nondet choice; read /
/// write / cas enumerate the message and timestamp choices described in the
/// file comment.
void enumerateSteps(const FlatProgram &FP, const RaConfig &C,
                    std::vector<RaStep> &Out);

/// Like enumerateSteps but only for process \p P.
void enumerateStepsOf(const FlatProgram &FP, const RaConfig &C, uint32_t P,
                      std::vector<RaStep> &Out);

/// Renders one step for trace output, e.g. "p1@3: x = r1 [t=2]".
std::string describeStep(const FlatProgram &FP, const RaStep &S);

} // namespace vbmc::ra

#endif // VBMC_RA_RASEMANTICS_H
