//===- RaSemantics.cpp ----------------------------------------*- C++ -*-===//

#include "ra/RaSemantics.h"

#include "ir/Eval.h"
#include "ir/Printer.h"

using namespace vbmc;
using namespace vbmc::ra;
using ir::Expr;
using ir::ExprKind;
using ir::Op;

void RaConfig::serialize(std::vector<uint32_t> &Out) const {
  Out.clear();
  for (Label L : Pc)
    Out.push_back(L);
  for (Value R : Regs)
    Out.push_back(static_cast<uint32_t>(R));
  for (const auto &V : Views)
    for (Pos P : V)
      Out.push_back(P);
  for (const auto &Seq : Mem) {
    Out.push_back(static_cast<uint32_t>(Seq.size()));
    for (const RaMessage &M : Seq) {
      Out.push_back(static_cast<uint32_t>(M.Val));
      Out.push_back(M.GluedNext ? 1u : 0u);
      for (Pos P : M.View)
        Out.push_back(P);
    }
  }
}

RaConfig vbmc::ra::initialConfig(const FlatProgram &FP) {
  RaConfig C;
  uint32_t NV = FP.numVars();
  C.Mem.resize(NV);
  for (VarId X = 0; X < NV; ++X) {
    RaMessage Init;
    Init.View.assign(NV, 0);
    C.Mem[X].push_back(std::move(Init));
  }
  C.Views.assign(FP.numProcs(), std::vector<Pos>(NV, 0));
  C.Pc.assign(FP.numProcs(), 0);
  C.Regs.assign(FP.numRegs(), 0);
  return C;
}

namespace {

/// Inserts a fresh message for variable \p X at position \p At in \p C
/// (shifting existing positions >= At up by one and patching every view),
/// then returns a reference to the inserted message. The caller fills in
/// value/view/writer afterwards; the patched views are consistent with the
/// renumbering *before* the writer's own view update.
RaMessage &insertMessageAt(RaConfig &C, VarId X, Pos At) {
  for (auto &View : C.Views)
    if (View[X] >= At)
      ++View[X];
  for (auto &Seq : C.Mem)
    for (RaMessage &M : Seq)
      if (M.View[X] >= At)
        ++M.View[X];
  auto &Seq = C.Mem[X];
  Seq.insert(Seq.begin() + At, RaMessage());
  return Seq[At];
}

/// Merges \p From into \p Into (pointwise max); returns true when \p Into
/// changed (the read was view-altering).
bool mergeView(std::vector<Pos> &Into, const std::vector<Pos> &From) {
  bool Changed = false;
  for (size_t I = 0; I < Into.size(); ++I) {
    if (From[I] > Into[I]) {
      Into[I] = From[I];
      Changed = true;
    }
  }
  return Changed;
}

/// Enumeration context for one process at one instruction.
class StepBuilder {
public:
  StepBuilder(const FlatProgram &FP, const RaConfig &C, uint32_t P,
              std::vector<RaStep> &Out)
      : FP(FP), C(C), P(P), Out(Out) {}

  void run() {
    const ir::FlatProcess &Proc = FP.Procs[P];
    Label L = C.Pc[P];
    if (Proc.isFinal(L))
      return;
    const FlatInstr &I = Proc.Instrs[L];
    switch (I.K) {
    case Op::Read:
      emitReads(I, L);
      return;
    case Op::Write:
      emitWrites(I, L);
      return;
    case Op::Cas:
      emitCas(I, L);
      return;
    case Op::Assign:
      emitAssign(I, L);
      return;
    case Op::Assume:
      if (ir::evalExpr(*I.E, C.Regs) != 0)
        emitInternal(L, I.Next);
      // A false assume keeps the process at L forever (Fnext = self); that
      // self-loop adds no new configuration, so no step is emitted.
      return;
    case Op::Assert:
      emitInternal(L, ir::evalExpr(*I.E, C.Regs) != 0 ? I.Next
                                                      : Proc.errorLabel());
      return;
    case Op::Branch:
      emitInternal(L, ir::evalExpr(*I.E, C.Regs) != 0 ? I.TNext : I.FNext);
      return;
    case Op::Goto:
      emitInternal(L, I.Next);
      return;
    case Op::Term:
      emitInternal(L, Proc.doneLabel());
      return;
    case Op::AtomicBegin:
    case Op::AtomicEnd:
      // Atomic sections constrain SC scheduling only; under RA they are
      // internal no-ops (the RA engine analyses source programs, which the
      // translation has not instrumented).
      emitInternal(L, I.Next);
      return;
    }
  }

private:
  RaStep &push(Label InstrLabel) {
    Out.push_back(RaStep{C, P, InstrLabel, false});
    return Out.back();
  }

  void emitInternal(Label InstrLabel, Label NextPc) {
    RaStep &S = push(InstrLabel);
    S.Next.Pc[P] = NextPc;
  }

  void emitAssign(const FlatInstr &I, Label L) {
    if (I.E->kind() == ExprKind::Nondet) {
      for (Value V = I.E->nondetLo(); V <= I.E->nondetHi(); ++V) {
        RaStep &S = push(L);
        S.Next.Regs[I.Reg] = V;
        S.Next.Pc[P] = I.Next;
      }
      return;
    }
    RaStep &S = push(L);
    S.Next.Regs[I.Reg] = ir::evalExpr(*I.E, C.Regs);
    S.Next.Pc[P] = I.Next;
  }

  /// Rule Read: any message of x at or above the process's view.
  void emitReads(const FlatInstr &I, Label L) {
    VarId X = I.Var;
    const auto &Seq = C.Mem[X];
    for (Pos T = C.Views[P][X]; T < Seq.size(); ++T) {
      RaStep &S = push(L);
      S.ViewSwitch = mergeView(S.Next.Views[P], Seq[T].View);
      S.Next.Regs[I.Reg] = Seq[T].Val;
      S.Next.Pc[P] = I.Next;
    }
  }

  /// Rule Write: pick any insertion point strictly above the view that does
  /// not split a glued pair.
  void emitWrites(const FlatInstr &I, Label L) {
    VarId X = I.Var;
    Value V = ir::evalExpr(*I.E, C.Regs);
    const auto &Seq = C.Mem[X];
    for (Pos At = C.Views[P][X] + 1; At <= Seq.size(); ++At) {
      // Inserting at position At places the new message between At-1 and
      // the old occupant of At; forbidden when At-1 is glued to it.
      if (Seq[At - 1].GluedNext)
        continue;
      RaStep &S = push(L);
      RaMessage &M = insertMessageAt(S.Next, X, At);
      M.Val = V;
      M.Writer = P;
      auto &PView = S.Next.Views[P];
      PView[X] = At;
      M.View = PView;
      S.Next.Pc[P] = I.Next;
    }
  }

  /// Rule CAS: read a message whose successor timestamp is free, glue the
  /// new message directly after it.
  void emitCas(const FlatInstr &I, Label L) {
    VarId X = I.Var;
    Value Expected = ir::evalExpr(*I.E, C.Regs);
    Value NewVal = ir::evalExpr(*I.E2, C.Regs);
    const auto &Seq = C.Mem[X];
    for (Pos T = C.Views[P][X]; T < Seq.size(); ++T) {
      if (Seq[T].Val != Expected || Seq[T].GluedNext)
        continue;
      RaStep &S = push(L);
      // Read part: merge the message view (this is the view-altering part).
      S.ViewSwitch = mergeView(S.Next.Views[P], Seq[T].View);
      // Write part: occupy timestamp T+1, glued to T.
      S.Next.Mem[X][T].GluedNext = true;
      RaMessage &M = insertMessageAt(S.Next, X, T + 1);
      M.Val = NewVal;
      M.Writer = P;
      auto &PView = S.Next.Views[P];
      PView[X] = T + 1;
      M.View = PView;
      S.Next.Pc[P] = I.Next;
    }
  }

  const FlatProgram &FP;
  const RaConfig &C;
  uint32_t P;
  std::vector<RaStep> &Out;
};

} // namespace

void vbmc::ra::enumerateStepsOf(const FlatProgram &FP, const RaConfig &C,
                                uint32_t P, std::vector<RaStep> &Out) {
  StepBuilder(FP, C, P, Out).run();
}

void vbmc::ra::enumerateSteps(const FlatProgram &FP, const RaConfig &C,
                              std::vector<RaStep> &Out) {
  for (uint32_t P = 0; P < FP.numProcs(); ++P)
    enumerateStepsOf(FP, C, P, Out);
}

std::string vbmc::ra::describeStep(const FlatProgram &FP, const RaStep &S) {
  const ir::FlatProcess &Proc = FP.Procs[S.Proc];
  std::string Out = Proc.Name + "@" + std::to_string(S.Instr) + ": ";
  const FlatInstr &I = Proc.Instrs[S.Instr];
  switch (I.K) {
  case Op::Read:
    Out += FP.Regs[I.Reg].Name + " = " + FP.VarNames[I.Var];
    break;
  case Op::Write:
    Out += FP.VarNames[I.Var] + " = ...";
    break;
  case Op::Cas:
    Out += "cas(" + FP.VarNames[I.Var] + ", ...)";
    break;
  case Op::Assign:
    Out += FP.Regs[I.Reg].Name + " = <expr>";
    break;
  case Op::Assume:
    Out += "assume";
    break;
  case Op::Assert:
    Out += "assert";
    break;
  case Op::Branch:
    Out += "branch";
    break;
  case Op::Goto:
    Out += "goto";
    break;
  case Op::Term:
    Out += "term";
    break;
  case Op::AtomicBegin:
    Out += "atomic_begin";
    break;
  case Op::AtomicEnd:
    Out += "atomic_end";
    break;
  }
  if (S.ViewSwitch)
    Out += "  [view-switch]";
  return Out;
}
