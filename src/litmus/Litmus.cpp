//===- Litmus.cpp ---------------------------------------------*- C++ -*-===//

#include "litmus/Litmus.h"

#include "axiomatic/ExecutionGraph.h"
#include "ir/Flatten.h"
#include "ra/RaExplorer.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "vbmc/Engine.h"

using namespace vbmc;
using namespace vbmc::ir;
using namespace vbmc::litmus;

namespace {

/// Fills Test.Expected from the axiomatic oracle.
LitmusTest withOracle(std::string Name, Program P) {
  LitmusTest T;
  T.Name = std::move(Name);
  auto Outcomes = axiomatic::enumerateRaOutcomes(P);
  if (!Outcomes)
    reportFatalError("litmus oracle failed on " + T.Name + ": " +
                     Outcomes.error().str());
  T.Prog = std::move(P);
  T.Expected = Outcomes.take();
  return T;
}

/// Helper building a straight-line program from per-thread ops.
struct Builder {
  Program P;
  std::vector<VarId> Vars;
  uint32_t Cur = 0;

  explicit Builder(uint32_t NumVars) {
    for (uint32_t X = 0; X < NumVars; ++X)
      Vars.push_back(P.addVar("x" + std::to_string(X)));
  }
  void thread() { Cur = P.addProcess("p" + std::to_string(P.numProcs())); }
  RegId reg(const std::string &Name) { return P.addReg(Cur, Name); }
  void w(uint32_t X, Value V) {
    P.Procs[Cur].Body.push_back(Stmt::write(Vars[X], constE(V)));
  }
  void r(RegId R, uint32_t X) {
    P.Procs[Cur].Body.push_back(Stmt::read(R, Vars[X]));
  }
  void u(uint32_t X, Value From, Value To) {
    P.Procs[Cur].Body.push_back(Stmt::cas(Vars[X], constE(From), constE(To)));
  }
};

} // namespace

std::vector<LitmusTest> vbmc::litmus::classicTests() {
  std::vector<LitmusTest> Tests;

  { // SB: store buffering.
    Builder B(2);
    B.thread();
    RegId R0 = B.reg("r0");
    B.w(0, 1);
    B.r(R0, 1);
    B.thread();
    RegId R1 = B.reg("r1");
    B.w(1, 1);
    B.r(R1, 0);
    Tests.push_back(withOracle("SB", std::move(B.P)));
  }
  { // MP: message passing.
    Builder B(2);
    B.thread();
    B.w(0, 1);
    B.w(1, 1);
    B.thread();
    RegId A = B.reg("a");
    RegId C = B.reg("c");
    B.r(A, 1);
    B.r(C, 0);
    Tests.push_back(withOracle("MP", std::move(B.P)));
  }
  { // LB: load buffering (forbidden outcome r0 = r1 = 1 under RA).
    Builder B(2);
    B.thread();
    RegId R0 = B.reg("r0");
    B.r(R0, 0);
    B.w(1, 1);
    B.thread();
    RegId R1 = B.reg("r1");
    B.r(R1, 1);
    B.w(0, 1);
    Tests.push_back(withOracle("LB", std::move(B.P)));
  }
  { // CoRR: read-read coherence.
    Builder B(1);
    B.thread();
    B.w(0, 1);
    B.w(0, 2);
    B.thread();
    RegId A = B.reg("a");
    RegId C = B.reg("c");
    B.r(A, 0);
    B.r(C, 0);
    Tests.push_back(withOracle("CoRR", std::move(B.P)));
  }
  { // CoWW+obs: write-write coherence with an observing thread.
    Builder B(1);
    B.thread();
    B.w(0, 1);
    B.w(0, 2);
    B.thread();
    RegId A = B.reg("a");
    B.r(A, 0);
    Tests.push_back(withOracle("CoWW", std::move(B.P)));
  }
  { // WRC: write-to-read causality (3 threads).
    Builder B(2);
    B.thread();
    B.w(0, 1);
    B.thread();
    RegId A = B.reg("a");
    B.r(A, 0);
    B.w(1, 1);
    B.thread();
    RegId C = B.reg("c");
    RegId D = B.reg("d");
    B.r(C, 1);
    B.r(D, 0);
    Tests.push_back(withOracle("WRC", std::move(B.P)));
  }
  { // IRIW: independent reads of independent writes (4 threads).
    Builder B(2);
    B.thread();
    B.w(0, 1);
    B.thread();
    B.w(1, 1);
    B.thread();
    RegId A = B.reg("a");
    RegId C = B.reg("c");
    B.r(A, 0);
    B.r(C, 1);
    B.thread();
    RegId D = B.reg("d");
    RegId E = B.reg("e");
    B.r(D, 1);
    B.r(E, 0);
    Tests.push_back(withOracle("IRIW", std::move(B.P)));
  }
  { // 2+2W: two double-writers plus observers' registers via writes.
    Builder B(2);
    B.thread();
    B.w(0, 1);
    B.w(1, 2);
    B.thread();
    B.w(1, 1);
    B.w(0, 2);
    B.thread();
    RegId A = B.reg("a");
    RegId C = B.reg("c");
    B.r(A, 0);
    B.r(C, 1);
    Tests.push_back(withOracle("2+2W", std::move(B.P)));
  }
  { // S: write, then message-passed overwrite race.
    Builder B(2);
    B.thread();
    B.w(0, 2);
    B.w(1, 1);
    B.thread();
    RegId A = B.reg("a");
    B.r(A, 1);
    B.w(0, 1);
    B.thread();
    RegId C = B.reg("c");
    B.r(C, 0);
    Tests.push_back(withOracle("S", std::move(B.P)));
  }
  { // R: writes racing against a read chain.
    Builder B(2);
    B.thread();
    B.w(0, 1);
    B.w(1, 1);
    B.thread();
    B.w(1, 2);
    RegId A = B.reg("a");
    B.r(A, 0);
    Tests.push_back(withOracle("R", std::move(B.P)));
  }
  { // CAS-MP: CAS as the releasing publication.
    Builder B(2);
    B.thread();
    B.w(0, 7);
    B.u(1, 0, 1);
    B.thread();
    RegId A = B.reg("a");
    RegId C = B.reg("c");
    B.r(A, 1);
    B.r(C, 0);
    Tests.push_back(withOracle("CAS-MP", std::move(B.P)));
  }
  return Tests;
}

Program vbmc::litmus::generateFamilyProgram(uint64_t Seed, uint64_t Index,
                                            const FamilyOptions &O) {
  // One derived stream per index: the program depends only on
  // (Seed, Index, O), never on how many members were generated before it.
  Rng R = Rng::derived(Seed, Index);
  uint32_t Threads = 2 + R.nextBelow(O.MaxThreads - 1);
  uint32_t Vars = 1 + R.nextBelow(O.MaxVars);
  Builder B(Vars);
  for (uint32_t T = 0; T < Threads; ++T) {
    B.thread();
    uint32_t Ops = 1 + R.nextBelow(O.MaxOpsPerThread);
    for (uint32_t K = 0; K < Ops; ++K) {
      uint32_t X = static_cast<uint32_t>(R.nextBelow(Vars));
      if (R.nextChance(O.CasPermille, 1000)) {
        B.u(X, static_cast<Value>(R.nextBelow(2)),
            static_cast<Value>(1 + R.nextBelow(2)));
      } else if (R.nextChance(1, 2)) {
        RegId Reg = B.reg("r" + std::to_string(T) + std::to_string(K));
        B.r(Reg, X);
      } else {
        B.w(X, static_cast<Value>(1 + R.nextBelow(2)));
      }
    }
  }
  return std::move(B.P);
}

LitmusTest vbmc::litmus::generateFamilyTest(uint64_t Seed, uint64_t Index,
                                            const FamilyOptions &O) {
  return withOracle("rand" + std::to_string(Index),
                    generateFamilyProgram(Seed, Index, O));
}

std::vector<LitmusTest>
vbmc::litmus::generateFamily(uint64_t Seed, const FamilyOptions &O) {
  std::vector<LitmusTest> Tests;
  Tests.reserve(O.Count);
  for (uint32_t I = 0; I < O.Count; ++I)
    Tests.push_back(generateFamilyTest(Seed, I, O));
  return Tests;
}

Program vbmc::litmus::makeObserverProgram(const LitmusTest &Test,
                                          const std::vector<Value> &Outcome) {
  Program P = Test.Prog;
  assert(Outcome.size() == P.numRegs() && "outcome arity mismatch");
  // Publication cells and done flags.
  std::vector<VarId> Out;
  for (RegId R = 0; R < P.numRegs(); ++R)
    Out.push_back(P.addVar("out_" + std::to_string(R)));
  std::vector<VarId> DoneFlags;
  uint32_t OriginalProcs = P.numProcs();
  for (uint32_t PI = 0; PI < OriginalProcs; ++PI)
    DoneFlags.push_back(P.addVar("done_" + std::to_string(PI)));

  for (uint32_t PI = 0; PI < OriginalProcs; ++PI) {
    for (RegId R = 0; R < P.numRegs(); ++R)
      if (P.Regs[R].Process == PI)
        P.Procs[PI].Body.push_back(Stmt::write(Out[R], regE(R)));
    P.Procs[PI].Body.push_back(Stmt::write(DoneFlags[PI], constE(1)));
  }

  // Checker: waiting for every done flag pulls in each thread's final
  // view (causality), so the out-cells read afterwards are exact.
  uint32_t Checker = P.addProcess("checker");
  RegId D = P.addReg(Checker, "d");
  std::vector<Stmt> Body;
  for (uint32_t PI = 0; PI < OriginalProcs; ++PI) {
    Body.push_back(Stmt::read(D, DoneFlags[PI]));
    Body.push_back(Stmt::assume(eqE(regE(D), constE(1))));
  }
  ExprRef Match = constE(1);
  std::vector<RegId> OutRegs;
  for (RegId R = 0; R < Test.Prog.numRegs(); ++R) {
    RegId OR = P.addReg(Checker, "o" + std::to_string(R));
    Body.push_back(Stmt::read(OR, Out[R]));
    Match = andE(std::move(Match), eqE(regE(OR), constE(Outcome[R])));
  }
  Body.push_back(Stmt::assertThat(notE(std::move(Match))));
  for (Stmt &S : Body)
    P.Procs[Checker].Body.push_back(std::move(S));
  return P;
}

SweepResult vbmc::litmus::runVbmcSweep(const std::vector<LitmusTest> &Tests,
                                       const SweepOptions &O) {
  SweepResult SR;
  Rng PerturbRng(0x117EAF5);
  for (const LitmusTest &T : Tests) {
    ++SR.TestsRun;
    // Candidate outcomes: every oracle outcome (must be UNSAFE) plus
    // perturbed non-outcomes (must be SAFE).
    std::vector<std::pair<std::vector<Value>, bool>> Queries;
    for (const auto &Outcome : T.Expected) {
      if (O.MaxPositiveQueriesPerTest &&
          Queries.size() >= O.MaxPositiveQueriesPerTest)
        break;
      Queries.push_back({Outcome, true});
    }
    uint32_t Added = 0;
    for (const auto &Outcome : T.Expected) {
      if (Added >= O.NegativeQueriesPerTest)
        break;
      std::vector<Value> Perturbed = Outcome;
      if (Perturbed.empty())
        break;
      // Nudge one register to a plausible-but-hopefully-unreachable
      // value; skip if the perturbation is itself a real outcome.
      Perturbed[PerturbRng.nextBelow(Perturbed.size())] += 1;
      if (!T.Expected.count(Perturbed)) {
        Queries.push_back({Perturbed, false});
        ++Added;
      }
    }
    // Adaptive view budget: one switch per read of the observer program
    // is always enough (reads are the only view-altering events).
    uint32_t AutoK = T.Prog.numProcs() + 1;
    for (const ir::Process &Proc : T.Prog.Procs)
      for (const ir::Stmt &S : Proc.Body)
        AutoK += S.Kind == ir::StmtKind::Read ||
                 S.Kind == ir::StmtKind::Cas;

    for (const auto &[Outcome, ShouldBeUnsafe] : Queries) {
      ++SR.QueriesRun;
      driver::VbmcOptions VO;
      VO.K = ShouldBeUnsafe ? (O.K ? O.K : AutoK) : O.NegativeK;
      VO.CasAllowance = 6;
      VO.L = 1; // Litmus programs are loop-free.
      VO.Backend = O.UseSatBackend ? driver::BackendKind::Sat
                                   : driver::BackendKind::Explicit;
      VO.SwitchOnlyAfterWrite = true;
      VO.BudgetSeconds = O.BudgetSeconds;
      driver::CheckRequest Req;
      Req.Opts = VO;
      driver::CheckReport R =
          driver::Engine().run(makeObserverProgram(T, Outcome), Req);
      if (R.Outcome == driver::Verdict::Unknown) {
        ++SR.Inconclusive;
        continue;
      }
      bool Agrees = (R.unsafe() && ShouldBeUnsafe) ||
                    (R.safe() && !ShouldBeUnsafe);
      if (Agrees)
        ++SR.Agreements;
      else
        SR.Mismatches.push_back(T.Name + (ShouldBeUnsafe
                                              ? " missed outcome"
                                              : " spurious outcome"));
    }
  }
  return SR;
}

SweepResult
vbmc::litmus::runOperationalSweep(const std::vector<LitmusTest> &Tests) {
  SweepResult SR;
  for (const LitmusTest &T : Tests) {
    ++SR.TestsRun;
    ++SR.QueriesRun;
    FlatProgram FP = flatten(T.Prog);
    auto Operational = ra::collectTerminalRegs(FP);
    if (Operational == T.Expected)
      ++SR.Agreements;
    else
      SR.Mismatches.push_back(T.Name + ": operational/axiomatic mismatch");
  }
  return SR;
}
