//===- Litmus.h - litmus tests: families, generator, runner ------*- C++ -*-===//
///
/// \file
/// The litmus-test experiment of Section 7 ("We first applied VBMC to a
/// set of litmus benchmarks... We were able to successfully run all 4004
/// of them, with K <= 5... The output result returned by VBMC matches the
/// ones returned by the Herd tool together with the RA-axioms"):
///
///  * the classic named shapes (SB, MP, LB, CoRR, CoWW, WRC, IRIW, 2+2W,
///    R, S) as builders;
///  * a deterministic random generator expanding the same ingredients
///    into a family of thousands of tests (we generate our family since
///    the original 4004 files are not bundled; see DESIGN.md);
///  * expected outcomes computed by the axiomatic RA oracle (the Herd
///    substitute, src/axiomatic);
///  * an observer construction turning "is outcome o reachable" into an
///    assertion-failure query VBMC can answer (each thread publishes its
///    final registers and raises a done flag; a checker thread reads the
///    flags — RA causality then forces it to see the true final values);
///  * a sweep runner comparing VBMC verdicts against the oracle on every
///    test.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_LITMUS_LITMUS_H
#define VBMC_LITMUS_LITMUS_H

#include "ir/Program.h"
#include "support/Timer.h"

#include <cstdint>

#include <set>
#include <string>
#include <vector>

namespace vbmc::litmus {

using ir::Value;

struct LitmusTest {
  std::string Name;
  ir::Program Prog; ///< Straight-line, assert-free.
  /// All RA-reachable final register valuations (axiomatic oracle).
  std::set<std::vector<Value>> Expected;
};

/// The classic named shapes with oracle outcomes filled in.
std::vector<LitmusTest> classicTests();

struct FamilyOptions {
  uint32_t Count = 100;
  uint32_t MaxThreads = 3;
  uint32_t MaxVars = 2;
  uint32_t MaxOpsPerThread = 3;
  /// Permille of shared ops that are CAS.
  uint32_t CasPermille = 80;
};

/// The program of family member #\p Index of (\p Seed, \p O) — a pure
/// function of those three values alone. The generator draws from
/// Rng::derived(Seed, Index), never from a shared sequential stream, so
/// any subset or shard of the family is bit-identical to the same indices
/// of a full run (the farm's shard-invariance property) and a single
/// failing index reproduces without regenerating its predecessors.
ir::Program generateFamilyProgram(uint64_t Seed, uint64_t Index,
                                  const FamilyOptions &O);

/// Family member #\p Index with its oracle outcomes filled in (named
/// "rand<Index>").
LitmusTest generateFamilyTest(uint64_t Seed, uint64_t Index,
                              const FamilyOptions &O);

/// Deterministically generates family members 0..O.Count-1 of \p Seed.
std::vector<LitmusTest> generateFamily(uint64_t Seed, const FamilyOptions &O);

/// Builds the observer program asking whether \p Outcome (a full register
/// valuation of Test.Prog) is reachable: UNSAFE iff reachable.
ir::Program makeObserverProgram(const LitmusTest &Test,
                                const std::vector<Value> &Outcome);

struct SweepResult {
  uint32_t TestsRun = 0;
  uint32_t QueriesRun = 0;
  uint32_t Agreements = 0;
  /// Queries the backend could not decide within its budget (timeouts are
  /// not verdicts and therefore not disagreements).
  uint32_t Inconclusive = 0;
  std::vector<std::string> Mismatches;

  bool allAgree() const { return Mismatches.empty(); }
};

struct SweepOptions {
  /// View-switch budget for VBMC; 0 = choose per test (enough switches
  /// for every read of the observer program: #reads + #threads + 1). The
  /// paper used K <= 5 on observer-free postconditions; our observer
  /// thread costs one extra switch per done flag.
  uint32_t K = 0;
  /// Per-query wall-clock budget.
  double BudgetSeconds = 10;
  /// Additional negative (expected-unreachable) outcomes per test.
  uint32_t NegativeQueriesPerTest = 1;
  /// True = decide queries with the SAT/BMC backend (the paper pipeline);
  /// false = explicit-state backend.
  bool UseSatBackend = true;
  /// K used for negative (expected-SAFE) queries. An RA-unreachable
  /// outcome is unreachable at every K, so a small budget keeps the UNSAT
  /// formulas tractable while still catching spurious UNSAFE answers.
  uint32_t NegativeK = 2;
  /// Cap on positive queries per test (0 = all oracle outcomes).
  uint32_t MaxPositiveQueriesPerTest = 0;
};

/// For every test: each oracle outcome must be found (UNSAFE) and each
/// perturbed non-outcome must be refuted (SAFE) by VBMC.
SweepResult runVbmcSweep(const std::vector<LitmusTest> &Tests,
                         const SweepOptions &O);

/// Cheaper sweep: compares the axiomatic oracle against the operational
/// RA explorer's terminal valuations on every test (the two independent
/// semantics implementations must agree exactly).
SweepResult runOperationalSweep(const std::vector<LitmusTest> &Tests);

} // namespace vbmc::litmus

#endif // VBMC_LITMUS_LITMUS_H
