//===- Pcp.cpp - PCP encoding and solver ------------------------*- C++ -*-===//

#include "pcp/Pcp.h"

#include "ir/Flatten.h"
#include "ra/RaExplorer.h"
#include "smc/Smc.h"

#include <algorithm>
#include <deque>

using namespace vbmc;
using namespace vbmc::ir;
using namespace vbmc::pcp;

uint32_t PcpInstance::alphabetSize() const {
  int Max = 0;
  for (const auto &[U, V] : Pairs) {
    for (int S : U)
      Max = std::max(Max, S);
    for (int S : V)
      Max = std::max(Max, S);
  }
  return static_cast<uint32_t>(Max);
}

bool PcpInstance::valid() const {
  if (Pairs.empty())
    return false;
  for (const auto &[U, V] : Pairs) {
    if (U.empty() || V.empty())
      return false;
    for (int S : U)
      if (S <= 0)
        return false;
    for (int S : V)
      if (S <= 0)
        return false;
  }
  return true;
}

std::optional<std::vector<uint32_t>>
vbmc::pcp::solvePcp(const PcpInstance &I, uint32_t MaxLength) {
  // BFS over (index sequence, outstanding suffix) states. The suffix is
  // the part of the longer stream not yet matched by the shorter one.
  struct State {
    std::vector<uint32_t> Seq;
    std::vector<int> Suffix;
    bool UAhead; // True: the u-stream is ahead by Suffix.
  };
  std::deque<State> Frontier;
  Frontier.push_back(State{{}, {}, true});
  while (!Frontier.empty()) {
    State S = std::move(Frontier.front());
    Frontier.pop_front();
    if (S.Seq.size() >= MaxLength)
      continue;
    for (uint32_t P = 0; P < I.Pairs.size(); ++P) {
      const auto &[U, V] = I.Pairs[P];
      // Build the two streams extended by pair P relative to the suffix.
      std::vector<int> A = S.UAhead ? S.Suffix : std::vector<int>();
      std::vector<int> B = S.UAhead ? std::vector<int>() : S.Suffix;
      A.insert(A.end(), U.begin(), U.end());
      B.insert(B.end(), V.begin(), V.end());
      size_t Common = std::min(A.size(), B.size());
      bool Ok = std::equal(A.begin(), A.begin() + Common, B.begin());
      if (!Ok)
        continue;
      State Next;
      Next.Seq = S.Seq;
      Next.Seq.push_back(P + 1);
      Next.UAhead = A.size() >= B.size();
      const std::vector<int> &Longer = Next.UAhead ? A : B;
      Next.Suffix.assign(Longer.begin() + Common, Longer.end());
      if (Next.Suffix.empty())
        return Next.Seq;
      Frontier.push_back(std::move(Next));
    }
  }
  return std::nullopt;
}

namespace {

/// Shared emission of the guessing processes p1 / p2.
///
/// \p Words: the u-words (for p1) or v-words (for p2).
/// \p SymVar0/1: the alternating symbol stream variables.
/// \p IdxVar0/1: the alternating index stream variables.
void emitGuesser(Program &P, uint32_t Proc,
                 const std::vector<std::vector<int>> &Words, VarId SymVar0,
                 VarId SymVar1, VarId IdxVar0, VarId IdxVar1, Value Bot,
                 uint32_t MaxIndices,
                 const std::vector<uint32_t> *Hint) {
  RegId Aux = P.addReg(Proc, "aux");
  RegId TurnX = P.addReg(Proc, "turnx");
  RegId TurnY = P.addReg(Proc, "turny");
  RegId Cnt = P.addReg(Proc, "cnt");
  RegId Stop = P.addReg(Proc, "stop");
  uint32_t N = static_cast<uint32_t>(Words.size());

  std::vector<Stmt> Body;
  Body.push_back(Stmt::assign(TurnX, constE(1)));
  Body.push_back(Stmt::assign(TurnY, constE(1)));
  Body.push_back(Stmt::assign(Stop, constE(0)));

  std::vector<Stmt> Loop;
  if (!Hint) {
    Loop.push_back(Stmt::assign(Aux, nondetE(0, static_cast<Value>(N))));
  } else {
    // Pin the guess to Hint[cnt] (0 past the end = stop).
    Loop.push_back(Stmt::assign(Aux, constE(0)));
    for (size_t J = 0; J < Hint->size(); ++J)
      Loop.push_back(Stmt::ifThen(
          eqE(regE(Cnt), constE(static_cast<Value>(J))),
          {Stmt::assign(Aux, constE(static_cast<Value>((*Hint)[J])))}));
  }
  std::vector<Stmt> Finish = {Stmt::assign(Stop, constE(1))};
  std::vector<Stmt> Continue;
  // Budget: only MaxIndices words may be emitted.
  Continue.push_back(Stmt::assume(
      ltE(regE(Cnt), constE(static_cast<Value>(MaxIndices)))));
  Continue.push_back(Stmt::assign(Cnt, addE(regE(Cnt), constE(1))));
  for (uint32_t W = 1; W <= N; ++W) {
    std::vector<Stmt> Module;
    for (int Sym : Words[W - 1]) {
      std::vector<Stmt> Even = {
          Stmt::write(SymVar0, constE(Sym)),
          Stmt::assign(TurnX, constE(2)),
      };
      std::vector<Stmt> Odd = {
          Stmt::write(SymVar1, constE(Sym)),
          Stmt::assign(TurnX, constE(1)),
      };
      Module.push_back(Stmt::ifThen(eqE(regE(TurnX), constE(1)),
                                    std::move(Even), std::move(Odd)));
    }
    std::vector<Stmt> IdxEven = {
        Stmt::write(IdxVar0, constE(static_cast<Value>(W))),
        Stmt::assign(TurnY, constE(2)),
    };
    std::vector<Stmt> IdxOdd = {
        Stmt::write(IdxVar1, constE(static_cast<Value>(W))),
        Stmt::assign(TurnY, constE(1)),
    };
    Module.push_back(Stmt::ifThen(eqE(regE(TurnY), constE(1)),
                                  std::move(IdxEven), std::move(IdxOdd)));
    Continue.push_back(Stmt::ifThen(
        eqE(regE(Aux), constE(static_cast<Value>(W))), std::move(Module)));
  }
  Loop.push_back(Stmt::ifThen(eqE(regE(Aux), constE(0)), std::move(Finish),
                              std::move(Continue)));
  Body.push_back(Stmt::whileLoop(eqE(regE(Stop), constE(0)),
                                 std::move(Loop)));
  // PCP asks for a non-empty index sequence.
  Body.push_back(Stmt::assume(binE(BinaryOp::Ge, regE(Cnt), constE(1))));
  // Signal the end of both streams.
  Body.push_back(Stmt::ifThen(
      eqE(regE(TurnX), constE(1)),
      {Stmt::write(SymVar0, constE(Bot))},
      {Stmt::write(SymVar1, constE(Bot))}));
  Body.push_back(Stmt::ifThen(
      eqE(regE(TurnY), constE(1)),
      {Stmt::write(IdxVar0, constE(Bot))},
      {Stmt::write(IdxVar1, constE(Bot))}));
  Body.push_back(Stmt::term());
  P.Procs[Proc].Body = std::move(Body);
}

/// The checking processes p3 / p4: consume two pairs of alternating
/// streams with CAS, enforcing equality of the streams (Lemma 4.2).
void emitChecker(Program &P, uint32_t Proc, VarId A0, VarId A1, VarId B0,
                 VarId B1, Value MaxSymbol, Value Bot) {
  RegId Aux = P.addReg(Proc, "aux");
  RegId Turn = P.addReg(Proc, "turn");
  RegId Tmp = P.addReg(Proc, "tmp");
  RegId Stop = P.addReg(Proc, "stop");

  std::vector<Stmt> Body;
  Body.push_back(Stmt::assign(Turn, constE(1)));
  Body.push_back(Stmt::assign(Stop, constE(0)));

  std::vector<Stmt> Loop;
  Loop.push_back(Stmt::assign(Aux, nondetE(1, Bot)));
  // Guess a symbol or the end marker (values in between are unused).
  Loop.push_back(Stmt::assume(orE(leE(regE(Aux), constE(MaxSymbol)),
                                  eqE(regE(Aux), constE(Bot)))));

  auto ConsumeQuad = [&](VarId First, VarId FirstOther, VarId Second,
                         VarId SecondOther, Value NextTurn) {
    std::vector<Stmt> Quad;
    Quad.push_back(Stmt::cas(First, regE(Aux), constE(0)));
    Quad.push_back(Stmt::read(Tmp, FirstOther));
    Quad.push_back(Stmt::assume(eqE(regE(Tmp), constE(0))));
    Quad.push_back(Stmt::cas(Second, regE(Aux), constE(0)));
    Quad.push_back(Stmt::read(Tmp, SecondOther));
    Quad.push_back(Stmt::assume(eqE(regE(Tmp), constE(0))));
    Quad.push_back(Stmt::assign(Turn, constE(NextTurn)));
    return Quad;
  };

  Loop.push_back(Stmt::ifThen(eqE(regE(Turn), constE(1)),
                              ConsumeQuad(A0, A1, B0, B1, 2),
                              ConsumeQuad(A1, A0, B1, B0, 1)));
  Loop.push_back(Stmt::ifThen(eqE(regE(Aux), constE(Bot)),
                              {Stmt::assign(Stop, constE(1))}));
  Body.push_back(Stmt::whileLoop(eqE(regE(Stop), constE(0)),
                                 std::move(Loop)));
  Body.push_back(Stmt::term());
  P.Procs[Proc].Body = std::move(Body);
}

} // namespace

Program vbmc::pcp::encodePcp(const PcpInstance &I, uint32_t MaxIndices,
                             const std::vector<uint32_t> *Hint) {
  assert(I.valid() && "malformed PCP instance");
  uint32_t N = static_cast<uint32_t>(I.Pairs.size());
  Value A = static_cast<Value>(I.alphabetSize());
  Value Bot = std::max(A, static_cast<Value>(N)) + 1;

  Program P;
  VarId X1 = P.addVar("x1"), X2 = P.addVar("x2");
  VarId X3 = P.addVar("x3"), X4 = P.addVar("x4");
  VarId Y1 = P.addVar("y1"), Y2 = P.addVar("y2");
  VarId Y3 = P.addVar("y3"), Y4 = P.addVar("y4");

  std::vector<std::vector<int>> UWords, VWords;
  for (const auto &[U, V] : I.Pairs) {
    UWords.push_back(U);
    VWords.push_back(V);
  }

  uint32_t P1 = P.addProcess("p1");
  emitGuesser(P, P1, UWords, X1, X2, Y1, Y2, Bot, MaxIndices, Hint);
  uint32_t P2 = P.addProcess("p2");
  emitGuesser(P, P2, VWords, X3, X4, Y3, Y4, Bot, MaxIndices, Hint);
  uint32_t P3 = P.addProcess("p3");
  emitChecker(P, P3, X1, X2, X3, X4, A, Bot);
  uint32_t P4 = P.addProcess("p4");
  emitChecker(P, P4, Y1, Y2, Y3, Y4, static_cast<Value>(N), Bot);
  return P;
}

bool vbmc::pcp::allTermReachable(const Program &P, uint64_t MaxStates,
                                 double BudgetSeconds) {
  FlatProgram FP = flatten(P);
  // Phase 1: goal-directed stateless DFS — finds a witness quickly on
  // solvable instances without materializing the BFS frontier.
  smc::SmcOptions SO;
  SO.Goal = smc::SmcGoal::AllDone;
  SO.Strategy = smc::SmcStrategy::Dpor;
  SO.B.Seconds = BudgetSeconds > 0 ? BudgetSeconds * 0.5 : 20;
  smc::SmcResult SR = smc::exploreSmc(FP, SO);
  if (SR.FoundBug)
    return true;
  if (SR.Complete && !SR.TimedOut)
    return false;
  // Phase 2: exhaustive BFS within the state budget (needed to certify
  // unreachability when the DFS timed out).
  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AllDone;
  Q.MaxStates = MaxStates;
  Q.BudgetSeconds = BudgetSeconds;
  ra::RaResult R = ra::exploreRa(FP, Q);
  return R.reached();
}
