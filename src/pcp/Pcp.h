//===- Pcp.h - the Theorem 4.1 undecidability construction -------*- C++ -*-===//
///
/// \file
/// Post's Correspondence Problem and the paper's reduction (Theorem 4.1,
/// Fig. 3): a PCP instance {(u_i, v_i)} is encoded as a 4-process RA
/// program such that every process can reach `term` iff the instance has
/// a solution.
///
///  * p1 guesses an index sequence and writes the symbols of u_{i1} u_{i2}
///    ... alternately into x1, x2, and the indices alternately into
///    y1, y2;
///  * p2 does the same for the v-words into x3, x4 and y3, y4;
///  * p3 consumes the symbol streams with CAS (updating each guessed
///    symbol back to 0) and `assume`s the partner variable is 0, which —
///    by the CAS-adjacency and causality arguments of Lemma 4.2 — forces
///    it to read *every* written value in order and to certify that the
///    two symbol streams agree;
///  * p4 certifies the index streams the same way.
///
/// The guessed index registers (`aux`) use the language's bounded nondet;
/// the termination signal is the out-of-alphabet value Bot.
///
/// A brute-force PCP solver cross-checks the encoding on small instances:
/// reachability of all-`term` (bounded search) must match PCP solvability
/// (bounded length).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_PCP_PCP_H
#define VBMC_PCP_PCP_H

#include "ir/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace vbmc::pcp {

/// A PCP instance over the alphabet {1..AlphabetSize} (0 is reserved for
/// the consumed marker, and AlphabetSize+1.. for control values).
struct PcpInstance {
  /// Pairs of words; symbols are 1-based small integers.
  std::vector<std::pair<std::vector<int>, std::vector<int>>> Pairs;

  uint32_t alphabetSize() const;
  bool valid() const;
};

/// Brute-force solver: returns a solution index sequence (1-based) of
/// length <= MaxLength, or nullopt.
std::optional<std::vector<uint32_t>> solvePcp(const PcpInstance &I,
                                              uint32_t MaxLength);

/// Builds the Fig. 3 program. The sequence-length budget \p MaxIndices
/// bounds the guessing loops (the paper's construction uses unbounded
/// loops; explicit-state exploration needs a finite horizon — solutions
/// of length <= MaxIndices are preserved). When \p Hint is non-null the
/// guessers' index choices are pinned to that sequence: the hinted
/// program's runs are a subset of the unhinted one's, so all-term
/// reachability of the hinted program soundly witnesses reachability of
/// the full construction (used to keep the search tractable on instances
/// whose witnesses are deep).
ir::Program encodePcp(const PcpInstance &I, uint32_t MaxIndices,
                      const std::vector<uint32_t> *Hint = nullptr);

/// The reachability query of the reduction: every process at `term`.
/// Implemented with the RA explorer; \p MaxStates caps the search.
bool allTermReachable(const ir::Program &P, uint64_t MaxStates,
                      double BudgetSeconds = 0);

} // namespace vbmc::pcp

#endif // VBMC_PCP_PCP_H
