//===- ScSemantics.h - sequential consistency ---------------------*- C++ -*-===//
///
/// \file
/// The SC semantics of the same language: one flat store, interleaved
/// atomic instruction execution. This is the target semantics of the
/// paper's translation; the SC engines additionally count context switches
/// (Qadeer–Rehof style) because the translation theorem speaks about
/// (K+n)-context-bounded SC runs.
///
/// Atomic sections (emitted by the translation around each instrumentation
/// block) pin the scheduler to the holding process.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SC_SCSEMANTICS_H
#define VBMC_SC_SCSEMANTICS_H

#include "ir/Flatten.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vbmc::sc {

using ir::FlatInstr;
using ir::FlatProgram;
using ir::Label;
using ir::Value;
using ir::VarId;

/// An SC configuration: store, program counters, registers, and the
/// process currently inside an atomic section (-1 when none). Atomic
/// sections are re-entrant (AtomicDepth counts the nesting).
struct ScConfig {
  std::vector<Value> Store;
  std::vector<Label> Pc;
  std::vector<Value> Regs;
  int32_t AtomicHolder = -1;
  uint32_t AtomicDepth = 0;

  bool operator==(const ScConfig &) const = default;

  void serialize(std::vector<uint32_t> &Out) const;
};

/// One enabled SC transition.
struct ScStep {
  ScConfig Next;
  uint32_t Proc = 0;
  Label Instr = 0;
  /// True when the instruction wrote a shared variable (Write or a
  /// successful CAS); used by the switch-only-after-write scheduling
  /// optimization from Section 6.
  bool WroteShared = false;
};

/// Initial configuration: store, registers zeroed, entry labels.
ScConfig initialScConfig(const FlatProgram &FP);

/// Appends all SC successors of \p C for process \p P (respecting atomic
/// sections) to \p Out.
void enumerateScStepsOf(const FlatProgram &FP, const ScConfig &C, uint32_t P,
                        std::vector<ScStep> &Out);

/// Appends all SC successors of \p C (all processes) to \p Out.
void enumerateScSteps(const FlatProgram &FP, const ScConfig &C,
                      std::vector<ScStep> &Out);

} // namespace vbmc::sc

#endif // VBMC_SC_SCSEMANTICS_H
