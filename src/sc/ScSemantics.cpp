//===- ScSemantics.cpp ----------------------------------------*- C++ -*-===//

#include "sc/ScSemantics.h"

#include "ir/Eval.h"

using namespace vbmc;
using namespace vbmc::sc;
using ir::ExprKind;
using ir::Op;

void ScConfig::serialize(std::vector<uint32_t> &Out) const {
  Out.clear();
  for (Value V : Store)
    Out.push_back(static_cast<uint32_t>(V));
  for (Label L : Pc)
    Out.push_back(L);
  for (Value V : Regs)
    Out.push_back(static_cast<uint32_t>(V));
  Out.push_back(static_cast<uint32_t>(AtomicHolder + 1));
  Out.push_back(AtomicDepth);
}

ScConfig vbmc::sc::initialScConfig(const FlatProgram &FP) {
  ScConfig C;
  C.Store.assign(FP.numVars(), 0);
  C.Pc.assign(FP.numProcs(), 0);
  C.Regs.assign(FP.numRegs(), 0);
  return C;
}

void vbmc::sc::enumerateScStepsOf(const FlatProgram &FP, const ScConfig &C,
                                  uint32_t P, std::vector<ScStep> &Out) {
  if (C.AtomicHolder >= 0 && static_cast<uint32_t>(C.AtomicHolder) != P)
    return;
  const ir::FlatProcess &Proc = FP.Procs[P];
  Label L = C.Pc[P];
  if (Proc.isFinal(L))
    return;
  const FlatInstr &I = Proc.Instrs[L];

  auto push = [&]() -> ScStep & {
    Out.push_back(ScStep{C, P, L, false});
    return Out.back();
  };

  switch (I.K) {
  case Op::Read: {
    ScStep &S = push();
    S.Next.Regs[I.Reg] = C.Store[I.Var];
    S.Next.Pc[P] = I.Next;
    return;
  }
  case Op::Write: {
    ScStep &S = push();
    S.Next.Store[I.Var] = ir::evalExpr(*I.E, C.Regs);
    S.Next.Pc[P] = I.Next;
    S.WroteShared = true;
    return;
  }
  case Op::Cas: {
    // Under SC a CAS is an atomic test-and-set that blocks while the
    // expected value is absent (matching the blocking RA rule).
    if (C.Store[I.Var] != ir::evalExpr(*I.E, C.Regs))
      return;
    ScStep &S = push();
    S.Next.Store[I.Var] = ir::evalExpr(*I.E2, C.Regs);
    S.Next.Pc[P] = I.Next;
    S.WroteShared = true;
    return;
  }
  case Op::Assign: {
    if (I.E->kind() == ExprKind::Nondet) {
      for (Value V = I.E->nondetLo(); V <= I.E->nondetHi(); ++V) {
        ScStep &S = push();
        S.Next.Regs[I.Reg] = V;
        S.Next.Pc[P] = I.Next;
      }
      return;
    }
    ScStep &S = push();
    S.Next.Regs[I.Reg] = ir::evalExpr(*I.E, C.Regs);
    S.Next.Pc[P] = I.Next;
    return;
  }
  case Op::Assume:
    if (ir::evalExpr(*I.E, C.Regs) != 0) {
      ScStep &S = push();
      S.Next.Pc[P] = I.Next;
    }
    return;
  case Op::Assert: {
    ScStep &S = push();
    S.Next.Pc[P] =
        ir::evalExpr(*I.E, C.Regs) != 0 ? I.Next : Proc.errorLabel();
    return;
  }
  case Op::Branch: {
    ScStep &S = push();
    S.Next.Pc[P] = ir::evalExpr(*I.E, C.Regs) != 0 ? I.TNext : I.FNext;
    return;
  }
  case Op::Goto: {
    ScStep &S = push();
    S.Next.Pc[P] = I.Next;
    return;
  }
  case Op::Term: {
    ScStep &S = push();
    S.Next.Pc[P] = Proc.doneLabel();
    return;
  }
  case Op::AtomicBegin: {
    // Only P can reach here while holding (the guard above filters other
    // processes), so this either acquires or re-enters.
    ScStep &S = push();
    S.Next.AtomicHolder = static_cast<int32_t>(P);
    S.Next.AtomicDepth = C.AtomicDepth + 1;
    S.Next.Pc[P] = I.Next;
    return;
  }
  case Op::AtomicEnd: {
    assert(C.AtomicHolder == static_cast<int32_t>(P) && C.AtomicDepth > 0 &&
           "atomic_end without matching atomic_begin");
    ScStep &S = push();
    S.Next.AtomicDepth = C.AtomicDepth - 1;
    if (S.Next.AtomicDepth == 0)
      S.Next.AtomicHolder = -1;
    S.Next.Pc[P] = I.Next;
    return;
  }
  }
}

void vbmc::sc::enumerateScSteps(const FlatProgram &FP, const ScConfig &C,
                                std::vector<ScStep> &Out) {
  for (uint32_t P = 0; P < FP.numProcs(); ++P)
    enumerateScStepsOf(FP, C, P, Out);
}
