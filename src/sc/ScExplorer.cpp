//===- ScExplorer.cpp -----------------------------------------*- C++ -*-===//

#include "sc/ScExplorer.h"

#include <deque>
#include <unordered_set>

using namespace vbmc;
using namespace vbmc::sc;

namespace {

struct KeyHash {
  size_t operator()(const std::vector<uint32_t> &Key) const {
    uint64_t H = 1469598103934665603ULL;
    for (uint32_t W : Key) {
      H ^= W;
      H *= 1099511628211ULL;
    }
    return static_cast<size_t>(H);
  }
};

bool goalHolds(const FlatProgram &FP, const ScQuery &Q, const ScConfig &C) {
  switch (Q.Goal) {
  case ScGoalKind::AnyError:
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      if (FP.Procs[P].isError(C.Pc[P]))
        return true;
    return false;
  case ScGoalKind::AllDone:
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      if (!FP.Procs[P].isDone(C.Pc[P]))
        return false;
    return true;
  case ScGoalKind::Custom:
    return Q.GoalPredicate(C.Pc);
  }
  return false;
}

struct Node {
  ScConfig Config;
  int32_t LastProc;  ///< Process that made the incoming step, -1 at root.
  uint32_t Switches; ///< Context switches used so far.
  bool LastWrote;    ///< Incoming step wrote a shared variable.
  int64_t Parent;
  ScTraceStep Via;
};

} // namespace

ScResult vbmc::sc::exploreSc(const FlatProgram &FP, const ScQuery &Q) {
  Timer Watch;
  Deadline DL = Q.B.startDeadline();
  ScResult Result;

  // Single exit point: stamp the status/time and mirror the work counters
  // into the shared registry, so even a cancelled or timed-out search
  // reports what it cost.
  auto finish = [&](ScStatus Status) -> ScResult & {
    Result.Status = Status;
    Result.Seconds = Watch.elapsedSeconds();
    if (Q.Ctx) {
      StatsRegistry &S = Q.Ctx->stats();
      S.addSeconds("explicit.seconds", Result.Seconds);
      S.addCount("explicit.states", Result.StatesVisited);
      S.addCount("explicit.transitions", Result.TransitionsExplored);
    }
    return Result;
  };

  std::vector<Node> Arena;
  std::deque<size_t> Frontier;
  std::unordered_set<std::vector<uint32_t>, KeyHash> Visited;

  auto tryEnqueue = [&](ScConfig C, int32_t LastProc, uint32_t Switches,
                        bool LastWrote, int64_t Parent, ScTraceStep Via) {
    std::vector<uint32_t> Key;
    C.serialize(Key);
    Key.push_back(static_cast<uint32_t>(LastProc + 1));
    if (Q.ContextBound || Q.RoundRobinRounds)
      Key.push_back(Switches);
    if (Q.SwitchOnlyAfterWrite)
      Key.push_back(LastWrote ? 1u : 0u);
    if (!Visited.insert(std::move(Key)).second)
      return;
    Arena.push_back(Node{std::move(C), LastProc, Switches, LastWrote, Parent,
                         Via});
    Frontier.push_back(Arena.size() - 1);
  };

  tryEnqueue(initialScConfig(FP), -1, 0, true, -1, ScTraceStep{0, 0});

  auto buildTrace = [&](size_t NodeIdx) {
    std::vector<ScTraceStep> Trace;
    for (int64_t I = static_cast<int64_t>(NodeIdx); Arena[I].Parent >= 0;
         I = Arena[I].Parent)
      if (Arena[I].Via.Instr != ~0u) // Skip scheduler pass pseudo-steps.
        Trace.push_back(Arena[I].Via);
    std::reverse(Trace.begin(), Trace.end());
    return Trace;
  };

  // Lal-Reps round-robin mode: Node::Switches holds the schedule position
  // sp in 0 .. n*R-1; only process sp mod n may step, and the scheduler may
  // silently pass to sp+1.
  const bool RoundRobin = Q.RoundRobinRounds.has_value();
  const uint32_t ScheduleLen =
      RoundRobin ? *Q.RoundRobinRounds * FP.numProcs() : 0;

  std::vector<ScStep> Steps;
  while (!Frontier.empty()) {
    if (Q.B.Work && Result.StatesVisited >= Q.B.Work)
      return finish(ScStatus::StateLimit);
    // Cancellation is an atomic load: poll it every state for promptness.
    if (Q.Ctx && Q.Ctx->cancelled())
      return finish(ScStatus::Cancelled);
    if ((Result.StatesVisited & 0x3f) == 0 &&
        (DL.expired() || (Q.Ctx && Q.Ctx->deadline().expired())))
      return finish(ScStatus::Timeout);

    size_t Idx = Frontier.front();
    Frontier.pop_front();
    ++Result.StatesVisited;

    // Copy scalar node state up front: tryEnqueue grows the arena, which
    // can invalidate references into it.
    const int32_t LastProc = Arena[Idx].LastProc;
    const uint32_t BaseSwitches = Arena[Idx].Switches;
    const bool LastWrote = Arena[Idx].LastWrote;
    const bool InAtomic = Arena[Idx].Config.AtomicDepth > 0;

    if (goalHolds(FP, Q, Arena[Idx].Config)) {
      Result.ContextSwitchesUsed = BaseSwitches;
      Result.Trace = buildTrace(Idx);
      return finish(ScStatus::Reached);
    }

    if (RoundRobin) {
      uint32_t SP = BaseSwitches;
      if (SP + 1 < ScheduleLen) {
        ScConfig Copy = Arena[Idx].Config;
        tryEnqueue(std::move(Copy), LastProc, SP + 1, LastWrote,
                   static_cast<int64_t>(Idx), ScTraceStep{0, ~0u});
      }
      Steps.clear();
      if (SP < ScheduleLen)
        enumerateScStepsOf(FP, Arena[Idx].Config, SP % FP.numProcs(), Steps);
      Result.TransitionsExplored += Steps.size();
      for (ScStep &S : Steps)
        tryEnqueue(std::move(S.Next), static_cast<int32_t>(S.Proc), SP,
                   S.WroteShared, static_cast<int64_t>(Idx),
                   ScTraceStep{S.Proc, S.Instr});
      continue;
    }

    Steps.clear();
    enumerateScSteps(FP, Arena[Idx].Config, Steps);
    Result.TransitionsExplored += Steps.size();

    // Under the Section 6 scheduling reduction, the active process keeps
    // the context until it writes (or has no enabled step).
    bool ActiveHasStep = false;
    if (Q.SwitchOnlyAfterWrite && LastProc >= 0 && !LastWrote)
      for (const ScStep &S : Steps)
        ActiveHasStep |= S.Proc == static_cast<uint32_t>(LastProc);

    for (ScStep &S : Steps) {
      bool SameProc =
          LastProc < 0 || S.Proc == static_cast<uint32_t>(LastProc);
      if (Q.SwitchOnlyAfterWrite && !SameProc && ActiveHasStep)
        continue;
      uint32_t Switches = BaseSwitches + (SameProc ? 0 : 1);
      if (Q.ContextBound && Switches > *Q.ContextBound)
        continue;
      // An atomic section is one indivisible action to the other
      // processes: a shared write anywhere inside it makes the whole
      // section a "write" for the Section 6 reduction, so keep the flag
      // sticky until the section closes. Without this the legal switch
      // point right after a writing section (its AtomicEnd) is lost, and
      // a following section that blocks while holding the lock (e.g. a
      // CAS whose expected value never shows up) walls off every run in
      // which the other processes act in between.
      bool Wrote = S.WroteShared || (SameProc && LastWrote && InAtomic);
      tryEnqueue(std::move(S.Next), static_cast<int32_t>(S.Proc), Switches,
                 Wrote, static_cast<int64_t>(Idx),
                 ScTraceStep{S.Proc, S.Instr});
    }
  }

  return finish(ScStatus::Exhausted);
}

std::set<std::vector<Value>>
vbmc::sc::collectScTerminalRegs(const FlatProgram &FP,
                                std::optional<uint32_t> ContextBound,
                                uint64_t MaxStates) {
  return collectScTerminalRegsBounded(FP, ContextBound, MaxStates, nullptr)
      .Regs;
}

ScTerminalBehaviours
vbmc::sc::collectScTerminalRegsBounded(const FlatProgram &FP,
                                       std::optional<uint32_t> ContextBound,
                                       uint64_t MaxStates,
                                       const CheckContext *Ctx) {
  ScTerminalBehaviours Result;
  std::set<std::vector<Value>> &Terminals = Result.Regs;
  // State: configuration + last active process + switches used.
  struct Item {
    ScConfig Config;
    int32_t LastProc;
    uint32_t Switches;
  };
  std::deque<Item> Frontier;
  std::unordered_set<std::vector<uint32_t>, KeyHash> Visited;
  uint64_t Expanded = 0;

  auto tryEnqueue = [&](ScConfig C, int32_t LastProc, uint32_t Switches) {
    std::vector<uint32_t> Key;
    C.serialize(Key);
    Key.push_back(static_cast<uint32_t>(LastProc + 1));
    if (ContextBound)
      Key.push_back(Switches);
    if (!Visited.insert(std::move(Key)).second)
      return;
    Frontier.push_back(Item{std::move(C), LastProc, Switches});
  };

  tryEnqueue(initialScConfig(FP), -1, 0);
  std::vector<ScStep> Steps;
  while (!Frontier.empty()) {
    ++Expanded;
    if (MaxStates && Expanded > MaxStates) {
      Result.Complete = false;
      break;
    }
    if (Ctx && (Expanded & 0x3ff) == 0 && Ctx->interrupted()) {
      Result.Complete = false;
      break;
    }
    Item It = std::move(Frontier.front());
    Frontier.pop_front();

    bool AllDone = true;
    for (uint32_t P = 0; P < FP.numProcs(); ++P)
      AllDone &= FP.Procs[P].isDone(It.Config.Pc[P]);
    if (AllDone)
      Terminals.insert(It.Config.Regs);

    Steps.clear();
    enumerateScSteps(FP, It.Config, Steps);
    for (ScStep &S : Steps) {
      bool SameProc =
          It.LastProc < 0 || S.Proc == static_cast<uint32_t>(It.LastProc);
      uint32_t Switches = It.Switches + (SameProc ? 0 : 1);
      if (ContextBound && Switches > *ContextBound)
        continue;
      tryEnqueue(std::move(S.Next), static_cast<int32_t>(S.Proc), Switches);
    }
  }
  return Result;
}
