//===- ScExplorer.h - context-bounded SC reachability ------------*- C++ -*-===//
///
/// \file
/// Explicit-state context-bounded reachability under SC (Qadeer–Rehof
/// bounding). This is the "SC backend" the translated program runs on when
/// the SAT pipeline is not used, and the reference engine for the
/// translation-correctness property tests.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SC_SCEXPLORER_H
#define VBMC_SC_SCEXPLORER_H

#include "sc/ScSemantics.h"
#include "support/Budget.h"
#include "support/CheckContext.h"
#include "support/Timer.h"

#include <functional>
#include <optional>
#include <set>

namespace vbmc::sc {

enum class ScGoalKind {
  AnyError,
  AllDone,
  Custom,
};

struct ScQuery {
  ScGoalKind Goal = ScGoalKind::AnyError;
  std::function<bool(const std::vector<Label> &)> GoalPredicate;
  /// Bound on the number of context switches; unset = unbounded.
  std::optional<uint32_t> ContextBound;
  /// When set, scheduling is restricted to R rounds of round-robin in
  /// process order (the Lal-Reps discipline the BMC encoder uses): the
  /// run is a subsequence of (p0 ... pn-1)^R segments. ContextBound is
  /// ignored in this mode.
  std::optional<uint32_t> RoundRobinRounds;
  /// Section 6 optimization: a context switch away from a process is only
  /// allowed right after it wrote a shared variable (or when it cannot
  /// move). A shared write inside an atomic section counts for every
  /// later step of that section including its atomic_end — the section is
  /// a single action to the other processes. Off by default; the
  /// correctness tests exercise the unreduced semantics.
  bool SwitchOnlyAfterWrite = false;
  /// Resource budget: B.Work caps visited states (0 = unlimited),
  /// B.Seconds is a standalone wall clock whose timer starts when the
  /// query runs. See support/Budget.h for the shared vocabulary.
  support::Budget B;
  /// Optional engine context: the explorer polls its deadline and
  /// cancellation token (in addition to B.Seconds, which stays
  /// supported for standalone queries) and records explicit.* stats into
  /// its registry.
  const CheckContext *Ctx = nullptr;
};

enum class ScStatus {
  Reached,
  Exhausted,
  StateLimit,
  Timeout,
  Cancelled, ///< The query's CancellationToken was cancelled mid-search.
};

struct ScTraceStep {
  uint32_t Proc;
  Label Instr;
};

struct ScResult {
  ScStatus Status = ScStatus::Exhausted;
  uint64_t StatesVisited = 0;
  uint64_t TransitionsExplored = 0;
  uint32_t ContextSwitchesUsed = 0;
  std::vector<ScTraceStep> Trace;
  double Seconds = 0;

  bool reached() const { return Status == ScStatus::Reached; }
  bool exhausted() const { return Status == ScStatus::Exhausted; }
};

/// BFS reachability under SC per \p Q.
ScResult exploreSc(const FlatProgram &FP, const ScQuery &Q);

/// Enumerates the full SC state space (optionally context-bounded) and
/// returns every register valuation reachable with all processes
/// terminated. Counterpart of ra::collectTerminalRegs for the SC side of
/// the differential tests.
std::set<std::vector<Value>>
collectScTerminalRegs(const FlatProgram &FP,
                      std::optional<uint32_t> ContextBound = std::nullopt,
                      uint64_t MaxStates = 0);

/// SC terminal behaviours plus a completeness bit (see
/// ra::TerminalBehaviours for the contract).
struct ScTerminalBehaviours {
  std::set<std::vector<Value>> Regs;
  bool Complete = true;
};

/// Deadline-aware variant of collectScTerminalRegs polling \p Ctx.
ScTerminalBehaviours
collectScTerminalRegsBounded(const FlatProgram &FP,
                             std::optional<uint32_t> ContextBound,
                             uint64_t MaxStates, const CheckContext *Ctx);

} // namespace vbmc::sc

#endif // VBMC_SC_SCEXPLORER_H
