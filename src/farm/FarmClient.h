//===- FarmClient.h - farm/fuzz as vbmc-serve daemon clients -----*- C++ -*-===//
///
/// \file
/// The daemon-client side of `vbmc-farm --connect` / `vbmc-fuzz
/// --connect`: instead of forking its own sandboxed worker pool, the farm
/// ships each shard to a running vbmc-serve daemon as a
/// `vbmc-farm-shard-spec/v1` request and merges the streamed
/// `vbmc-farm-shard/v1` results. The determinism contract is unchanged —
///
///  * the shard plan is the same pure function of the universe spec the
///    in-process pool uses, so the merged "results" object
///    (writeFarmResults) is bit-identical between `--connect` and the
///    local pool for any daemon worker count;
///  * a worker death the daemon classifies (shard requests are exempt
///    from the daemon's halved-bounds retry) triggers the same
///    split-and-requeue binary descent as the in-process pool, converging
///    on the single universe index that kills a worker;
///  * a SIGTERM/SIGINT or exhausted farm budget stops submitting, records
///    pending shards as skipped, and still waits for every in-flight
///    request's answer (the daemon's every-accepted-request-answered
///    guarantee carries over).
///
/// The shard spec intentionally carries only the universe spec fields the
/// CLI exposes (seed / size / cadence); generator- and diff-level knob
/// overrides stay at their universe defaults in daemon mode.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FARM_FARMCLIENT_H
#define VBMC_FARM_FARMCLIENT_H

#include "farm/Farm.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace vbmc::farm {

inline constexpr const char *ShardSpecSchema = "vbmc-farm-shard-spec/v1";

/// Renders the shard spec for range [Lo, Hi) of \p O's universe: one JSON
/// object fully determining what the shard runs (never how long the
/// daemon lets it run — results must not depend on budgets).
std::string formatShardSpec(const FarmOptions &O, uint64_t Lo, uint64_t Hi);

/// Parses a shard spec into a fresh FarmOptions (universe + spec fields
/// only; scheduling fields stay default) and its range. False with a
/// one-line reason in \p Err on malformed input.
bool parseShardSpec(const std::string &SpecJson, FarmOptions &O,
                    uint64_t &Lo, uint64_t &Hi, std::string *Err = nullptr);

/// The daemon-side shard entry point (wired into
/// serve::ServerOptions::ShardRunner by the tool mains): parses
/// \p SpecJson and runs the shard in-process, returning the
/// vbmc-farm-shard/v1 result document — or "" on a malformed spec, which
/// the daemon answers as an internal error. \p DeadlineSeconds is
/// deliberately unused: the supervisor enforces the request deadline, and
/// results must be a function of the spec alone.
std::string runShardSpec(const std::string &SpecJson, double DeadlineSeconds);

struct ConnectOptions {
  /// The daemon's unix-domain socket.
  std::string SocketPath;
  /// How long to wait for the daemon to come up.
  double ConnectTimeoutSeconds = 10;
  /// Shard requests kept in flight at once; the daemon's shed/retry-after
  /// pushback throttles below this when its queue fills.
  size_t MaxInFlight = 32;
};

/// Runs the whole farm per \p O with the daemon at \p C as the worker
/// pool, logging one line per finished shard to \p Log when non-null.
/// On a connection-level failure \p Err (when non-null) gets a one-line
/// reason and the summary covers whatever completed before the failure
/// (unfinished shards are recorded as skipped).
FarmSummary runFarmConnected(const FarmOptions &O, const ConnectOptions &C,
                             std::ostream *Log, std::string *Err = nullptr);

} // namespace vbmc::farm

#endif // VBMC_FARM_FARMCLIENT_H
