//===- Farm.h - sharded litmus/fuzz worker-pool farm -------------*- C++ -*-===//
///
/// \file
/// The process-pool work scheduler behind `vbmc-farm`: shards a
/// deterministic work universe (Universe.h) across N sandboxed workers
/// and stitches the per-shard results into one summary.
///
///  * Shard planning is a pure function of (universe size, shard count):
///    contiguous, balanced index ranges. Workers pull shards from a
///    queue, so scheduling order never affects which tests run or what
///    any test contains — merged results are bit-identical across worker
///    counts (the shard-invariance property FarmTest pins).
///  * Every shard runs in a forked, resource-governed child
///    (support/Sandbox.h). A worker that crashes, OOMs, or hangs is
///    classified, its range is split in half and requeued, and the
///    binary descent converges on the single universe index that kills a
///    worker — recorded as a corpus witness (with the offending program
///    materialized generator-only in the parent) while the run completes.
///  * Shard results travel over the sandbox pipe as `vbmc-farm-shard/v1`
///    JSON (support/Json); the parent merges them under a lock, dedups
///    witnesses across shards by (check, program), and folds worker
///    stats into the farm's StatsRegistry for live progress counters.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FARM_FARM_H
#define VBMC_FARM_FARM_H

#include "farm/Universe.h"
#include "support/Json.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace vbmc::farm {

enum class UniverseKind { Litmus, Fuzz };

const char *universeKindName(UniverseKind K); // "litmus" | "fuzz"

struct FarmOptions {
  UniverseKind Universe = UniverseKind::Litmus;
  /// Worker processes; 0 = hardware concurrency.
  uint32_t Workers = 0;
  /// Shards the universe is cut into; 0 = auto (one shard per ~256
  /// litmus tests / ~16 fuzz programs). Deterministic given the spec —
  /// never derived from Workers.
  uint32_t Shards = 0;
  LitmusUniverseSpec Litmus;
  FuzzUniverseSpec Fuzz;
  /// Whole-farm wall clock (0 = unlimited). Shards still pending when it
  /// expires are recorded as skipped, not silently dropped.
  double BudgetSeconds = 0;
  /// Per-shard sandbox deadline.
  double ShardTimeoutSeconds = 600;
  /// Address-space headroom per worker in MB (0 = unlimited).
  uint64_t MemLimitMb = 0;
  /// Directory deduped witnesses are written to; empty = don't write.
  std::string CorpusDir;
  /// Directory per-shard vbmc-farm-shard/v1 documents are written to
  /// (the inputs `vbmc-report merge` reassembles); empty = don't write.
  std::string ShardDir;
};

/// One oracle/pipeline disagreement (the farm's reason to exist: there
/// must be none).
struct MismatchRecord {
  uint64_t Index = 0;
  std::string Name;
  std::string Check;
  std::string Detail;
};

/// One fuzz discrepancy or worker-death witness.
struct WitnessRecord {
  uint64_t Index = 0;
  std::string Check;   ///< Differential check name, or "crash".
  std::string Failure; ///< FailureKind name for worker deaths, "" else.
  std::string Detail;
  uint64_t Stmts = 0;
  std::string ProgramText; ///< Minimized reproducer (dedup key).
  std::string Path;        ///< Written corpus file ("" when not written).
};

/// How one scheduled shard (or split half) ended.
struct ShardRecord {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  /// "ok", "split" (died, range split and requeued), "crash"/"oom"/
  /// "timeout"/"exit" (single-index death, witnessed), or "skipped"
  /// (farm budget exhausted before it ran).
  std::string Outcome;
  std::string Detail;
  double Seconds = 0;
};

/// What one shard worker reports back over the pipe.
struct ShardResult {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  // Litmus sweep tallies.
  uint64_t Tests = 0;
  uint64_t Queries = 0;
  uint64_t Agreements = 0;
  uint64_t Inconclusive = 0;
  // Fuzz campaign tallies.
  uint64_t Checked = 0;
  uint64_t Passed = 0;
  uint64_t Skipped = 0;
  uint64_t Timeouts = 0;
  std::vector<MismatchRecord> Mismatches;
  std::vector<WitnessRecord> Witnesses;
  std::map<std::string, uint64_t> StatCounts;
  std::map<std::string, double> StatSeconds;
  double Seconds = 0;
};

struct FarmSummary {
  uint64_t UniverseSize = 0;
  uint64_t ShardsPlanned = 0;
  // Aggregated tallies (field meanings as in ShardResult).
  uint64_t Tests = 0;
  uint64_t Queries = 0;
  uint64_t Agreements = 0;
  uint64_t Inconclusive = 0;
  uint64_t Checked = 0;
  uint64_t Passed = 0;
  uint64_t Skipped = 0;
  uint64_t Timeouts = 0;
  /// Sorted by index.
  std::vector<MismatchRecord> Mismatches;
  /// Sorted by index, deduped across shards by (Check, ProgramText).
  std::vector<WitnessRecord> Witnesses;
  /// Duplicate witnesses dropped by the dedup.
  uint64_t DedupedWitnesses = 0;
  /// Sorted by (Lo, Hi); every scheduled shard and split half appears.
  std::vector<ShardRecord> ShardRecords;
  /// Classified worker deaths (after splitting bottomed out).
  uint64_t WorkerFailures = 0;
  std::map<std::string, uint64_t> StatCounts;
  std::map<std::string, double> StatSeconds;
  double Seconds = 0;

  /// No mismatches and no witnesses.
  bool clean() const { return Mismatches.empty() && Witnesses.empty(); }
};

/// Contiguous balanced shard plan: \p Shards ranges covering [0, Size)
/// exactly once, sizes differing by at most one.
std::vector<std::pair<uint64_t, uint64_t>> planShards(uint64_t Size,
                                                      uint32_t Shards);

/// Size of \p O's universe (litmus universe size or fuzz program count).
uint64_t farmUniverseSize(const FarmOptions &O);

/// The program at universe index \p Index, regenerated generator-only (no
/// oracle, no backends) — safe to materialize in a farm parent or daemon
/// client even when the index kills a worker.
ir::Program universeProgramAt(const FarmOptions &O, uint64_t Index);

/// The auto shard count used when FarmOptions::Shards is 0 — a pure
/// function of the spec, shared by the in-process pool and the daemon
/// client so both modes schedule the identical plan.
uint32_t farmDefaultShardCount(const FarmOptions &O, uint64_t Size);

/// Runs the whole farm per \p O, logging one line per finished shard to
/// \p Log when non-null.
FarmSummary runFarm(const FarmOptions &O, std::ostream *Log);

/// Runs the index range [Lo, Hi) in-process — the worker payload, also
/// the `--index` single-test reproduction path.
ShardResult runShardInProcess(const FarmOptions &O, uint64_t Lo,
                              uint64_t Hi);

/// vbmc-farm-shard/v1: the per-shard wire document.
std::string formatShardResult(const ShardResult &R, const FarmOptions &O);
bool parseShardResult(const json::Value &Doc, ShardResult &R,
                      std::string *Err = nullptr);

/// Writes one vbmc-farm-shard/v1 document \p Doc for range [Lo, Hi) into
/// FarmOptions::ShardDir (no-op when ShardDir is empty).
void writeShardFile(const FarmOptions &O, uint64_t Lo, uint64_t Hi,
                    const std::string &Doc);

/// Folds one shard's result into \p S (no sorting/dedup — see
/// finalizeSummary).
void mergeShardResult(FarmSummary &S, const ShardResult &R);

/// Sorts mismatches/witnesses/records, dedups witnesses across shards,
/// and (when \p CorpusDir is non-empty) writes deduped witness files.
void finalizeSummary(FarmSummary &S, const std::string &CorpusDir);

/// The deterministic "results" object shared by the vbmc-farm/v1 summary
/// and `vbmc-report merge`: identical across worker counts and shard
/// schedules for the same universe (no timing, no stats).
void writeFarmResults(json::JsonWriter &W, const FarmSummary &S);

/// vbmc-farm/v1: the merged run artifact.
std::string formatFarmSummary(const FarmSummary &S, const FarmOptions &O,
                              uint32_t WorkersUsed);

} // namespace vbmc::farm

#endif // VBMC_FARM_FARM_H
