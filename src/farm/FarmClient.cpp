//===- FarmClient.cpp - farm/fuzz as vbmc-serve daemon clients ------------===//

#include "farm/FarmClient.h"

#include "ir/Printer.h"
#include "serve/Client.h"
#include "support/CheckContext.h"
#include "support/Json.h"
#include "support/Signals.h"
#include "support/Timer.h"

#include <chrono>
#include <deque>
#include <map>
#include <ostream>
#include <thread>

using namespace vbmc;
using namespace vbmc::farm;

//===----------------------------------------------------------------------===//
// vbmc-farm-shard-spec/v1
//===----------------------------------------------------------------------===//

std::string vbmc::farm::formatShardSpec(const FarmOptions &O, uint64_t Lo,
                                        uint64_t Hi) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value(ShardSpecSchema);
  W.key("universe").value(universeKindName(O.Universe));
  W.key("lo").value(Lo);
  W.key("hi").value(Hi);
  if (O.Universe == UniverseKind::Litmus) {
    W.key("seed").value(O.Litmus.Seed);
    W.key("tests").value(O.Litmus.Tests);
    W.key("include_classics").value(O.Litmus.IncludeClassics);
    W.key("vbmc_every").value(O.Litmus.VbmcEvery);
    W.key("vbmc_budget_seconds").value(O.Litmus.VbmcBudgetSeconds);
  } else {
    W.key("seed").value(O.Fuzz.Seed);
    W.key("count").value(O.Fuzz.Count);
    W.key("per_program_seconds").value(O.Fuzz.PerProgramSeconds);
    W.key("isolate").value(O.Fuzz.Isolate);
    W.key("mem_limit_mb").value(O.Fuzz.MemLimitMb);
  }
  W.endObject();
  return W.str();
}

namespace {

bool specUint(const json::Value &Doc, const char *Key, uint64_t &Out) {
  const json::Value *V = Doc.get(Key);
  if (!V || !V->isNumber() || V->asNumber() < 0)
    return false;
  Out = static_cast<uint64_t>(V->asNumber());
  return true;
}

bool specDouble(const json::Value &Doc, const char *Key, double &Out) {
  const json::Value *V = Doc.get(Key);
  if (!V || !V->isNumber())
    return false;
  Out = V->asNumber();
  return true;
}

bool specBool(const json::Value &Doc, const char *Key, bool &Out) {
  const json::Value *V = Doc.get(Key);
  if (!V || !V->isBool())
    return false;
  Out = V->asBool();
  return true;
}

} // namespace

bool vbmc::farm::parseShardSpec(const std::string &SpecJson, FarmOptions &O,
                                uint64_t &Lo, uint64_t &Hi,
                                std::string *Err) {
  auto Fail = [&](const std::string &What) {
    if (Err)
      *Err = std::string(ShardSpecSchema) + ": " + What;
    return false;
  };
  json::Value Doc;
  std::string PErr;
  if (!json::parse(SpecJson, Doc, &PErr))
    return Fail("bad JSON: " + PErr);
  if (!Doc.isObject())
    return Fail("not an object");
  const json::Value *Schema = Doc.get("schema");
  if (!Schema || !Schema->isString() || Schema->asString() != ShardSpecSchema)
    return Fail("bad or missing 'schema'");
  const json::Value *U = Doc.get("universe");
  if (!U || !U->isString())
    return Fail("bad or missing 'universe'");
  FarmOptions Out;
  if (U->asString() == "litmus")
    Out.Universe = UniverseKind::Litmus;
  else if (U->asString() == "fuzz")
    Out.Universe = UniverseKind::Fuzz;
  else
    return Fail("unknown universe '" + U->asString() + "'");
  uint64_t SpecLo = 0, SpecHi = 0;
  if (!specUint(Doc, "lo", SpecLo) || !specUint(Doc, "hi", SpecHi) ||
      SpecHi < SpecLo)
    return Fail("bad or missing 'lo'/'hi'");
  if (Out.Universe == UniverseKind::Litmus) {
    if (!specUint(Doc, "seed", Out.Litmus.Seed) ||
        !specUint(Doc, "tests", Out.Litmus.Tests) ||
        !specBool(Doc, "include_classics", Out.Litmus.IncludeClassics) ||
        !specUint(Doc, "vbmc_every", Out.Litmus.VbmcEvery) ||
        !specDouble(Doc, "vbmc_budget_seconds", Out.Litmus.VbmcBudgetSeconds))
      return Fail("bad or missing litmus spec field");
  } else {
    if (!specUint(Doc, "seed", Out.Fuzz.Seed) ||
        !specUint(Doc, "count", Out.Fuzz.Count) ||
        !specDouble(Doc, "per_program_seconds", Out.Fuzz.PerProgramSeconds) ||
        !specBool(Doc, "isolate", Out.Fuzz.Isolate) ||
        !specUint(Doc, "mem_limit_mb", Out.Fuzz.MemLimitMb))
      return Fail("bad or missing fuzz spec field");
  }
  if (SpecHi > farmUniverseSize(Out))
    return Fail("'hi' past the end of the universe");
  O = std::move(Out);
  Lo = SpecLo;
  Hi = SpecHi;
  return true;
}

std::string vbmc::farm::runShardSpec(const std::string &SpecJson,
                                     double DeadlineSeconds) {
  // The supervisor enforces the request deadline; the shard's results must
  // be a function of the spec alone, so the budget never reaches the
  // payload.
  (void)DeadlineSeconds;
  FarmOptions O;
  uint64_t Lo = 0, Hi = 0;
  if (!parseShardSpec(SpecJson, O, Lo, Hi))
    return "";
  return formatShardResult(runShardInProcess(O, Lo, Hi), O);
}

//===----------------------------------------------------------------------===//
// The connected farm scheduler
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

struct Flight {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  Clock::time_point Sent;
};

void clientLog(std::ostream *Log, const std::string &Line) {
  if (Log)
    *Log << Line << '\n';
}

std::string rangeStr(uint64_t Lo, uint64_t Hi) {
  return "[" + std::to_string(Lo) + ", " + std::to_string(Hi) + ")";
}

} // namespace

FarmSummary vbmc::farm::runFarmConnected(const FarmOptions &O,
                                         const ConnectOptions &C,
                                         std::ostream *Log,
                                         std::string *Err) {
  Timer Watch;
  FarmSummary S;
  StatsRegistry Stats;

  uint64_t Size = farmUniverseSize(O);
  S.UniverseSize = Size;
  uint32_t Shards = O.Shards ? O.Shards : farmDefaultShardCount(O, Size);
  auto Plan = planShards(Size, Shards);
  S.ShardsPlanned = Plan.size();

  std::deque<std::pair<uint64_t, uint64_t>> Work(Plan.begin(), Plan.end());
  std::map<std::string, Flight> InFlight;
  uint64_t NextId = 0;
  auto ThrottleUntil = Clock::now();
  bool Draining = false;

  auto recordSkipped = [&](uint64_t Lo, uint64_t Hi,
                           const std::string &Detail) {
    ShardRecord Rec;
    Rec.Lo = Lo;
    Rec.Hi = Hi;
    Rec.Outcome = "skipped";
    Rec.Detail = Detail;
    S.ShardRecords.push_back(std::move(Rec));
    Stats.addCount("farm.shards.skipped");
  };

  serve::Client Cl;
  std::string CErr;
  if (!Cl.connect(C.SocketPath, C.ConnectTimeoutSeconds, &CErr)) {
    if (Err)
      *Err = "cannot reach daemon at " + C.SocketPath + ": " + CErr;
    while (!Work.empty()) {
      recordSkipped(Work.front().first, Work.front().second,
                    "daemon unreachable before the shard ran");
      Work.pop_front();
    }
    finalizeSummary(S, O.CorpusDir);
    S.Seconds = Watch.elapsedSeconds();
    return S;
  }

  clientLog(Log, "farm: universe " +
                     std::string(universeKindName(O.Universe)) + ", " +
                     std::to_string(Size) + " tests, " +
                     std::to_string(Plan.size()) + " shards over daemon " +
                     C.SocketPath);

  Deadline FarmDeadline(O.BudgetSeconds); // Non-positive = unlimited.

  while (!Work.empty() || !InFlight.empty()) {
    // A delivered SIGTERM/SIGINT drains exactly like an exhausted budget:
    // in-flight shards still get their answers (the daemon answers every
    // accepted request), pending shards are recorded as skipped.
    if (!Draining && (FarmDeadline.expired() || signals::drainRequested()))
      Draining = true;
    if (Draining) {
      std::string Detail =
          signals::drainRequested()
              ? "farm drained on a termination signal before the shard ran"
              : "farm budget exhausted before the shard ran";
      while (!Work.empty()) {
        recordSkipped(Work.front().first, Work.front().second, Detail);
        Work.pop_front();
      }
    }

    // Keep the daemon's queue fed up to the in-flight window; the daemon
    // sheds with a retry-after hint when we outrun it.
    bool SendFailed = false;
    while (!Work.empty() &&
           InFlight.size() < std::max<size_t>(1, C.MaxInFlight) &&
           Clock::now() >= ThrottleUntil) {
      auto [Lo, Hi] = Work.front();
      Work.pop_front();
      serve::Request Req;
      Req.Id = "shard." + std::to_string(NextId++);
      Req.ShardJson = formatShardSpec(O, Lo, Hi);
      Req.DeadlineSeconds = O.ShardTimeoutSeconds;
      if (!Cl.send(Req)) {
        SendFailed = true;
        Work.push_front({Lo, Hi});
        break;
      }
      InFlight.emplace(Req.Id, Flight{Lo, Hi, Clock::now()});
    }
    if (SendFailed) {
      if (Err)
        *Err = "daemon went away mid-send";
      break;
    }
    if (InFlight.empty()) {
      if (Work.empty())
        break;
      // Throttled by a shed hint with nothing in flight: wait it out.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    serve::Response Resp;
    std::string RErr;
    if (!Cl.receive(Resp, 0.25, &RErr)) {
      if (RErr == "timeout")
        continue;
      if (Err)
        *Err = "daemon connection lost: " + RErr;
      break;
    }
    auto It = InFlight.find(Resp.Id);
    if (It == InFlight.end())
      continue; // Duplicate or unknown id.
    Flight F = It->second;
    InFlight.erase(It);

    if (Resp.Status == "shed") {
      // Admission pushback: the range goes back on the queue and the
      // submit loop honors the daemon's hint.
      Work.push_front({F.Lo, F.Hi});
      double Wait = std::min(std::max(Resp.RetryAfterSeconds, 0.01), 5.0);
      ThrottleUntil = Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(Wait));
      Stats.addCount("farm.connect.shed");
      continue;
    }
    if (Resp.Status != "ok") {
      // "rejected" means a wire-format bug on our side; no answer path
      // exists for the range, so the sweep cannot complete faithfully.
      if (Err)
        *Err = "daemon rejected shard " + rangeStr(F.Lo, F.Hi) + ": " +
               Resp.Error;
      recordSkipped(F.Lo, F.Hi,
                    "daemon rejected the shard request: " + Resp.Error);
      break;
    }

    ShardRecord Rec;
    Rec.Lo = F.Lo;
    Rec.Hi = F.Hi;
    Rec.Seconds =
        std::chrono::duration<double>(Clock::now() - F.Sent).count();

    std::string Failure =
        Resp.Failure.empty() ? std::string("none") : Resp.Failure;
    if (Failure == "none") {
      json::Value Doc;
      std::string PErr;
      ShardResult R;
      bool Usable = json::parse(Resp.ReportJson, Doc, &PErr) &&
                    parseShardResult(Doc, R, &PErr);
      if (Usable) {
        Rec.Outcome = "ok";
        mergeShardResult(S, R);
        writeShardFile(O, F.Lo, F.Hi, Resp.ReportJson);
        Stats.addCount("farm.shards.ok");
        Stats.addCount("farm.tests.done", R.Tests + R.Checked);
        Stats.addCount("farm.mismatches", R.Mismatches.size());
        Stats.addCount("farm.witnesses", R.Witnesses.size());
        Stats.addSeconds("farm.worker", R.Seconds);
        clientLog(Log, "shard " + rangeStr(F.Lo, F.Hi) + " ok: " +
                           std::to_string(R.Tests + R.Checked) + " tests, " +
                           std::to_string(R.Mismatches.size() +
                                          R.Witnesses.size()) +
                           " findings" + (Resp.Cached ? " (cached)" : ""));
        S.ShardRecords.push_back(std::move(Rec));
        continue;
      }
      // A daemon answer whose report does not parse is as dead as a
      // crashed worker: classify and descend on the range.
      Failure = "exit";
      Resp.Error = "unparseable shard report: " + PErr;
    }

    // The daemon classified a worker death on this range (shard requests
    // are exempt from its halved-bounds retry): the same split-and-requeue
    // descent as the in-process pool.
    if (F.Hi - F.Lo > 1) {
      uint64_t Mid = F.Lo + (F.Hi - F.Lo) / 2;
      Rec.Outcome = "split";
      Rec.Detail = "daemon worker " + Failure +
                   (Resp.Error.empty() ? "" : ": " + Resp.Error);
      Work.push_back({F.Lo, Mid});
      Work.push_back({Mid, F.Hi});
      Stats.addCount("farm.shards.split");
      clientLog(Log, "shard " + rangeStr(F.Lo, F.Hi) + " " + Failure +
                         ", split and requeued");
    } else {
      // A single universe index kills its worker: a finding, not a farm
      // failure. Materialize the program generator-only in the client.
      Rec.Outcome = Failure;
      Rec.Detail = "daemon worker " + Failure +
                   (Resp.Error.empty() ? "" : ": " + Resp.Error);
      WitnessRecord W;
      W.Index = F.Lo;
      W.Check = "crash";
      W.Failure = Failure;
      W.Detail = "worker died on universe index " + std::to_string(F.Lo) +
                 " (" + Failure + " under vbmc-serve)";
      W.ProgramText = ir::printProgram(universeProgramAt(O, F.Lo));
      W.Stmts = 0;
      ShardResult Failed;
      Failed.Lo = F.Lo;
      Failed.Hi = F.Hi;
      Failed.Seconds = Rec.Seconds;
      Failed.Witnesses.push_back(W);
      writeShardFile(O, F.Lo, F.Hi, formatShardResult(Failed, O));
      S.Witnesses.push_back(std::move(W));
      ++S.WorkerFailures;
      Stats.addCount("farm.worker.failures");
      clientLog(Log, "shard " + rangeStr(F.Lo, F.Hi) + " WORKER " + Failure +
                         " at index " + std::to_string(F.Lo) +
                         " (witnessed)");
    }
    S.ShardRecords.push_back(std::move(Rec));
  }

  // Ranges stranded by a connection-level failure (never by a clean run:
  // the loop above only exits with both queues empty otherwise).
  for (const auto &[Id, F] : InFlight)
    recordSkipped(F.Lo, F.Hi,
                  "daemon connection lost before the shard completed");
  while (!Work.empty()) {
    recordSkipped(Work.front().first, Work.front().second,
                  "daemon connection lost before the shard ran");
    Work.pop_front();
  }
  Cl.close();

  finalizeSummary(S, O.CorpusDir);
  for (const StatsRegistry::Entry &E : Stats.snapshot()) {
    if (E.IsCounter)
      S.StatCounts[E.Name] += E.Count;
    else
      S.StatSeconds[E.Name] += E.Seconds;
  }
  S.Seconds = Watch.elapsedSeconds();
  clientLog(Log,
            "farm: " + std::to_string(S.Tests + S.Checked) +
                " tests done, " + std::to_string(S.Mismatches.size()) +
                " mismatches, " + std::to_string(S.Witnesses.size()) +
                " witnesses (" + std::to_string(S.DedupedWitnesses) +
                " duplicates dropped), " + std::to_string(S.WorkerFailures) +
                " worker failures");
  return S;
}
