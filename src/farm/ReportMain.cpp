//===- ReportMain.cpp - the vbmc-report command-line tool -------*- C++ -*-===//
//
// Usage:
//   vbmc-report merge [--out FILE|-] [--trace-out FILE] FILE...
//
// Aggregates any mix of VBMC JSON artifacts — run reports
// (vbmc-run-report/v1), bench telemetry (vbmc-bench/v1), fuzz summaries
// (vbmc-fuzz/v1), farm shard documents (vbmc-farm-shard/v1) and Chrome
// trace exports — into one vbmc-report-merged/v1 document, plus one
// combined Chrome trace when trace inputs were present. Farm shards are
// folded through the farm library's own merge/finalize path, so the
// "farm" section of the merged artifact is bit-identical to the results
// object `vbmc-farm --json` writes for the same universe.
//
// Exit codes: 0 = merged, 1 = an input could not be read or parsed,
// 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "farm/Farm.h"
#include "support/Cli.h"
#include "vbmc/ReportMerge.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace vbmc;

namespace {

void printUsage() {
  std::puts(
      "usage: vbmc-report merge [options] FILE...\n"
      "  --out FILE|-       merged vbmc-report-merged/v1 artifact\n"
      "                     (default: stdout)\n"
      "  --trace-out FILE   combined Chrome trace (requires at least one\n"
      "                     trace input)\n"
      "  --quiet            no per-input progress lines\n"
      "inputs: vbmc-run-report/v1, vbmc-bench/v1, vbmc-fuzz/v1,\n"
      "        vbmc-farm-shard/v1, Chrome trace arrays");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool writeOutput(const std::string &Path, const std::string &Doc) {
  if (Path == "-") {
    std::printf("%s\n", Doc.c_str());
    return true;
  }
  std::ofstream Out(Path);
  Out << Doc << '\n';
  return static_cast<bool>(Out);
}

int runMerge(const CommandLine &CL,
             const std::vector<std::string> &Inputs) {
  const bool Quiet = CL.hasFlag("quiet");
  report::Merger M;

  // Farm shards fold through the farm library so the merged "farm"
  // section matches what vbmc-farm itself would have written.
  farm::FarmSummary FS;
  uint64_t ShardDocs = 0;

  int Rc = 0;
  for (const std::string &Path : Inputs) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::fprintf(stderr, "vbmc-report: cannot read '%s'\n", Path.c_str());
      Rc = 1;
      continue;
    }
    std::string Err;
    json::Value Doc;
    if (!json::parse(Text, Doc, &Err)) {
      std::fprintf(stderr, "vbmc-report: '%s': %s\n", Path.c_str(),
                   Err.c_str());
      Rc = 1;
      continue;
    }
    std::string Schema = report::schemaOf(Doc);
    if (Schema == "vbmc-farm-shard/v1") {
      farm::ShardResult R;
      if (!farm::parseShardResult(Doc, R, &Err)) {
        std::fprintf(stderr, "vbmc-report: '%s': %s\n", Path.c_str(),
                     Err.c_str());
        Rc = 1;
        continue;
      }
      farm::mergeShardResult(FS, R);
      FS.UniverseSize = std::max(FS.UniverseSize, R.Hi);
      ++FS.ShardsPlanned;
      ++ShardDocs;
      M.noteSource(Path, Schema);
    } else if (!M.add(Path, Doc, &Err)) {
      std::fprintf(stderr, "vbmc-report: '%s': %s\n", Path.c_str(),
                   Err.c_str());
      Rc = 1;
      continue;
    }
    if (!Quiet)
      std::fprintf(stderr, "vbmc-report: folded '%s' (%s)\n", Path.c_str(),
                   Schema.c_str());
  }

  if (ShardDocs) {
    // Same sort/dedup pass the farm parent runs, so reassembling shard
    // files reproduces `vbmc-farm --json`'s results object exactly.
    farm::finalizeSummary(FS, "");
    json::JsonWriter W;
    farm::writeFarmResults(W, FS);
    M.setSection("farm", W.str());
  }

  if (!writeOutput(CL.getString("out", "-"), M.formatArtifact())) {
    std::fprintf(stderr, "vbmc-report: cannot write merged artifact\n");
    return 1;
  }

  std::string TracePath = CL.getString("trace-out", "");
  if (!TracePath.empty()) {
    if (!M.hasTrace()) {
      std::fprintf(stderr,
                   "vbmc-report: --trace-out given but no trace inputs\n");
      return 1;
    }
    if (!writeOutput(TracePath, M.formatChromeTrace())) {
      std::fprintf(stderr, "vbmc-report: cannot write trace to '%s'\n",
                   TracePath.c_str());
      return 1;
    }
  }
  return Rc;
}

int runMain(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv, {"quiet", "help"});
  if (CL.hasFlag("help")) {
    printUsage();
    return 0;
  }
  std::vector<std::string> Unknown =
      CL.unknownFlags({"out", "trace-out", "quiet", "help"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "vbmc-report: unknown flag '--%s'\n", F.c_str());
    printUsage();
    return 2;
  }
  const std::vector<std::string> &Pos = CL.positionals();
  if (Pos.empty() || Pos.front() != "merge") {
    std::fprintf(stderr, "vbmc-report: expected the 'merge' subcommand\n");
    printUsage();
    return 2;
  }
  std::vector<std::string> Inputs(Pos.begin() + 1, Pos.end());
  if (Inputs.empty()) {
    std::fprintf(stderr, "vbmc-report: no input files\n");
    printUsage();
    return 2;
  }
  return runMerge(CL, Inputs);
}

} // namespace

int main(int Argc, char **Argv) {
  try {
    return runMain(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "vbmc-report: error: internal failure: %s\n",
                 E.what());
    return 1;
  }
}
