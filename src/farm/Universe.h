//===- Universe.h - deterministic litmus/fuzz work universes ----*- C++ -*-===//
///
/// \file
/// The farm's work universes: pure-function enumerations of every test a
/// sweep will run, indexable by a single integer so the universe can be
/// sharded arbitrarily. The determinism contract is the whole point —
///
///   * the set of tests, and each test's generated program, is a function
///     of the universe spec alone (seed, size, family grid), never of the
///     worker count, the shard count, or scheduling order;
///   * test #i can be rebuilt in isolation (to reproduce a failing index
///     from a farm artifact) and is bit-identical to what any shard ran.
///
/// Two universes exist:
///
///   * litmus — the Section 7 volume: the classic named shapes followed
///     by generated family members drawn round-robin from a grid of
///     family shapes (thread counts x variable counts x ops per thread x
///     CAS rates), so every prefix of the universe covers every shape;
///   * fuzz — a differential-fuzzing campaign's program stream, sliced by
///     index range (program #i is a pure function of (seed, i) already).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_FARM_UNIVERSE_H
#define VBMC_FARM_UNIVERSE_H

#include "fuzz/Fuzzer.h"
#include "litmus/Litmus.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vbmc::farm {

/// One cell of the litmus family grid: a named family shape.
struct FamilyCell {
  std::string Name;
  litmus::FamilyOptions Opts;
};

/// The family grid expanding the generator's ingredients the way the
/// paper's 4004 curated files vary theirs: thread counts {2,3} x shared
/// variables {1,2} x ops per thread {2,3} x CAS rates {0, 120 permille}.
/// Generated universe index g maps to cell g % size() — round-robin, so
/// any prefix (and any shard) samples every shape.
const std::vector<FamilyCell> &litmusFamilyGrid();

struct LitmusUniverseSpec {
  uint64_t Seed = 4004;
  /// Generated family members; the classic shapes come on top when
  /// IncludeClassics (universe size = Tests + #classics).
  uint64_t Tests = 4004;
  bool IncludeClassics = true;
  /// Every Nth universe index additionally runs the full VBMC pipeline
  /// (translate + SAT) against the oracle, not just the cheap
  /// operational-vs-axiomatic agreement check. 0 = oracle sweep only.
  uint64_t VbmcEvery = 0;
  /// Per-query budget for those VBMC runs.
  double VbmcBudgetSeconds = 10;
};

uint64_t litmusUniverseSize(const LitmusUniverseSpec &S);

/// Test #Index with oracle outcomes: classics first, then grid members.
/// Generated members are renamed "u<Index>.<cell>" so a mismatch record
/// names both its universe index and its family shape.
litmus::LitmusTest litmusTestAt(const LitmusUniverseSpec &S, uint64_t Index);

/// Program-only variant: skips the axiomatic oracle enumeration. The farm
/// parent uses this to materialize a crash witness for an index whose
/// worker died — re-running the (possibly crashing) oracle in the parent
/// would take the whole farm down with it.
ir::Program litmusProgramAt(const LitmusUniverseSpec &S, uint64_t Index);

struct FuzzUniverseSpec {
  uint64_t Seed = 1;
  /// Programs in the universe (indices 0..Count-1).
  uint64_t Count = 256;
  double PerProgramSeconds = 2;
  /// Fork each per-program differential inside the shard worker too
  /// (sandbox-in-sandbox): a crashing program becomes a classified,
  /// minimized witness inside its shard instead of killing the shard.
  bool Isolate = true;
  uint64_t MemLimitMb = 0;
  fuzz::GeneratorOptions Gen;
  fuzz::DiffOptions Diff;

  /// Mirrors the vbmc-fuzz CLI defaults (grammar extensions on, SAT
  /// unroll bound covering the largest generated loop).
  FuzzUniverseSpec();
};

/// Campaign options for the index slice [Lo, Hi) of the fuzz universe —
/// exactly that slice of the full campaign (FuzzOptions::StartIndex).
fuzz::FuzzOptions fuzzShardOptions(const FuzzUniverseSpec &S, uint64_t Lo,
                                   uint64_t Hi);

} // namespace vbmc::farm

#endif // VBMC_FARM_UNIVERSE_H
