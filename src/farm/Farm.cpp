//===- Farm.cpp - sharded litmus/fuzz worker-pool farm ----------*- C++ -*-===//

#include "farm/Farm.h"

#include "ir/Printer.h"
#include "support/CheckContext.h"
#include "support/FaultInjection.h"
#include "support/Sandbox.h"
#include "support/Signals.h"
#include "support/Timer.h"

#include <algorithm>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>

using namespace vbmc;
using namespace vbmc::farm;

const char *vbmc::farm::universeKindName(UniverseKind K) {
  return K == UniverseKind::Litmus ? "litmus" : "fuzz";
}

std::vector<std::pair<uint64_t, uint64_t>>
vbmc::farm::planShards(uint64_t Size, uint32_t Shards) {
  std::vector<std::pair<uint64_t, uint64_t>> Plan;
  if (Size == 0)
    return Plan;
  uint64_t N = std::max<uint64_t>(1, std::min<uint64_t>(Shards, Size));
  uint64_t Base = Size / N, Extra = Size % N;
  uint64_t Lo = 0;
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Hi = Lo + Base + (I < Extra ? 1 : 0);
    Plan.push_back({Lo, Hi});
    Lo = Hi;
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// The worker payload
//===----------------------------------------------------------------------===//

namespace {

uint64_t universeSize(const FarmOptions &O) {
  return O.Universe == UniverseKind::Litmus ? litmusUniverseSize(O.Litmus)
                                            : O.Fuzz.Count;
}

void runLitmusShard(const FarmOptions &O, uint64_t Lo, uint64_t Hi,
                    ShardResult &R) {
  for (uint64_t Index = Lo; Index < Hi; ++Index) {
    // Fault hook for the crash-recovery tests: universe index 3 kills its
    // worker, and the farm's binary range descent must converge on it.
    if (fault::enabled("farm.worker-crash") && Index == 3)
      std::raise(SIGSEGV);
    litmus::LitmusTest T = litmusTestAt(O.Litmus, Index);
    litmus::SweepResult Op = litmus::runOperationalSweep({T});
    ++R.Tests;
    R.Queries += Op.QueriesRun;
    R.Agreements += Op.Agreements;
    R.Inconclusive += Op.Inconclusive;
    for (const std::string &M : Op.Mismatches) {
      MismatchRecord Rec;
      Rec.Index = Index;
      Rec.Name = T.Name;
      Rec.Check = "operational-vs-axiomatic";
      Rec.Detail = M;
      R.Mismatches.push_back(std::move(Rec));
    }
    if (O.Litmus.VbmcEvery && Index % O.Litmus.VbmcEvery == 0) {
      litmus::SweepOptions SO;
      SO.BudgetSeconds = O.Litmus.VbmcBudgetSeconds;
      SO.MaxPositiveQueriesPerTest = 2;
      litmus::SweepResult Vb = litmus::runVbmcSweep({T}, SO);
      R.Queries += Vb.QueriesRun;
      R.Agreements += Vb.Agreements;
      R.Inconclusive += Vb.Inconclusive;
      for (const std::string &M : Vb.Mismatches) {
        MismatchRecord Rec;
        Rec.Index = Index;
        Rec.Name = T.Name;
        Rec.Check = "vbmc-vs-oracle";
        Rec.Detail = M;
        R.Mismatches.push_back(std::move(Rec));
      }
      R.StatCounts["farm.vbmc.queries"] += Vb.QueriesRun;
    }
  }
  R.StatCounts["farm.litmus.tests"] += R.Tests;
}

void runFuzzShard(const FarmOptions &O, uint64_t Lo, uint64_t Hi,
                  ShardResult &R) {
  if (fault::enabled("farm.worker-crash") && Lo <= 3 && 3 < Hi)
    std::raise(SIGSEGV);
  fuzz::FuzzOptions FO = fuzzShardOptions(O.Fuzz, Lo, Hi);
  fuzz::FuzzCampaignResult C = fuzz::runFuzzCampaign(FO, nullptr);
  R.Checked += C.Checked;
  R.Passed += C.Passed;
  R.Skipped += C.Skipped;
  R.Timeouts += C.Timeouts;
  for (const fuzz::FuzzDiscrepancy &D : C.Discrepancies) {
    WitnessRecord W;
    W.Index = D.Index;
    W.Check = D.Check;
    W.Detail = D.Detail;
    W.Stmts = D.Stmts;
    W.ProgramText = D.ProgramText;
    R.Witnesses.push_back(std::move(W));
  }
  R.StatCounts["farm.fuzz.programs"] += C.Checked;
  R.StatCounts["sandbox.crash"] += C.SandboxCrashes;
  R.StatCounts["sandbox.oom"] += C.SandboxOoms;
  R.StatCounts["sandbox.timeout"] += C.SandboxTimeouts;
  R.StatCounts["sandbox.retries"] += C.SandboxRetries;
}

/// The program at universe index \p Index, regenerated generator-only (no
/// oracle, no backends) — safe to run in the farm parent even when the
/// index kills a worker.
ir::Program programAt(const FarmOptions &O, uint64_t Index) {
  if (O.Universe == UniverseKind::Litmus)
    return litmusProgramAt(O.Litmus, Index);
  fuzz::FuzzOptions FO = fuzzShardOptions(O.Fuzz, Index, Index + 1);
  return fuzz::regenerateProgram(FO, Index);
}

void writeStatMaps(json::JsonWriter &W, const ShardResult &R) {
  W.key("stats").beginObject();
  for (const auto &[Name, Count] : R.StatCounts)
    W.key(Name).value(Count);
  W.endObject();
  W.key("stats_seconds").beginObject();
  for (const auto &[Name, Secs] : R.StatSeconds)
    W.key(Name).value(Secs);
  W.endObject();
}

} // namespace

ShardResult vbmc::farm::runShardInProcess(const FarmOptions &O, uint64_t Lo,
                                          uint64_t Hi) {
  ShardResult R;
  R.Lo = Lo;
  R.Hi = Hi;
  Timer Watch;
  if (O.Universe == UniverseKind::Litmus)
    runLitmusShard(O, Lo, Hi, R);
  else
    runFuzzShard(O, Lo, Hi, R);
  R.Seconds = Watch.elapsedSeconds();
  R.StatSeconds["farm.shard"] += R.Seconds;
  return R;
}

//===----------------------------------------------------------------------===//
// vbmc-farm-shard/v1 wire format
//===----------------------------------------------------------------------===//

std::string vbmc::farm::formatShardResult(const ShardResult &R,
                                          const FarmOptions &O) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value("vbmc-farm-shard/v1");
  W.key("universe").value(universeKindName(O.Universe));
  W.key("lo").value(R.Lo);
  W.key("hi").value(R.Hi);
  W.key("tests").value(R.Tests);
  W.key("queries").value(R.Queries);
  W.key("agreements").value(R.Agreements);
  W.key("inconclusive").value(R.Inconclusive);
  W.key("checked").value(R.Checked);
  W.key("passed").value(R.Passed);
  W.key("skipped").value(R.Skipped);
  W.key("timeouts").value(R.Timeouts);
  W.key("mismatches").beginArray();
  for (const MismatchRecord &M : R.Mismatches) {
    W.beginObject();
    W.key("index").value(M.Index);
    W.key("name").value(M.Name);
    W.key("check").value(M.Check);
    W.key("detail").value(M.Detail);
    W.endObject();
  }
  W.endArray();
  W.key("witnesses").beginArray();
  for (const WitnessRecord &Wit : R.Witnesses) {
    W.beginObject();
    W.key("index").value(Wit.Index);
    W.key("check").value(Wit.Check);
    W.key("failure").value(Wit.Failure);
    W.key("detail").value(Wit.Detail);
    W.key("stmts").value(Wit.Stmts);
    W.key("program").value(Wit.ProgramText);
    W.endObject();
  }
  W.endArray();
  writeStatMaps(W, R);
  W.key("seconds").value(R.Seconds);
  W.endObject();
  return W.str();
}

namespace {

bool getUint(const json::Value &Doc, const char *Key, uint64_t &Out) {
  const json::Value *V = Doc.get(Key);
  if (!V || !V->isNumber() || V->asNumber() < 0)
    return false;
  Out = static_cast<uint64_t>(V->asNumber());
  return true;
}

bool getString(const json::Value &Doc, const char *Key, std::string &Out) {
  const json::Value *V = Doc.get(Key);
  if (!V || !V->isString())
    return false;
  Out = V->asString();
  return true;
}

} // namespace

bool vbmc::farm::parseShardResult(const json::Value &Doc, ShardResult &R,
                                  std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string("vbmc-farm-shard/v1: bad or missing '") + What + "'";
    return false;
  };
  std::string Schema;
  if (!getString(Doc, "schema", Schema) || Schema != "vbmc-farm-shard/v1")
    return Fail("schema");
  ShardResult Out;
  if (!getUint(Doc, "lo", Out.Lo) || !getUint(Doc, "hi", Out.Hi))
    return Fail("lo/hi");
  if (!getUint(Doc, "tests", Out.Tests) ||
      !getUint(Doc, "queries", Out.Queries) ||
      !getUint(Doc, "agreements", Out.Agreements) ||
      !getUint(Doc, "inconclusive", Out.Inconclusive) ||
      !getUint(Doc, "checked", Out.Checked) ||
      !getUint(Doc, "passed", Out.Passed) ||
      !getUint(Doc, "skipped", Out.Skipped) ||
      !getUint(Doc, "timeouts", Out.Timeouts))
    return Fail("tallies");
  const json::Value *Mis = Doc.get("mismatches");
  if (!Mis || !Mis->isArray())
    return Fail("mismatches");
  for (const json::Value &M : Mis->array()) {
    MismatchRecord Rec;
    if (!getUint(M, "index", Rec.Index) || !getString(M, "name", Rec.Name) ||
        !getString(M, "check", Rec.Check) ||
        !getString(M, "detail", Rec.Detail))
      return Fail("mismatches[]");
    Out.Mismatches.push_back(std::move(Rec));
  }
  const json::Value *Wits = Doc.get("witnesses");
  if (!Wits || !Wits->isArray())
    return Fail("witnesses");
  for (const json::Value &V : Wits->array()) {
    WitnessRecord Rec;
    if (!getUint(V, "index", Rec.Index) || !getString(V, "check", Rec.Check) ||
        !getString(V, "failure", Rec.Failure) ||
        !getString(V, "detail", Rec.Detail) ||
        !getUint(V, "stmts", Rec.Stmts) ||
        !getString(V, "program", Rec.ProgramText))
      return Fail("witnesses[]");
    Out.Witnesses.push_back(std::move(Rec));
  }
  if (const json::Value *St = Doc.get("stats"); St && St->isObject())
    for (const auto &[Name, V] : St->members())
      if (V.isNumber())
        Out.StatCounts[Name] = static_cast<uint64_t>(V.asNumber());
  if (const json::Value *St = Doc.get("stats_seconds"); St && St->isObject())
    for (const auto &[Name, V] : St->members())
      if (V.isNumber())
        Out.StatSeconds[Name] = V.asNumber();
  if (const json::Value *S = Doc.get("seconds"); S && S->isNumber())
    Out.Seconds = S->asNumber();
  R = std::move(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Merging and the run artifact
//===----------------------------------------------------------------------===//

void vbmc::farm::mergeShardResult(FarmSummary &S, const ShardResult &R) {
  S.Tests += R.Tests;
  S.Queries += R.Queries;
  S.Agreements += R.Agreements;
  S.Inconclusive += R.Inconclusive;
  S.Checked += R.Checked;
  S.Passed += R.Passed;
  S.Skipped += R.Skipped;
  S.Timeouts += R.Timeouts;
  S.Mismatches.insert(S.Mismatches.end(), R.Mismatches.begin(),
                      R.Mismatches.end());
  S.Witnesses.insert(S.Witnesses.end(), R.Witnesses.begin(),
                     R.Witnesses.end());
  for (const auto &[Name, Count] : R.StatCounts)
    S.StatCounts[Name] += Count;
  for (const auto &[Name, Secs] : R.StatSeconds)
    S.StatSeconds[Name] += Secs;
}

void vbmc::farm::finalizeSummary(FarmSummary &S,
                                 const std::string &CorpusDir) {
  std::sort(S.Mismatches.begin(), S.Mismatches.end(),
            [](const MismatchRecord &A, const MismatchRecord &B) {
              return std::tie(A.Index, A.Check, A.Detail) <
                     std::tie(B.Index, B.Check, B.Detail);
            });
  // Dedup witnesses across shards by (check, program), keeping the lowest
  // index — a crashing program regenerated by a split half or found by
  // several fuzz shards' minimizers is one witness, not many.
  std::sort(S.Witnesses.begin(), S.Witnesses.end(),
            [](const WitnessRecord &A, const WitnessRecord &B) {
              return std::tie(A.Check, A.ProgramText, A.Index) <
                     std::tie(B.Check, B.ProgramText, B.Index);
            });
  std::vector<WitnessRecord> Unique;
  for (WitnessRecord &W : S.Witnesses) {
    if (!Unique.empty() && Unique.back().Check == W.Check &&
        Unique.back().ProgramText == W.ProgramText) {
      ++S.DedupedWitnesses;
      continue;
    }
    Unique.push_back(std::move(W));
  }
  S.Witnesses = std::move(Unique);
  std::sort(S.Witnesses.begin(), S.Witnesses.end(),
            [](const WitnessRecord &A, const WitnessRecord &B) {
              return std::tie(A.Index, A.Check) < std::tie(B.Index, B.Check);
            });
  std::sort(S.ShardRecords.begin(), S.ShardRecords.end(),
            [](const ShardRecord &A, const ShardRecord &B) {
              return std::tie(A.Lo, A.Hi, A.Outcome) <
                     std::tie(B.Lo, B.Hi, B.Outcome);
            });
  if (!CorpusDir.empty() && !S.Witnesses.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(CorpusDir, Ec);
    for (WitnessRecord &W : S.Witnesses) {
      std::string Name = "farm_u" + std::to_string(W.Index) + "_" + W.Check +
                         ".ra";
      std::filesystem::path Path = std::filesystem::path(CorpusDir) / Name;
      std::ofstream File(Path);
      File << "// vbmc-farm witness\n"
           << "// index: " << W.Index << " check: " << W.Check << "\n"
           << (W.Failure.empty() ? "" : "// failure: " + W.Failure + "\n")
           << "// detail: " << W.Detail << "\n"
           << W.ProgramText;
      if (File)
        W.Path = Path.string();
    }
  }
}

void vbmc::farm::writeFarmResults(json::JsonWriter &W, const FarmSummary &S) {
  W.beginObject();
  W.key("universe_size").value(S.UniverseSize);
  W.key("tests").value(S.Tests);
  W.key("queries").value(S.Queries);
  W.key("agreements").value(S.Agreements);
  W.key("inconclusive").value(S.Inconclusive);
  W.key("checked").value(S.Checked);
  W.key("passed").value(S.Passed);
  W.key("skipped").value(S.Skipped);
  W.key("timeouts").value(S.Timeouts);
  W.key("mismatches").beginArray();
  for (const MismatchRecord &M : S.Mismatches) {
    W.beginObject();
    W.key("index").value(M.Index);
    W.key("name").value(M.Name);
    W.key("check").value(M.Check);
    W.key("detail").value(M.Detail);
    W.endObject();
  }
  W.endArray();
  W.key("witnesses").beginArray();
  for (const WitnessRecord &Wit : S.Witnesses) {
    W.beginObject();
    W.key("index").value(Wit.Index);
    W.key("check").value(Wit.Check);
    W.key("failure").value(Wit.Failure);
    W.key("detail").value(Wit.Detail);
    W.key("stmts").value(Wit.Stmts);
    W.key("program").value(Wit.ProgramText);
    W.endObject();
  }
  W.endArray();
  W.key("clean").value(S.clean());
  W.endObject();
}

std::string vbmc::farm::formatFarmSummary(const FarmSummary &S,
                                          const FarmOptions &O,
                                          uint32_t WorkersUsed) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value("vbmc-farm/v1");
  W.key("universe").value(universeKindName(O.Universe));
  W.key("workers").value(WorkersUsed);
  W.key("shards_planned").value(S.ShardsPlanned);
  W.key("spec").beginObject();
  if (O.Universe == UniverseKind::Litmus) {
    W.key("seed").value(O.Litmus.Seed);
    W.key("tests").value(O.Litmus.Tests);
    W.key("include_classics").value(O.Litmus.IncludeClassics);
    W.key("vbmc_every").value(O.Litmus.VbmcEvery);
  } else {
    W.key("seed").value(O.Fuzz.Seed);
    W.key("count").value(O.Fuzz.Count);
    W.key("per_program_seconds").value(O.Fuzz.PerProgramSeconds);
  }
  W.endObject();
  W.key("results");
  writeFarmResults(W, S);
  W.key("shard_records").beginArray();
  for (const ShardRecord &R : S.ShardRecords) {
    W.beginObject();
    W.key("lo").value(R.Lo);
    W.key("hi").value(R.Hi);
    W.key("outcome").value(R.Outcome);
    W.key("detail").value(R.Detail);
    W.key("seconds").value(R.Seconds);
    W.endObject();
  }
  W.endArray();
  W.key("worker_failures").value(S.WorkerFailures);
  W.key("deduped_witnesses").value(S.DedupedWitnesses);
  W.key("stats").beginObject();
  for (const auto &[Name, Count] : S.StatCounts)
    W.key(Name).value(Count);
  for (const auto &[Name, Secs] : S.StatSeconds)
    W.key(Name + ".seconds").value(Secs);
  W.endObject();
  W.key("seconds").value(S.Seconds);
  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// The farm scheduler
//===----------------------------------------------------------------------===//

namespace {

uint32_t defaultShardCount(const FarmOptions &O, uint64_t Size) {
  // One shard per ~256 litmus tests / ~16 fuzz programs: large enough to
  // amortize the fork, small enough that a lost shard re-runs cheaply and
  // the pool stays load-balanced.
  uint64_t Per = O.Universe == UniverseKind::Litmus ? 256 : 16;
  return static_cast<uint32_t>(
      std::max<uint64_t>(1, (Size + Per - 1) / Per));
}

struct FarmState {
  std::mutex M;
  std::condition_variable CV;
  std::deque<std::pair<uint64_t, uint64_t>> Queue;
  uint32_t Active = 0;
  FarmSummary Summary;
  StatsRegistry Stats;
  std::ostream *Log = nullptr;
};

void logLine(FarmState &St, const std::string &Line) {
  // Callers hold St.M, so shard-completion lines never interleave.
  if (St.Log)
    *St.Log << Line << '\n';
}

void workerLoop(const FarmOptions &O, const Deadline &FarmDeadline,
                FarmState &St) {
  for (;;) {
    uint64_t Lo, Hi;
    {
      std::unique_lock<std::mutex> Lock(St.M);
      St.CV.wait(Lock,
                 [&] { return !St.Queue.empty() || St.Active == 0; });
      if (St.Queue.empty())
        return; // Active == 0: nobody can requeue anything; drain done.
      std::tie(Lo, Hi) = St.Queue.front();
      St.Queue.pop_front();
      ++St.Active;
    }

    Timer Watch;
    ShardRecord Rec;
    Rec.Lo = Lo;
    Rec.Hi = Hi;

    // A delivered SIGTERM/SIGINT drains exactly like an exhausted budget:
    // in-flight shards finish, pending shards are recorded as skipped, and
    // the merged artifact is written through the normal exit path.
    if (FarmDeadline.expired() || signals::drainRequested()) {
      Rec.Outcome = "skipped";
      Rec.Detail = signals::drainRequested()
                       ? "farm drained on a termination signal before the "
                         "shard ran"
                       : "farm budget exhausted before the shard ran";
      std::lock_guard<std::mutex> Lock(St.M);
      St.Summary.ShardRecords.push_back(std::move(Rec));
      St.Stats.addCount("farm.shards.skipped");
      --St.Active;
      St.CV.notify_all();
      continue;
    }

    sandbox::SandboxOptions SO;
    SO.MemLimitBytes = O.MemLimitMb << 20;
    SO.TimeoutSeconds = O.ShardTimeoutSeconds;
    sandbox::SandboxOutcome Out = sandbox::runInSandbox(SO, [&] {
      return formatShardResult(runShardInProcess(O, Lo, Hi), O);
    });
    Rec.Seconds = Watch.elapsedSeconds();

    ShardResult R;
    bool Usable = false;
    std::string ParseErr;
    if (Out.Completed) {
      json::Value Doc;
      Usable = json::parse(Out.Payload, Doc, &ParseErr) &&
               parseShardResult(Doc, R, &ParseErr);
      if (!Usable) {
        // A completed child whose report does not parse is as dead as a
        // crashed one: classify and descend on the range.
        Out.Failure = sandbox::FailureKind::ExitFailure;
        Out.Detail = "unparseable shard report: " + ParseErr;
      }
    }

    std::lock_guard<std::mutex> Lock(St.M);
    if (Usable) {
      Rec.Outcome = "ok";
      mergeShardResult(St.Summary, R);
      writeShardFile(O, Lo, Hi, Out.Payload);
      St.Stats.addCount("farm.shards.ok");
      St.Stats.addCount("farm.tests.done", R.Tests + R.Checked);
      St.Stats.addCount("farm.mismatches", R.Mismatches.size());
      St.Stats.addCount("farm.witnesses", R.Witnesses.size());
      St.Stats.addSeconds("farm.worker", R.Seconds);
      logLine(St, "shard [" + std::to_string(Lo) + ", " +
                      std::to_string(Hi) + ") ok: " +
                      std::to_string(R.Tests + R.Checked) + " tests, " +
                      std::to_string(R.Mismatches.size() +
                                     R.Witnesses.size()) +
                      " findings");
    } else if (Hi - Lo > 1) {
      // The worker died somewhere in [Lo, Hi): split and requeue both
      // halves. The descent isolates the killing index in log2(|range|)
      // re-runs while every innocent index still gets processed.
      uint64_t Mid = Lo + (Hi - Lo) / 2;
      Rec.Outcome = "split";
      Rec.Detail = Out.Detail;
      St.Queue.push_back({Lo, Mid});
      St.Queue.push_back({Mid, Hi});
      St.Stats.addCount("farm.shards.split");
      logLine(St, "shard [" + std::to_string(Lo) + ", " +
                      std::to_string(Hi) + ") " +
                      sandbox::failureKindName(Out.Failure) +
                      ", split and requeued");
    } else {
      // A single universe index kills its worker: that is a finding, not
      // a farm failure. Materialize the program generator-only (running
      // the oracle here could take the parent down with the same bug).
      Rec.Outcome = sandbox::failureKindName(Out.Failure);
      Rec.Detail = Out.Detail;
      WitnessRecord W;
      W.Index = Lo;
      W.Check = "crash";
      W.Failure = sandbox::failureKindName(Out.Failure);
      W.Detail = "worker died on universe index " + std::to_string(Lo) +
                 (Out.Detail.empty() ? "" : ": " + Out.Detail);
      W.ProgramText = ir::printProgram(programAt(O, Lo));
      W.Stmts = 0;
      // Witnessed failures get a shard document too: a --shard-dir
      // reassembled by `vbmc-report merge` must not lose the crash
      // findings that only the parent-side descent discovered.
      ShardResult Failed;
      Failed.Lo = Lo;
      Failed.Hi = Hi;
      Failed.Seconds = Rec.Seconds;
      Failed.Witnesses.push_back(W);
      writeShardFile(O, Lo, Hi, formatShardResult(Failed, O));
      St.Summary.Witnesses.push_back(std::move(W));
      ++St.Summary.WorkerFailures;
      St.Stats.addCount("farm.worker.failures");
      logLine(St, "shard [" + std::to_string(Lo) + ", " +
                      std::to_string(Hi) + ") WORKER " +
                      std::string(sandbox::failureKindName(Out.Failure)) +
                      " at index " + std::to_string(Lo) + " (witnessed)");
    }
    St.Summary.ShardRecords.push_back(std::move(Rec));
    --St.Active;
    St.CV.notify_all();
  }
}

} // namespace

uint64_t vbmc::farm::farmUniverseSize(const FarmOptions &O) {
  return universeSize(O);
}

ir::Program vbmc::farm::universeProgramAt(const FarmOptions &O,
                                          uint64_t Index) {
  return programAt(O, Index);
}

uint32_t vbmc::farm::farmDefaultShardCount(const FarmOptions &O,
                                           uint64_t Size) {
  return defaultShardCount(O, Size);
}

void vbmc::farm::writeShardFile(const FarmOptions &O, uint64_t Lo,
                                uint64_t Hi, const std::string &Doc) {
  if (O.ShardDir.empty())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(O.ShardDir, Ec);
  std::filesystem::path Path =
      std::filesystem::path(O.ShardDir) /
      ("shard_" + std::to_string(Lo) + "_" + std::to_string(Hi) + ".json");
  std::ofstream File(Path);
  File << Doc << '\n';
}

FarmSummary vbmc::farm::runFarm(const FarmOptions &O, std::ostream *Log) {
  Timer Watch;
  FarmState St;
  St.Log = Log;

  uint64_t Size = universeSize(O);
  St.Summary.UniverseSize = Size;
  uint32_t Shards = O.Shards ? O.Shards : defaultShardCount(O, Size);
  auto Plan = planShards(Size, Shards);
  St.Summary.ShardsPlanned = Plan.size();
  for (const auto &P : Plan)
    St.Queue.push_back(P);

  uint32_t Workers = O.Workers ? O.Workers
                               : std::max(1u, std::thread::hardware_concurrency());
  if (Plan.size() && Workers > Plan.size())
    Workers = static_cast<uint32_t>(Plan.size());
  Workers = std::max(1u, Workers);

  if (Log)
    *Log << "farm: universe " << universeKindName(O.Universe) << ", "
         << Size << " tests, " << Plan.size() << " shards, " << Workers
         << " workers\n";

  Deadline FarmDeadline(O.BudgetSeconds); // Non-positive = unlimited.

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (uint32_t I = 0; I < Workers; ++I)
    Pool.emplace_back(
        [&] { workerLoop(O, FarmDeadline, St); });
  for (std::thread &T : Pool)
    T.join();

  finalizeSummary(St.Summary, O.CorpusDir);
  for (const StatsRegistry::Entry &E : St.Stats.snapshot()) {
    if (E.IsCounter)
      St.Summary.StatCounts[E.Name] += E.Count;
    else
      St.Summary.StatSeconds[E.Name] += E.Seconds;
  }
  St.Summary.Seconds = Watch.elapsedSeconds();
  if (Log)
    *Log << "farm: " << (St.Summary.Tests + St.Summary.Checked)
         << " tests done, " << St.Summary.Mismatches.size()
         << " mismatches, " << St.Summary.Witnesses.size() << " witnesses ("
         << St.Summary.DedupedWitnesses << " duplicates dropped), "
         << St.Summary.WorkerFailures << " worker failures\n";
  return St.Summary;
}
