//===- Universe.cpp - deterministic work universes --------------*- C++ -*-===//

#include "farm/Universe.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::farm;

const std::vector<FamilyCell> &vbmc::farm::litmusFamilyGrid() {
  static const std::vector<FamilyCell> Grid = [] {
    std::vector<FamilyCell> G;
    for (uint32_t Threads : {2u, 3u})
      for (uint32_t Vars : {1u, 2u})
        for (uint32_t Ops : {2u, 3u})
          for (uint32_t Cas : {0u, 120u}) {
            FamilyCell C;
            C.Name = "t" + std::to_string(Threads) + "v" +
                     std::to_string(Vars) + "o" + std::to_string(Ops) +
                     (Cas ? "c" : "");
            C.Opts.MaxThreads = Threads;
            C.Opts.MaxVars = Vars;
            C.Opts.MaxOpsPerThread = Ops;
            C.Opts.CasPermille = Cas;
            G.push_back(std::move(C));
          }
    return G;
  }();
  return Grid;
}

namespace {

/// Classic shapes, built once (the oracle runs are milliseconds each).
const std::vector<litmus::LitmusTest> &classics() {
  static const std::vector<litmus::LitmusTest> C = litmus::classicTests();
  return C;
}

} // namespace

uint64_t vbmc::farm::litmusUniverseSize(const LitmusUniverseSpec &S) {
  return S.Tests + (S.IncludeClassics ? classics().size() : 0);
}

litmus::LitmusTest vbmc::farm::litmusTestAt(const LitmusUniverseSpec &S,
                                            uint64_t Index) {
  uint64_t G = Index;
  if (S.IncludeClassics) {
    const auto &C = classics();
    if (Index < C.size())
      return C[Index];
    G -= C.size();
  }
  const auto &Grid = litmusFamilyGrid();
  const FamilyCell &Cell = Grid[G % Grid.size()];
  litmus::LitmusTest T = litmus::generateFamilyTest(S.Seed, G, Cell.Opts);
  T.Name = "u" + std::to_string(Index) + "." + Cell.Name;
  return T;
}

ir::Program vbmc::farm::litmusProgramAt(const LitmusUniverseSpec &S,
                                        uint64_t Index) {
  uint64_t G = Index;
  if (S.IncludeClassics) {
    const auto &C = classics();
    if (Index < C.size())
      return C[Index].Prog;
    G -= C.size();
  }
  const auto &Grid = litmusFamilyGrid();
  return litmus::generateFamilyProgram(S.Seed, G,
                                       Grid[G % Grid.size()].Opts);
}

FuzzUniverseSpec::FuzzUniverseSpec() {
  // The vbmc-fuzz CLI defaults: full grammar, SAT unroll bound covering
  // the largest generated loop trip count.
  Gen.CasPermille = 150;
  Gen.AssertPermille = 700;
  Gen.FencePermille = 50;
  Gen.NondetPermille = 50;
  Gen.LoopPermille = 30;
  Diff.K = 1;
  Diff.L = std::max(3u, Gen.LoopTripMax + 1);
  Diff.CasAllowance = 0; // auto-size per program
}

fuzz::FuzzOptions vbmc::farm::fuzzShardOptions(const FuzzUniverseSpec &S,
                                               uint64_t Lo, uint64_t Hi) {
  fuzz::FuzzOptions O;
  O.Seed = S.Seed;
  O.StartIndex = Lo;
  O.Count = Hi - Lo;
  O.BudgetSeconds = 0; // The shard sandbox's deadline governs the slice.
  O.PerProgramSeconds = S.PerProgramSeconds;
  O.Isolate = S.Isolate;
  O.MemLimitMb = S.MemLimitMb;
  O.Gen = S.Gen;
  O.Diff = S.Diff;
  return O;
}
