//===- FarmMain.cpp - the vbmc-farm command-line tool -----------*- C++ -*-===//
//
// Usage:
//   vbmc-farm [options]             run a sharded sweep over a universe
//   vbmc-farm --index I [options]   re-run one universe index in-process
//
// Shards a deterministic work universe — the litmus family grid (the
// Section 7 volume) or a fuzz campaign's seed range — across N sandboxed
// worker processes. The set of tests run, and every test's generated
// program, is a pure function of the universe spec: worker count, shard
// count and scheduling order never change what runs, so merged results are
// bit-identical across --workers values. A worker that crashes, OOMs or
// hangs has its range split and requeued until the killing index is
// isolated and recorded as a corpus witness; the run always completes.
//
// Exit codes: 0 = clean sweep, 1 = mismatches or witnesses found,
// 2 = usage error, 3 = internal failure.
//
//===----------------------------------------------------------------------===//

#include "farm/Farm.h"
#include "farm/FarmClient.h"
#include "ir/Printer.h"
#include "support/Cli.h"
#include "support/FaultInjection.h"
#include "support/Signals.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <new>
#include <thread>

using namespace vbmc;
using namespace vbmc::farm;

namespace {

void printUsage() {
  std::puts(
      "usage: vbmc-farm [options]\n"
      "  --universe litmus|fuzz  work universe (default litmus)\n"
      "  --workers N        worker processes (default: hardware cores)\n"
      "  --shards N         shards the universe is cut into (default:\n"
      "                     auto; deterministic, never derived from\n"
      "                     --workers)\n"
      "  --seed N           universe seed (default 4004 litmus / 1 fuzz)\n"
      "litmus universe:\n"
      "  --tests N          generated family members (default 4004, the\n"
      "                     paper's Section 7 volume; classics on top)\n"
      "  --no-classics      family members only\n"
      "  --vbmc-every N     every Nth index also runs the full VBMC\n"
      "                     pipeline (translate + SAT) against the oracle\n"
      "                     (default 0 = oracle sweep only)\n"
      "  --vbmc-budget SEC  per-query budget for those runs (default 10)\n"
      "fuzz universe:\n"
      "  --count N          programs in the universe (default 256)\n"
      "  --per-program SEC  budget slice per program (default 2)\n"
      "farm governance:\n"
      "  --budget SEC       whole-farm wall clock (default 0 = unlimited;\n"
      "                     shards still pending at expiry are recorded\n"
      "                     as skipped)\n"
      "  --shard-timeout S  per-shard sandbox deadline (default 600)\n"
      "  --mem-limit-mb N   address-space headroom per worker (default 0)\n"
      "daemon mode:\n"
      "  --connect SOCK     run shards on the vbmc-serve daemon at SOCK\n"
      "                     instead of a local worker pool (merged results\n"
      "                     stay bit-identical; --workers/--mem-limit-mb\n"
      "                     are the daemon's to govern)\n"
      "  --connect-timeout S  wait up to S seconds for the daemon\n"
      "                     (default 10)\n"
      "outputs:\n"
      "  --json FILE|-      write the merged vbmc-farm/v1 artifact\n"
      "  --shard-dir DIR    write each shard's vbmc-farm-shard/v1 document\n"
      "                     (the inputs `vbmc-report merge` reassembles)\n"
      "  --corpus DIR       write deduped witness reproducers into DIR\n"
      "  --quiet            summary line only\n"
      "reproduce:\n"
      "  --index I          run universe index I in-process and print the\n"
      "                     test, its program and the verdicts (the path\n"
      "                     from a farm artifact back to one failure)");
}

FarmOptions optionsFromArgs(const CommandLine &CL, bool &Ok) {
  Ok = true;
  FarmOptions O;
  std::string U = CL.getString("universe", "litmus");
  if (U == "litmus") {
    O.Universe = UniverseKind::Litmus;
  } else if (U == "fuzz") {
    O.Universe = UniverseKind::Fuzz;
  } else {
    std::fprintf(stderr, "vbmc-farm: unknown universe '%s'\n", U.c_str());
    Ok = false;
    return O;
  }
  O.Workers = static_cast<uint32_t>(CL.getInt("workers", 0));
  O.Shards = static_cast<uint32_t>(CL.getInt("shards", 0));
  O.Litmus.Seed = static_cast<uint64_t>(CL.getInt("seed", 4004));
  O.Litmus.Tests = static_cast<uint64_t>(CL.getInt("tests", 4004));
  O.Litmus.IncludeClassics = !CL.hasFlag("no-classics");
  O.Litmus.VbmcEvery = static_cast<uint64_t>(CL.getInt("vbmc-every", 0));
  O.Litmus.VbmcBudgetSeconds = CL.getDouble("vbmc-budget", 10);
  O.Fuzz.Seed = static_cast<uint64_t>(CL.getInt("seed", 1));
  O.Fuzz.Count = static_cast<uint64_t>(CL.getInt("count", 256));
  O.Fuzz.PerProgramSeconds = CL.getDouble("per-program", 2);
  O.Fuzz.MemLimitMb = static_cast<uint64_t>(CL.getInt("mem-limit-mb", 0));
  O.BudgetSeconds = CL.getDouble("budget", 0);
  O.ShardTimeoutSeconds = CL.getDouble("shard-timeout", 600);
  O.MemLimitMb = static_cast<uint64_t>(CL.getInt("mem-limit-mb", 0));
  O.CorpusDir = CL.getString("corpus");
  O.ShardDir = CL.getString("shard-dir");
  return O;
}

/// The --index reproduction path: run one universe index in-process (no
/// sandbox, no pool) and print everything a bug report needs.
int runSingleIndex(const FarmOptions &O, uint64_t Index) {
  uint64_t Size = O.Universe == UniverseKind::Litmus
                      ? litmusUniverseSize(O.Litmus)
                      : O.Fuzz.Count;
  if (Index >= Size) {
    std::fprintf(stderr,
                 "vbmc-farm: index %llu outside the universe [0, %llu)\n",
                 static_cast<unsigned long long>(Index),
                 static_cast<unsigned long long>(Size));
    return 2;
  }
  if (O.Universe == UniverseKind::Litmus) {
    litmus::LitmusTest T = litmusTestAt(O.Litmus, Index);
    std::printf("universe index %llu: %s\n",
                static_cast<unsigned long long>(Index), T.Name.c_str());
    std::printf("%s\n", ir::printProgram(T.Prog).c_str());
  }
  ShardResult R = runShardInProcess(O, Index, Index + 1);
  std::printf("%s\n", formatShardResult(R, O).c_str());
  return R.Mismatches.empty() && R.Witnesses.empty() ? 0 : 1;
}

int runMain(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv,
                                      {"no-classics", "quiet", "help"});
  if (CL.hasFlag("help")) {
    printUsage();
    return 0;
  }
  std::vector<std::string> Unknown = CL.unknownFlags(
      {"universe", "workers", "shards", "seed", "tests", "no-classics",
       "vbmc-every", "vbmc-budget", "count", "per-program", "budget",
       "shard-timeout", "mem-limit-mb", "json", "shard-dir", "corpus",
       "index", "inject-fault", "quiet", "help", "connect",
       "connect-timeout"});
  if (!Unknown.empty() || !CL.positionals().empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "vbmc-farm: unknown flag '--%s'\n", F.c_str());
    for (const std::string &P : CL.positionals())
      std::fprintf(stderr, "vbmc-farm: unexpected argument '%s'\n",
                   P.c_str());
    printUsage();
    return 2;
  }

  // Hidden self-test hook (see support/FaultInjection.h): lets CI prove
  // the farm survives a crashing worker.
  if (CL.hasFlag("inject-fault"))
    fault::enable(CL.getString("inject-fault"));

  bool Ok = false;
  FarmOptions O = optionsFromArgs(CL, Ok);
  if (!Ok)
    return 2;

  // SIGTERM/SIGINT drain instead of killing the farm mid-write: pending
  // shards are skipped, in-flight shards finish, and the merged JSON
  // artifact still goes out through the normal exit path.
  signals::installDrainHandlers();

  if (CL.hasFlag("index"))
    return runSingleIndex(O, static_cast<uint64_t>(CL.getInt("index", 0)));

  const bool Quiet = CL.hasFlag("quiet");
  FarmSummary S;
  std::string Connect = CL.getString("connect", "");
  if (!Connect.empty()) {
    // Daemon-client mode: the vbmc-serve daemon is the worker pool; the
    // merge, split-descent and artifacts stay client-side.
    ConnectOptions CO;
    CO.SocketPath = Connect;
    CO.ConnectTimeoutSeconds = CL.getDouble("connect-timeout", 10);
    std::string Err;
    S = runFarmConnected(O, CO, Quiet ? nullptr : &std::cout, &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "vbmc-farm: %s\n", Err.c_str());
      return 3;
    }
  } else {
    S = runFarm(O, Quiet ? nullptr : &std::cout);
  }
  if (Quiet)
    std::printf("farm: %llu tests, %zu mismatches, %zu witnesses\n",
                static_cast<unsigned long long>(S.Tests + S.Checked),
                S.Mismatches.size(), S.Witnesses.size());

  std::string JsonPath = CL.getString("json", "");
  if (!JsonPath.empty()) {
    uint32_t WorkersUsed = O.Workers
                               ? O.Workers
                               : std::max(1u, std::thread::hardware_concurrency());
    std::string Doc = formatFarmSummary(S, O, WorkersUsed);
    if (JsonPath == "-") {
      std::printf("%s\n", Doc.c_str());
    } else {
      std::ofstream Out(JsonPath);
      Out << Doc << '\n';
      if (!Out) {
        std::fprintf(stderr, "vbmc-farm: cannot write summary to '%s'\n",
                     JsonPath.c_str());
        return 3;
      }
    }
  }
  return S.clean() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  try {
    return runMain(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "vbmc-farm: error: out of memory (failure=oom)\n");
    return 3;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "vbmc-farm: error: internal failure: %s\n",
                 E.what());
    return 3;
  }
}
