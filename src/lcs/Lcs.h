//===- Lcs.h - lossy channel systems ------------------------------*- C++ -*-===//
///
/// \file
/// Lossy channel systems and their coverability problem — the machinery
/// behind Theorem 4.3's non-primitive-recursive lower bound for RA
/// reachability without CAS (the paper reduces LCS reachability to it,
/// "similar to the case of TSO [6]"; DESIGN.md records that we build the
/// substrate and its decision procedure rather than re-deriving the
/// unpublished program encoding).
///
/// Two engines:
///  * a forward explorer with explicit lossiness (exact on bounded
///    channel lengths, used for cross-checking);
///  * the classic Abdulla-Jonsson backward coverability algorithm over
///    upward-closed sets represented by their minimal elements under the
///    subword well-quasi-order (Higman's lemma guarantees termination,
///    and the algorithm's complexity is exactly the non-primitive
///    recursive blow-up the lower bound exploits).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_LCS_LCS_H
#define VBMC_LCS_LCS_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vbmc::lcs {

/// A channel operation.
enum class ChanOp : uint8_t {
  Nop,  ///< Pure control transition.
  Send, ///< Append Symbol to the channel.
  Recv, ///< Consume Symbol from the head of the channel.
};

struct LcsTransition {
  uint32_t From;
  uint32_t To;
  ChanOp Op = ChanOp::Nop;
  uint32_t Channel = 0;
  uint8_t Symbol = 0;
};

/// A lossy channel system. State 0 is initial; channels start empty.
struct Lcs {
  uint32_t NumStates = 1;
  uint32_t NumChannels = 1;
  uint32_t AlphabetSize = 2; ///< Symbols are 0 .. AlphabetSize-1.
  std::vector<LcsTransition> Transitions;

  bool valid() const;
};

/// Is \p A a (not necessarily contiguous) subword of \p B?
bool isSubword(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B);

struct CoverResult {
  bool Coverable = false;
  /// Minimal-element sets processed by the backward algorithm (a proxy
  /// for the WQO blow-up).
  uint64_t MinimalSetsExplored = 0;
  uint64_t Iterations = 0;
};

/// Backward coverability: can a configuration with control state
/// \p Target (any channel contents) be reached from (0, empty channels)?
CoverResult coverable(const Lcs &L, uint32_t Target);

/// Forward reachability with channels truncated at \p MaxChannelLength
/// (losses enumerated eagerly): under-approximates coverability; with
/// channels bounded by the true witness it is exact. Used to cross-check
/// the backward engine.
bool forwardCoverable(const Lcs &L, uint32_t Target,
                      uint32_t MaxChannelLength, uint64_t MaxStates);

/// Random LCS generator for the differential tests.
Lcs makeRandomLcs(Rng &R, uint32_t States, uint32_t Channels,
                  uint32_t Alphabet, uint32_t Transitions);

} // namespace vbmc::lcs

#endif // VBMC_LCS_LCS_H
