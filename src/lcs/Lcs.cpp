//===- Lcs.cpp - coverability engines ---------------------------*- C++ -*-===//

#include "lcs/Lcs.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace vbmc;
using namespace vbmc::lcs;

bool Lcs::valid() const {
  for (const LcsTransition &T : Transitions) {
    if (T.From >= NumStates || T.To >= NumStates)
      return false;
    if (T.Op != ChanOp::Nop &&
        (T.Channel >= NumChannels || T.Symbol >= AlphabetSize))
      return false;
  }
  return NumStates > 0;
}

bool vbmc::lcs::isSubword(const std::vector<uint8_t> &A,
                          const std::vector<uint8_t> &B) {
  size_t I = 0;
  for (uint8_t C : B) {
    if (I < A.size() && A[I] == C)
      ++I;
  }
  return I == A.size();
}

namespace {

/// A minimal element of an upward-closed set of configurations.
struct MinConfig {
  uint32_t State;
  std::vector<std::vector<uint8_t>> Channels;

  bool operator==(const MinConfig &) const = default;
  bool operator<(const MinConfig &O) const {
    if (State != O.State)
      return State < O.State;
    return Channels < O.Channels;
  }

  /// Pointwise subword order (the WQO): this <= O means the upward
  /// closure of O is contained in ours.
  bool coveredBy(const MinConfig &O) const {
    if (State != O.State)
      return false;
    for (size_t C = 0; C < Channels.size(); ++C)
      if (!isSubword(O.Channels[C], Channels[C]))
        return false;
    return true;
  }
};

/// Inserts \p M keeping \p Set an antichain of minimal elements; returns
/// true if \p M was genuinely new (not covered by an existing element).
bool insertMinimal(std::vector<MinConfig> &Set, MinConfig M) {
  for (const MinConfig &E : Set)
    if (M.coveredBy(E))
      return false;
  std::erase_if(Set, [&](const MinConfig &E) { return E.coveredBy(M); });
  Set.push_back(std::move(M));
  return true;
}

} // namespace

CoverResult vbmc::lcs::coverable(const Lcs &L, uint32_t Target) {
  CoverResult R;
  // Start: the upward closure of (Target, empty channels).
  std::vector<MinConfig> Minimals;
  std::deque<MinConfig> Worklist;
  MinConfig Seed{Target,
                 std::vector<std::vector<uint8_t>>(L.NumChannels)};
  Minimals.push_back(Seed);
  Worklist.push_back(std::move(Seed));

  auto isInitial = [&](const MinConfig &M) {
    if (M.State != 0)
      return false;
    for (const auto &Ch : M.Channels)
      if (!Ch.empty())
        return false;
    return true;
  };
  if (isInitial(Minimals.front())) {
    R.Coverable = true;
    return R;
  }

  while (!Worklist.empty()) {
    ++R.Iterations;
    MinConfig M = std::move(Worklist.front());
    Worklist.pop_front();

    for (const LcsTransition &T : L.Transitions) {
      if (T.To != M.State)
        continue;
      MinConfig Pred = M;
      Pred.State = T.From;
      switch (T.Op) {
      case ChanOp::Nop:
        break;
      case ChanOp::Send: {
        // Executing c!a appends a; a minimal predecessor requirement
        // drops a trailing a (if present) — otherwise the appended symbol
        // was lost and the requirement is unchanged.
        auto &Ch = Pred.Channels[T.Channel];
        if (!Ch.empty() && Ch.back() == T.Symbol)
          Ch.pop_back();
        break;
      }
      case ChanOp::Recv: {
        // Executing c?a consumed a leading a: the predecessor must offer
        // it in front of the current requirement.
        auto &Ch = Pred.Channels[T.Channel];
        Ch.insert(Ch.begin(), T.Symbol);
        break;
      }
      }
      if (isInitial(Pred)) {
        R.Coverable = true;
        R.MinimalSetsExplored = Minimals.size();
        return R;
      }
      if (insertMinimal(Minimals, Pred))
        Worklist.push_back(std::move(Pred));
    }
  }
  R.MinimalSetsExplored = Minimals.size();
  return R;
}

bool vbmc::lcs::forwardCoverable(const Lcs &L, uint32_t Target,
                                 uint32_t MaxChannelLength,
                                 uint64_t MaxStates) {
  struct Config {
    uint32_t State;
    std::vector<std::vector<uint8_t>> Channels;
    bool operator<(const Config &O) const {
      if (State != O.State)
        return State < O.State;
      return Channels < O.Channels;
    }
  };
  std::set<Config> Visited;
  std::deque<Config> Frontier;
  Config Init{0, std::vector<std::vector<uint8_t>>(L.NumChannels)};
  Visited.insert(Init);
  Frontier.push_back(std::move(Init));
  uint64_t Expanded = 0;

  auto enqueue = [&](Config C) {
    if (Visited.insert(C).second)
      Frontier.push_back(std::move(C));
  };

  while (!Frontier.empty()) {
    if (MaxStates && ++Expanded > MaxStates)
      return false;
    Config C = std::move(Frontier.front());
    Frontier.pop_front();
    if (C.State == Target)
      return true;

    for (const LcsTransition &T : L.Transitions) {
      if (T.From != C.State)
        continue;
      switch (T.Op) {
      case ChanOp::Nop: {
        Config N = C;
        N.State = T.To;
        enqueue(std::move(N));
        break;
      }
      case ChanOp::Send: {
        // Message kept (if it fits the bound)...
        if (C.Channels[T.Channel].size() < MaxChannelLength) {
          Config N = C;
          N.State = T.To;
          N.Channels[T.Channel].push_back(T.Symbol);
          enqueue(std::move(N));
        }
        // ... or lost in transit.
        Config NLost = C;
        NLost.State = T.To;
        enqueue(std::move(NLost));
        break;
      }
      case ChanOp::Recv: {
        auto &Ch = C.Channels[T.Channel];
        // Lossiness: any prefix of the channel may vanish before the
        // receive; the receive fires on the first surviving symbol.
        for (size_t Drop = 0; Drop < Ch.size(); ++Drop) {
          if (Ch[Drop] != T.Symbol)
            continue;
          Config N = C;
          N.State = T.To;
          N.Channels[T.Channel].assign(Ch.begin() + Drop + 1, Ch.end());
          enqueue(std::move(N));
        }
        break;
      }
      }
    }
  }
  return false;
}

Lcs vbmc::lcs::makeRandomLcs(Rng &R, uint32_t States, uint32_t Channels,
                             uint32_t Alphabet, uint32_t Transitions) {
  Lcs L;
  L.NumStates = States;
  L.NumChannels = Channels;
  L.AlphabetSize = Alphabet;
  for (uint32_t I = 0; I < Transitions; ++I) {
    LcsTransition T;
    T.From = static_cast<uint32_t>(R.nextBelow(States));
    T.To = static_cast<uint32_t>(R.nextBelow(States));
    switch (R.nextBelow(3)) {
    case 0:
      T.Op = ChanOp::Nop;
      break;
    case 1:
      T.Op = ChanOp::Send;
      break;
    default:
      T.Op = ChanOp::Recv;
      break;
    }
    if (T.Op != ChanOp::Nop) {
      T.Channel = static_cast<uint32_t>(R.nextBelow(Channels));
      T.Symbol = static_cast<uint8_t>(R.nextBelow(Alphabet));
    }
    L.Transitions.push_back(T);
  }
  return L;
}
