//===- Solver.h - CDCL SAT solver --------------------------------*- C++ -*-===//
///
/// \file
/// A from-scratch CDCL SAT solver in the MiniSat lineage, standing in for
/// the SAT engine inside CBMC (the paper's backend). Features:
///
///  * contiguous arena clause storage (32-bit refs) with relocating
///    garbage collection triggered by the wasted-bytes ratio,
///  * two-watched-literal propagation with a blocker-literal fast path,
///  * first-UIP conflict analysis with clause minimization,
///  * exponential VSIDS activities with phase saving,
///  * Luby-sequence restarts,
///  * LBD-based learnt-clause database reduction,
///  * solving under assumptions,
///  * conflict / propagation / wall-clock budgets plus an asynchronous
///    interrupt() for anytime use,
///  * polarity modes (saved / positive / negative / random-seeded),
///  * top-level inprocessing (subsumption + self-subsuming resolution)
///    between solves.
///
/// All budgets, assumptions and polarity controls travel in one SolveSpec
/// (see support/Budget.h for the cross-backend budget vocabulary); the
/// historical positional `solve(Assumptions, MaxConflicts, DL, Cancel)`
/// overload remains for one release as a deprecated shim.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SAT_SOLVER_H
#define VBMC_SAT_SOLVER_H

#include "support/Budget.h"
#include "support/CheckContext.h"
#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace vbmc::sat {

/// Boolean variable index (0-based).
using Var = uint32_t;

/// A literal: variable with sign, encoded as 2*var + (negated ? 1 : 0).
class Lit {
public:
  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const = default;

  /// Raw encoding, usable as an array index.
  uint32_t code() const { return Code; }

private:
  uint32_t Code = 0;
};

inline Lit mkLit(Var V) { return Lit(V, false); }

enum class SolveResult {
  Sat,
  Unsat,
  Unknown, ///< Budget exhausted, cancelled, or interrupted.
};

/// Decision polarity policy for unforced branch literals.
enum class PhaseMode {
  Saved,    ///< Last assigned polarity (classic phase saving; default).
  Positive, ///< Always branch true first.
  Negative, ///< Always branch false first.
  Random,   ///< Seeded pseudo-random polarity per decision.
};

/// Everything one solve() call needs: assumptions, budgets, cancellation
/// and polarity policy. Replaces the positional-argument spread that used
/// to exist in near-identical copies across the solver, the BMC encoder,
/// the explorers and the engine plumbing.
struct SolveSpec {
  std::vector<Lit> Assumptions;
  /// Conflict cap for this call (0 = unlimited).
  uint64_t MaxConflicts = 0;
  /// Propagation cap for this call (0 = unlimited) — a deterministic
  /// work measure, unlike wall clock.
  uint64_t MaxPropagations = 0;
  /// Wall-clock budget; checked inside the propagation loop, so expiry
  /// is precise even when conflicts are rare.
  Deadline DL;
  /// Cooperative cancellation (portfolio racing); polled periodically.
  const CancellationToken *Cancel = nullptr;
  PhaseMode Phase = PhaseMode::Saved;
  /// Seed for PhaseMode::Random (same seed => same decision polarities).
  uint64_t PhaseSeed = 0;

  SolveSpec() = default;
  /// Implicit from an assumption list: `solve(Assumptions)` keeps working.
  SolveSpec(std::vector<Lit> A) : Assumptions(std::move(A)) {}
  /// Implicit from a braced literal list: `solve({A, ~B})` keeps working
  /// (a braced list cannot reach the vector constructor on its own — that
  /// would take two user-defined conversions).
  SolveSpec(std::initializer_list<Lit> A) : Assumptions(A) {}

  static SolveSpec assuming(std::vector<Lit> A) {
    return SolveSpec(std::move(A));
  }
  /// Budgets from the cross-backend vocabulary: Seconds becomes a
  /// Deadline starting now; Conflicts/Propagations map directly.
  static SolveSpec fromBudget(const support::Budget &B) {
    SolveSpec S;
    S.MaxConflicts = B.Conflicts;
    S.MaxPropagations = B.Propagations;
    S.DL = B.startDeadline();
    return S;
  }

  SolveSpec &withAssumptions(std::vector<Lit> A) {
    Assumptions = std::move(A);
    return *this;
  }
  SolveSpec &withConflicts(uint64_t N) {
    MaxConflicts = N;
    return *this;
  }
  SolveSpec &withPropagations(uint64_t N) {
    MaxPropagations = N;
    return *this;
  }
  SolveSpec &withDeadline(Deadline D) {
    DL = D;
    return *this;
  }
  SolveSpec &withCancel(const CancellationToken *C) {
    Cancel = C;
    return *this;
  }
  SolveSpec &withPhase(PhaseMode M, uint64_t Seed = 0) {
    Phase = M;
    PhaseSeed = Seed;
    return *this;
  }
};

/// Solver statistics (cumulative over the solver lifetime). Callers that
/// keep one solver alive across several solve() calls (the incremental
/// deepening engine) snapshot stats() around each call and report the
/// difference, so per-call numbers stay meaningful.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearntLiterals = 0;
  uint64_t ClausesDeleted = 0;
  uint64_t GcRuns = 0;           ///< Arena garbage collections.
  uint64_t GcBytesReclaimed = 0; ///< Bytes compacted away by GC.
  uint64_t SubsumedClauses = 0;  ///< Clauses removed by inprocessing.
  uint64_t StrengthenedLiterals = 0; ///< Lits removed by self-subsumption.
  uint64_t Interrupts = 0;       ///< solve() aborts via interrupt().
};

/// Per-solve delta between two cumulative snapshots: \p After - \p Before,
/// where \p Before was taken just before a solve() and \p After just after.
inline SolverStats operator-(const SolverStats &After,
                             const SolverStats &Before) {
  SolverStats D;
  D.Conflicts = After.Conflicts - Before.Conflicts;
  D.Decisions = After.Decisions - Before.Decisions;
  D.Propagations = After.Propagations - Before.Propagations;
  D.Restarts = After.Restarts - Before.Restarts;
  D.LearntLiterals = After.LearntLiterals - Before.LearntLiterals;
  D.ClausesDeleted = After.ClausesDeleted - Before.ClausesDeleted;
  D.GcRuns = After.GcRuns - Before.GcRuns;
  D.GcBytesReclaimed = After.GcBytesReclaimed - Before.GcBytesReclaimed;
  D.SubsumedClauses = After.SubsumedClauses - Before.SubsumedClauses;
  D.StrengthenedLiterals =
      After.StrengthenedLiterals - Before.StrengthenedLiterals;
  D.Interrupts = After.Interrupts - Before.Interrupts;
  return D;
}

/// Reference to a clause in the arena: a word offset. 32 bits bound the
/// arena at 16 GiB (4-byte words), far beyond any encoding this repo
/// produces; alloc() aborts cleanly before overflow.
using CRef = uint32_t;
constexpr CRef CRefUndef = 0xFFFFFFFFu;

/// Contiguous clause storage. A clause is a span of 32-bit words:
///
///   [ header | (activity lbd)? | lit0 lit1 ... litN-1 ]
///
/// header = size << 3 | learnt << 2 | reloced << 1 | mark. Learnt clauses
/// carry two extra bookkeeping words (float activity as bits, LBD).
/// free() only accounts the waste; garbageCollect() copies the live
/// clauses into a fresh arena in allocation order (cache-friendly for
/// propagation) and leaves a forwarding CRef behind the reloced bit so
/// watches/reasons relocate in one pass.
class ClauseAllocator {
public:
  /// Mutable view of one clause; valid until the next alloc() or
  /// garbageCollect() (the arena may move).
  class Clause {
  public:
    uint32_t size() const { return B[0] >> 3; }
    bool learnt() const { return B[0] & 4; }
    bool reloced() const { return B[0] & 2; }
    /// Mark = deleted; GC drops marked clauses.
    bool mark() const { return B[0] & 1; }
    void setMark() { B[0] |= 1; }

    Lit *lits() { return reinterpret_cast<Lit *>(B + 1 + extraWords()); }
    const Lit *lits() const {
      return reinterpret_cast<const Lit *>(B + 1 + extraWords());
    }
    Lit &operator[](uint32_t I) { return lits()[I]; }
    Lit operator[](uint32_t I) const { return lits()[I]; }
    Lit *begin() { return lits(); }
    Lit *end() { return lits() + size(); }
    const Lit *begin() const { return lits(); }
    const Lit *end() const { return lits() + size(); }

    float activity() const {
      assert(learnt());
      float A;
      __builtin_memcpy(&A, &B[1], sizeof(A));
      return A;
    }
    void setActivity(float A) {
      assert(learnt());
      __builtin_memcpy(&B[1], &A, sizeof(A));
    }
    uint32_t lbd() const { return learnt() ? B[2] : 0; }
    void setLbd(uint32_t L) {
      assert(learnt());
      B[2] = L;
    }

    /// Shrinks the clause in place by dropping the literal at \p I
    /// (order of the remaining literals above I is preserved only from
    /// I onward). Caller handles watches and waste accounting.
    void dropLit(uint32_t I) {
      Lit *L = lits();
      uint32_t N = size();
      for (uint32_t J = I; J + 1 < N; ++J)
        L[J] = L[J + 1];
      B[0] = ((N - 1) << 3) | (B[0] & 7);
    }

    CRef relocation() const {
      assert(reloced());
      return B[1];
    }
    void relocate(CRef To) {
      B[0] |= 2;
      B[1] = To;
    }

  private:
    friend class ClauseAllocator;
    explicit Clause(uint32_t *B) : B(B) {}
    uint32_t extraWords() const { return learnt() ? 2 : 0; }
    uint32_t totalWords() const { return 1 + extraWords() + size(); }
    uint32_t *B;
  };

  CRef alloc(const std::vector<Lit> &Lits, bool Learnt) {
    return alloc(Lits.data(), static_cast<uint32_t>(Lits.size()), Learnt);
  }

  CRef alloc(const Lit *Lits, uint32_t N, bool Learnt) {
    uint32_t Words = 1 + (Learnt ? 2 : 0) + N;
    CRef R = static_cast<CRef>(Mem.size());
    Mem.resize(Mem.size() + Words);
    uint32_t *B = Mem.data() + R;
    B[0] = (N << 3) | (Learnt ? 4u : 0u);
    Clause C(B);
    if (Learnt) {
      C.setActivity(0);
      C.setLbd(0);
    }
    for (uint32_t I = 0; I < N; ++I)
      C[I] = Lits[I];
    return R;
  }

  Clause get(CRef R) {
    assert(R < Mem.size());
    return Clause(Mem.data() + R);
  }

  /// Retires a clause: waste accounting only; the words are reclaimed by
  /// the next garbageCollect().
  void free(CRef R) {
    Clause C = get(R);
    Wasted += C.totalWords();
    C.setMark();
  }

  /// Accounts \p Words freed in place (clause shrink).
  void accountShrink(uint32_t Words) { Wasted += Words; }

  size_t wastedWords() const { return Wasted; }
  size_t sizeWords() const { return Mem.size(); }

  /// True when the wasted ratio crosses \p GarbageFrac.
  bool shouldCollect(double GarbageFrac) const {
    return !Mem.empty() &&
           static_cast<double>(Wasted) >
               GarbageFrac * static_cast<double>(Mem.size());
  }

  /// Copies the live (unmarked) clause at \p R into \p To on first call
  /// and updates \p R to the new location; later calls follow the stored
  /// forwarding ref. Marked clauses must not be relocated.
  void reloc(CRef &R, ClauseAllocator &To) {
    Clause C = get(R);
    if (C.reloced()) {
      R = C.relocation();
      return;
    }
    assert(!C.mark() && "relocating a freed clause");
    CRef New = To.alloc(C.lits(), C.size(), C.learnt());
    if (C.learnt()) {
      Clause NC = To.get(New);
      NC.setActivity(C.activity());
      NC.setLbd(C.lbd());
    }
    C.relocate(New);
    R = New;
  }

  void swap(ClauseAllocator &O) {
    Mem.swap(O.Mem);
    std::swap(Wasted, O.Wasted);
  }

private:
  std::vector<uint32_t> Mem;
  size_t Wasted = 0;
};

/// The CDCL solver.
class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var newVar();

  uint32_t numVars() const { return static_cast<uint32_t>(Assigns.size()); }

  /// Adds a clause (simplified against top-level assignments). Returns
  /// false when the formula became trivially unsatisfiable.
  bool addClause(const std::vector<Lit> &Lits);

  /// Convenience overloads.
  bool addUnit(Lit A) { return addClause({A}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }
  bool addTernary(Lit A, Lit B, Lit C) { return addClause({A, B, C}); }

  /// Solves the formula under \p Spec: its assumptions, budgets
  /// (conflicts, propagations, deadline), cancellation token and
  /// polarity mode. Returns Unknown when any budget ran out, the token
  /// was cancelled, or interrupt() fired.
  SolveResult solve(const SolveSpec &Spec = {});

  /// Deprecated positional form, kept for one release; delegates to the
  /// SolveSpec overload (pinned by LegacyApiTest).
  [[deprecated("build a sat::SolveSpec instead")]]
  SolveResult solve(const std::vector<Lit> &Assumptions,
                    uint64_t MaxConflicts, Deadline DL = Deadline(),
                    const CancellationToken *Cancel = nullptr);

  /// Asynchronously aborts the current (or next) solve() with Unknown.
  /// Safe to call from another thread; a relaxed-atomic flag is checked
  /// in the propagation loop, so the abort is prompt even when the
  /// solver is grinding through one huge propagation between conflicts.
  /// The flag is sticky until clearInterrupt().
  void interrupt() { InterruptRequested.store(true, std::memory_order_relaxed); }
  void clearInterrupt() {
    InterruptRequested.store(false, std::memory_order_relaxed);
  }

  /// Top-level inprocessing: backward subsumption and self-subsuming
  /// resolution over the problem clauses. Equivalence-preserving (see
  /// docs/ALGORITHMS.md, "SAT solver internals"), so verdicts under any
  /// later assumption set are unchanged — safe between the incremental
  /// engine's per-budget solves. Must be called at decision level 0
  /// (always true between solve() calls). Returns false when the pass
  /// derived top-level unsatisfiability.
  bool inprocess();

  /// Value of \p V in the model found by the last Sat answer.
  bool modelValue(Var V) const {
    assert(V < Model.size() && "variable out of range");
    return Model[V];
  }

  const SolverStats &stats() const { return Stats; }

  /// True once addClause derived top-level unsatisfiability.
  bool inConflict() const { return Unsat; }

  /// Runs a relocation GC unconditionally (tests force arena movement;
  /// solve() triggers it by the wasted ratio).
  void garbageCollect();

  /// Wasted-ratio threshold above which solve() collects (default 0.20).
  void setGarbageFrac(double F) { GarbageFrac = F; }

  /// Invariant audit for the property suite: every live clause is
  /// watched on exactly its first two literals, every watcher points at
  /// a live clause that watches the list's literal, and no freed clause
  /// is reachable. Returns false (and asserts in debug builds) on any
  /// violation.
  bool checkWatchInvariants() const;

private:
  /// Truth values on the trail: 0 undef, 1 true, 2 false (lit-phased).
  enum : uint8_t { ValUndef = 0, ValTrue = 1, ValFalse = 2 };

  struct Watcher {
    CRef Cls;
    Lit Blocker;
  };

  struct VarInfo {
    CRef Reason = CRefUndef;
    uint32_t Level = 0;
  };

  uint8_t litValue(Lit L) const {
    uint8_t V = Assigns[L.var()];
    if (V == ValUndef)
      return ValUndef;
    return (V == ValTrue) != L.negated() ? ValTrue : ValFalse;
  }

  void enqueue(Lit L, CRef Reason);
  CRef propagate();
  void analyze(CRef Conflict, std::vector<Lit> &Learnt,
               uint32_t &BacktrackLevel, uint32_t &Lbd);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrackTo(uint32_t Level);
  Lit pickBranchLit();
  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(ClauseAllocator::Clause C);
  void reduceDb();
  void attachClause(CRef R);
  void detachClause(CRef R);
  void removeClause(CRef R, bool FromProblemList);
  bool locked(CRef R) const;
  /// Abort bookkeeping shared by every inconclusive exit: restore the
  /// root level and rewind the propagation queue (an early propagate()
  /// exit may have left implications unexplored).
  SolveResult abortSolve();
  uint32_t currentLevel() const {
    return static_cast<uint32_t>(TrailLims.size());
  }
  static uint64_t luby(uint64_t I);
  /// 0 = no relation, 1 = A subsumes B, 2 = self-subsuming resolution
  /// (SelfSubsumeLit is the literal of B to drop).
  int subsumes(CRef A, CRef B, Lit &SelfSubsumeLit) const;
  uint32_t clauseAbstraction(CRef R) const;

  ClauseAllocator Arena;
  std::vector<CRef> ProblemClauses;     ///< Attached original clauses.
  std::vector<CRef> Learnts;            ///< Attached learnt clauses.
  std::vector<std::vector<Watcher>> Watches; ///< Indexed by literal code.
  std::vector<uint8_t> Assigns;         ///< Var -> ValUndef/True/False.
  std::vector<uint8_t> Phase;           ///< Saved phases.
  std::vector<VarInfo> Info;
  std::vector<double> Activity;
  std::vector<Var> Order;               ///< Activity heap (binary heap).
  std::vector<int32_t> OrderPos;        ///< Var -> heap slot or -1.
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLims;
  size_t PropagateHead = 0;
  double VarInc = 1.0;
  double ClaInc = 1.0;
  bool Unsat = false;
  double GarbageFrac = 0.20;
  std::vector<uint8_t> Seen;    ///< Scratch for conflict analysis.
  std::vector<Var> MarkedVars;  ///< Vars with Seen set (for cleanup).
  std::vector<bool> Model;
  SolverStats Stats;

  /// Per-solve control state (propagate() consults these so the budget
  /// checks live next to the work they bound).
  std::atomic<bool> InterruptRequested{false};
  bool AbortRequested = false;  ///< Set by propagate() on budget/interrupt.
  uint64_t PropagationLimit = 0; ///< Absolute Stats.Propagations cap (0 = off).
  Deadline SolveDL;
  PhaseMode CurPhaseMode = PhaseMode::Saved;
  uint64_t PhaseRngState = 0;

  void heapInsert(Var V);
  Var heapPopMax();
  bool heapEmpty() const { return Order.empty(); }
  bool heapLess(Var A, Var B) const { return Activity[A] < Activity[B]; }
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);
};

} // namespace vbmc::sat

#endif // VBMC_SAT_SOLVER_H
