//===- Solver.h - CDCL SAT solver --------------------------------*- C++ -*-===//
///
/// \file
/// A from-scratch CDCL SAT solver in the MiniSat lineage, standing in for
/// the SAT engine inside CBMC (the paper's backend). Features:
///
///  * two-watched-literal propagation,
///  * first-UIP conflict analysis with clause minimization,
///  * exponential VSIDS activities with phase saving,
///  * Luby-sequence restarts,
///  * LBD-based learnt-clause database reduction,
///  * solving under assumptions,
///  * conflict/time budgets for anytime use.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SAT_SOLVER_H
#define VBMC_SAT_SOLVER_H

#include "support/CheckContext.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace vbmc::sat {

/// Boolean variable index (0-based).
using Var = uint32_t;

/// A literal: variable with sign, encoded as 2*var + (negated ? 1 : 0).
class Lit {
public:
  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const = default;

  /// Raw encoding, usable as an array index.
  uint32_t code() const { return Code; }

private:
  uint32_t Code = 0;
};

inline Lit mkLit(Var V) { return Lit(V, false); }

enum class SolveResult {
  Sat,
  Unsat,
  Unknown, ///< Budget exhausted.
};

/// Solver statistics (cumulative over the solver lifetime). Callers that
/// keep one solver alive across several solve() calls (the incremental
/// deepening engine) snapshot stats() around each call and report the
/// difference, so per-call numbers stay meaningful.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearntLiterals = 0;
  uint64_t ClausesDeleted = 0;
};

/// Per-solve delta between two cumulative snapshots: \p After - \p Before,
/// where \p Before was taken just before a solve() and \p After just after.
inline SolverStats operator-(const SolverStats &After,
                             const SolverStats &Before) {
  SolverStats D;
  D.Conflicts = After.Conflicts - Before.Conflicts;
  D.Decisions = After.Decisions - Before.Decisions;
  D.Propagations = After.Propagations - Before.Propagations;
  D.Restarts = After.Restarts - Before.Restarts;
  D.LearntLiterals = After.LearntLiterals - Before.LearntLiterals;
  D.ClausesDeleted = After.ClausesDeleted - Before.ClausesDeleted;
  return D;
}

/// The CDCL solver.
class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var newVar();

  uint32_t numVars() const { return static_cast<uint32_t>(Assigns.size()); }

  /// Adds a clause (simplified against top-level assignments). Returns
  /// false when the formula became trivially unsatisfiable.
  bool addClause(const std::vector<Lit> &Lits);

  /// Convenience overloads.
  bool addUnit(Lit A) { return addClause({A}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }
  bool addTernary(Lit A, Lit B, Lit C) { return addClause({A, B, C}); }

  /// Solves the formula under \p Assumptions. \p MaxConflicts == 0 means
  /// unbounded; \p DL is a wall-clock budget; \p Cancel, when non-null, is
  /// polled cooperatively so a portfolio driver can abort a race loser
  /// (returns Unknown).
  SolveResult solve(const std::vector<Lit> &Assumptions = {},
                    uint64_t MaxConflicts = 0, Deadline DL = Deadline(),
                    const CancellationToken *Cancel = nullptr);

  /// Value of \p V in the model found by the last Sat answer.
  bool modelValue(Var V) const {
    assert(V < Model.size() && "variable out of range");
    return Model[V];
  }

  const SolverStats &stats() const { return Stats; }

  /// True once addClause derived top-level unsatisfiability.
  bool inConflict() const { return Unsat; }

private:
  /// Truth values on the trail: 0 undef, 1 true, 2 false (lit-phased).
  enum : uint8_t { ValUndef = 0, ValTrue = 1, ValFalse = 2 };

  /// Clause storage: a flat arena; a clause is [header, lits...]. We keep
  /// it simple with an index-based heap of clause objects.
  struct Clause {
    std::vector<Lit> Lits;
    double Activity = 0;
    uint32_t Lbd = 0;
    bool Learnt = false;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef InvalidClause = ~0u;

  struct Watcher {
    ClauseRef Cls;
    Lit Blocker;
  };

  struct VarInfo {
    ClauseRef Reason = InvalidClause;
    uint32_t Level = 0;
  };

  uint8_t litValue(Lit L) const {
    uint8_t V = Assigns[L.var()];
    if (V == ValUndef)
      return ValUndef;
    return (V == ValTrue) != L.negated() ? ValTrue : ValFalse;
  }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               uint32_t &BacktrackLevel, uint32_t &Lbd);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrackTo(uint32_t Level);
  Lit pickBranchLit();
  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(Clause &C);
  void reduceDb();
  void attachClause(ClauseRef CR);
  uint32_t currentLevel() const {
    return static_cast<uint32_t>(TrailLims.size());
  }
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;          ///< All clauses (problem + learnt).
  std::vector<ClauseRef> Learnts;       ///< Indices of learnt clauses.
  std::vector<std::vector<Watcher>> Watches; ///< Indexed by literal code.
  std::vector<uint8_t> Assigns;         ///< Var -> ValUndef/True/False.
  std::vector<uint8_t> Phase;           ///< Saved phases.
  std::vector<VarInfo> Info;
  std::vector<double> Activity;
  std::vector<Var> Order;               ///< Activity heap (binary heap).
  std::vector<int32_t> OrderPos;        ///< Var -> heap slot or -1.
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLims;
  size_t PropagateHead = 0;
  double VarInc = 1.0;
  double ClaInc = 1.0;
  bool Unsat = false;
  std::vector<uint8_t> Seen;    ///< Scratch for conflict analysis.
  std::vector<Var> MarkedVars;  ///< Vars with Seen set (for cleanup).
  std::vector<bool> Model;
  SolverStats Stats;

  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPopMax();
  bool heapEmpty() const { return Order.empty(); }
  bool heapLess(Var A, Var B) const { return Activity[A] < Activity[B]; }
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);
};

} // namespace vbmc::sat

#endif // VBMC_SAT_SOLVER_H
