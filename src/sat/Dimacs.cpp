//===- Dimacs.cpp ---------------------------------------------*- C++ -*-===//

#include "sat/Dimacs.h"

#include <cstdlib>
#include <sstream>

using namespace vbmc;
using namespace vbmc::sat;

ErrorOr<uint32_t> vbmc::sat::loadDimacs(const std::string &Text,
                                        Solver &Solver) {
  std::istringstream In(Text);
  std::string Line;
  uint32_t Clauses = 0;
  std::vector<Lit> Current;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == 'c' || Line[0] == 'p')
      continue;
    std::istringstream Ls(Line);
    long V;
    while (Ls >> V) {
      if (V == 0) {
        Solver.addClause(Current);
        Current.clear();
        ++Clauses;
        continue;
      }
      Var Idx = static_cast<Var>(std::labs(V)) - 1;
      while (Solver.numVars() <= Idx)
        Solver.newVar();
      Current.push_back(Lit(Idx, V < 0));
    }
  }
  if (!Current.empty())
    return Diagnostic("clause not terminated by 0");
  return Clauses;
}

void DimacsWriter::addClause(const std::vector<Lit> &Lits) {
  for (Lit L : Lits) {
    Body += L.negated() ? "-" : "";
    Body += std::to_string(L.var() + 1);
    Body += ' ';
  }
  Body += "0\n";
  ++Count;
}

std::string DimacsWriter::str(uint32_t NumVars) const {
  return "p cnf " + std::to_string(NumVars) + " " + std::to_string(Count) +
         "\n" + Body;
}
