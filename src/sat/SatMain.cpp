//===- SatMain.cpp - standalone DIMACS CNF solver ---------------*- C++ -*-===//
//
// A minimal MiniSat-style command-line frontend for the built-in CDCL
// solver: reads DIMACS CNF, prints SATISFIABLE / UNSATISFIABLE and the
// model. Useful for exercising the solver on external instances.
//
//   vbmc-sat FILE.cnf [--max-conflicts N] [--budget SECONDS]
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"
#include "sat/Solver.h"
#include "support/Cli.h"
#include "support/Timer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vbmc;
using namespace vbmc::sat;

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(Argc, Argv);
  if (CL.positionals().size() != 1) {
    std::puts("usage: vbmc-sat FILE.cnf [--max-conflicts N] [--budget S]");
    return 2;
  }
  std::ifstream File(CL.positionals()[0]);
  if (!File) {
    std::fprintf(stderr, "vbmc-sat: cannot open '%s'\n",
                 CL.positionals()[0].c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  Solver S;
  auto Clauses = loadDimacs(Buffer.str(), S);
  if (!Clauses) {
    std::fprintf(stderr, "vbmc-sat: %s\n", Clauses.error().str().c_str());
    return 2;
  }

  Timer W;
  SolveSpec Spec;
  Spec.MaxConflicts = static_cast<uint64_t>(CL.getInt("max-conflicts", 0));
  Spec.DL = Deadline(CL.getDouble("budget", 0));
  SolveResult R = S.solve(Spec);
  std::fprintf(stderr,
               "c vars=%u clauses=%u conflicts=%llu decisions=%llu "
               "time=%.3fs\n",
               S.numVars(), *Clauses,
               static_cast<unsigned long long>(S.stats().Conflicts),
               static_cast<unsigned long long>(S.stats().Decisions),
               W.elapsedSeconds());
  switch (R) {
  case SolveResult::Sat: {
    std::puts("s SATISFIABLE");
    std::string Line = "v";
    for (Var V = 0; V < S.numVars(); ++V) {
      Line += S.modelValue(V) ? " " : " -";
      Line += std::to_string(V + 1);
      if (Line.size() > 72) {
        std::puts(Line.c_str());
        Line = "v";
      }
    }
    Line += " 0";
    std::puts(Line.c_str());
    return 10;
  }
  case SolveResult::Unsat:
    std::puts("s UNSATISFIABLE");
    return 20;
  case SolveResult::Unknown:
    std::puts("s UNKNOWN");
    return 0;
  }
  return 0;
}
