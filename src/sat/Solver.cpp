//===- Solver.cpp - CDCL implementation ------------------------*- C++ -*-===//

#include "sat/Solver.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::sat;

Solver::Solver() = default;

Var Solver::newVar() {
  Var V = numVars();
  Assigns.push_back(ValUndef);
  Phase.push_back(0);
  Info.push_back(VarInfo{});
  Activity.push_back(0);
  OrderPos.push_back(-1);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool Solver::addClause(const std::vector<Lit> &Lits) {
  if (Unsat)
    return false;
  assert(currentLevel() == 0 && "clauses must be added at the root level");
  // Simplify: drop duplicate/false literals, detect tautologies.
  std::vector<Lit> Simplified;
  for (Lit L : Lits) {
    assert(L.var() < numVars() && "literal over undeclared variable");
    uint8_t V = litValue(L);
    if (V == ValTrue)
      return true; // Satisfied at the root.
    if (V == ValFalse)
      continue;
    bool Duplicate = false;
    for (Lit Other : Simplified) {
      if (Other == L)
        Duplicate = true;
      if (Other == ~L)
        return true; // Tautology.
    }
    if (!Duplicate)
      Simplified.push_back(L);
  }
  if (Simplified.empty()) {
    Unsat = true;
    return false;
  }
  if (Simplified.size() == 1) {
    enqueue(Simplified[0], CRefUndef);
    if (propagate() != CRefUndef)
      Unsat = true;
    return !Unsat;
  }
  CRef R = Arena.alloc(Simplified, /*Learnt=*/false);
  ProblemClauses.push_back(R);
  attachClause(R);
  return true;
}

void Solver::attachClause(CRef R) {
  ClauseAllocator::Clause C = Arena.get(R);
  assert(C.size() >= 2 && "attaching a short clause");
  Watches[(~C[0]).code()].push_back(Watcher{R, C[1]});
  Watches[(~C[1]).code()].push_back(Watcher{R, C[0]});
}

void Solver::detachClause(CRef R) {
  ClauseAllocator::Clause C = Arena.get(R);
  for (int W = 0; W < 2; ++W) {
    auto &Ws = Watches[(~C[W]).code()];
    for (size_t J = 0; J < Ws.size(); ++J)
      if (Ws[J].Cls == R) {
        Ws[J] = Ws.back();
        Ws.pop_back();
        break;
      }
  }
}

bool Solver::locked(CRef R) const {
  ClauseAllocator::Clause C =
      const_cast<ClauseAllocator &>(Arena).get(R);
  Lit L0 = C[0];
  return litValue(L0) == ValTrue && Info[L0.var()].Reason == R;
}

void Solver::removeClause(CRef R, bool /*FromProblemList*/) {
  // A clause serving as reason for a root-level assignment may still be
  // dropped: analysis never follows level-0 reasons. Clear the back
  // pointer so garbage collection does not chase a freed clause.
  ClauseAllocator::Clause C = Arena.get(R);
  Lit L0 = C[0];
  if (litValue(L0) == ValTrue && Info[L0.var()].Reason == R) {
    assert(Info[L0.var()].Level == 0 &&
           "removing the reason of a non-root assignment");
    Info[L0.var()].Reason = CRefUndef;
  }
  detachClause(R);
  Arena.free(R);
}

void Solver::enqueue(Lit L, CRef Reason) {
  assert(litValue(L) == ValUndef && "enqueue of assigned literal");
  Assigns[L.var()] = L.negated() ? ValFalse : ValTrue;
  Phase[L.var()] = L.negated() ? 0 : 1;
  Info[L.var()] = VarInfo{Reason, currentLevel()};
  Trail.push_back(L);
}

CRef Solver::propagate() {
  while (PropagateHead < Trail.size()) {
    // Anytime control lives here, next to the work it bounds: the async
    // interrupt flag (relaxed load per propagated literal), the
    // propagation-count budget, and an amortized deadline check — so a
    // solve grinding through one huge propagation chain between
    // conflicts still stops promptly.
    if (InterruptRequested.load(std::memory_order_relaxed) ||
        (PropagationLimit && Stats.Propagations >= PropagationLimit) ||
        ((Stats.Propagations & 0x7ff) == 0 && SolveDL.expired())) {
      AbortRequested = true;
      return CRefUndef;
    }
    Lit P = Trail[PropagateHead++];
    ++Stats.Propagations;
    std::vector<Watcher> &Ws = Watches[P.code()];
    size_t Keep = 0;
    for (size_t I = 0; I < Ws.size(); ++I) {
      Watcher W = Ws[I];
      // Blocker fast path: clause already satisfied, no deref needed.
      if (litValue(W.Blocker) == ValTrue) {
        Ws[Keep++] = W;
        continue;
      }
      ClauseAllocator::Clause C = Arena.get(W.Cls);
      Lit FalseLit = ~P;
      if (C[0] == FalseLit)
        std::swap(C[0], C[1]);
      assert(C[1] == FalseLit && "watch invariant broken");
      Lit First = C[0];
      if (First != W.Blocker && litValue(First) == ValTrue) {
        Ws[Keep++] = Watcher{W.Cls, First};
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      uint32_t Size = C.size();
      for (uint32_t J = 2; J < Size; ++J) {
        if (litValue(C[J]) != ValFalse) {
          std::swap(C[1], C[J]);
          Watches[(~C[1]).code()].push_back(Watcher{W.Cls, First});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Clause is unit or conflicting.
      if (litValue(First) == ValFalse) {
        // Conflict: restore remaining watchers and report.
        for (size_t J = I; J < Ws.size(); ++J)
          Ws[Keep++] = Ws[J];
        Ws.resize(Keep);
        return W.Cls;
      }
      Ws[Keep++] = W;
      enqueue(First, W.Cls);
    }
    Ws.resize(Keep);
  }
  return CRefUndef;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (OrderPos[V] >= 0)
    heapSiftUp(static_cast<size_t>(OrderPos[V]));
}

void Solver::varDecayActivity() { VarInc /= 0.95; }

void Solver::claBumpActivity(ClauseAllocator::Clause C) {
  C.setActivity(C.activity() + static_cast<float>(ClaInc));
  if (C.activity() > 1e20f) {
    for (CRef R : Learnts) {
      ClauseAllocator::Clause L = Arena.get(R);
      L.setActivity(L.activity() * 1e-20f);
    }
    ClaInc *= 1e-20;
  }
}

void Solver::analyze(CRef Conflict, std::vector<Lit> &Learnt,
                     uint32_t &BacktrackLevel, uint32_t &Lbd) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Slot for the asserting literal.
  uint32_t PathCount = 0;
  Lit P;
  bool PValid = false;
  size_t TrailIdx = Trail.size();
  CRef Reason = Conflict;

  do {
    assert(Reason != CRefUndef && "no reason during analysis");
    ClauseAllocator::Clause C = Arena.get(Reason);
    if (C.learnt())
      claBumpActivity(C);
    uint32_t Size = C.size();
    for (uint32_t J = PValid ? 1 : 0; J < Size; ++J) {
      Lit Q = C[J];
      if (Seen[Q.var()] || Info[Q.var()].Level == 0)
        continue;
      Seen[Q.var()] = 1;
      MarkedVars.push_back(Q.var());
      varBumpActivity(Q.var());
      if (Info[Q.var()].Level >= currentLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Find the next literal of the current level on the trail.
    while (!Seen[Trail[--TrailIdx].var()])
      ;
    P = Trail[TrailIdx];
    PValid = true;
    Seen[P.var()] = 0;
    Reason = Info[P.var()].Reason;
    --PathCount;
    if (PathCount > 0) {
      // Put the reason's asserting literal first for the next iteration.
      assert(Reason != CRefUndef);
      ClauseAllocator::Clause RC = Arena.get(Reason);
      if (RC[0] != P) {
        uint32_t RSize = RC.size();
        for (uint32_t J = 1; J < RSize; ++J)
          if (RC[J] == P) {
            std::swap(RC[0], RC[J]);
            break;
          }
      }
    }
  } while (PathCount > 0);
  Learnt[0] = ~P;

  // Clause minimization: drop literals implied by the rest of the clause.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= 1u << (Info[Learnt[I].var()].Level & 31);
  size_t Keep = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Info[Learnt[I].var()].Reason == CRefUndef ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Keep++] = Learnt[I];
  }
  Learnt.resize(Keep);

  // Compute the backtrack level and move its literal to slot 1.
  BacktrackLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Info[Learnt[I].var()].Level > Info[Learnt[MaxIdx].var()].Level)
        MaxIdx = I;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BacktrackLevel = Info[Learnt[1].var()].Level;
  }

  // LBD: number of distinct decision levels.
  Lbd = 0;
  std::vector<uint32_t> LevelsSeen;
  for (Lit L : Learnt) {
    uint32_t Lev = Info[L.var()].Level;
    if (std::find(LevelsSeen.begin(), LevelsSeen.end(), Lev) ==
        LevelsSeen.end()) {
      LevelsSeen.push_back(Lev);
      ++Lbd;
    }
  }

  // Clear every mark set during this analysis (including literals that
  // were minimized away and marks set by litRedundant).
  for (Var V : MarkedVars)
    Seen[V] = 0;
  MarkedVars.clear();
}

bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  // DFS over reasons; a literal is redundant if every path reaches seen
  // literals or level-0 assignments.
  std::vector<Lit> Stack = {L};
  std::vector<Var> Cleared;
  while (!Stack.empty()) {
    Lit Cur = Stack.back();
    Stack.pop_back();
    CRef Reason = Info[Cur.var()].Reason;
    if (Reason == CRefUndef) {
      for (Var V : Cleared)
        Seen[V] = 0;
      return false;
    }
    ClauseAllocator::Clause C = Arena.get(Reason);
    uint32_t Size = C.size();
    for (uint32_t J = 0; J < Size; ++J) {
      Lit Q = C[J];
      if (Q.var() == Cur.var() || Seen[Q.var()] ||
          Info[Q.var()].Level == 0)
        continue;
      if (Info[Q.var()].Reason == CRefUndef ||
          !(AbstractLevels & (1u << (Info[Q.var()].Level & 31)))) {
        for (Var V : Cleared)
          Seen[V] = 0;
        return false;
      }
      Seen[Q.var()] = 1;
      Cleared.push_back(Q.var());
      MarkedVars.push_back(Q.var());
      Stack.push_back(Q);
    }
  }
  return true;
}

void Solver::backtrackTo(uint32_t Level) {
  if (currentLevel() <= Level)
    return;
  size_t Bound = TrailLims[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = Trail[I].var();
    Assigns[V] = ValUndef;
    Info[V].Reason = CRefUndef;
    if (OrderPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLims.resize(Level);
  PropagateHead = Trail.size();
}

Lit Solver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPopMax();
    if (Assigns[V] == ValUndef) {
      bool Negated;
      switch (CurPhaseMode) {
      case PhaseMode::Positive:
        Negated = false;
        break;
      case PhaseMode::Negative:
        Negated = true;
        break;
      case PhaseMode::Random: {
        // xorshift64: deterministic per (seed, decision sequence).
        uint64_t X = PhaseRngState;
        X ^= X << 13;
        X ^= X >> 7;
        X ^= X << 17;
        PhaseRngState = X;
        Negated = X & 1;
        break;
      }
      case PhaseMode::Saved:
      default:
        Negated = Phase[V] == 0;
        break;
      }
      return Lit(V, Negated);
    }
  }
  return Lit(); // No unassigned variable: model found (checked by caller).
}

void Solver::reduceDb() {
  // Keep the better half by (LBD, activity); never drop reason clauses.
  std::sort(Learnts.begin(), Learnts.end(), [&](CRef A, CRef B) {
    ClauseAllocator::Clause CA = Arena.get(A), CB = Arena.get(B);
    if (CA.lbd() != CB.lbd())
      return CA.lbd() < CB.lbd();
    return CA.activity() > CB.activity();
  });
  size_t Keep = Learnts.size() / 2;
  std::vector<CRef> Kept(Learnts.begin(), Learnts.begin() + Keep);
  for (size_t I = Keep; I < Learnts.size(); ++I) {
    CRef R = Learnts[I];
    ClauseAllocator::Clause C = Arena.get(R);
    if (locked(R) || C.lbd() <= 2) {
      Kept.push_back(R);
      continue;
    }
    detachClause(R);
    Arena.free(R);
    ++Stats.ClausesDeleted;
  }
  Learnts = std::move(Kept);
}

void Solver::garbageCollect() {
  ClauseAllocator To;
  size_t BytesBefore = Arena.sizeWords() * sizeof(uint32_t);

  // Relocate every live reference in one pass each: watch lists first
  // (their order becomes the new arena's allocation order, which is the
  // order propagation touches clauses), then trail reasons, then the
  // clause lists. reloc() copies on first visit and follows the
  // forwarding ref afterwards, so shared references stay shared.
  for (auto &Ws : Watches)
    for (Watcher &W : Ws)
      Arena.reloc(W.Cls, To);
  for (Lit L : Trail) {
    CRef &Reason = Info[L.var()].Reason;
    if (Reason != CRefUndef)
      Arena.reloc(Reason, To);
  }
  auto relocList = [&](std::vector<CRef> &List) {
    size_t Keep = 0;
    for (CRef &R : List) {
      if (Arena.get(R).mark())
        continue; // Freed but not yet dropped from the list.
      Arena.reloc(R, To);
      List[Keep++] = R;
    }
    List.resize(Keep);
  };
  relocList(ProblemClauses);
  relocList(Learnts);

  size_t BytesAfter = To.sizeWords() * sizeof(uint32_t);
  Stats.GcBytesReclaimed += BytesBefore - BytesAfter;
  ++Stats.GcRuns;
  Arena.swap(To);
}

uint64_t Solver::luby(uint64_t I) {
  // Knuth's formulation of the Luby sequence.
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 2)
    ++K;
  while ((1ULL << K) - 1 != I + 1) {
    I -= (1ULL << K) - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 2)
      ++K;
  }
  return 1ULL << (K - 1);
}

SolveResult Solver::abortSolve() {
  // propagate() may have bailed out mid-queue; rewinding PropagateHead to
  // the trail start makes the next solve rescan the root assignments, so
  // no implication is ever silently lost.
  backtrackTo(0);
  PropagateHead = 0;
  return SolveResult::Unknown;
}

SolveResult Solver::solve(const std::vector<Lit> &Assumptions,
                          uint64_t MaxConflicts, Deadline DL,
                          const CancellationToken *Cancel) {
  SolveSpec Spec;
  Spec.Assumptions = Assumptions;
  Spec.MaxConflicts = MaxConflicts;
  Spec.DL = DL;
  Spec.Cancel = Cancel;
  return solve(Spec);
}

SolveResult Solver::solve(const SolveSpec &Spec) {
  if (Unsat)
    return SolveResult::Unsat;

  // Per-solve anytime controls, consulted from inside propagate().
  AbortRequested = false;
  PropagationLimit =
      Spec.MaxPropagations ? Stats.Propagations + Spec.MaxPropagations : 0;
  SolveDL = Spec.DL;
  CurPhaseMode = Spec.Phase;
  PhaseRngState = (Spec.PhaseSeed * 0x9E3779B97F4A7C15ULL) | 1;

  const std::vector<Lit> &Assumptions = Spec.Assumptions;
  const CancellationToken *Cancel = Spec.Cancel;

  if (propagate() != CRefUndef) {
    Unsat = true;
    return SolveResult::Unsat;
  }
  if (AbortRequested) {
    if (InterruptRequested.load(std::memory_order_relaxed))
      ++Stats.Interrupts;
    return abortSolve();
  }

  uint64_t ConflictsAtStart = Stats.Conflicts;
  uint64_t RestartUnit = 128;
  uint64_t RestartIdx = 0;
  uint64_t NextRestart = Stats.Conflicts + RestartUnit * luby(RestartIdx);
  size_t MaxLearnts = 4096;
  std::vector<Lit> Learnt;
  uint64_t Ticks = 0;

  for (;;) {
    // Cheap cooperative abort: an atomic load every few hundred search
    // loop iterations, independent of the conflict rate.
    if ((++Ticks & 0xff) == 0 && Cancel && Cancel->cancelled())
      return abortSolve();
    CRef Conflict = propagate();
    if (AbortRequested) {
      if (InterruptRequested.load(std::memory_order_relaxed))
        ++Stats.Interrupts;
      return abortSolve();
    }
    if (Conflict != CRefUndef) {
      ++Stats.Conflicts;
      if (currentLevel() == 0) {
        Unsat = true;
        backtrackTo(0);
        return SolveResult::Unsat;
      }
      uint32_t BtLevel, Lbd;
      analyze(Conflict, Learnt, BtLevel, Lbd);
      // Backjumping may land below the assumption levels; the decision
      // loop re-pushes assumptions and detects a now-false one, which is
      // how assumption unsatisfiability surfaces.
      backtrackTo(BtLevel);
      Stats.LearntLiterals += Learnt.size();
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], CRefUndef);
      } else {
        CRef R = Arena.alloc(Learnt, /*Learnt=*/true);
        ClauseAllocator::Clause C = Arena.get(R);
        C.setActivity(static_cast<float>(ClaInc));
        C.setLbd(Lbd);
        Learnts.push_back(R);
        attachClause(R);
        enqueue(Learnt[0], R);
      }
      varDecayActivity();
      continue;
    }

    // No conflict: maybe restart / reduce / collect, then decide.
    if (Stats.Conflicts >= NextRestart &&
        currentLevel() > Assumptions.size()) {
      ++Stats.Restarts;
      ++RestartIdx;
      NextRestart = Stats.Conflicts + RestartUnit * luby(RestartIdx);
      backtrackTo(static_cast<uint32_t>(Assumptions.size()));
      continue;
    }
    if (Spec.MaxConflicts &&
        Stats.Conflicts - ConflictsAtStart >= Spec.MaxConflicts)
      return abortSolve();
    if ((Stats.Conflicts & 0xff) == 0 && SolveDL.expired())
      return abortSolve();
    if (Learnts.size() >= MaxLearnts) {
      reduceDb();
      MaxLearnts += MaxLearnts / 2;
      if (Arena.shouldCollect(GarbageFrac))
        garbageCollect();
    }

    Lit Decision;
    bool HaveDecision = false;
    if (currentLevel() < Assumptions.size()) {
      Lit A = Assumptions[currentLevel()];
      uint8_t V = litValue(A);
      if (V == ValFalse) {
        backtrackTo(0);
        return SolveResult::Unsat;
      }
      if (V == ValTrue) {
        // Open a level anyway so level bookkeeping matches positions.
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
        continue;
      }
      Decision = A;
      HaveDecision = true;
    }
    if (!HaveDecision) {
      Decision = pickBranchLit();
      if (Assigns[Decision.var()] != ValUndef ||
          litValue(Decision) != ValUndef) {
        // pickBranchLit returned the default Lit(): all vars assigned.
        bool AllAssigned = true;
        for (uint8_t A : Assigns)
          AllAssigned &= A != ValUndef;
        if (AllAssigned) {
          Model.assign(numVars(), false);
          for (Var V = 0; V < numVars(); ++V)
            Model[V] = Assigns[V] == ValTrue;
          backtrackTo(0);
          return SolveResult::Sat;
        }
        continue;
      }
      ++Stats.Decisions;
    }
    TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Decision, CRefUndef);
  }
}

//===----------------------------------------------------------------------===//
// Inprocessing: top-level subsumption + self-subsuming resolution
//===----------------------------------------------------------------------===//

uint32_t Solver::clauseAbstraction(CRef R) const {
  ClauseAllocator::Clause C = const_cast<ClauseAllocator &>(Arena).get(R);
  uint32_t Abst = 0;
  for (Lit L : C)
    Abst |= 1u << (L.var() & 31);
  return Abst;
}

/// Does clause \p A subsume \p B, possibly modulo one flipped literal?
/// Returns 1 for plain subsumption (every literal of A occurs in B),
/// 2 with SelfSubsumeLit set to the one literal of B whose negation
/// occurs in A (self-subsuming resolution: B may be strengthened by
/// dropping it), and 0 otherwise.
int Solver::subsumes(CRef A, CRef B, Lit &SelfSubsumeLit) const {
  ClauseAllocator &Ar = const_cast<ClauseAllocator &>(Arena);
  ClauseAllocator::Clause CA = Ar.get(A), CB = Ar.get(B);
  bool Flipped = false;
  for (Lit La : CA) {
    bool Matched = false;
    for (Lit Lb : CB) {
      if (Lb == La) {
        Matched = true;
        break;
      }
      if (!Flipped && Lb == ~La) {
        Flipped = true;
        SelfSubsumeLit = Lb;
        Matched = true;
        break;
      }
    }
    if (!Matched)
      return 0;
  }
  return Flipped ? 2 : 1;
}

bool Solver::inprocess() {
  if (Unsat)
    return false;
  assert(currentLevel() == 0 && "inprocess requires the root level");

  // Fresh control state: the last solve's budgets do not bound this pass
  // (a sticky interrupt() still applies and simply skips the work).
  AbortRequested = false;
  PropagationLimit = 0;
  SolveDL = Deadline();
  PropagateHead = 0; // Rescan everything: cheap, and restores the queue
                     // invariant after any aborted solve.
  if (InterruptRequested.load(std::memory_order_relaxed))
    return true;
  if (propagate() != CRefUndef) {
    Unsat = true;
    return false;
  }

  // Phase 1 — top-level simplification: drop root-satisfied clauses,
  // prune root-false literals (detach / shrink / reattach).
  size_t LiveEnd = 0;
  for (size_t I = 0; I < ProblemClauses.size(); ++I) {
    CRef R = ProblemClauses[I];
    ClauseAllocator::Clause C = Arena.get(R);
    if (C.mark())
      continue;
    bool Satisfied = false;
    uint32_t FalseLits = 0;
    for (Lit L : C) {
      uint8_t V = litValue(L);
      if (V == ValTrue) {
        Satisfied = true;
        break;
      }
      if (V == ValFalse)
        ++FalseLits;
    }
    if (Satisfied) {
      removeClause(R, true);
      ++Stats.ClausesDeleted;
      continue;
    }
    if (FalseLits) {
      detachClause(R);
      for (uint32_t J = C.size(); J-- > 0;)
        if (litValue(C[J]) == ValFalse)
          C.dropLit(J);
      Arena.accountShrink(FalseLits);
      if (C.size() == 1) {
        Lit U = C[0];
        Arena.free(R);
        assert(litValue(U) == ValUndef && "unit survived propagation");
        enqueue(U, CRefUndef);
        if (propagate() != CRefUndef) {
          Unsat = true;
          return false;
        }
        continue;
      }
      attachClause(R);
    }
    ProblemClauses[LiveEnd++] = R;
  }
  ProblemClauses.resize(LiveEnd);

  // Phase 2 — backward subsumption / self-subsuming resolution among the
  // problem clauses. Occurrence lists are per *variable*; short clauses
  // act as subsumers first. A literal-comparison budget bounds the pass
  // on pathological instances; inprocessing is an optimization, not a
  // completeness requirement, so stopping early is always sound.
  constexpr uint32_t MaxSubsumerSize = 24;
  uint64_t CheckBudget = 4'000'000;

  std::vector<std::vector<CRef>> Occ(numVars());
  for (CRef R : ProblemClauses) {
    ClauseAllocator::Clause C = Arena.get(R);
    for (Lit L : C)
      Occ[L.var()].push_back(R);
  }
  std::vector<CRef> BySize = ProblemClauses;
  std::sort(BySize.begin(), BySize.end(), [&](CRef A, CRef B) {
    uint32_t SA = Arena.get(A).size(), SB = Arena.get(B).size();
    if (SA != SB)
      return SA < SB;
    return A < B; // Deterministic tie-break.
  });

  for (CRef R : BySize) {
    if (CheckBudget == 0)
      break;
    if (InterruptRequested.load(std::memory_order_relaxed))
      break;
    ClauseAllocator::Clause C = Arena.get(R);
    if (C.mark() || C.size() > MaxSubsumerSize)
      continue;
    uint32_t AbstC = clauseAbstraction(R);
    // Scan the occurrence list of the least-frequent variable in C.
    Var Best = C[0].var();
    for (Lit L : C)
      if (Occ[L.var()].size() < Occ[Best].size())
        Best = L.var();
    for (CRef DR : Occ[Best]) {
      if (DR == R)
        continue;
      ClauseAllocator::Clause D = Arena.get(DR);
      if (D.mark() || C.mark())
        continue;
      if (D.size() < C.size())
        continue;
      if (CheckBudget <= D.size()) {
        CheckBudget = 0;
        break;
      }
      CheckBudget -= D.size();
      if (AbstC & ~clauseAbstraction(DR))
        continue; // Some variable of C is missing from D.
      Lit SelfLit;
      int Rel = subsumes(R, DR, SelfLit);
      if (Rel == 0)
        continue;
      if (Rel == 1) {
        // D is a superset of C: delete it.
        removeClause(DR, true);
        ++Stats.SubsumedClauses;
        continue;
      }
      // Self-subsuming resolution: resolving C and D on SelfLit yields a
      // strict subset of D, so D may drop SelfLit.
      detachClause(DR);
      uint32_t DSize = D.size();
      for (uint32_t J = 0; J < DSize; ++J)
        if (D[J] == SelfLit) {
          D.dropLit(J);
          break;
        }
      Arena.accountShrink(1);
      ++Stats.StrengthenedLiterals;
      if (D.size() == 1) {
        Lit U = D[0];
        Arena.free(DR);
        uint8_t V = litValue(U);
        if (V == ValFalse) {
          Unsat = true;
          return false;
        }
        if (V == ValUndef)
          enqueue(U, CRefUndef);
      } else {
        attachClause(DR);
      }
    }
  }

  // Settle any units produced by strengthening, drop freed clauses from
  // the problem list, and compact the arena if the pass wasted enough.
  if (propagate() != CRefUndef) {
    Unsat = true;
    return false;
  }
  LiveEnd = 0;
  for (CRef R : ProblemClauses)
    if (!Arena.get(R).mark())
      ProblemClauses[LiveEnd++] = R;
  ProblemClauses.resize(LiveEnd);
  if (Arena.shouldCollect(GarbageFrac))
    garbageCollect();
  return true;
}

bool Solver::checkWatchInvariants() const {
  ClauseAllocator &Ar = const_cast<ClauseAllocator &>(Arena);
  auto watchedIn = [&](CRef R, Lit L) {
    const auto &Ws = Watches[(~L).code()];
    for (const Watcher &W : Ws)
      if (W.Cls == R)
        return true;
    return false;
  };
  for (const std::vector<CRef> *List : {&ProblemClauses, &Learnts}) {
    for (CRef R : *List) {
      ClauseAllocator::Clause C = Ar.get(R);
      if (C.mark())
        continue; // Freed but not yet compacted: must be detached.
      if (C.size() < 2)
        return false;
      if (!watchedIn(R, C[0]) || !watchedIn(R, C[1]))
        return false;
    }
  }
  for (uint32_t Code = 0; Code < Watches.size(); ++Code) {
    for (const Watcher &W : Watches[Code]) {
      ClauseAllocator::Clause C = Ar.get(W.Cls);
      if (C.mark())
        return false; // Watcher on a freed clause.
      if (!((~C[0]).code() == Code || (~C[1]).code() == Code))
        return false;
    }
  }
  return true;
}

/// \name Activity heap (binary max-heap with position index)
/// @{
void Solver::heapInsert(Var V) {
  OrderPos[V] = static_cast<int32_t>(Order.size());
  Order.push_back(V);
  heapSiftUp(Order.size() - 1);
}

Var Solver::heapPopMax() {
  Var Top = Order[0];
  OrderPos[Top] = -1;
  if (Order.size() > 1) {
    Order[0] = Order.back();
    OrderPos[Order[0]] = 0;
    Order.pop_back();
    heapSiftDown(0);
  } else {
    Order.pop_back();
  }
  return Top;
}

void Solver::heapSiftUp(size_t I) {
  Var V = Order[I];
  while (I > 0) {
    size_t Parent = (I - 1) / 2;
    if (!heapLess(Order[Parent], V))
      break;
    Order[I] = Order[Parent];
    OrderPos[Order[I]] = static_cast<int32_t>(I);
    I = Parent;
  }
  Order[I] = V;
  OrderPos[V] = static_cast<int32_t>(I);
}

void Solver::heapSiftDown(size_t I) {
  Var V = Order[I];
  for (;;) {
    size_t Left = 2 * I + 1;
    if (Left >= Order.size())
      break;
    size_t Right = Left + 1;
    size_t Best =
        Right < Order.size() && heapLess(Order[Left], Order[Right]) ? Right
                                                                    : Left;
    if (!heapLess(V, Order[Best]))
      break;
    Order[I] = Order[Best];
    OrderPos[Order[I]] = static_cast<int32_t>(I);
    I = Best;
  }
  Order[I] = V;
  OrderPos[V] = static_cast<int32_t>(I);
}
/// @}
