//===- Solver.cpp - CDCL implementation ------------------------*- C++ -*-===//

#include "sat/Solver.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::sat;

Solver::Solver() = default;

Var Solver::newVar() {
  Var V = numVars();
  Assigns.push_back(ValUndef);
  Phase.push_back(0);
  Info.push_back(VarInfo{});
  Activity.push_back(0);
  OrderPos.push_back(-1);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool Solver::addClause(const std::vector<Lit> &Lits) {
  if (Unsat)
    return false;
  assert(currentLevel() == 0 && "clauses must be added at the root level");
  // Simplify: drop duplicate/false literals, detect tautologies.
  std::vector<Lit> Simplified;
  for (Lit L : Lits) {
    assert(L.var() < numVars() && "literal over undeclared variable");
    uint8_t V = litValue(L);
    if (V == ValTrue)
      return true; // Satisfied at the root.
    if (V == ValFalse)
      continue;
    bool Duplicate = false;
    for (Lit Other : Simplified) {
      if (Other == L)
        Duplicate = true;
      if (Other == ~L)
        return true; // Tautology.
    }
    if (!Duplicate)
      Simplified.push_back(L);
  }
  if (Simplified.empty()) {
    Unsat = true;
    return false;
  }
  if (Simplified.size() == 1) {
    enqueue(Simplified[0], InvalidClause);
    if (propagate() != InvalidClause)
      Unsat = true;
    return !Unsat;
  }
  ClauseRef CR = static_cast<ClauseRef>(Clauses.size());
  Clauses.push_back(Clause{std::move(Simplified), 0, 0, false});
  attachClause(CR);
  return true;
}

void Solver::attachClause(ClauseRef CR) {
  Clause &C = Clauses[CR];
  assert(C.Lits.size() >= 2 && "attaching a short clause");
  Watches[(~C.Lits[0]).code()].push_back(Watcher{CR, C.Lits[1]});
  Watches[(~C.Lits[1]).code()].push_back(Watcher{CR, C.Lits[0]});
}

void Solver::enqueue(Lit L, ClauseRef Reason) {
  assert(litValue(L) == ValUndef && "enqueue of assigned literal");
  Assigns[L.var()] = L.negated() ? ValFalse : ValTrue;
  Phase[L.var()] = L.negated() ? 0 : 1;
  Info[L.var()] = VarInfo{Reason, currentLevel()};
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Stats.Propagations;
    std::vector<Watcher> &Ws = Watches[P.code()];
    size_t Keep = 0;
    for (size_t I = 0; I < Ws.size(); ++I) {
      Watcher W = Ws[I];
      // Blocker fast path: clause already satisfied.
      if (litValue(W.Blocker) == ValTrue) {
        Ws[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.Cls];
      Lit FalseLit = ~P;
      if (C.Lits[0] == FalseLit)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == FalseLit && "watch invariant broken");
      Lit First = C.Lits[0];
      if (litValue(First) == ValTrue) {
        Ws[Keep++] = Watcher{W.Cls, First};
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t J = 2; J < C.Lits.size(); ++J) {
        if (litValue(C.Lits[J]) != ValFalse) {
          std::swap(C.Lits[1], C.Lits[J]);
          Watches[(~C.Lits[1]).code()].push_back(Watcher{W.Cls, First});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Clause is unit or conflicting.
      if (litValue(First) == ValFalse) {
        // Conflict: restore remaining watchers and report.
        for (size_t J = I; J < Ws.size(); ++J)
          Ws[Keep++] = Ws[J];
        Ws.resize(Keep);
        return W.Cls;
      }
      Ws[Keep++] = W;
      enqueue(First, W.Cls);
    }
    Ws.resize(Keep);
  }
  return InvalidClause;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (OrderPos[V] >= 0)
    heapSiftUp(static_cast<size_t>(OrderPos[V]));
}

void Solver::varDecayActivity() { VarInc /= 0.95; }

void Solver::claBumpActivity(Clause &C) {
  C.Activity += ClaInc;
  if (C.Activity > 1e20) {
    for (ClauseRef CR : Learnts)
      Clauses[CR].Activity *= 1e-20;
    ClaInc *= 1e-20;
  }
}

void Solver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                     uint32_t &BacktrackLevel, uint32_t &Lbd) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Slot for the asserting literal.
  uint32_t PathCount = 0;
  Lit P;
  bool PValid = false;
  size_t TrailIdx = Trail.size();
  ClauseRef Reason = Conflict;

  do {
    assert(Reason != InvalidClause && "no reason during analysis");
    Clause &C = Clauses[Reason];
    if (C.Learnt)
      claBumpActivity(C);
    for (size_t J = PValid ? 1 : 0; J < C.Lits.size(); ++J) {
      Lit Q = C.Lits[J];
      if (Seen[Q.var()] || Info[Q.var()].Level == 0)
        continue;
      Seen[Q.var()] = 1;
      MarkedVars.push_back(Q.var());
      varBumpActivity(Q.var());
      if (Info[Q.var()].Level >= currentLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Find the next literal of the current level on the trail.
    while (!Seen[Trail[--TrailIdx].var()])
      ;
    P = Trail[TrailIdx];
    PValid = true;
    Seen[P.var()] = 0;
    Reason = Info[P.var()].Reason;
    --PathCount;
    if (PathCount > 0) {
      // Put the reason's asserting literal first for the next iteration.
      assert(Reason != InvalidClause);
      Clause &RC = Clauses[Reason];
      if (RC.Lits[0] != P) {
        for (size_t J = 1; J < RC.Lits.size(); ++J)
          if (RC.Lits[J] == P) {
            std::swap(RC.Lits[0], RC.Lits[J]);
            break;
          }
      }
    }
  } while (PathCount > 0);
  Learnt[0] = ~P;

  // Clause minimization: drop literals implied by the rest of the clause.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= 1u << (Info[Learnt[I].var()].Level & 31);
  size_t Keep = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Info[Learnt[I].var()].Reason == InvalidClause ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Keep++] = Learnt[I];
  }
  Learnt.resize(Keep);

  // Compute the backtrack level and move its literal to slot 1.
  BacktrackLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Info[Learnt[I].var()].Level > Info[Learnt[MaxIdx].var()].Level)
        MaxIdx = I;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BacktrackLevel = Info[Learnt[1].var()].Level;
  }

  // LBD: number of distinct decision levels.
  Lbd = 0;
  std::vector<uint32_t> LevelsSeen;
  for (Lit L : Learnt) {
    uint32_t Lev = Info[L.var()].Level;
    if (std::find(LevelsSeen.begin(), LevelsSeen.end(), Lev) ==
        LevelsSeen.end()) {
      LevelsSeen.push_back(Lev);
      ++Lbd;
    }
  }

  // Clear every mark set during this analysis (including literals that
  // were minimized away and marks set by litRedundant).
  for (Var V : MarkedVars)
    Seen[V] = 0;
  MarkedVars.clear();
}

bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  // DFS over reasons; a literal is redundant if every path reaches seen
  // literals or level-0 assignments.
  std::vector<Lit> Stack = {L};
  std::vector<Var> Cleared;
  while (!Stack.empty()) {
    Lit Cur = Stack.back();
    Stack.pop_back();
    ClauseRef Reason = Info[Cur.var()].Reason;
    if (Reason == InvalidClause) {
      for (Var V : Cleared)
        Seen[V] = 0;
      return false;
    }
    Clause &C = Clauses[Reason];
    for (size_t J = 0; J < C.Lits.size(); ++J) {
      Lit Q = C.Lits[J];
      if (Q.var() == Cur.var() || Seen[Q.var()] ||
          Info[Q.var()].Level == 0)
        continue;
      if (Info[Q.var()].Reason == InvalidClause ||
          !(AbstractLevels & (1u << (Info[Q.var()].Level & 31)))) {
        for (Var V : Cleared)
          Seen[V] = 0;
        return false;
      }
      Seen[Q.var()] = 1;
      Cleared.push_back(Q.var());
      MarkedVars.push_back(Q.var());
      Stack.push_back(Q);
    }
  }
  return true;
}

void Solver::backtrackTo(uint32_t Level) {
  if (currentLevel() <= Level)
    return;
  size_t Bound = TrailLims[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = Trail[I].var();
    Assigns[V] = ValUndef;
    Info[V].Reason = InvalidClause;
    if (OrderPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLims.resize(Level);
  PropagateHead = Trail.size();
}

Lit Solver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPopMax();
    if (Assigns[V] == ValUndef)
      return Lit(V, Phase[V] == 0);
  }
  return Lit(); // No unassigned variable: model found (checked by caller).
}

void Solver::reduceDb() {
  // Keep the better half by (LBD, activity); never drop reason clauses.
  std::sort(Learnts.begin(), Learnts.end(), [&](ClauseRef A, ClauseRef B) {
    const Clause &CA = Clauses[A], &CB = Clauses[B];
    if (CA.Lbd != CB.Lbd)
      return CA.Lbd < CB.Lbd;
    return CA.Activity > CB.Activity;
  });
  size_t Keep = Learnts.size() / 2;
  std::vector<ClauseRef> Kept(Learnts.begin(), Learnts.begin() + Keep);
  for (size_t I = Keep; I < Learnts.size(); ++I) {
    ClauseRef CR = Learnts[I];
    Clause &C = Clauses[CR];
    bool Locked = false;
    Lit L0 = C.Lits[0];
    if (litValue(L0) == ValTrue && Info[L0.var()].Reason == CR)
      Locked = true;
    if (Locked || C.Lbd <= 2) {
      Kept.push_back(CR);
      continue;
    }
    // Detach.
    for (int W = 0; W < 2; ++W) {
      auto &Ws = Watches[(~C.Lits[W]).code()];
      for (size_t J = 0; J < Ws.size(); ++J)
        if (Ws[J].Cls == CR) {
          Ws[J] = Ws.back();
          Ws.pop_back();
          break;
        }
    }
    C.Lits.clear();
    C.Lits.shrink_to_fit();
    ++Stats.ClausesDeleted;
  }
  Learnts = std::move(Kept);
}

uint64_t Solver::luby(uint64_t I) {
  // Knuth's formulation of the Luby sequence.
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 2)
    ++K;
  while ((1ULL << K) - 1 != I + 1) {
    I -= (1ULL << K) - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 2)
      ++K;
  }
  return 1ULL << (K - 1);
}

SolveResult Solver::solve(const std::vector<Lit> &Assumptions,
                          uint64_t MaxConflicts, Deadline DL,
                          const CancellationToken *Cancel) {
  if (Unsat)
    return SolveResult::Unsat;
  if (propagate() != InvalidClause) {
    Unsat = true;
    return SolveResult::Unsat;
  }

  uint64_t ConflictsAtStart = Stats.Conflicts;
  uint64_t RestartUnit = 128;
  uint64_t RestartIdx = 0;
  uint64_t NextRestart =
      Stats.Conflicts + RestartUnit * luby(RestartIdx);
  size_t MaxLearnts = 4096;
  std::vector<Lit> Learnt;
  uint64_t Ticks = 0;

  for (;;) {
    // Cheap cooperative abort: an atomic load every few hundred search
    // loop iterations, independent of the conflict rate.
    if ((++Ticks & 0xff) == 0 && Cancel && Cancel->cancelled())
      return SolveResult::Unknown;
    ClauseRef Conflict = propagate();
    if (Conflict != InvalidClause) {
      ++Stats.Conflicts;
      if (currentLevel() == 0) {
        Unsat = true;
        backtrackTo(0);
        return SolveResult::Unsat;
      }
      uint32_t BtLevel, Lbd;
      analyze(Conflict, Learnt, BtLevel, Lbd);
      // Backjumping may land below the assumption levels; the decision
      // loop re-pushes assumptions and detects a now-false one, which is
      // how assumption unsatisfiability surfaces.
      backtrackTo(BtLevel);
      Stats.LearntLiterals += Learnt.size();
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], InvalidClause);
      } else {
        ClauseRef CR = static_cast<ClauseRef>(Clauses.size());
        Clauses.push_back(Clause{Learnt, ClaInc, Lbd, true});
        Learnts.push_back(CR);
        attachClause(CR);
        enqueue(Learnt[0], CR);
      }
      varDecayActivity();
      continue;
    }

    // No conflict: maybe restart / reduce, then decide.
    if (Stats.Conflicts >= NextRestart && currentLevel() > Assumptions.size()) {
      ++Stats.Restarts;
      ++RestartIdx;
      NextRestart = Stats.Conflicts + RestartUnit * luby(RestartIdx);
      backtrackTo(static_cast<uint32_t>(Assumptions.size()));
      continue;
    }
    if (MaxConflicts && Stats.Conflicts - ConflictsAtStart >= MaxConflicts)
      return SolveResult::Unknown;
    if ((Stats.Conflicts & 0xff) == 0 && DL.expired())
      return SolveResult::Unknown;
    if (Learnts.size() >= MaxLearnts) {
      reduceDb();
      MaxLearnts += MaxLearnts / 2;
    }

    Lit Decision;
    bool HaveDecision = false;
    if (currentLevel() < Assumptions.size()) {
      Lit A = Assumptions[currentLevel()];
      uint8_t V = litValue(A);
      if (V == ValFalse) {
        backtrackTo(0);
        return SolveResult::Unsat;
      }
      if (V == ValTrue) {
        // Open a level anyway so level bookkeeping matches positions.
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
        continue;
      }
      Decision = A;
      HaveDecision = true;
    }
    if (!HaveDecision) {
      Decision = pickBranchLit();
      if (Assigns[Decision.var()] != ValUndef ||
          litValue(Decision) != ValUndef) {
        // pickBranchLit returned the default Lit(): all vars assigned.
        bool AllAssigned = true;
        for (uint8_t A : Assigns)
          AllAssigned &= A != ValUndef;
        if (AllAssigned) {
          Model.assign(numVars(), false);
          for (Var V = 0; V < numVars(); ++V)
            Model[V] = Assigns[V] == ValTrue;
          backtrackTo(0);
          return SolveResult::Sat;
        }
        continue;
      }
      ++Stats.Decisions;
    }
    TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Decision, InvalidClause);
  }
}

/// \name Activity heap (binary max-heap with position index)
/// @{
void Solver::heapInsert(Var V) {
  OrderPos[V] = static_cast<int32_t>(Order.size());
  Order.push_back(V);
  heapSiftUp(Order.size() - 1);
}

Var Solver::heapPopMax() {
  Var Top = Order[0];
  OrderPos[Top] = -1;
  if (Order.size() > 1) {
    Order[0] = Order.back();
    OrderPos[Order[0]] = 0;
    Order.pop_back();
    heapSiftDown(0);
  } else {
    Order.pop_back();
  }
  return Top;
}

void Solver::heapSiftUp(size_t I) {
  Var V = Order[I];
  while (I > 0) {
    size_t Parent = (I - 1) / 2;
    if (!heapLess(Order[Parent], V))
      break;
    Order[I] = Order[Parent];
    OrderPos[Order[I]] = static_cast<int32_t>(I);
    I = Parent;
  }
  Order[I] = V;
  OrderPos[V] = static_cast<int32_t>(I);
}

void Solver::heapSiftDown(size_t I) {
  Var V = Order[I];
  for (;;) {
    size_t Left = 2 * I + 1;
    if (Left >= Order.size())
      break;
    size_t Right = Left + 1;
    size_t Best =
        Right < Order.size() && heapLess(Order[Left], Order[Right]) ? Right
                                                                    : Left;
    if (!heapLess(V, Order[Best]))
      break;
    Order[I] = Order[Best];
    OrderPos[Order[I]] = static_cast<int32_t>(I);
    I = Best;
  }
  Order[I] = V;
  OrderPos[V] = static_cast<int32_t>(I);
}
/// @}
