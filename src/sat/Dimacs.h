//===- Dimacs.h - DIMACS CNF import/export -----------------------*- C++ -*-===//
///
/// \file
/// Reads and writes the standard DIMACS CNF format so the built-in solver
/// can be exercised against external instances and its inputs dumped for
/// debugging with external solvers.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_SAT_DIMACS_H
#define VBMC_SAT_DIMACS_H

#include "sat/Solver.h"
#include "support/Diagnostics.h"

#include <string>

namespace vbmc::sat {

/// Parses DIMACS text into \p Solver (variables created as needed).
/// Returns the number of clauses read.
ErrorOr<uint32_t> loadDimacs(const std::string &Text, Solver &Solver);

/// A CNF collector that renders to DIMACS (used by tests and the
/// --dump-cnf option of the vbmc tool).
class DimacsWriter {
public:
  void addClause(const std::vector<Lit> &Lits);
  uint32_t numClauses() const { return Count; }
  /// Renders the header and clauses.
  std::string str(uint32_t NumVars) const;

private:
  std::string Body;
  uint32_t Count = 0;
};

} // namespace vbmc::sat

#endif // VBMC_SAT_DIMACS_H
