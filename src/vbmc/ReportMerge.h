//===- ReportMerge.h - cross-document report aggregation ---------*- C++ -*-===//
///
/// \file
/// The aggregation side of the observability layer: a Merger that folds
/// any number of machine-readable VBMC artifacts — run reports
/// (vbmc-run-report/v1), bench telemetry (vbmc-bench/v1), fuzz campaign
/// summaries (vbmc-fuzz/v1) and Chrome trace exports — into one merged
/// document (vbmc-report-merged/v1) plus, when trace inputs were present,
/// one combined Chrome trace. This is what `vbmc-report merge` runs; the
/// farm uses it to reassemble a sharded sweep's per-shard documents into a
/// single CI artifact.
///
/// Merging is commutative where the data is (counters and timer sums) and
/// order-preserving where it is not (records are concatenated in add()
/// order, so callers that want determinism sort their input paths).
/// Chrome trace inputs are replayed through a TraceRecorder via its
/// merge() lane-shifting: each input's thread ids are remapped to fresh
/// lanes and its timeline is offset past the previous input's end, so the
/// combined trace shows the whole farm as one process tree.
///
/// Schema of the merged artifact (members only present when fed):
///   schema     "vbmc-report-merged/v1"
///   inputs     number of documents folded
///   sources    [{path, schema}] in add() order
///   runs       {count, verdicts{...}, failures{...}, records[...], stats}
///   bench      {rows, records[...]} — rows annotated with their bench name
///   fuzz       {campaigns, checked, passed, skipped, timeouts,
///               sandbox{crashes,ooms,timeouts,retries}, discrepancies[...]}
///   trace      {spans, dropped}
///   <section>  any extra section installed via setSection() (the farm
///              installs its deterministic results object under "farm")
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_REPORTMERGE_H
#define VBMC_VBMC_REPORTMERGE_H

#include "support/Json.h"
#include "support/Trace.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vbmc::report {

/// Identifies which writer produced \p Doc: the value of its "schema"
/// member, "chrome-trace" for a top-level array (the trace export has no
/// envelope), or "" when the document carries no recognizable mark.
std::string schemaOf(const json::Value &Doc);

/// Folds VBMC JSON artifacts into one merged document. See file comment.
class Merger {
public:
  Merger() { Recorder.enable(); }

  /// Classifies \p Doc by schemaOf() and folds it. Returns false (with
  /// \p Err set) for unknown or malformed documents — including
  /// vbmc-farm-shard/v1, whose semantics belong to the farm library; the
  /// vbmc-report tool routes those itself and registers them here via
  /// noteSource(). \p Path is only recorded for the source list.
  bool add(const std::string &Path, const json::Value &Doc, std::string *Err);

  /// Records a source that was folded externally (e.g. a farm shard) so
  /// the artifact's source list stays complete.
  void noteSource(const std::string &Path, const std::string &Schema);

  /// Installs a pre-rendered JSON value as a top-level member of the
  /// artifact. The caller vouches the text is one well-formed JSON value.
  /// Setting the same key twice replaces the value.
  void setSection(const std::string &Key, std::string RawJson);

  uint64_t inputCount() const { return Inputs; }
  bool hasTrace() const { return Recorder.spanCount() > 0; }

  /// The vbmc-report-merged/v1 document.
  std::string formatArtifact() const;

  /// The combined Chrome trace (only meaningful when hasTrace()).
  std::string formatChromeTrace() const { return Recorder.formatChromeTrace(); }

private:
  bool addRunReport(const std::string &Path, const json::Value &Doc,
                    std::string *Err);
  bool addBench(const std::string &Path, const json::Value &Doc,
                std::string *Err);
  bool addFuzz(const std::string &Path, const json::Value &Doc,
               std::string *Err);
  bool addChromeTrace(const json::Value &Doc, std::string *Err);

  uint64_t Inputs = 0;
  std::vector<std::pair<std::string, std::string>> Sources;

  // Run reports.
  uint64_t RunCount = 0;
  std::map<std::string, uint64_t> RunVerdicts;
  std::map<std::string, uint64_t> RunFailures;
  std::vector<std::string> RunRecords; ///< Pre-rendered condensed objects.
  std::map<std::string, double> RunStats;

  // Bench telemetry.
  uint64_t BenchRows = 0;
  std::vector<std::string> BenchRecords; ///< Rows + their bench name.

  // Fuzz campaigns.
  uint64_t FuzzCampaigns = 0;
  std::map<std::string, double> FuzzCounts; ///< checked/passed/... sums.
  std::vector<std::string> FuzzDiscrepancies; ///< Carried verbatim.

  // Chrome traces, lane-shifted into one recorder.
  TraceRecorder Recorder;
  double TraceEndMicros = 0; ///< Max end across inputs: next input's offset.
  uint64_t TraceDropped = 0;

  // Extra sections (insertion order preserved).
  std::vector<std::pair<std::string, std::string>> Sections;
};

} // namespace vbmc::report

#endif // VBMC_VBMC_REPORTMERGE_H
