//===- Robustness.cpp -----------------------------------------*- C++ -*-===//

#include "vbmc/Robustness.h"

#include "ir/Flatten.h"
#include "ra/RaExplorer.h"
#include "sc/ScExplorer.h"

using namespace vbmc;
using namespace vbmc::driver;

RobustnessResult vbmc::driver::checkRobustness(const ir::Program &P,
                                               uint64_t MaxStates) {
  RobustnessResult R;
  ir::FlatProgram FP = ir::flatten(P);

  // Terminal behaviours. collectTerminalRegs stops early when MaxStates
  // is exceeded; detect that by re-checking against an explicit query.
  auto ScSet = sc::collectScTerminalRegs(FP, std::nullopt, MaxStates);
  auto RaSet = ra::collectTerminalRegs(FP, std::nullopt, MaxStates);

  // Assertion reachability on both sides.
  sc::ScQuery SQ;
  SQ.Goal = sc::ScGoalKind::AnyError;
  SQ.B.Work = MaxStates;
  sc::ScResult ScErr = sc::exploreSc(FP, SQ);

  ra::RaQuery RQ;
  RQ.Goal = ra::GoalKind::AnyError;
  RQ.MaxStates = MaxStates;
  ra::RaResult RaErr = ra::exploreRa(FP, RQ);

  if (ScErr.Status == sc::ScStatus::StateLimit ||
      ScErr.Status == sc::ScStatus::Timeout ||
      RaErr.Status == ra::SearchStatus::StateLimit ||
      RaErr.Status == ra::SearchStatus::Timeout) {
    R.Note = "exploration budget exceeded";
    return R;
  }
  R.Conclusive = true;

  if (RaErr.reached() && !ScErr.reached()) {
    R.RaOnlyAssertionFailure = true;
    R.Robust = false;
    R.Note = "RA reaches an assertion violation SC cannot";
    return R;
  }

  for (const auto &Outcome : RaSet) {
    if (!ScSet.count(Outcome)) {
      R.Robust = false;
      R.WitnessOutcome = Outcome;
      R.Note = "RA-only terminal behaviour found";
      return R;
    }
  }
  R.Robust = true;
  R.Note = "RA and SC behaviours coincide";
  return R;
}
