//===- Isolation.cpp - sandboxed verification attempts ----------*- C++ -*-===//
//
// One verification attempt = one forked child. The child re-runs the
// plain in-process pipeline (translate + backend) under a fresh context
// carrying the parent's *remaining* deadline, then writes a line-based
// serialization of the CheckReport and its StatsRegistry snapshot to the
// report pipe. The parent classifies every way the child can die — exit
// code, signal, OOM, wall-clock kill — into the FailureKind carried on
// the result, so no backend misbehaviour can take the engine down.
//
// Wire-format numbers are emitted and parsed with std::to_chars /
// std::from_chars (support/Json.h): iostream formatting honors the global
// C++ locale and strtod the C locale, so a host/app locale with a ','
// decimal separator used to corrupt child timing stats across the pipe.
// Parsing is strict — a short or unparseable line is reported in the
// result note instead of silently reading as zero.
//
//===----------------------------------------------------------------------===//

#include "vbmc/Isolation.h"

#include "support/Json.h"

#include <limits>
#include <sstream>

using namespace vbmc;
using namespace vbmc::driver;

namespace {

/// Tab/newline-safe field escaping for the pipe protocol.
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char N = S[++I];
    Out += N == 't' ? '\t' : N == 'n' ? '\n' : N;
  }
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Tab = Line.find('\t', Pos);
    if (Tab == std::string::npos)
      Tab = Line.size();
    Fields.push_back(Line.substr(Pos, Tab - Pos));
    Pos = Tab + 1;
  }
  return Fields;
}

sandbox::FailureKind failureFromName(const std::string &Name) {
  using sandbox::FailureKind;
  if (Name == "crash")
    return FailureKind::Crash;
  if (Name == "oom")
    return FailureKind::OutOfMemory;
  if (Name == "timeout")
    return FailureKind::Timeout;
  if (Name == "exit")
    return FailureKind::ExitFailure;
  return FailureKind::None;
}

} // namespace

std::string vbmc::driver::serializeResult(const CheckReport &R,
                                          const StatsRegistry &Stats,
                                          const TraceRecorder *Trace) {
  std::ostringstream Out;
  Out << "verdict\t" << verdictName(R.Outcome) << "\n";
  Out << "failure\t" << sandbox::failureKindName(R.Failure) << "\n";
  Out << "mode\t" << engineModeName(R.ModeRan) << "\n";
  Out << "kused\t" << std::to_string(R.KUsed) << "\n";
  Out << "seconds\t" << json::formatDouble(R.Seconds) << "\n";
  Out << "translate\t" << json::formatDouble(R.TranslateSeconds) << "\n";
  Out << "work\t" << std::to_string(R.Work) << "\n";
  for (const Attempt &A : R.Attempts)
    Out << "attempt\t" << std::to_string(A.K) << "\t"
        << verdictName(A.Outcome) << "\t"
        << sandbox::failureKindName(A.Failure) << "\t"
        << json::formatDouble(A.Seconds) << "\n";
  if (!R.Note.empty())
    Out << "note\t" << escape(R.Note) << "\n";
  if (!R.WinningBackend.empty())
    Out << "winner\t" << escape(R.WinningBackend) << "\n";
  for (const sc::ScTraceStep &S : R.Trace)
    Out << "trace\t" << std::to_string(S.Proc) << "\t"
        << std::to_string(S.Instr) << "\n";
  for (const StatsRegistry::Entry &E : Stats.snapshot()) {
    if (E.IsCounter)
      Out << "stat.count\t" << escape(E.Name) << "\t"
          << std::to_string(E.Count) << "\n";
    else
      Out << "stat.seconds\t" << escape(E.Name) << "\t"
          << json::formatDouble(E.Seconds) << "\n";
  }
  if (Trace && Trace->enabled())
    for (const TraceSpan &S : Trace->snapshot())
      Out << "span\t" << escape(S.Name) << "\t" << escape(S.Category)
          << "\t" << json::formatDouble(S.StartMicros) << "\t"
          << json::formatDouble(S.DurationMicros) << "\t"
          << std::to_string(S.ThreadId) << "\n";
  Out << "end\t\n"; // Truncation sentinel: a cut-off pipe lacks it.
  return Out.str();
}

CheckReport vbmc::driver::parseResult(const std::string &Payload,
                                     StatsRegistry *MergeInto,
                                     std::vector<TraceSpan> *SpansOut) {
  CheckReport R;
  std::istringstream In(Payload);
  std::string Line;
  bool SawEnd = false;
  uint64_t Malformed = 0;
  std::string FirstBadLine;
  // A line whose key is recognized but whose payload fields are missing
  // or unparseable is *rejected*, not absorbed as zeros: strtod("") and
  // strtoul("") silently yield 0, which used to turn a truncated
  // "attempt" line still preceding the end sentinel into a phantom
  // k=0/0s record.
  auto bad = [&](const std::string &L) {
    if (Malformed++ == 0)
      FirstBadLine = L.substr(0, 64);
  };
  while (std::getline(In, Line)) {
    std::vector<std::string> F = splitTabs(Line);
    if (F.empty())
      continue;
    const std::string &Key = F[0];
    auto Field = [&](size_t I) -> std::string {
      return I < F.size() ? F[I] : std::string();
    };
    auto fieldDouble = [&](size_t I, double &Out) {
      return json::parseDouble(Field(I), Out);
    };
    auto fieldUint = [&](size_t I, uint64_t &Out) {
      return json::parseUint(Field(I), Out);
    };
    uint64_t U0 = 0, U1 = 0;
    double D0 = 0;
    if (Key == "verdict") {
      if (F.size() < 2)
        bad(Line);
      else
        R.Outcome = verdictFromName(Field(1));
    } else if (Key == "failure") {
      if (F.size() < 2)
        bad(Line);
      else
        R.Failure = failureFromName(Field(1));
    } else if (Key == "mode") {
      if (F.size() < 2)
        bad(Line);
      else
        engineModeFromName(Field(1), R.ModeRan); // Unknown: keep default.
    } else if (Key == "kused") {
      if (fieldUint(1, U0))
        R.KUsed = static_cast<uint32_t>(U0);
      else
        bad(Line);
    } else if (Key == "attempt") {
      if (F.size() >= 5 && fieldUint(1, U0) && fieldDouble(4, D0))
        R.Attempts.push_back(Attempt{static_cast<uint32_t>(U0),
                                     verdictFromName(Field(2)),
                                     failureFromName(Field(3)), D0});
      else
        bad(Line);
    } else if (Key == "seconds") {
      if (fieldDouble(1, D0))
        R.Seconds = D0;
      else
        bad(Line);
    } else if (Key == "translate") {
      if (fieldDouble(1, D0))
        R.TranslateSeconds = D0;
      else
        bad(Line);
    } else if (Key == "work") {
      if (fieldUint(1, U0))
        R.Work = U0;
      else
        bad(Line);
    } else if (Key == "note") {
      R.Note = unescape(Field(1));
    } else if (Key == "winner") {
      R.WinningBackend = unescape(Field(1));
    } else if (Key == "trace") {
      if (fieldUint(1, U0) && fieldUint(2, U1))
        R.Trace.push_back(sc::ScTraceStep{static_cast<uint32_t>(U0),
                                          static_cast<uint32_t>(U1)});
      else
        bad(Line);
    } else if (Key == "stat.count") {
      if (F.size() >= 3 && fieldUint(2, U0)) {
        if (MergeInto)
          MergeInto->addCount(unescape(Field(1)), U0);
      } else {
        bad(Line);
      }
    } else if (Key == "stat.seconds") {
      if (F.size() >= 3 && fieldDouble(2, D0)) {
        if (MergeInto)
          MergeInto->addSeconds(unescape(Field(1)), D0);
      } else {
        bad(Line);
      }
    } else if (Key == "span") {
      double Start = 0, Dur = 0;
      if (F.size() >= 6 && fieldDouble(3, Start) && fieldDouble(4, Dur) &&
          fieldUint(5, U0)) {
        if (SpansOut)
          SpansOut->push_back(TraceSpan{unescape(Field(1)),
                                        unescape(Field(2)), Start, Dur,
                                        static_cast<uint32_t>(U0)});
      } else {
        bad(Line);
      }
    } else if (Key == "end") {
      SawEnd = true;
    }
    // Unrecognized keys are skipped silently: a newer child may emit
    // lines an older parent does not know.
  }
  if (!SawEnd) {
    // A truncated report means the child died mid-write; do not trust
    // whatever prefix made it through.
    CheckReport Bad;
    Bad.Outcome = Verdict::Unknown;
    Bad.Failure = sandbox::FailureKind::ExitFailure;
    Bad.Note = "truncated report from sandboxed child";
    return Bad;
  }
  if (Malformed > 0) {
    std::string Warn = std::to_string(Malformed) +
                       " malformed report line(s) from sandboxed child "
                       "(first: \"" +
                       FirstBadLine + "\")";
    R.Note += (R.Note.empty() ? "" : "; ") + Warn;
  }
  return R;
}

CheckReport vbmc::driver::runIsolatedRequest(const ir::Program &P,
                                             const CheckRequest &Req,
                                             CheckContext &Ctx) {
  ScopedSpan SandboxSpan(Ctx.trace(), "sandbox.child", "sandbox");
  sandbox::SandboxOptions SO;
  SO.MemLimitBytes = Req.Opts.MemLimitBytes;
  double Remaining = Ctx.deadline().remainingSeconds();
  if (Remaining != std::numeric_limits<double>::infinity())
    SO.TimeoutSeconds = Remaining > 0 ? Remaining : 1e-3;
  SO.Cancel = &Ctx.token();

  // Child spans are timestamped against the child recorder's own epoch
  // (the fork); remember where that epoch sits on the parent clock so the
  // merged spans land at the right wall-clock offset.
  const bool Tracing = Ctx.trace().enabled();
  double ForkOffsetMicros = Tracing ? Ctx.trace().nowMicros() : 0;

  sandbox::SandboxOutcome Out = sandbox::runInSandbox(SO, [&]() {
    // The child owns a fresh context: the parent registry object exists
    // in the forked address space, but recording there would be invisible
    // to the parent, and serializing it would double-count the parent's
    // pre-fork entries.
    CheckContext ChildCtx(SO.TimeoutSeconds);
    if (Tracing)
      ChildCtx.trace().enable();
    CheckRequest ChildReq = Req;
    ChildReq.Opts.Isolate = false;   // No recursive sandboxing.
    ChildReq.Opts.BudgetSeconds = 0; // ChildCtx's deadline governs.
    if (Req.Mode == EngineMode::Single)
      ChildReq.Opts.RetryReduced = false; // The parent owns the retry policy.
    Engine E;
    CheckReport R = E.run(P, ChildReq, ChildCtx);
    return serializeResult(R, ChildCtx.stats(), &ChildCtx.trace());
  });

  if (Out.Completed) {
    std::vector<TraceSpan> ChildSpans;
    CheckReport R = parseResult(Out.Payload, &Ctx.stats(),
                                Tracing ? &ChildSpans : nullptr);
    if (Tracing)
      Ctx.trace().merge(ChildSpans, ForkOffsetMicros);
    return R;
  }

  CheckReport R;
  R.Outcome = Verdict::Unknown;
  if (Out.Cancelled) {
    R.Note = "cancelled";
    return R;
  }
  R.Failure = Out.Failure;
  R.Note = Out.Detail;
  switch (Out.Failure) {
  case sandbox::FailureKind::Crash:
  case sandbox::FailureKind::ExitFailure:
    Ctx.stats().addCount("sandbox.crash");
    break;
  case sandbox::FailureKind::OutOfMemory:
    Ctx.stats().addCount("sandbox.oom");
    break;
  case sandbox::FailureKind::Timeout:
    Ctx.stats().addCount("sandbox.timeout");
    break;
  case sandbox::FailureKind::None:
    break;
  }
  return R;
}

CheckReport vbmc::driver::runIsolatedAttempt(const ir::Program &P,
                                            const VbmcOptions &Opts,
                                            CheckContext &Ctx) {
  CheckRequest Req;
  Req.Mode = EngineMode::Single;
  Req.Opts = Opts;
  return runIsolatedRequest(P, Req, Ctx);
}
