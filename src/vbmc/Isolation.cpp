//===- Isolation.cpp - sandboxed verification attempts ----------*- C++ -*-===//
//
// One verification attempt = one forked child. The child re-runs the
// plain in-process pipeline (translate + backend) under a fresh context
// carrying the parent's *remaining* deadline, then writes a line-based
// serialization of the VbmcResult and its StatsRegistry snapshot to the
// report pipe. The parent classifies every way the child can die — exit
// code, signal, OOM, wall-clock kill — into the FailureKind carried on
// the result, so no backend misbehaviour can take the engine down.
//
//===----------------------------------------------------------------------===//

#include "vbmc/Isolation.h"

#include <cstdlib>
#include <limits>
#include <sstream>

using namespace vbmc;
using namespace vbmc::driver;

namespace {

/// Tab/newline-safe field escaping for the pipe protocol.
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char N = S[++I];
    Out += N == 't' ? '\t' : N == 'n' ? '\n' : N;
  }
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Tab = Line.find('\t', Pos);
    if (Tab == std::string::npos)
      Tab = Line.size();
    Fields.push_back(Line.substr(Pos, Tab - Pos));
    Pos = Tab + 1;
  }
  return Fields;
}

sandbox::FailureKind failureFromName(const std::string &Name) {
  using sandbox::FailureKind;
  if (Name == "crash")
    return FailureKind::Crash;
  if (Name == "oom")
    return FailureKind::OutOfMemory;
  if (Name == "timeout")
    return FailureKind::Timeout;
  if (Name == "exit")
    return FailureKind::ExitFailure;
  return FailureKind::None;
}

Verdict verdictFromName(const std::string &Name) {
  if (Name == "safe")
    return Verdict::Safe;
  if (Name == "unsafe")
    return Verdict::Unsafe;
  return Verdict::Unknown;
}

const char *verdictKey(Verdict V) {
  switch (V) {
  case Verdict::Safe:
    return "safe";
  case Verdict::Unsafe:
    return "unsafe";
  case Verdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

} // namespace

std::string vbmc::driver::serializeResult(const VbmcResult &R,
                                          const StatsRegistry &Stats) {
  std::ostringstream Out;
  Out.precision(17);
  Out << "verdict\t" << verdictKey(R.Outcome) << "\n";
  Out << "failure\t" << sandbox::failureKindName(R.Failure) << "\n";
  Out << "mode\t" << engineModeName(R.ModeRan) << "\n";
  Out << "kused\t" << R.KUsed << "\n";
  Out << "seconds\t" << R.Seconds << "\n";
  Out << "translate\t" << R.TranslateSeconds << "\n";
  Out << "work\t" << R.Work << "\n";
  for (const Attempt &A : R.Attempts)
    Out << "attempt\t" << A.K << "\t" << verdictKey(A.Outcome) << "\t"
        << sandbox::failureKindName(A.Failure) << "\t" << A.Seconds << "\n";
  if (!R.Note.empty())
    Out << "note\t" << escape(R.Note) << "\n";
  if (!R.WinningBackend.empty())
    Out << "winner\t" << escape(R.WinningBackend) << "\n";
  for (const sc::ScTraceStep &S : R.Trace)
    Out << "trace\t" << S.Proc << "\t" << S.Instr << "\n";
  for (const StatsRegistry::Entry &E : Stats.snapshot()) {
    if (E.IsCounter)
      Out << "stat.count\t" << escape(E.Name) << "\t" << E.Count << "\n";
    else
      Out << "stat.seconds\t" << escape(E.Name) << "\t" << E.Seconds << "\n";
  }
  Out << "end\t\n"; // Truncation sentinel: a cut-off pipe lacks it.
  return Out.str();
}

VbmcResult vbmc::driver::parseResult(const std::string &Payload,
                                     StatsRegistry *MergeInto) {
  VbmcResult R;
  std::istringstream In(Payload);
  std::string Line;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    std::vector<std::string> F = splitTabs(Line);
    if (F.empty())
      continue;
    const std::string &Key = F[0];
    auto Field = [&](size_t I) -> std::string {
      return I < F.size() ? F[I] : std::string();
    };
    if (Key == "verdict")
      R.Outcome = verdictFromName(Field(1));
    else if (Key == "failure")
      R.Failure = failureFromName(Field(1));
    else if (Key == "mode")
      engineModeFromName(Field(1), R.ModeRan); // Unknown names: keep default.
    else if (Key == "kused")
      R.KUsed =
          static_cast<uint32_t>(std::strtoul(Field(1).c_str(), nullptr, 10));
    else if (Key == "attempt")
      R.Attempts.push_back(Attempt{
          static_cast<uint32_t>(std::strtoul(Field(1).c_str(), nullptr, 10)),
          verdictFromName(Field(2)), failureFromName(Field(3)),
          std::strtod(Field(4).c_str(), nullptr)});
    else if (Key == "seconds")
      R.Seconds = std::strtod(Field(1).c_str(), nullptr);
    else if (Key == "translate")
      R.TranslateSeconds = std::strtod(Field(1).c_str(), nullptr);
    else if (Key == "work")
      R.Work = std::strtoull(Field(1).c_str(), nullptr, 10);
    else if (Key == "note")
      R.Note = unescape(Field(1));
    else if (Key == "winner")
      R.WinningBackend = unescape(Field(1));
    else if (Key == "trace")
      R.Trace.push_back(sc::ScTraceStep{
          static_cast<uint32_t>(std::strtoul(Field(1).c_str(), nullptr, 10)),
          static_cast<uint32_t>(
              std::strtoul(Field(2).c_str(), nullptr, 10))});
    else if (Key == "stat.count" && MergeInto)
      MergeInto->addCount(unescape(Field(1)),
                          std::strtoull(Field(2).c_str(), nullptr, 10));
    else if (Key == "stat.seconds" && MergeInto)
      MergeInto->addSeconds(unescape(Field(1)),
                            std::strtod(Field(2).c_str(), nullptr));
    else if (Key == "end")
      SawEnd = true;
  }
  if (!SawEnd) {
    // A truncated report means the child died mid-write; do not trust
    // whatever prefix made it through.
    VbmcResult Bad;
    Bad.Outcome = Verdict::Unknown;
    Bad.Failure = sandbox::FailureKind::ExitFailure;
    Bad.Note = "truncated report from sandboxed child";
    return Bad;
  }
  return R;
}

CheckReport vbmc::driver::runIsolatedRequest(const ir::Program &P,
                                             const CheckRequest &Req,
                                             CheckContext &Ctx) {
  sandbox::SandboxOptions SO;
  SO.MemLimitBytes = Req.Opts.MemLimitBytes;
  double Remaining = Ctx.deadline().remainingSeconds();
  if (Remaining != std::numeric_limits<double>::infinity())
    SO.TimeoutSeconds = Remaining > 0 ? Remaining : 1e-3;
  SO.Cancel = &Ctx.token();

  sandbox::SandboxOutcome Out = sandbox::runInSandbox(SO, [&]() {
    // The child owns a fresh context: the parent registry object exists
    // in the forked address space, but recording there would be invisible
    // to the parent, and serializing it would double-count the parent's
    // pre-fork entries.
    CheckContext ChildCtx(SO.TimeoutSeconds);
    CheckRequest ChildReq = Req;
    ChildReq.Opts.Isolate = false;   // No recursive sandboxing.
    ChildReq.Opts.BudgetSeconds = 0; // ChildCtx's deadline governs.
    if (Req.Mode == EngineMode::Single)
      ChildReq.Opts.RetryReduced = false; // The parent owns the retry policy.
    Engine E;
    CheckReport R = E.run(P, ChildReq, ChildCtx);
    return serializeResult(R, ChildCtx.stats());
  });

  if (Out.Completed)
    return parseResult(Out.Payload, &Ctx.stats());

  CheckReport R;
  R.Outcome = Verdict::Unknown;
  if (Out.Cancelled) {
    R.Note = "cancelled";
    return R;
  }
  R.Failure = Out.Failure;
  R.Note = Out.Detail;
  switch (Out.Failure) {
  case sandbox::FailureKind::Crash:
  case sandbox::FailureKind::ExitFailure:
    Ctx.stats().addCount("sandbox.crash");
    break;
  case sandbox::FailureKind::OutOfMemory:
    Ctx.stats().addCount("sandbox.oom");
    break;
  case sandbox::FailureKind::Timeout:
    Ctx.stats().addCount("sandbox.timeout");
    break;
  case sandbox::FailureKind::None:
    break;
  }
  return R;
}

VbmcResult vbmc::driver::runIsolatedAttempt(const ir::Program &P,
                                            const VbmcOptions &Opts,
                                            CheckContext &Ctx) {
  CheckRequest Req;
  Req.Mode = EngineMode::Single;
  Req.Opts = Opts;
  return runIsolatedRequest(P, Req, Ctx);
}
