//===- Engine.cpp - the staged verification engine --------------*- C++ -*-===//
//
// The engine is organized as a staged pipeline over one shared
// CheckContext: translate ([[.]]_K), flatten (explicit path only), then
// decide with a backend. Every stage polls the context's deadline and
// cancellation token and records its cost into the context's
// StatsRegistry. On top of the single-backend pipeline sit the
// multi-attempt modes: Iterative (fresh pipeline per K), Portfolio (race
// both backends, cancel the loser), ParallelDeepening (several K at once
// with the smallest-K reporting guarantee), and Incremental (translate and
// encode once at MaxK, then deepen by re-solving the one persistent CDCL
// solver under per-K assumption literals — see bmc::IncrementalBmc).
//
//===----------------------------------------------------------------------===//

#include "vbmc/Engine.h"

#include "bmc/Encoder.h"
#include "ir/Flatten.h"
#include "ir/Printer.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"
#include "vbmc/Isolation.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

using namespace vbmc;
using namespace vbmc::driver;

const char *vbmc::driver::engineModeName(EngineMode M) {
  switch (M) {
  case EngineMode::Single:
    return "single";
  case EngineMode::Iterative:
    return "iterative";
  case EngineMode::Portfolio:
    return "portfolio";
  case EngineMode::ParallelDeepening:
    return "parallel-deepening";
  case EngineMode::Incremental:
    return "incremental";
  }
  return "single";
}

bool vbmc::driver::engineModeFromName(const std::string &Name,
                                      EngineMode &M) {
  if (Name == "single")
    M = EngineMode::Single;
  else if (Name == "iterative")
    M = EngineMode::Iterative;
  else if (Name == "portfolio")
    M = EngineMode::Portfolio;
  else if (Name == "parallel-deepening")
    M = EngineMode::ParallelDeepening;
  else if (Name == "incremental")
    M = EngineMode::Incremental;
  else
    return false;
  return true;
}

const char *vbmc::driver::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Safe:
    return "safe";
  case Verdict::Unsafe:
    return "unsafe";
  case Verdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

Verdict vbmc::driver::verdictFromName(const std::string &Name) {
  if (Name == "safe")
    return Verdict::Safe;
  if (Name == "unsafe")
    return Verdict::Unsafe;
  return Verdict::Unknown;
}

const char *vbmc::driver::phasePolicyName(PhasePolicy P) {
  switch (P) {
  case PhasePolicy::Saved:
    return "saved";
  case PhasePolicy::Positive:
    return "positive";
  case PhasePolicy::Negative:
    return "negative";
  case PhasePolicy::Random:
    return "random";
  }
  return "saved";
}

bool vbmc::driver::phasePolicyFromName(const std::string &Name,
                                       PhasePolicy &P) {
  if (Name == "saved")
    P = PhasePolicy::Saved;
  else if (Name == "positive")
    P = PhasePolicy::Positive;
  else if (Name == "negative")
    P = PhasePolicy::Negative;
  else if (Name == "random")
    P = PhasePolicy::Random;
  else
    return false;
  return true;
}

std::string vbmc::driver::encodingCacheKey(const ir::Program &P,
                                           const CheckRequest &Req) {
  const VbmcOptions &O = Req.Opts;
  // PhaseSeed only disambiguates Random polarities; canonicalize it to 0
  // otherwise so e.g. `--phase saved --phase-seed 7` still shares the
  // default encoding.
  uint64_t Seed = O.Phase == PhasePolicy::Random ? O.PhaseSeed : 0;
  return "maxk=" + std::to_string(Req.MaxK) +
         "|l=" + std::to_string(O.L) +
         "|cas=" + std::to_string(O.CasAllowance) +
         "|mem=" + std::to_string(O.MemLimitBytes) +
         "|conf=" + std::to_string(O.MaxConflicts) +
         "|prop=" + std::to_string(O.MaxPropagations) +
         "|phase=" + phasePolicyName(O.Phase) +
         "|seed=" + std::to_string(Seed) +
         "|mono=" + (O.MonotoneLemmas ? "1" : "0") + "|" +
         ir::printProgram(P);
}

std::string vbmc::driver::verdictCacheKey(const ir::Program &P,
                                          const CheckRequest &Req) {
  const VbmcOptions &O = Req.Opts;
  // Strategy fields first, then the full encoding identity (which already
  // ends with the program text). Budget/deadline/isolation knobs are
  // deliberately absent: callers must only cache conclusive verdicts, and
  // those are budget-independent.
  return "mode=" + std::string(engineModeName(Req.Mode)) +
         "|backend=" + (O.Backend == BackendKind::Sat ? "sat" : "explicit") +
         "|k=" + std::to_string(O.K) +
         "|threads=" + std::to_string(Req.Threads) +
         "|maxstates=" + std::to_string(O.MaxStates) +
         "|sow=" + (O.SwitchOnlyAfterWrite ? "1" : "0") + "|" +
         encodingCacheKey(P, Req);
}

namespace {

//===----------------------------------------------------------------------===//
// Fault injection (fault-tolerance self-tests)
//===----------------------------------------------------------------------===//

uint64_t countBodyStmts(const std::vector<ir::Stmt> &Body) {
  uint64_t N = 0;
  for (const ir::Stmt &S : Body)
    N += 1 + countBodyStmts(S.Then) + countBodyStmts(S.Else);
  return N;
}

uint64_t countProgramStmts(const ir::Program &P) {
  uint64_t N = 0;
  for (const ir::Process &Proc : P.Procs)
    N += countBodyStmts(Proc.Body);
  return N;
}

/// Deliberate allocation storm: grabs and touches memory until either a
/// real std::bad_alloc (under an RLIMIT_AS sandbox) or a synthetic one at
/// a 256 MB cap (so the un-sandboxed self-test cannot eat the machine).
void allocationStorm() {
  constexpr size_t Chunk = 1 << 20;
  constexpr size_t Cap = 256u << 20;
  std::vector<std::unique_ptr<char[]>> Hog;
  for (size_t Total = 0;; Total += Chunk) {
    if (Total >= Cap)
      throw std::bad_alloc();
    Hog.push_back(std::make_unique<char[]>(Chunk));
    std::memset(Hog.back().get(), 0xAB, Chunk);
  }
}

/// Backend-death faults for validating the sandbox: `backend.crash` dies
/// on SIGSEGV, `backend.hog-memory` storms the allocator. The `-odd` /
/// `-even` variants key deterministically on the translated program's
/// statement-count parity, so one fixed-seed fuzz campaign exercises both
/// death modes across its program stream.
void maybeInjectBackendFault(const ir::Program &Translated) {
  if (fault::enabled("backend.crash"))
    raise(SIGSEGV);
  if (fault::enabled("backend.hog-memory"))
    allocationStorm();
  uint64_t Parity = countProgramStmts(Translated) % 2;
  if (fault::enabled("backend.crash-odd") && Parity == 1)
    raise(SIGSEGV);
  if (fault::enabled("backend.hog-even") && Parity == 0)
    allocationStorm();
}

CheckReport runExplicit(const ir::Program &Translated, uint32_t ContextBound,
                        const VbmcOptions &Opts, const CheckContext &Ctx) {
  CheckReport R;
  ir::FlatProgram FP;
  {
    ScopedStageTimer T(Ctx.stats(), "flatten.seconds");
    ScopedSpan Span(Ctx.trace(), "flatten", "engine");
    FP = ir::flatten(Translated);
  }
  sc::ScQuery Q;
  Q.Goal = sc::ScGoalKind::AnyError;
  Q.ContextBound = ContextBound;
  Q.SwitchOnlyAfterWrite = Opts.SwitchOnlyAfterWrite;
  Q.B.Seconds = Opts.BudgetSeconds;
  Q.B.Work = Opts.MaxStates;
  Q.Ctx = &Ctx;
  sc::ScResult SR = sc::exploreSc(FP, Q);
  R.Work = SR.StatesVisited;
  R.Seconds = SR.Seconds;
  switch (SR.Status) {
  case sc::ScStatus::Reached:
    R.Outcome = Verdict::Unsafe;
    R.Trace = std::move(SR.Trace);
    break;
  case sc::ScStatus::Exhausted:
    R.Outcome = Verdict::Safe;
    break;
  case sc::ScStatus::StateLimit:
    R.Outcome = Verdict::Unknown;
    R.Note = "state limit exceeded";
    break;
  case sc::ScStatus::Timeout:
    R.Outcome = Verdict::Unknown;
    R.Note = "timeout";
    break;
  case sc::ScStatus::Cancelled:
    R.Outcome = Verdict::Unknown;
    R.Note = "cancelled";
    break;
  }
  return R;
}

/// Stage 1 of the pipeline: [[.]]_K. Records translate.* stats.
translation::TranslationResult translateStage(const ir::Program &P,
                                              const VbmcOptions &Opts,
                                              const CheckContext &Ctx) {
  ScopedSpan Span(Ctx.trace(), "translate", "engine");
  translation::TranslationOptions TO;
  TO.K = Opts.K;
  TO.CasAllowance = Opts.CasAllowance;
  return translation::translateToSc(P, TO, &Ctx.stats());
}

/// Stage 2: decide the translated program with the selected backend. A
/// std::bad_alloc from either backend degrades to a classified
/// OutOfMemory Unknown instead of std::terminate — the in-process half of
/// the fault-tolerance story (the sandbox is the out-of-process half).
CheckReport backendStage(const translation::TranslationResult &TR,
                         const VbmcOptions &Opts, const CheckContext &Ctx) {
  ScopedSpan Span(Ctx.trace(),
                  Opts.Backend == BackendKind::Explicit ? "backend.explicit"
                                                        : "backend.sat",
                  "engine");
  try {
    maybeInjectBackendFault(TR.Prog);
    return Opts.Backend == BackendKind::Explicit
               ? runExplicit(TR.Prog, TR.ContextBound, Opts, Ctx)
               : runSatBackend(TR.Prog, TR.ContextBound, Opts, &Ctx);
  } catch (const std::bad_alloc &) {
    CheckReport R;
    R.Outcome = Verdict::Unknown;
    R.Failure = sandbox::FailureKind::OutOfMemory;
    R.Note = "backend allocation failure (std::bad_alloc)";
    return R;
  }
}

/// One in-process attempt: translate, then decide.
CheckReport runOnceInProcess(const ir::Program &P, const VbmcOptions &Opts,
                             CheckContext &Ctx) {
  Timer TranslateWatch;
  translation::TranslationResult TR = translateStage(P, Opts, Ctx);
  double TranslateSeconds = TranslateWatch.elapsedSeconds();
  if (Ctx.interrupted()) {
    CheckReport R;
    R.Outcome = Verdict::Unknown;
    R.Note = Ctx.cancelled() ? "cancelled" : "budget exhausted";
    R.TranslateSeconds = TranslateSeconds;
    return R;
  }
  CheckReport R = backendStage(TR, Opts, Ctx);
  // Do NOT overwrite the backend-reported Seconds with a driver-side
  // timer: translation cost is reported separately, both here and as the
  // translate.seconds / backend stage entries in the StatsRegistry.
  R.TranslateSeconds = TranslateSeconds;
  return R;
}

/// One attempt, sandboxed when the options ask for it (and the platform
/// can): process isolation turns any backend death into a classified
/// Unknown on the parent side.
CheckReport runOnce(const ir::Program &P, const VbmcOptions &Opts,
                    CheckContext &Ctx) {
  ScopedSpan Span(Ctx.trace(), "attempt.k" + std::to_string(Opts.K),
                  "engine");
  if (Opts.Isolate && sandbox::available())
    return runIsolatedAttempt(P, Opts, Ctx);
  return runOnceInProcess(P, Opts, Ctx);
}

/// The retry policy's reduced bounds: halve the unroll bound and the
/// view-switch budget. The resulting verdict covers a smaller execution
/// subset, which the driver flags in the result note.
VbmcOptions reducedBounds(const VbmcOptions &O) {
  VbmcOptions R = O;
  R.L = std::max<uint32_t>(1, O.L / 2);
  R.K = O.K / 2;
  return R;
}

bool boundsReducible(const VbmcOptions &O) { return O.L > 1 || O.K > 0; }

std::string joinNotes(std::string Base, const std::string &Extra) {
  if (Extra.empty())
    return Base;
  if (!Base.empty())
    Base += "; ";
  return Base + Extra;
}

//===----------------------------------------------------------------------===//
// Modes
//===----------------------------------------------------------------------===//

CheckReport runSingleMode(const ir::Program &P, const VbmcOptions &Opts,
                          CheckContext &Ctx) {
  CheckReport R = runOnce(P, Opts, Ctx);
  // Retry policy: one re-attempt at reduced bounds after a memory kill
  // (sandboxed or the encoder's in-process byte ceiling), while there is
  // still budget to spend. Smaller bounds mean a smaller encoding / state
  // space, so the retry frequently rescues a verdict the first attempt
  // could not afford.
  if (R.Failure == sandbox::FailureKind::OutOfMemory && Opts.RetryReduced &&
      boundsReducible(Opts) && !Ctx.interrupted()) {
    Ctx.stats().addCount("sandbox.retries");
    VbmcOptions Red = reducedBounds(Opts);
    Red.RetryReduced = false;
    std::string Bounds =
        "k=" + std::to_string(Red.K) + " l=" + std::to_string(Red.L);
    CheckReport Retry = runOnce(P, Red, Ctx);
    if (Retry.Outcome != Verdict::Unknown) {
      Retry.Note += (Retry.Note.empty() ? "" : "; ") +
                    ("recovered at reduced bounds " + Bounds +
                     " after memory kill");
      Retry.ModeRan = EngineMode::Single;
      Retry.KUsed = Red.K;
      if (Retry.Attempts.empty())
        Retry.Attempts.push_back(
            Attempt{Red.K, Retry.Outcome, Retry.Failure, Retry.Seconds});
      return Retry;
    }
    R.Note += "; retry at reduced bounds " + Bounds + " also inconclusive" +
              (Retry.Note.empty() ? "" : ": " + Retry.Note);
  }
  R.ModeRan = EngineMode::Single;
  R.KUsed = Opts.K;
  if (R.Attempts.empty())
    R.Attempts.push_back(Attempt{Opts.K, R.Outcome, R.Failure, R.Seconds});
  return R;
}

CheckReport runPortfolioMode(const ir::Program &P, const VbmcOptions &Opts,
                             CheckContext &Ctx) {
  // With isolation, every arm runs the full pipeline in its own sandbox
  // (translation included): a crashing or memory-eating arm dies alone
  // and no longer loses the race for everyone. Without it, translate
  // once and race the backends on the shared SC program.
  const bool Isolated = Opts.Isolate && sandbox::available();
  translation::TranslationResult TR;
  double TranslateSeconds = 0;
  if (!Isolated) {
    Timer TranslateWatch;
    TR = translateStage(P, Opts, Ctx);
    TranslateSeconds = TranslateWatch.elapsedSeconds();
    if (Ctx.interrupted()) {
      CheckReport R;
      R.Outcome = Verdict::Unknown;
      R.Note = Ctx.cancelled() ? "cancelled" : "budget exhausted";
      R.TranslateSeconds = TranslateSeconds;
      R.ModeRan = EngineMode::Portfolio;
      R.KUsed = Opts.K;
      return R;
    }
  }

  constexpr int NumRacers = 2;
  const char *Names[NumRacers] = {"explicit", "sat"};
  CheckContext Racers[NumRacers] = {Ctx.child(), Ctx.child()};
  CheckReport Results[NumRacers];
  std::mutex M;
  int Winner = -1;

  auto race = [&](int Idx, BackendKind B) {
    ScopedSpan Span(Ctx.trace(), std::string("portfolio.") + Names[Idx],
                    "engine");
    VbmcOptions O = Opts;
    O.Backend = B;
    // The full single-mode pipeline (not backendStage) in the isolated
    // case: the child re-translates inside its own address space, and the
    // arm keeps the per-arm retry policy.
    CheckReport R = Isolated ? runSingleMode(P, O, Racers[Idx])
                             : backendStage(TR, O, Racers[Idx]);
    std::lock_guard<std::mutex> L(M);
    Results[Idx] = std::move(R);
    // First conclusive verdict wins; cancel the other racer right away
    // so it stops burning the machine.
    if (Winner < 0 && Results[Idx].Outcome != Verdict::Unknown) {
      Winner = Idx;
      for (int J = 0; J < NumRacers; ++J)
        if (J != Idx)
          Racers[J].cancel();
    }
  };

  std::thread ExplicitThread(race, 0, BackendKind::Explicit);
  std::thread SatThread(race, 1, BackendKind::Sat);
  ExplicitThread.join();
  SatThread.join();

  CheckReport R;
  if (Winner >= 0) {
    R = std::move(Results[Winner]);
    R.WinningBackend = Names[Winner];
  } else {
    // Both inconclusive: surface both notes, and carry the first
    // classified fault so exit codes / retry policies see it.
    R.Outcome = Verdict::Unknown;
    R.Seconds = std::max(Results[0].Seconds, Results[1].Seconds);
    for (const CheckReport &Arm : Results)
      if (Arm.failed()) {
        R.Failure = Arm.Failure;
        break;
      }
    R.Note = "portfolio inconclusive: explicit: " +
             (Results[0].Note.empty() ? "unknown" : Results[0].Note) +
             "; sat: " +
             (Results[1].Note.empty() ? "unknown" : Results[1].Note);
  }
  if (!Isolated)
    R.TranslateSeconds = TranslateSeconds;
  R.ModeRan = EngineMode::Portfolio;
  R.KUsed = Opts.K;
  R.Attempts.assign(1, Attempt{Opts.K, R.Outcome, R.Failure, R.Seconds});
  return R;
}

CheckReport runIterativeMode(const ir::Program &P, uint32_t MaxK,
                             const VbmcOptions &BaseOpts,
                             CheckContext &Ctx) {
  Timer Watch;
  CheckReport R;
  R.ModeRan = EngineMode::Iterative;
  bool SawInconclusive = false;
  for (uint32_t K = 0; K <= MaxK; ++K) {
    if (Ctx.interrupted()) {
      SawInconclusive = true;
      break;
    }
    VbmcOptions Opts = BaseOpts;
    Opts.K = K;
    // The shared context's deadline already hands each iteration
    // whatever wall clock is left; no per-iteration budget arithmetic.
    Opts.BudgetSeconds = 0;
    CheckReport Step = runSingleMode(P, Opts, Ctx);
    R.Attempts.push_back(
        Attempt{K, Step.Outcome, Step.Failure, Step.Seconds});
    if (Step.unsafe()) {
      R.Outcome = Verdict::Unsafe;
      R.KUsed = K;
      R.Note = Step.Note;
      R.Trace = std::move(Step.Trace);
      R.Work = Step.Work;
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    if (Step.failed() && !sandbox::isFailure(R.Failure))
      R.Failure = Step.Failure;
    SawInconclusive |= Step.Outcome == Verdict::Unknown;
  }
  R.Outcome = SawInconclusive ? Verdict::Unknown : Verdict::Safe;
  R.KUsed = MaxK;
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

CheckReport runParallelMode(const ir::Program &P, uint32_t MaxK,
                            uint32_t Threads, const VbmcOptions &BaseOpts,
                            CheckContext &Ctx) {
  Timer Watch;
  const uint32_t NumK = MaxK + 1;
  Threads = std::clamp(Threads, 1u, NumK);

  // One cancellable child context per K, so an UNSAFE at K can stop every
  // in-flight run of a *larger* K (their verdicts can no longer matter)
  // while smaller Ks always run to completion: the paper's guarantee is
  // UNSAFE for the smallest buggy K.
  std::vector<CheckContext> KCtx;
  KCtx.reserve(NumK);
  for (uint32_t K = 0; K < NumK; ++K)
    KCtx.push_back(Ctx.child());

  std::vector<Attempt> Reports(NumK);
  std::vector<uint8_t> Ran(NumK, 0);
  std::mutex M;
  uint32_t NextK = 0;        // Guarded by M.
  uint32_t BestUnsafe = ~0u; // Guarded by M.

  auto worker = [&] {
    for (;;) {
      uint32_t K;
      {
        std::lock_guard<std::mutex> L(M);
        // Claim the next K; skip values above a known-unsafe K.
        do {
          K = NextK++;
        } while (K < NumK && K > BestUnsafe);
        if (K >= NumK)
          return;
      }
      VbmcOptions Opts = BaseOpts;
      Opts.K = K;
      Opts.BudgetSeconds = 0; // The shared deadline governs.
      CheckReport Step = runSingleMode(P, Opts, KCtx[K]);
      std::lock_guard<std::mutex> L(M);
      Reports[K] = Attempt{K, Step.Outcome, Step.Failure, Step.Seconds};
      Ran[K] = 1;
      if (Step.unsafe() && K < BestUnsafe) {
        BestUnsafe = K;
        for (uint32_t J = K + 1; J < NumK; ++J)
          KCtx[J].cancel();
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (uint32_t T = 0; T < Threads; ++T)
    Pool.emplace_back(worker);
  for (std::thread &T : Pool)
    T.join();

  CheckReport R;
  R.ModeRan = EngineMode::ParallelDeepening;
  bool SawInconclusive = false;
  bool AllSafe = true;
  for (uint32_t K = 0; K < NumK; ++K) {
    if (K > BestUnsafe)
      break; // Cancelled/skipped tails are not part of the report.
    if (!Ran[K]) {
      SawInconclusive = true; // Preempted by the run-wide deadline.
      AllSafe = false;
      continue;
    }
    R.Attempts.push_back(Reports[K]);
    SawInconclusive |= Reports[K].Outcome == Verdict::Unknown;
    AllSafe &= Reports[K].Outcome == Verdict::Safe;
    if (sandbox::isFailure(Reports[K].Failure) &&
        !sandbox::isFailure(R.Failure))
      R.Failure = Reports[K].Failure;
  }
  if (BestUnsafe != ~0u) {
    R.Outcome = Verdict::Unsafe;
    R.KUsed = BestUnsafe;
  } else if (AllSafe && !SawInconclusive) {
    R.Outcome = Verdict::Safe;
    R.KUsed = MaxK;
  } else {
    R.Outcome = Verdict::Unknown;
    R.KUsed = MaxK;
  }
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

/// Holds the cross-run state: the persistent-encoding cache for
/// incremental mode. Each entry keeps one bmc::IncrementalBmc (circuit +
/// CDCL solver + per-budget selector literals) keyed by the program text
/// and every knob that shapes the encoding.
///
/// The cache is a hash-keyed LRU: a list ordered most-recently-used
/// first, plus a multimap from the key's hash to the list node (multimap
/// because distinct keys may collide on the hash; the full key is
/// compared before a hit counts). Lookups touch the entry to the front;
/// capacity pressure evicts from the back, so a serve worker cycling
/// over a handful of hot programs never drops the one it needs next.
class vbmc::driver::Engine::Impl {
public:
  struct CacheEntry {
    std::string Key;
    std::unique_ptr<bmc::IncrementalBmc> Inc;
    double TranslateSeconds = 0;
  };
  using CacheList = std::list<CacheEntry>;

  static std::string cacheKey(const ir::Program &P, const CheckRequest &Req) {
    // The canonical key is shared with vbmc-serve (affinity scheduling
    // keys on the same string); keep every solve-relevant option in it —
    // see encodingCacheKey's contract.
    return encodingCacheKey(P, Req);
  }

  /// Finds and touches the entry for \p Key; null on miss. The returned
  /// pointer stays valid until the entry is evicted (list nodes never
  /// move).
  CacheEntry *lookup(const std::string &Key) {
    auto Range = Index.equal_range(std::hash<std::string>{}(Key));
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second->Key == Key) {
        Cache.splice(Cache.begin(), Cache, It->second);
        return &*It->second;
      }
    return nullptr;
  }

  /// Inserts \p E as the most-recent entry, evicting from the LRU end
  /// to stay within capacity (evictions are counted into \p Stats).
  CacheEntry *insert(CacheEntry E, StatsRegistry &Stats) {
    while (Cache.size() >= Capacity) {
      removeByKey(Cache.back().Key);
      Stats.addCount("engine.incremental.cache_evictions");
    }
    Cache.push_front(std::move(E));
    Index.emplace(std::hash<std::string>{}(Cache.front().Key),
                  Cache.begin());
    return &Cache.front();
  }

  /// Drops the entry for \p Key (no-op when absent). Used when a
  /// persistent solver is left mid-flight inconsistent by an allocation
  /// failure.
  void removeByKey(const std::string &Key) {
    auto Range = Index.equal_range(std::hash<std::string>{}(Key));
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second->Key == Key) {
        Cache.erase(It->second);
        Index.erase(It);
        return;
      }
  }

  void setCapacity(size_t Entries) {
    Capacity = Entries < 1 ? 1 : Entries;
    // Shrinking drops the least-recently-used overflow now; these are
    // reconfigurations, not capacity-pressure evictions, so they are
    // not counted.
    while (Cache.size() > Capacity)
      removeByKey(Cache.back().Key);
  }

  CheckReport runIncremental(const ir::Program &P, const CheckRequest &Req,
                             CheckContext &Ctx);

  /// Bounded so a long-lived Engine fuzzing thousands of programs does
  /// not hoard solvers; serve workers resize via --cache-entries.
  static constexpr size_t DefaultCacheCapacity = 4;
  size_t Capacity = DefaultCacheCapacity;
  CacheList Cache; ///< Most-recently-used first.
  std::unordered_multimap<uint64_t, CacheList::iterator> Index;
};

CheckReport
vbmc::driver::Engine::Impl::runIncremental(const ir::Program &P,
                                           const CheckRequest &Req,
                                           CheckContext &Ctx) {
  Timer Watch;
  VbmcOptions Opts = Req.Opts;
  // Incremental deepening is a Sat-backend strategy: the persistent
  // object is a CDCL solver. The backend knob is ignored here.
  Opts.Backend = BackendKind::Sat;

  const std::string Key = cacheKey(P, Req);
  CacheEntry *Entry = lookup(Key);

  std::string FallbackWhy;
  double TranslateSeconds = 0;
  if (Entry) {
    Ctx.stats().addCount("engine.incremental.cache_hits");
    TranslateSeconds = Entry->TranslateSeconds;
  } else {
    Ctx.stats().addCount("engine.incremental.cache_misses");
    // Build the one-time encoding: translate at MaxK, encode at the
    // matching context bound, precompute every budget selector.
    try {
      ScopedSpan EncodeSpan(Ctx.trace(), "incremental.encode", "engine");
      Timer TranslateWatch;
      translation::TranslationOptions TO;
      TO.K = Req.MaxK;
      TO.CasAllowance = Opts.CasAllowance;
      translation::TranslationResult TR =
          translation::translateToSc(P, TO, &Ctx.stats());
      TranslateSeconds = TranslateWatch.elapsedSeconds();
      if (Ctx.interrupted()) {
        CheckReport R;
        R.Outcome = Verdict::Unknown;
        R.Note = Ctx.cancelled() ? "cancelled" : "budget exhausted";
        R.TranslateSeconds = TranslateSeconds;
        R.ModeRan = EngineMode::Incremental;
        R.KUsed = 0;
        return R;
      }
      maybeInjectBackendFault(TR.Prog);

      bmc::BmcOptions BO;
      BO.UnrollBound = Opts.L;
      BO.ContextBound = TR.ContextBound;
      BO.ValueWidth = satValueWidth(TR.Prog);
      BO.MemLimitBytes = Opts.MemLimitBytes;
      // IncrementalBmc captures BO by value, so every per-solve knob set
      // here is frozen into the cached encoding — which is exactly why
      // each of these participates in encodingCacheKey.
      BO.B.Conflicts = Opts.MaxConflicts;
      BO.B.Propagations = Opts.MaxPropagations;
      switch (Opts.Phase) {
      case PhasePolicy::Positive:
        BO.Phase = sat::PhaseMode::Positive;
        break;
      case PhasePolicy::Negative:
        BO.Phase = sat::PhaseMode::Negative;
        break;
      case PhasePolicy::Random:
        BO.Phase = sat::PhaseMode::Random;
        break;
      case PhasePolicy::Saved:
        BO.Phase = sat::PhaseMode::Saved;
        break;
      }
      BO.PhaseSeed = Opts.PhaseSeed;
      BO.Ctx = &Ctx;
      bmc::IncrementalSpec Spec;
      Spec.BudgetVar = TR.SRaVar;
      Spec.MaxBudget = Req.MaxK;
      Spec.BaseContexts = TR.ContextBound - Req.MaxK;
      // The translation's timestamp domain is {1 .. 2K + max(Cas, 1)},
      // which GROWS with K: the MaxK encoding owns stamps a fresh
      // budget-k translation (k < MaxK) never had. Cap each budget to
      // the fresh pool by demanding that every stamp marker above
      // 2k + max(Cas, 1) stays untaken, or Sel_k admits stamp-hungry
      // runs fresh-k prunes and verdicts diverge.
      Spec.ZeroFinalAtBudget.resize(Req.MaxK + 1);
      uint32_t CasFloor = Opts.CasAllowance < 1 ? 1 : Opts.CasAllowance;
      for (uint32_t K = 0; K <= Req.MaxK; ++K) {
        uint32_t FreshPool = 2 * K + CasFloor;
        for (const auto &PerVar : TR.UsedStampVars)
          for (uint32_t T = FreshPool; T < PerVar.size(); ++T)
            Spec.ZeroFinalAtBudget[K].push_back(PerVar[T]);
      }
      // Monotone instrumentation counters get redundant per-round
      // monotonicity lemmas so the selectors' final-value bounds
      // propagate instead of being re-derived by conflicts per budget.
      // --no-monotone-lemmas drops them (a pure performance ablation:
      // the lemmas are redundant, so verdicts cannot change).
      if (Opts.MonotoneLemmas) {
        Spec.MonotoneVars.push_back(TR.SRaVar);
        for (const auto &PerVar : TR.UsedStampVars)
          Spec.MonotoneVars.insert(Spec.MonotoneVars.end(), PerVar.begin(),
                                   PerVar.end());
      }
      auto Inc =
          std::make_unique<bmc::IncrementalBmc>(TR.Prog, BO, Spec);
      Ctx.stats().addCount("engine.incremental.encodes");
      if (!Inc->usable()) {
        FallbackWhy = Inc->encodeResult().Note.empty()
                          ? "incremental encoding failed"
                          : Inc->encodeResult().Note;
      } else {
        Entry = insert(CacheEntry{Key, std::move(Inc), TranslateSeconds},
                       Ctx.stats());
      }
    } catch (const std::bad_alloc &) {
      FallbackWhy = "allocation failure during incremental encoding";
    }
  }

  if (!Entry) {
    // The one-time encoding could not be built (resource ceiling, huge
    // circuit, injected fault): degrade to fresh per-K solving, which
    // brings its own retry-at-reduced-bounds policy, and say so.
    CheckReport FB = runIterativeMode(P, Req.MaxK, Opts, Ctx);
    FB.Note = joinNotes(std::move(FB.Note),
                        "incremental unavailable (" + FallbackWhy +
                            "); ran fresh per-K");
    return FB;
  }

  CheckReport R;
  R.ModeRan = EngineMode::Incremental;
  R.TranslateSeconds = TranslateSeconds;
  bool SawInconclusive = false;
  for (uint32_t K = 0; K <= Req.MaxK; ++K) {
    if (Ctx.interrupted()) {
      SawInconclusive = true;
      break;
    }
    bmc::BmcResult BR;
    try {
      ScopedSpan SolveSpan(Ctx.trace(),
                           "incremental.solve.k" + std::to_string(K),
                           "engine");
      BR = Entry->Inc->solveBudget(K, &Ctx);
    } catch (const std::bad_alloc &) {
      // The persistent solver may be mid-flight inconsistent after an
      // allocation failure: drop it from the cache and stop the sweep
      // with a classified failure.
      removeByKey(Key);
      R.Failure = sandbox::FailureKind::OutOfMemory;
      R.Attempts.push_back(Attempt{K, Verdict::Unknown,
                                   sandbox::FailureKind::OutOfMemory, 0});
      R.Note = joinNotes(std::move(R.Note),
                         "incremental solve allocation failure at k=" +
                             std::to_string(K));
      SawInconclusive = true;
      break;
    }
    Verdict V = BR.Status == bmc::BmcStatus::Unsafe  ? Verdict::Unsafe
                : BR.Status == bmc::BmcStatus::Safe ? Verdict::Safe
                                                    : Verdict::Unknown;
    R.Attempts.push_back(Attempt{K, V, BR.Failure, BR.Seconds});
    R.Work += BR.SolverConflicts;
    if (V == Verdict::Unsafe) {
      R.Outcome = Verdict::Unsafe;
      R.KUsed = K;
      for (const std::string &F : BR.FailedAssertions)
        R.Note = joinNotes(std::move(R.Note), F);
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    if (sandbox::isFailure(BR.Failure) && !sandbox::isFailure(R.Failure))
      R.Failure = BR.Failure;
    if (V == Verdict::Unknown) {
      SawInconclusive = true;
      if (!BR.Note.empty() && R.Note.empty())
        R.Note = BR.Note;
    }
  }
  R.Outcome = SawInconclusive ? Verdict::Unknown : Verdict::Safe;
  R.KUsed = Req.MaxK;
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

Engine::Engine() : I(std::make_unique<Impl>()) {}
Engine::~Engine() = default;

void Engine::setEncodingCacheCapacity(size_t Entries) {
  I->setCapacity(Entries);
}

size_t Engine::encodingCacheCapacity() const { return I->Capacity; }

CheckReport Engine::run(const ir::Program &P, const CheckRequest &Req,
                        CheckContext &Ctx) {
  ScopedSpan ModeSpan(Ctx.trace(),
                      std::string("engine.") + engineModeName(Req.Mode),
                      "engine");
  switch (Req.Mode) {
  case EngineMode::Single:
    return runSingleMode(P, Req.Opts, Ctx);
  case EngineMode::Iterative:
    return runIterativeMode(P, Req.MaxK, Req.Opts, Ctx);
  case EngineMode::Portfolio:
    return runPortfolioMode(P, Req.Opts, Ctx);
  case EngineMode::ParallelDeepening:
    return runParallelMode(P, Req.MaxK, Req.Threads, Req.Opts, Ctx);
  case EngineMode::Incremental:
    // One sandbox around the whole sweep: the persistent solver cannot
    // survive per-K forks, so the child runs the full incremental mode
    // and ships the attempt history back over the report pipe.
    if (Req.Opts.Isolate && sandbox::available())
      return runIsolatedRequest(P, Req, Ctx);
    return I->runIncremental(P, Req, Ctx);
  }
  CheckReport R;
  R.Note = "unknown engine mode";
  return R;
}

CheckReport Engine::run(const ir::Program &P, const CheckRequest &Req) {
  CheckContext Ctx(Req.Opts.BudgetSeconds);
  return run(P, Req, Ctx);
}
