//===- Isolation.h - sandboxed verification attempts ------------*- C++ -*-===//
///
/// \file
/// Internal glue between the driver pipeline (Vbmc.cpp) and the process
/// sandbox (support/Sandbox.h): runs one checkProgram attempt in a forked
/// child, serializes the VbmcResult and the child's StatsRegistry over the
/// report pipe, and classifies child death into the result's FailureKind.
/// Not part of the public driver API — the public entry points dispatch
/// here when VbmcOptions::Isolate is set.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_ISOLATION_H
#define VBMC_VBMC_ISOLATION_H

#include "vbmc/Vbmc.h"

#include <string>

namespace vbmc::driver {

/// Runs one single-backend checkProgram attempt for \p P in a sandboxed
/// child (fresh address space, RLIMIT_AS headroom of Opts.MemLimitBytes,
/// wall-clock kill at the context's remaining deadline). The child runs
/// with Isolate and RetryReduced off — the parent owns the retry policy.
/// On completion the child's stats are merged into \p Ctx's registry; on
/// child death the result is Unknown with the classified FailureKind and
/// the matching sandbox.{crash,oom,timeout} counter is bumped.
VbmcResult runIsolatedAttempt(const ir::Program &P, const VbmcOptions &Opts,
                              CheckContext &Ctx);

/// Runs one whole CheckRequest (any mode) in a sandboxed child: the child
/// builds a fresh Engine, runs the request with isolation off, and ships
/// the full CheckReport — including which mode ran, KUsed, and the per-K
/// attempt history — over the report pipe. Incremental mode dispatches
/// here because its persistent solver cannot survive per-K forks; the
/// whole sweep shares one sandbox.
CheckReport runIsolatedRequest(const ir::Program &P, const CheckRequest &Req,
                               CheckContext &Ctx);

/// Wire format helpers (exposed for SandboxTest round-trip coverage).
std::string serializeResult(const VbmcResult &R, const StatsRegistry &Stats);
VbmcResult parseResult(const std::string &Payload, StatsRegistry *MergeInto);

} // namespace vbmc::driver

#endif // VBMC_VBMC_ISOLATION_H
