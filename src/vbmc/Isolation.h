//===- Isolation.h - sandboxed verification attempts ------------*- C++ -*-===//
///
/// \file
/// Internal glue between the driver pipeline (Engine.cpp) and the process
/// sandbox (support/Sandbox.h): runs one single-backend attempt in a forked
/// child, serializes the CheckReport and the child's StatsRegistry over the
/// report pipe, and classifies child death into the result's FailureKind.
/// Not part of the public driver API — the public entry points dispatch
/// here when VbmcOptions::Isolate is set.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_ISOLATION_H
#define VBMC_VBMC_ISOLATION_H

#include "vbmc/Engine.h"

#include <string>

namespace vbmc::driver {

/// Runs one single-backend verification attempt for \p P in a sandboxed
/// child (fresh address space, RLIMIT_AS headroom of Opts.MemLimitBytes,
/// wall-clock kill at the context's remaining deadline). The child runs
/// with Isolate and RetryReduced off — the parent owns the retry policy.
/// On completion the child's stats are merged into \p Ctx's registry; on
/// child death the result is Unknown with the classified FailureKind and
/// the matching sandbox.{crash,oom,timeout} counter is bumped.
CheckReport runIsolatedAttempt(const ir::Program &P, const VbmcOptions &Opts,
                              CheckContext &Ctx);

/// Runs one whole CheckRequest (any mode) in a sandboxed child: the child
/// builds a fresh Engine, runs the request with isolation off, and ships
/// the full CheckReport — including which mode ran, KUsed, and the per-K
/// attempt history — over the report pipe. Incremental mode dispatches
/// here because its persistent solver cannot survive per-K forks; the
/// whole sweep shares one sandbox.
CheckReport runIsolatedRequest(const ir::Program &P, const CheckRequest &Req,
                               CheckContext &Ctx);

/// Wire format helpers (exposed for SandboxTest round-trip coverage).
/// Numbers cross the pipe in locale-independent form (std::to_chars /
/// std::from_chars via support/Json.h) — the global C or C++ locale of
/// either side never shapes the format, so a host locale with a ','
/// decimal separator cannot corrupt child timing stats. \p Trace, when
/// non-null and enabled, appends the child recorder's spans so the parent
/// can merge them into its own timeline.
std::string serializeResult(const CheckReport &R, const StatsRegistry &Stats,
                            const TraceRecorder *Trace = nullptr);
/// Parses a child report. Malformed lines (missing fields, unparseable
/// numbers — the silent-zero strtod("") failure mode) are never absorbed
/// as zeros: the field is skipped and the damage is surfaced in the
/// result's Note. \p SpansOut, when non-null, receives any span lines.
CheckReport parseResult(const std::string &Payload, StatsRegistry *MergeInto,
                       std::vector<TraceSpan> *SpansOut = nullptr);

} // namespace vbmc::driver

#endif // VBMC_VBMC_ISOLATION_H
