//===- Report.cpp - structured JSON run reports ------------------*- C++ -*-===//

#include "vbmc/Report.h"

#include "support/Json.h"

using namespace vbmc;
using namespace vbmc::driver;

std::string vbmc::driver::formatRunReport(const CheckReport &R,
                                          const ReportInfo &Info,
                                          const StatsRegistry &Stats,
                                          const TraceRecorder *Trace) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value("vbmc-run-report/v1");
  W.key("file").value(Info.File);
  W.key("mode_requested").value(engineModeName(Info.RequestedMode));
  W.key("mode_ran").value(engineModeName(R.ModeRan));
  W.key("k").value(static_cast<uint64_t>(Info.K));
  W.key("l").value(static_cast<uint64_t>(Info.L));
  W.key("max_k").value(static_cast<uint64_t>(Info.MaxK));
  W.key("threads").value(static_cast<uint64_t>(Info.Threads));
  W.key("backend").value(Info.Backend == BackendKind::Explicit ? "explicit"
                                                               : "sat");
  W.key("isolate").value(Info.Isolate);
  W.key("verdict").value(verdictName(R.Outcome));
  W.key("failure").value(sandbox::failureKindName(R.Failure));
  W.key("k_used").value(static_cast<uint64_t>(R.KUsed));
  W.key("seconds").value(R.Seconds);
  W.key("translate_seconds").value(R.TranslateSeconds);
  W.key("work").value(R.Work);
  W.key("note").value(R.Note);
  W.key("winning_backend").value(R.WinningBackend);
  W.key("attempts").beginArray();
  for (const Attempt &A : R.Attempts) {
    W.beginObject();
    W.key("k").value(static_cast<uint64_t>(A.K));
    W.key("verdict").value(verdictName(A.Outcome));
    W.key("failure").value(sandbox::failureKindName(A.Failure));
    W.key("seconds").value(A.Seconds);
    W.endObject();
  }
  W.endArray();
  W.key("stats").beginObject();
  for (const StatsRegistry::Entry &E : Stats.snapshot()) {
    W.key(E.Name);
    if (E.IsCounter)
      W.value(E.Count);
    else
      W.value(E.Seconds);
  }
  W.endObject();
  if (Trace) {
    W.key("trace").beginObject();
    W.key("spans").value(static_cast<uint64_t>(Trace->spanCount()));
    W.key("dropped").value(Trace->droppedSpans());
    W.endObject();
  }
  W.endObject();
  return W.str();
}
