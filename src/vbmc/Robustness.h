//===- Robustness.h - RA-vs-SC robustness checking ----------------*- C++ -*-===//
///
/// \file
/// A small application built on the library: decide whether a program is
/// *robust* against the release-acquire semantics, i.e. whether RA admits
/// any behaviour (terminal register valuation or assertion violation)
/// that SC does not. Robustness is how practitioners phrase "do I need
/// fences here?" — the unfenced Table 1 protocols are exactly the
/// non-robust ones, and the fenced versions are robust.
///
/// The check enumerates both semantics exhaustively, so it is meant for
/// bounded (loop-unrolled or loop-free) programs; pass a budget for
/// anything bigger.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_ROBUSTNESS_H
#define VBMC_VBMC_ROBUSTNESS_H

#include "ir/Program.h"

#include <set>
#include <string>
#include <vector>

namespace vbmc::driver {

struct RobustnessResult {
  /// True when RA and SC agree on terminal behaviours and on assertion
  /// reachability.
  bool Robust = false;
  /// False when a budget was hit before a conclusion.
  bool Conclusive = false;
  /// An RA-only terminal register valuation, when one exists.
  std::vector<ir::Value> WitnessOutcome;
  /// True when RA reaches an assertion violation SC cannot.
  bool RaOnlyAssertionFailure = false;
  std::string Note;
};

/// Decides robustness of \p P by exhaustive enumeration (RA behaviours
/// always include the SC ones, so only the RA-minus-SC direction is
/// searched). \p MaxStates caps each exploration (0 = unlimited).
RobustnessResult checkRobustness(const ir::Program &P,
                                 uint64_t MaxStates = 0);

} // namespace vbmc::driver

#endif // VBMC_VBMC_ROBUSTNESS_H
