//===- Report.h - structured JSON run reports --------------------*- C++ -*-===//
///
/// \file
/// The machine-readable side of a verification run: `vbmc --report-json`
/// emits one JSON object per run carrying the verdict, the mode that ran,
/// KUsed, the per-attempt history, the failure classification, and the
/// full StatsRegistry snapshot — everything the human-readable output
/// prints, in a form a benchmark harness can diff across commits. With
/// `--isolate`, the sandboxed child's stats and spans have already been
/// merged into the parent context by the time the report is built, so one
/// document covers the whole process tree.
///
/// Schema (all keys always present unless noted):
///   schema               "vbmc-run-report/v1"
///   file                 input path as given on the command line
///   mode_requested       the CheckRequest mode
///   mode_ran             the mode that actually decided (fallbacks differ)
///   k, l, max_k, threads the request's bound knobs
///   backend              "explicit" | "sat"
///   isolate              bool
///   verdict              "safe" | "unsafe" | "unknown"
///   failure              "none" | "crash" | "oom" | "timeout" | "exit"
///   k_used               the K the verdict speaks for
///   seconds              backend-reported time
///   translate_seconds    [[.]]_K translation time
///   work                 states visited (explicit) / conflicts (sat)
///   note                 free-form detail ("" when none)
///   winning_backend      portfolio winner ("" otherwise)
///   attempts             [{k, verdict, failure, seconds}] in K order
///   stats                {name: number} — counters as integers, timers
///                        as seconds; a name registered as both carries
///                        the timer under "<name>.seconds"
///   trace                {spans, dropped} — only when a tracer was given
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_REPORT_H
#define VBMC_VBMC_REPORT_H

#include "vbmc/Engine.h"

#include <string>

namespace vbmc::driver {

/// Request-side facts the CheckReport does not carry.
struct ReportInfo {
  std::string File;
  EngineMode RequestedMode = EngineMode::Single;
  uint32_t K = 0;
  uint32_t L = 0;
  uint32_t MaxK = 0;
  uint32_t Threads = 0;
  BackendKind Backend = BackendKind::Explicit;
  bool Isolate = false;
};

/// Renders the run report document described above. \p Trace may be null
/// (the "trace" member is then omitted).
std::string formatRunReport(const CheckReport &R, const ReportInfo &Info,
                            const StatsRegistry &Stats,
                            const TraceRecorder *Trace = nullptr);

} // namespace vbmc::driver

#endif // VBMC_VBMC_REPORT_H
