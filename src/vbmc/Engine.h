//===- Engine.h - unified driver engine ---------------------------*- C++ -*-===//
///
/// \file
/// The driver's single entry point: `Engine::run(CheckRequest)`. A request
/// names a mode — single attempt, iterative deepening, backend portfolio,
/// parallel deepening, or incremental deepening — plus the shared
/// VbmcOptions knobs; the report carries the verdict, the per-K attempt
/// history, and which mode actually ran.
///
/// The Engine is a *class* (not a free function) because incremental
/// deepening needs state that outlives one call: it translates and encodes
/// the program once at MaxK and then answers every budget k <= MaxK by
/// re-solving the same persistent CDCL solver under a per-k assumption
/// literal (learned clauses, VSIDS activities and saved phases carry
/// across K). The Engine owns that persistent solver/encoding cache, so
/// re-running a request on the same program reuses the encoding.
///
/// The historical free functions checkProgram / checkIterative /
/// checkPortfolio / checkParallelDeepening spent one release as deprecated
/// wrappers and are gone: build a CheckRequest and call Engine::run.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_ENGINE_H
#define VBMC_VBMC_ENGINE_H

#include "ir/Program.h"
#include "sc/ScExplorer.h"
#include "support/CheckContext.h"
#include "support/Sandbox.h"
#include "translation/Translate.h"

#include <memory>
#include <string>
#include <vector>

namespace vbmc::driver {

enum class BackendKind {
  Explicit, ///< Explicit-state context-bounded SC search.
  Sat,      ///< BMC pipeline (unroll + sequentialize + CDCL SAT).
};

/// Driver-level mirror of sat::PhaseMode: how the CDCL solver picks the
/// polarity of a fresh decision. Lives here (not in sat/) so the driver
/// and serve layers can key caches on it without pulling in the solver
/// headers.
enum class PhasePolicy {
  Saved,    ///< Remember and reuse the last assigned polarity (default).
  Positive, ///< Always decide true first.
  Negative, ///< Always decide false first.
  Random,   ///< Per-variable pseudo-random polarity seeded by PhaseSeed.
};

/// Canonical lowercase names for PhasePolicy: "saved", "positive",
/// "negative", "random". Used by `vbmc --phase`, the serve wire format,
/// and the cache keys.
const char *phasePolicyName(PhasePolicy P);

/// Parses a canonical phase-policy name; returns false (leaving \p P
/// untouched) on anything else.
bool phasePolicyFromName(const std::string &Name, PhasePolicy &P);

struct VbmcOptions {
  /// View-switch budget K.
  uint32_t K = 2;
  /// Loop unrolling bound L (Sat backend; the explicit backend needs none).
  uint32_t L = 2;
  /// Extra abstract timestamps for CAS/fence chains.
  uint32_t CasAllowance = 8;
  BackendKind Backend = BackendKind::Explicit;
  /// Section 6 scheduling optimization (explicit backend).
  bool SwitchOnlyAfterWrite = true;
  /// Wall-clock budget in seconds (0 = unlimited).
  double BudgetSeconds = 0;
  /// State cap for the explicit backend (0 = unlimited).
  uint64_t MaxStates = 0;
  /// Run each verification attempt in a forked, resource-governed child
  /// process (support/Sandbox.h): a crashing or memory-eating backend
  /// yields a classified Unknown instead of killing the engine. Portfolio
  /// and parallel-deepening arms each get their own sandbox; an
  /// incremental run sandboxes the whole sweep (the persistent solver
  /// cannot survive per-K forks).
  bool Isolate = false;
  /// Memory ceiling in bytes (0 = unlimited). Doubles as the sandbox's
  /// RLIMIT_AS headroom (when Isolate) and as the BMC encoder's in-process
  /// byte ceiling (always), so a huge encoding degrades to a classified
  /// OutOfMemory rather than a std::bad_alloc abort.
  uint64_t MemLimitBytes = 0;
  /// Retry policy: re-attempt a memory-killed run once at reduced bounds
  /// (L and K halved) before reporting the classified failure. The
  /// reduced-bound verdict is flagged in the result note, since it covers
  /// a smaller execution subset.
  bool RetryReduced = true;
  /// Per-solver-call conflict cap for the Sat backend (0 = unlimited). A
  /// capped solve that runs out answers Unknown, so the cap is
  /// solve-relevant and participates in both cache keys.
  uint64_t MaxConflicts = 0;
  /// Per-solver-call propagation cap for the Sat backend (0 = unlimited);
  /// a deterministic work measure, same caveat as MaxConflicts.
  uint64_t MaxPropagations = 0;
  /// CDCL decision-polarity policy (Sat backend).
  PhasePolicy Phase = PhasePolicy::Saved;
  /// Seed for PhasePolicy::Random; ignored by the other policies (and
  /// canonicalized to 0 in the cache keys when ignored).
  uint64_t PhaseSeed = 0;
  /// Incremental mode: assert the redundant monotonicity lemmas (budget
  /// variable + used-stamp chains) when encoding. Off changes the clause
  /// database the persistent solver carries across K, so the toggle is
  /// part of the encoding identity.
  bool MonotoneLemmas = true;
};

enum class Verdict {
  Safe,    ///< No assertion violation in the K-bounded subset.
  Unsafe,  ///< Counterexample with at most K view switches found.
  Unknown, ///< Resource limit hit before a conclusion.
};

/// How Engine::run decides. Single uses Opts.K as-is; the deepening modes
/// sweep K = 0..MaxK; Portfolio races both backends at Opts.K.
enum class EngineMode {
  Single,            ///< One attempt at Opts.K with Opts.Backend.
  Iterative,         ///< Fresh pipeline per K, smallest buggy K first.
  Portfolio,         ///< Race Explicit vs Sat at Opts.K, cancel the loser.
  ParallelDeepening, ///< Several K values concurrently, smallest-K verdict.
  Incremental,       ///< Encode once at MaxK, re-solve under assumptions.
};

/// Canonical lowercase mode names used by `vbmc --mode=...`, the sandbox
/// wire format, and diagnostics: "single", "iterative", "portfolio",
/// "parallel-deepening", "incremental".
const char *engineModeName(EngineMode M);

/// Parses a canonical mode name; returns false (leaving \p M untouched)
/// on anything else.
bool engineModeFromName(const std::string &Name, EngineMode &M);

/// Canonical lowercase verdict names used by the CLI output, the sandbox
/// wire format, and the JSON run report: "safe", "unsafe", "unknown".
const char *verdictName(Verdict V);

/// Parses a canonical verdict name; anything unrecognized is Unknown (the
/// wire format's conservative default).
Verdict verdictFromName(const std::string &Name);

/// One verification attempt at a specific K. Deepening modes record one
/// per explored K (in K order); Single/Portfolio record exactly one.
struct Attempt {
  uint32_t K = 0;
  Verdict Outcome = Verdict::Unknown;
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  double Seconds = 0;
};

/// The one report type for every mode (the former VbmcResult /
/// IterativeResult split, collapsed).
struct CheckReport {
  Verdict Outcome = Verdict::Unknown;
  /// For Unknown: why no verdict exists, when the cause is a classified
  /// fault (backend crash, OOM kill, sandbox timeout) rather than a
  /// cooperative stop (deadline poll, state cap, cancellation — those
  /// keep FailureKind::None and explain themselves in Note). Drives the
  /// CLI's exit code 3 and the fuzz campaign's crash witnesses.
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  /// Backend time as reported by the backend itself (deepening modes: the
  /// whole sweep). Translation time is *not* folded in here; it is
  /// recorded separately (TranslateSeconds and the translate.seconds
  /// stage in the context's StatsRegistry).
  double Seconds = 0;
  /// Time spent in the [[.]]_K translation stage.
  double TranslateSeconds = 0;
  /// Explicit backend: states visited. Sat backend: solver conflicts.
  uint64_t Work = 0;
  /// Counterexample schedule over the *translated* program, when UNSAFE
  /// and the explicit backend was used.
  std::vector<sc::ScTraceStep> Trace;
  std::string Note;
  /// Portfolio mode: which backend produced the verdict ("explicit" or
  /// "sat"); empty otherwise.
  std::string WinningBackend;
  /// The mode that actually decided the request. Usually the requested
  /// mode; an Incremental request that had to fall back to fresh per-K
  /// solving reports Iterative here (with the reason in Note), and
  /// sandboxed runs carry the child's value across the report pipe.
  EngineMode ModeRan = EngineMode::Single;
  /// The K the verdict speaks for: the smallest buggy K when Unsafe, the
  /// deepest exhausted K (MaxK) when a sweep finishes, Opts.K for
  /// Single/Portfolio.
  uint32_t KUsed = 0;
  /// Per-K history (see Attempt).
  std::vector<Attempt> Attempts;

  bool unsafe() const { return Outcome == Verdict::Unsafe; }
  bool safe() const { return Outcome == Verdict::Safe; }
  /// True when the Unknown was caused by a classified fault.
  bool failed() const { return sandbox::isFailure(Failure); }
};

/// Everything Engine::run needs: the mode, the shared option knobs, and
/// the deepening parameters.
struct CheckRequest {
  EngineMode Mode = EngineMode::Single;
  VbmcOptions Opts;
  /// Deepening modes: sweep K = 0..MaxK (Opts.K is ignored there).
  uint32_t MaxK = 6;
  /// ParallelDeepening: worker threads (clamped to [1, MaxK+1]).
  uint32_t Threads = 2;
};

/// The unified driver. Thread-compatible, not thread-safe: share one
/// Engine per thread, or guard run() externally.
class Engine {
public:
  Engine();
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Decides \p Req for \p P under \p Ctx: the context's deadline bounds
  /// every stage, its token cancels the run cooperatively, and every
  /// stage records into its StatsRegistry. Incremental mode keeps the
  /// encoding cached inside this Engine, so a later run on the same
  /// program (and same L / MaxK / CasAllowance / memory ceiling) skips
  /// translate+encode entirely (engine.incremental.cache_hits counts
  /// these).
  CheckReport run(const ir::Program &P, const CheckRequest &Req,
                  CheckContext &Ctx);

  /// Convenience overload running under a private context built from
  /// Req.Opts.BudgetSeconds.
  CheckReport run(const ir::Program &P, const CheckRequest &Req);

  /// Resizes the hash-keyed LRU encoding cache (default 4 entries;
  /// clamped to at least 1). Shrinking evicts least-recently-used
  /// entries immediately. A serve worker answering a narrow request mix
  /// raises this so every distinct program it sees stays warm;
  /// cache_hits / cache_misses / cache_evictions counters under
  /// engine.incremental.* report how well the size fits the traffic.
  void setEncodingCacheCapacity(size_t Entries);
  size_t encodingCacheCapacity() const;

  class Impl;

private:
  std::unique_ptr<Impl> I;
};

/// Canonical identity of the persistent encoding the Engine's LRU holds
/// for (\p P, \p Req): the printed program text plus every option that
/// shapes the max-K encoding or the per-budget solves (MaxK, L,
/// CasAllowance, MemLimitBytes, the solver budget caps, the phase policy
/// and the monotone-lemma toggle). Two requests with equal keys may share
/// an encoding soundly; any solve-relevant option added later MUST be
/// folded in here (CacheKeyTest mutates each field and asserts a miss).
/// Shared with vbmc-serve's worker-affinity scheduler.
std::string encodingCacheKey(const ir::Program &P, const CheckRequest &Req);

/// Canonical identity of a *verdict* for (\p P, \p Req):
/// encodingCacheKey plus the strategy fields (mode, backend, K, threads,
/// state cap, scheduling optimization). Two requests with equal keys are
/// guaranteed the same conclusive verdict, so vbmc-serve may answer the
/// second from its cross-request cache. Budget/deadline/isolation fields
/// are deliberately excluded: only conclusive, budget-independent
/// verdicts are ever cached.
std::string verdictCacheKey(const ir::Program &P, const CheckRequest &Req);

/// Bit width the Sat backend would pick for \p P (headroom-audited over
/// every literal constant). Exposed so the incremental engine encodes at
/// exactly the width fresh per-K runs use.
uint32_t satValueWidth(const ir::Program &P);

/// Internal: one SAT-BMC attempt on the already-translated program
/// (defined in SatBackend.cpp; called by the Engine's backend dispatch).
/// \p Translated is the [[P]]_K sequentialization, \p ContextBound the
/// SC context budget the translation certified.
CheckReport runSatBackend(const ir::Program &Translated,
                          uint32_t ContextBound, const VbmcOptions &Opts,
                          const CheckContext *Ctx = nullptr);

} // namespace vbmc::driver

#endif // VBMC_VBMC_ENGINE_H
