//===- Vbmc.cpp - the staged verification engine ---------------*- C++ -*-===//
//
// The driver is organized as a staged pipeline over one shared
// CheckContext: translate ([[.]]_K), flatten (explicit path only), then
// decide with a backend. Every stage polls the context's deadline and
// cancellation token and records its cost into the context's
// StatsRegistry. On top of the single-backend pipeline sit two concurrent
// drivers: checkPortfolio (race both backends, cancel the loser) and
// checkParallelDeepening (explore several K values at once while keeping
// the paper's smallest-K reporting guarantee).
//
//===----------------------------------------------------------------------===//

#include "vbmc/Vbmc.h"

#include "ir/Flatten.h"
#include "ir/Parser.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"
#include "vbmc/Isolation.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

using namespace vbmc;
using namespace vbmc::driver;

namespace {

//===----------------------------------------------------------------------===//
// Fault injection (fault-tolerance self-tests)
//===----------------------------------------------------------------------===//

uint64_t countBodyStmts(const std::vector<ir::Stmt> &Body) {
  uint64_t N = 0;
  for (const ir::Stmt &S : Body)
    N += 1 + countBodyStmts(S.Then) + countBodyStmts(S.Else);
  return N;
}

uint64_t countProgramStmts(const ir::Program &P) {
  uint64_t N = 0;
  for (const ir::Process &Proc : P.Procs)
    N += countBodyStmts(Proc.Body);
  return N;
}

/// Deliberate allocation storm: grabs and touches memory until either a
/// real std::bad_alloc (under an RLIMIT_AS sandbox) or a synthetic one at
/// a 256 MB cap (so the un-sandboxed self-test cannot eat the machine).
void allocationStorm() {
  constexpr size_t Chunk = 1 << 20;
  constexpr size_t Cap = 256u << 20;
  std::vector<std::unique_ptr<char[]>> Hog;
  for (size_t Total = 0;; Total += Chunk) {
    if (Total >= Cap)
      throw std::bad_alloc();
    Hog.push_back(std::make_unique<char[]>(Chunk));
    std::memset(Hog.back().get(), 0xAB, Chunk);
  }
}

/// Backend-death faults for validating the sandbox: `backend.crash` dies
/// on SIGSEGV, `backend.hog-memory` storms the allocator. The `-odd` /
/// `-even` variants key deterministically on the translated program's
/// statement-count parity, so one fixed-seed fuzz campaign exercises both
/// death modes across its program stream.
void maybeInjectBackendFault(const ir::Program &Translated) {
  if (fault::enabled("backend.crash"))
    raise(SIGSEGV);
  if (fault::enabled("backend.hog-memory"))
    allocationStorm();
  uint64_t Parity = countProgramStmts(Translated) % 2;
  if (fault::enabled("backend.crash-odd") && Parity == 1)
    raise(SIGSEGV);
  if (fault::enabled("backend.hog-even") && Parity == 0)
    allocationStorm();
}

VbmcResult runExplicit(const ir::Program &Translated, uint32_t ContextBound,
                       const VbmcOptions &Opts, const CheckContext &Ctx) {
  VbmcResult R;
  ir::FlatProgram FP;
  {
    ScopedStageTimer T(Ctx.stats(), "flatten.seconds");
    FP = ir::flatten(Translated);
  }
  sc::ScQuery Q;
  Q.Goal = sc::ScGoalKind::AnyError;
  Q.ContextBound = ContextBound;
  Q.SwitchOnlyAfterWrite = Opts.SwitchOnlyAfterWrite;
  Q.BudgetSeconds = Opts.BudgetSeconds;
  Q.MaxStates = Opts.MaxStates;
  Q.Ctx = &Ctx;
  sc::ScResult SR = sc::exploreSc(FP, Q);
  R.Work = SR.StatesVisited;
  R.Seconds = SR.Seconds;
  switch (SR.Status) {
  case sc::ScStatus::Reached:
    R.Outcome = Verdict::Unsafe;
    R.Trace = std::move(SR.Trace);
    break;
  case sc::ScStatus::Exhausted:
    R.Outcome = Verdict::Safe;
    break;
  case sc::ScStatus::StateLimit:
    R.Outcome = Verdict::Unknown;
    R.Note = "state limit exceeded";
    break;
  case sc::ScStatus::Timeout:
    R.Outcome = Verdict::Unknown;
    R.Note = "timeout";
    break;
  case sc::ScStatus::Cancelled:
    R.Outcome = Verdict::Unknown;
    R.Note = "cancelled";
    break;
  }
  return R;
}

/// Stage 1 of the pipeline: [[.]]_K. Records translate.* stats.
translation::TranslationResult translateStage(const ir::Program &P,
                                              const VbmcOptions &Opts,
                                              const CheckContext &Ctx) {
  translation::TranslationOptions TO;
  TO.K = Opts.K;
  TO.CasAllowance = Opts.CasAllowance;
  return translation::translateToSc(P, TO, &Ctx.stats());
}

/// Stage 2: decide the translated program with the selected backend. A
/// std::bad_alloc from either backend degrades to a classified
/// OutOfMemory Unknown instead of std::terminate — the in-process half of
/// the fault-tolerance story (the sandbox is the out-of-process half).
VbmcResult backendStage(const translation::TranslationResult &TR,
                        const VbmcOptions &Opts, const CheckContext &Ctx) {
  try {
    maybeInjectBackendFault(TR.Prog);
    return Opts.Backend == BackendKind::Explicit
               ? runExplicit(TR.Prog, TR.ContextBound, Opts, Ctx)
               : runSatBackend(TR.Prog, TR.ContextBound, Opts, &Ctx);
  } catch (const std::bad_alloc &) {
    VbmcResult R;
    R.Outcome = Verdict::Unknown;
    R.Failure = sandbox::FailureKind::OutOfMemory;
    R.Note = "backend allocation failure (std::bad_alloc)";
    return R;
  }
}

/// One in-process attempt: translate, then decide.
VbmcResult runOnceInProcess(const ir::Program &P, const VbmcOptions &Opts,
                            CheckContext &Ctx) {
  Timer TranslateWatch;
  translation::TranslationResult TR = translateStage(P, Opts, Ctx);
  double TranslateSeconds = TranslateWatch.elapsedSeconds();
  if (Ctx.interrupted()) {
    VbmcResult R;
    R.Outcome = Verdict::Unknown;
    R.Note = Ctx.cancelled() ? "cancelled" : "budget exhausted";
    R.TranslateSeconds = TranslateSeconds;
    return R;
  }
  VbmcResult R = backendStage(TR, Opts, Ctx);
  // Do NOT overwrite the backend-reported Seconds with a driver-side
  // timer: translation cost is reported separately, both here and as the
  // translate.seconds / backend stage entries in the StatsRegistry.
  R.TranslateSeconds = TranslateSeconds;
  return R;
}

/// One attempt, sandboxed when the options ask for it (and the platform
/// can): process isolation turns any backend death into a classified
/// Unknown on the parent side.
VbmcResult runOnce(const ir::Program &P, const VbmcOptions &Opts,
                   CheckContext &Ctx) {
  if (Opts.Isolate && sandbox::available())
    return runIsolatedAttempt(P, Opts, Ctx);
  return runOnceInProcess(P, Opts, Ctx);
}

/// The retry policy's reduced bounds: halve the unroll bound and the
/// view-switch budget. The resulting verdict covers a smaller execution
/// subset, which the driver flags in the result note.
VbmcOptions reducedBounds(const VbmcOptions &O) {
  VbmcOptions R = O;
  R.L = std::max<uint32_t>(1, O.L / 2);
  R.K = O.K / 2;
  return R;
}

bool boundsReducible(const VbmcOptions &O) { return O.L > 1 || O.K > 0; }

} // namespace

VbmcResult vbmc::driver::checkProgram(const ir::Program &P,
                                      const VbmcOptions &Opts,
                                      CheckContext &Ctx) {
  VbmcResult R = runOnce(P, Opts, Ctx);
  // Retry policy: one re-attempt at reduced bounds after a memory kill
  // (sandboxed or the encoder's in-process byte ceiling), while there is
  // still budget to spend. Smaller bounds mean a smaller encoding / state
  // space, so the retry frequently rescues a verdict the first attempt
  // could not afford.
  if (R.Failure == sandbox::FailureKind::OutOfMemory && Opts.RetryReduced &&
      boundsReducible(Opts) && !Ctx.interrupted()) {
    Ctx.stats().addCount("sandbox.retries");
    VbmcOptions Red = reducedBounds(Opts);
    Red.RetryReduced = false;
    std::string Bounds =
        "k=" + std::to_string(Red.K) + " l=" + std::to_string(Red.L);
    VbmcResult Retry = runOnce(P, Red, Ctx);
    if (Retry.Outcome != Verdict::Unknown) {
      Retry.Note += (Retry.Note.empty() ? "" : "; ") +
                    ("recovered at reduced bounds " + Bounds +
                     " after memory kill");
      return Retry;
    }
    R.Note += "; retry at reduced bounds " + Bounds + " also inconclusive" +
              (Retry.Note.empty() ? "" : ": " + Retry.Note);
  }
  return R;
}

VbmcResult vbmc::driver::checkProgram(const ir::Program &P,
                                      const VbmcOptions &Opts) {
  CheckContext Ctx(Opts.BudgetSeconds);
  return checkProgram(P, Opts, Ctx);
}

VbmcResult vbmc::driver::checkPortfolio(const ir::Program &P,
                                        const VbmcOptions &Opts,
                                        CheckContext &Ctx) {
  // With isolation, every arm runs the full pipeline in its own sandbox
  // (translation included): a crashing or memory-eating arm dies alone
  // and no longer loses the race for everyone. Without it, translate
  // once and race the backends on the shared SC program.
  const bool Isolated = Opts.Isolate && sandbox::available();
  translation::TranslationResult TR;
  double TranslateSeconds = 0;
  if (!Isolated) {
    Timer TranslateWatch;
    TR = translateStage(P, Opts, Ctx);
    TranslateSeconds = TranslateWatch.elapsedSeconds();
    if (Ctx.interrupted()) {
      VbmcResult R;
      R.Outcome = Verdict::Unknown;
      R.Note = Ctx.cancelled() ? "cancelled" : "budget exhausted";
      R.TranslateSeconds = TranslateSeconds;
      return R;
    }
  }

  constexpr int NumRacers = 2;
  const char *Names[NumRacers] = {"explicit", "sat"};
  CheckContext Racers[NumRacers] = {Ctx.child(), Ctx.child()};
  VbmcResult Results[NumRacers];
  std::mutex M;
  int Winner = -1;

  auto race = [&](int Idx, BackendKind B) {
    VbmcOptions O = Opts;
    O.Backend = B;
    // checkProgram (not backendStage) in the isolated case: the child
    // re-translates inside its own address space, and the arm keeps the
    // per-arm retry policy.
    VbmcResult R = Isolated ? checkProgram(P, O, Racers[Idx])
                            : backendStage(TR, O, Racers[Idx]);
    std::lock_guard<std::mutex> L(M);
    Results[Idx] = std::move(R);
    // First conclusive verdict wins; cancel the other racer right away
    // so it stops burning the machine.
    if (Winner < 0 && Results[Idx].Outcome != Verdict::Unknown) {
      Winner = Idx;
      for (int J = 0; J < NumRacers; ++J)
        if (J != Idx)
          Racers[J].cancel();
    }
  };

  std::thread ExplicitThread(race, 0, BackendKind::Explicit);
  std::thread SatThread(race, 1, BackendKind::Sat);
  ExplicitThread.join();
  SatThread.join();

  VbmcResult R;
  if (Winner >= 0) {
    R = std::move(Results[Winner]);
    R.WinningBackend = Names[Winner];
  } else {
    // Both inconclusive: surface both notes, and carry the first
    // classified fault so exit codes / retry policies see it.
    R.Outcome = Verdict::Unknown;
    R.Seconds = std::max(Results[0].Seconds, Results[1].Seconds);
    for (const VbmcResult &Arm : Results)
      if (Arm.failed()) {
        R.Failure = Arm.Failure;
        break;
      }
    R.Note = "portfolio inconclusive: explicit: " +
             (Results[0].Note.empty() ? "unknown" : Results[0].Note) +
             "; sat: " +
             (Results[1].Note.empty() ? "unknown" : Results[1].Note);
  }
  if (!Isolated)
    R.TranslateSeconds = TranslateSeconds;
  return R;
}

VbmcResult vbmc::driver::checkPortfolio(const ir::Program &P,
                                        const VbmcOptions &Opts) {
  CheckContext Ctx(Opts.BudgetSeconds);
  return checkPortfolio(P, Opts, Ctx);
}

IterativeResult vbmc::driver::checkIterative(const ir::Program &P,
                                             uint32_t MaxK,
                                             const VbmcOptions &BaseOpts,
                                             CheckContext &Ctx) {
  Timer Watch;
  IterativeResult R;
  bool SawInconclusive = false;
  for (uint32_t K = 0; K <= MaxK; ++K) {
    if (Ctx.interrupted()) {
      SawInconclusive = true;
      break;
    }
    VbmcOptions Opts = BaseOpts;
    Opts.K = K;
    // The shared context's deadline already hands each iteration
    // whatever wall clock is left; no per-iteration budget arithmetic.
    Opts.BudgetSeconds = 0;
    VbmcResult Step = checkProgram(P, Opts, Ctx);
    R.Iterations.push_back(
        IterationReport{K, Step.Outcome, Step.Failure, Step.Seconds});
    if (Step.unsafe()) {
      R.Outcome = Verdict::Unsafe;
      R.KUsed = K;
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    if (Step.failed() && !sandbox::isFailure(R.Failure))
      R.Failure = Step.Failure;
    SawInconclusive |= Step.Outcome == Verdict::Unknown;
  }
  R.Outcome = SawInconclusive ? Verdict::Unknown : Verdict::Safe;
  R.KUsed = MaxK;
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

IterativeResult vbmc::driver::checkIterative(const ir::Program &P,
                                             uint32_t MaxK,
                                             const VbmcOptions &BaseOpts) {
  CheckContext Ctx(BaseOpts.BudgetSeconds);
  return checkIterative(P, MaxK, BaseOpts, Ctx);
}

IterativeResult vbmc::driver::checkParallelDeepening(
    const ir::Program &P, uint32_t MaxK, uint32_t Threads,
    const VbmcOptions &BaseOpts, CheckContext &Ctx) {
  Timer Watch;
  const uint32_t NumK = MaxK + 1;
  Threads = std::clamp(Threads, 1u, NumK);

  // One cancellable child context per K, so an UNSAFE at K can stop every
  // in-flight run of a *larger* K (their verdicts can no longer matter)
  // while smaller Ks always run to completion: the paper's guarantee is
  // UNSAFE for the smallest buggy K.
  std::vector<CheckContext> KCtx;
  KCtx.reserve(NumK);
  for (uint32_t K = 0; K < NumK; ++K)
    KCtx.push_back(Ctx.child());

  std::vector<IterationReport> Reports(NumK);
  std::vector<uint8_t> Ran(NumK, 0);
  std::mutex M;
  uint32_t NextK = 0;                 // Guarded by M.
  uint32_t BestUnsafe = ~0u;          // Guarded by M.

  auto worker = [&] {
    for (;;) {
      uint32_t K;
      {
        std::lock_guard<std::mutex> L(M);
        // Claim the next K; skip values above a known-unsafe K.
        do {
          K = NextK++;
        } while (K < NumK && K > BestUnsafe);
        if (K >= NumK)
          return;
      }
      VbmcOptions Opts = BaseOpts;
      Opts.K = K;
      Opts.BudgetSeconds = 0; // The shared deadline governs.
      VbmcResult Step = checkProgram(P, Opts, KCtx[K]);
      std::lock_guard<std::mutex> L(M);
      Reports[K] = IterationReport{K, Step.Outcome, Step.Failure, Step.Seconds};
      Ran[K] = 1;
      if (Step.unsafe() && K < BestUnsafe) {
        BestUnsafe = K;
        for (uint32_t J = K + 1; J < NumK; ++J)
          KCtx[J].cancel();
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (uint32_t T = 0; T < Threads; ++T)
    Pool.emplace_back(worker);
  for (std::thread &T : Pool)
    T.join();

  IterativeResult R;
  bool SawInconclusive = false;
  bool AllSafe = true;
  for (uint32_t K = 0; K < NumK; ++K) {
    if (K > BestUnsafe)
      break; // Cancelled/skipped tails are not part of the report.
    if (!Ran[K]) {
      SawInconclusive = true; // Preempted by the run-wide deadline.
      AllSafe = false;
      continue;
    }
    R.Iterations.push_back(Reports[K]);
    SawInconclusive |= Reports[K].Outcome == Verdict::Unknown;
    AllSafe &= Reports[K].Outcome == Verdict::Safe;
    if (sandbox::isFailure(Reports[K].Failure) &&
        !sandbox::isFailure(R.Failure))
      R.Failure = Reports[K].Failure;
  }
  if (BestUnsafe != ~0u) {
    R.Outcome = Verdict::Unsafe;
    R.KUsed = BestUnsafe;
  } else if (AllSafe && !SawInconclusive) {
    R.Outcome = Verdict::Safe;
    R.KUsed = MaxK;
  } else {
    R.Outcome = Verdict::Unknown;
    R.KUsed = MaxK;
  }
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

IterativeResult vbmc::driver::checkParallelDeepening(
    const ir::Program &P, uint32_t MaxK, uint32_t Threads,
    const VbmcOptions &BaseOpts) {
  CheckContext Ctx(BaseOpts.BudgetSeconds);
  return checkParallelDeepening(P, MaxK, Threads, BaseOpts, Ctx);
}

VbmcResult vbmc::driver::checkSource(const std::string &Source,
                                     const VbmcOptions &Opts) {
  auto P = ir::parseProgram(Source);
  if (!P) {
    VbmcResult R;
    R.Outcome = Verdict::Unknown;
    R.Note = "parse error: " + P.error().str();
    return R;
  }
  return checkProgram(*P, Opts);
}
