//===- Vbmc.cpp - deprecated free-function driver API -----------*- C++ -*-===//
//
// The staged verification engine itself lives in Engine.cpp behind
// Engine::run(CheckRequest). These wrappers keep the historical free
// functions alive for one deprecation cycle: each builds the equivalent
// CheckRequest and delegates to a fresh Engine (so none of them can reuse
// a persistent encoding — construct an Engine directly for that).
//
//===----------------------------------------------------------------------===//

#include "vbmc/Vbmc.h"

#include "ir/Parser.h"

using namespace vbmc;
using namespace vbmc::driver;

namespace {

CheckRequest makeRequest(EngineMode Mode, const VbmcOptions &Opts,
                         uint32_t MaxK = 0, uint32_t Threads = 1) {
  CheckRequest Req;
  Req.Mode = Mode;
  Req.Opts = Opts;
  Req.MaxK = MaxK;
  Req.Threads = Threads;
  return Req;
}

} // namespace

VbmcResult vbmc::driver::checkProgram(const ir::Program &P,
                                      const VbmcOptions &Opts,
                                      CheckContext &Ctx) {
  return Engine().run(P, makeRequest(EngineMode::Single, Opts), Ctx);
}

VbmcResult vbmc::driver::checkProgram(const ir::Program &P,
                                      const VbmcOptions &Opts) {
  CheckContext Ctx(Opts.BudgetSeconds);
  return checkProgram(P, Opts, Ctx);
}

VbmcResult vbmc::driver::checkPortfolio(const ir::Program &P,
                                        const VbmcOptions &Opts,
                                        CheckContext &Ctx) {
  return Engine().run(P, makeRequest(EngineMode::Portfolio, Opts), Ctx);
}

VbmcResult vbmc::driver::checkPortfolio(const ir::Program &P,
                                        const VbmcOptions &Opts) {
  CheckContext Ctx(Opts.BudgetSeconds);
  return checkPortfolio(P, Opts, Ctx);
}

IterativeResult vbmc::driver::checkIterative(const ir::Program &P,
                                             uint32_t MaxK,
                                             const VbmcOptions &BaseOpts,
                                             CheckContext &Ctx) {
  return Engine().run(P, makeRequest(EngineMode::Iterative, BaseOpts, MaxK),
                      Ctx);
}

IterativeResult vbmc::driver::checkIterative(const ir::Program &P,
                                             uint32_t MaxK,
                                             const VbmcOptions &BaseOpts) {
  CheckContext Ctx(BaseOpts.BudgetSeconds);
  return checkIterative(P, MaxK, BaseOpts, Ctx);
}

IterativeResult vbmc::driver::checkParallelDeepening(
    const ir::Program &P, uint32_t MaxK, uint32_t Threads,
    const VbmcOptions &BaseOpts, CheckContext &Ctx) {
  return Engine().run(
      P, makeRequest(EngineMode::ParallelDeepening, BaseOpts, MaxK, Threads),
      Ctx);
}

IterativeResult vbmc::driver::checkParallelDeepening(
    const ir::Program &P, uint32_t MaxK, uint32_t Threads,
    const VbmcOptions &BaseOpts) {
  CheckContext Ctx(BaseOpts.BudgetSeconds);
  return checkParallelDeepening(P, MaxK, Threads, BaseOpts, Ctx);
}

VbmcResult vbmc::driver::checkSource(const std::string &Source,
                                     const VbmcOptions &Opts) {
  auto P = ir::parseProgram(Source);
  if (!P) {
    VbmcResult R;
    R.Outcome = Verdict::Unknown;
    R.Note = "parse error: " + P.error().str();
    return R;
  }
  return checkProgram(*P, Opts);
}
