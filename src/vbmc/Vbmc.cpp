//===- Vbmc.cpp -----------------------------------------------*- C++ -*-===//

#include "vbmc/Vbmc.h"

#include "ir/Flatten.h"
#include "ir/Parser.h"
#include "support/Timer.h"

using namespace vbmc;
using namespace vbmc::driver;

namespace {

VbmcResult runExplicit(const ir::Program &Translated, uint32_t ContextBound,
                       const VbmcOptions &Opts) {
  VbmcResult R;
  ir::FlatProgram FP = ir::flatten(Translated);
  sc::ScQuery Q;
  Q.Goal = sc::ScGoalKind::AnyError;
  Q.ContextBound = ContextBound;
  Q.SwitchOnlyAfterWrite = Opts.SwitchOnlyAfterWrite;
  Q.BudgetSeconds = Opts.BudgetSeconds;
  Q.MaxStates = Opts.MaxStates;
  sc::ScResult SR = sc::exploreSc(FP, Q);
  R.Work = SR.StatesVisited;
  R.Seconds = SR.Seconds;
  switch (SR.Status) {
  case sc::ScStatus::Reached:
    R.Outcome = Verdict::Unsafe;
    R.Trace = std::move(SR.Trace);
    break;
  case sc::ScStatus::Exhausted:
    R.Outcome = Verdict::Safe;
    break;
  case sc::ScStatus::StateLimit:
    R.Outcome = Verdict::Unknown;
    R.Note = "state limit exceeded";
    break;
  case sc::ScStatus::Timeout:
    R.Outcome = Verdict::Unknown;
    R.Note = "timeout";
    break;
  }
  return R;
}

} // namespace

VbmcResult vbmc::driver::checkProgram(const ir::Program &P,
                                      const VbmcOptions &Opts) {
  Timer Watch;
  translation::TranslationOptions TO;
  TO.K = Opts.K;
  TO.CasAllowance = Opts.CasAllowance;
  translation::TranslationResult TR = translation::translateToSc(P, TO);

  VbmcResult R = Opts.Backend == BackendKind::Explicit
                     ? runExplicit(TR.Prog, TR.ContextBound, Opts)
                     : runSatBackend(TR.Prog, TR.ContextBound, Opts);
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

IterativeResult vbmc::driver::checkIterative(const ir::Program &P,
                                             uint32_t MaxK,
                                             const VbmcOptions &BaseOpts) {
  Timer Watch;
  IterativeResult R;
  bool SawInconclusive = false;
  for (uint32_t K = 0; K <= MaxK; ++K) {
    VbmcOptions Opts = BaseOpts;
    Opts.K = K;
    if (BaseOpts.BudgetSeconds > 0) {
      double Left = BaseOpts.BudgetSeconds - Watch.elapsedSeconds();
      if (Left <= 0) {
        SawInconclusive = true;
        break;
      }
      Opts.BudgetSeconds = Left;
    }
    VbmcResult Step = checkProgram(P, Opts);
    R.Iterations.push_back(IterationReport{K, Step.Outcome, Step.Seconds});
    if (Step.unsafe()) {
      R.Outcome = Verdict::Unsafe;
      R.KUsed = K;
      R.Seconds = Watch.elapsedSeconds();
      return R;
    }
    SawInconclusive |= Step.Outcome == Verdict::Unknown;
  }
  R.Outcome = SawInconclusive ? Verdict::Unknown : Verdict::Safe;
  R.KUsed = MaxK;
  R.Seconds = Watch.elapsedSeconds();
  return R;
}

VbmcResult vbmc::driver::checkSource(const std::string &Source,
                                     const VbmcOptions &Opts) {
  auto P = ir::parseProgram(Source);
  if (!P) {
    VbmcResult R;
    R.Outcome = Verdict::Unknown;
    R.Note = "parse error: " + P.error().str();
    return R;
  }
  return checkProgram(*P, Opts);
}
