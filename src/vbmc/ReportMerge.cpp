//===- ReportMerge.cpp - cross-document report aggregation -------*- C++ -*-===//

#include "vbmc/ReportMerge.h"

#include <algorithm>

using namespace vbmc;
using namespace vbmc::report;

namespace {

/// Emits a summed number: integral sums render as integers (counters),
/// everything else keeps its decimal (timer seconds). Mirrors what the
/// original writers emitted so merging does not change a value's shape.
void writeNumber(json::JsonWriter &W, double V) {
  if (V >= 0 && V == static_cast<double>(static_cast<uint64_t>(V)))
    W.value(static_cast<uint64_t>(V));
  else
    W.value(V);
}

const json::Value *member(const json::Value &Doc, const char *Key) {
  return Doc.isObject() ? Doc.get(Key) : nullptr;
}

std::string stringOr(const json::Value &Doc, const char *Key,
                     const std::string &Default = "") {
  const json::Value *V = member(Doc, Key);
  return V && V->isString() ? V->asString() : Default;
}

double numberOr(const json::Value &Doc, const char *Key, double Default = 0) {
  const json::Value *V = member(Doc, Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

} // namespace

std::string vbmc::report::schemaOf(const json::Value &Doc) {
  if (Doc.isArray())
    return "chrome-trace";
  if (const json::Value *S = member(Doc, "schema"); S && S->isString())
    return S->asString();
  return "";
}

void Merger::noteSource(const std::string &Path, const std::string &Schema) {
  ++Inputs;
  Sources.emplace_back(Path, Schema);
}

void Merger::setSection(const std::string &Key, std::string RawJson) {
  for (auto &S : Sections)
    if (S.first == Key) {
      S.second = std::move(RawJson);
      return;
    }
  Sections.emplace_back(Key, std::move(RawJson));
}

bool Merger::add(const std::string &Path, const json::Value &Doc,
                 std::string *Err) {
  std::string Schema = schemaOf(Doc);
  bool Ok;
  if (Schema == "vbmc-run-report/v1")
    Ok = addRunReport(Path, Doc, Err);
  else if (Schema == "vbmc-bench/v1")
    Ok = addBench(Path, Doc, Err);
  else if (Schema == "vbmc-fuzz/v1")
    Ok = addFuzz(Path, Doc, Err);
  else if (Schema == "chrome-trace")
    Ok = addChromeTrace(Doc, Err);
  else {
    if (Err)
      *Err = Schema.empty()
                 ? "document has no schema member and is not a trace array"
                 : "unsupported schema '" + Schema + "'";
    return false;
  }
  if (Ok)
    noteSource(Path, Schema);
  return Ok;
}

bool Merger::addRunReport(const std::string &Path, const json::Value &Doc,
                          std::string *Err) {
  (void)Err;
  ++RunCount;
  std::string Verdict = stringOr(Doc, "verdict", "unknown");
  ++RunVerdicts[Verdict];
  std::string Failure = stringOr(Doc, "failure", "none");
  ++RunFailures[Failure];

  // The condensed per-run record: the fields a cross-commit diff reads.
  // The full per-run stats fold into the summed pool below instead of
  // being repeated here.
  json::JsonWriter W;
  W.beginObject();
  W.key("source").value(Path);
  W.key("file").value(stringOr(Doc, "file"));
  W.key("verdict").value(Verdict);
  W.key("mode_ran").value(stringOr(Doc, "mode_ran"));
  W.key("backend").value(stringOr(Doc, "backend"));
  W.key("k_used").value(static_cast<uint64_t>(numberOr(Doc, "k_used")));
  W.key("seconds").value(numberOr(Doc, "seconds"));
  W.key("failure").value(Failure);
  W.endObject();
  RunRecords.push_back(W.str());

  if (const json::Value *Stats = member(Doc, "stats"); Stats)
    for (const auto &[Key, V] : Stats->members())
      if (V.isNumber())
        RunStats[Key] += V.asNumber();
  return true;
}

bool Merger::addBench(const std::string &Path, const json::Value &Doc,
                      std::string *Err) {
  const json::Value *Rows = member(Doc, "rows");
  if (!Rows || !Rows->isArray()) {
    if (Err)
      *Err = "vbmc-bench/v1 document has no rows array";
    return false;
  }
  std::string BenchName = stringOr(Doc, "bench");
  for (const json::Value &Row : Rows->array()) {
    ++BenchRows;
    // Each row is carried verbatim, prefixed with where it came from.
    json::JsonWriter W;
    W.beginObject();
    W.key("bench").value(BenchName);
    W.key("source").value(Path);
    if (Row.isObject())
      for (const auto &[Key, V] : Row.members())
        W.key(Key).raw(json::format(V));
    W.endObject();
    BenchRecords.push_back(W.str());
  }
  return true;
}

bool Merger::addFuzz(const std::string &Path, const json::Value &Doc,
                     std::string *Err) {
  (void)Path;
  (void)Err;
  ++FuzzCampaigns;
  for (const char *Key : {"checked", "passed", "skipped", "timeouts"})
    FuzzCounts[Key] += numberOr(Doc, Key);
  if (const json::Value *SB = member(Doc, "sandbox"); SB)
    for (const char *Key : {"crashes", "ooms", "timeouts", "retries"})
      FuzzCounts[std::string("sandbox.") + Key] += numberOr(*SB, Key);
  if (const json::Value *Ds = member(Doc, "discrepancies"); Ds && Ds->isArray())
    for (const json::Value &D : Ds->array())
      FuzzDiscrepancies.push_back(json::format(D));
  return true;
}

bool Merger::addChromeTrace(const json::Value &Doc, std::string *Err) {
  std::vector<TraceSpan> Spans;
  double End = 0;
  for (const json::Value &Ev : Doc.array()) {
    // Only "X" (complete) events are spans; the exporter emits nothing
    // else, but a hand-edited trace may.
    if (stringOr(Ev, "ph") != "X")
      continue;
    TraceSpan S;
    S.Name = stringOr(Ev, "name");
    S.Category = stringOr(Ev, "cat");
    S.StartMicros = numberOr(Ev, "ts");
    S.DurationMicros = numberOr(Ev, "dur");
    S.ThreadId = static_cast<uint32_t>(numberOr(Ev, "tid"));
    End = std::max(End, S.StartMicros + S.DurationMicros);
    Spans.push_back(std::move(S));
  }
  if (Spans.empty()) {
    if (Err)
      *Err = "trace array contains no complete ('X') events";
    return false;
  }
  // Lane-shift: fresh thread ids, timeline appended after the previous
  // input so the merged trace reads as one contiguous run.
  Recorder.merge(Spans, TraceEndMicros);
  TraceEndMicros += End;
  return true;
}

std::string Merger::formatArtifact() const {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema").value("vbmc-report-merged/v1");
  W.key("inputs").value(Inputs);
  W.key("sources").beginArray();
  for (const auto &[Path, Schema] : Sources) {
    W.beginObject();
    W.key("path").value(Path);
    W.key("schema").value(Schema);
    W.endObject();
  }
  W.endArray();

  if (RunCount) {
    W.key("runs").beginObject();
    W.key("count").value(RunCount);
    W.key("verdicts").beginObject();
    for (const auto &[Verdict, N] : RunVerdicts)
      W.key(Verdict).value(N);
    W.endObject();
    W.key("failures").beginObject();
    for (const auto &[Failure, N] : RunFailures)
      W.key(Failure).value(N);
    W.endObject();
    W.key("records").beginArray();
    for (const std::string &R : RunRecords)
      W.raw(R);
    W.endArray();
    W.key("stats").beginObject();
    for (const auto &[Key, V] : RunStats) {
      W.key(Key);
      writeNumber(W, V);
    }
    W.endObject();
    W.endObject();
  }

  if (BenchRows) {
    W.key("bench").beginObject();
    W.key("rows").value(BenchRows);
    W.key("records").beginArray();
    for (const std::string &R : BenchRecords)
      W.raw(R);
    W.endArray();
    W.endObject();
  }

  if (FuzzCampaigns) {
    W.key("fuzz").beginObject();
    W.key("campaigns").value(FuzzCampaigns);
    for (const char *Key : {"checked", "passed", "skipped", "timeouts"}) {
      auto It = FuzzCounts.find(Key);
      W.key(Key);
      writeNumber(W, It == FuzzCounts.end() ? 0 : It->second);
    }
    W.key("sandbox").beginObject();
    for (const char *Key : {"crashes", "ooms", "timeouts", "retries"}) {
      auto It = FuzzCounts.find(std::string("sandbox.") + Key);
      W.key(Key);
      writeNumber(W, It == FuzzCounts.end() ? 0 : It->second);
    }
    W.endObject();
    W.key("discrepancies").beginArray();
    for (const std::string &D : FuzzDiscrepancies)
      W.raw(D);
    W.endArray();
    W.endObject();
  }

  if (Recorder.spanCount()) {
    W.key("trace").beginObject();
    W.key("spans").value(static_cast<uint64_t>(Recorder.spanCount()));
    W.key("dropped").value(Recorder.droppedSpans() + TraceDropped);
    W.endObject();
  }

  for (const auto &[Key, Raw] : Sections)
    W.key(Key).raw(Raw);
  W.endObject();
  return W.str();
}
