//===- Vbmc.h - the VBMC tool driver ------------------------------*- C++ -*-===//
///
/// \file
/// End-to-end driver replicating the paper's tool (Section 6): given an RA
/// program and a view bound K, translate with [[.]]_K and decide assertion
/// reachability of the translated program under context-bounded SC with one
/// of two backends:
///
///  * Explicit — explicit-state context-bounded search (stands in for the
///    scheduler part of Lazy-CSeq);
///  * Sat — bounded model checking: unroll loops L times, sequentialize
///    (Lal–Reps rounds), bit-blast, solve with the built-in CDCL solver
///    (stands in for CBMC).
///
/// Verdicts follow the paper: UNSAFE means an assertion fails within the
/// K-view-switch under-approximation; SAFE means no assertion fails in that
/// subset of executions (not full safety).
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_VBMC_H
#define VBMC_VBMC_VBMC_H

#include "ir/Program.h"
#include "sc/ScExplorer.h"
#include "support/CheckContext.h"
#include "support/Sandbox.h"
#include "translation/Translate.h"

#include <string>

namespace vbmc::driver {

enum class BackendKind {
  Explicit, ///< Explicit-state context-bounded SC search.
  Sat,      ///< BMC pipeline (unroll + sequentialize + CDCL SAT).
};

struct VbmcOptions {
  /// View-switch budget K.
  uint32_t K = 2;
  /// Loop unrolling bound L (Sat backend; the explicit backend needs none).
  uint32_t L = 2;
  /// Extra abstract timestamps for CAS/fence chains.
  uint32_t CasAllowance = 8;
  BackendKind Backend = BackendKind::Explicit;
  /// Section 6 scheduling optimization (explicit backend).
  bool SwitchOnlyAfterWrite = true;
  /// Wall-clock budget in seconds (0 = unlimited).
  double BudgetSeconds = 0;
  /// State cap for the explicit backend (0 = unlimited).
  uint64_t MaxStates = 0;
  /// Run each verification attempt in a forked, resource-governed child
  /// process (support/Sandbox.h): a crashing or memory-eating backend
  /// yields a classified Unknown instead of killing the engine. Portfolio
  /// and parallel-deepening arms each get their own sandbox.
  bool Isolate = false;
  /// Memory ceiling in bytes (0 = unlimited). Doubles as the sandbox's
  /// RLIMIT_AS headroom (when Isolate) and as the BMC encoder's in-process
  /// byte ceiling (always), so a huge encoding degrades to a classified
  /// OutOfMemory rather than a std::bad_alloc abort.
  uint64_t MemLimitBytes = 0;
  /// Retry policy: re-attempt a memory-killed run once at reduced bounds
  /// (L and K halved) before reporting the classified failure. The
  /// reduced-bound verdict is flagged in the result note, since it covers
  /// a smaller execution subset.
  bool RetryReduced = true;
};

enum class Verdict {
  Safe,    ///< No assertion violation in the K-bounded subset.
  Unsafe,  ///< Counterexample with at most K view switches found.
  Unknown, ///< Resource limit hit before a conclusion.
};

struct VbmcResult {
  Verdict Outcome = Verdict::Unknown;
  /// For Unknown: why no verdict exists, when the cause is a classified
  /// fault (backend crash, OOM kill, sandbox timeout) rather than a
  /// cooperative stop (deadline poll, state cap, cancellation — those
  /// keep FailureKind::None and explain themselves in Note). Drives the
  /// CLI's exit code 3 and the fuzz campaign's crash witnesses.
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  /// Backend time as reported by the backend itself. Translation time is
  /// *not* folded in here; it is recorded separately (TranslateSeconds
  /// and the translate.seconds stage in the context's StatsRegistry).
  double Seconds = 0;
  /// Time spent in the [[.]]_K translation stage.
  double TranslateSeconds = 0;
  /// Explicit backend: states visited. Sat backend: CNF clauses.
  uint64_t Work = 0;
  /// Counterexample schedule over the *translated* program, when UNSAFE
  /// and the explicit backend was used.
  std::vector<sc::ScTraceStep> Trace;
  std::string Note;
  /// Portfolio mode: which backend produced the verdict ("explicit" or
  /// "sat"); empty for single-backend runs.
  std::string WinningBackend;

  bool unsafe() const { return Outcome == Verdict::Unsafe; }
  bool safe() const { return Outcome == Verdict::Safe; }
  /// True when the Unknown was caused by a classified fault.
  bool failed() const { return sandbox::isFailure(Failure); }
};

/// Runs the staged VBMC pipeline (translate, then one backend) on \p P,
/// honoring \p Ctx: its deadline bounds every stage, its token cancels the
/// run cooperatively, and every stage records into its StatsRegistry.
VbmcResult checkProgram(const ir::Program &P, const VbmcOptions &Opts,
                        CheckContext &Ctx);

/// Convenience overload running under a private context built from
/// Opts.BudgetSeconds.
VbmcResult checkProgram(const ir::Program &P, const VbmcOptions &Opts);

/// Races the Explicit and Sat backends on separate threads over one shared
/// translation; the first conclusive (SAFE/UNSAFE) verdict wins and the
/// loser is cancelled immediately. Unknown only when both backends are
/// inconclusive. Opts.Backend is ignored.
VbmcResult checkPortfolio(const ir::Program &P, const VbmcOptions &Opts,
                          CheckContext &Ctx);
VbmcResult checkPortfolio(const ir::Program &P, const VbmcOptions &Opts);

/// Convenience: parse, then checkProgram; parse errors yield Unknown with
/// the diagnostic in Note.
VbmcResult checkSource(const std::string &Source, const VbmcOptions &Opts);

/// BMC backend entry point (defined in SatBackend.cpp): decides assertion
/// reachability of the already-translated SC program \p Translated within
/// \p ContextBound context switches by bounded model checking. \p Ctx,
/// when non-null, carries the deadline/cancellation/stats of the run.
VbmcResult runSatBackend(const ir::Program &Translated, uint32_t ContextBound,
                         const VbmcOptions &Opts,
                         const CheckContext *Ctx = nullptr);

/// One step of the paper's iterative workflow (Section 6: "This subset
/// can be increased iteratively, by increasing K, to find bugs in real
/// world programs").
struct IterationReport {
  uint32_t K = 0;
  Verdict Outcome = Verdict::Unknown;
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  double Seconds = 0;
};

struct IterativeResult {
  /// Final verdict: Unsafe as soon as some K finds a bug; Safe when every
  /// K up to MaxK was exhausted conclusively; Unknown otherwise.
  Verdict Outcome = Verdict::Unknown;
  /// When Unknown: the first classified fault hit across the iterations
  /// (None when every inconclusive step was cooperative).
  sandbox::FailureKind Failure = sandbox::FailureKind::None;
  uint32_t KUsed = 0;
  std::vector<IterationReport> Iterations;
  double Seconds = 0;

  bool unsafe() const { return Outcome == Verdict::Unsafe; }
};

/// Runs checkProgram for K = 0, 1, ..., MaxK, stopping at the first
/// UNSAFE answer. All iterations share \p Ctx, so its deadline naturally
/// gives later iterations whatever wall clock is left.
IterativeResult checkIterative(const ir::Program &P, uint32_t MaxK,
                               const VbmcOptions &BaseOpts,
                               CheckContext &Ctx);
IterativeResult checkIterative(const ir::Program &P, uint32_t MaxK,
                               const VbmcOptions &BaseOpts);

/// Parallel deepening: explores up to \p Threads values of K concurrently
/// (K = 0..MaxK, each under a cancellable child context) while preserving
/// the paper's iterative semantics: UNSAFE is reported for the *smallest*
/// K that finds a bug (larger in-flight K runs are cancelled, smaller
/// ones are always allowed to finish first), SAFE only when every
/// K <= MaxK was conclusively exhausted, Unknown otherwise.
IterativeResult checkParallelDeepening(const ir::Program &P, uint32_t MaxK,
                                       uint32_t Threads,
                                       const VbmcOptions &BaseOpts,
                                       CheckContext &Ctx);
IterativeResult checkParallelDeepening(const ir::Program &P, uint32_t MaxK,
                                       uint32_t Threads,
                                       const VbmcOptions &BaseOpts);

} // namespace vbmc::driver

#endif // VBMC_VBMC_VBMC_H
