//===- Vbmc.h - the VBMC tool driver ------------------------------*- C++ -*-===//
///
/// \file
/// End-to-end driver replicating the paper's tool (Section 6): given an RA
/// program and a view bound K, translate with [[.]]_K and decide assertion
/// reachability of the translated program under context-bounded SC with one
/// of two backends:
///
///  * Explicit — explicit-state context-bounded search (stands in for the
///    scheduler part of Lazy-CSeq);
///  * Sat — bounded model checking: unroll loops L times, sequentialize
///    (Lal–Reps rounds), bit-blast, solve with the built-in CDCL solver
///    (stands in for CBMC).
///
/// Verdicts follow the paper: UNSAFE means an assertion fails within the
/// K-view-switch under-approximation; SAFE means no assertion fails in that
/// subset of executions (not full safety).
///
/// The driver API lives in Engine.h (`Engine::run(CheckRequest)`); this
/// header keeps the historical free-function entry points as thin
/// deprecated wrappers, each building the equivalent CheckRequest and
/// delegating to a fresh Engine. New code should construct an Engine
/// directly — besides the unified mode selection it also unlocks the
/// persistent-encoding reuse the wrappers (by being stateless) cannot
/// offer.
///
//===----------------------------------------------------------------------===//

#ifndef VBMC_VBMC_VBMC_H
#define VBMC_VBMC_VBMC_H

#include "vbmc/Engine.h"

#include <string>

namespace vbmc::driver {

/// Deprecated aliases from the pre-Engine API: VbmcResult and
/// IterativeResult were two near-identical result structs; both are now
/// the single CheckReport (IterativeResult's `Iterations` member is
/// CheckReport's `Attempts`).
using VbmcResult = CheckReport;
using IterativeResult = CheckReport;
using IterationReport = Attempt;

/// Runs the staged VBMC pipeline (translate, then one backend) on \p P,
/// honoring \p Ctx: its deadline bounds every stage, its token cancels the
/// run cooperatively, and every stage records into its StatsRegistry.
/// Deprecated wrapper for Engine::run with EngineMode::Single.
VbmcResult checkProgram(const ir::Program &P, const VbmcOptions &Opts,
                        CheckContext &Ctx);

/// Convenience overload running under a private context built from
/// Opts.BudgetSeconds.
VbmcResult checkProgram(const ir::Program &P, const VbmcOptions &Opts);

/// Races the Explicit and Sat backends on separate threads over one shared
/// translation; the first conclusive (SAFE/UNSAFE) verdict wins and the
/// loser is cancelled immediately. Unknown only when both backends are
/// inconclusive. Opts.Backend is ignored. Deprecated wrapper for
/// Engine::run with EngineMode::Portfolio.
VbmcResult checkPortfolio(const ir::Program &P, const VbmcOptions &Opts,
                          CheckContext &Ctx);
VbmcResult checkPortfolio(const ir::Program &P, const VbmcOptions &Opts);

/// Convenience: parse, then checkProgram; parse errors yield Unknown with
/// the diagnostic in Note.
VbmcResult checkSource(const std::string &Source, const VbmcOptions &Opts);

/// BMC backend entry point (defined in SatBackend.cpp): decides assertion
/// reachability of the already-translated SC program \p Translated within
/// \p ContextBound context switches by bounded model checking. \p Ctx,
/// when non-null, carries the deadline/cancellation/stats of the run.
VbmcResult runSatBackend(const ir::Program &Translated, uint32_t ContextBound,
                         const VbmcOptions &Opts,
                         const CheckContext *Ctx = nullptr);

/// Runs checkProgram for K = 0, 1, ..., MaxK, stopping at the first
/// UNSAFE answer. All iterations share \p Ctx, so its deadline naturally
/// gives later iterations whatever wall clock is left. Deprecated wrapper
/// for Engine::run with EngineMode::Iterative.
IterativeResult checkIterative(const ir::Program &P, uint32_t MaxK,
                               const VbmcOptions &BaseOpts,
                               CheckContext &Ctx);
IterativeResult checkIterative(const ir::Program &P, uint32_t MaxK,
                               const VbmcOptions &BaseOpts);

/// Parallel deepening: explores up to \p Threads values of K concurrently
/// (K = 0..MaxK, each under a cancellable child context) while preserving
/// the paper's iterative semantics: UNSAFE is reported for the *smallest*
/// K that finds a bug (larger in-flight K runs are cancelled, smaller
/// ones are always allowed to finish first), SAFE only when every
/// K <= MaxK was conclusively exhausted, Unknown otherwise. Deprecated
/// wrapper for Engine::run with EngineMode::ParallelDeepening.
IterativeResult checkParallelDeepening(const ir::Program &P, uint32_t MaxK,
                                       uint32_t Threads,
                                       const VbmcOptions &BaseOpts,
                                       CheckContext &Ctx);
IterativeResult checkParallelDeepening(const ir::Program &P, uint32_t MaxK,
                                       uint32_t Threads,
                                       const VbmcOptions &BaseOpts);

} // namespace vbmc::driver

#endif // VBMC_VBMC_VBMC_H
