//===- VbmcMain.cpp - the vbmc command-line tool ---------------*- C++ -*-===//
//
// Usage:
//   vbmc [--mode single|iterative|portfolio|parallel-deepening|incremental]
//        [--k N] [--l N] [--backend explicit|sat] [--budget SECONDS]
//        [--stats] [--report-json FILE|-] [--trace-out FILE]
//        [--dump-translation] [--show-trace] [--ra-reference] FILE
//
// Reads a concurrent program in the Fig. 1 concrete syntax, translates it
// with [[.]]_K and reports SAFE / UNSAFE / UNKNOWN. --mode is the
// canonical selector for the engine's five strategies; the historical
// flags (--portfolio, --iterative, --parallel-deepening N, --incremental)
// are kept and map onto it. --stats dumps the per-stage counters recorded
// in the run's CheckContext. With --ra-reference the query is answered by
// the exact RA explorer instead (no translation), for cross-checking on
// small inputs.
//
// Exit codes: 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN (inconclusive within
// bounds/budget), 3 = resource or crash failure (a backend died, ran out
// of memory, or was killed on its budget — see --isolate), 4 = usage or
// input error.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ra/RaExplorer.h"
#include "support/Cli.h"
#include "support/Sandbox.h"
#include "vbmc/Report.h"
#include "vbmc/Engine.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <new>
#include <sstream>

using namespace vbmc;

namespace {

// Documented exit codes (asserted by SandboxTest and CI).
constexpr int ExitSafe = 0;
constexpr int ExitUnsafe = 1;
constexpr int ExitUnknown = 2;
constexpr int ExitResourceFailure = 3;
constexpr int ExitUsage = 4;

void printUsage() {
  std::puts(
      "usage: vbmc [options] FILE\n"
      "  --mode MODE        single | iterative | portfolio |\n"
      "                     parallel-deepening | incremental (default\n"
      "                     single). The canonical strategy selector:\n"
      "                       single             one attempt at --k\n"
      "                       iterative          fresh pipeline per k=0..max-k\n"
      "                       portfolio          race both backends at --k\n"
      "                       parallel-deepening several k concurrently\n"
      "                       incremental        encode once at max-k, deepen\n"
      "                                          by re-solving one persistent\n"
      "                                          solver under assumptions\n"
      "  --k N              view-switch budget (default 2)\n"
      "  --l N              loop unrolling bound for the sat backend "
      "(default 2)\n"
      "  --backend KIND     explicit | sat (default explicit; incremental\n"
      "                     mode always uses sat)\n"
      "  --budget SECONDS   wall-clock budget (default unlimited)\n"
      "  --max-states N     explicit-backend state cap\n"
      "  --isolate          run each verification attempt in a forked,\n"
      "                     resource-governed child; a crashing backend\n"
      "                     yields a classified UNKNOWN, not a dead tool\n"
      "  --mem-limit-mb N   memory ceiling per attempt (encoder aborts\n"
      "                     cleanly at it; with --isolate also the child's\n"
      "                     address-space headroom). 0 = unlimited\n"
      "  --no-retry         disable the one retry at reduced bounds after\n"
      "                     a memory-killed attempt\n"
      "  --max-conflicts N  per-solver-call conflict cap (sat backend;\n"
      "                     0 = unlimited)\n"
      "  --max-propagations N\n"
      "                     per-solver-call propagation cap (sat backend;\n"
      "                     0 = unlimited)\n"
      "  --phase MODE       saved | positive | negative | random — CDCL\n"
      "                     decision-polarity policy (default saved)\n"
      "  --phase-seed N     seed for --phase random\n"
      "  --no-monotone-lemmas\n"
      "                     incremental mode: skip the redundant\n"
      "                     monotonicity lemmas (performance ablation)\n"
      "  --stats            dump per-stage counters/timers after the "
      "verdict\n"
      "  --report-json F    write a structured JSON run report (verdict,\n"
      "                     mode, k_used, per-attempt history, failure\n"
      "                     classification, full stats snapshot) to F;\n"
      "                     '-' = stdout. With --isolate the sandboxed\n"
      "                     child's stats merge into the same report\n"
      "  --trace-out F      record per-stage spans (translate, flatten,\n"
      "                     unroll, encode, per-budget solves, portfolio\n"
      "                     arms, sandboxed children) and write Chrome\n"
      "                     trace_event JSON to F; view at\n"
      "                     ui.perfetto.dev or chrome://tracing\n"
      "  --dump-translation print [[P]]_K and exit\n"
      "  --show-trace       print the counterexample schedule when UNSAFE\n"
      "  --ra-reference     answer with the exact RA explorer instead\n"
      "  --max-k N          deepening-mode ceiling (default 6)\n"
      "  --threads N        parallel-deepening worker threads (default 2)\n"
      "  --cache-entries N  incremental-mode encoding-cache capacity\n"
      "                     (default 4; matters only when one process\n"
      "                     checks several programs, e.g. vbmc-serve)\n"
      "legacy flags, mapped onto --mode (which wins when both are given):\n"
      "  --portfolio        = --mode portfolio\n"
      "  --iterative        = --mode iterative\n"
      "  --parallel-deepening N\n"
      "                     = --mode parallel-deepening --threads N\n"
      "  --incremental      = --mode incremental\n"
      "  --no-incremental   force fresh per-K solving: demotes an\n"
      "                     incremental mode selection to iterative\n"
      "exit codes: 0 safe, 1 unsafe, 2 unknown, 3 resource/crash failure,\n"
      "            4 usage error");
}

const char *verdictUpper(driver::Verdict V) {
  switch (V) {
  case driver::Verdict::Unsafe:
    return "UNSAFE";
  case driver::Verdict::Safe:
    return "SAFE";
  case driver::Verdict::Unknown:
    return "UNKNOWN";
  }
  return "UNKNOWN";
}

/// Maps a verdict plus its failure classification to the documented exit
/// code: inconclusive-within-bounds (2) and died-on-resources (3) are
/// different outcomes for scripting.
int verdictExitCode(driver::Verdict V, sandbox::FailureKind F) {
  switch (V) {
  case driver::Verdict::Unsafe:
    return ExitUnsafe;
  case driver::Verdict::Safe:
    return ExitSafe;
  case driver::Verdict::Unknown:
    return sandbox::isFailure(F) ? ExitResourceFailure : ExitUnknown;
  }
  return ExitUnknown;
}

int runMain(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(
      Argc, Argv,
      {"portfolio", "stats", "dump-translation", "show-trace",
       "ra-reference", "iterative", "incremental", "no-incremental",
       "isolate", "no-retry", "no-monotone-lemmas", "help"});
  if (CL.hasFlag("help") || CL.positionals().size() != 1) {
    printUsage();
    return CL.hasFlag("help") ? 0 : ExitUsage;
  }

  std::ifstream File(CL.positionals()[0]);
  if (!File) {
    std::fprintf(stderr, "vbmc: cannot open '%s'\n",
                 CL.positionals()[0].c_str());
    return ExitUsage;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  auto Parsed = ir::parseProgram(Buffer.str());
  if (!Parsed) {
    std::fprintf(stderr, "vbmc: %s: %s\n", CL.positionals()[0].c_str(),
                 Parsed.error().str().c_str());
    return ExitUsage;
  }

  driver::VbmcOptions Opts;
  Opts.K = static_cast<uint32_t>(CL.getInt("k", 2));
  Opts.L = static_cast<uint32_t>(CL.getInt("l", 2));
  Opts.BudgetSeconds = CL.getDouble("budget", 0);
  Opts.MaxStates = static_cast<uint64_t>(CL.getInt("max-states", 0));
  Opts.Backend = CL.getString("backend", "explicit") == "sat"
                     ? driver::BackendKind::Sat
                     : driver::BackendKind::Explicit;
  Opts.Isolate = CL.hasFlag("isolate");
  Opts.MemLimitBytes =
      static_cast<uint64_t>(CL.getInt("mem-limit-mb", 0)) << 20;
  Opts.RetryReduced = !CL.hasFlag("no-retry");
  Opts.MaxConflicts = static_cast<uint64_t>(CL.getInt("max-conflicts", 0));
  Opts.MaxPropagations =
      static_cast<uint64_t>(CL.getInt("max-propagations", 0));
  Opts.PhaseSeed = static_cast<uint64_t>(CL.getInt("phase-seed", 0));
  Opts.MonotoneLemmas = !CL.hasFlag("no-monotone-lemmas");
  std::string PhaseName = CL.getString("phase", "");
  if (!PhaseName.empty() &&
      !driver::phasePolicyFromName(PhaseName, Opts.Phase)) {
    std::fprintf(stderr, "vbmc: unknown --phase '%s'\n", PhaseName.c_str());
    printUsage();
    return ExitUsage;
  }
  if (Opts.Isolate && !sandbox::available())
    std::fprintf(stderr,
                 "vbmc: --isolate unsupported on this platform; running "
                 "in-process\n");

  if (CL.hasFlag("dump-translation")) {
    translation::TranslationOptions TO;
    TO.K = Opts.K;
    auto TR = translation::translateToSc(*Parsed, TO);
    std::fputs(ir::printProgram(TR.Prog).c_str(), stdout);
    std::printf("// context bound: %u\n", TR.ContextBound);
    return 0;
  }

  if (CL.hasFlag("ra-reference")) {
    ir::FlatProgram FP = ir::flatten(*Parsed);
    ra::RaQuery Q;
    Q.ViewSwitchBound = Opts.K;
    Q.BudgetSeconds = Opts.BudgetSeconds;
    Q.MaxStates = Opts.MaxStates;
    ra::RaResult R = ra::exploreRa(FP, Q);
    if (R.reached()) {
      std::printf("UNSAFE (ra-reference, %u view switches, %.3fs)\n",
                  R.SwitchesUsed, R.Seconds);
      if (CL.hasFlag("show-trace"))
        std::fputs(ra::formatTrace(FP, R.Trace).c_str(), stdout);
      return ExitUnsafe;
    }
    std::printf("%s (ra-reference, %.3fs)\n",
                R.exhausted() ? "SAFE" : "UNKNOWN", R.Seconds);
    return R.exhausted() ? ExitSafe : ExitUnknown;
  }

  // The engine-wide context: one deadline for every stage, a cancellation
  // root, and the per-stage statistics that --stats dumps.
  CheckContext Ctx(Opts.BudgetSeconds);
  const bool ShowStats = CL.hasFlag("stats");
  auto dumpStats = [&] {
    if (ShowStats)
      std::fputs(Ctx.stats().format().c_str(), stdout);
  };

  const std::string ReportPath = CL.getString("report-json", "");
  const std::string TracePath = CL.getString("trace-out", "");
  if (!TracePath.empty())
    Ctx.trace().enable();

  // Writes one observability document; '-' means stdout. A write failure
  // is reported but never masks the verdict's exit code.
  auto emitJson = [](const std::string &Path, const std::string &Text,
                     const char *What) {
    if (Path == "-") {
      std::fputs(Text.c_str(), stdout);
      std::fputc('\n', stdout);
      return;
    }
    std::ofstream Out(Path);
    Out << Text << '\n';
    if (!Out)
      std::fprintf(stderr, "vbmc: cannot write %s to '%s'\n", What,
                   Path.c_str());
  };

  // Mode resolution: the legacy flags each imply a mode; an explicit
  // --mode is canonical and wins; --no-incremental demotes an incremental
  // selection back to fresh per-K solving.
  uint32_t DeepeningThreads =
      static_cast<uint32_t>(CL.getInt("parallel-deepening", 0));
  driver::EngineMode Mode = driver::EngineMode::Single;
  if (CL.hasFlag("portfolio"))
    Mode = driver::EngineMode::Portfolio;
  if (CL.hasFlag("iterative"))
    Mode = driver::EngineMode::Iterative;
  if (DeepeningThreads > 0)
    Mode = driver::EngineMode::ParallelDeepening;
  if (CL.hasFlag("incremental"))
    Mode = driver::EngineMode::Incremental;
  std::string ModeName = CL.getString("mode", "");
  if (!ModeName.empty() && !driver::engineModeFromName(ModeName, Mode)) {
    std::fprintf(stderr, "vbmc: unknown --mode '%s'\n", ModeName.c_str());
    printUsage();
    return ExitUsage;
  }
  if (CL.hasFlag("no-incremental") &&
      Mode == driver::EngineMode::Incremental)
    Mode = driver::EngineMode::Iterative;

  driver::CheckRequest Req;
  Req.Mode = Mode;
  Req.Opts = Opts;
  Req.MaxK = static_cast<uint32_t>(CL.getInt("max-k", 6));
  Req.Threads = DeepeningThreads > 0
                    ? DeepeningThreads
                    : static_cast<uint32_t>(CL.getInt("threads", 2));

  const bool Deepening = Mode == driver::EngineMode::Iterative ||
                         Mode == driver::EngineMode::ParallelDeepening ||
                         Mode == driver::EngineMode::Incremental;
  driver::Engine Engine;
  if (CL.hasFlag("cache-entries"))
    Engine.setEncodingCacheCapacity(
        static_cast<size_t>(CL.getInt("cache-entries", 4)));
  driver::CheckReport R = Engine.run(*Parsed, Req, Ctx);

  auto emitObservability = [&] {
    if (!ReportPath.empty()) {
      driver::ReportInfo Info;
      Info.File = CL.positionals()[0];
      Info.RequestedMode = Mode;
      Info.K = Opts.K;
      Info.L = Opts.L;
      Info.MaxK = Req.MaxK;
      Info.Threads = Req.Threads;
      Info.Backend = Opts.Backend;
      Info.Isolate = Opts.Isolate;
      emitJson(ReportPath,
               driver::formatRunReport(
                   R, Info, Ctx.stats(),
                   Ctx.trace().enabled() ? &Ctx.trace() : nullptr),
               "run report");
    }
    if (!TracePath.empty())
      emitJson(TracePath, Ctx.trace().formatChromeTrace(), "trace");
  };

  if (Deepening) {
    for (const auto &Step : R.Attempts)
      std::printf("  k=%u: %s (%.3fs)\n", Step.K,
                  Step.Outcome == driver::Verdict::Unsafe   ? "UNSAFE"
                  : Step.Outcome == driver::Verdict::Safe   ? "safe"
                                                            : "unknown",
                  Step.Seconds);
    switch (R.Outcome) {
    case driver::Verdict::Unsafe:
      std::printf("UNSAFE (found at k=%u, %s, %.3fs total)\n", R.KUsed,
                  driver::engineModeName(R.ModeRan), R.Seconds);
      break;
    case driver::Verdict::Safe:
      std::printf("SAFE (k <= %u, %s, %.3fs total)\n", R.KUsed,
                  driver::engineModeName(R.ModeRan), R.Seconds);
      break;
    case driver::Verdict::Unknown:
      if (sandbox::isFailure(R.Failure))
        std::printf("UNKNOWN (failure=%s, %.3fs total)\n",
                    sandbox::failureKindName(R.Failure), R.Seconds);
      else
        std::printf("UNKNOWN (%.3fs total)\n", R.Seconds);
      break;
    }
    emitObservability();
    dumpStats();
    return verdictExitCode(R.Outcome, R.Failure);
  }

  std::string Detail = "k=" + std::to_string(Opts.K);
  if (!R.WinningBackend.empty())
    Detail += ", " + R.WinningBackend + " backend won";
  if (R.failed())
    Detail += std::string(", failure=") + sandbox::failureKindName(R.Failure);
  if (R.Outcome == driver::Verdict::Unknown && !R.Note.empty())
    Detail += ", " + R.Note;
  std::printf("%s (%s, %.3fs)\n", verdictUpper(R.Outcome), Detail.c_str(),
              R.Seconds);
  if (R.unsafe() && CL.hasFlag("show-trace") && !R.Trace.empty()) {
    translation::TranslationOptions TO;
    TO.K = Opts.K;
    auto TR = translation::translateToSc(*Parsed, TO);
    ir::FlatProgram FP = ir::flatten(TR.Prog);
    for (const auto &Step : R.Trace)
      std::printf("  %s@%u\n", FP.Procs[Step.Proc].Name.c_str(),
                  Step.Instr);
  }
  emitObservability();
  dumpStats();
  return verdictExitCode(R.Outcome, R.Failure);
}

} // namespace

int main(int Argc, char **Argv) {
  // Last-resort classification: nothing escaping the engine may reach the
  // default terminate handler and die with an unexplained abort.
  try {
    return runMain(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "vbmc: error: out of memory (failure=oom)\n");
    return ExitResourceFailure;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "vbmc: error: internal failure: %s\n", E.what());
    return ExitResourceFailure;
  }
}
