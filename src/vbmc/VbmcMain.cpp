//===- VbmcMain.cpp - the vbmc command-line tool ---------------*- C++ -*-===//
//
// Usage:
//   vbmc [--k N] [--l N] [--backend explicit|sat] [--portfolio]
//        [--iterative [--parallel-deepening N]] [--budget SECONDS]
//        [--stats] [--dump-translation] [--show-trace]
//        [--ra-reference] FILE
//
// Reads a concurrent program in the Fig. 1 concrete syntax, translates it
// with [[.]]_K and reports SAFE / UNSAFE / UNKNOWN. With --portfolio both
// backends race on separate threads and the first conclusive verdict wins;
// with --parallel-deepening N the iterative loop runs up to N values of K
// concurrently (smallest buggy K still wins). --stats dumps the per-stage
// counters recorded in the run's CheckContext. With --ra-reference the
// query is answered by the exact RA explorer instead (no translation), for
// cross-checking on small inputs.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ra/RaExplorer.h"
#include "support/Cli.h"
#include "vbmc/Vbmc.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vbmc;

namespace {

void printUsage() {
  std::puts(
      "usage: vbmc [options] FILE\n"
      "  --k N              view-switch budget (default 2)\n"
      "  --l N              loop unrolling bound for the sat backend "
      "(default 2)\n"
      "  --backend KIND     explicit | sat (default explicit)\n"
      "  --portfolio        race both backends concurrently; first\n"
      "                     conclusive verdict wins, loser is cancelled\n"
      "  --parallel-deepening N\n"
      "                     explore up to N values of K concurrently\n"
      "                     (iterative semantics: smallest buggy K wins)\n"
      "  --budget SECONDS   wall-clock budget (default unlimited)\n"
      "  --max-states N     explicit-backend state cap\n"
      "  --stats            dump per-stage counters/timers after the "
      "verdict\n"
      "  --dump-translation print [[P]]_K and exit\n"
      "  --show-trace       print the counterexample schedule when UNSAFE\n"
      "  --ra-reference     answer with the exact RA explorer instead\n"
      "  --iterative        deepen K = 0.. until a bug is found\n"
      "  --max-k N          deepening-mode ceiling (default 6)");
}

const char *verdictName(driver::Verdict V) {
  switch (V) {
  case driver::Verdict::Unsafe:
    return "UNSAFE";
  case driver::Verdict::Safe:
    return "SAFE";
  case driver::Verdict::Unknown:
    return "UNKNOWN";
  }
  return "UNKNOWN";
}

int verdictExitCode(driver::Verdict V) {
  switch (V) {
  case driver::Verdict::Unsafe:
    return 1;
  case driver::Verdict::Safe:
    return 0;
  case driver::Verdict::Unknown:
    return 3;
  }
  return 3;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL = CommandLine::parse(
      Argc, Argv,
      {"portfolio", "stats", "dump-translation", "show-trace",
       "ra-reference", "iterative", "help"});
  if (CL.hasFlag("help") || CL.positionals().size() != 1) {
    printUsage();
    return CL.hasFlag("help") ? 0 : 2;
  }

  std::ifstream File(CL.positionals()[0]);
  if (!File) {
    std::fprintf(stderr, "vbmc: cannot open '%s'\n",
                 CL.positionals()[0].c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  auto Parsed = ir::parseProgram(Buffer.str());
  if (!Parsed) {
    std::fprintf(stderr, "vbmc: %s: %s\n", CL.positionals()[0].c_str(),
                 Parsed.error().str().c_str());
    return 2;
  }

  driver::VbmcOptions Opts;
  Opts.K = static_cast<uint32_t>(CL.getInt("k", 2));
  Opts.L = static_cast<uint32_t>(CL.getInt("l", 2));
  Opts.BudgetSeconds = CL.getDouble("budget", 0);
  Opts.MaxStates = static_cast<uint64_t>(CL.getInt("max-states", 0));
  Opts.Backend = CL.getString("backend", "explicit") == "sat"
                     ? driver::BackendKind::Sat
                     : driver::BackendKind::Explicit;

  if (CL.hasFlag("dump-translation")) {
    translation::TranslationOptions TO;
    TO.K = Opts.K;
    auto TR = translation::translateToSc(*Parsed, TO);
    std::fputs(ir::printProgram(TR.Prog).c_str(), stdout);
    std::printf("// context bound: %u\n", TR.ContextBound);
    return 0;
  }

  if (CL.hasFlag("ra-reference")) {
    ir::FlatProgram FP = ir::flatten(*Parsed);
    ra::RaQuery Q;
    Q.ViewSwitchBound = Opts.K;
    Q.BudgetSeconds = Opts.BudgetSeconds;
    Q.MaxStates = Opts.MaxStates;
    ra::RaResult R = ra::exploreRa(FP, Q);
    if (R.reached()) {
      std::printf("UNSAFE (ra-reference, %u view switches, %.3fs)\n",
                  R.SwitchesUsed, R.Seconds);
      if (CL.hasFlag("show-trace"))
        std::fputs(ra::formatTrace(FP, R.Trace).c_str(), stdout);
      return 1;
    }
    std::printf("%s (ra-reference, %.3fs)\n",
                R.exhausted() ? "SAFE" : "UNKNOWN", R.Seconds);
    return R.exhausted() ? 0 : 3;
  }

  // The engine-wide context: one deadline for every stage, a cancellation
  // root, and the per-stage statistics that --stats dumps.
  CheckContext Ctx(Opts.BudgetSeconds);
  const bool ShowStats = CL.hasFlag("stats");
  auto dumpStats = [&] {
    if (ShowStats)
      std::fputs(Ctx.stats().format().c_str(), stdout);
  };

  uint32_t DeepeningThreads =
      static_cast<uint32_t>(CL.getInt("parallel-deepening", 0));
  if (CL.hasFlag("iterative") || DeepeningThreads > 0) {
    uint32_t MaxK = static_cast<uint32_t>(CL.getInt("max-k", 6));
    driver::IterativeResult IR =
        DeepeningThreads > 0
            ? driver::checkParallelDeepening(*Parsed, MaxK, DeepeningThreads,
                                             Opts, Ctx)
            : driver::checkIterative(*Parsed, MaxK, Opts, Ctx);
    for (const auto &Step : IR.Iterations)
      std::printf("  k=%u: %s (%.3fs)\n", Step.K,
                  Step.Outcome == driver::Verdict::Unsafe   ? "UNSAFE"
                  : Step.Outcome == driver::Verdict::Safe   ? "safe"
                                                            : "unknown",
                  Step.Seconds);
    switch (IR.Outcome) {
    case driver::Verdict::Unsafe:
      std::printf("UNSAFE (found at k=%u, %.3fs total)\n", IR.KUsed,
                  IR.Seconds);
      break;
    case driver::Verdict::Safe:
      std::printf("SAFE (k <= %u, %.3fs total)\n", IR.KUsed, IR.Seconds);
      break;
    case driver::Verdict::Unknown:
      std::printf("UNKNOWN (%.3fs total)\n", IR.Seconds);
      break;
    }
    dumpStats();
    return verdictExitCode(IR.Outcome);
  }

  const bool Portfolio = CL.hasFlag("portfolio");
  driver::VbmcResult R = Portfolio
                             ? driver::checkPortfolio(*Parsed, Opts, Ctx)
                             : driver::checkProgram(*Parsed, Opts, Ctx);
  std::string Detail = "k=" + std::to_string(Opts.K);
  if (!R.WinningBackend.empty())
    Detail += ", " + R.WinningBackend + " backend won";
  if (R.Outcome == driver::Verdict::Unknown && !R.Note.empty())
    Detail += ", " + R.Note;
  std::printf("%s (%s, %.3fs)\n", verdictName(R.Outcome), Detail.c_str(),
              R.Seconds);
  if (R.unsafe() && CL.hasFlag("show-trace") && !R.Trace.empty()) {
    translation::TranslationOptions TO;
    TO.K = Opts.K;
    auto TR = translation::translateToSc(*Parsed, TO);
    ir::FlatProgram FP = ir::flatten(TR.Prog);
    for (const auto &Step : R.Trace)
      std::printf("  %s@%u\n", FP.Procs[Step.Proc].Name.c_str(),
                  Step.Instr);
  }
  dumpStats();
  return verdictExitCode(R.Outcome);
}
