//===- SatBackend.cpp - BMC backend for the vbmc driver ---------*- C++ -*-===//
//
// Bridges the driver to the BMC pipeline (src/bmc): picks a sufficient
// bit width, unrolls, sequentializes and solves. Plays the role CBMC plays
// behind Lazy-CSeq in the paper's prototype.
//
//===----------------------------------------------------------------------===//

#include "bmc/Encoder.h"
#include "vbmc/Engine.h"

using namespace vbmc;
using namespace vbmc::driver;

namespace {

void auditExpr(const ir::Expr &E, int64_t &MaxAbs) {
  switch (E.kind()) {
  case ir::ExprKind::Const:
    MaxAbs = std::max<int64_t>(MaxAbs, std::abs((int64_t)E.constValue()));
    return;
  case ir::ExprKind::Nondet:
    MaxAbs = std::max<int64_t>(MaxAbs, std::abs((int64_t)E.nondetLo()));
    MaxAbs = std::max<int64_t>(MaxAbs, std::abs((int64_t)E.nondetHi()));
    return;
  case ir::ExprKind::Reg:
    return;
  case ir::ExprKind::Unary:
    auditExpr(*E.lhs(), MaxAbs);
    return;
  case ir::ExprKind::Binary:
    auditExpr(*E.lhs(), MaxAbs);
    auditExpr(*E.rhs(), MaxAbs);
    return;
  }
}

void auditBody(const std::vector<ir::Stmt> &Body, int64_t &MaxAbs) {
  for (const ir::Stmt &S : Body) {
    if (S.E)
      auditExpr(*S.E, MaxAbs);
    if (S.E2)
      auditExpr(*S.E2, MaxAbs);
    auditBody(S.Then, MaxAbs);
    auditBody(S.Else, MaxAbs);
  }
}

sat::PhaseMode toSatPhase(PhasePolicy P) {
  switch (P) {
  case PhasePolicy::Positive:
    return sat::PhaseMode::Positive;
  case PhasePolicy::Negative:
    return sat::PhaseMode::Negative;
  case PhasePolicy::Random:
    return sat::PhaseMode::Random;
  case PhasePolicy::Saved:
    break;
  }
  return sat::PhaseMode::Saved;
}

} // namespace

/// Picks a bit width with headroom: enough for every literal constant in
/// the program times a safety factor for the +1 arithmetic the translation
/// emits. Programs computing values far beyond their literals (long
/// counter loops) should raise VbmcOptions-independent widths upstream.
/// Public (Engine.h) so incremental deepening encodes at exactly the
/// width fresh per-K runs use.
uint32_t vbmc::driver::satValueWidth(const ir::Program &P) {
  int64_t MaxAbs = 1;
  for (const ir::Process &Proc : P.Procs)
    auditBody(Proc.Body, MaxAbs);
  uint32_t Bits = 1;
  while ((1LL << Bits) < MaxAbs + 1)
    ++Bits;
  // Sign bit plus two bits of arithmetic headroom, floor of 8.
  return std::max(8u, Bits + 3);
}

CheckReport vbmc::driver::runSatBackend(const ir::Program &Translated,
                                       uint32_t ContextBound,
                                       const VbmcOptions &Opts,
                                       const CheckContext *Ctx) {
  bmc::BmcOptions BO;
  BO.UnrollBound = Opts.L;
  BO.ContextBound = ContextBound;
  BO.ValueWidth = satValueWidth(Translated);
  BO.B.Seconds = Opts.BudgetSeconds;
  BO.B.Conflicts = Opts.MaxConflicts;
  BO.B.Propagations = Opts.MaxPropagations;
  BO.Phase = toSatPhase(Opts.Phase);
  BO.PhaseSeed = Opts.PhaseSeed;
  // The engine's memory ceiling caps the encoding in-process: a circuit
  // outgrowing it aborts with a classified OutOfMemory (no bad_alloc),
  // which the driver's retry policy may then re-attempt at reduced
  // bounds.
  BO.MemLimitBytes = Opts.MemLimitBytes;
  // The context's shared deadline already accounts for time spent in
  // earlier stages (translation), so encoding and solving see only the
  // *remaining* budget; its token makes the whole pipeline cancellable.
  BO.Ctx = Ctx;
  bmc::BmcResult BR = bmc::checkBmc(Translated, BO);

  CheckReport R;
  R.Seconds = BR.Seconds;
  R.Work = BR.SolverConflicts;
  switch (BR.Status) {
  case bmc::BmcStatus::Unsafe:
    R.Outcome = Verdict::Unsafe;
    for (const std::string &F : BR.FailedAssertions)
      R.Note += (R.Note.empty() ? "" : "; ") + F;
    break;
  case bmc::BmcStatus::Safe:
    R.Outcome = Verdict::Safe;
    break;
  case bmc::BmcStatus::Unknown:
    R.Outcome = Verdict::Unknown;
    R.Failure = BR.Failure;
    R.Note = BR.Note;
    break;
  }
  return R;
}
