//===- IncrementalTest.cpp - incremental deepening equivalence -----------===//
//
// The incremental deepening mode (one MaxK encoding, assumption-guarded
// budgets, one persistent solver) must be observationally equivalent to
// fresh per-K solving: same verdict on every program, and when the
// verdict is UNSAFE, the same minimal buggy K. Coverage:
//
//  * every checked-in corpus program, both through the fuzz replay layer
//    (with --incremental semantics) and through a direct Engine-level
//    iterative-vs-incremental sweep;
//  * a fixed-seed batch of >= 200 fuzzed programs via the
//    incremental-vs-fresh differential check;
//  * the Engine's encoding cache (a second identical request reuses the
//    persistent solver) and the per-budget sat.k<N>.* statistics;
//  * the deprecated free-function API delegating to Engine::run;
//  * the vbmc tool's --mode flag for all five modes.
//
// NOTE: suite names deliberately avoid the 'Engine|Portfolio|Deepening'
// pattern — the TSan ctest job selects by that regex and these
// process-spawning, SAT-heavy tests are not built in its tree.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differ.h"
#include "fuzz/Fuzzer.h"
#include "ir/Parser.h"
#include "sat/Solver.h"
#include "vbmc/Engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

using namespace vbmc;
using namespace vbmc::ir;

namespace {

Program parseOrDie(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P) << (P ? "" : P.error().str());
  return P.take();
}

// Message passing with the observer's reads flipped (corpus mp_stale):
// the data is read before the flag, so one view switch reaches the
// stale outcome — minimal buggy K is 1.
const char *MpStaleSrc = R"(
  var x f;
  proc p0 { x = 1; f = 1; }
  proc p1 { reg a1 b1; b1 = x; a1 = f; assert(!(a1 == 1 && b1 == 0)); }
)";

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(VBMC_CORPUS_DIR))
    if (Entry.path().extension() == ".ra")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

uint64_t counterValue(const StatsRegistry &Stats, const std::string &Name) {
  for (const StatsRegistry::Entry &E : Stats.snapshot())
    if (E.IsCounter && E.Name == Name)
      return E.Count;
  return 0;
}

bool hasStat(const StatsRegistry &Stats, const std::string &Name) {
  for (const StatsRegistry::Entry &E : Stats.snapshot())
    if (E.Name == Name)
      return true;
  return false;
}

driver::CheckRequest satSweepRequest(uint32_t MaxK, uint32_t L = 4,
                                     uint32_t Cas = 8) {
  driver::CheckRequest Req;
  Req.MaxK = MaxK;
  Req.Opts.Backend = driver::BackendKind::Sat;
  Req.Opts.L = L;
  Req.Opts.CasAllowance = Cas;
  return Req;
}

} // namespace

//===----------------------------------------------------------------------===//
// Corpus equivalence
//===----------------------------------------------------------------------===//

// Direct Engine-level comparison: sweep every corpus program to MaxK=3
// iteratively and incrementally; verdicts and (for UNSAFE) minimal K
// must match file by file.
TEST(IncrementalCorpusTest, VerdictAndMinimalKMatchFreshPerK) {
  std::vector<std::string> Files = corpusFiles();
  ASSERT_GE(Files.size(), 10u);
  for (const std::string &File : Files) {
    Program P = parseOrDie(slurp(File));
    fuzz::DiffOptions DO;
    driver::CheckRequest Req =
        satSweepRequest(3, 4, fuzz::casAllowanceFor(P, DO));

    driver::Engine E;
    Req.Mode = driver::EngineMode::Iterative;
    CheckContext FreshCtx(120);
    driver::CheckReport Fresh = E.run(P, Req, FreshCtx);

    Req.Mode = driver::EngineMode::Incremental;
    CheckContext IncCtx(120);
    driver::CheckReport Inc = E.run(P, Req, IncCtx);

    EXPECT_EQ(Fresh.Outcome, Inc.Outcome)
        << File << ": fresh note=" << Fresh.Note
        << " incremental note=" << Inc.Note;
    EXPECT_EQ(Inc.ModeRan, driver::EngineMode::Incremental) << File;
    if (Fresh.Outcome == driver::Verdict::Unsafe)
      EXPECT_EQ(Fresh.KUsed, Inc.KUsed) << File << ": minimal K differs";
  }
}

// The replay layer with IncrementalReplay set (what the corpus CI job
// runs via `vbmc-fuzz --incremental`): every expect directive is
// re-verified against the incremental engine.
TEST(IncrementalCorpusTest, ReplayWithIncrementalEquivalencePasses) {
  fuzz::FuzzOptions O;
  O.PerProgramSeconds = 30;
  O.Diff.K = 1;
  O.Diff.L = 4;
  O.IncrementalReplay = true;
  std::ostringstream Log;
  fuzz::ReplayResult R = fuzz::replayCorpus({VBMC_CORPUS_DIR}, O, &Log);
  EXPECT_TRUE(R.clean()) << Log.str();
  EXPECT_GE(R.Files.size(), 10u);
}

//===----------------------------------------------------------------------===//
// Fuzzed equivalence
//===----------------------------------------------------------------------===//

// A fixed-seed batch of fuzzed programs through the incremental-vs-fresh
// differential check. Programs without asserts or with inconclusive
// sweeps don't count as comparisons; the floor guards against the check
// silently skipping everything.
TEST(IncrementalFuzzedTest, TwoHundredProgramsAgreeWithFreshPerK) {
  fuzz::FuzzOptions O;
  O.Seed = 7;
  fuzz::DiffOptions DO;
  DO.K = 2;
  DO.L = 4;

  uint64_t Compared = 0;
  for (uint64_t I = 0; I < 200; ++I) {
    Program P = fuzz::regenerateProgram(O, I);
    DO.CasAllowance = 0; // Auto-size per program.
    CheckContext Ctx(20);
    fuzz::CheckOutcome Out =
        fuzz::runCheck(P, "incremental-vs-fresh", DO, Ctx);
    EXPECT_NE(Out.Status, fuzz::CheckStatus::Mismatch)
        << "seed=" << O.Seed << " index=" << I << ": " << Out.Detail;
    if (Out.Status == fuzz::CheckStatus::Pass)
      ++Compared;
  }
  EXPECT_GE(Compared, 50u) << "too few conclusive comparisons";
}

//===----------------------------------------------------------------------===//
// Encoding cache and per-budget statistics
//===----------------------------------------------------------------------===//

TEST(IncrementalCacheTest, SecondIdenticalRequestReusesTheEncoding) {
  Program P = parseOrDie(MpStaleSrc);
  driver::CheckRequest Req = satSweepRequest(2);
  Req.Mode = driver::EngineMode::Incremental;

  driver::Engine E;
  CheckContext C1(60);
  driver::CheckReport R1 = E.run(P, Req, C1);
  EXPECT_EQ(R1.Outcome, driver::Verdict::Unsafe);
  EXPECT_EQ(counterValue(C1.stats(), "engine.incremental.encodes"), 1u);
  EXPECT_EQ(counterValue(C1.stats(), "engine.incremental.cache_hits"), 0u);

  CheckContext C2(60);
  driver::CheckReport R2 = E.run(P, Req, C2);
  EXPECT_EQ(R2.Outcome, driver::Verdict::Unsafe);
  EXPECT_EQ(R2.KUsed, R1.KUsed);
  EXPECT_EQ(counterValue(C2.stats(), "engine.incremental.encodes"), 0u);
  EXPECT_EQ(counterValue(C2.stats(), "engine.incremental.cache_hits"), 1u);
}

TEST(IncrementalCacheTest, DifferentMaxKIsADifferentEncoding) {
  Program P = parseOrDie(MpStaleSrc);
  driver::Engine E;
  driver::CheckRequest Req = satSweepRequest(2);
  Req.Mode = driver::EngineMode::Incremental;
  CheckContext C1(60);
  E.run(P, Req, C1);
  Req.MaxK = 3;
  CheckContext C2(60);
  E.run(P, Req, C2);
  EXPECT_EQ(counterValue(C2.stats(), "engine.incremental.encodes"), 1u);
  EXPECT_EQ(counterValue(C2.stats(), "engine.incremental.cache_hits"), 0u);
}

TEST(IncrementalStatsTest, PerBudgetSolveDeltasAreRecorded) {
  Program P = parseOrDie(MpStaleSrc);
  driver::CheckRequest Req = satSweepRequest(2);
  Req.Mode = driver::EngineMode::Incremental;
  driver::Engine E;
  CheckContext Ctx(60);
  driver::CheckReport R = E.run(P, Req, Ctx);
  ASSERT_EQ(R.Outcome, driver::Verdict::Unsafe);
  ASSERT_EQ(R.KUsed, 1u);
  // Budget 0 is inconclusive, budget 1 finds the bug: one solve each,
  // with per-budget conflict/decision deltas and stage timers.
  EXPECT_EQ(counterValue(Ctx.stats(), "sat.incremental.solves"), 2u);
  EXPECT_TRUE(hasStat(Ctx.stats(), "sat.k0.conflicts"));
  EXPECT_TRUE(hasStat(Ctx.stats(), "sat.k1.conflicts"));
  EXPECT_TRUE(hasStat(Ctx.stats(), "sat.k0.seconds"));
  EXPECT_TRUE(hasStat(Ctx.stats(), "sat.k1.seconds"));
  // The attempt history mirrors the sweep.
  ASSERT_EQ(R.Attempts.size(), 2u);
  EXPECT_EQ(R.Attempts[0].K, 0u);
  EXPECT_EQ(R.Attempts[1].K, 1u);
  EXPECT_EQ(R.Attempts[1].Outcome, driver::Verdict::Unsafe);
}

//===----------------------------------------------------------------------===//
// Deprecated positional solve() shim
//===----------------------------------------------------------------------===//

TEST(LegacyApiTest, PositionalSolveDelegatesToSolveSpec) {
  // The positional solve(Assumptions, MaxConflicts, DL, Cancel) overload
  // stays for one release as a deprecated shim over SolveSpec; it must
  // answer exactly like the SolveSpec spelling on the same formula.
  auto build = [](sat::Solver &S) {
    sat::Var A = S.newVar(), B = S.newVar(), C = S.newVar();
    S.addBinary(~sat::mkLit(A), sat::mkLit(B));
    S.addBinary(~sat::mkLit(B), sat::mkLit(C));
    S.addBinary(~sat::mkLit(A), ~sat::mkLit(C));
    return std::vector<sat::Lit>{sat::mkLit(A)};
  };

  sat::Solver Legacy;
  std::vector<sat::Lit> Assume = build(Legacy);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  sat::SolveResult LegacyGot = Legacy.solve(Assume, /*MaxConflicts=*/100);
#pragma GCC diagnostic pop

  sat::Solver Fresh;
  std::vector<sat::Lit> Assume2 = build(Fresh);
  sat::SolveResult SpecGot = Fresh.solve(
      sat::SolveSpec::assuming(Assume2).withConflicts(100));

  EXPECT_EQ(LegacyGot, sat::SolveResult::Unsat);
  EXPECT_EQ(SpecGot, LegacyGot);

  // Both spellings leave the solver reusable without assumptions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(Legacy.solve(std::vector<sat::Lit>{}, 0),
            sat::SolveResult::Sat);
#pragma GCC diagnostic pop
  EXPECT_EQ(Fresh.solve(), sat::SolveResult::Sat);
}

TEST(LegacyApiTest, SolveSpecImplicitFromAssumptionList) {
  // The brace-list spelling solve({lit}) must keep compiling via the
  // implicit SolveSpec conversion the redesign promised.
  sat::Solver S;
  sat::Var A = S.newVar(), B = S.newVar();
  S.addBinary(~sat::mkLit(A), sat::mkLit(B));
  EXPECT_EQ(S.solve({sat::mkLit(A), ~sat::mkLit(B)}),
            sat::SolveResult::Unsat);
  EXPECT_EQ(S.solve({sat::mkLit(A)}), sat::SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

//===----------------------------------------------------------------------===//
// The vbmc tool's --mode flag
//===----------------------------------------------------------------------===//

namespace {

int runTool(const std::string &Args, const std::string &File) {
  std::string Cmd = std::string(VBMC_TOOL_PATH) + " " + Args + " " + File +
                    " > /dev/null 2>&1";
  int Status = std::system(Cmd.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

class VbmcToolModeTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("vbmc_mode_test_" + std::to_string(getpid()));
    std::filesystem::create_directories(Dir);
    std::ofstream F(Dir / "mp_stale.ra");
    F << MpStaleSrc;
  }
  void TearDown() override {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::string file() { return (Dir / "mp_stale.ra").string(); }
  std::filesystem::path Dir;
};

} // namespace

TEST_F(VbmcToolModeTest, EveryModeFindsTheBugViaCli) {
  for (const char *Mode :
       {"single", "iterative", "portfolio", "parallel-deepening",
        "incremental"}) {
    EXPECT_EQ(runTool(std::string("--mode ") + Mode +
                          " --k 1 --max-k 2 --backend sat",
                      file()),
              1)
        << "mode=" << Mode;
  }
}

TEST_F(VbmcToolModeTest, LegacyFlagsMapOntoModes) {
  EXPECT_EQ(runTool("--iterative --max-k 2 --backend sat", file()), 1);
  EXPECT_EQ(runTool("--incremental --max-k 2", file()), 1);
  // --no-incremental demotes an incremental selection to fresh per-K.
  EXPECT_EQ(runTool("--mode incremental --no-incremental --max-k 2", file()),
            1);
}

TEST_F(VbmcToolModeTest, UnknownModeIsAUsageError) {
  EXPECT_EQ(runTool("--mode bogus", file()), 4);
}
