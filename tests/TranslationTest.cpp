//===- TranslationTest.cpp - tests for [[.]]_K ------------------*- C++ -*-===//
//
// Structural checks on the emitted instrumentation, end-to-end behaviour
// checks through the explicit SC backend, and the central differential
// property test: for every program P and bound K,
//
//   Reach_RA(P, K view switches)  ==  Reach_SC([[P]]_K, K+n contexts).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ra/RaExplorer.h"
#include "translation/Translate.h"
#include "vbmc/Engine.h"

#include "fuzz/Generator.h"

#include <gtest/gtest.h>

using namespace vbmc;
using namespace vbmc::ir;
using namespace vbmc::translation;

namespace {

Program parseOrDie(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P) << (P ? "" : P.error().str());
  return P.take();
}

/// Single-mode Engine run (the former checkProgram free function).
driver::CheckReport runSingle(const Program &P,
                              const driver::VbmcOptions &O) {
  driver::CheckRequest Req;
  Req.Opts = O;
  return driver::Engine().run(P, Req);
}

/// RA-side k-bounded assertion reachability (ground truth).
bool raReachable(const Program &P, uint32_t K) {
  FlatProgram FP = flatten(P);
  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AnyError;
  Q.ViewSwitchBound = K;
  ra::RaResult R = ra::exploreRa(FP, Q);
  EXPECT_TRUE(R.reached() || R.exhausted());
  return R.reached();
}

/// Translation + context-bounded SC assertion reachability.
bool scReachable(const Program &P, uint32_t K, uint32_t CasAllowance = 2,
                 bool SwitchOnlyAfterWrite = false) {
  TranslationOptions TO;
  TO.K = K;
  TO.CasAllowance = CasAllowance;
  TranslationResult TR = translateToSc(P, TO);
  FlatProgram FP = flatten(TR.Prog);
  sc::ScQuery Q;
  Q.Goal = sc::ScGoalKind::AnyError;
  Q.ContextBound = TR.ContextBound;
  Q.SwitchOnlyAfterWrite = SwitchOnlyAfterWrite;
  sc::ScResult R = sc::exploreSc(FP, Q);
  EXPECT_TRUE(R.reached() || R.exhausted());
  return R.reached();
}

} // namespace

TEST(TranslationStructureTest, SharedStateLayout) {
  Program P = parseOrDie("var x y; proc p { reg r; r = x; y = 1; }");
  TranslationOptions TO;
  TO.K = 2;
  TO.CasAllowance = 2;
  TranslationResult TR = translateToSc(P, TO);
  // Input vars kept, plus per-slot (1 + 3*|X|), msgs_used, s_ra, and
  // |X| * T used-stamp variables with T = 2K + 2 = 6.
  uint32_t ExpectedVars = 2 + 2 * (1 + 3 * 2) + 2 + 2 * 6;
  EXPECT_EQ(TR.Prog.numVars(), ExpectedVars);
  EXPECT_EQ(TR.ContextBound, 2u + 1u);
  EXPECT_EQ(TR.InputVars, 2u);
  ASSERT_TRUE(TR.Prog.validate());
}

TEST(TranslationStructureTest, RegistersExtendedPerProcess) {
  Program P = parseOrDie(
      "var x; proc a { reg r; r = x; } proc b { reg s; x = 1; }");
  TranslationOptions TO;
  TO.K = 1;
  TranslationResult TR = translateToSc(P, TO);
  // Original 2 registers + per process (3 view regs for x + 5 scratch).
  EXPECT_EQ(TR.Prog.numRegs(), 2u + 2u * (3u + 5u));
  // Original register ids preserved.
  EXPECT_EQ(TR.Prog.Regs[0].Name, "r");
  EXPECT_EQ(TR.Prog.Regs[1].Name, "s");
}

TEST(TranslationStructureTest, FencesDesugaredBeforeTranslation) {
  Program P = parseOrDie("var x; proc p { reg r; fence; }");
  Program D = desugarFences(P);
  EXPECT_EQ(D.numVars(), 2u);
  EXPECT_EQ(D.Vars[1], "__fence");
  ASSERT_EQ(D.Procs[0].Body.size(), 1u);
  EXPECT_EQ(D.Procs[0].Body[0].Kind, StmtKind::Cas);
  // Idempotent when fence-free.
  Program D2 = desugarFences(D);
  EXPECT_EQ(D2.numVars(), 2u);
}

TEST(TranslationStructureTest, TranslatedProgramPrintsAndReparses) {
  Program P = parseOrDie("var x; proc p { reg r; r = x; x = r + 1; }");
  TranslationOptions TO;
  TO.K = 1;
  TO.CasAllowance = 1;
  TranslationResult TR = translateToSc(P, TO);
  std::string Printed = printProgram(TR.Prog);
  EXPECT_NE(Printed.find("msgs_used"), std::string::npos);
  EXPECT_NE(Printed.find("s_ra"), std::string::npos);
  EXPECT_NE(Printed.find("nondet"), std::string::npos);
}

TEST(TranslationBehaviourTest, StoreBufferingUnsafeAtKZero) {
  // The SB weak outcome reads only initial messages: no view switch needed.
  Program P = parseOrDie(R"(
    var x y;
    proc p0 { reg r0; x = 1; r0 = y; }
    proc p1 { reg r1; y = 1; r1 = x; assert(!(r1 == 0)); }
  )");
  EXPECT_TRUE(scReachable(P, 0));
  EXPECT_TRUE(raReachable(P, 0));
}

TEST(TranslationBehaviourTest, MessagePassingNeedsOneSwitch) {
  Program P = parseOrDie(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 1)); }
  )");
  EXPECT_FALSE(scReachable(P, 0));
  EXPECT_TRUE(scReachable(P, 1));
}

TEST(TranslationBehaviourTest, MessagePassingCausalityPreserved) {
  // The RA-forbidden outcome r1 = 1, r2 = 0 must stay unreachable in the
  // translated program for any K.
  Program P = parseOrDie(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 0)); }
  )");
  EXPECT_FALSE(scReachable(P, 0));
  EXPECT_FALSE(scReachable(P, 1));
  EXPECT_FALSE(scReachable(P, 2));
}

TEST(TranslationBehaviourTest, CoherencePreserved) {
  Program P = parseOrDie(R"(
    var x;
    proc w { reg d; x = 1; x = 2; }
    proc r { reg a b; a = x; b = x; assert(!(a == 2 && b == 1)); }
  )");
  EXPECT_FALSE(scReachable(P, 2));
}

TEST(TranslationBehaviourTest, CasAtomicityPreserved) {
  // Both CAS from 0 cannot succeed; flag both succeeding via shared cells.
  Program P = parseOrDie(R"(
    var x da db;
    proc a { reg r; cas(x, 0, 1); da = 1; }
    proc b { reg s; cas(x, 0, 2); db = 1; }
    proc c { reg u v; u = da; v = db; assert(!(u == 1 && v == 1)); }
  )");
  EXPECT_FALSE(scReachable(P, 4, /*CasAllowance=*/4));
  EXPECT_TRUE(raReachable(P, 4) == false);
}

TEST(TranslationBehaviourTest, CasSucceedsAndPublishes) {
  Program P = parseOrDie(R"(
    var x;
    proc a { reg r; cas(x, 0, 7); }
    proc b { reg s; s = x; assert(s != 7); }
  )");
  // b can observe the CAS result with one view switch.
  EXPECT_FALSE(scReachable(P, 0, 4));
  EXPECT_TRUE(scReachable(P, 1, 4));
  EXPECT_TRUE(raReachable(P, 1));
}

TEST(TranslationBehaviourTest, FenceVisibilityDifferential) {
  // A fence pair transfers views through the fence variable's CAS chain:
  // if p1's fence follows p0's, p1 must observe x = 1.
  Program P = parseOrDie(R"(
    var x;
    proc p0 { reg a; x = 1; fence; }
    proc p1 { reg b; fence; b = x; assert(b != 1); }
  )");
  for (uint32_t K = 0; K <= 2; ++K) {
    bool Ra = raReachable(P, K);
    bool Sc = scReachable(P, K, /*CasAllowance=*/4);
    EXPECT_EQ(Ra, Sc) << "K=" << K;
  }
  // Observing x = 1 requires (at least) one view switch.
  EXPECT_FALSE(raReachable(P, 0));
  EXPECT_TRUE(raReachable(P, 1));
}

TEST(TranslationDifferentialTest, HandPickedProgramsAgree) {
  const char *Sources[] = {
      // Plain SB.
      R"(var x y;
         proc p0 { reg r0; x = 1; r0 = y; }
         proc p1 { reg r1; y = 1; r1 = x; assert(!(r1 == 0)); })",
      // MP with both polarities of the assert.
      R"(var x y;
         proc p0 { reg d; x = 1; y = 1; }
         proc p1 { reg r1 r2; r1 = y; r2 = x;
                   assert(!(r1 == 1 && r2 == 0)); })",
      R"(var x y;
         proc p0 { reg d; x = 1; y = 1; }
         proc p1 { reg r1 r2; r1 = y; r2 = x;
                   assert(!(r1 == 1 && r2 == 1)); })",
      // Write-to-same-variable race.
      R"(var x;
         proc p0 { reg a; x = 1; a = x; assert(a == 1); }
         proc p1 { reg b; x = 2; })",
      // CAS handoff.
      R"(var x;
         proc p0 { reg a; cas(x, 0, 1); }
         proc p1 { reg b; b = x; assert(b != 1); })",
      // Read-from-middle (mo insertion).
      R"(var x;
         proc p0 { reg a; x = 1; x = 2; }
         proc p1 { reg b c; b = x; c = x;
                   assert(!(b == 2 && c == 2)); })",
  };
  for (const char *Src : Sources) {
    Program P = parseOrDie(Src);
    for (uint32_t K = 0; K <= 2; ++K) {
      bool Ra = raReachable(P, K);
      bool Sc = scReachable(P, K, /*CasAllowance=*/2);
      EXPECT_EQ(Ra, Sc) << "K=" << K << "\n" << Src;
    }
  }
}

TEST(TranslationDifferentialTest, RandomProgramsAgree) {
  Rng R(20260707);
  fuzz::GeneratorOptions O;
  O.NumVars = 2;
  O.NumProcs = 2;
  O.StmtsPerProc = 3;
  int Checked = 0;
  for (int Iter = 0; Iter < 30; ++Iter) {
    Program P = fuzz::makeRandomProgram(R, O);
    ASSERT_TRUE(P.validate());
    for (uint32_t K = 0; K <= 1; ++K) {
      bool Ra = raReachable(P, K);
      bool Sc = scReachable(P, K, /*CasAllowance=*/2);
      ASSERT_EQ(Ra, Sc) << "seed iter " << Iter << " K=" << K << "\n"
                        << printProgram(P);
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 60);
}

TEST(TranslationDifferentialTest, SchedulingReductionPreservesVerdict) {
  // The Section 6 switch-only-after-write reduction must not change the
  // verdict on the translated program.
  Rng R(7);
  fuzz::GeneratorOptions O;
  O.NumVars = 2;
  O.NumProcs = 2;
  O.StmtsPerProc = 3;
  O.CasPermille = 0;
  for (int Iter = 0; Iter < 10; ++Iter) {
    Program P = fuzz::makeRandomProgram(R, O);
    bool Plain = scReachable(P, 1, 2, /*SwitchOnlyAfterWrite=*/false);
    bool Reduced = scReachable(P, 1, 2, /*SwitchOnlyAfterWrite=*/true);
    EXPECT_EQ(Plain, Reduced) << printProgram(P);
  }
}

TEST(VbmcDriverTest, EndToEndUnsafe) {
  driver::VbmcOptions Opts;
  Opts.K = 1;
  Opts.CasAllowance = 2;
  driver::CheckReport R = runSingle(parseOrDie(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 1)); }
  )"),
                                    Opts);
  EXPECT_TRUE(R.unsafe());
  EXPECT_FALSE(R.Trace.empty());
}

TEST(VbmcDriverTest, EndToEndSafe) {
  driver::VbmcOptions Opts;
  Opts.K = 1;
  Opts.CasAllowance = 2;
  driver::CheckReport R = runSingle(parseOrDie(R"(
    var x y;
    proc p0 { reg d; x = 1; y = 1; }
    proc p1 { reg r1 r2; r1 = y; r2 = x; assert(!(r1 == 1 && r2 == 0)); }
  )"),
                                    Opts);
  EXPECT_TRUE(R.safe());
}

TEST(VbmcDriverTest, ParseErrorIsDiagnosed) {
  // The former checkSource wrapper absorbed parse failures into an
  // Unknown report; with the wrapper gone, callers parse first and the
  // parser's diagnostic is the contract.
  auto P = ir::parseProgram("var x; proc p { bogus }");
  ASSERT_FALSE(P);
  EXPECT_FALSE(P.error().str().empty());
}

namespace {

/// Counts statements recursively (size metric for the polynomiality test).
size_t countStmts(const std::vector<Stmt> &Body) {
  size_t N = 0;
  for (const Stmt &S : Body)
    N += 1 + countStmts(S.Then) + countStmts(S.Else);
  return N;
}

size_t programSize(const Program &P) {
  size_t N = 0;
  for (const Process &Proc : P.Procs)
    N += countStmts(Proc.Body);
  return N;
}

} // namespace

TEST(TranslationStructureTest, SizeGrowsPolynomiallyInK) {
  // The paper: "the obtained program Prog' ... is polynomial in the size
  // of Prog and K". With fixed CasAllowance the emitted if-chains are
  // linear in K (message slots) and in T = 2K + C (stamp pool), so the
  // statement count must grow at most quadratically in K; check the
  // second difference stays bounded relative to the first growth step.
  Program P = parseOrDie(R"(
    var x y;
    proc p0 { reg a; x = 1; a = y; cas(x, a, 1); }
    proc p1 { reg b; b = x; y = b; }
  )");
  std::vector<size_t> Sizes;
  for (uint32_t K = 1; K <= 6; ++K) {
    TranslationOptions TO;
    TO.K = K;
    TO.CasAllowance = 2;
    Sizes.push_back(programSize(translateToSc(P, TO).Prog));
  }
  for (size_t I = 0; I + 1 < Sizes.size(); ++I)
    EXPECT_GT(Sizes[I + 1], Sizes[I]) << "translation must grow with K";
  // Quadratic bound: size(K) <= size(1) * K^2 * constant.
  for (size_t I = 0; I < Sizes.size(); ++I) {
    uint32_t K = static_cast<uint32_t>(I) + 1;
    EXPECT_LE(Sizes[I], Sizes[0] * K * K * 4)
        << "superquadratic growth at K=" << K;
  }
}

TEST(TranslationStructureTest, SizeLinearInProgramLength) {
  // Doubling the input statement count roughly doubles the output.
  auto Make = [&](int Repeats) {
    std::string Body;
    for (int I = 0; I < Repeats; ++I)
      Body += "x = 1; a = y; ";
    return parseOrDie("var x y; proc p { reg a; " + Body + "}");
  };
  TranslationOptions TO;
  TO.K = 2;
  TO.CasAllowance = 2;
  size_t S1 = programSize(translateToSc(Make(4), TO).Prog);
  size_t S2 = programSize(translateToSc(Make(8), TO).Prog);
  EXPECT_GE(S2, S1 + S1 / 2);
  EXPECT_LE(S2, S1 * 3);
}
