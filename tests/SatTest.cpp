//===- SatTest.cpp - unit tests for the CDCL solver -------------*- C++ -*-===//

#include "sat/Dimacs.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace vbmc;
using namespace vbmc::sat;

namespace {

/// Brute-force SAT check for tiny formulas.
bool bruteForceSat(uint32_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C)
        Any |= ((Mask >> L.var()) & 1) != L.negated();
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// Builds the pigeonhole principle PHP(Pigeons, Holes).
void buildPigeonhole(Solver &S, uint32_t Pigeons, uint32_t Holes) {
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  // Every pigeon sits somewhere.
  for (uint32_t I = 0; I < Pigeons; ++I) {
    std::vector<Lit> C;
    for (uint32_t J = 0; J < Holes; ++J)
      C.push_back(mkLit(P[I][J]));
    S.addClause(C);
  }
  // No two pigeons share a hole.
  for (uint32_t J = 0; J < Holes; ++J)
    for (uint32_t I1 = 0; I1 < Pigeons; ++I1)
      for (uint32_t I2 = I1 + 1; I2 < Pigeons; ++I2)
        S.addBinary(~mkLit(P[I1][J]), ~mkLit(P[I2][J]));
}

} // namespace

TEST(SatTest, TrivialSatAndModel) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(mkLit(A), mkLit(B));
  S.addUnit(~mkLit(A));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatTest, TrivialUnsat) {
  Solver S;
  Var A = S.newVar();
  S.addUnit(mkLit(A));
  EXPECT_FALSE(S.addUnit(~mkLit(A)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_TRUE(S.inConflict());
}

TEST(SatTest, EmptyFormulaIsSat) {
  Solver S;
  (void)S.newVar();
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SatTest, PropagationChain) {
  // a, a->b, b->c, ..., forced model all-true.
  Solver S;
  const int N = 50;
  std::vector<Var> Vs;
  for (int I = 0; I < N; ++I)
    Vs.push_back(S.newVar());
  S.addUnit(mkLit(Vs[0]));
  for (int I = 0; I + 1 < N; ++I)
    S.addBinary(~mkLit(Vs[I]), mkLit(Vs[I + 1]));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (Var V : Vs)
    EXPECT_TRUE(S.modelValue(V));
}

TEST(SatTest, PigeonholeSatWhenEnoughHoles) {
  Solver S;
  buildPigeonhole(S, 4, 4);
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SatTest, PigeonholeUnsat) {
  Solver S;
  buildPigeonhole(S, 5, 4);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(SatTest, ConflictBudgetReturnsUnknown) {
  Solver S;
  buildPigeonhole(S, 9, 8); // Hard for CDCL.
  EXPECT_EQ(S.solve(SolveSpec().withConflicts(20)), SolveResult::Unknown);
}

TEST(SatTest, AssumptionsBasic) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(~mkLit(A), mkLit(B)); // a -> b
  EXPECT_EQ(S.solve({mkLit(A), ~mkLit(B)}), SolveResult::Unsat);
  EXPECT_EQ(S.solve({mkLit(A), mkLit(B)}), SolveResult::Sat);
  // The solver remains usable and consistent after assumption solving.
  EXPECT_EQ(S.solve({~mkLit(A)}), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
}

TEST(SatTest, AssumptionsConflictViaPropagation) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addBinary(~mkLit(A), mkLit(B));
  S.addBinary(~mkLit(B), mkLit(C));
  S.addBinary(~mkLit(A), ~mkLit(C));
  EXPECT_EQ(S.solve({mkLit(A)}), SolveResult::Unsat);
  // Assuming b alone is satisfiable: {~a, b, c}.
  ASSERT_EQ(S.solve({mkLit(B)}), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_EQ(S.solve({~mkLit(A)}), SolveResult::Sat);
  // Without assumptions the formula is satisfiable (set a false).
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
}

TEST(SatTest, RandomThreeSatAgainstBruteForce) {
  Rng R(99);
  for (int Round = 0; Round < 200; ++Round) {
    uint32_t NumVars = 4 + R.nextBelow(7);           // 4..10
    uint32_t NumClauses = NumVars * (3 + R.nextBelow(3)); // ~3n..5n
    std::vector<std::vector<Lit>> Clauses;
    Solver S;
    for (uint32_t V = 0; V < NumVars; ++V)
      (void)S.newVar();
    for (uint32_t I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int J = 0; J < 3; ++J)
        C.push_back(Lit(static_cast<Var>(R.nextBelow(NumVars)),
                        R.nextChance(1, 2)));
      Clauses.push_back(C);
      S.addClause(C);
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    SolveResult Got = S.solve();
    ASSERT_EQ(Got, Expected ? SolveResult::Sat : SolveResult::Unsat)
        << "round " << Round;
    if (Got == SolveResult::Sat) {
      // The model must satisfy every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          Any |= S.modelValue(L.var()) != L.negated();
        EXPECT_TRUE(Any);
      }
    }
  }
}

TEST(SatTest, IncrementalClauseAddition) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(mkLit(A), mkLit(B));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  S.addUnit(~mkLit(A));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  S.addUnit(~mkLit(B));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SatTest, LargeRandomSatisfiableInstance) {
  // A planted-solution instance: every clause satisfied by the plant.
  Rng R(7);
  Solver S;
  const uint32_t N = 300;
  std::vector<bool> Plant;
  for (uint32_t I = 0; I < N; ++I) {
    (void)S.newVar();
    Plant.push_back(R.nextChance(1, 2));
  }
  for (uint32_t I = 0; I < 4 * N; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < 3; ++J) {
      Var V = static_cast<Var>(R.nextBelow(N));
      C.push_back(Lit(V, R.nextChance(1, 2)));
    }
    // Force at least one literal to agree with the plant.
    Var V = C[0].var();
    C[0] = Lit(V, !Plant[V]);
    S.addClause(C);
  }
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(DimacsTest, LoadAndSolve) {
  Solver S;
  auto N = loadDimacs("c comment\np cnf 3 3\n1 2 0\n-1 3 0\n-3 -2 1 0\n", S);
  ASSERT_TRUE(N);
  EXPECT_EQ(*N, 3u);
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  Solver S;
  auto N = loadDimacs("p cnf 2 1\n1 2\n", S);
  EXPECT_FALSE(N);
}

TEST(DimacsTest, WriterFormats) {
  DimacsWriter W;
  W.addClause({Lit(0, false), Lit(1, true)});
  W.addClause({Lit(2, false)});
  std::string Out = W.str(3);
  EXPECT_NE(Out.find("p cnf 3 2"), std::string::npos);
  EXPECT_NE(Out.find("1 -2 0"), std::string::npos);
  EXPECT_NE(Out.find("3 0"), std::string::npos);
}
