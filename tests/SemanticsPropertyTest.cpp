//===- SemanticsPropertyTest.cpp - cross-semantics invariants ---*- C++ -*-===//
//
// Property tests relating the three semantics of the same language:
//  * SC executions are a subset of RA executions (every SC-reachable
//    terminal register valuation is RA-reachable);
//  * RA behaviours grow monotonically with the view-switch budget;
//  * exploration is deterministic (canonical timestamps make the visited
//    set exact, so repeated runs agree);
//  * fences only remove RA behaviours, never add them.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ra/RaExplorer.h"
#include "sc/ScExplorer.h"

#include "fuzz/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vbmc;
using namespace vbmc::ir;

namespace {

bool isSubset(const std::set<std::vector<Value>> &A,
              const std::set<std::vector<Value>> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

} // namespace

TEST(SemanticsInclusionTest, ScBehavioursSubsetOfRa) {
  Rng R(555);
  fuzz::GeneratorOptions O;
  O.NumVars = 2;
  O.NumProcs = 2;
  O.StmtsPerProc = 4;
  O.AssertPermille = 0; // Pure behaviour comparison.
  for (int Iter = 0; Iter < 25; ++Iter) {
    Program P = fuzz::makeRandomProgram(R, O);
    FlatProgram FP = flatten(P);
    auto Sc = sc::collectScTerminalRegs(FP);
    auto Ra = ra::collectTerminalRegs(FP);
    ASSERT_TRUE(isSubset(Sc, Ra))
        << "SC exhibits a behaviour RA forbids (iter " << Iter << ")\n"
        << printProgram(P);
  }
}

TEST(SemanticsInclusionTest, ViewBoundMonotone) {
  Rng R(666);
  fuzz::GeneratorOptions O;
  O.NumVars = 2;
  O.NumProcs = 2;
  O.StmtsPerProc = 3;
  O.AssertPermille = 0;
  for (int Iter = 0; Iter < 15; ++Iter) {
    Program P = fuzz::makeRandomProgram(R, O);
    FlatProgram FP = flatten(P);
    auto Prev = ra::collectTerminalRegs(FP, 0u);
    for (uint32_t K = 1; K <= 3; ++K) {
      auto Cur = ra::collectTerminalRegs(FP, K);
      ASSERT_TRUE(isSubset(Prev, Cur))
          << "K=" << K << " lost behaviours (iter " << Iter << ")";
      Prev = std::move(Cur);
    }
    // The unbounded set contains every bounded one.
    auto Unbounded = ra::collectTerminalRegs(FP);
    EXPECT_TRUE(isSubset(Prev, Unbounded));
  }
}

TEST(SemanticsInclusionTest, ExplorationDeterministic) {
  Program P = *parseProgram(R"(
    var x y;
    proc p0 { reg r0; x = 1; r0 = y; }
    proc p1 { reg r1; y = 1; r1 = x; }
  )");
  FlatProgram FP = flatten(P);
  auto A = ra::collectTerminalRegs(FP);
  auto B = ra::collectTerminalRegs(FP);
  EXPECT_EQ(A, B);
  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AllDone;
  auto R1 = ra::exploreRa(FP, Q);
  auto R2 = ra::exploreRa(FP, Q);
  EXPECT_EQ(R1.StatesVisited, R2.StatesVisited);
  EXPECT_EQ(R1.TransitionsExplored, R2.TransitionsExplored);
}

TEST(SemanticsInclusionTest, FencesOnlyRemoveBehaviours) {
  // Compare SB with and without fences: the fenced outcome set must be a
  // subset of the unfenced one (fences restrict, never add).
  Program Unfenced = *parseProgram(R"(
    var x y;
    proc p0 { reg r0; x = 1; r0 = y; }
    proc p1 { reg r1; y = 1; r1 = x; }
  )");
  Program Fenced = *parseProgram(R"(
    var x y;
    proc p0 { reg r0; x = 1; fence; r0 = y; }
    proc p1 { reg r1; y = 1; fence; r1 = x; }
  )");
  auto U = ra::collectTerminalRegs(flatten(Unfenced));
  auto F = ra::collectTerminalRegs(flatten(Fenced));
  EXPECT_TRUE(isSubset(F, U));
  EXPECT_LT(F.size(), U.size()); // (0,0) was removed.
}

TEST(SemanticsInclusionTest, FencedBehavioursContainSc) {
  // Fully fenced programs still exhibit at least the SC behaviours.
  Program Fenced = *parseProgram(R"(
    var x y;
    proc p0 { reg r0; x = 1; fence; r0 = y; }
    proc p1 { reg r1; y = 1; fence; r1 = x; }
  )");
  Program Plain = *parseProgram(R"(
    var x y;
    proc p0 { reg r0; x = 1; r0 = y; }
    proc p1 { reg r1; y = 1; r1 = x; }
  )");
  auto Sc = sc::collectScTerminalRegs(flatten(Plain));
  auto F = ra::collectTerminalRegs(flatten(Fenced));
  EXPECT_TRUE(isSubset(Sc, F));
}

TEST(ParserPrecedenceTest, ArithmeticBeforeComparisonBeforeLogic) {
  Program P = *parseProgram(R"(
    var x;
    proc p { reg a b;
      a = 1 + 2 * 3;
      b = a == 7 && a > 2 * 3 || 0;
      assert(b == 1);
    }
  )");
  FlatProgram FP = flatten(P);
  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AnyError;
  // assert passes: a = 7, (a==7 && a>6) || 0 = 1.
  EXPECT_TRUE(ra::exploreRa(FP, Q).exhausted());
}

TEST(ParserPrecedenceTest, UnaryOperators) {
  Program P = *parseProgram(R"(
    var x;
    proc p { reg a b;
      a = -3 + 5;
      b = !0 + !7;
      assert(a == 2 && b == 1);
    }
  )");
  FlatProgram FP = flatten(P);
  ra::RaQuery Q;
  Q.Goal = ra::GoalKind::AnyError;
  EXPECT_TRUE(ra::exploreRa(FP, Q).exhausted());
}

TEST(TraceFormattingTest, DescribesAllOpKinds) {
  Program P = *parseProgram(R"(
    var x;
    proc p { reg a;
      a = x;
      x = a + 1;
      cas(x, a, a);
      assume(a >= 0);
      assert(a >= 0);
      if (a == 0) { term; }
      while (a > 100) { a = a - 1; }
    }
  )");
  FlatProgram FP = flatten(P);
  for (Label L = 0; L < FP.Procs[0].Instrs.size(); ++L) {
    ra::RaStep S;
    S.Proc = 0;
    S.Instr = L;
    EXPECT_FALSE(ra::describeStep(FP, S).empty());
  }
}
