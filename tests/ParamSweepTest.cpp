//===- ParamSweepTest.cpp - parameterized property sweeps -------*- C++ -*-===//
//
// Property-style sweeps with TEST_P / INSTANTIATE_TEST_SUITE_P:
//  * every protocol x fencing-version combination behaves as its table
//    row claims (under SC and under bounded RA);
//  * the translation theorem holds across a grid of (seed, K);
//  * the classic litmus shapes agree between operational and axiomatic
//    semantics one by one;
//  * random CNF instances agree with brute force across seeds.
//
//===----------------------------------------------------------------------===//

#include "ir/Flatten.h"
#include "ir/Printer.h"
#include "litmus/Litmus.h"
#include "protocols/Protocols.h"
#include "bmc/Unroll.h"
#include "ra/RaExplorer.h"
#include "sat/Solver.h"
#include "smc/Smc.h"
#include "sc/ScExplorer.h"
#include "translation/Translate.h"

#include "fuzz/Generator.h"

#include <gtest/gtest.h>

using namespace vbmc;
using namespace vbmc::ir;

//===----------------------------------------------------------------------===//
// Protocol grid: name x thread count.
//===----------------------------------------------------------------------===//

struct ProtocolCase {
  const char *Name;   ///< Builder name ("peterson", ...).
  uint32_t Threads;
  bool HasRaOnlyBug;  ///< Unfenced version breaks under RA but not SC.
};

class ProtocolSweep : public ::testing::TestWithParam<ProtocolCase> {};

namespace {

ir::Program buildProtocol(const std::string &Name,
                          const protocols::MutexOptions &O) {
  using namespace protocols;
  if (Name == "peterson")
    return makePeterson(O);
  if (Name == "szymanski")
    return makeSzymanski(O);
  if (Name == "dekker")
    return makeDekker(O);
  if (Name == "sim_dekker")
    return makeSimplifiedDekker(O);
  if (Name == "burns")
    return makeBurns(O);
  if (Name == "bakery")
    return makeBakery(O);
  if (Name == "lamport")
    return makeLamportFast(O);
  return makeTicketBarrier(O);
}

bool scHasBug(const ir::Program &P) {
  sc::ScQuery Q;
  Q.Goal = sc::ScGoalKind::AnyError;
  sc::ScResult R = sc::exploreSc(flatten(P), Q);
  EXPECT_TRUE(R.reached() || R.exhausted());
  return R.reached();
}

bool raHasBugBounded(const ir::Program &P, uint32_t K) {
  // Goal-directed stateless DFS with the view-switch budget: finds the
  // shallow weak-memory bugs without materializing the BFS frontier.
  smc::SmcOptions O;
  O.Strategy = smc::SmcStrategy::Dpor;
  O.BoundViewSwitches = true;
  O.ViewSwitchBound = K;
  O.B.Seconds = 60;
  return smc::exploreSmc(flatten(bmc::unrollLoops(P, 2)), O).FoundBug;
}

} // namespace

TEST_P(ProtocolSweep, CorrectVersionSafeUnderSc) {
  const ProtocolCase &C = GetParam();
  EXPECT_FALSE(scHasBug(buildProtocol(
      C.Name, protocols::MutexOptions::unfenced(C.Threads))));
}

TEST_P(ProtocolSweep, BuggyVersionUnsafeUnderSc) {
  const ProtocolCase &C = GetParam();
  EXPECT_TRUE(scHasBug(buildProtocol(
      C.Name, protocols::MutexOptions::fencedBuggy(C.Threads, 0))));
  EXPECT_TRUE(scHasBug(buildProtocol(
      C.Name,
      protocols::MutexOptions::fencedBuggy(C.Threads, C.Threads - 1))));
}

TEST_P(ProtocolSweep, UnfencedRaBugWithinSmallK) {
  const ProtocolCase &C = GetParam();
  if (!C.HasRaOnlyBug)
    GTEST_SKIP() << "protocol is RA-robust without fences";
  EXPECT_TRUE(raHasBugBounded(
      buildProtocol(C.Name, protocols::MutexOptions::unfenced(C.Threads)),
      2));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ProtocolSweep,
    ::testing::Values(ProtocolCase{"peterson", 2, true},
                      ProtocolCase{"peterson", 3, true},
                      ProtocolCase{"szymanski", 2, true},
                      ProtocolCase{"dekker", 2, true},
                      ProtocolCase{"sim_dekker", 2, true},
                      ProtocolCase{"burns", 2, true},
                      ProtocolCase{"bakery", 2, true},
                      ProtocolCase{"lamport", 2, true},
                      ProtocolCase{"tbar", 2, false}),
    [](const ::testing::TestParamInfo<ProtocolCase> &Info) {
      return std::string(Info.param.Name) + "_" +
             std::to_string(Info.param.Threads);
    });

//===----------------------------------------------------------------------===//
// Translation theorem grid: seed x K.
//===----------------------------------------------------------------------===//

class TranslationTheoremSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(TranslationTheoremSweep, RaEqualsTranslatedSc) {
  auto [Seed, K] = GetParam();
  Rng R(Seed);
  fuzz::GeneratorOptions O;
  O.NumVars = 2;
  O.NumProcs = 2;
  O.StmtsPerProc = 3;
  ir::Program P = fuzz::makeRandomProgram(R, O);

  ra::RaQuery RQ;
  RQ.Goal = ra::GoalKind::AnyError;
  RQ.ViewSwitchBound = K;
  bool Ra = ra::exploreRa(flatten(P), RQ).reached();

  translation::TranslationOptions TO;
  TO.K = K;
  TO.CasAllowance = 2;
  auto TR = translation::translateToSc(P, TO);
  sc::ScQuery SQ;
  SQ.Goal = sc::ScGoalKind::AnyError;
  SQ.ContextBound = TR.ContextBound;
  bool Sc = sc::exploreSc(flatten(TR.Prog), SQ).reached();

  EXPECT_EQ(Ra, Sc) << printProgram(P);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TranslationTheoremSweep,
    ::testing::Combine(::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                         66ull, 77ull, 88ull),
                       ::testing::Values(0u, 1u, 2u)));

//===----------------------------------------------------------------------===//
// Litmus shapes: operational == axiomatic, one test per shape.
//===----------------------------------------------------------------------===//

class LitmusShapeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LitmusShapeSweep, OperationalEqualsAxiomatic) {
  auto Tests = litmus::classicTests();
  ASSERT_LT(static_cast<size_t>(GetParam()), Tests.size());
  const litmus::LitmusTest &T = Tests[GetParam()];
  auto Operational = ra::collectTerminalRegs(flatten(T.Prog));
  EXPECT_EQ(Operational, T.Expected) << T.Name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, LitmusShapeSweep, ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           auto Tests = litmus::classicTests();
                           std::string N = Tests[Info.param].Name;
                           for (char &C : N)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// SAT vs brute force across seeds.
//===----------------------------------------------------------------------===//

class SatSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatSeedSweep, AgreesWithBruteForce) {
  Rng R(GetParam());
  uint32_t NumVars = 5 + R.nextBelow(6);
  uint32_t NumClauses = NumVars * 4;
  sat::Solver S;
  std::vector<std::vector<sat::Lit>> Clauses;
  for (uint32_t V = 0; V < NumVars; ++V)
    (void)S.newVar();
  for (uint32_t I = 0; I < NumClauses; ++I) {
    std::vector<sat::Lit> C;
    for (int J = 0; J < 3; ++J)
      C.push_back(sat::Lit(static_cast<sat::Var>(R.nextBelow(NumVars)),
                           R.nextChance(1, 2)));
    Clauses.push_back(C);
    S.addClause(C);
  }
  bool Expected = false;
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars) && !Expected; ++Mask) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (sat::Lit L : C)
        Any |= ((Mask >> L.var()) & 1) != L.negated();
      All &= Any;
    }
    Expected = All;
  }
  EXPECT_EQ(S.solve() == sat::SolveResult::Sat, Expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatSeedSweep,
                         ::testing::Range(uint64_t(1000), uint64_t(1030)));
