//===- FormulaTest.cpp - circuit and bit-vector tests -----------*- C++ -*-===//

#include "formula/BitVec.h"
#include "formula/Circuit.h"
#include "ir/Expr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace vbmc;
using namespace vbmc::formula;

TEST(CircuitTest, ConstantFolding) {
  Circuit C;
  NodeRef A = C.mkInput();
  EXPECT_EQ(C.mkAnd(A, C.trueRef()), A);
  EXPECT_EQ(C.mkAnd(C.trueRef(), A), A);
  EXPECT_TRUE(C.isFalse(C.mkAnd(A, C.falseRef())));
  EXPECT_EQ(C.mkAnd(A, A), A);
  EXPECT_TRUE(C.isFalse(C.mkAnd(A, ~A)));
  EXPECT_TRUE(C.isTrue(C.mkOr(A, ~A)));
}

TEST(CircuitTest, StructuralHashing) {
  Circuit C;
  NodeRef A = C.mkInput(), B = C.mkInput();
  NodeRef X = C.mkAnd(A, B);
  NodeRef Y = C.mkAnd(B, A);
  EXPECT_EQ(X, Y);
  uint32_t Before = C.numNodes();
  (void)C.mkAnd(A, B);
  EXPECT_EQ(C.numNodes(), Before);
}

TEST(CircuitTest, EvaluateMatchesSemantics) {
  Circuit C;
  NodeRef A = C.mkInput(), B = C.mkInput();
  NodeRef Xor = C.mkXor(A, B);
  NodeRef Ite = C.mkIte(A, B, ~B);
  for (int AV = 0; AV <= 1; ++AV) {
    for (int BV = 0; BV <= 1; ++BV) {
      std::unordered_map<uint32_t, bool> In = {{A.node(), AV == 1},
                                               {B.node(), BV == 1}};
      EXPECT_EQ(C.evaluate(Xor, In), (AV ^ BV) == 1);
      EXPECT_EQ(C.evaluate(Ite, In), AV ? BV == 1 : BV == 0);
    }
  }
}

TEST(CircuitTest, TseitinAgreesWithEvaluation) {
  Rng R(5);
  for (int Round = 0; Round < 50; ++Round) {
    Circuit C;
    std::vector<NodeRef> Pool;
    for (int I = 0; I < 4; ++I)
      Pool.push_back(C.mkInput());
    std::vector<NodeRef> Inputs = Pool;
    // Random DAG of gates.
    for (int I = 0; I < 12; ++I) {
      NodeRef A = Pool[R.nextBelow(Pool.size())];
      NodeRef B = Pool[R.nextBelow(Pool.size())];
      if (R.nextChance(1, 2))
        A = ~A;
      switch (R.nextBelow(3)) {
      case 0:
        Pool.push_back(C.mkAnd(A, B));
        break;
      case 1:
        Pool.push_back(C.mkOr(A, B));
        break;
      default:
        Pool.push_back(C.mkXor(A, B));
        break;
      }
    }
    NodeRef Root = Pool.back();
    std::unordered_map<uint32_t, bool> Assignment;
    sat::Solver S;
    sat::Lit RootLit = C.toLit(S, Root);
    for (NodeRef In : Inputs) {
      bool V = R.nextChance(1, 2);
      Assignment[In.node()] = V;
      S.addUnit(sat::Lit(C.toLit(S, In).var(), !V));
    }
    ASSERT_EQ(S.solve(), sat::SolveResult::Sat);
    bool ViaSat = S.modelValue(RootLit.var()) != RootLit.negated();
    EXPECT_EQ(ViaSat, C.evaluate(Root, Assignment)) << "round " << Round;
  }
}

namespace {

/// Reference semantics at a given width (two's complement wraparound).
int64_t truncate(int64_t V, uint32_t W) {
  uint64_t Mask = W >= 64 ? ~0ULL : (1ULL << W) - 1;
  uint64_t U = static_cast<uint64_t>(V) & Mask;
  if (W < 64 && (U >> (W - 1)) & 1)
    U |= ~Mask;
  return static_cast<int64_t>(U);
}

/// Evaluates a closed (constant-input) bit-vector. Constant folding makes
/// every node of such a vector a constant, so no SAT query is needed (and
/// a Circuit's SAT mapping is single-solver, so tests that do want SAT use
/// one fresh Circuit + Solver pair per query).
int64_t evalBv(Circuit &C, const BitVec &V) {
  std::unordered_map<uint32_t, bool> NoInputs;
  uint64_t U = 0;
  for (uint32_t I = 0; I < V.width(); ++I)
    if (C.evaluate(V.Bits[I], NoInputs))
      U |= 1ULL << I;
  if (V.width() < 64 && (U >> (V.width() - 1)) & 1)
    U |= ~0ULL << V.width();
  return static_cast<int64_t>(U);
}

} // namespace

TEST(BitVecTest, ConstRoundTrip) {
  Circuit C;
  for (int64_t V : {0LL, 1LL, -1LL, 42LL, -42LL, 2047LL, -2048LL}) {
    BitVec B = bvConst(C, V, 12);
    EXPECT_EQ(evalBv(C, B), V);
  }
}

TEST(BitVecTest, ArithmeticMatchesIntegers) {
  Rng R(17);
  const uint32_t W = 16;
  for (int Round = 0; Round < 60; ++Round) {
    int64_t A = R.nextInRange(-100, 100);
    int64_t B = R.nextInRange(-100, 100);
    Circuit C;
    BitVec BA = bvConst(C, A, W), BB = bvConst(C, B, W);
    EXPECT_EQ(evalBv(C, bvAdd(C, BA, BB)), truncate(A + B, W));
    EXPECT_EQ(evalBv(C, bvSub(C, BA, BB)), truncate(A - B, W));
    EXPECT_EQ(evalBv(C, bvMul(C, BA, BB)), truncate(A * B, W));
    EXPECT_EQ(evalBv(C, bvNeg(C, BA)), truncate(-A, W));
  }
}

TEST(BitVecTest, DivisionMatchesCxxSemantics) {
  Circuit C;
  const uint32_t W = 12;
  auto Div = [&](int64_t A, int64_t B) {
    return evalBv(C, bvSdiv(C, bvConst(C, A, W), bvConst(C, B, W)));
  };
  auto Rem = [&](int64_t A, int64_t B) {
    return evalBv(C, bvSrem(C, bvConst(C, A, W), bvConst(C, B, W)));
  };
  EXPECT_EQ(Div(7, 2), 3);
  EXPECT_EQ(Div(-7, 2), -3);
  EXPECT_EQ(Div(7, -2), -3);
  EXPECT_EQ(Div(-7, -2), 3);
  EXPECT_EQ(Rem(7, 2), 1);
  EXPECT_EQ(Rem(-7, 2), -1);
  EXPECT_EQ(Rem(7, -2), 1);
  EXPECT_EQ(Rem(-7, -2), -1);
  // Division by zero is total: both yield 0 (ir::applyBinary semantics).
  EXPECT_EQ(Div(5, 0), 0);
  EXPECT_EQ(Rem(5, 0), 0);
}

TEST(BitVecTest, DivisionRandomized) {
  Rng R(23);
  const uint32_t W = 14;
  for (int Round = 0; Round < 40; ++Round) {
    int64_t A = R.nextInRange(-500, 500);
    int64_t B = R.nextInRange(-20, 20);
    Circuit C;
    int64_t ExpDiv = B == 0 ? 0 : A / B;
    int64_t ExpRem = B == 0 ? 0 : A % B;
    EXPECT_EQ(evalBv(C, bvSdiv(C, bvConst(C, A, W), bvConst(C, B, W))),
              ExpDiv)
        << A << "/" << B;
    EXPECT_EQ(evalBv(C, bvSrem(C, bvConst(C, A, W), bvConst(C, B, W))),
              ExpRem)
        << A << "%" << B;
  }
}

TEST(BitVecTest, PredicatesMatchIntegers) {
  Rng R(31);
  const uint32_t W = 12;
  for (int Round = 0; Round < 60; ++Round) {
    int64_t A = R.nextInRange(-40, 40);
    int64_t B = R.nextInRange(-40, 40);
    Circuit C;
    BitVec BA = bvConst(C, A, W), BB = bvConst(C, B, W);
    std::unordered_map<uint32_t, bool> NoInputs;
    EXPECT_EQ(C.evaluate(bvEq(C, BA, BB), NoInputs), A == B);
    EXPECT_EQ(C.evaluate(bvSlt(C, BA, BB), NoInputs), A < B);
    EXPECT_EQ(C.evaluate(bvSle(C, BA, BB), NoInputs), A <= B);
    EXPECT_EQ(C.evaluate(bvNonZero(C, BA), NoInputs), A != 0);
    uint64_t UA = static_cast<uint64_t>(A) & 0xfff;
    uint64_t UB = static_cast<uint64_t>(B) & 0xfff;
    EXPECT_EQ(C.evaluate(bvUlt(C, BA, BB), NoInputs), UA < UB);
  }
}

TEST(BitVecTest, MuxSelects) {
  Circuit C;
  BitVec T = bvConst(C, 11, 8), E = bvConst(C, -3, 8);
  EXPECT_EQ(evalBv(C, bvMux(C, C.trueRef(), T, E)), 11);
  EXPECT_EQ(evalBv(C, bvMux(C, C.falseRef(), T, E)), -3);
}

TEST(BitVecTest, SymbolicAdditionInverse) {
  // For symbolic x: (x + c) - c == x must be a tautology; check via SAT
  // unsatisfiability of its negation.
  Circuit C;
  BitVec X = bvFresh(C, 10);
  BitVec Cst = bvConst(C, 37, 10);
  BitVec Round = bvSub(C, bvAdd(C, X, Cst), Cst);
  NodeRef NotEqual = ~bvEq(C, Round, X);
  sat::Solver S;
  sat::Lit L = C.toLit(S, NotEqual);
  S.addUnit(L);
  EXPECT_EQ(S.solve(), sat::SolveResult::Unsat);
}

TEST(BitVecTest, FromBool) {
  Circuit C;
  EXPECT_EQ(evalBv(C, bvFromBool(C, C.trueRef(), 8)), 1);
  EXPECT_EQ(evalBv(C, bvFromBool(C, C.falseRef(), 8)), 0);
}
