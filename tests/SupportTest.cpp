//===- SupportTest.cpp - unit tests for src/support -------------*- C++ -*-===//

#include "support/Cli.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace vbmc;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, ReseedResetsStream) {
  Rng R(9);
  uint64_t First = R.next();
  R.next();
  R.reseed(9);
  EXPECT_EQ(R.next(), First);
}

TEST(DiagnosticsTest, LocationRendering) {
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
  SourceLoc L{3, 14};
  EXPECT_EQ(L.str(), "3:14");
  Diagnostic D("bad token", L);
  EXPECT_EQ(D.str(), "3:14: bad token");
  Diagnostic NoLoc("general failure");
  EXPECT_EQ(NoLoc.str(), "general failure");
}

TEST(DiagnosticsTest, ErrorOrValueAndError) {
  ErrorOr<int> Ok(5);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 5);
  ErrorOr<int> Bad(Diagnostic("nope"));
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error().message(), "nope");
}

TEST(TableTest, AlignsColumns) {
  Table T({"Program", "VBMC", "Tracer"});
  T.addRow({"bakery", "0.5", "0.01"});
  T.addRow({"szymanski_0", "0.4", "0.03"});
  std::string S = T.str();
  EXPECT_NE(S.find("Program"), std::string::npos);
  EXPECT_NE(S.find("szymanski_0"), std::string::npos);
  // Every row has the same rendered width for the first column.
  EXPECT_NE(S.find("bakery      "), std::string::npos);
}

TEST(TableTest, FormatSeconds) {
  EXPECT_EQ(Table::formatSeconds(1.234567, false), "1.235");
  EXPECT_EQ(Table::formatSeconds(123.4, false), "123.4");
  EXPECT_EQ(Table::formatSeconds(5, true), "T.O");
}

TEST(CliTest, ParsesFlagsAndPositionals) {
  const char *Argv[] = {"tool", "--k", "3",  "input.txt",
                        "--l=2", "--verbose", "--name", "--x", "7"};
  CommandLine CL = CommandLine::parse(9, Argv);
  EXPECT_EQ(CL.getInt("k", 0), 3);
  EXPECT_EQ(CL.getInt("l", 0), 2);
  EXPECT_TRUE(CL.hasFlag("verbose"));
  EXPECT_TRUE(CL.hasFlag("name"));
  EXPECT_EQ(CL.getInt("x", 0), 7);
  ASSERT_EQ(CL.positionals().size(), 1u);
  EXPECT_EQ(CL.positionals()[0], "input.txt");
  EXPECT_EQ(CL.getInt("absent", -1), -1);
  EXPECT_EQ(CL.getString("absent", "d"), "d");
}

TEST(TimerTest, DeadlineExpires) {
  Deadline Never;
  EXPECT_FALSE(Never.expired());
  Deadline Tiny(1e-9);
  // Spin briefly.
  volatile int X = 0;
  for (int I = 0; I < 100000; ++I)
    X = X + 1;
  EXPECT_TRUE(Tiny.expired());
}
