//===- SupportTest.cpp - unit tests for src/support -------------*- C++ -*-===//

#include "support/CheckContext.h"
#include "support/Cli.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace vbmc;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, ReseedResetsStream) {
  Rng R(9);
  uint64_t First = R.next();
  R.next();
  R.reseed(9);
  EXPECT_EQ(R.next(), First);
}

TEST(DiagnosticsTest, LocationRendering) {
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
  SourceLoc L{3, 14};
  EXPECT_EQ(L.str(), "3:14");
  Diagnostic D("bad token", L);
  EXPECT_EQ(D.str(), "3:14: bad token");
  Diagnostic NoLoc("general failure");
  EXPECT_EQ(NoLoc.str(), "general failure");
}

TEST(DiagnosticsTest, ErrorOrValueAndError) {
  ErrorOr<int> Ok(5);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 5);
  ErrorOr<int> Bad(Diagnostic("nope"));
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error().message(), "nope");
}

TEST(TableTest, AlignsColumns) {
  Table T({"Program", "VBMC", "Tracer"});
  T.addRow({"bakery", "0.5", "0.01"});
  T.addRow({"szymanski_0", "0.4", "0.03"});
  std::string S = T.str();
  EXPECT_NE(S.find("Program"), std::string::npos);
  EXPECT_NE(S.find("szymanski_0"), std::string::npos);
  // Every row has the same rendered width for the first column.
  EXPECT_NE(S.find("bakery      "), std::string::npos);
}

TEST(TableTest, FormatSeconds) {
  EXPECT_EQ(Table::formatSeconds(1.234567, false), "1.235");
  EXPECT_EQ(Table::formatSeconds(123.4, false), "123.4");
  EXPECT_EQ(Table::formatSeconds(5, true), "T.O");
}

TEST(CliTest, ParsesFlagsAndPositionals) {
  const char *Argv[] = {"tool", "--k", "3",  "input.txt",
                        "--l=2", "--verbose", "--name", "--x", "7"};
  CommandLine CL = CommandLine::parse(9, Argv);
  EXPECT_EQ(CL.getInt("k", 0), 3);
  EXPECT_EQ(CL.getInt("l", 0), 2);
  EXPECT_TRUE(CL.hasFlag("verbose"));
  EXPECT_TRUE(CL.hasFlag("name"));
  EXPECT_EQ(CL.getInt("x", 0), 7);
  ASSERT_EQ(CL.positionals().size(), 1u);
  EXPECT_EQ(CL.positionals()[0], "input.txt");
  EXPECT_EQ(CL.getInt("absent", -1), -1);
  EXPECT_EQ(CL.getString("absent", "d"), "d");
}

TEST(CliTest, DeclaredBooleanFlagKeepsPositional) {
  const char *Argv[] = {"tool", "--stats", "input.txt", "--k", "2"};
  CommandLine CL =
      CommandLine::parse(5, Argv, {"stats"});
  EXPECT_TRUE(CL.hasFlag("stats"));
  EXPECT_EQ(CL.getInt("k", 0), 2);
  ASSERT_EQ(CL.positionals().size(), 1u);
  EXPECT_EQ(CL.positionals()[0], "input.txt");
}

TEST(TimerTest, DeadlineExpires) {
  Deadline Never;
  EXPECT_FALSE(Never.expired());
  Deadline Tiny(1e-9);
  // Spin briefly.
  volatile int X = 0;
  for (int I = 0; I < 100000; ++I)
    X = X + 1;
  EXPECT_TRUE(Tiny.expired());
}

TEST(TimerTest, DeadlineRemainingSeconds) {
  Deadline Never;
  EXPECT_TRUE(std::isinf(Never.remainingSeconds()));
  Deadline Generous(3600);
  double Left = Generous.remainingSeconds();
  EXPECT_GT(Left, 3500.0);
  EXPECT_LE(Left, 3600.0);
  Deadline Expired(1e-9);
  volatile int X = 0;
  for (int I = 0; I < 100000; ++I)
    X = X + 1;
  EXPECT_EQ(Expired.remainingSeconds(), 0.0);
}

TEST(CancellationTokenTest, StickyAndChainsToParent) {
  auto Parent = std::make_shared<CancellationToken>();
  CancellationToken Child{
      std::shared_ptr<const CancellationToken>(Parent)};
  EXPECT_FALSE(Parent->cancelled());
  EXPECT_FALSE(Child.cancelled());

  // Cancelling the child leaves the parent alone.
  Child.cancel();
  EXPECT_TRUE(Child.cancelled());
  EXPECT_FALSE(Parent->cancelled());

  // Cancelling the parent cancels every (other) child.
  CancellationToken Sibling{
      std::shared_ptr<const CancellationToken>(Parent)};
  EXPECT_FALSE(Sibling.cancelled());
  Parent->cancel();
  EXPECT_TRUE(Sibling.cancelled());
}

TEST(CheckContextTest, ChildSharesDeadlineAndStats) {
  CheckContext Ctx(3600);
  CheckContext Child = Ctx.child();
  // Same registry underneath.
  Child.stats().addCount("x", 3);
  EXPECT_EQ(Ctx.stats().count("x"), 3u);
  // Child deadline carries the parent's budget (same start time).
  EXPECT_EQ(Child.deadline().budgetSeconds(), 3600.0);
  // Individual cancellation does not leak upward; parent cancellation
  // interrupts the child.
  Child.cancel();
  EXPECT_TRUE(Child.interrupted());
  EXPECT_FALSE(Ctx.interrupted());
  CheckContext Child2 = Ctx.child();
  Ctx.cancel();
  EXPECT_TRUE(Child2.interrupted());
  EXPECT_TRUE(Child2.cancelled());
}

TEST(StatsRegistryTest, CountersAndTimersAccumulate) {
  StatsRegistry S;
  EXPECT_EQ(S.count("a"), 0u);
  EXPECT_EQ(S.seconds("t"), 0.0);
  S.addCount("a");
  S.addCount("a", 4);
  S.addSeconds("t", 0.5);
  S.addSeconds("t", 0.25);
  EXPECT_EQ(S.count("a"), 5u);
  EXPECT_DOUBLE_EQ(S.seconds("t"), 0.75);

  auto Snap = S.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].Name, "a");
  EXPECT_TRUE(Snap[0].IsCounter);
  EXPECT_EQ(Snap[1].Name, "t");
  EXPECT_FALSE(Snap[1].IsCounter);

  std::string Dump = S.format();
  EXPECT_NE(Dump.find("a"), std::string::npos);
  EXPECT_NE(Dump.find("= 5"), std::string::npos);

  S.clear();
  EXPECT_EQ(S.count("a"), 0u);
  EXPECT_TRUE(S.snapshot().empty());
}

TEST(StatsRegistryTest, ConcurrentRecordingIsLossless) {
  StatsRegistry S;
  constexpr int Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&S] {
      for (int I = 0; I < PerThread; ++I) {
        S.addCount("shared.counter");
        S.addSeconds("shared.seconds", 0.001);
      }
    });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(S.count("shared.counter"),
            static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_NEAR(S.seconds("shared.seconds"), Threads * PerThread * 0.001,
              1e-6);
}

TEST(ScopedStageTimerTest, RecordsOnScopeExit) {
  StatsRegistry S;
  {
    ScopedStageTimer T(S, "stage");
    volatile int X = 0;
    for (int I = 0; I < 1000; ++I)
      X = X + 1;
  }
  EXPECT_GT(S.seconds("stage"), 0.0);
}

// A name registered as BOTH a counter and a timer used to yield two
// snapshot entries under the same name — an ambiguous key once the
// snapshot is serialized into a wire payload or a JSON report. Pin the
// disambiguation: the counter keeps the plain name, the timer's
// serialized name gains a ".seconds" suffix, and point lookups are
// unaffected.
TEST(StatsRegistryTest, CounterTimerNameCollisionDisambiguated) {
  StatsRegistry S;
  S.addCount("work", 7);
  S.addSeconds("work", 0.5);
  S.addCount("plain", 1);
  S.addSeconds("timer.only", 0.25);

  EXPECT_EQ(S.count("work"), 7u);
  EXPECT_DOUBLE_EQ(S.seconds("work"), 0.5);

  auto Snap = S.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  int PlainWork = 0, SuffixedWork = 0;
  for (const StatsRegistry::Entry &E : Snap) {
    if (E.Name == "work") {
      ++PlainWork;
      EXPECT_TRUE(E.IsCounter);
      EXPECT_EQ(E.Count, 7u);
    }
    if (E.Name == "work.seconds") {
      ++SuffixedWork;
      EXPECT_FALSE(E.IsCounter);
      EXPECT_DOUBLE_EQ(E.Seconds, 0.5);
    }
    // Non-colliding names are never rewritten.
    EXPECT_NE(E.Name, "timer.only.seconds");
  }
  EXPECT_EQ(PlainWork, 1);
  EXPECT_EQ(SuffixedWork, 1);
}

// An existing ".seconds" sibling must not collide with a rewritten timer:
// "x" (timer) serializes as "x.seconds" only when a counter "x" exists,
// and a genuine "x.seconds" entry keeps its own identity.
TEST(StatsRegistryTest, CollisionSuffixCoexistsWithExplicitName) {
  StatsRegistry S;
  S.addCount("x", 1);
  S.addSeconds("x", 0.5);
  S.addSeconds("x.seconds", 0.25);
  auto Snap = S.snapshot();
  int Named = 0;
  double Total = 0;
  for (const auto &E : Snap)
    if (E.Name == "x.seconds") {
      ++Named;
      Total += E.Seconds;
    }
  // Both timers serialize under "x.seconds" (2 entries); their identity
  // is preserved even if the key repeats.
  EXPECT_EQ(Named, 2);
  EXPECT_DOUBLE_EQ(Total, 0.75);
}

TEST(JsonTest, FormatDoubleIsLocaleIndependentAndRoundTrips) {
  EXPECT_EQ(json::formatDouble(1.5), "1.5");
  EXPECT_EQ(json::formatDouble(0), "0.0");
  EXPECT_EQ(json::formatDouble(-2), "-2.0");
  // Non-finite values have no JSON spelling.
  EXPECT_EQ(json::formatDouble(std::nan("")), "null");
  EXPECT_EQ(json::formatDouble(INFINITY), "null");
  for (double V : {0.1, 1.0 / 3.0, 6.02e23, -1e-300, 123456.789}) {
    double Back = 0;
    ASSERT_TRUE(json::parseDouble(json::formatDouble(V), Back));
    EXPECT_EQ(Back, V);
  }
}

TEST(JsonTest, StrictParsersRejectSilentZeroInputs) {
  double D = 42;
  uint64_t U = 42;
  // strtod("") and strtoul("junk") both silently yield 0 — the parsers
  // these replaced must reject instead.
  EXPECT_FALSE(json::parseDouble("", D));
  EXPECT_FALSE(json::parseDouble("abc", D));
  EXPECT_FALSE(json::parseDouble("1.5x", D));
  EXPECT_FALSE(json::parseUint("", U));
  EXPECT_FALSE(json::parseUint("-3", U));
  EXPECT_FALSE(json::parseUint("12q", U));
  EXPECT_EQ(D, 42.0);
  EXPECT_EQ(U, 42u);
  ASSERT_TRUE(json::parseDouble("-0.125", D));
  EXPECT_EQ(D, -0.125);
  ASSERT_TRUE(json::parseUint("18446744073709551615", U));
  EXPECT_EQ(U, UINT64_MAX);
}

TEST(JsonTest, WriterPunctuatesNestedContainers) {
  json::JsonWriter W;
  W.beginObject();
  W.key("s").value("a\"b\n");
  W.key("n").value(1.5);
  W.key("i").value(static_cast<uint64_t>(7));
  W.key("b").value(true);
  W.key("z").null();
  W.key("arr").beginArray();
  W.value(static_cast<uint64_t>(1));
  W.beginObject().key("k").value("v").endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"s\":\"a\\\"b\\n\",\"n\":1.5,\"i\":7,\"b\":true,"
                     "\"z\":null,\"arr\":[1,{\"k\":\"v\"}]}");
}

TEST(JsonTest, ParserRoundTripsWriterOutput) {
  json::JsonWriter W;
  W.beginObject();
  W.key("verdict").value("unsafe");
  W.key("seconds").value(0.25);
  W.key("attempts").beginArray();
  W.beginObject().key("k").value(static_cast<uint64_t>(2)).endObject();
  W.endArray();
  W.endObject();

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(W.str(), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());
  ASSERT_NE(V.get("verdict"), nullptr);
  EXPECT_EQ(V.get("verdict")->asString(), "unsafe");
  EXPECT_DOUBLE_EQ(V.get("seconds")->asNumber(), 0.25);
  ASSERT_TRUE(V.get("attempts")->isArray());
  ASSERT_EQ(V.get("attempts")->array().size(), 1u);
  EXPECT_DOUBLE_EQ(V.get("attempts")->array()[0].get("k")->asNumber(), 2);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse("", V, &Err));
  EXPECT_FALSE(json::parse("{\"a\":}", V, &Err));
  EXPECT_FALSE(json::parse("[1,2", V, &Err));
  EXPECT_FALSE(json::parse("{} trailing", V, &Err));
  EXPECT_FALSE(json::parse("{'a':1}", V, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(TraceTest, DisabledRecorderStaysEmpty) {
  TraceRecorder R;
  EXPECT_FALSE(R.enabled());
  R.record("x", "c", 0, 1);
  { ScopedSpan S(R, "scoped", "c"); }
  EXPECT_EQ(R.spanCount(), 0u);
  EXPECT_EQ(R.droppedSpans(), 0u);
}

TEST(TraceTest, RecordsAndSnapshotsSpans) {
  TraceRecorder R;
  R.enable();
  R.record("outer", "engine", 10, 100);
  R.record("inner", "engine", 20, 30);
  auto Spans = R.snapshot();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_DOUBLE_EQ(Spans[0].StartMicros, 10);
  EXPECT_DOUBLE_EQ(Spans[0].DurationMicros, 100);
  // Same thread: same dense id.
  EXPECT_EQ(Spans[0].ThreadId, Spans[1].ThreadId);
}

TEST(TraceTest, ThreadsGetDenseDistinctIds) {
  TraceRecorder R;
  R.enable();
  R.record("main", "c", 0, 1);
  std::thread([&R] { R.record("worker", "c", 1, 1); }).join();
  auto Spans = R.snapshot();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_NE(Spans[0].ThreadId, Spans[1].ThreadId);
  EXPECT_LT(Spans[0].ThreadId, 2u);
  EXPECT_LT(Spans[1].ThreadId, 2u);
}

TEST(TraceTest, MergeShiftsAndRemapsChildSpans) {
  TraceRecorder Parent;
  Parent.enable();
  Parent.record("parent", "engine", 0, 500);

  std::vector<TraceSpan> Child;
  TraceSpan S;
  S.Name = "child";
  S.Category = "sandbox";
  S.StartMicros = 5;
  S.DurationMicros = 10;
  S.ThreadId = 0; // The child's own thread 0 must not collide with ours.
  Child.push_back(S);
  Parent.merge(Child, 100);

  auto Spans = Parent.snapshot();
  ASSERT_EQ(Spans.size(), 2u);
  const TraceSpan &Merged = Spans[1];
  EXPECT_EQ(Merged.Name, "child");
  EXPECT_DOUBLE_EQ(Merged.StartMicros, 105);
  EXPECT_DOUBLE_EQ(Merged.DurationMicros, 10);
  EXPECT_NE(Merged.ThreadId, Spans[0].ThreadId);
}

TEST(TraceTest, ChromeExportIsValidSortedJson) {
  TraceRecorder R;
  R.enable();
  R.record("late", "c", 50, 5);
  R.record("early", "c", 1, 100);
  R.record("early.child", "c", 1, 10); // Same ts: longer span first.

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(R.formatChromeTrace(), V, &Err)) << Err;
  ASSERT_TRUE(V.isArray());
  ASSERT_EQ(V.array().size(), 3u);
  double LastTs = -1;
  for (const json::Value &E : V.array()) {
    ASSERT_TRUE(E.isObject());
    EXPECT_EQ(E.get("ph")->asString(), "X");
    for (const char *Key : {"name", "cat", "ts", "dur", "pid", "tid"})
      EXPECT_NE(E.get(Key), nullptr) << Key;
    EXPECT_GE(E.get("ts")->asNumber(), LastTs);
    LastTs = E.get("ts")->asNumber();
  }
  EXPECT_EQ(V.array()[0].get("name")->asString(), "early");
  EXPECT_EQ(V.array()[1].get("name")->asString(), "early.child");
  EXPECT_EQ(V.array()[2].get("name")->asString(), "late");
}

TEST(TraceTest, RecordElapsedEndsNow) {
  TraceRecorder R;
  R.enable();
  R.recordElapsed("stage", "sat", 0.001);
  auto Spans = R.snapshot();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_DOUBLE_EQ(Spans[0].DurationMicros, 1000);
  // The span ends (approximately) at the record call, so it starts in the
  // recorder's past, never its future.
  EXPECT_LE(Spans[0].StartMicros + Spans[0].DurationMicros,
            R.nowMicros() + 1);
}
